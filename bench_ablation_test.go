// Ablation benchmarks for the design choices DESIGN.md §7 calls out. Each
// bench runs the same colocation under one configuration knob and reports
// the figures of merit (steady p99/QoS, violation fraction, quality loss) as
// custom metrics, so `go test -bench=Ablation` doubles as a design-space
// report.
package pliant_test

import (
	"fmt"
	"testing"

	pliant "github.com/approx-sched/pliant"
)

// ablate runs the standard ablation scenario (memcached + Bayesian at 78%)
// with a config mutation and reports its metrics.
func ablate(b *testing.B, mutate func(*pliant.ScenarioConfig)) {
	b.Helper()
	var (
		p99Sum, violSum, inaccSum float64
	)
	for i := 0; i < b.N; i++ {
		cfg := pliant.ScenarioConfig{
			Seed:         uint64(i + 1),
			Service:      pliant.Memcached,
			AppNames:     []string{"Bayesian"},
			Runtime:      pliant.RuntimePliant,
			LoadFraction: 0.78,
			TimeScale:    16,
		}
		mutate(&cfg)
		res, err := pliant.RunScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p99Sum += res.TypicalOverQoS()
		violSum += res.ViolationFrac
		inaccSum += res.Apps[0].Inaccuracy
	}
	n := float64(b.N)
	b.ReportMetric(p99Sum/n, "p99/QoS")
	b.ReportMetric(violSum/n, "violFrac")
	b.ReportMetric(inaccSum/n, "inacc%")
}

// BenchmarkAblationSlackThreshold sweeps the revert threshold (paper
// Sec. 4.3: lowering it ping-pongs, relaxing it hurts the approximate app).
func BenchmarkAblationSlackThreshold(b *testing.B) {
	for _, thr := range []float64{0.05, 0.10, 0.20, 0.40} {
		b.Run(fmt.Sprintf("slack=%.0f%%", thr*100), func(b *testing.B) {
			ablate(b, func(c *pliant.ScenarioConfig) { c.SlackThreshold = thr })
		})
	}
}

// BenchmarkAblationDecisionInterval contrasts the paper's 1 s interval with
// finer and coarser control.
func BenchmarkAblationDecisionInterval(b *testing.B) {
	for _, iv := range []pliant.Duration{
		200 * pliant.Millisecond,
		pliant.Second,
		4 * pliant.Second,
	} {
		b.Run(fmt.Sprintf("interval=%v", iv), func(b *testing.B) {
			ablate(b, func(c *pliant.ScenarioConfig) { c.DecisionInterval = iv })
		})
	}
}

// BenchmarkAblationArbiter contrasts the paper's round-robin arbiter with
// the Sec. 6.5 impact-aware arbiter and the static most-approximate
// ablation, on a two-app colocation where arbitration matters.
func BenchmarkAblationArbiter(b *testing.B) {
	for _, rt := range []pliant.RuntimeKind{
		pliant.RuntimePliant,
		pliant.RuntimeImpactAware,
		pliant.RuntimeLearner,
		pliant.RuntimeStaticApprox,
	} {
		b.Run(rt.String(), func(b *testing.B) {
			ablate(b, func(c *pliant.ScenarioConfig) {
				c.Runtime = rt
				c.AppNames = []string{"Bayesian", "canneal"}
			})
		})
	}
}

// BenchmarkAblationLoad shows the escalation points across offered load.
func BenchmarkAblationLoad(b *testing.B) {
	for _, load := range []float64{0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("load=%.0f%%", load*100), func(b *testing.B) {
			ablate(b, func(c *pliant.ScenarioConfig) { c.LoadFraction = load })
		})
	}
}
