// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B target per artifact. Each iteration executes the experiment
// end to end at the fast profile (scaled request timescale, highlighted-app
// subset, sampled combinations — see DESIGN.md §6); cmd/pliant-bench -full
// runs the same code at paper scale. Figures of merit beyond wall time are
// attached via b.ReportMetric.
package pliant_test

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	pliant "github.com/approx-sched/pliant"
)

// benchProfile returns the per-iteration experiment profile used by the
// regeneration benches.
func benchProfile() pliant.ExperimentProfile {
	p := pliant.FastProfile()
	p.Apps = []string{"canneal", "SNP", "Bayesian"}
	p.CombosPerArity = 3
	p.MaxRunSeconds = 10
	return p
}

func BenchmarkTable1Platform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pliant.RunExperiment("table1", benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		if r.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig1DesignSpace(b *testing.B) {
	p := pliant.FullProfile() // DSE over all 24 apps is cheap
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig1dse", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1VariantImpact(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig1impact", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4DynamicBehavior(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig4", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Aggregate(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig5", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6MultiApp(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig6", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Violin(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig7", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8LoadSweep(b *testing.B) {
	p := benchProfile()
	p.Apps = []string{"canneal", "SNP"}
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig8", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9DecisionInterval(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig9", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Breakdown(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("fig10", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynInstOverhead(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := pliant.RunExperiment("overhead", p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioPliant measures one managed colocation end to end — the
// simulator's core workload — and reports simulated requests per wall
// second.
func BenchmarkScenarioPliant(b *testing.B) {
	var served uint64
	for i := 0; i < b.N; i++ {
		res, err := pliant.RunScenario(pliant.ScenarioConfig{
			Seed:         uint64(i + 1),
			Service:      pliant.Memcached,
			AppNames:     []string{"canneal"},
			Runtime:      pliant.RuntimePliant,
			LoadFraction: 0.78,
			TimeScale:    16,
		})
		if err != nil {
			b.Fatal(err)
		}
		served += res.Served
	}
	b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "requests/s")
}

// BenchmarkScenarioPrecise is the unmanaged-baseline counterpart.
func BenchmarkScenarioPrecise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := pliant.RunScenario(pliant.ScenarioConfig{
			Seed:         uint64(i + 1),
			Service:      pliant.Memcached,
			AppNames:     []string{"canneal"},
			Runtime:      pliant.RuntimePrecise,
			LoadFraction: 0.78,
			TimeScale:    16,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreCatalog measures the full 24-app design-space exploration.
func BenchmarkExploreCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, prof := range pliant.Applications() {
			opts := pliant.DefaultExploreOptions()
			opts.MaxVariants = prof.MaxVariants
			if _, err := pliant.Explore(prof, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClusterPlacement measures the Sec. 6.4 scheduler-integration
// study: a six-job batch placed across three service nodes, per policy.
func BenchmarkClusterPlacement(b *testing.B) {
	cfg := pliant.ClusterConfig{
		Seed: 17,
		Nodes: []pliant.ClusterNode{
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		},
		Jobs:      []string{"PLSA", "streamcluster", "canneal", "Bayesian", "raytrace", "Blast"},
		TimeScale: 16,
	}
	for _, pol := range []pliant.PlacementPolicy{
		pliant.RoundRobinPlacement{},
		pliant.InterferenceAwarePlacement{},
	} {
		b.Run(pol.Name(), func(b *testing.B) {
			var met float64
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Policy = pol
				res, err := pliant.RunCluster(c)
				if err != nil {
					b.Fatal(err)
				}
				met += res.QoSMetFraction
			}
			b.ReportMetric(met/float64(b.N), "QoSMetFrac")
		})
	}
}

// schedBenchConfig is the diurnal-day online-scheduling scenario the sched
// benches share: one compressed day on a three-service cluster.
func schedBenchConfig() pliant.SchedConfig {
	shape, _ := pliant.NewDiurnalLoad(0.25, 120)
	return pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		},
		Horizon:    120 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.10,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
	}
}

// BenchmarkSchedDiurnal measures one day of online scheduling per policy —
// the Sec. 6.4 extension's experiment entry ("sched") at bench scale.
func BenchmarkSchedDiurnal(b *testing.B) {
	for _, pol := range []pliant.SchedPolicy{
		pliant.FirstFitPlacement{},
		pliant.TelemetryAwarePlacement{},
	} {
		b.Run(pol.Name(), func(b *testing.B) {
			var met float64
			for i := 0; i < b.N; i++ {
				cfg := schedBenchConfig()
				cfg.Policy = pol
				res, err := pliant.RunSched(cfg)
				if err != nil {
					b.Fatal(err)
				}
				met += res.QoSMetFrac
			}
			b.ReportMetric(met/float64(b.N), "QoSMetFrac")
		})
	}
}

// energySchedBenchConfig mirrors the "energy" experiment: a five-node
// cluster (spare capacity to park) over a compressed diurnal day with the
// Table 1 power model and the approx-for-watts bundle.
func energySchedBenchConfig() pliant.SchedConfig {
	cfg := schedBenchConfig()
	cfg.Nodes = append(cfg.Nodes,
		pliant.ClusterNode{Name: "cache-2", Service: pliant.Memcached, MaxApps: 3},
		pliant.ClusterNode{Name: "web-2", Service: pliant.NGINX, MaxApps: 3},
	)
	model := pliant.EnergyModelFor(pliant.TablePlatform())
	cfg.Energy = &model
	cfg.Policy = pliant.TelemetryAwarePlacement{}
	cfg.Autoscaler = pliant.ApproxForWattsAutoscaler{
		Consolidate: pliant.ConsolidateAutoscaler{ReserveSlots: 6},
		LowWater:    0.6,
	}
	return cfg
}

// BenchmarkSchedEnergyDiurnal measures one energy-managed day — lifecycle
// transitions, frequency scaling, and joules accumulation on top of the
// episode simulation — and reports the day's energy alongside wall time.
func BenchmarkSchedEnergyDiurnal(b *testing.B) {
	var met, kj float64
	for i := 0; i < b.N; i++ {
		res, err := pliant.RunSched(energySchedBenchConfig())
		if err != nil {
			b.Fatal(err)
		}
		met += res.QoSMetFrac
		kj += res.Joules / 1000
	}
	b.ReportMetric(met/float64(b.N), "QoSMetFrac")
	b.ReportMetric(kj/float64(b.N), "kJ/day")
}

// faultStormBenchConfig is the fault-injection scenario: the eight-node
// cluster riding a compressed diurnal day through a correlated rack outage
// plus MTTF churn and telemetry dropouts, under the degrade-under-loss
// bundle (the examples/faultstorm storm).
func faultStormBenchConfig() pliant.SchedConfig {
	shape, _ := pliant.NewDiurnalLoad(0.25, 120)
	var nodes []pliant.ClusterNode
	for i := 0; i < 8; i++ {
		switch i % 3 {
		case 0:
			nodes = append(nodes, pliant.ClusterNode{Name: "cache", Service: pliant.Memcached, MaxApps: 3})
		case 1:
			nodes = append(nodes, pliant.ClusterNode{Name: "web", Service: pliant.NGINX, MaxApps: 3})
		default:
			nodes = append(nodes, pliant.ClusterNode{Name: "db", Service: pliant.MongoDB, MaxApps: 3})
		}
	}
	model := pliant.EnergyModelFor(pliant.TablePlatform())
	return pliant.SchedConfig{
		Seed:       42,
		Nodes:      nodes,
		Policy:     pliant.TelemetryAwarePlacement{},
		Horizon:    120 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.25,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
		Energy:     &model,
		Autoscaler: pliant.DegradeUnderLossController{Normal: pliant.ConsolidateAutoscaler{ReserveSlots: 9}},
		Faults: &pliant.FaultPlan{
			MTTFSec:      300,
			MTTRSec:      10,
			DomainSize:   2,
			Outages:      []pliant.FaultOutage{{AtSec: 35, Domain: 1, DurationSec: 50}},
			StaleMTBFSec: 90,
			StaleDurSec:  15,
		},
	}
}

// BenchmarkSchedFaultStorm measures one fault-injected day end to end: fault
// compilation, crash/recovery bookkeeping, retry backoff, and the
// degrade-under-loss controller all ride inside the measured op.
func BenchmarkSchedFaultStorm(b *testing.B) {
	var met, crashes float64
	for i := 0; i < b.N; i++ {
		res, err := pliant.RunSched(faultStormBenchConfig())
		if err != nil {
			b.Fatal(err)
		}
		met += res.QoSMetFrac
		crashes += float64(res.Crashes)
	}
	b.ReportMetric(met/float64(b.N), "QoSMetFrac")
	b.ReportMetric(crashes/float64(b.N), "crashes")
}

// shardedBenchConfig is the sharded-runtime scenario: one compressed diurnal
// day on a 128-node cluster — the Sec. 6.4 study at the scale where a single
// engine leaves cores idle.
func shardedBenchConfig(shards int) pliant.SchedConfig {
	shape, _ := pliant.NewDiurnalLoad(0.25, 120)
	var nodes []pliant.ClusterNode
	for i := 0; i < 128; i++ {
		switch i % 3 {
		case 0:
			nodes = append(nodes, pliant.ClusterNode{Name: "cache", Service: pliant.Memcached, MaxApps: 3})
		case 1:
			nodes = append(nodes, pliant.ClusterNode{Name: "web", Service: pliant.NGINX, MaxApps: 3})
		default:
			nodes = append(nodes, pliant.ClusterNode{Name: "db", Service: pliant.MongoDB, MaxApps: 3})
		}
	}
	return pliant.SchedConfig{
		Seed:       42,
		Nodes:      nodes,
		Policy:     pliant.TelemetryAwarePlacement{},
		Horizon:    120 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 2.0,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
		Shards:     shards,
	}
}

// BenchmarkSchedShardedDiurnal measures the sharded multi-engine runtime on
// the 128-node day: "single" is the single-engine path with a serial episode
// loop, "pool" the single-engine path with the per-window worker pool, and
// "sharded" one shard per core advancing windows in parallel. All three
// produce byte-identical results (TestGoldenShardInvariance); only the
// wall-clock differs, so comparing ns/op across the sub-benchmarks measures
// the speedup directly.
func BenchmarkSchedShardedDiurnal(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2 // shard machinery still engaged on a one-core runner
	}
	run := func(b *testing.B, cfg pliant.SchedConfig) {
		var met float64
		for i := 0; i < b.N; i++ {
			res, err := pliant.RunSched(cfg)
			if err != nil {
				b.Fatal(err)
			}
			met += res.QoSMetFrac
		}
		b.ReportMetric(met/float64(b.N), "QoSMetFrac")
	}
	b.Run("single", func(b *testing.B) {
		cfg := shardedBenchConfig(1)
		cfg.Workers = 1
		run(b, cfg)
	})
	b.Run("pool", func(b *testing.B) {
		run(b, shardedBenchConfig(1))
	})
	b.Run("sharded", func(b *testing.B) {
		cfg := shardedBenchConfig(shards)
		b.ReportMetric(float64(shards), "shards")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
		run(b, cfg)
	})
}

// traceReplayBenchConfig mirrors the "trace" experiment's telemetry bundle:
// a synthesized multi-hour Google-format trace parsed through the production
// ingestion path, compressed into the two-minute day, and replayed over the
// five-node cluster while services ride the trace's damped rate curve. It
// also returns the raw row count and replayed job count — the trajectory
// metadata pliant-bench -verify requires on trace records.
func traceReplayBenchConfig() (cfg pliant.SchedConfig, rows, jobs int, err error) {
	raw := pliant.SynthesizeTrace(pliant.TraceSynthConfig{
		Format:  pliant.GoogleTraceFormat,
		Jobs:    240,
		SpanSec: 6 * 3600,
		Seed:    42,
	})
	parsed, err := pliant.ParseTrace(bytes.NewReader(raw), pliant.GoogleTraceFormat)
	if err != nil {
		return cfg, 0, 0, err
	}
	tr, err := parsed.Normalize(pliant.TraceOptions{TargetSpanSec: 108, MaxJobs: 24})
	if err != nil {
		return cfg, 0, 0, err
	}
	times, mult, err := tr.RateShape(8)
	if err != nil {
		return cfg, 0, 0, err
	}
	for i, m := range mult {
		mult[i] = math.Sqrt(m)
	}
	shape, err := pliant.NewReplayLoad(times, mult)
	if err != nil {
		return cfg, 0, 0, err
	}
	cfg = pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
			{Name: "cache-2", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-2", Service: pliant.NGINX, MaxApps: 3},
		},
		Policy:    pliant.TelemetryAwarePlacement{},
		Horizon:   120 * pliant.Second,
		Epoch:     10 * pliant.Second,
		Trace:     tr,
		BaseLoad:  0.65,
		Shape:     shape,
		TimeScale: 16,
	}
	return cfg, tr.Rows, len(tr.Jobs), nil
}

// BenchmarkSchedTraceReplay measures one replayed production-shaped day —
// the trace-ingestion pipeline plus the scheduler consuming its stream —
// reporting the trace's row/job scale alongside QoS.
func BenchmarkSchedTraceReplay(b *testing.B) {
	cfg, rows, jobs, err := traceReplayBenchConfig()
	if err != nil {
		b.Fatal(err)
	}
	var met float64
	for i := 0; i < b.N; i++ {
		res, err := pliant.RunSched(cfg)
		if err != nil {
			b.Fatal(err)
		}
		met += res.QoSMetFrac
	}
	b.ReportMetric(met/float64(b.N), "QoSMetFrac")
	b.ReportMetric(float64(rows), "rows")
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkSchedWorkers quantifies the node-simulation worker pool: the same
// day on a nine-node cluster with one worker versus a full pool. Multi-node
// runs should scale sublinearly with node count on multi-core — compare the
// two timings.
func BenchmarkSchedWorkers(b *testing.B) {
	nineNodes := func() []pliant.ClusterNode {
		var nodes []pliant.ClusterNode
		for i := 0; i < 3; i++ {
			nodes = append(nodes,
				pliant.ClusterNode{Name: "cache", Service: pliant.Memcached, MaxApps: 3},
				pliant.ClusterNode{Name: "web", Service: pliant.NGINX, MaxApps: 3},
				pliant.ClusterNode{Name: "db", Service: pliant.MongoDB, MaxApps: 3},
			)
		}
		return nodes
	}
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		name := "pool"
		if workers == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := schedBenchConfig()
				cfg.Policy = pliant.TelemetryAwarePlacement{}
				cfg.Nodes = nineNodes()
				cfg.JobsPerSec = 0.3
				cfg.Workers = workers
				if _, err := pliant.RunSched(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
