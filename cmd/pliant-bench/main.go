// Command pliant-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pliant-bench                 # run every experiment at the fast profile
//	pliant-bench -only fig5      # one experiment
//	pliant-bench -list           # list experiment IDs
//	pliant-bench -full           # paper-scale parameters (hours of CPU)
//	pliant-bench -seed 7 -par 8  # override seed / parallelism
//	pliant-bench -json -label PR2  # write the BENCH_PR2.json perf trajectory
//	pliant-bench -verify .         # check every BENCH_*.json still parses
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	var (
		only    = flag.String("only", "", "run a single experiment by ID")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		full    = flag.Bool("full", false, "paper-scale parameters (all 24 apps, real rates, all combinations)")
		seed    = flag.Uint64("seed", 0, "override the root seed")
		par     = flag.Int("par", 0, "parallel scenario workers (default GOMAXPROCS)")
		allApps = flag.Bool("allapps", false, "cover all 24 applications at the fast timescale")
		jsonOut = flag.Bool("json", false, "run the perf-trajectory benchmark suite and write BENCH_<label>.json")
		label   = flag.String("label", "dev", "label for the -json trajectory file")
		verify  = flag.String("verify", "", "parse every BENCH_*.json under the given directory and exit")
		showVer = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(pliant.Version())
		return
	}

	if *verify != "" {
		if err := verifyTrajectories(*verify, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pliant-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		if err := runTrajectory(*label); err != nil {
			fmt.Fprintf(os.Stderr, "pliant-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range pliant.Experiments() {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return
	}

	profile := pliant.FastProfile()
	if *full {
		profile = pliant.FullProfile()
	}
	if *seed != 0 {
		profile.Seed = *seed
	}
	if *allApps {
		profile.Apps = nil // nil = the full 24-application catalog
	}
	if *par != 0 {
		profile.Parallelism = *par
	}

	entries := pliant.Experiments()
	if *only != "" {
		filtered := entries[:0]
		for _, e := range entries {
			if e.ID == *only {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "pliant-bench: unknown experiment %q (try -list)\n", *only)
			os.Exit(1)
		}
		entries = filtered[:1]
	}

	fmt.Printf("pliant-bench: profile=%s timescale=%.0fx seed=%d\n\n",
		profile.Name, profile.TimeScale, profile.Seed)
	for _, e := range entries {
		start := time.Now()
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		res, err := e.Run(profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pliant-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
