package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	pliant "github.com/approx-sched/pliant"
	"github.com/approx-sched/pliant/internal/sim"
)

// benchRecord is one benchmark's entry in the perf-trajectory file.
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// trajectory is the BENCH_<label>.json document: the repo accumulates one
// per PR, so performance over time is a `jq` away.
type trajectory struct {
	Label      string        `json:"label"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// record folds a testing.Benchmark result into a trajectory entry.
func record(name string, r testing.BenchmarkResult) benchRecord {
	out := benchRecord{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		out.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			out.Metrics[k] = v
		}
	}
	return out
}

// scenarioBenchConfig mirrors BenchmarkScenarioPliant in bench_test.go.
func scenarioBenchConfig(seed uint64) pliant.ScenarioConfig {
	return pliant.ScenarioConfig{
		Seed:         seed,
		Service:      pliant.Memcached,
		AppNames:     []string{"canneal"},
		Runtime:      pliant.RuntimePliant,
		LoadFraction: 0.78,
		TimeScale:    16,
	}
}

// energySchedBenchConfig mirrors BenchmarkSchedEnergyDiurnal in
// bench_test.go: the five-node energy cluster under the approx-for-watts
// bundle.
func energySchedBenchConfig() pliant.SchedConfig {
	cfg := schedBenchConfig(pliant.TelemetryAwarePlacement{})
	cfg.Nodes = append(cfg.Nodes,
		pliant.ClusterNode{Name: "cache-2", Service: pliant.Memcached, MaxApps: 3},
		pliant.ClusterNode{Name: "web-2", Service: pliant.NGINX, MaxApps: 3},
	)
	model := pliant.EnergyModelFor(pliant.TablePlatform())
	cfg.Energy = &model
	cfg.Autoscaler = pliant.ApproxForWattsAutoscaler{
		Consolidate: pliant.ConsolidateAutoscaler{ReserveSlots: 6},
		LowWater:    0.6,
	}
	return cfg
}

// shardedBenchConfig mirrors BenchmarkSchedShardedDiurnal in bench_test.go:
// one compressed diurnal day on a 128-node cluster.
func shardedBenchConfig(shards int) pliant.SchedConfig {
	shape, _ := pliant.NewDiurnalLoad(0.25, 120)
	var nodes []pliant.ClusterNode
	for i := 0; i < 128; i++ {
		switch i % 3 {
		case 0:
			nodes = append(nodes, pliant.ClusterNode{Name: "cache", Service: pliant.Memcached, MaxApps: 3})
		case 1:
			nodes = append(nodes, pliant.ClusterNode{Name: "web", Service: pliant.NGINX, MaxApps: 3})
		default:
			nodes = append(nodes, pliant.ClusterNode{Name: "db", Service: pliant.MongoDB, MaxApps: 3})
		}
	}
	return pliant.SchedConfig{
		Seed:       42,
		Nodes:      nodes,
		Policy:     pliant.TelemetryAwarePlacement{},
		Horizon:    120 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 2.0,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
		Shards:     shards,
	}
}

// schedBenchConfig mirrors the diurnal-day scenario in bench_test.go.
func schedBenchConfig(policy pliant.SchedPolicy) pliant.SchedConfig {
	shape, _ := pliant.NewDiurnalLoad(0.25, 120)
	return pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		},
		Policy:     policy,
		Horizon:    120 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.10,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
	}
}

// faultStormBenchConfig mirrors examples/faultstorm: the eight-node cluster
// riding a compressed diurnal day through a correlated rack outage plus MTTF
// churn and telemetry dropouts, under the degrade-under-loss bundle. Also
// returns the plan so the record can carry its knobs as metadata.
func faultStormBenchConfig() (pliant.SchedConfig, *pliant.FaultPlan) {
	shape, _ := pliant.NewDiurnalLoad(0.25, 120)
	var nodes []pliant.ClusterNode
	for i := 0; i < 8; i++ {
		switch i % 3 {
		case 0:
			nodes = append(nodes, pliant.ClusterNode{Name: "cache", Service: pliant.Memcached, MaxApps: 3})
		case 1:
			nodes = append(nodes, pliant.ClusterNode{Name: "web", Service: pliant.NGINX, MaxApps: 3})
		default:
			nodes = append(nodes, pliant.ClusterNode{Name: "db", Service: pliant.MongoDB, MaxApps: 3})
		}
	}
	plan := &pliant.FaultPlan{
		MTTFSec:      300,
		MTTRSec:      10,
		DomainSize:   2,
		Outages:      []pliant.FaultOutage{{AtSec: 35, Domain: 1, DurationSec: 50}},
		StaleMTBFSec: 90,
		StaleDurSec:  15,
	}
	model := pliant.EnergyModelFor(pliant.TablePlatform())
	return pliant.SchedConfig{
		Seed:       42,
		Nodes:      nodes,
		Policy:     pliant.TelemetryAwarePlacement{},
		Horizon:    120 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.25,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
		Energy:     &model,
		Autoscaler: pliant.DegradeUnderLossController{Normal: pliant.ConsolidateAutoscaler{ReserveSlots: 9}},
		Faults:     plan,
	}, plan
}

// traceReplayBenchConfig mirrors BenchmarkSchedTraceReplay in bench_test.go:
// a synthesized Google-format trace compressed into the two-minute day and
// replayed over the five-node cluster with telemetry-aware placement. Also
// returns the raw row count and replayed job count for the record metadata.
func traceReplayBenchConfig() (cfg pliant.SchedConfig, rows, jobs int, err error) {
	raw := pliant.SynthesizeTrace(pliant.TraceSynthConfig{
		Format:  pliant.GoogleTraceFormat,
		Jobs:    240,
		SpanSec: 6 * 3600,
		Seed:    42,
	})
	parsed, err := pliant.ParseTrace(bytes.NewReader(raw), pliant.GoogleTraceFormat)
	if err != nil {
		return cfg, 0, 0, err
	}
	tr, err := parsed.Normalize(pliant.TraceOptions{TargetSpanSec: 108, MaxJobs: 24})
	if err != nil {
		return cfg, 0, 0, err
	}
	times, mult, err := tr.RateShape(8)
	if err != nil {
		return cfg, 0, 0, err
	}
	for i, m := range mult {
		mult[i] = math.Sqrt(m)
	}
	shape, err := pliant.NewReplayLoad(times, mult)
	if err != nil {
		return cfg, 0, 0, err
	}
	cfg = pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
			{Name: "cache-2", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-2", Service: pliant.NGINX, MaxApps: 3},
		},
		Policy:    pliant.TelemetryAwarePlacement{},
		Horizon:   120 * pliant.Second,
		Epoch:     10 * pliant.Second,
		Trace:     tr,
		BaseLoad:  0.65,
		Shape:     shape,
		TimeScale: 16,
	}
	return cfg, tr.Rows, len(tr.Jobs), nil
}

// serveBenchSessions and serveBenchQueueCap shape the ServeSubmit record:
// how many concurrent daemon sessions the submissions fan across, and the
// bounded per-session ingest depth the 429 backpressure contract engages at.
const (
	serveBenchSessions = 2
	serveBenchQueueCap = 4096
)

// runTrajectory executes the perf-trajectory suite with testing.Benchmark
// and writes BENCH_<label>.json into the current directory.
func runTrajectory(label string) error {
	var t trajectory
	t.Label = label
	t.GoVersion = runtime.Version()
	t.GOOS, t.GOARCH = runtime.GOOS, runtime.GOARCH

	// Steady-state typed event dispatch: the cost floor of every simulation.
	t.Benchmarks = append(t.Benchmarks, record("EventDispatchTyped", testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		var h rearmHandler
		h.eng = eng
		eng.ScheduleTyped(1, &h, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
	})))

	// One managed colocation end to end, reporting simulated requests per
	// wall second.
	t.Benchmarks = append(t.Benchmarks, record("ScenarioPliant", testing.Benchmark(func(b *testing.B) {
		var served uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pliant.RunScenario(scenarioBenchConfig(uint64(i + 1)))
			if err != nil {
				b.Fatal(err)
			}
			served += res.Served
		}
		b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "requests/s")
	})))

	// One energy-managed day: the approx-for-watts bundle on the five-node
	// cluster, reporting the day's joules alongside wall time.
	t.Benchmarks = append(t.Benchmarks, record("SchedEnergyDiurnal", testing.Benchmark(func(b *testing.B) {
		var met, kj float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pliant.RunSched(energySchedBenchConfig())
			if err != nil {
				b.Fatal(err)
			}
			met += res.QoSMetFrac
			kj += res.Joules / 1000
		}
		b.ReportMetric(met/float64(b.N), "QoSMetFrac")
		b.ReportMetric(kj/float64(b.N), "kJ/day")
	})))

	// One compressed day of online scheduling per policy.
	for _, pol := range []pliant.SchedPolicy{
		pliant.FirstFitPlacement{},
		pliant.TelemetryAwarePlacement{},
	} {
		pol := pol
		t.Benchmarks = append(t.Benchmarks, record("SchedDiurnal/"+pol.Name(), testing.Benchmark(func(b *testing.B) {
			var met float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := pliant.RunSched(schedBenchConfig(pol))
				if err != nil {
					b.Fatal(err)
				}
				met += res.QoSMetFrac
			}
			b.ReportMetric(met/float64(b.N), "QoSMetFrac")
		})))
	}

	// One replayed production-shaped day: the trace-ingestion pipeline plus
	// the scheduler consuming its stream. The record carries the trace's
	// row/job scale, so every trajectory point states what it replayed —
	// the -verify gate rejects trace records without it.
	traceCfg, traceRows, traceJobs, err := traceReplayBenchConfig()
	if err != nil {
		return err
	}
	traceRec := record("SchedTraceReplay", testing.Benchmark(func(b *testing.B) {
		var met float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pliant.RunSched(traceCfg)
			if err != nil {
				b.Fatal(err)
			}
			met += res.QoSMetFrac
		}
		b.ReportMetric(met/float64(b.N), "QoSMetFrac")
	}))
	if traceRec.Metrics == nil {
		traceRec.Metrics = map[string]float64{}
	}
	traceRec.Metrics["rows"] = float64(traceRows)
	traceRec.Metrics["jobs"] = float64(traceJobs)
	t.Benchmarks = append(t.Benchmarks, traceRec)

	// One fault-injected day: the degrade-under-loss bundle riding out a
	// correlated rack outage plus MTTF churn. The record carries the fault
	// plan's knobs (MTTF, MTTR, retry budget), so every trajectory point
	// states the storm it survived — the -verify gate rejects fault records
	// without it.
	faultCfg, faultPlan := faultStormBenchConfig()
	faultRec := record("SchedFaultStorm", testing.Benchmark(func(b *testing.B) {
		var met, crashes, requeued float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pliant.RunSched(faultCfg)
			if err != nil {
				b.Fatal(err)
			}
			met += res.QoSMetFrac
			crashes += float64(res.Crashes)
			requeued += float64(res.Requeued)
		}
		b.ReportMetric(met/float64(b.N), "QoSMetFrac")
		b.ReportMetric(crashes/float64(b.N), "crashes")
		b.ReportMetric(requeued/float64(b.N), "requeued")
	}))
	if faultRec.Metrics == nil {
		faultRec.Metrics = map[string]float64{}
	}
	faultRec.Metrics["mttf"] = faultPlan.MTTFSec
	faultRec.Metrics["mttr"] = faultPlan.MTTRSec
	faultRec.Metrics["retries"] = float64(faultPlan.Retries())
	t.Benchmarks = append(t.Benchmarks, faultRec)

	// The sharded multi-engine runtime on a 128-node diurnal day, against
	// the single-engine path on the same scenario. The sharded record
	// carries the speedup metadata (shards, cores, speedup) the -verify
	// gate requires, so every trajectory point states the parallelism it
	// was measured under — a speedup of ~1 on a one-core runner is expected
	// and readable as such.
	singleRec := record("SchedShardedDiurnal/single", testing.Benchmark(func(b *testing.B) {
		cfg := shardedBenchConfig(1)
		cfg.Workers = 1
		for i := 0; i < b.N; i++ {
			if _, err := pliant.RunSched(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}))
	t.Benchmarks = append(t.Benchmarks, singleRec)
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	shardedRec := record("SchedShardedDiurnal/sharded", testing.Benchmark(func(b *testing.B) {
		cfg := shardedBenchConfig(shards)
		for i := 0; i < b.N; i++ {
			if _, err := pliant.RunSched(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if shardedRec.Metrics == nil {
		shardedRec.Metrics = map[string]float64{}
	}
	shardedRec.Metrics["shards"] = float64(shards)
	shardedRec.Metrics["cores"] = float64(runtime.GOMAXPROCS(0))
	shardedRec.Metrics["speedup"] = singleRec.NsPerOp / shardedRec.NsPerOp
	if frac, ok := shardedBarrierWaitFrac(shards); ok {
		shardedRec.Metrics["barrier_wait_frac"] = frac
	}
	t.Benchmarks = append(t.Benchmarks, shardedRec)

	// Sustained submissions through the daemon's HTTP ingest path: two
	// concurrent paced submission-only sessions behind one serve.Server,
	// jobs POSTed round-robin, 429 backpressure retried. The record carries
	// the session count and the bounded queue depth (the inflight ceiling
	// backpressure engages at) — the -verify gate rejects serve records
	// without them — plus cores, because on one CPU the sessions' engine
	// windows and the HTTP handlers time-slice a single core.
	serveRec := record("ServeSubmit", testing.Benchmark(func(b *testing.B) {
		srv := pliant.NewServeServer(pliant.ServeOptions{})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		var sessions []*pliant.ServeSession
		var urls []string
		for i := 0; i < serveBenchSessions; i++ {
			sess, err := srv.CreateSession(pliant.ServeSpec{
				Name:       fmt.Sprintf("bench-%d", i),
				SubmitOnly: true,
				Policies:   []string{"first-fit"},
				HorizonSec: 1e7,
				EpochSec:   12,
				TimeScale:  16,
				QueueCap:   serveBenchQueueCap,
				PaceMS:     20,
			})
			if err != nil {
				b.Fatal(err)
			}
			sessions = append(sessions, sess)
			urls = append(urls, ts.URL+"/v1/sessions/"+sess.ID+"/jobs")
		}
		defer func() {
			b.StopTimer()
			for _, s := range sessions {
				s.Stop()
				s.Wait()
			}
		}()
		client := ts.Client()
		const body = `{"jobs":["canneal"]}`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				resp, err := client.Post(urls[i%len(urls)], "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				status := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if status == http.StatusAccepted {
					break
				}
				if status != http.StatusTooManyRequests {
					b.Fatalf("submit %d: unexpected status %d", i, status)
				}
			}
		}
		b.StopTimer()
		var accepted int
		for _, s := range sessions {
			accepted += s.Status().Accepted
		}
		if accepted < b.N {
			b.Fatalf("sessions accepted %d < %d submitted", accepted, b.N)
		}
		b.ReportMetric(float64(accepted)/b.Elapsed().Seconds(), "submits/s")
	}))
	if serveRec.Metrics == nil {
		serveRec.Metrics = map[string]float64{}
	}
	serveRec.Metrics["sessions"] = serveBenchSessions
	serveRec.Metrics["inflight"] = serveBenchQueueCap
	serveRec.Metrics["cores"] = float64(runtime.GOMAXPROCS(0))
	t.Benchmarks = append(t.Benchmarks, serveRec)

	path := fmt.Sprintf("BENCH_%s.json", label)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return err
	}
	fmt.Printf("pliant-bench: wrote %s (%d benchmarks)\n", path, len(t.Benchmarks))
	for _, r := range t.Benchmarks {
		fmt.Printf("  %-28s %12.1f ns/op %8d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		for k, v := range r.Metrics {
			fmt.Printf("  %s=%.4g", k, v)
		}
		fmt.Println()
	}
	return nil
}

// shardedBarrierWaitFrac runs the sharded bench scenario once with a
// wall-clock observer attached and returns the cluster-wide barrier-wait
// fraction — idle-at-the-merge-barrier nanoseconds over total shard wall
// time. It rides outside the timed benchmark loop (the observer's profile
// channel is wall-clock, not part of the measured op), so the trajectory
// record can say not just how fast the sharded day was but where a missing
// speedup went.
func shardedBarrierWaitFrac(shards int) (float64, bool) {
	o := pliant.NewObserver(pliant.ObserverOptions{})
	cfg := shardedBenchConfig(shards)
	cfg.Obs = o
	res, err := pliant.RunSched(cfg)
	if err != nil {
		return 0, false
	}
	var epNs, waitNs int64
	for _, p := range res.ShardProfiles {
		epNs += p.EpisodeNs
		waitNs += p.BarrierWaitNs
	}
	total := epNs + waitNs
	if total <= 0 {
		return 0, false
	}
	return float64(waitNs) / float64(total), true
}

// verifyTrajectories parses every BENCH_*.json under dir and fails loudly on
// the first unreadable, unparsable, or structurally empty file — the CI
// guard that keeps the perf-trajectory format consumable across PRs.
// Non-fatal honesty findings (a speedup recorded on one core measures
// nothing) go to w as warnings: committed single-core records stay valid
// history, but nobody reads them as a parallelism result.
func verifyTrajectories(dir string, w io.Writer) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json files under %s", dir)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		var t trajectory
		if err := json.Unmarshal(data, &t); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if t.Label == "" {
			return fmt.Errorf("%s: missing label", p)
		}
		if len(t.Benchmarks) == 0 {
			return fmt.Errorf("%s: no benchmarks", p)
		}
		for _, b := range t.Benchmarks {
			if b.Name == "" || b.NsPerOp <= 0 || b.Iterations <= 0 {
				return fmt.Errorf("%s: malformed benchmark record %+v", p, b)
			}
			// Sharded-runtime records (BENCH_PR4.json onward) must state the
			// parallelism they were measured under: a speedup figure is
			// meaningless without the shard count and the cores it ran on.
			if strings.HasPrefix(b.Name, "SchedShardedDiurnal/sharded") {
				for _, key := range []string{"shards", "cores", "speedup"} {
					if b.Metrics[key] <= 0 {
						return fmt.Errorf("%s: %s missing %s metadata alongside ns/op", p, b.Name, key)
					}
				}
				if b.Metrics["cores"] == 1 {
					fmt.Fprintf(w, "pliant-bench: warning: %s: %s: speedup unmeasured (recorded on 1 core; shards time-slice one CPU)\n", p, b.Name)
				}
			}
			// Trace-replay records (BENCH_PR5.json onward) must state the
			// scale of the trace they replayed: a wall-clock figure is
			// meaningless without the row count parsed and the job count
			// scheduled.
			if strings.HasPrefix(b.Name, "SchedTraceReplay") {
				for _, key := range []string{"rows", "jobs"} {
					if b.Metrics[key] <= 0 {
						return fmt.Errorf("%s: %s missing %s metadata alongside ns/op", p, b.Name, key)
					}
				}
			}
			// Serving-layer records (BENCH_PR8.json onward) must state the
			// ingest surface they were measured against: a submissions/s
			// figure is meaningless without the concurrent session count and
			// the bounded queue depth the 429 backpressure engages at.
			if strings.HasPrefix(b.Name, "ServeSubmit") {
				for _, key := range []string{"sessions", "inflight"} {
					if b.Metrics[key] <= 0 {
						return fmt.Errorf("%s: %s missing %s metadata alongside ns/op", p, b.Name, key)
					}
				}
			}
			// Fault-storm records (BENCH_PR7.json onward) must state the storm
			// they were measured under: a QoS figure for a fault-injected run
			// is meaningless without the MTTF/MTTR regime and the retry budget
			// displaced jobs carried.
			if strings.HasPrefix(b.Name, "SchedFaultStorm") {
				for _, key := range []string{"mttf", "mttr", "retries"} {
					if b.Metrics[key] <= 0 {
						return fmt.Errorf("%s: %s missing %s metadata alongside ns/op", p, b.Name, key)
					}
				}
			}
		}
		fmt.Fprintf(w, "pliant-bench: %s ok (%d benchmarks, label %s)\n", p, len(t.Benchmarks), t.Label)
	}
	return nil
}

// rearmHandler schedules its successor on every fire, modeling the
// steady-state request path.
type rearmHandler struct {
	eng   *sim.Engine
	count uint64
}

func (h *rearmHandler) OnEvent(now sim.Time, _ uint64) {
	h.count++
	h.eng.ScheduleTyped(now+sim.Time(1+h.count%7), h, 0)
}
