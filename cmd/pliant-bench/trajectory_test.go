package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommittedTrajectoriesParse keeps the repo's accumulated BENCH_*.json
// files (the perf trajectory, one per PR) readable: a schema drift in the
// trajectory struct that orphans old files fails here, not in a downstream
// jq pipeline.
func TestCommittedTrajectoriesParse(t *testing.T) {
	root := filepath.Join("..", "..")
	paths, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no BENCH_*.json committed under %s", root)
	}
	if err := verifyTrajectories(root, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyRejectsGarbage covers the failure side of the CI guard.
func TestVerifyRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("empty directory verified")
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("unparsable trajectory verified")
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte(`{"label":"x","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("benchmark-free trajectory verified")
	}
}

// TestVerifyRequiresShardedSpeedupMetadata pins the PR4 gate: a sharded
// trajectory record must carry shards/cores/speedup metrics alongside ns/op,
// so every recorded speedup states the parallelism it was measured under.
func TestVerifyRequiresShardedSpeedupMetadata(t *testing.T) {
	dir := t.TempDir()
	write := func(metrics string) {
		t.Helper()
		doc := `{"label":"PR4","benchmarks":[{"name":"SchedShardedDiurnal/sharded",` +
			`"iterations":1,"ns_per_op":5.0e9` + metrics + `}]}`
		if err := os.WriteFile(filepath.Join(dir, "BENCH_PR4.json"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("")
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("sharded record without speedup metadata verified")
	}
	write(`,"metrics":{"shards":4,"cores":4}`)
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("sharded record without a speedup figure verified")
	}
	write(`,"metrics":{"shards":4,"cores":4,"speedup":2.9}`)
	if err := verifyTrajectories(dir, io.Discard); err != nil {
		t.Errorf("complete sharded record rejected: %v", err)
	}
}

// TestVerifyWarnsUnmeasuredSpeedup pins the honest-trajectory gate: a
// sharded record whose cores metadata says 1 carries a speedup figure that
// measured nothing (the shards time-sliced one CPU), so -verify must say so
// — as a warning, because the committed BENCH_PR4/PR5 history ran on one
// core and must keep verifying.
func TestVerifyWarnsUnmeasuredSpeedup(t *testing.T) {
	dir := t.TempDir()
	write := func(cores int) {
		t.Helper()
		doc := fmt.Sprintf(`{"label":"PR6","benchmarks":[{"name":"SchedShardedDiurnal/sharded",`+
			`"iterations":1,"ns_per_op":5.0e9,"metrics":{"shards":4,"cores":%d,"speedup":1.02}}]}`, cores)
		if err := os.WriteFile(filepath.Join(dir, "BENCH_PR6.json"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	var out strings.Builder
	if err := verifyTrajectories(dir, &out); err != nil {
		t.Fatalf("single-core record must verify (warn, not fail): %v", err)
	}
	if !strings.Contains(out.String(), "speedup unmeasured") {
		t.Errorf("no speedup-unmeasured warning for cores=1 record; output:\n%s", out.String())
	}

	write(4)
	out.Reset()
	if err := verifyTrajectories(dir, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "speedup unmeasured") {
		t.Errorf("spurious warning for cores=4 record; output:\n%s", out.String())
	}
}

// TestCommittedSingleCoreRecordsWarn keeps the warning honest against the
// repo's real history: the committed BENCH_PR4/PR5 sharded records were
// taken on one core, so they must still verify AND must each be flagged.
func TestCommittedSingleCoreRecordsWarn(t *testing.T) {
	var out strings.Builder
	if err := verifyTrajectories(filepath.Join("..", ".."), &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BENCH_PR4.json", "BENCH_PR5.json"} {
		want := name + ": SchedShardedDiurnal/sharded: speedup unmeasured"
		if !strings.Contains(out.String(), want) {
			t.Errorf("no speedup-unmeasured warning for %s; output:\n%s", name, out.String())
		}
	}
}

// TestVerifyRequiresTraceReplayMetadata pins the PR5 gate: a trace-replay
// trajectory record must state the scale of the trace it replayed (raw rows
// parsed, jobs scheduled) alongside ns/op.
func TestVerifyRequiresTraceReplayMetadata(t *testing.T) {
	dir := t.TempDir()
	write := func(metrics string) {
		t.Helper()
		doc := `{"label":"PR5","benchmarks":[{"name":"SchedTraceReplay",` +
			`"iterations":1,"ns_per_op":5.0e9` + metrics + `}]}`
		if err := os.WriteFile(filepath.Join(dir, "BENCH_PR5.json"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("")
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("trace record without rows/jobs metadata verified")
	}
	write(`,"metrics":{"rows":468}`)
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("trace record without a jobs figure verified")
	}
	write(`,"metrics":{"rows":468,"jobs":24}`)
	if err := verifyTrajectories(dir, io.Discard); err != nil {
		t.Errorf("complete trace record rejected: %v", err)
	}
}

// TestVerifyRequiresFaultStormMetadata pins the PR7 gate: a fault-storm
// trajectory record must state the storm it was measured under (MTTF/MTTR
// regime, retry budget) alongside ns/op.
func TestVerifyRequiresFaultStormMetadata(t *testing.T) {
	dir := t.TempDir()
	write := func(metrics string) {
		t.Helper()
		doc := `{"label":"PR7","benchmarks":[{"name":"SchedFaultStorm",` +
			`"iterations":1,"ns_per_op":5.0e9` + metrics + `}]}`
		if err := os.WriteFile(filepath.Join(dir, "BENCH_PR7.json"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("")
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("fault record without mttf/mttr/retries metadata verified")
	}
	write(`,"metrics":{"mttf":300,"mttr":10}`)
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("fault record without a retries figure verified")
	}
	write(`,"metrics":{"mttf":300,"mttr":10,"retries":3}`)
	if err := verifyTrajectories(dir, io.Discard); err != nil {
		t.Errorf("complete fault record rejected: %v", err)
	}
}

// TestVerifyRequiresServeSubmitMetadata pins the PR8 gate: a serving-layer
// trajectory record must state the ingest surface it was measured against
// (concurrent session count, bounded queue depth) alongside ns/op.
func TestVerifyRequiresServeSubmitMetadata(t *testing.T) {
	dir := t.TempDir()
	write := func(metrics string) {
		t.Helper()
		doc := `{"label":"PR8","benchmarks":[{"name":"ServeSubmit",` +
			`"iterations":1,"ns_per_op":5.0e9` + metrics + `}]}`
		if err := os.WriteFile(filepath.Join(dir, "BENCH_PR8.json"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("")
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("serve record without sessions/inflight metadata verified")
	}
	write(`,"metrics":{"sessions":2}`)
	if err := verifyTrajectories(dir, io.Discard); err == nil {
		t.Error("serve record without an inflight figure verified")
	}
	write(`,"metrics":{"sessions":2,"inflight":4096}`)
	if err := verifyTrajectories(dir, io.Discard); err != nil {
		t.Errorf("complete serve record rejected: %v", err)
	}
}
