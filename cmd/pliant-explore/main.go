// Command pliant-explore runs the offline approximation design-space
// exploration (paper Sec. 3 / Fig. 1 odd rows): it enumerates candidate
// variants for one or all catalog applications, filters them to the
// inaccuracy budget, and prints the pareto-selected variants the Pliant
// runtime would switch between.
//
// Usage:
//
//	pliant-explore                    # all 24 applications
//	pliant-explore -app canneal       # one application
//	pliant-explore -budget 10 -all    # 10% budget, print every candidate
package main

import (
	"flag"
	"fmt"
	"os"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	var (
		appName = flag.String("app", "", "explore a single application")
		budget  = flag.Float64("budget", 5.0, "max tolerable inaccuracy in percent")
		showAll = flag.Bool("all", false, "print every examined candidate, not just selected")
		showVer = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(pliant.Version())
		return
	}

	apps := pliant.Applications()
	if *appName != "" {
		p, err := pliant.ApplicationByName(*appName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pliant-explore: %v\n", err)
			os.Exit(1)
		}
		apps = []pliant.AppProfile{p}
	}

	for _, prof := range apps {
		opts := pliant.DefaultExploreOptions()
		opts.MaxInaccuracy = *budget
		opts.MaxVariants = prof.MaxVariants
		res, err := pliant.Explore(prof, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pliant-explore: %s: %v\n", prof.Name, err)
			os.Exit(1)
		}
		hints := "gprof hot functions"
		if prof.AcceptHints {
			hints = "ACCEPT hints"
		}
		fmt.Printf("%s (%s, %s; quality = %s)\n", prof.Name, prof.Suite, hints, prof.QualityMetric)
		fmt.Printf("  examined %d candidate variants; %d selected near the pareto frontier (budget %.1f%%)\n",
			len(res.All), len(res.Selected), *budget)
		for i, c := range res.Selected {
			fmt.Printf("  v%d: time %.2fx, traffic %.2fx, inaccuracy %.2f%%",
				i+1, c.Effect.TimeScale, c.Effect.TrafficScale, c.Effect.Inaccuracy)
			if c.Effect.NonDeterministic {
				fmt.Printf(" (nondeterministic)")
			}
			fmt.Printf("  [%d decisions]\n", len(c.Decisions))
		}
		if *showAll {
			fmt.Println("  all examined candidates (time, traffic, inaccuracy):")
			for _, c := range res.All {
				fmt.Printf("    %.3f %.3f %.3f\n",
					c.Effect.TimeScale, c.Effect.TrafficScale, c.Effect.Inaccuracy)
			}
		}
		fmt.Println()
	}
}
