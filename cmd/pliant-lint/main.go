// Command pliant-lint runs the repo's determinism and hot-path invariant
// analyzers (internal/lint) over Go packages and reports violations as
// "file:line: [rule] message" lines (paths relative to the module root).
//
// The suite enforces the reproducibility contract as a source property:
// no wall-clock reads in virtual-time packages (wallclock), no global
// math/rand in internal/ (unseededrand), no map-iteration order leaking
// into ordered output (maporder), and no goroutines outside the sanctioned
// concurrency files (spawn). Findings are suppressed in place with
// reasoned "//pliant:allow <rule> — reason" comments.
//
// Usage:
//
//	pliant-lint ./...                        # whole module (testdata skipped)
//	pliant-lint ./internal/sched ./internal/sim
//	pliant-lint -json ./... > lint.json
//	pliant-lint -rules                       # print the rule catalog
//
// Exit status: 0 clean, 1 diagnostics found, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/approx-sched/pliant/internal/lint"
	"github.com/approx-sched/pliant/internal/version"
)

func main() {
	var (
		jsonOut     = flag.Bool("json", false, "emit diagnostics as JSON")
		listRules   = flag.Bool("rules", false, "print the rule catalog and exit")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}
	rules := lint.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "" || base == "." {
				base = cwd
			}
			sub, err := loader.Walk(base)
			if err != nil {
				fatal(err)
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, pat)
	}

	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, p)
	}

	diags := lint.Run(pkgs, rules)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Packages    int               `json:"packages"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
		}{len(pkgs), diags}); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "pliant-lint: %d finding(s) in %d package(s)\n",
				len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pliant-lint:", err)
	os.Exit(2)
}
