// Command pliant-lint runs the repo's determinism and hot-path invariant
// analyzers (internal/lint) over Go packages and reports violations as
// "file:line: [rule] message" lines (paths relative to the module root).
//
// The suite enforces the reproducibility contract as a source property.
// Four syntactic rules: no wall-clock reads in virtual-time packages
// (wallclock), no global math/rand in internal/ (unseededrand), no
// map-iteration order leaking into ordered output (maporder), and no
// goroutines outside the sanctioned concurrency files (spawn). Four
// dataflow rules over the two-phase fact engine: seed provenance
// (seedflow), shard state ownership (sharedstate), float summation order
// (floatorder), and the //pliant:hotpath allocation gate (hotpathalloc).
// Findings are suppressed in place with reasoned
// "//pliant:allow <rule> — reason" comments.
//
// Usage:
//
//	pliant-lint ./...                        # whole module (testdata skipped)
//	pliant-lint ./internal/sched ./internal/sim
//	pliant-lint -rules seedflow,sharedstate ./...
//	pliant-lint -json ./... > lint.json      # sorted diagnostics + hotpath set
//	pliant-lint -facts-debug ./internal/sched
//	pliant-lint -catalog                     # print the rule catalog
//
// Exit status: 0 clean, 1 diagnostics found, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	pliant "github.com/approx-sched/pliant"
	"github.com/approx-sched/pliant/internal/lint"
)

func main() {
	var (
		jsonOut     = flag.Bool("json", false, "emit diagnostics as JSON")
		ruleList    = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		catalog     = flag.Bool("catalog", false, "print the rule catalog and exit")
		factsDebug  = flag.Bool("facts-debug", false, "dump the computed fact set instead of linting")
		showVersion = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(pliant.Version())
		return
	}
	rules := lint.DefaultRules()
	if *catalog {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return
	}
	if *ruleList != "" {
		var err error
		rules, err = selectRules(rules, *ruleList)
		if err != nil {
			fatal(err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "" || base == "." {
				base = cwd
			}
			sub, err := loader.Walk(base)
			if err != nil {
				fatal(err)
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, pat)
	}

	pkgs, err := loader.LoadAll(dirs)
	if err != nil {
		fatal(err)
	}

	facts := lint.ComputeFacts(pkgs)
	if *factsDebug {
		facts.DebugDump(os.Stdout)
		return
	}

	diags := lint.RunWithFacts(pkgs, rules, facts)
	if diags == nil {
		diags = []lint.Diagnostic{} // a clean tree renders as [], not null
	}
	if *jsonOut {
		names := make([]string, len(rules))
		for i, r := range rules {
			names[i] = r.Name()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Packages    int               `json:"packages"`
			Rules       []string          `json:"rules"`
			Hotpaths    []string          `json:"hotpaths"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
		}{len(pkgs), names, facts.Hotpaths(), diags}); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "pliant-lint: %d finding(s) in %d package(s)\n",
				len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectRules filters the catalog down to a comma-separated name list,
// preserving catalog order and rejecting unknown names.
func selectRules(all []lint.Rule, csv string) ([]lint.Rule, error) {
	byName := make(map[string]lint.Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("unknown rule %q (see -catalog)", name)
		}
		want[name] = true
	}
	var out []lint.Rule
	for _, r := range all {
		if want[r.Name()] {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules %q selects no rules", csv)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pliant-lint:", err)
	os.Exit(2)
}
