// Command pliant-run executes one colocation scenario and reports the
// outcome, optionally with the per-interval trace — the workflow of the
// paper's dynamic-behavior studies (Figs. 4 and 6).
//
// Usage:
//
//	pliant-run -service memcached -apps canneal
//	pliant-run -service nginx -apps canneal,Bayesian -runtime pliant -trace
//	pliant-run -service mongodb -apps SNP -runtime precise -load 0.6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	var (
		svcName  = flag.String("service", "memcached", "interactive service: nginx, memcached, mongodb")
		apps     = flag.String("apps", "canneal", "comma-separated approximate applications (see -apps list)")
		runtime  = flag.String("runtime", "pliant", "runtime: pliant, precise, static-approx, impact-aware, learner")
		load     = flag.Float64("load", 0.78, "offered load as a fraction of saturation")
		interval = flag.Float64("interval", 1.0, "decision interval in seconds")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		scale    = flag.Float64("timescale", 1, "request-timescale multiplier (16 = fast profile)")
		trace    = flag.Bool("trace", false, "print the per-interval trace")
		jsonOut  = flag.String("json", "", "write the result as JSON to a file ('-' for stdout)")
		csvOut   = flag.String("csv", "", "write the per-interval trace as CSV to a file ('-' for stdout)")
		hints    = flag.String("hints", "", "load an ACCEPT-style hints file; its app becomes available to -apps")
		showVer  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(pliant.Version())
		return
	}

	if *apps == "list" {
		for _, p := range pliant.Applications() {
			fmt.Printf("%-17s %-10s %4.0fs nominal, %d variants max, %s\n",
				p.Name, p.Suite, p.NominalExecSec, p.MaxVariants, p.QualityMetric)
		}
		return
	}

	cls, err := parseService(*svcName)
	if err != nil {
		fail(err)
	}
	rt, err := parseRuntime(*runtime)
	if err != nil {
		fail(err)
	}

	var custom []pliant.AppProfile
	if *hints != "" {
		f, err := os.Open(*hints)
		if err != nil {
			fail(err)
		}
		prof, err := pliant.ParseHints(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		custom = append(custom, prof)
	}

	cfg := pliant.ScenarioConfig{
		Seed:             *seed,
		Service:          cls,
		AppNames:         strings.Split(*apps, ","),
		Runtime:          rt,
		LoadFraction:     *load,
		DecisionInterval: pliant.Duration(*interval * float64(pliant.Second)),
		TimeScale:        *scale,
		CustomApps:       custom,
	}
	res, err := pliant.RunScenario(cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("service   %s (QoS %v), runtime %s, load %.0f%%\n",
		res.Service, res.QoS, res.Runtime, *load*100)
	fmt.Printf("tail      p99 %v (%.2fx QoS overall, %.2fx steady), max interval %v\n",
		res.OverallP99, res.P99OverQoS(), res.TypicalOverQoS(), res.MaxIntervalP99)
	fmt.Printf("intervals %d total, %.0f%% violating; served %d, dropped %d, duration %v\n",
		res.Intervals, res.ViolationFrac*100, res.Served, res.Dropped, res.Duration)
	for _, a := range res.Apps {
		fmt.Printf("app       %-17s done=%-5v exec %v (%.2fx nominal), inaccuracy %.2f%%, "+
			"switches %d, max cores yielded %d\n",
			a.Name, a.Done, a.ExecTime, a.RelNominal, a.Inaccuracy, a.Switches, a.MaxYielded)
	}

	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(w *os.File) error { return pliant.WriteResultJSON(w, res) }); err != nil {
			fail(err)
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, func(w *os.File) error { return pliant.WriteTraceCSV(w, res) }); err != nil {
			fail(err)
		}
	}

	if *trace {
		fmt.Println("\n  t(s)  p99/QoS  svc.cores  per-app (variant,yielded)")
		p99 := res.Trace.Series("p99")
		svcCores := res.Trace.Series("svc.cores")
		for i, pt := range p99.Points {
			fmt.Printf("  %4.0f  %7.2f  %9.0f ", pt.T, pt.V, svcCores.Points[i].V)
			for _, a := range res.Apps {
				v := res.Trace.Series("variant." + a.Name).Points[i].V
				y := res.Trace.Series("yielded." + a.Name).Points[i].V
				fmt.Printf("  %s(%.0f,%.0f)", a.Name, v, y)
			}
			fmt.Println()
		}
	}
}

func parseService(name string) (pliant.ServiceClass, error) {
	switch name {
	case "nginx":
		return pliant.NGINX, nil
	case "memcached":
		return pliant.Memcached, nil
	case "mongodb":
		return pliant.MongoDB, nil
	default:
		return 0, fmt.Errorf("unknown service %q (nginx, memcached, mongodb)", name)
	}
}

func parseRuntime(name string) (pliant.RuntimeKind, error) {
	switch name {
	case "pliant":
		return pliant.RuntimePliant, nil
	case "precise":
		return pliant.RuntimePrecise, nil
	case "static-approx":
		return pliant.RuntimeStaticApprox, nil
	case "impact-aware":
		return pliant.RuntimeImpactAware, nil
	case "learner":
		return pliant.RuntimeLearner, nil
	default:
		return 0, fmt.Errorf("unknown runtime %q", name)
	}
}

// writeTo writes through fn to a path, "-" meaning stdout.
func writeTo(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pliant-run: %v\n", err)
	os.Exit(1)
}
