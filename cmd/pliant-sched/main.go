// Command pliant-sched runs the online cluster scheduler: approximate jobs
// stream into a cluster of interactive-service nodes, an online policy
// places (or defers) them at every scheduling window, and each node runs its
// colocation under the Pliant runtime with time-varying service load.
//
// Usage:
//
//	pliant-sched -policy telemetry -shape diurnal -timescale 16
//	pliant-sched -policy all -nodes memcached,nginx,mongodb,mongodb -rate 0.12
//	pliant-sched -shape flash -peak 1.6 -timescale 16 -csv trace.csv
//	pliant-sched -energy -autoscale approx-for-watts -policy telemetry
//	pliant-sched -shards 8 -policy telemetry   # sharded multi-engine run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "memcached,nginx,mongodb",
			"comma-separated node services; one node per entry")
		maxApps = flag.Int("maxapps", 3, "job slots per node")
		policy  = flag.String("policy", "all", "placement policy: first-fit, best-fit, spread, telemetry, all")
		horizon = flag.Float64("horizon", 240, "cluster-time horizon in seconds")
		epoch   = flag.Float64("epoch", 12, "scheduling window in seconds")
		rate    = flag.Float64("rate", 0, "job arrivals per second (0 = sized to capacity)")
		load    = flag.Float64("load", 0.65, "base offered load on every node's service")
		shape   = flag.String("shape", "diurnal", "load shape: steady, diurnal, flash")
		amp     = flag.Float64("amp", 0.25, "diurnal amplitude around 1")
		period  = flag.Float64("period", 0, "diurnal period in seconds (0 = one day across the horizon)")
		peak    = flag.Float64("peak", 1.6, "flash-crowd peak multiplier")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		scale   = flag.Float64("timescale", 1, "request-timescale multiplier (16 = fast profile)")
		workers = flag.Int("workers", 0, "node-simulation worker pool size (0 = GOMAXPROCS; single-engine path only)")
		shards  = flag.Int("shards", 1,
			"per-worker engine groups advancing windows in parallel (results are byte-identical for any value)")
		jobsFlag   = flag.String("jobs", "", "comma-separated catalog apps to cycle jobs through (default: shuffled catalog)")
		jsonOut    = flag.String("json", "", "write the result as JSON to a file ('-' for stdout)")
		csvOut     = flag.String("csv", "", "write the cluster-horizon trace as CSV to a file ('-' for stdout)")
		useEnergy  = flag.Bool("energy", false, "attach the Table 1 power model: joules accounting + energy columns")
		autoscaler = flag.String("autoscale", "none",
			"node lifecycle controller (implies -energy): none, consolidate, approx-for-watts")
	)
	flag.Parse()

	nodes, err := parseNodes(*nodesFlag, *maxApps)
	if err != nil {
		fail(err)
	}
	ls, err := parseShape(*shape, *amp, *period, *peak, *horizon)
	if err != nil {
		fail(err)
	}

	cfg := pliant.SchedConfig{
		Seed:       *seed,
		Nodes:      nodes,
		Horizon:    pliant.Duration(*horizon * float64(pliant.Second)),
		Epoch:      pliant.Duration(*epoch * float64(pliant.Second)),
		JobsPerSec: *rate,
		BaseLoad:   *load,
		Shape:      ls,
		TimeScale:  *scale,
		Workers:    *workers,
		Shards:     *shards,
	}
	if *jobsFlag != "" {
		cfg.JobNames = strings.Split(*jobsFlag, ",")
	}
	if *useEnergy || *autoscaler != "none" {
		model := pliant.EnergyModelFor(pliant.TablePlatform())
		cfg.Energy = &model
	}
	switch *autoscaler {
	case "none":
	case "consolidate":
		cfg.Autoscaler = pliant.ConsolidateAutoscaler{}
	case "approx-for-watts":
		cfg.Autoscaler = pliant.ApproxForWattsAutoscaler{}
	default:
		fail(fmt.Errorf("unknown autoscaler %q (none, consolidate, approx-for-watts)", *autoscaler))
	}

	policies, err := parsePolicies(*policy)
	if err != nil {
		fail(err)
	}
	results, err := pliant.CompareSchedPolicies(cfg, policies...)
	if err != nil {
		fail(err)
	}
	fmt.Print(pliant.RenderSchedComparison(results))

	last := results[len(results)-1]
	fmt.Printf("\n%s detail: %d episodes, %d jobs pending at horizon, max wait %.1fs\n",
		last.Policy, last.Episodes, last.Pending, last.MaxWaitSec)

	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(w *os.File) error { return pliant.WriteSchedResultJSON(w, last) }); err != nil {
			fail(err)
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, func(w *os.File) error { return pliant.WriteSchedTraceCSV(w, last) }); err != nil {
			fail(err)
		}
	}
}

func parseNodes(spec string, maxApps int) ([]pliant.ClusterNode, error) {
	counts := map[string]int{}
	var nodes []pliant.ClusterNode
	for _, name := range strings.Split(spec, ",") {
		var cls pliant.ServiceClass
		var prefix string
		switch name {
		case "nginx":
			cls, prefix = pliant.NGINX, "web"
		case "memcached":
			cls, prefix = pliant.Memcached, "cache"
		case "mongodb":
			cls, prefix = pliant.MongoDB, "db"
		default:
			return nil, fmt.Errorf("unknown service %q (nginx, memcached, mongodb)", name)
		}
		counts[prefix]++
		nodes = append(nodes, pliant.ClusterNode{
			Name:    fmt.Sprintf("%s-%d", prefix, counts[prefix]),
			Service: cls,
			MaxApps: maxApps,
		})
	}
	return nodes, nil
}

func parseShape(kind string, amp, period, peak, horizonSec float64) (pliant.LoadShape, error) {
	switch kind {
	case "steady":
		return pliant.SteadyLoad{}, nil
	case "diurnal":
		if period == 0 {
			period = horizonSec // one "day" compressed into the horizon
		}
		return pliant.NewDiurnalLoad(amp, period)
	case "flash":
		return pliant.NewFlashLoad(1, peak, horizonSec/3, horizonSec/6)
	default:
		return nil, fmt.Errorf("unknown shape %q (steady, diurnal, flash)", kind)
	}
}

func parsePolicies(name string) ([]pliant.SchedPolicy, error) {
	switch name {
	case "first-fit":
		return []pliant.SchedPolicy{pliant.FirstFitPlacement{}}, nil
	case "best-fit":
		return []pliant.SchedPolicy{pliant.BestFitPlacement{}}, nil
	case "spread":
		return []pliant.SchedPolicy{pliant.SpreadPlacement{}}, nil
	case "telemetry":
		return []pliant.SchedPolicy{pliant.TelemetryAwarePlacement{}}, nil
	case "all":
		return []pliant.SchedPolicy{
			pliant.FirstFitPlacement{},
			pliant.BestFitPlacement{},
			pliant.SpreadPlacement{},
			pliant.TelemetryAwarePlacement{},
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (first-fit, best-fit, spread, telemetry, all)", name)
	}
}

// writeTo writes through fn to a path, "-" meaning stdout.
func writeTo(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pliant-sched: %v\n", err)
	os.Exit(1)
}
