// Command pliant-sched runs the online cluster scheduler: approximate jobs
// stream into a cluster of interactive-service nodes, an online policy
// places (or defers) them at every scheduling window, and each node runs its
// colocation under the Pliant runtime with time-varying service load.
//
// Usage:
//
//	pliant-sched -policy telemetry -shape diurnal -timescale 16
//	pliant-sched -policy all -nodes memcached,nginx,mongodb,mongodb -rate 0.12
//	pliant-sched -shape flash -peak 1.6 -timescale 16 -csv trace.csv
//	pliant-sched -energy -autoscale approx-for-watts -policy telemetry
//	pliant-sched -shards 8 -policy telemetry   # sharded multi-engine run
//	pliant-sched -trace tasks.csv -trace-format google -trace-scale 180
//	pliant-sched -trace vms.csv -trace-format azure -trace-jobs 48 -shape trace
//	pliant-sched -policy telemetry -obs -trace-out trace.json -metrics-csv metrics.csv
//	pliant-sched -policy telemetry -mttf 120 -mttr 15 -retries 2   # seeded crash churn
//	pliant-sched -outage 80:1:40 -fault-domain 2 -autoscale degrade-under-loss
//	pliant-sched -trace tasks.csv -trace-faults   # replay the trace's failure rate
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "memcached,nginx,mongodb",
			"comma-separated node services; one node per entry")
		maxApps = flag.Int("maxapps", 3, "job slots per node")
		policy  = flag.String("policy", "all", "placement policy: first-fit, best-fit, spread, telemetry, all")
		horizon = flag.Float64("horizon", 240, "cluster-time horizon in seconds")
		epoch   = flag.Float64("epoch", 12, "scheduling window in seconds")
		rate    = flag.Float64("rate", 0, "job arrivals per second (0 = sized to capacity)")
		load    = flag.Float64("load", 0.65, "base offered load on every node's service")
		shape   = flag.String("shape", "diurnal", "load shape: steady, diurnal, flash, trace (ride the -trace rate curve)")
		amp     = flag.Float64("amp", 0.25, "diurnal amplitude around 1")
		period  = flag.Float64("period", 0, "diurnal period in seconds (0 = one day across the horizon)")
		peak    = flag.Float64("peak", 1.6, "flash-crowd peak multiplier")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		scale   = flag.Float64("timescale", 1, "request-timescale multiplier (16 = fast profile)")
		workers = flag.Int("workers", 0, "node-simulation worker pool size (0 = GOMAXPROCS; single-engine path only)")
		shards  = flag.Int("shards", 1,
			"per-worker engine groups advancing windows in parallel (results are byte-identical for any value)")
		traceFile = flag.String("trace", "",
			"replay a production cluster trace as the job stream (see -trace-format)")
		traceFormat = flag.String("trace-format", "google", "trace schema: google (ClusterData task events), azure (VM rows)")
		traceScale  = flag.Float64("trace-scale", 0,
			"compress the trace's time axis this many times (0 = rescale so the last arrival lands at 90% of the horizon)")
		traceJobs = flag.Int("trace-jobs", 0,
			"deterministically down-sample the trace to at most this many jobs (0 = twice the cluster's slots)")
		jobsFlag   = flag.String("jobs", "", "comma-separated catalog apps to cycle jobs through (default: shuffled catalog; with -trace, the candidate set)")
		jsonOut    = flag.String("json", "", "write the result as JSON to a file ('-' for stdout)")
		csvOut     = flag.String("csv", "", "write the cluster-horizon trace as CSV to a file ('-' for stdout)")
		obsOn      = flag.Bool("obs", false, "attach the observability layer and print a shard wall-clock profile (implied by the -trace-out/-metrics-* flags; needs a single -policy)")
		traceOut   = flag.String("trace-out", "", "write the decision trace as Chrome trace-event JSON, loadable in Perfetto ('-' for stdout; implies -obs)")
		metricsOut = flag.String("metrics-out", "", "write final metrics in Prometheus text format ('-' for stdout; implies -obs)")
		metricsCSV = flag.String("metrics-csv", "", "write per-window metric snapshots as CSV ('-' for stdout; implies -obs)")
		useEnergy  = flag.Bool("energy", false, "attach the Table 1 power model: joules accounting + energy columns")
		autoscaler = flag.String("autoscale", "none",
			"node lifecycle controller (implies -energy): none, consolidate, approx-for-watts, degrade-under-loss")
		mttf = flag.Float64("mttf", 0,
			"per-node mean time to failure in virtual seconds: seeded crash/recover churn (0 = no random crashes)")
		mttr        = flag.Float64("mttr", 0, "mean repair time of random crashes in virtual seconds (0 = the 30s default)")
		faultDomain = flag.Int("fault-domain", 0,
			"group consecutive nodes into correlated failure domains (racks) of this size")
		outageFlag = flag.String("outage", "",
			"scripted rack outages as at:domain:duration triples in seconds, comma-separated (e.g. 80:1:40)")
		retries = flag.Int("retries", 0,
			"per-job retry budget after a crash (0 = the default 3, negative = drop on first crash)")
		traceFaults = flag.Bool("trace-faults", false,
			"derive the crash rate from the -trace's failure-shaped terminal causes (EVICT/FAIL/KILL/LOST)")
	)
	flag.Parse()

	nodes, err := parseNodes(*nodesFlag, *maxApps)
	if err != nil {
		fail(err)
	}

	var tr *pliant.ClusterTrace
	if *traceFile != "" {
		slots := 0
		for _, n := range nodes {
			slots += n.MaxApps
		}
		tr, err = loadTrace(*traceFile, *traceFormat, *traceScale, *traceJobs, *horizon, slots)
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d %s jobs over %.0fs (from %d rows, %d dropped, %d duration-defaulted)\n\n",
			len(tr.Jobs), tr.Source, tr.SpanSec(), tr.Rows, tr.Dropped, tr.Defaulted)
	}

	ls, err := parseShape(*shape, *amp, *period, *peak, *horizon, tr)
	if err != nil {
		fail(err)
	}

	cfg := pliant.SchedConfig{
		Seed:       *seed,
		Nodes:      nodes,
		Horizon:    pliant.Duration(*horizon * float64(pliant.Second)),
		Epoch:      pliant.Duration(*epoch * float64(pliant.Second)),
		JobsPerSec: *rate,
		BaseLoad:   *load,
		Shape:      ls,
		TimeScale:  *scale,
		Workers:    *workers,
		Shards:     *shards,
	}
	if *jobsFlag != "" {
		cfg.JobNames = strings.Split(*jobsFlag, ",")
	}
	if tr != nil {
		cfg.Trace = tr
		cfg.JobsPerSec = 0
	}
	if *useEnergy || *autoscaler != "none" {
		model := pliant.EnergyModelFor(pliant.TablePlatform())
		cfg.Energy = &model
	}
	switch *autoscaler {
	case "none":
	case "consolidate":
		cfg.Autoscaler = pliant.ConsolidateAutoscaler{}
	case "approx-for-watts":
		cfg.Autoscaler = pliant.ApproxForWattsAutoscaler{}
	case "degrade-under-loss":
		cfg.Autoscaler = pliant.DegradeUnderLossController{}
	default:
		fail(fmt.Errorf("unknown autoscaler %q (none, consolidate, approx-for-watts, degrade-under-loss)", *autoscaler))
	}

	plan, err := buildFaultPlan(*traceFaults, tr, *horizon, *mttf, *mttr, *faultDomain, *outageFlag, *retries)
	if err != nil {
		fail(err)
	}
	if plan != nil {
		cfg.Faults = plan
		fmt.Printf("faults: MTTF %.0fs, MTTR %.0fs, domains of %d, %d scripted outage(s), retry budget %d\n\n",
			plan.MTTFSec, plan.MTTRSec, plan.DomainSize, len(plan.Outages), plan.Retries())
	}

	policies, err := parsePolicies(*policy)
	if err != nil {
		fail(err)
	}
	wantObs := *obsOn || *traceOut != "" || *metricsOut != "" || *metricsCSV != ""
	if wantObs {
		if len(policies) != 1 {
			fail(fmt.Errorf("observability outputs cover one run: pick a single -policy (not %q)", *policy))
		}
		cfg.Obs = pliant.NewObserver(pliant.ObserverOptions{})
	}
	results, err := pliant.CompareSchedPolicies(cfg, policies...)
	if err != nil {
		fail(err)
	}
	fmt.Print(pliant.RenderSchedComparison(results))

	last := results[len(results)-1]
	fmt.Printf("\n%s detail: %d episodes, %d jobs pending at horizon, max wait %.1fs\n",
		last.Policy, last.Episodes, last.Pending, last.MaxWaitSec)
	if cfg.Faults != nil {
		fmt.Printf("%s faults: %d crashes, %d recoveries, %d jobs requeued, %d lost, %d down node-windows\n",
			last.Policy, last.Crashes, last.Recoveries, last.Requeued, last.JobsLost, last.DownNodeWindows)
	}

	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(w *os.File) error { return pliant.WriteSchedResultJSON(w, last) }); err != nil {
			fail(err)
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, func(w *os.File) error { return pliant.WriteSchedTraceCSV(w, last) }); err != nil {
			fail(err)
		}
	}
	if wantObs {
		printProfiles(last.ShardProfiles)
		meta := pliant.ObsTraceMeta{Policy: last.Policy}
		for _, n := range nodes {
			meta.NodeNames = append(meta.NodeNames, n.Name)
		}
		if *traceOut != "" {
			if err := writeTo(*traceOut, func(w *os.File) error {
				return pliant.WriteChromeTrace(w, cfg.Obs.Tracer, meta)
			}); err != nil {
				fail(err)
			}
		}
		if *metricsOut != "" {
			if err := writeTo(*metricsOut, func(w *os.File) error {
				return pliant.WriteMetricsProm(w, cfg.Obs.Metrics)
			}); err != nil {
				fail(err)
			}
		}
		if *metricsCSV != "" {
			if err := writeTo(*metricsCSV, func(w *os.File) error {
				return pliant.WriteMetricsCSV(w, cfg.Obs.Metrics)
			}); err != nil {
				fail(err)
			}
		}
	}
}

// printProfiles renders the wall-clock shard profile (non-deterministic;
// kept out of every golden-pinned artifact).
func printProfiles(profiles []pliant.ShardProfile) {
	if len(profiles) == 0 {
		return
	}
	fmt.Printf("\nshard wall-clock profile\n  %5s %8s %9s %12s %13s\n",
		"shard", "windows", "episodes", "episode ms", "barrier wait")
	for _, p := range profiles {
		fmt.Printf("  %5d %8d %9d %12.1f %12.0f%%\n",
			p.Shard, p.Windows, p.Episodes, float64(p.EpisodeNs)/1e6, p.BarrierWaitFrac()*100)
	}
}

func parseNodes(spec string, maxApps int) ([]pliant.ClusterNode, error) {
	counts := map[string]int{}
	var nodes []pliant.ClusterNode
	for _, name := range strings.Split(spec, ",") {
		var cls pliant.ServiceClass
		var prefix string
		switch name {
		case "nginx":
			cls, prefix = pliant.NGINX, "web"
		case "memcached":
			cls, prefix = pliant.Memcached, "cache"
		case "mongodb":
			cls, prefix = pliant.MongoDB, "db"
		default:
			return nil, fmt.Errorf("unknown service %q (nginx, memcached, mongodb)", name)
		}
		counts[prefix]++
		nodes = append(nodes, pliant.ClusterNode{
			Name:    fmt.Sprintf("%s-%d", prefix, counts[prefix]),
			Service: cls,
			MaxApps: maxApps,
		})
	}
	return nodes, nil
}

func parseShape(kind string, amp, period, peak, horizonSec float64, tr *pliant.ClusterTrace) (pliant.LoadShape, error) {
	switch kind {
	case "steady":
		return pliant.SteadyLoad{}, nil
	case "diurnal":
		if period == 0 {
			period = horizonSec // one "day" compressed into the horizon
		}
		return pliant.NewDiurnalLoad(amp, period)
	case "flash":
		return pliant.NewFlashLoad(1, peak, horizonSec/3, horizonSec/6)
	case "trace":
		// The services ride the replayed trace's own rate curve.
		if tr == nil {
			return nil, fmt.Errorf("-shape trace needs -trace")
		}
		times, mult, err := tr.RateShape(12)
		if err != nil {
			return nil, err
		}
		return pliant.NewReplayLoad(times, mult)
	default:
		return nil, fmt.Errorf("unknown shape %q (steady, diurnal, flash, trace)", kind)
	}
}

// loadTrace parses and normalizes a trace file for replay over the horizon.
func loadTrace(path, format string, scale float64, maxJobs int, horizonSec float64, slots int) (*pliant.ClusterTrace, error) {
	f, err := pliant.TraceFormatByName(format)
	if err != nil {
		return nil, err
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	tr, err := pliant.ParseTrace(file, f)
	if err != nil {
		return nil, err
	}
	opts := pliant.TraceOptions{RateScale: scale}
	if scale == 0 {
		opts.TargetSpanSec = 0.9 * horizonSec
	}
	if maxJobs > 0 {
		opts.MaxJobs = maxJobs
	} else {
		opts.MaxJobs = 2 * slots
	}
	return tr.Normalize(opts)
}

// buildFaultPlan assembles the run's fault plan from the flags: nil when no
// fault knob was touched, a trace-derived MTTF/MTTR base when -trace-faults
// is set, with the explicit flags layered on top either way.
func buildFaultPlan(fromTrace bool, tr *pliant.ClusterTrace, horizonSec, mttf, mttr float64,
	domain int, outageSpec string, retries int) (*pliant.FaultPlan, error) {
	var plan pliant.FaultPlan
	armed := false
	if mttf < 0 || mttr < 0 {
		return nil, fmt.Errorf("-mttf/-mttr must be non-negative virtual seconds (0 = off/default)")
	}
	if fromTrace {
		if tr == nil {
			return nil, fmt.Errorf("-trace-faults needs -trace")
		}
		derived, err := pliant.FaultPlanFromTrace(tr, horizonSec)
		if err != nil {
			return nil, err
		}
		plan = derived
		armed = true
	}
	if mttf > 0 {
		plan.MTTFSec = mttf
		armed = true
	}
	if mttr > 0 {
		plan.MTTRSec = mttr
	}
	if domain > 0 {
		plan.DomainSize = domain
	}
	if retries != 0 {
		plan.RetryBudget = retries
	}
	if outageSpec != "" {
		outages, err := parseOutages(outageSpec)
		if err != nil {
			return nil, err
		}
		plan.Outages = outages
		armed = true
	}
	if !armed {
		return nil, nil
	}
	return &plan, nil
}

// parseOutages reads the -outage spec: comma-separated at:domain:duration
// triples in seconds.
func parseOutages(spec string) ([]pliant.FaultOutage, error) {
	var outages []pliant.FaultOutage
	for _, part := range strings.Split(spec, ",") {
		var o pliant.FaultOutage
		if _, err := fmt.Sscanf(part, "%f:%d:%f", &o.AtSec, &o.Domain, &o.DurationSec); err != nil {
			return nil, fmt.Errorf("outage %q: want at:domain:duration (e.g. 80:1:40)", part)
		}
		outages = append(outages, o)
	}
	return outages, nil
}

func parsePolicies(name string) ([]pliant.SchedPolicy, error) {
	switch name {
	case "first-fit":
		return []pliant.SchedPolicy{pliant.FirstFitPlacement{}}, nil
	case "best-fit":
		return []pliant.SchedPolicy{pliant.BestFitPlacement{}}, nil
	case "spread":
		return []pliant.SchedPolicy{pliant.SpreadPlacement{}}, nil
	case "telemetry":
		return []pliant.SchedPolicy{pliant.TelemetryAwarePlacement{}}, nil
	case "all":
		return []pliant.SchedPolicy{
			pliant.FirstFitPlacement{},
			pliant.BestFitPlacement{},
			pliant.SpreadPlacement{},
			pliant.TelemetryAwarePlacement{},
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (first-fit, best-fit, spread, telemetry, all)", name)
	}
}

// writeTo writes through fn to a path, "-" meaning stdout.
func writeTo(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pliant-sched: %v\n", err)
	os.Exit(1)
}
