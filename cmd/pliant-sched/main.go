// Command pliant-sched runs the online cluster scheduler: approximate jobs
// stream into a cluster of interactive-service nodes, an online policy
// places (or defers) them at every scheduling window, and each node runs its
// colocation under the Pliant runtime with time-varying service load.
//
// The flags lower onto the same session-spec surface the pliant-served
// daemon resolves (pliant.ServeSpec), so a batch run and a daemon session
// with equal parameters cannot drift semantically.
//
// Usage:
//
//	pliant-sched -policy telemetry -shape diurnal -timescale 16
//	pliant-sched -policy all -nodes memcached,nginx,mongodb,mongodb -rate 0.12
//	pliant-sched -shape flash -peak 1.6 -timescale 16 -csv trace.csv
//	pliant-sched -energy -autoscale approx-for-watts -policy telemetry
//	pliant-sched -shards 8 -policy telemetry   # sharded multi-engine run
//	pliant-sched -trace tasks.csv -trace-format google -trace-scale 180
//	pliant-sched -trace vms.csv -trace-format azure -trace-jobs 48 -shape trace
//	pliant-sched -policy telemetry -obs -trace-out trace.json -metrics-csv metrics.csv
//	pliant-sched -policy telemetry -mttf 120 -mttr 15 -retries 2   # seeded crash churn
//	pliant-sched -outage 80:1:40 -fault-domain 2 -autoscale degrade-under-loss
//	pliant-sched -trace tasks.csv -trace-faults   # replay the trace's failure rate
//
// SIGINT/SIGTERM stops the run at the next window boundary: the partial
// result still renders and still flushes to -json/-csv, marked truncated.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "memcached,nginx,mongodb",
			"comma-separated node services; one node per entry")
		maxApps = flag.Int("maxapps", 3, "job slots per node")
		policy  = flag.String("policy", "all", "placement policy: first-fit, best-fit, spread, telemetry, all")
		horizon = flag.Float64("horizon", 240, "cluster-time horizon in seconds")
		epoch   = flag.Float64("epoch", 12, "scheduling window in seconds")
		rate    = flag.Float64("rate", 0, "job arrivals per second (0 = sized to capacity)")
		load    = flag.Float64("load", 0.65, "base offered load on every node's service")
		shape   = flag.String("shape", "diurnal", "load shape: steady, diurnal, flash, trace (ride the -trace rate curve)")
		amp     = flag.Float64("amp", 0.25, "diurnal amplitude around 1")
		period  = flag.Float64("period", 0, "diurnal period in seconds (0 = one day across the horizon)")
		peak    = flag.Float64("peak", 1.6, "flash-crowd peak multiplier")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		scale   = flag.Float64("timescale", 1, "request-timescale multiplier (16 = fast profile)")
		workers = flag.Int("workers", 0, "node-simulation worker pool size (0 = GOMAXPROCS; single-engine path only)")
		shards  = flag.Int("shards", 1,
			"per-worker engine groups advancing windows in parallel (results are byte-identical for any value)")
		traceFile = flag.String("trace", "",
			"replay a production cluster trace as the job stream (see -trace-format)")
		traceFormat = flag.String("trace-format", "google", "trace schema: google (ClusterData task events), azure (VM rows)")
		traceScale  = flag.Float64("trace-scale", 0,
			"compress the trace's time axis this many times (0 = rescale so the last arrival lands at 90% of the horizon)")
		traceJobs = flag.Int("trace-jobs", 0,
			"deterministically down-sample the trace to at most this many jobs (0 = twice the cluster's slots)")
		jobsFlag   = flag.String("jobs", "", "comma-separated catalog apps to cycle jobs through (default: shuffled catalog; with -trace, the candidate set)")
		jsonOut    = flag.String("json", "", "write the result as JSON to a file ('-' for stdout)")
		csvOut     = flag.String("csv", "", "write the cluster-horizon trace as CSV to a file ('-' for stdout)")
		obsOn      = flag.Bool("obs", false, "attach the observability layer and print a shard wall-clock profile (implied by the -trace-out/-metrics-* flags; needs a single -policy)")
		traceOut   = flag.String("trace-out", "", "write the decision trace as Chrome trace-event JSON, loadable in Perfetto ('-' for stdout; implies -obs)")
		metricsOut = flag.String("metrics-out", "", "write final metrics in Prometheus text format ('-' for stdout; implies -obs)")
		metricsCSV = flag.String("metrics-csv", "", "write per-window metric snapshots as CSV ('-' for stdout; implies -obs)")
		useEnergy  = flag.Bool("energy", false, "attach the Table 1 power model: joules accounting + energy columns")
		autoscaler = flag.String("autoscale", "none",
			"node lifecycle controller (implies -energy): none, consolidate, approx-for-watts, degrade-under-loss")
		mttf = flag.Float64("mttf", 0,
			"per-node mean time to failure in virtual seconds: seeded crash/recover churn (0 = no random crashes)")
		mttr        = flag.Float64("mttr", 0, "mean repair time of random crashes in virtual seconds (0 = the 30s default)")
		faultDomain = flag.Int("fault-domain", 0,
			"group consecutive nodes into correlated failure domains (racks) of this size")
		outageFlag = flag.String("outage", "",
			"scripted rack outages as at:domain:duration triples in seconds, comma-separated (e.g. 80:1:40)")
		retries = flag.Int("retries", 0,
			"per-job retry budget after a crash (0 = the default 3, negative = drop on first crash)")
		traceFaults = flag.Bool("trace-faults", false,
			"derive the crash rate from the -trace's failure-shaped terminal causes (EVICT/FAIL/KILL/LOST)")
		showVer = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(pliant.Version())
		return
	}

	outages, err := parseOutages(*outageFlag)
	if err != nil {
		fail(err)
	}
	sp := pliant.ServeSpec{
		Seed:        *seed,
		Nodes:       strings.Split(*nodesFlag, ","),
		MaxApps:     *maxApps,
		Policies:    []string{*policy},
		HorizonSec:  *horizon,
		EpochSec:    *epoch,
		Rate:        *rate,
		Load:        *load,
		Shape:       *shape,
		Amp:         *amp,
		PeriodSec:   *period,
		Peak:        *peak,
		TimeScale:   *scale,
		Workers:     *workers,
		Shards:      *shards,
		Energy:      *useEnergy,
		Autoscale:   *autoscaler,
		MTTFSec:     *mttf,
		MTTRSec:     *mttr,
		FaultDomain: *faultDomain,
		Outages:     outages,
		Retries:     *retries,
		TraceFaults: *traceFaults,
	}
	if *jobsFlag != "" {
		sp.Jobs = strings.Split(*jobsFlag, ",")
	}
	if *traceFile != "" {
		text, err := os.ReadFile(*traceFile)
		if err != nil {
			fail(err)
		}
		sp.Trace = &pliant.ServeTraceSpec{
			Format:    *traceFormat,
			CSV:       string(text),
			RateScale: *traceScale,
			MaxJobs:   *traceJobs,
		}
	}

	resolved, err := pliant.ResolveServeSpec(sp)
	if err != nil {
		fail(err)
	}
	cfg := resolved.Cfg

	if tr := resolved.Trace; tr != nil {
		fmt.Printf("trace: %d %s jobs over %.0fs (from %d rows, %d dropped, %d duration-defaulted)\n\n",
			len(tr.Jobs), tr.Source, tr.SpanSec(), tr.Rows, tr.Dropped, tr.Defaulted)
	}
	if plan := cfg.Faults; plan != nil {
		fmt.Printf("faults: MTTF %.0fs, MTTR %.0fs, domains of %d, %d scripted outage(s), retry budget %d\n\n",
			plan.MTTFSec, plan.MTTRSec, plan.DomainSize, len(plan.Outages), plan.Retries())
	}

	wantObs := *obsOn || *traceOut != "" || *metricsOut != "" || *metricsCSV != ""
	if wantObs {
		if len(resolved.Policies) != 1 {
			fail(fmt.Errorf("observability outputs cover one run: pick a single -policy (not %q)", *policy))
		}
		cfg.Obs = pliant.NewObserver(pliant.ObserverOptions{})
	}

	// Stop at the next window boundary on SIGINT/SIGTERM: the partial result
	// still renders and still flushes to -json/-csv, marked truncated.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	interrupted := false

	var results []pliant.SchedResult
	for _, pol := range resolved.Policies {
		if interrupted {
			break
		}
		c := cfg
		c.Policy = pol
		res, err := runInterruptible(c, sigCh, &interrupted)
		if err != nil {
			fail(fmt.Errorf("policy %s: %w", pol.Name(), err))
		}
		results = append(results, res)
	}
	if len(results) == 0 {
		fail(fmt.Errorf("interrupted before the first window"))
	}
	fmt.Print(pliant.RenderSchedComparison(results))

	last := results[len(results)-1]
	fmt.Printf("\n%s detail: %d episodes, %d jobs pending at horizon, max wait %.1fs\n",
		last.Policy, last.Episodes, last.Pending, last.MaxWaitSec)
	if cfg.Faults != nil {
		fmt.Printf("%s faults: %d crashes, %d recoveries, %d jobs requeued, %d lost, %d down node-windows\n",
			last.Policy, last.Crashes, last.Recoveries, last.Requeued, last.JobsLost, last.DownNodeWindows)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "pliant-sched: interrupted — %s stopped short of its %.0fs horizon (result marked truncated)\n",
			last.Policy, last.HorizonSec)
	}

	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(w *os.File) error { return pliant.WriteSchedResultJSON(w, last) }); err != nil {
			fail(err)
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, func(w *os.File) error { return pliant.WriteSchedTraceCSV(w, last) }); err != nil {
			fail(err)
		}
	}
	if wantObs {
		printProfiles(last.ShardProfiles)
		meta := pliant.ObsTraceMeta{Policy: last.Policy}
		for _, n := range cfg.Nodes {
			meta.NodeNames = append(meta.NodeNames, n.Name)
		}
		if *traceOut != "" {
			if err := writeTo(*traceOut, func(w *os.File) error {
				return pliant.WriteChromeTrace(w, cfg.Obs.Tracer, meta)
			}); err != nil {
				fail(err)
			}
		}
		if *metricsOut != "" {
			if err := writeTo(*metricsOut, func(w *os.File) error {
				return pliant.WriteMetricsProm(w, cfg.Obs.Metrics)
			}); err != nil {
				fail(err)
			}
		}
		if *metricsCSV != "" {
			if err := writeTo(*metricsCSV, func(w *os.File) error {
				return pliant.WriteMetricsCSV(w, cfg.Obs.Metrics)
			}); err != nil {
				fail(err)
			}
		}
	}
}

// runInterruptible drives one policy's run a window at a time, checking for
// a delivered signal between windows. A run cut short finalizes normally
// (its Result carries Truncated); *interrupted tells the caller to skip any
// remaining policies.
func runInterruptible(cfg pliant.SchedConfig, sigCh <-chan os.Signal, interrupted *bool) (pliant.SchedResult, error) {
	r, err := pliant.NewSchedRunner(cfg)
	if err != nil {
		return pliant.SchedResult{}, err
	}
	defer r.Close()
	for {
		select {
		case <-sigCh:
			*interrupted = true
		default:
		}
		if *interrupted {
			break
		}
		more, err := r.StepWindow()
		if err != nil {
			return pliant.SchedResult{}, err
		}
		if !more {
			break
		}
	}
	return r.Finalize()
}

// printProfiles renders the wall-clock shard profile (non-deterministic;
// kept out of every golden-pinned artifact).
func printProfiles(profiles []pliant.ShardProfile) {
	if len(profiles) == 0 {
		return
	}
	fmt.Printf("\nshard wall-clock profile\n  %5s %8s %9s %12s %13s\n",
		"shard", "windows", "episodes", "episode ms", "barrier wait")
	for _, p := range profiles {
		fmt.Printf("  %5d %8d %9d %12.1f %12.0f%%\n",
			p.Shard, p.Windows, p.Episodes, float64(p.EpisodeNs)/1e6, p.BarrierWaitFrac()*100)
	}
}

// parseOutages reads the -outage spec: comma-separated at:domain:duration
// triples in seconds.
func parseOutages(spec string) ([]pliant.ServeOutageSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var outages []pliant.ServeOutageSpec
	for _, part := range strings.Split(spec, ",") {
		var o pliant.ServeOutageSpec
		if _, err := fmt.Sscanf(part, "%f:%d:%f", &o.AtSec, &o.Domain, &o.DurationSec); err != nil {
			return nil, fmt.Errorf("outage %q: want at:domain:duration (e.g. 80:1:40)", part)
		}
		outages = append(outages, o)
	}
	return outages, nil
}

// writeTo writes through fn to a path, "-" meaning stdout.
func writeTo(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pliant-sched: %v\n", err)
	os.Exit(1)
}
