// Command pliant-served is the shadow-scheduler daemon: a long-running
// serving layer that holds named scheduling sessions open — each advanced
// faster-than-real-time — behind an HTTP API (stdlib net/http only).
//
// Usage:
//
//	pliant-served                         # listen on :8077
//	pliant-served -addr 127.0.0.1:9090    # custom listen address
//	pliant-served -max-sessions 4         # bound concurrently live sessions
//	pliant-served -version                # print the build identity
//
// Quickstart (see README.md for the full tour):
//
//	curl -s -X POST localhost:8077/v1/sessions -d '{"policies":["telemetry","first-fit"],"pace_ms":250}'
//	curl -s -X POST localhost:8077/v1/sessions/s1/jobs -d '{"jobs":["canneal"]}'
//	curl -N localhost:8077/v1/sessions/s1/events
//	curl -s localhost:8077/metrics
//
// SIGINT/SIGTERM drains gracefully: no new sessions, every running session
// finalizes (truncated if short of its horizon), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	var (
		addr        = flag.String("addr", ":8077", "listen address")
		maxSessions = flag.Int("max-sessions", 0, "bound on concurrently live sessions (0 = default 16)")
		showVer     = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(pliant.Version())
		return
	}

	srv := pliant.NewServeServer(pliant.ServeOptions{
		MaxSessions: *maxSessions,
		Version:     pliant.Version(),
	})
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Bind before serving so the logged address is the real one — with
	// -addr :0 the kernel picks the port, and scripts (the CI smoke test)
	// read it from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pliant-served: %v\n", err)
		os.Exit(1)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pliant-served: listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		// Graceful drain: finalize sessions first so in-flight SSE streams
		// see their terminal frames, then close the listener.
		fmt.Fprintln(os.Stderr, "pliant-served: draining")
		srv.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "pliant-served: shutdown: %v\n", err)
			os.Exit(1)
		}
		<-errCh // ListenAndServe has returned http.ErrServerClosed
		fmt.Fprintln(os.Stderr, "pliant-served: drained")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "pliant-served: %v\n", err)
			os.Exit(1)
		}
	}
}
