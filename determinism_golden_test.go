// Golden determinism tests for the simulation core. The constants below were
// recorded from the closure-based container/heap engine before the
// allocation-free rewrite (PR 2); the rewritten engine, service, client,
// histogram, and episode-scratch paths must reproduce them byte for byte.
// They complement TestSchedExportDeterminism (same-binary determinism) by
// pinning outputs across refactors of the hot path.
//
// To re-record after an intentional semantic change, run:
//
//	PLIANT_GOLDEN=print go test -run TestGolden -v .
//
// and update the constants from the log output.
package pliant_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	pliant "github.com/approx-sched/pliant"
)

// goldenScenario is the recorded outcome of one managed colocation episode:
// the BenchmarkScenarioPliant configuration at seed 7.
const (
	goldenScenarioServed  = 591649
	goldenScenarioDropped = 258
	goldenScenarioP99     = 11635107
	goldenScenarioJSON    = "ef9132c0d06d778cc33acd9b0dee2d80b774a2e6dc291a4453cf1f6b08c6bea5"
	goldenScenarioCSV     = "95e2a13ad2cfd2de68d2cade5278019363df7b6a62737d90549e0026f70cd23d"

	goldenSchedQoSMetFrac = "0.44444444444444442"
	goldenSchedJSON       = "b7758dd2a67a76d2ec66e12b808c012bf2cce36cf66fe75cea536188d12dfd45"
	goldenSchedCSV        = "62f944ed835457cceb8e79e3872b9fa822e9e2675b667ff5bfd5478020d4f3ed"

	// goldenEnergy pins the energy subsystem (PR 3): the approx-for-watts
	// bundle over a compressed diurnal day with the Table 1 power model.
	// Joules is an exact float print — energy accumulation must stay
	// bit-deterministic across refactors, worker counts included.
	goldenEnergyQoSMetFrac = "0.76923076923076927"
	goldenEnergyJoules     = "20351.31073497004"
	goldenEnergyJSON       = "8f70c89150e02ce03b67b211f9434137a9313df17e0fa7cfecc73ce4b2c96565"
	goldenEnergyCSV        = "d0622a6038ebd00a2dbfd03d916c1631243b78a8d3b9037c722303fe1e32ed5b"
)

func goldenScenarioConfig() pliant.ScenarioConfig {
	return pliant.ScenarioConfig{
		Seed:         7,
		Service:      pliant.Memcached,
		AppNames:     []string{"canneal"},
		Runtime:      pliant.RuntimePliant,
		LoadFraction: 0.78,
		TimeScale:    16,
	}
}

func goldenSchedConfig() pliant.SchedConfig {
	shape, _ := pliant.NewDiurnalLoad(0.25, 60)
	return pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 2},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 2},
		},
		Policy:     pliant.FirstFitPlacement{},
		Horizon:    60 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.15,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
	}
}

func goldenEnergyConfig() pliant.SchedConfig {
	cfg := goldenSchedConfig()
	cfg.Nodes = append(cfg.Nodes, pliant.ClusterNode{Name: "db-1", Service: pliant.MongoDB, MaxApps: 2})
	model := pliant.EnergyModelFor(pliant.TablePlatform())
	cfg.Energy = &model
	cfg.Policy = pliant.TelemetryAwarePlacement{}
	cfg.Autoscaler = pliant.ApproxForWattsAutoscaler{
		Consolidate: pliant.ConsolidateAutoscaler{ReserveSlots: 2},
		LowWater:    0.6,
	}
	return cfg
}

func sha(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

func TestGoldenScenario(t *testing.T) {
	res, err := pliant.RunScenario(goldenScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	var js, csv bytes.Buffer
	if err := pliant.WriteResultJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	if err := pliant.WriteTraceCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenScenarioServed  = %d", res.Served)
		t.Logf("goldenScenarioDropped = %d", res.Dropped)
		t.Logf("goldenScenarioP99     = %d", int64(res.OverallP99))
		t.Logf("goldenScenarioJSON    = %q", sha(js.Bytes()))
		t.Logf("goldenScenarioCSV     = %q", sha(csv.Bytes()))
		return
	}
	if res.Served != goldenScenarioServed {
		t.Errorf("Served = %d, golden %d", res.Served, goldenScenarioServed)
	}
	if res.Dropped != goldenScenarioDropped {
		t.Errorf("Dropped = %d, golden %d", res.Dropped, goldenScenarioDropped)
	}
	if int64(res.OverallP99) != goldenScenarioP99 {
		t.Errorf("OverallP99 = %d, golden %d", int64(res.OverallP99), goldenScenarioP99)
	}
	if got := sha(js.Bytes()); got != goldenScenarioJSON {
		t.Errorf("result JSON hash = %s, golden %s", got, goldenScenarioJSON)
	}
	if got := sha(csv.Bytes()); got != goldenScenarioCSV {
		t.Errorf("trace CSV hash = %s, golden %s", got, goldenScenarioCSV)
	}
}

func TestGoldenSched(t *testing.T) {
	res, err := pliant.RunSched(goldenSchedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var js, csv bytes.Buffer
	if err := pliant.WriteSchedResultJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	if err := pliant.WriteSchedTraceCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	qos := fmt.Sprintf("%.17g", res.QoSMetFrac)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenSchedQoSMetFrac = %q", qos)
		t.Logf("goldenSchedJSON       = %q", sha(js.Bytes()))
		t.Logf("goldenSchedCSV        = %q", sha(csv.Bytes()))
		return
	}
	if qos != goldenSchedQoSMetFrac {
		t.Errorf("QoSMetFrac = %s, golden %s", qos, goldenSchedQoSMetFrac)
	}
	if got := sha(js.Bytes()); got != goldenSchedJSON {
		t.Errorf("sched JSON hash = %s, golden %s", got, goldenSchedJSON)
	}
	if got := sha(csv.Bytes()); got != goldenSchedCSV {
		t.Errorf("sched trace CSV hash = %s, golden %s", got, goldenSchedCSV)
	}
}

// TestGoldenEnergy pins the energy subsystem end to end: node lifecycle,
// frequency scaling, joules accumulation, and the energy columns of both
// export writers, byte for byte.
func TestGoldenEnergy(t *testing.T) {
	res, err := pliant.RunSched(goldenEnergyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var js, csv bytes.Buffer
	if err := pliant.WriteSchedResultJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	if err := pliant.WriteSchedTraceCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	qos := fmt.Sprintf("%.17g", res.QoSMetFrac)
	joules := fmt.Sprintf("%.17g", res.Joules)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenEnergyQoSMetFrac = %q", qos)
		t.Logf("goldenEnergyJoules     = %q", joules)
		t.Logf("goldenEnergyJSON       = %q", sha(js.Bytes()))
		t.Logf("goldenEnergyCSV        = %q", sha(csv.Bytes()))
		return
	}
	if qos != goldenEnergyQoSMetFrac {
		t.Errorf("QoSMetFrac = %s, golden %s", qos, goldenEnergyQoSMetFrac)
	}
	if joules != goldenEnergyJoules {
		t.Errorf("Joules = %s, golden %s", joules, goldenEnergyJoules)
	}
	if got := sha(js.Bytes()); got != goldenEnergyJSON {
		t.Errorf("energy JSON hash = %s, golden %s", got, goldenEnergyJSON)
	}
	if got := sha(csv.Bytes()); got != goldenEnergyCSV {
		t.Errorf("energy trace CSV hash = %s, golden %s", got, goldenEnergyCSV)
	}
}
