// Golden determinism tests for the simulation core. The constants below were
// recorded from the closure-based container/heap engine before the
// allocation-free rewrite (PR 2); the rewritten engine, service, client,
// histogram, and episode-scratch paths must reproduce them byte for byte.
// They complement TestSchedExportDeterminism (same-binary determinism) by
// pinning outputs across refactors of the hot path.
//
// To re-record after an intentional semantic change, run:
//
//	PLIANT_GOLDEN=print go test -run TestGolden -v .
//
// and update the constants from the log output.
package pliant_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	pliant "github.com/approx-sched/pliant"
)

// goldenScenario is the recorded outcome of one managed colocation episode:
// the BenchmarkScenarioPliant configuration at seed 7.
const (
	goldenScenarioServed  = 591649
	goldenScenarioDropped = 258
	goldenScenarioP99     = 11635107
	goldenScenarioJSON    = "ef9132c0d06d778cc33acd9b0dee2d80b774a2e6dc291a4453cf1f6b08c6bea5"
	goldenScenarioCSV     = "95e2a13ad2cfd2de68d2cade5278019363df7b6a62737d90549e0026f70cd23d"

	// The sched and energy goldens were re-recorded in PR 4 when the
	// per-episode seed derivation moved from an XOR of multiplied counters
	// (collision-prone across (node, window) pairs) to a splitmix64 mix —
	// an intentional, documented output change: every node-window episode
	// draws from a different (now decorrelated) random stream, so all
	// sched-level figures shifted. The scenario goldens predate the episode
	// seeder and are unchanged.
	goldenSchedQoSMetFrac = "0.66666666666666663"
	goldenSchedJSON       = "f2b09c33262726f82664840decf570bd9109c300d92e11944ff76829e07ca21c"
	goldenSchedCSV        = "a22a47a943ad9b54e1fbfa5fb4906f58738a6dcd69f0aa359994ac06c7df48c5"

	// goldenEnergy pins the energy subsystem (PR 3): the approx-for-watts
	// bundle over a compressed diurnal day with the Table 1 power model.
	// Joules is an exact float print — energy accumulation must stay
	// bit-deterministic across refactors, worker counts included.
	goldenEnergyQoSMetFrac = "0.69230769230769229"
	goldenEnergyJoules     = "19660.784823142843"
	goldenEnergyJSON       = "31cf76a382ef80c8cdf9f313d1ed9f1ed5ee6d990f2aa4d072f56efbc186e0de"
	goldenEnergyCSV        = "2afc891b498efbc49cc616bad329c4f4a23538e7611528e6c99528eb3eaf4d3e"

	// goldenShard pins the sharded multi-engine runtime (PR 4): a six-node
	// energy-managed day must export byte-identical JSON/CSV at every shard
	// count. The constants are recorded from the single-engine path; the
	// test replays the run at shards=2 and shards=4 against the same pins.
	goldenShardJSON = "332c30a198c6cc23f1e1d4c351a114cc502b1229d7e535d9dc32caa2d6c78f13"
	goldenShardCSV  = "e3b87b3f1cfd2722179806f89cb49e4a465658307c8f4c4caf049cfa634f225a"

	// goldenTrace pins the trace-ingestion pipeline end to end (PR 5): a
	// schema-exact Google-format trace synthesized in memory, parsed through
	// the streaming ingester, normalized (rebase, compress, down-sample),
	// and replayed through the six-node energy-managed scheduler. The
	// constants are recorded from the single-engine path; the test replays
	// the identical run at shards=2 and shards=4 against the same pins.
	goldenTraceJSON = "fe80b0d5b33952ad5ee2d1e3ce46118a14f284c817586e2891c4109f991feb2c"
	goldenTraceCSV  = "e3c4845810be8268abc53c4855a9239ca8c47cf653c1765fe15407ba54612945"

	// goldenObs pins the observability layer (PR 6): the shard golden's
	// six-node energy-managed day, run with an Observer attached, must export
	// byte-identical Chrome-trace JSON, Prometheus text, and metrics CSV at
	// every shard count — all tracer records and metric increments are
	// emitted from the coordinator's serial sections, which shard counts
	// don't reorder. The same test asserts the obs-on run's result JSON still
	// hashes to goldenShardJSON: attaching an observer never perturbs the
	// simulation.
	goldenObsChrome = "6a19f0042f2e2fb0dd626a6396fa457a10c7aa002c73c4dc92feb0a22475ae5c"
	goldenObsProm   = "d8122d2c333d060cd2e0f02ab88711124f274e485f1a15cacfe75480a6d34438"
	goldenObsCSV    = "24cf1bafedab56ba185cc31f961ba79228ae0179e02ff22e26dfb31247651b8a"

	// goldenFault pins fault injection (PR 7): the shard golden's six-node
	// energy-managed day with every fault process armed — MTTF/MTTR crash
	// churn, a scripted two-node rack outage through the first peak, telemetry
	// dropouts, and straggler windows. Fault events are consumed and applied
	// only on the coordinator's serial sections, so the run must export
	// byte-identical JSON/CSV at shards 1, 2, and 4, with an observer attached
	// or not.
	goldenFaultJSON = "6c84bfd1cc2ea51a5b63ee01fa2b03712419a909d7ba2b209753db58a8515f7f"
	goldenFaultCSV  = "3ff6083e760089455e8d17a7b84104cf8265c1607fac258c1c647d5fccc7d53a"
)

func goldenScenarioConfig() pliant.ScenarioConfig {
	return pliant.ScenarioConfig{
		Seed:         7,
		Service:      pliant.Memcached,
		AppNames:     []string{"canneal"},
		Runtime:      pliant.RuntimePliant,
		LoadFraction: 0.78,
		TimeScale:    16,
	}
}

func goldenSchedConfig() pliant.SchedConfig {
	shape, _ := pliant.NewDiurnalLoad(0.25, 60)
	return pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 2},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 2},
		},
		Policy:     pliant.FirstFitPlacement{},
		Horizon:    60 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.15,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
	}
}

func goldenEnergyConfig() pliant.SchedConfig {
	cfg := goldenSchedConfig()
	cfg.Nodes = append(cfg.Nodes, pliant.ClusterNode{Name: "db-1", Service: pliant.MongoDB, MaxApps: 2})
	model := pliant.EnergyModelFor(pliant.TablePlatform())
	cfg.Energy = &model
	cfg.Policy = pliant.TelemetryAwarePlacement{}
	cfg.Autoscaler = pliant.ApproxForWattsAutoscaler{
		Consolidate: pliant.ConsolidateAutoscaler{ReserveSlots: 2},
		LowWater:    0.6,
	}
	return cfg
}

// goldenShardConfig is the sharded-runtime golden scenario: six nodes (so a
// four-way shard split is non-degenerate), the Table 1 power model, and the
// approx-for-watts bundle, exercising every merge-barrier surface (episode
// folds, telemetry roll-ups, lifecycle, verdicts, energy ledger).
func goldenShardConfig(shards int) pliant.SchedConfig {
	cfg := goldenEnergyConfig()
	cfg.Nodes = append(cfg.Nodes,
		pliant.ClusterNode{Name: "cache-2", Service: pliant.Memcached, MaxApps: 2},
		pliant.ClusterNode{Name: "web-2", Service: pliant.NGINX, MaxApps: 2},
		pliant.ClusterNode{Name: "db-2", Service: pliant.MongoDB, MaxApps: 2},
	)
	cfg.JobsPerSec = 0.25
	cfg.Shards = shards
	return cfg
}

func sha(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

func TestGoldenScenario(t *testing.T) {
	res, err := pliant.RunScenario(goldenScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	var js, csv bytes.Buffer
	if err := pliant.WriteResultJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	if err := pliant.WriteTraceCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenScenarioServed  = %d", res.Served)
		t.Logf("goldenScenarioDropped = %d", res.Dropped)
		t.Logf("goldenScenarioP99     = %d", int64(res.OverallP99))
		t.Logf("goldenScenarioJSON    = %q", sha(js.Bytes()))
		t.Logf("goldenScenarioCSV     = %q", sha(csv.Bytes()))
		return
	}
	if res.Served != goldenScenarioServed {
		t.Errorf("Served = %d, golden %d", res.Served, goldenScenarioServed)
	}
	if res.Dropped != goldenScenarioDropped {
		t.Errorf("Dropped = %d, golden %d", res.Dropped, goldenScenarioDropped)
	}
	if int64(res.OverallP99) != goldenScenarioP99 {
		t.Errorf("OverallP99 = %d, golden %d", int64(res.OverallP99), goldenScenarioP99)
	}
	if got := sha(js.Bytes()); got != goldenScenarioJSON {
		t.Errorf("result JSON hash = %s, golden %s", got, goldenScenarioJSON)
	}
	if got := sha(csv.Bytes()); got != goldenScenarioCSV {
		t.Errorf("trace CSV hash = %s, golden %s", got, goldenScenarioCSV)
	}
}

func TestGoldenSched(t *testing.T) {
	res, err := pliant.RunSched(goldenSchedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var js, csv bytes.Buffer
	if err := pliant.WriteSchedResultJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	if err := pliant.WriteSchedTraceCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	qos := fmt.Sprintf("%.17g", res.QoSMetFrac)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenSchedQoSMetFrac = %q", qos)
		t.Logf("goldenSchedJSON       = %q", sha(js.Bytes()))
		t.Logf("goldenSchedCSV        = %q", sha(csv.Bytes()))
		return
	}
	if qos != goldenSchedQoSMetFrac {
		t.Errorf("QoSMetFrac = %s, golden %s", qos, goldenSchedQoSMetFrac)
	}
	if got := sha(js.Bytes()); got != goldenSchedJSON {
		t.Errorf("sched JSON hash = %s, golden %s", got, goldenSchedJSON)
	}
	if got := sha(csv.Bytes()); got != goldenSchedCSV {
		t.Errorf("sched trace CSV hash = %s, golden %s", got, goldenSchedCSV)
	}
}

// TestGoldenShardInvariance is the sharded runtime's acceptance golden:
// sched.Run at shards=2 and shards=4 must produce byte-identical JSON and
// CSV exports to the single-engine path (shards=1), pinned by hash so a
// divergence in any shard-merge order fails loudly. It runs in -short (and
// so under the CI race job, where the shard goroutines' handoff is the
// interesting surface).
func TestGoldenShardInvariance(t *testing.T) {
	export := func(shards int) (js, csv []byte) {
		t.Helper()
		res, err := pliant.RunSched(goldenShardConfig(shards))
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := pliant.WriteSchedResultJSON(&j, res); err != nil {
			t.Fatal(err)
		}
		if err := pliant.WriteSchedTraceCSV(&c, res); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	js1, csv1 := export(1)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenShardJSON = %q", sha(js1))
		t.Logf("goldenShardCSV  = %q", sha(csv1))
		return
	}
	if got := sha(js1); got != goldenShardJSON {
		t.Errorf("single-engine JSON hash = %s, golden %s", got, goldenShardJSON)
	}
	if got := sha(csv1); got != goldenShardCSV {
		t.Errorf("single-engine CSV hash = %s, golden %s", got, goldenShardCSV)
	}
	for _, shards := range []int{2, 4} {
		js, csv := export(shards)
		if !bytes.Equal(js, js1) {
			t.Errorf("shards=%d JSON differs from single-engine bytes", shards)
		}
		if !bytes.Equal(csv, csv1) {
			t.Errorf("shards=%d CSV differs from single-engine bytes", shards)
		}
	}
}

// goldenTraceConfig is the trace-replay golden scenario: the shard golden's
// six-node energy-managed cluster, with the job stream replaced by a
// replayed synthetic Google-format trace (heavy-tailed gaps, flash burst)
// compressed to fit the 60-second horizon.
func goldenTraceConfig(t *testing.T, shards int) pliant.SchedConfig {
	t.Helper()
	raw := pliant.SynthesizeTrace(pliant.TraceSynthConfig{
		Format:  pliant.GoogleTraceFormat,
		Jobs:    120,
		SpanSec: 3600,
		Seed:    9,
	})
	parsed, err := pliant.ParseTrace(bytes.NewReader(raw), pliant.GoogleTraceFormat)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := parsed.Normalize(pliant.TraceOptions{TargetSpanSec: 50, MaxJobs: 16})
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenShardConfig(shards)
	cfg.JobsPerSec = 0
	cfg.Trace = tr
	return cfg
}

// TestGoldenTraceReplay is the trace pipeline's determinism contract:
// synthesize → parse → normalize → replay must export byte-identical JSON
// and CSV across shard counts 1, 2, and 4, pinned by hash so a divergence
// anywhere in the chain — fixture bytes, parser, normalization arithmetic,
// stream replay, shard merge — fails loudly. Runs in -short (and under the
// CI race job via an explicit step).
func TestGoldenTraceReplay(t *testing.T) {
	export := func(shards int) (js, csv []byte) {
		t.Helper()
		res, err := pliant.RunSched(goldenTraceConfig(t, shards))
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := pliant.WriteSchedResultJSON(&j, res); err != nil {
			t.Fatal(err)
		}
		if err := pliant.WriteSchedTraceCSV(&c, res); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	js1, csv1 := export(1)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenTraceJSON = %q", sha(js1))
		t.Logf("goldenTraceCSV  = %q", sha(csv1))
		return
	}
	if got := sha(js1); got != goldenTraceJSON {
		t.Errorf("trace-replay JSON hash = %s, golden %s", got, goldenTraceJSON)
	}
	if got := sha(csv1); got != goldenTraceCSV {
		t.Errorf("trace-replay CSV hash = %s, golden %s", got, goldenTraceCSV)
	}
	for _, shards := range []int{2, 4} {
		js, csv := export(shards)
		if !bytes.Equal(js, js1) {
			t.Errorf("shards=%d trace-replay JSON differs from single-engine bytes", shards)
		}
		if !bytes.Equal(csv, csv1) {
			t.Errorf("shards=%d trace-replay CSV differs from single-engine bytes", shards)
		}
	}
}

// TestGoldenObs is the observability layer's acceptance golden: the obs
// exports (Chrome trace, Prometheus text, metrics CSV) of the shard golden
// day are pinned by hash and must be byte-identical at shards 1, 2, and 4,
// while the run's result JSON stays byte-identical to the obs-off golden
// (goldenShardJSON) — observation never perturbs the simulation. Runs in
// -short (and under the CI race job via an explicit step, where the shard
// goroutines' profiler writes are the interesting surface).
func TestGoldenObs(t *testing.T) {
	export := func(shards int) (js, chrome, prom, mcsv []byte) {
		t.Helper()
		cfg := goldenShardConfig(shards)
		cfg.Obs = pliant.NewObserver(pliant.ObserverOptions{})
		res, err := pliant.RunSched(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ShardProfiles) != shards {
			t.Errorf("shards=%d: %d shard profiles", shards, len(res.ShardProfiles))
		}
		var j bytes.Buffer
		if err := pliant.WriteSchedResultJSON(&j, res); err != nil {
			t.Fatal(err)
		}
		meta := pliant.ObsTraceMeta{Policy: res.Policy}
		for _, n := range cfg.Nodes {
			meta.NodeNames = append(meta.NodeNames, n.Name)
		}
		var ch, pr, mc bytes.Buffer
		if err := pliant.WriteChromeTrace(&ch, cfg.Obs.Tracer, meta); err != nil {
			t.Fatal(err)
		}
		if err := pliant.WriteMetricsProm(&pr, cfg.Obs.Metrics); err != nil {
			t.Fatal(err)
		}
		if err := pliant.WriteMetricsCSV(&mc, cfg.Obs.Metrics); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), ch.Bytes(), pr.Bytes(), mc.Bytes()
	}
	js1, ch1, pr1, mc1 := export(1)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenObsChrome = %q", sha(ch1))
		t.Logf("goldenObsProm   = %q", sha(pr1))
		t.Logf("goldenObsCSV    = %q", sha(mc1))
		return
	}
	if got := sha(js1); got != goldenShardJSON {
		t.Errorf("obs-on result JSON hash = %s, obs-off golden %s (observation perturbed the run)", got, goldenShardJSON)
	}
	if got := sha(ch1); got != goldenObsChrome {
		t.Errorf("chrome trace hash = %s, golden %s", got, goldenObsChrome)
	}
	if got := sha(pr1); got != goldenObsProm {
		t.Errorf("prometheus text hash = %s, golden %s", got, goldenObsProm)
	}
	if got := sha(mc1); got != goldenObsCSV {
		t.Errorf("metrics CSV hash = %s, golden %s", got, goldenObsCSV)
	}
	for _, shards := range []int{2, 4} {
		js, ch, pr, mc := export(shards)
		if !bytes.Equal(js, js1) {
			t.Errorf("shards=%d obs-on result JSON differs from single-engine bytes", shards)
		}
		if !bytes.Equal(ch, ch1) {
			t.Errorf("shards=%d chrome trace differs from single-engine bytes", shards)
		}
		if !bytes.Equal(pr, pr1) {
			t.Errorf("shards=%d prometheus text differs from single-engine bytes", shards)
		}
		if !bytes.Equal(mc, mc1) {
			t.Errorf("shards=%d metrics CSV differs from single-engine bytes", shards)
		}
	}
}

// goldenFaultConfig is the fault-injection golden scenario: the shard
// golden's six-node energy-managed day with all four fault processes armed
// over the 60-second horizon. The knobs are sized so every event kind
// actually fires: the outage takes domain 1 (web-1, db-1) down through the
// first peak, the renewal crash process adds uncorrelated churn, and the
// dropout/straggler windows are short enough to open and close in-horizon.
func goldenFaultConfig(shards int) pliant.SchedConfig {
	cfg := goldenShardConfig(shards)
	cfg.Faults = &pliant.FaultPlan{
		MTTFSec:          90,
		MTTRSec:          8,
		DomainSize:       2,
		Outages:          []pliant.FaultOutage{{AtSec: 22, Domain: 1, DurationSec: 15}},
		StaleMTBFSec:     40,
		StaleDurSec:      12,
		StragglerMTBFSec: 45,
		StragglerDurSec:  10,
		RetryBackoffSec:  2,
	}
	return cfg
}

// TestGoldenFaultStorm is the fault subsystem's acceptance golden: the
// fault-injected day must export byte-identical JSON and CSV at shards 1, 2,
// and 4, and an obs-on run must reproduce the obs-off result bytes — crash
// requeues, retry backoff, recovery, stale-telemetry fallback, and straggler
// slowdowns all land on coordinator serial sections that shard counts and
// observers don't reorder. Runs in -short (and under the CI race job via an
// explicit step).
func TestGoldenFaultStorm(t *testing.T) {
	export := func(shards int, observe bool) (js, csv []byte) {
		t.Helper()
		cfg := goldenFaultConfig(shards)
		if observe {
			cfg.Obs = pliant.NewObserver(pliant.ObserverOptions{})
		}
		res, err := pliant.RunSched(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashes == 0 || res.Requeued == 0 {
			t.Errorf("shards=%d: fault plan injected nothing (crashes=%d requeued=%d)",
				shards, res.Crashes, res.Requeued)
		}
		var j, c bytes.Buffer
		if err := pliant.WriteSchedResultJSON(&j, res); err != nil {
			t.Fatal(err)
		}
		if err := pliant.WriteSchedTraceCSV(&c, res); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	js1, csv1 := export(1, false)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenFaultJSON = %q", sha(js1))
		t.Logf("goldenFaultCSV  = %q", sha(csv1))
		return
	}
	if got := sha(js1); got != goldenFaultJSON {
		t.Errorf("fault-storm JSON hash = %s, golden %s", got, goldenFaultJSON)
	}
	if got := sha(csv1); got != goldenFaultCSV {
		t.Errorf("fault-storm CSV hash = %s, golden %s", got, goldenFaultCSV)
	}
	for _, shards := range []int{2, 4} {
		js, csv := export(shards, false)
		if !bytes.Equal(js, js1) {
			t.Errorf("shards=%d fault-storm JSON differs from single-engine bytes", shards)
		}
		if !bytes.Equal(csv, csv1) {
			t.Errorf("shards=%d fault-storm CSV differs from single-engine bytes", shards)
		}
	}
	jsObs, csvObs := export(1, true)
	if !bytes.Equal(jsObs, js1) {
		t.Error("obs-on fault-storm JSON differs from obs-off bytes (observation perturbed the run)")
	}
	if !bytes.Equal(csvObs, csv1) {
		t.Error("obs-on fault-storm CSV differs from obs-off bytes")
	}
}

// TestFaultRetryLedgerBalances is the recovery path's conservation property:
// across crash storms far harsher than the golden plan — MTTF a fraction of
// the horizon, repeated rack outages, a tight retry budget — no job may be
// lost untracked or double-run. Every arrival is accounted exactly once
// (placed, still pending, or lost after exhausting its budget), requeues
// equal the jobs' summed retry counts, no job is both done and lost, and a
// lost job never reports a node or completion.
func TestFaultRetryLedgerBalances(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1001} {
		cfg := goldenFaultConfig(1)
		cfg.Seed = seed
		cfg.Faults = &pliant.FaultPlan{
			MTTFSec:    15,
			MTTRSec:    5,
			DomainSize: 2,
			Outages: []pliant.FaultOutage{
				{AtSec: 12, Domain: 0, DurationSec: 10},
				{AtSec: 30, Domain: 2, DurationSec: 12},
			},
			RetryBudget:     2,
			RetryBackoffSec: 1,
		}
		res, err := pliant.RunSched(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashes == 0 || res.Requeued == 0 {
			t.Fatalf("seed %d: storm injected nothing (crashes=%d requeued=%d)",
				seed, res.Crashes, res.Requeued)
		}
		if got := res.Placed + res.Pending + res.JobsLost; got != res.Arrived {
			t.Errorf("seed %d: ledger leak: placed %d + pending %d + lost %d = %d, arrived %d",
				seed, res.Placed, res.Pending, res.JobsLost, got, res.Arrived)
		}
		if len(res.Jobs) != res.Arrived {
			t.Errorf("seed %d: %d job outcomes for %d arrivals", seed, len(res.Jobs), res.Arrived)
		}
		retrySum, lost, seen := 0, 0, make(map[int]bool)
		for _, j := range res.Jobs {
			if seen[j.ID] {
				t.Errorf("seed %d: job %d appears twice", seed, j.ID)
			}
			seen[j.ID] = true
			retrySum += j.Retries
			if j.Retries > cfg.Faults.RetryBudget {
				t.Errorf("seed %d: job %d retried %d times, budget %d",
					seed, j.ID, j.Retries, cfg.Faults.RetryBudget)
			}
			if j.Lost {
				lost++
				if j.Done || j.Node != "" {
					t.Errorf("seed %d: lost job %d still reports done=%v node=%q",
						seed, j.ID, j.Done, j.Node)
				}
			}
		}
		if retrySum != res.Requeued {
			t.Errorf("seed %d: Σretries %d != requeued %d", seed, retrySum, res.Requeued)
		}
		if lost != res.JobsLost {
			t.Errorf("seed %d: %d lost outcomes, result says %d", seed, lost, res.JobsLost)
		}
	}
}

// TestGoldenEnergy pins the energy subsystem end to end: node lifecycle,
// frequency scaling, joules accumulation, and the energy columns of both
// export writers, byte for byte.
func TestGoldenEnergy(t *testing.T) {
	res, err := pliant.RunSched(goldenEnergyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var js, csv bytes.Buffer
	if err := pliant.WriteSchedResultJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	if err := pliant.WriteSchedTraceCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	qos := fmt.Sprintf("%.17g", res.QoSMetFrac)
	joules := fmt.Sprintf("%.17g", res.Joules)
	if os.Getenv("PLIANT_GOLDEN") == "print" {
		t.Logf("goldenEnergyQoSMetFrac = %q", qos)
		t.Logf("goldenEnergyJoules     = %q", joules)
		t.Logf("goldenEnergyJSON       = %q", sha(js.Bytes()))
		t.Logf("goldenEnergyCSV        = %q", sha(csv.Bytes()))
		return
	}
	if qos != goldenEnergyQoSMetFrac {
		t.Errorf("QoSMetFrac = %s, golden %s", qos, goldenEnergyQoSMetFrac)
	}
	if joules != goldenEnergyJoules {
		t.Errorf("Joules = %s, golden %s", joules, goldenEnergyJoules)
	}
	if got := sha(js.Bytes()); got != goldenEnergyJSON {
		t.Errorf("energy JSON hash = %s, golden %s", got, goldenEnergyJSON)
	}
	if got := sha(csv.Bytes()); got != goldenEnergyCSV {
		t.Errorf("energy trace CSV hash = %s, golden %s", got, goldenEnergyCSV)
	}
}
