// Cluster placement (the paper's Sec. 6.4 closing remark): the breakdown of
// which services tolerate approximation alone "can be incorporated in the
// cluster scheduler when deciding which applications to place on the same
// physical node". This example schedules a batch of approximate jobs across
// three servers — one per interactive service — first blindly, then using
// the per-application pressure and per-service tolerance knowledge the
// Pliant runtime accumulates.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	cfg := pliant.ClusterConfig{
		Seed: 17,
		Nodes: []pliant.ClusterNode{
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		},
		// A mixed batch: two heavy disruptors, two mid-weight, two light.
		Jobs:      []string{"PLSA", "streamcluster", "canneal", "Bayesian", "raytrace", "Blast"},
		TimeScale: 16,
	}

	results, err := pliant.CompareClusterPolicies(cfg,
		pliant.RoundRobinPlacement{},
		pliant.InterferenceAwarePlacement{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pliant.RenderClusterComparison(results))

	fmt.Println("\nper-node detail (interference-aware):")
	for _, n := range results[1].Nodes {
		fmt.Printf("  %-8s (%-9s) apps=%v  p99 %.2fx QoS\n",
			n.Node, n.Service, n.Apps, n.TypicalP99)
	}
	fmt.Println("\nThe informed policy steers the heaviest jobs to the most tolerant")
	fmt.Println("service (MongoDB) and shields memcached — the placement guidance the")
	fmt.Println("paper's Fig. 10 breakdown provides to a cluster scheduler.")
}
