// Custom policy: the paper's Sec. 6.5 invites richer arbitration than
// round-robin. This example plugs a user-defined Policy into the runtime — a
// "gentle" controller that steps approximation up one level at a time
// (instead of jumping straight to the most approximate variant) and never
// touches cores — and compares it with the paper's controller and the
// built-in impact-aware arbiter.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	pliant "github.com/approx-sched/pliant"
)

// gentlePolicy escalates approximation one variant level per violation
// interval and steps back one level after sustained slack. Because it
// refuses to move cores, it cannot rescue colocations where approximation
// alone is insufficient — exactly the gap the paper's Fig. 10 quantifies.
type gentlePolicy struct {
	slackRun int
}

func (g *gentlePolicy) Name() string { return "gentle" }

func (g *gentlePolicy) Decide(s pliant.PolicySnapshot) []pliant.PolicyAction {
	if s.Report.Violation {
		g.slackRun = 0
		for i, a := range s.Apps {
			if !a.Done && a.Variant < a.MostApproximate {
				return []pliant.PolicyAction{{Kind: pliant.SwitchVariant, App: i, To: a.Variant + 1}}
			}
		}
		return nil // saturated: a core-moving policy would escalate here
	}
	if s.Report.Slack > s.SlackThreshold {
		g.slackRun++
		if g.slackRun < 3 {
			return nil
		}
		g.slackRun = 0
		for i, a := range s.Apps {
			if !a.Done && a.Variant > 0 {
				return []pliant.PolicyAction{{Kind: pliant.SwitchVariant, App: i, To: a.Variant - 1}}
			}
		}
	}
	return nil
}

func main() {
	base := pliant.ScenarioConfig{
		Seed:         3,
		Service:      pliant.Memcached,
		AppNames:     []string{"Bayesian"},
		LoadFraction: 0.78,
		TimeScale:    16,
	}

	fmt.Printf("memcached + Bayesian under three controllers (QoS %v)\n\n", pliant.QoSOf(pliant.Memcached))
	fmt.Printf("%-13s %9s %15s %11s %9s\n", "policy", "p99/QoS", "viol intervals", "inaccuracy", "yielded")

	run := func(label string, mutate func(*pliant.ScenarioConfig)) {
		cfg := base
		mutate(&cfg)
		res, err := pliant.RunScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		a := res.Apps[0]
		fmt.Printf("%-13s %8.2fx %14.0f%% %10.2f%% %9d\n",
			label, res.TypicalOverQoS(), res.ViolationFrac*100, a.Inaccuracy, a.MaxYielded)
	}

	run("pliant", func(c *pliant.ScenarioConfig) { c.Runtime = pliant.RuntimePliant })
	run("impact-aware", func(c *pliant.ScenarioConfig) { c.Runtime = pliant.RuntimeImpactAware })
	run("gentle", func(c *pliant.ScenarioConfig) { c.Policy = &gentlePolicy{} })

	fmt.Println("\nThe gentle policy trades slower reactions (and no core moves) for")
	fmt.Println("smaller quality loss; the paper's jump-to-most-approximate rule exists")
	fmt.Println("precisely \"to avoid prolonged degraded performance\" (Sec. 4.3).")
}
