// Energy sweep: the question the paper implies but never measures — how many
// watts does approximation buy at equal QoS?
//
// A five-node cluster rides one compressed diurnal day with the Table 1
// power model attached. Four scheduling bundles compete: first-fit (static
// baseline, every node awake at base frequency all day), spread-first
// (QoS-friendly, watts-hostile), consolidate (classic autoscaling: pack
// jobs, park idle nodes), and approx-for-watts (telemetry-aware placement,
// consolidation, and Pliant's twist — when a node's tail runs comfortably
// under QoS because jobs degrade gracefully, spend that slack on a lower
// frequency state instead of leaving it idle).
//
// The second sweep holds the approx-for-watts bundle and varies the offered
// load, showing where the energy savings come from: at low load the parking
// lever dominates, near saturation the frequency lever shuts off (no slack
// to spend) and the bundle converges to plain consolidation.
//
//	go run ./examples/energysweep
package main

import (
	"fmt"
	"log"

	pliant "github.com/approx-sched/pliant"
)

func cluster() []pliant.ClusterNode {
	return []pliant.ClusterNode{
		{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
		{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
		{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		{Name: "cache-2", Service: pliant.Memcached, MaxApps: 3},
		{Name: "web-2", Service: pliant.NGINX, MaxApps: 3},
	}
}

func main() {
	day, err := pliant.NewDiurnalLoad(0.25, 120)
	if err != nil {
		log.Fatal(err)
	}
	model := pliant.EnergyModelFor(pliant.TablePlatform())

	base := pliant.SchedConfig{
		Seed:       42,
		Nodes:      cluster(),
		Horizon:    120 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.10,
		BaseLoad:   0.65,
		Shape:      day,
		TimeScale:  16, // fast profile: same load arithmetic, fewer requests
		Energy:     &model,
	}

	afw := pliant.ApproxForWattsAutoscaler{
		Consolidate: pliant.ConsolidateAutoscaler{ReserveSlots: 6},
		LowWater:    0.6,
	}

	fmt.Println("=== bundles over one diurnal day")
	bundles := []struct {
		name string
		pol  pliant.SchedPolicy
		as   pliant.AutoscaleController
	}{
		{"first-fit", pliant.FirstFitPlacement{}, nil},
		{"spread-first", pliant.SpreadPlacement{}, nil},
		{"consolidate", pliant.BestFitPlacement{}, pliant.ConsolidateAutoscaler{}},
		{"approx-for-watts", pliant.TelemetryAwarePlacement{}, afw},
	}
	var results []pliant.SchedResult
	for _, b := range bundles {
		cfg := base
		cfg.Policy = b.pol
		cfg.Autoscaler = b.as
		res, err := pliant.RunSched(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res.Policy = b.name // label rows by bundle, not placement policy
		results = append(results, res)
	}
	fmt.Print(pliant.RenderSchedComparison(results))

	fmt.Println("\n=== approx-for-watts across offered load")
	fmt.Printf("  %-6s %9s %9s %8s %8s\n", "load", "QoS met", "energy", "parked", "lowfreq")
	for _, load := range []float64{0.45, 0.55, 0.65, 0.75} {
		cfg := base
		cfg.BaseLoad = load
		cfg.Policy = pliant.TelemetryAwarePlacement{}
		cfg.Autoscaler = afw
		res, err := pliant.RunSched(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6.2f %8.0f%% %7.0fkJ %7dw %7dw\n",
			load, res.QoSMetFrac*100, res.Joules/1000,
			res.ParkedNodeWindows, res.LowFreqNodeWindows)
	}
}
