// Fault storm: break the cluster on purpose and watch approximation pay for
// it. An eight-node cluster in two-node failure domains rides a compressed
// diurnal day while a scripted rack outage takes a quarter of its capacity
// down through the peak, random MTTF churn crashes single nodes, and
// telemetry dropouts blind the placement policy for windows at a time.
// Crashed nodes drop their jobs back into the queue with retry budgets and
// exponential backoff; retried jobs spread away from the domain that failed
// them.
//
// The same storm hits three bundles: first-fit with retries (the strawman —
// it crams displaced jobs onto whatever survives), telemetry-aware placement
// alone, and telemetry-aware placement under the degrade-under-loss
// controller, which funds the lost capacity by waking the parked reserve and
// snapping survivors to nominal frequency — trading the approximate jobs'
// output quality, not their existence, for the outage. Everything is seeded
// and virtual-time: same run, same bytes, any shard count.
//
//	go run ./examples/faultstorm
package main

import (
	"fmt"
	"log"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	const horizonSec = 120
	day, err := pliant.NewDiurnalLoad(0.25, horizonSec)
	if err != nil {
		log.Fatal(err)
	}
	model := pliant.EnergyModelFor(pliant.TablePlatform())

	// Two-node failure domains; domain 1 (db-1, cache-2) is the doomed rack.
	storm := &pliant.FaultPlan{
		MTTFSec:      300, // occasional single-node churn on top of the outage
		MTTRSec:      10,
		DomainSize:   2,
		Outages:      []pliant.FaultOutage{{AtSec: 35, Domain: 1, DurationSec: 50}},
		StaleMTBFSec: 90, // telemetry dropouts: placement flies on last-known-good
		StaleDurSec:  15,
	}

	nodes := []pliant.ClusterNode{
		{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
		{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
		{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		{Name: "cache-2", Service: pliant.Memcached, MaxApps: 3},
		{Name: "web-2", Service: pliant.NGINX, MaxApps: 3},
		{Name: "db-2", Service: pliant.MongoDB, MaxApps: 3},
		{Name: "cache-3", Service: pliant.Memcached, MaxApps: 3},
		{Name: "web-3", Service: pliant.NGINX, MaxApps: 3},
	}

	bundles := []struct {
		label string
		pol   pliant.SchedPolicy
		as    pliant.AutoscaleController
	}{
		{"first-fit with retries (cram onto survivors)", pliant.FirstFitPlacement{}, nil},
		{"telemetry-aware placement", pliant.TelemetryAwarePlacement{}, nil},
		{"degrade-under-loss (wake reserves, snap to nominal)", pliant.TelemetryAwarePlacement{},
			pliant.DegradeUnderLossController{Normal: pliant.ConsolidateAutoscaler{ReserveSlots: 9}}},
	}

	// The compiled schedule is a pure function of (seed, plan): inspect the
	// storm before running it.
	events := pliant.CompileFaultPlan(*storm, 42, len(nodes), horizonSec)
	fmt.Printf("compiled fault schedule (%d events):\n", len(events))
	for _, ev := range events {
		fmt.Printf("  t=%5.1fs  %-8s node %d (%s)\n", ev.AtSec, ev.Kind, ev.Node, nodes[ev.Node].Name)
	}
	fmt.Println()

	for _, b := range bundles {
		cfg := pliant.SchedConfig{
			Seed:       42,
			Nodes:      nodes,
			Policy:     b.pol,
			Horizon:    horizonSec * pliant.Second,
			Epoch:      10 * pliant.Second,
			JobsPerSec: 0.25,
			BaseLoad:   0.65,
			Shape:      day,
			TimeScale:  16,
			Energy:     &model,
			Autoscaler: b.as,
			Faults:     storm,
		}
		res, err := pliant.RunSched(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", b.label)
		fmt.Printf("  QoS met %.0f%% of busy node-windows, %d/%d jobs done, mean wait %.1fs\n",
			res.QoSMetFrac*100, res.Completed, res.Arrived, res.MeanWaitSec)
		fmt.Printf("  %d crashes, %d recoveries, %d jobs requeued (%d lost), %d down node-windows, %d stale\n",
			res.Crashes, res.Recoveries, res.Requeued, res.JobsLost,
			res.DownNodeWindows, res.StaleNodeWindows)
		retried, maxRetries := 0, 0
		for _, j := range res.Jobs {
			if j.Retries > 0 {
				retried++
			}
			if j.Retries > maxRetries {
				maxRetries = j.Retries
			}
		}
		fmt.Printf("  %d jobs survived a crash (max %d retries), %.0fkJ, %d wakes\n\n",
			retried, maxRetries, res.Joules/1000, res.Wakes)
	}
}
