// Hints: onboard a user-provided application from an ACCEPT-style hints file
// (the paper's Sec. 6.5 interface), explore its approximation design space,
// and colocate it with NGINX under Pliant.
//
//	go run ./examples/hints
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	f, err := os.Open(filepath.Join("examples", "hints", "job.accept"))
	if err != nil {
		// Allow running from the example directory too.
		f, err = os.Open("job.accept")
		if err != nil {
			log.Fatal(err)
		}
	}
	defer f.Close()

	prof, err := pliant.ParseHints(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %.0fs nominal, %.0fMB LLC footprint, %d sites\n",
		prof.Name, prof.NominalExecSec, prof.LLCMB, len(prof.Sites))

	// The same offline exploration the catalog apps get.
	opts := pliant.DefaultExploreOptions()
	opts.MaxVariants = prof.MaxVariants
	dseRes, err := pliant.Explore(prof, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d candidates, selected %d variants:\n", len(dseRes.All), len(dseRes.Selected))
	for i, c := range dseRes.Selected {
		fmt.Printf("  v%d: time %.2fx, traffic %.2fx, inaccuracy %.2f%%\n",
			i+1, c.Effect.TimeScale, c.Effect.TrafficScale, c.Effect.Inaccuracy)
	}

	// Colocate it with NGINX under the Pliant runtime.
	res, err := pliant.RunScenario(pliant.ScenarioConfig{
		Seed:         21,
		Service:      pliant.NGINX,
		AppNames:     []string{prof.Name},
		CustomApps:   []pliant.AppProfile{prof},
		Runtime:      pliant.RuntimePliant,
		LoadFraction: 0.78,
		TimeScale:    16,
	})
	if err != nil {
		log.Fatal(err)
	}
	a := res.Apps[0]
	fmt.Printf("\ncolocated with NGINX: steady p99 %.2fx QoS, %s finished in %.2fx nominal "+
		"with %.2f%% quality loss (max %d cores yielded)\n",
		res.TypicalOverQoS(), a.Name, a.RelNominal, a.Inaccuracy, a.MaxYielded)
}
