// Load sweep (the paper's Fig. 8 scenario): sweep memcached's offered load
// from 40% to 100% of saturation with a colocated approximate application and
// watch Pliant escalate — precise at low load, approximation alone at
// moderate load, approximation plus core reclamation near saturation.
//
//	go run ./examples/loadsweep
package main

import (
	"fmt"
	"log"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	const appName = "streamcluster"
	fmt.Printf("memcached + %s across offered load (QoS %v)\n\n", appName, pliant.QoSOf(pliant.Memcached))
	fmt.Printf("%6s %9s %10s %11s %9s %s\n", "load", "p99/QoS", "exec time", "inaccuracy", "yielded", "pliant's deepest lever")

	for _, load := range []float64{0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00} {
		cfg := pliant.ScenarioConfig{
			Seed:         11,
			Service:      pliant.Memcached,
			AppNames:     []string{appName},
			Runtime:      pliant.RuntimePliant,
			LoadFraction: load,
			TimeScale:    16,
		}
		res, err := pliant.RunScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		a := res.Apps[0]
		lever := "precise execution"
		switch {
		case a.MaxYielded > 0:
			lever = fmt.Sprintf("approximation + %d reclaimed core(s)", a.MaxYielded)
		case a.Inaccuracy > 0.01:
			lever = "approximation alone"
		}
		fmt.Printf("%5.0f%% %8.2fx %9.2fx %10.2f%% %9d %s\n",
			load*100, res.TypicalOverQoS(), a.RelNominal, a.Inaccuracy, a.MaxYielded, lever)
	}

	fmt.Println("\nBelow ~60% load the application can run precise; between 60–80%")
	fmt.Println("approximation alone absorbs the contention; near saturation cores")
	fmt.Println("must also move, and beyond ~90% no actuation restores QoS —")
	fmt.Println("the shape of the paper's Fig. 8.")
}
