// Multi-application colocation (the paper's Fig. 6 scenario): canneal and
// Bayesian share a server with NGINX; Pliant's round-robin arbiter spreads
// the approximation and core penalties so neither application is hurt
// disproportionately.
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"
	"math"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	cfg := pliant.ScenarioConfig{
		Seed:         7,
		Service:      pliant.NGINX,
		AppNames:     []string{"canneal", "Bayesian"},
		Runtime:      pliant.RuntimePliant,
		LoadFraction: 0.78,
		TimeScale:    16,
	}
	res, err := pliant.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("NGINX + canneal + Bayesian under Pliant (QoS %v)\n", res.QoS)
	fmt.Printf("steady p99 %.2fx QoS; %.0f%% of intervals violated transiently\n\n",
		res.TypicalOverQoS(), res.ViolationFrac*100)

	for _, a := range res.Apps {
		fmt.Printf("%-9s exec %6.2fx fair-share, inaccuracy %.2f%%, %d variant switches, max %d cores yielded\n",
			a.Name, a.RelFairShare, a.Inaccuracy, a.Switches, a.MaxYielded)
	}

	// The paper's Sec. 6.3 claim: round-robin arbitration keeps quality
	// losses comparable across colocated applications.
	gap := math.Abs(res.Apps[0].Inaccuracy - res.Apps[1].Inaccuracy)
	fmt.Printf("\ninaccuracy gap between the two applications: %.2f%% (round-robin keeps it small)\n", gap)

	// Show the first 15 decision intervals of the shared trace.
	fmt.Println("\n  t(s)  p99/QoS  canneal(v,y)  Bayesian(v,y)")
	p99 := res.Trace.Series("p99")
	for i, pt := range p99.Points {
		if i >= 15 {
			fmt.Println("  ...")
			break
		}
		cv := res.Trace.Series("variant.canneal").Points[i].V
		cy := res.Trace.Series("yielded.canneal").Points[i].V
		bv := res.Trace.Series("variant.Bayesian").Points[i].V
		by := res.Trace.Series("yielded.Bayesian").Points[i].V
		fmt.Printf("  %4.0f  %7.2f  %6.0f,%.0f  %8.0f,%.0f\n", pt.T, pt.V, cv, cy, bv, by)
	}
}
