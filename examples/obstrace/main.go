// Observability: watch the online scheduler decide. An Observer attached to
// a scheduling run records every decision in virtual time — placements with
// rejected-candidate counts, autoscaler verdicts, node lifecycle
// transitions, window roll-ups — into an alloc-free ring, snapshots a
// metrics registry at every window boundary, and accounts each shard's
// wall-clock episode and barrier-wait time. The decision trace exports as
// Chrome trace-event JSON: drop obstrace.json onto ui.perfetto.dev (or
// chrome://tracing) and read the day lane by lane, one per node.
//
// Everything except the wall-clock profile is deterministic: same seed,
// same bytes, at any shard count.
//
//	go run ./examples/obstrace
package main

import (
	"fmt"
	"log"
	"os"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	day, err := pliant.NewDiurnalLoad(0.25, 240)
	if err != nil {
		log.Fatal(err)
	}
	model := pliant.EnergyModelFor(pliant.TablePlatform())

	// One observer per run: tracer + metrics registry + shard profiler.
	observer := pliant.NewObserver(pliant.ObserverOptions{})

	nodes := []pliant.ClusterNode{
		{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
		{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
		{Name: "web-2", Service: pliant.NGINX, MaxApps: 3},
		{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
	}
	cfg := pliant.SchedConfig{
		Seed:       42,
		Nodes:      nodes,
		Policy:     pliant.TelemetryAwarePlacement{},
		Horizon:    240 * pliant.Second,
		Epoch:      12 * pliant.Second,
		JobsPerSec: 0.12,
		BaseLoad:   0.65,
		Shape:      day,
		TimeScale:  16,
		Shards:     2, // sharded run: the trace bytes don't care
		Energy:     &model,
		Autoscaler: pliant.ConsolidateAutoscaler{},
		Obs:        observer,
	}

	res, err := pliant.RunSched(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s day: %d episodes, %.0f%% of busy node-windows inside QoS, %.0fkJ\n\n",
		res.Policy, res.Episodes, res.QoSMetFrac*100, res.Joules/1000)

	// The decision record, by kind.
	tr := observer.Tracer
	fmt.Println("decision trace (virtual time, deterministic):")
	kinds := []pliant.ObsRecordKind{
		pliant.ObsKindWindow, pliant.ObsKindEpisode, pliant.ObsKindPlacement,
		pliant.ObsKindAutoscale, pliant.ObsKindLifecycle,
	}
	for _, k := range kinds {
		fmt.Printf("  %-10s %5d records\n", k, tr.CountOf(k))
	}

	// Spot-check: the last few placement decisions as the ring holds them.
	fmt.Println("\nlast placement decisions:")
	var placements []pliant.ObsRecord
	tr.Records(func(r pliant.ObsRecord) {
		if r.Kind == pliant.ObsKindPlacement {
			placements = append(placements, r)
		}
	})
	tail := placements
	if len(tail) > 4 {
		tail = tail[len(tail)-4:]
	}
	for _, r := range tail {
		where := "deferred"
		if r.Node >= 0 {
			where = "-> " + nodes[r.Node].Name
		}
		fmt.Printf("  t=%3.0fs window %2d: job %d %s (%d candidates had free slots)\n",
			float64(r.At)/1e9, r.Window, r.A, where, r.B)
	}

	// Wall-clock profile: where the real CPU time went, per shard. This is
	// the one non-deterministic channel.
	fmt.Println("\nshard wall-clock profile (non-deterministic):")
	for _, p := range res.ShardProfiles {
		fmt.Printf("  shard %d: %d episodes in %.1fms, %.0f%% of wall time at the barrier\n",
			p.Shard, p.Episodes, float64(p.EpisodeNs)/1e6, p.BarrierWaitFrac()*100)
	}

	// Export the Perfetto-loadable trace.
	meta := pliant.ObsTraceMeta{Policy: res.Policy}
	for _, n := range nodes {
		meta.NodeNames = append(meta.NodeNames, n.Name)
	}
	f, err := os.Create("obstrace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := pliant.WriteChromeTrace(f, tr, meta); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote obstrace.json — open it at ui.perfetto.dev to see the day lane by lane")
}
