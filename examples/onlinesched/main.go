// Online scheduling (the paper's Sec. 6.4 integration, made event-driven):
// instead of placing one static batch, approximate jobs stream into the
// cluster over a simulated day while every node's interactive service rides
// a diurnal load curve. At each scheduling window the policy sees the live
// cluster state — free slots, resident-job pressure, and each node's recent
// Pliant runtime telemetry (p99/QoS, violation fraction) — and places,
// defers, or force-places pending jobs. Comparing first-fit against the
// telemetry-aware policy shows what the runtime's feedback is worth to an
// online scheduler: more node-windows inside QoS at the same job wait time.
//
//	go run ./examples/onlinesched
package main

import (
	"fmt"
	"log"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	// One "day" of cluster time, compressed: load swings ±25% around the
	// base with a 240-second period — morning ramp, midday peak, night
	// trough.
	day, err := pliant.NewDiurnalLoad(0.25, 240)
	if err != nil {
		log.Fatal(err)
	}

	cfg := pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		},
		Horizon:    240 * pliant.Second,
		Epoch:      12 * pliant.Second,
		JobsPerSec: 0.10, // ~24 arrivals over the day for 9 slots
		BaseLoad:   0.65,
		Shape:      day,
		TimeScale:  16, // fast profile: same load arithmetic, fewer requests
	}

	results, err := pliant.CompareSchedPolicies(cfg,
		pliant.FirstFitPlacement{},
		pliant.BestFitPlacement{},
		pliant.TelemetryAwarePlacement{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pliant.RenderSchedComparison(results))

	// The cluster-horizon trace: how the queue and QoS evolve over the day.
	ta := results[len(results)-1]
	fmt.Println("\ntelemetry-aware day, window by window:")
	fmt.Println("   t(s)  queue  running  util   QoS-met")
	queue := ta.Trace.Series("queue.depth")
	for _, pt := range queue.Points {
		fmt.Printf("  %5.0f  %5.0f  %7.0f  %3.0f%%  %7.0f%%\n",
			pt.T,
			pt.V,
			ta.Trace.Series("running").At(pt.T),
			ta.Trace.Series("utilization").At(pt.T)*100,
			ta.Trace.Series("qosmet").At(pt.T)*100)
	}

	fmt.Println("\nFirst-fit stacks the stream onto the first open slots and lets the")
	fmt.Println("least tolerant service (memcached) absorb the midday peak; the")
	fmt.Println("telemetry-aware policy reads each node's runtime feedback, steers")
	fmt.Println("pressure toward tolerant nodes, and defers admission when every")
	fmt.Println("node is saturated — more windows inside QoS at the same job wait.")
}
