// Quickstart: colocate memcached with one approximate application under the
// Pliant runtime and compare against the precise baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	// A colocation scenario: memcached at 78% of saturation sharing the
	// paper's Table-1 server with the canneal annealer. TimeScale 16 runs
	// the fast profile (identical utilization arithmetic, ~16x fewer
	// simulated requests); drop it to 1 for paper-scale request rates.
	base := pliant.ScenarioConfig{
		Seed:         1,
		Service:      pliant.Memcached,
		AppNames:     []string{"canneal"},
		LoadFraction: 0.78,
		TimeScale:    16,
	}

	// First the paper's baseline: a fair static core split, canneal precise.
	precise := base
	precise.Runtime = pliant.RuntimePrecise
	pRes, err := pliant.RunScenario(precise)
	if err != nil {
		log.Fatal(err)
	}

	// Then the Pliant runtime: on QoS violations it switches canneal to its
	// most approximate variant and, when that is not enough, reclaims cores
	// one per decision interval.
	managed := base
	managed.Runtime = pliant.RuntimePliant
	mRes, err := pliant.RunScenario(managed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("memcached QoS target: %v (p99)\n\n", pRes.QoS)
	fmt.Printf("%-10s %12s %14s %12s %12s\n", "runtime", "p99/QoS", "viol. intervals", "exec time", "inaccuracy")
	for _, r := range []pliant.ScenarioResult{pRes, mRes} {
		a := r.Apps[0]
		fmt.Printf("%-10s %11.2fx %13.0f%% %12v %11.2f%%\n",
			r.Runtime, r.TypicalOverQoS(), r.ViolationFrac*100, a.ExecTime, a.Inaccuracy)
	}

	a := mRes.Apps[0]
	fmt.Printf("\nPliant preserved QoS (%.2fx) while canneal lost %.2f%% output quality\n",
		mRes.TypicalOverQoS(), a.Inaccuracy)
	fmt.Printf("and finished in %.2fx of its nominal execution time (max %d cores yielded).\n",
		a.RelNominal, a.MaxYielded)
}
