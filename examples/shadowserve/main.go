// The serving layer, end to end: a shadow-scheduler daemon session driven
// through its HTTP API from inside one process. A ServeServer (the engine
// behind cmd/pliant-served) is mounted on an httptest listener; a session
// spec — the same JSON surface the pliant-sched flags lower onto — fans one
// arrival feed out to two candidate policies in lockstep, jobs are submitted
// into the bounded ingest queue mid-run, the Server-Sent-Events stream is
// tailed live, and the finalized per-policy verdicts are compared. The
// faster-than-real-time session is paced (pace_ms) so the submissions and
// the SSE tail land while the run is still open — exactly the interactive
// regime the daemon serves.
//
//	go run ./examples/shadowserve
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	// The daemon, mounted on a local listener. cmd/pliant-served does the
	// same with ListenAndServe; everything below is plain HTTP either way.
	srv := pliant.NewServeServer(pliant.ServeOptions{Version: pliant.Version()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One session spec, JSON in = session out. Two policies make it a
	// shadow replay: telemetry-aware is the baseline, first-fit the shadow.
	spec := `{
		"name": "demo",
		"seed": 42,
		"policies": ["telemetry", "first-fit"],
		"horizon_sec": 120,
		"epoch_sec": 12,
		"timescale": 16,
		"submit_only": true,
		"pace_ms": 40
	}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var status struct {
		ID       string   `json:"id"`
		Policies []string `json:"policies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("session %s: shadow replay of %v\n", status.ID, status.Policies)

	// Submit a batch mid-run: both engines receive the same jobs in the
	// same order, so every placement difference is the policy's doing.
	jobs := `{"jobs": ["canneal", "Bayesian", "raytrace", "SNP", "streamcluster", "water_spatial"]}`
	resp, err = http.Post(ts.URL+"/v1/sessions/"+status.ID+"/jobs", "application/json", strings.NewReader(jobs))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted 6 jobs into the ingest queue (HTTP %d)\n\n", resp.StatusCode)

	// Tail the SSE stream until the session's terminal frame: baseline
	// placement decisions as they happen, then per-window verdicts.
	resp, err = http.Get(ts.URL + "/v1/sessions/" + status.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("live event stream:")
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "placement":
				var p struct {
					Window int     `json:"window"`
					AtSec  float64 `json:"at_sec"`
					Job    int     `json:"job"`
					Node   string  `json:"node"`
				}
				if json.Unmarshal([]byte(data), &p) == nil && p.Node != "" {
					fmt.Printf("  w%-2d %6.1fs  job %d -> %s\n", p.Window, p.AtSec, p.Job, p.Node)
				}
			case "window":
				var v pliant.ShadowWindowVerdict
				if json.Unmarshal([]byte(data), &v) == nil && len(v.Policies) == 2 {
					fmt.Printf("  w%-2d %6.1fs  verdict: baseline QoS %3.0f%%, shadow QoS %3.0f%%, %d jobs placed differently\n",
						v.Window, v.NowSec, v.Policies[0].QoSMetFrac*100,
						v.Policies[1].QoSMetFrac*100, v.Policies[1].DiffPlacements)
				}
			}
		}
	}

	// The horizon is reached: pull both finalized results. Each is
	// byte-identical to a batch pliant.RunSched of the same config — the
	// serving layer never perturbs the simulation.
	fmt.Println("\nfinalized results:")
	for _, pol := range status.Policies {
		resp, err := http.Get(ts.URL + "/v1/sessions/" + status.ID + "/result?policy=" + pol)
		if err != nil {
			log.Fatal(err)
		}
		var res struct {
			QoSMetFrac float64 `json:"qos_met_frac"`
			Completed  int     `json:"completed"`
			Arrived    int     `json:"arrived"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("  %-16s QoS met %3.0f%%, %d/%d jobs completed\n",
			pol, res.QoSMetFrac*100, res.Completed, res.Arrived)
	}

	// Daemon-level Prometheus metrics: the ingest ledger across sessions.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\ndaemon metrics (excerpt):")
	msc := bufio.NewScanner(resp.Body)
	for msc.Scan() {
		line := msc.Text()
		if strings.HasPrefix(line, "pliant_serve_jobs_") || strings.HasPrefix(line, "pliant_serve_sessions_created") {
			if !strings.HasPrefix(line, "#") {
				fmt.Printf("  %s\n", line)
			}
		}
	}
}
