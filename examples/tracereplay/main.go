// Trace replay: judge placement policies on production-shaped arrivals
// instead of synthetic streams. A Google ClusterData-style task-event trace
// is synthesized schema-exactly (the same CSV columns a real export carries),
// parsed through the streaming ingestion path, normalized — multi-hour span
// compressed into a two-minute simulated day, deterministically down-sampled
// to the cluster's scale — and replayed: every trace job arrives at its
// recorded instant, mapped onto a catalog application by its resource shape,
// while each node's interactive service rides the trace's own binned rate
// curve. Heavy-tailed gaps, a flash burst, and correlated arrivals are
// exactly the regime where telemetry-fed placement separates from first-fit.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	pliant "github.com/approx-sched/pliant"
)

func main() {
	// Synthesize a six-hour, 160-job trace. With a real export on disk this
	// block is just os.Open + pliant.ParseTrace — the bytes here follow the
	// same schema.
	raw := pliant.SynthesizeTrace(pliant.TraceSynthConfig{
		Format:  pliant.GoogleTraceFormat,
		Jobs:    160,
		SpanSec: 6 * 3600,
		Seed:    7,
	})
	parsed, err := pliant.ParseTrace(bytes.NewReader(raw), pliant.GoogleTraceFormat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d jobs from %d rows (%d durations defaulted), span %.0fs, mean rate %.3f jobs/s\n",
		len(parsed.Jobs), parsed.Rows, parsed.Defaulted, parsed.SpanSec(), parsed.MeanRate())

	// Normalize: compress the six hours into 108 simulated seconds and keep
	// a deterministic 18-job sample that preserves the temporal shape.
	tr, err := parsed.Normalize(pliant.TraceOptions{TargetSpanSec: 108, MaxJobs: 18})
	if err != nil {
		log.Fatal(err)
	}

	// The services ride the trace's own rate curve: the arrival burst is
	// also the load burst, as in production colocation. Square-root damping
	// keeps the burst shape while leaving the services survivable — a 4×
	// arrival spike becomes a 2× load spike.
	times, mult, err := tr.RateShape(10)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range mult {
		mult[i] = math.Sqrt(m)
	}
	shape, err := pliant.NewReplayLoad(times, mult)
	if err != nil {
		log.Fatal(err)
	}

	cfg := pliant.SchedConfig{
		Seed: 42,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
			{Name: "cache-2", Service: pliant.Memcached, MaxApps: 3},
		},
		Horizon:   120 * pliant.Second,
		Epoch:     10 * pliant.Second,
		Trace:     tr,
		BaseLoad:  0.65,
		Shape:     shape,
		TimeScale: 16,
	}

	results, err := pliant.CompareSchedPolicies(cfg,
		pliant.FirstFitPlacement{},
		pliant.TelemetryAwarePlacement{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(pliant.RenderSchedComparison(results))

	// Where each replayed job landed.
	ta := results[len(results)-1]
	fmt.Println("\nreplayed arrivals under telemetry-aware placement:")
	fmt.Println("  arrival   app              node      wait    done")
	for _, j := range ta.Jobs {
		node := j.Node
		if node == "" {
			node = "(queued)"
		}
		fmt.Printf("  %6.1fs   %-14s   %-8s %5.1fs   %v\n",
			j.ArrivalSec, j.App, node, j.WaitSec, j.Done)
	}

	fmt.Println("\nThe trace's flash burst stacks arrivals faster than any Poisson")
	fmt.Println("stream would; first-fit piles them onto the least tolerant nodes")
	fmt.Println("while the telemetry-aware policy spreads the burst by live QoS")
	fmt.Println("feedback — same jobs, same instants, more windows inside QoS.")
}
