module github.com/approx-sched/pliant

go 1.21
