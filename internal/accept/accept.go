// Package accept implements the user-facing annotation interface the paper
// describes for settings where Pliant cannot profile source code itself
// (Sec. 6.5): "the user can provide the approximate variants, or hints on
// primitives that can be approximated using a framework like ACCEPT". A
// hints file declares an application's execution characteristics and its
// approximable sites — perforable loops, elidable synchronization,
// reducible-precision data — in a line-oriented text format; the parser
// turns it into an application profile whose variants the design-space
// exploration then derives exactly as for the built-in catalog.
//
// Format (line-oriented; '#' starts a comment):
//
//	app         my-analytics
//	suite       MineBench
//	exec        42s
//	parallel    0.90
//	llc         45MB
//	bandwidth   2.5
//	sensitivity llc=0.6 bw=0.5
//	overhead    3.2%
//	phase       amp=0.2 period=6s
//	quality     cluster purity loss
//	variants    4
//
//	perforate em_loop    runtime=0.50 traffic=0.40 useful=0.55 coef=0.08 exp=1.3
//	elide     table_lock runtime=0.08 traffic=0.20 useful=0.40 coef=0.02
//	precision scores     runtime=0.06 traffic=0.12 useful=0.35 coef=0.015
package accept

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/approx"
	"github.com/approx-sched/pliant/internal/interference"
)

// Parse reads a hints document and returns the application profile it
// declares.
func Parse(r io.Reader) (app.Profile, error) {
	var p app.Profile
	p.AcceptHints = true
	p.ParallelExp = 0.9 // sensible defaults; overridable
	p.QualityMetric = "user-defined quality metric"

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		key, rest := fields[0], fields[1:]
		var err error
		switch key {
		case "app":
			if len(rest) == 0 {
				err = fmt.Errorf("app needs a name")
				break
			}
			// Names may contain spaces (e.g. "Fuzzy k-means").
			p.Name = strings.Join(rest, " ")
		case "suite":
			err = expectArgs(rest, 1)
			if err == nil {
				p.Suite, err = parseSuite(rest[0])
			}
		case "exec":
			err = expectArgs(rest, 1)
			if err == nil {
				p.NominalExecSec, err = parseSeconds(rest[0])
			}
		case "parallel":
			err = expectArgs(rest, 1)
			if err == nil {
				p.ParallelExp, err = parseFloat(rest[0])
			}
		case "llc":
			err = expectArgs(rest, 1)
			if err == nil {
				p.LLCMB, err = parseMB(rest[0])
			}
		case "bandwidth":
			err = expectArgs(rest, 1)
			if err == nil {
				p.BWPerCoreGBs, err = parseFloat(strings.TrimSuffix(rest[0], "GB/s"))
			}
		case "sensitivity":
			kv, kerr := parseKV(rest)
			if kerr != nil {
				err = kerr
				break
			}
			p.Sensitivity = interference.Sensitivity{LLC: kv["llc"], MemBW: kv["bw"]}
		case "overhead":
			err = expectArgs(rest, 1)
			if err == nil {
				var pct float64
				pct, err = parseFloat(strings.TrimSuffix(rest[0], "%"))
				p.DynOverhead = pct / 100
			}
		case "phase":
			kv, kerr := parseKV(rest)
			if kerr != nil {
				err = kerr
				break
			}
			p.PhaseAmp = kv["amp"]
			p.PhasePeriodSec = kv["period"]
		case "quality":
			p.QualityMetric = strings.Join(rest, " ")
		case "variants":
			err = expectArgs(rest, 1)
			if err == nil {
				var n int
				n, err = strconv.Atoi(rest[0])
				p.MaxVariants = n
			}
		case "perforate", "elide", "precision":
			var site approx.Site
			site, err = parseSite(key, rest)
			if err == nil {
				p.Sites = append(p.Sites, site)
			}
		default:
			err = fmt.Errorf("unknown directive %q", key)
		}
		if err != nil {
			return app.Profile{}, fmt.Errorf("accept: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return app.Profile{}, fmt.Errorf("accept: %w", err)
	}
	if err := p.Validate(); err != nil {
		return app.Profile{}, fmt.Errorf("accept: %w", err)
	}
	return p, nil
}

// ParseString is Parse on a string.
func ParseString(doc string) (app.Profile, error) {
	return Parse(strings.NewReader(doc))
}

func expectArgs(rest []string, n int) error {
	if len(rest) != n {
		return fmt.Errorf("expected %d argument(s), got %d", n, len(rest))
	}
	return nil
}

func parseSuite(s string) (app.Suite, error) {
	switch strings.ToLower(s) {
	case "parsec":
		return app.PARSEC, nil
	case "splash-2", "splash2":
		return app.SPLASH2, nil
	case "minebench":
		return app.MineBench, nil
	case "bioperf":
		return app.BioPerf, nil
	default:
		return 0, fmt.Errorf("unknown suite %q", s)
	}
}

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func parseSeconds(s string) (float64, error) {
	return parseFloat(strings.TrimSuffix(s, "s"))
}

func parseMB(s string) (float64, error) {
	return parseFloat(strings.TrimSuffix(s, "MB"))
}

// parseKV parses "key=value" fields; "period=6s" style suffixes allowed.
func parseKV(fields []string) (map[string]float64, error) {
	kv := make(map[string]float64, len(fields))
	for _, f := range fields {
		parts := strings.SplitN(f, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("expected key=value, got %q", f)
		}
		v, err := parseFloat(strings.TrimSuffix(strings.TrimSuffix(parts[1], "s"), "%"))
		if err != nil {
			return nil, err
		}
		kv[parts[0]] = v
	}
	return kv, nil
}

func parseSite(kind string, rest []string) (approx.Site, error) {
	if len(rest) < 1 {
		return approx.Site{}, fmt.Errorf("%s needs a site name", kind)
	}
	site := approx.Site{Name: rest[0], QualityExp: 1.0}
	switch kind {
	case "perforate":
		site.Technique = approx.LoopPerforation
	case "elide":
		site.Technique = approx.SyncElision
	case "precision":
		site.Technique = approx.PrecisionReduction
	}
	kv, err := parseKV(rest[1:])
	if err != nil {
		return approx.Site{}, err
	}
	for k, v := range kv {
		switch k {
		case "runtime":
			site.RuntimeShare = v
		case "traffic":
			site.TrafficShare = v
		case "useful":
			site.UsefulFrac = v
		case "coef":
			site.QualityCoef = v
		case "exp":
			site.QualityExp = v
		default:
			return approx.Site{}, fmt.Errorf("unknown site attribute %q", k)
		}
	}
	return site, site.Validate()
}

// Format renders a profile back into the hints format, so catalog entries
// can serve as documentation templates for user-provided applications.
func Format(p app.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app         %s\n", p.Name)
	fmt.Fprintf(&b, "suite       %s\n", p.Suite)
	fmt.Fprintf(&b, "exec        %gs\n", p.NominalExecSec)
	fmt.Fprintf(&b, "parallel    %g\n", p.ParallelExp)
	fmt.Fprintf(&b, "llc         %gMB\n", p.LLCMB)
	fmt.Fprintf(&b, "bandwidth   %g\n", p.BWPerCoreGBs)
	fmt.Fprintf(&b, "sensitivity llc=%g bw=%g\n", p.Sensitivity.LLC, p.Sensitivity.MemBW)
	fmt.Fprintf(&b, "overhead    %g%%\n", p.DynOverhead*100)
	if p.PhaseAmp > 0 {
		fmt.Fprintf(&b, "phase       amp=%g period=%gs\n", p.PhaseAmp, p.PhasePeriodSec)
	}
	fmt.Fprintf(&b, "quality     %s\n", p.QualityMetric)
	if p.MaxVariants > 0 {
		fmt.Fprintf(&b, "variants    %d\n", p.MaxVariants)
	}
	b.WriteString("\n")
	for _, s := range p.Sites {
		kind := "perforate"
		switch s.Technique {
		case approx.SyncElision:
			kind = "elide"
		case approx.PrecisionReduction:
			kind = "precision"
		}
		fmt.Fprintf(&b, "%-9s %s runtime=%g traffic=%g useful=%g coef=%g exp=%g\n",
			kind, s.Name, s.RuntimeShare, s.TrafficShare, s.UsefulFrac, s.QualityCoef, s.QualityExp)
	}
	return b.String()
}
