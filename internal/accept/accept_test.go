package accept

import (
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/approx"
	"github.com/approx-sched/pliant/internal/dse"
)

const sampleDoc = `
# a user-provided analytics job
app         my-analytics
suite       MineBench
exec        42s
parallel    0.90
llc         45MB
bandwidth   2.5
sensitivity llc=0.6 bw=0.5
overhead    3.2%
phase       amp=0.2 period=6s
quality     cluster purity loss
variants    4

perforate em_loop    runtime=0.50 traffic=0.40 useful=0.55 coef=0.08 exp=1.3
elide     table_lock runtime=0.08 traffic=0.20 useful=0.40 coef=0.02
precision scores     runtime=0.06 traffic=0.12 useful=0.35 coef=0.015
`

func TestParseSample(t *testing.T) {
	p, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "my-analytics" || p.Suite != app.MineBench {
		t.Fatalf("identity: %s/%v", p.Name, p.Suite)
	}
	if p.NominalExecSec != 42 || p.ParallelExp != 0.9 {
		t.Fatalf("exec: %v/%v", p.NominalExecSec, p.ParallelExp)
	}
	if p.LLCMB != 45 || p.BWPerCoreGBs != 2.5 {
		t.Fatalf("pressure: %v/%v", p.LLCMB, p.BWPerCoreGBs)
	}
	if p.Sensitivity.LLC != 0.6 || p.Sensitivity.MemBW != 0.5 {
		t.Fatalf("sensitivity: %+v", p.Sensitivity)
	}
	if p.DynOverhead != 0.032 {
		t.Fatalf("overhead: %v", p.DynOverhead)
	}
	if p.PhaseAmp != 0.2 || p.PhasePeriodSec != 6 {
		t.Fatalf("phase: %v/%v", p.PhaseAmp, p.PhasePeriodSec)
	}
	if p.MaxVariants != 4 {
		t.Fatalf("variants: %d", p.MaxVariants)
	}
	if !p.AcceptHints {
		t.Fatal("AcceptHints not set")
	}
	if len(p.Sites) != 3 {
		t.Fatalf("sites: %d", len(p.Sites))
	}
	if p.Sites[0].Technique != approx.LoopPerforation || p.Sites[0].Name != "em_loop" {
		t.Fatalf("site 0: %+v", p.Sites[0])
	}
	if p.Sites[0].QualityExp != 1.3 {
		t.Fatalf("site 0 exp: %v", p.Sites[0].QualityExp)
	}
	if p.Sites[1].Technique != approx.SyncElision {
		t.Fatalf("site 1: %+v", p.Sites[1])
	}
	if p.Sites[1].QualityExp != 1.0 { // default
		t.Fatalf("site 1 exp default: %v", p.Sites[1].QualityExp)
	}
	if p.Sites[2].Technique != approx.PrecisionReduction {
		t.Fatalf("site 2: %+v", p.Sites[2])
	}
}

func TestParsedProfileExplores(t *testing.T) {
	p, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dse.ExploreApp(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) == 0 || len(res.Selected) > 4 {
		t.Fatalf("selected %d variants, want 1..4", len(res.Selected))
	}
	for _, c := range res.Selected {
		if c.Effect.Inaccuracy > 5 {
			t.Fatalf("selected variant over budget: %+v", c.Effect)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate yes",
		"bad suite":         "suite Unknown",
		"bad number":        "exec notanumber",
		"bad kv":            "sensitivity llc:0.5",
		"site no name":      "perforate",
		"bad site attr":     "perforate loop wat=1",
		"missing app": `
exec 10s
llc 10MB
perforate loop runtime=0.5 traffic=0.5 useful=0.5 coef=0.1 exp=1
`,
		"no sites": `
app x
exec 10s
llc 10MB
`,
	}
	for name, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("%s: parse accepted %q", name, doc)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	doc := `
# leading comment
app x # trailing comment

exec 10s
llc 10MB
perforate loop runtime=0.5 traffic=0.5 useful=0.5 coef=0.1 exp=1
`
	p, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "x" {
		t.Fatalf("name %q", p.Name)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	// Every catalog profile must survive Format → Parse with identical
	// exploration results.
	for _, orig := range app.Catalog() {
		doc := Format(orig)
		back, err := ParseString(doc)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\ndoc:\n%s", orig.Name, err, doc)
		}
		if back.Name != orig.Name || back.Suite != orig.Suite {
			t.Fatalf("%s: identity changed", orig.Name)
		}
		if len(back.Sites) != len(orig.Sites) {
			t.Fatalf("%s: site count %d != %d", orig.Name, len(back.Sites), len(orig.Sites))
		}
		origRes, err := dse.ExploreApp(orig)
		if err != nil {
			t.Fatal(err)
		}
		backRes, err := dse.ExploreApp(back)
		if err != nil {
			t.Fatal(err)
		}
		if len(origRes.Selected) != len(backRes.Selected) {
			t.Fatalf("%s: selection changed after round trip: %d vs %d",
				orig.Name, len(origRes.Selected), len(backRes.Selected))
		}
		for i := range origRes.Selected {
			if origRes.Selected[i].Effect != backRes.Selected[i].Effect {
				t.Fatalf("%s: variant %d effect changed", orig.Name, i)
			}
		}
	}
}

func TestFormatContainsDirectives(t *testing.T) {
	p, _ := app.ByName("canneal")
	doc := Format(p)
	for _, want := range []string{"app         canneal", "suite       PARSEC", "perforate", "elide"} {
		if !strings.Contains(doc, want) {
			t.Errorf("Format missing %q:\n%s", want, doc)
		}
	}
}
