// Package app models the approximate computing applications the paper
// co-schedules with interactive services: 24 workloads from PARSEC, SPLASH-2,
// MineBench, and BioPerf. Each application is described by a Profile — total
// work, parallel efficiency, phase-varying pressure on shared resources, and
// a set of approximable sites — and executed as an Instance that advances
// through its work inside the simulation, accumulating output-quality loss in
// proportion to how much of the execution ran at each approximation degree.
package app

import (
	"fmt"
	"math"

	"github.com/approx-sched/pliant/internal/approx"
	"github.com/approx-sched/pliant/internal/interference"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sim"
)

// Suite identifies the benchmark suite an application comes from.
type Suite int

// The four benchmark suites of the paper (Sec. 5).
const (
	PARSEC Suite = iota
	SPLASH2
	MineBench
	BioPerf
)

// String names the suite.
func (s Suite) String() string {
	switch s {
	case PARSEC:
		return "PARSEC"
	case SPLASH2:
		return "SPLASH-2"
	case MineBench:
		return "MineBench"
	case BioPerf:
		return "BioPerf"
	default:
		return fmt.Sprintf("suite(%d)", int(s))
	}
}

// ReferenceCores is the core count execution times are normalized to: the
// fair share of the Table 1 socket between a service and one application.
const ReferenceCores = 8

// Profile statically describes one approximate application.
type Profile struct {
	Name  string
	Suite Suite

	// NominalExecSec is the isolated precise execution time on
	// ReferenceCores.
	NominalExecSec float64

	// ParallelExp captures scaling: speed(c) ∝ c^ParallelExp. 1.0 is
	// embarrassingly parallel; lower values model synchronization and
	// serial fractions.
	ParallelExp float64

	// LLCMB and BWPerCoreGBs are the precise-mode pressures on the shared
	// cache and memory bandwidth.
	LLCMB        float64
	BWPerCoreGBs float64

	// Sensitivity is how the application's own execution dilates under
	// shared-resource shortfall.
	Sensitivity interference.Sensitivity

	// Sites are the approximable locations found by ACCEPT hints or gprof
	// profiling (Sec. 3).
	Sites []approx.Site

	// AcceptHints records whether the ACCEPT framework supplied the sites
	// (true) or they came from gprof profiling of hot functions (false).
	AcceptHints bool

	// MaxVariants caps how many pareto-frontier variants the exploration
	// retains for this application (the paper keeps a small, per-app number
	// of representative points: canneal 4, raytrace 2, Bayesian 8, SNP 5).
	// Zero means no cap.
	MaxVariants int

	// DynOverhead is the execution-time overhead of running under the
	// dynamic instrumentation substrate (paper Sec. 6.2: 3.8% mean, 8.9%
	// worst case — water_spatial).
	DynOverhead float64

	// PhaseAmp and PhasePeriodSec describe deterministic execution phases:
	// resource pressure oscillates by ±PhaseAmp around nominal with the
	// given period, producing the transient contention bursts visible in
	// the paper's Fig. 4.
	PhaseAmp       float64
	PhasePeriodSec float64

	// QualityMetric describes what "inaccuracy" means for this app
	// (documentation only).
	QualityMetric string
}

// Validate reports structural problems in the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("app: profile missing name")
	case p.NominalExecSec <= 0:
		return fmt.Errorf("app %s: nominal execution time must be positive", p.Name)
	case p.ParallelExp <= 0 || p.ParallelExp > 1:
		return fmt.Errorf("app %s: parallel exponent %v outside (0,1]", p.Name, p.ParallelExp)
	case p.LLCMB < 0 || p.BWPerCoreGBs < 0:
		return fmt.Errorf("app %s: negative resource pressure", p.Name)
	case len(p.Sites) == 0:
		return fmt.Errorf("app %s: no approximable sites", p.Name)
	case p.DynOverhead < 0 || p.DynOverhead > 0.2:
		return fmt.Errorf("app %s: implausible instrumentation overhead %v", p.Name, p.DynOverhead)
	case p.PhaseAmp < 0 || p.PhaseAmp >= 1:
		return fmt.Errorf("app %s: phase amplitude %v outside [0,1)", p.Name, p.PhaseAmp)
	case p.PhaseAmp > 0 && p.PhasePeriodSec <= 0:
		return fmt.Errorf("app %s: phase amplitude without period", p.Name)
	}
	for _, s := range p.Sites {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("app %s: %w", p.Name, err)
		}
	}
	return nil
}

// speed returns execution speed on c cores relative to ReferenceCores.
func (p Profile) speed(c int) float64 {
	if c < 1 {
		c = 1
	}
	return math.Pow(float64(c)/ReferenceCores, p.ParallelExp)
}

// ExecTimeOn returns the isolated precise execution time on c cores.
func (p Profile) ExecTimeOn(c int) float64 {
	return p.NominalExecSec / p.speed(c)
}

// Instance is a running approximate application inside a simulation.
type Instance struct {
	prof Profile
	eng  *sim.Engine
	rng  *sim.RNG

	// variants[0] is precise; higher indices are increasingly approximate.
	variants []approx.Effect

	cur      int
	cores    int
	slowdown float64
	overhead float64 // 1 + instrumentation overhead, set when instrumented

	progress    float64 // fraction of logical output produced, 0..1
	inacc       float64 // accumulated quality loss, percent
	nondetWork  float64 // fraction of work executed under nondeterministic variants
	phaseShift  float64
	lastAdvance sim.Time
	started     sim.Time
	finished    bool
	finishedAt  sim.Time
	switches    uint64

	onFinish func()
}

// NewInstance creates an application instance. variants must begin with the
// precise effect (TimeScale 1, Inaccuracy 0); the remainder must be ordered
// from least to most approximate, as produced by the design-space
// exploration.
func NewInstance(eng *sim.Engine, rng *sim.RNG, prof Profile, variants []approx.Effect, cores int, onFinish func()) (*Instance, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if len(variants) == 0 || variants[0] != approx.Precise() {
		return nil, fmt.Errorf("app %s: variants must start with the precise effect", prof.Name)
	}
	for i := 1; i < len(variants); i++ {
		if variants[i].Inaccuracy < variants[i-1].Inaccuracy {
			return nil, fmt.Errorf("app %s: variants not ordered by increasing inaccuracy", prof.Name)
		}
	}
	if cores < 1 {
		return nil, fmt.Errorf("app %s: needs at least one core", prof.Name)
	}
	if onFinish == nil {
		onFinish = func() {}
	}
	return &Instance{
		prof:        prof,
		eng:         eng,
		rng:         rng,
		variants:    variants,
		cores:       cores,
		slowdown:    1.0,
		overhead:    1.0,
		phaseShift:  rng.Float64() * 2 * math.Pi,
		lastAdvance: eng.Now(),
		started:     eng.Now(),
		onFinish:    onFinish,
	}, nil
}

// Profile returns the application's static description.
func (a *Instance) Profile() Profile { return a.prof }

// Variants returns the effect table (index 0 is precise).
func (a *Instance) Variants() []approx.Effect {
	return append([]approx.Effect(nil), a.variants...)
}

// VariantCount returns the number of approximate (non-precise) variants.
func (a *Instance) VariantCount() int { return len(a.variants) - 1 }

// Variant returns the index of the active variant (0 = precise).
func (a *Instance) Variant() int { return a.cur }

// MostApproximate returns the index of the highest-degree variant.
func (a *Instance) MostApproximate() int { return len(a.variants) - 1 }

// Cores returns the current core allocation.
func (a *Instance) Cores() int { return a.cores }

// Switches returns how many variant switches have occurred.
func (a *Instance) Switches() uint64 { return a.switches }

// Done reports whether the application has completed its work.
func (a *Instance) Done() bool { return a.finished }

// Progress returns the fraction of work completed so far, in [0,1].
func (a *Instance) Progress() float64 { return a.progress }

// SetInstrumented applies the dynamic-instrumentation overhead (1+ovh
// execution-time multiplier). Called once by the dyninst substrate when the
// application is launched under it.
func (a *Instance) SetInstrumented(overheadFrac float64) {
	a.Advance(a.eng.Now())
	a.overhead = 1 + overheadFrac
}

// SetCores changes the core allocation, effective immediately.
func (a *Instance) SetCores(n int) {
	a.Advance(a.eng.Now())
	if n < 1 {
		n = 1
	}
	a.cores = n
}

// SetSlowdown updates the contention inflation on the application's own
// execution.
func (a *Instance) SetSlowdown(f float64) {
	a.Advance(a.eng.Now())
	if f < 1 {
		f = 1
	}
	a.slowdown = f
}

// SetVariant switches the active approximation degree. Out-of-range indices
// are clamped; switching a finished application is a no-op.
func (a *Instance) SetVariant(i int) {
	if a.finished {
		return
	}
	a.Advance(a.eng.Now())
	if i < 0 {
		i = 0
	}
	if i >= len(a.variants) {
		i = len(a.variants) - 1
	}
	if i != a.cur {
		a.cur = i
		a.switches++
	}
}

// rate returns current progress in fractions/second.
func (a *Instance) rate() float64 {
	eff := a.variants[a.cur]
	denom := a.prof.NominalExecSec * eff.TimeScale * a.overhead * a.slowdown
	return a.prof.speed(a.cores) / denom
}

// Advance moves the application's internal clock to now, consuming work at
// the current rate and accruing quality loss in proportion to the work done
// under the active variant. It is idempotent for equal timestamps and must be
// called (by the orchestration layer) before any state change and at every
// decision boundary.
func (a *Instance) Advance(now sim.Time) {
	if a.finished || now <= a.lastAdvance {
		a.lastAdvance = now
		return
	}
	dt := now.Sub(a.lastAdvance).Seconds()
	a.lastAdvance = now
	dp := dt * a.rate()
	// The epsilon absorbs floating-point residue so a run that nominally
	// completes exactly at a tick boundary does not linger at progress
	// 0.999999….
	if remaining := 1 - a.progress; dp+1e-9 >= remaining {
		// The app finishes partway through this span; pro-rate the time.
		frac := remaining / dp
		if frac > 1 {
			frac = 1
		}
		a.accrue(remaining)
		a.progress = 1
		a.finished = true
		a.finishedAt = a.lastAdvance - sim.Time((1-frac)*dt*float64(sim.Second))
		a.finalizeQuality()
		a.onFinish()
		return
	}
	a.accrue(dp)
	a.progress += dp
}

func (a *Instance) accrue(dp float64) {
	eff := a.variants[a.cur]
	a.inacc += eff.Inaccuracy * dp
	if eff.NonDeterministic {
		a.nondetWork += dp
	}
}

// finalizeQuality adds the run-to-run noise contributed by nondeterministic
// (synchronization-eliding) variants: the paper observes canneal exceeding
// its threshold (5.4%) under memcached "due to some non-determinism caused
// by synchronization elision".
func (a *Instance) finalizeQuality() {
	if a.nondetWork > 0 {
		a.inacc += a.nondetWork * a.rng.Exp(0.35)
	}
}

// Inaccuracy returns the accumulated output quality loss in percent. The
// final value is only meaningful once Done.
func (a *Instance) Inaccuracy() float64 { return a.inacc }

// ExecTime returns the wall-clock execution time. For finished apps it is
// the exact span; for running apps, the time elapsed so far.
func (a *Instance) ExecTime() sim.Duration {
	if a.finished {
		return a.finishedAt.Sub(a.started)
	}
	return a.lastAdvance.Sub(a.started)
}

// RelativeExecTime returns execution time normalized to the isolated precise
// run on ReferenceCores (the paper's "execution time normalized to precise").
func (a *Instance) RelativeExecTime() float64 {
	return a.ExecTime().Seconds() / a.prof.NominalExecSec
}

// phase returns the deterministic phase multiplier on resource pressure at
// time t.
func (a *Instance) phase(t sim.Time) float64 {
	if a.prof.PhaseAmp == 0 {
		return 1
	}
	omega := 2 * math.Pi / a.prof.PhasePeriodSec
	return 1 + a.prof.PhaseAmp*math.Sin(omega*t.Seconds()+a.phaseShift)
}

// llcScaleExp converts traffic reduction into cache-footprint reduction:
// perforated iterations skip their data, shrinking the effective working set
// somewhat less than linearly.
const llcScaleExp = 0.75

// Demand reports the application's current pressure on shared resources.
// Finished applications exert no pressure.
func (a *Instance) Demand(tenant platform.TenantID, now sim.Time) interference.Demand {
	if a.finished {
		return interference.Demand{Tenant: tenant, Sensitivity: a.prof.Sensitivity}
	}
	eff := a.variants[a.cur]
	ph := a.phase(now)
	return interference.Demand{
		Tenant:      tenant,
		LLCMB:       a.prof.LLCMB * math.Pow(eff.TrafficScale, llcScaleExp) * ph,
		MemBWGBs:    a.prof.BWPerCoreGBs * float64(a.cores) * eff.TrafficScale * ph,
		Sensitivity: a.prof.Sensitivity,
	}
}
