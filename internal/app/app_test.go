package app

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/approx-sched/pliant/internal/approx"
	"github.com/approx-sched/pliant/internal/sim"
)

func testProfile() Profile {
	return Profile{
		Name: "test-app", Suite: PARSEC,
		NominalExecSec: 10, ParallelExp: 1.0,
		LLCMB: 40, BWPerCoreGBs: 2,
		MaxVariants: 4,
		DynOverhead: 0.04,
		Sites: []approx.Site{{
			Name: "loop", Technique: approx.LoopPerforation,
			RuntimeShare: 0.5, TrafficShare: 0.5, UsefulFrac: 0.5,
			QualityCoef: 0.1, QualityExp: 1.0,
		}},
		QualityMetric: "test metric",
	}
}

func testVariants() []approx.Effect {
	return []approx.Effect{
		approx.Precise(),
		{TimeScale: 0.8, TrafficScale: 0.8, Inaccuracy: 1.0},
		{TimeScale: 0.5, TrafficScale: 0.5, Inaccuracy: 4.0},
	}
}

func newTestInstance(t *testing.T, eng *sim.Engine, cores int) *Instance {
	t.Helper()
	a, err := NewInstance(eng, sim.NewRNG(7), testProfile(), testVariants(), cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// near asserts a duration within a small tolerance: progress integration is
// floating-point, so nanosecond exactness is not meaningful.
func near(t *testing.T, got, want sim.Duration) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 5*sim.Millisecond {
		t.Fatalf("duration = %v, want ~%v", got, want)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := testProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Profile){
		"no name":       func(p *Profile) { p.Name = "" },
		"zero exec":     func(p *Profile) { p.NominalExecSec = 0 },
		"bad parexp":    func(p *Profile) { p.ParallelExp = 1.5 },
		"neg llc":       func(p *Profile) { p.LLCMB = -1 },
		"no sites":      func(p *Profile) { p.Sites = nil },
		"huge overhead": func(p *Profile) { p.DynOverhead = 0.5 },
		"bad phase":     func(p *Profile) { p.PhaseAmp = 1.2 },
		"amp no period": func(p *Profile) { p.PhaseAmp = 0.2; p.PhasePeriodSec = 0 },
	}
	for name, mutate := range cases {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCatalogValidatesAndCounts(t *testing.T) {
	cat := Catalog()
	if len(cat) != 24 {
		t.Fatalf("catalog has %d apps, paper uses 24", len(cat))
	}
	seen := map[string]bool{}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate app %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestCatalogSuiteComposition(t *testing.T) {
	// Paper Sec. 5: 3 PARSEC, 3 SPLASH-2, 10 MineBench, 8 BioPerf.
	want := map[Suite]int{PARSEC: 3, SPLASH2: 3, MineBench: 10, BioPerf: 8}
	for suite, n := range want {
		if got := len(BySuite(suite)); got != n {
			t.Errorf("%v: %d apps, want %d", suite, got, n)
		}
	}
	if SPLASH2.String() != "SPLASH-2" || MineBench.String() != "MineBench" {
		t.Error("suite names wrong")
	}
}

func TestByNameAndNames(t *testing.T) {
	p, err := ByName("canneal")
	if err != nil || p.Name != "canneal" {
		t.Fatalf("ByName(canneal) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown app accepted")
	}
	names := Names()
	if len(names) != 24 || names[0] != "fluidanimate" {
		t.Fatalf("Names() = %v", names[:3])
	}
}

func TestSortedByPressure(t *testing.T) {
	sorted := SortedByPressure()
	if len(sorted) != 24 {
		t.Fatal("wrong length")
	}
	for i := 1; i < len(sorted); i++ {
		pi := sorted[i-1].LLCMB + 8*sorted[i-1].BWPerCoreGBs
		pj := sorted[i].LLCMB + 8*sorted[i].BWPerCoreGBs
		if pi < pj {
			t.Fatal("not sorted by pressure")
		}
	}
}

func TestExecTimeOnScaling(t *testing.T) {
	p := testProfile() // ParallelExp 1: perfect scaling
	if got := p.ExecTimeOn(ReferenceCores); got != 10 {
		t.Fatalf("ExecTimeOn(8) = %v, want 10", got)
	}
	if got := p.ExecTimeOn(4); got != 20 {
		t.Fatalf("ExecTimeOn(4) = %v, want 20", got)
	}
	p.ParallelExp = 0.5
	if got := p.ExecTimeOn(2); math.Abs(got-20) > 1e-9 {
		t.Fatalf("sublinear ExecTimeOn(2) = %v, want 20", got)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	prof := testProfile()
	if _, err := NewInstance(eng, rng, prof, nil, 4, nil); err == nil {
		t.Fatal("empty variants accepted")
	}
	if _, err := NewInstance(eng, rng, prof, []approx.Effect{{TimeScale: 0.5}}, 4, nil); err == nil {
		t.Fatal("non-precise first variant accepted")
	}
	unordered := []approx.Effect{approx.Precise(), {TimeScale: 0.5, TrafficScale: 1, Inaccuracy: 4}, {TimeScale: 0.7, TrafficScale: 1, Inaccuracy: 1}}
	if _, err := NewInstance(eng, rng, prof, unordered, 4, nil); err == nil {
		t.Fatal("unordered variants accepted")
	}
	if _, err := NewInstance(eng, rng, prof, testVariants(), 0, nil); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestPreciseRunFinishesOnTime(t *testing.T) {
	eng := sim.NewEngine()
	finished := false
	a, err := NewInstance(eng, sim.NewRNG(7), testProfile(), testVariants(), ReferenceCores,
		func() { finished = true })
	if err != nil {
		t.Fatal(err)
	}
	// Advance in steps to 10s: app should finish exactly at nominal time.
	for s := 1; s <= 10; s++ {
		eng.Schedule(sim.Time(s)*sim.Time(sim.Second), func() { a.Advance(eng.Now()) })
	}
	eng.Run(sim.Forever)
	if !finished || !a.Done() {
		t.Fatal("app did not finish")
	}
	near(t, a.ExecTime(), 10*sim.Second)
	if a.Inaccuracy() != 0 {
		t.Fatalf("precise run inaccuracy = %v", a.Inaccuracy())
	}
	if math.Abs(a.RelativeExecTime()-1.0) > 1e-9 {
		t.Fatalf("RelativeExecTime = %v", a.RelativeExecTime())
	}
}

func TestApproximateRunIsFasterAndInaccurate(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, ReferenceCores)
	a.SetVariant(2) // TimeScale 0.5, Inaccuracy 4%
	stop := eng.Ticker(100*sim.Millisecond, func(now sim.Time) { a.Advance(now) })
	eng.Run(sim.Time(20 * sim.Second))
	stop()
	if !a.Done() {
		t.Fatal("app did not finish")
	}
	near(t, a.ExecTime(), 5*sim.Second)
	if got := a.Inaccuracy(); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("Inaccuracy = %v, want 4.0 (whole run at variant 2)", got)
	}
}

func TestMixedVariantInaccuracyIsWorkWeighted(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, ReferenceCores)
	// Run half the work precise, half at variant 2 (4% loss): final loss 2%.
	eng.Schedule(sim.Time(5*sim.Second), func() {
		a.Advance(eng.Now())
		if math.Abs(a.Progress()-0.5) > 1e-9 {
			t.Errorf("progress = %v at 5s, want 0.5", a.Progress())
		}
		a.SetVariant(2)
	})
	stop := eng.Ticker(250*sim.Millisecond, func(now sim.Time) { a.Advance(now) })
	eng.Run(sim.Time(20 * sim.Second))
	stop()
	if !a.Done() {
		t.Fatal("not done")
	}
	if got := a.Inaccuracy(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Inaccuracy = %v, want 2.0", got)
	}
	// 5s precise + 2.5s at half-time-scale: 7.5s total.
	near(t, a.ExecTime(), 7500*sim.Millisecond)
}

func TestFewerCoresSlowProgress(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, 4) // half of reference: 2x time at ParallelExp 1
	stop := eng.Ticker(sim.Second, func(now sim.Time) { a.Advance(now) })
	eng.Run(sim.Time(30 * sim.Second))
	stop()
	near(t, a.ExecTime(), 20*sim.Second)
}

func TestSlowdownDilatesExecution(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, ReferenceCores)
	a.SetSlowdown(2.0)
	stop := eng.Ticker(sim.Second, func(now sim.Time) { a.Advance(now) })
	eng.Run(sim.Time(30 * sim.Second))
	stop()
	near(t, a.ExecTime(), 20*sim.Second)
}

func TestInstrumentationOverheadDilates(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, ReferenceCores)
	a.SetInstrumented(0.10)
	stop := eng.Ticker(100*sim.Millisecond, func(now sim.Time) { a.Advance(now) })
	eng.Run(sim.Time(30 * sim.Second))
	stop()
	near(t, a.ExecTime(), 11*sim.Second)
}

func TestVariantClampingAndSwitchCount(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, 8)
	a.SetVariant(99)
	if a.Variant() != a.MostApproximate() {
		t.Fatalf("variant = %d, want clamp to %d", a.Variant(), a.MostApproximate())
	}
	a.SetVariant(-5)
	if a.Variant() != 0 {
		t.Fatalf("variant = %d, want clamp to 0", a.Variant())
	}
	if a.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", a.Switches())
	}
	a.SetVariant(0) // no-op: same variant
	if a.Switches() != 2 {
		t.Fatalf("no-op switch counted: %d", a.Switches())
	}
	if a.VariantCount() != 2 {
		t.Fatalf("VariantCount = %d", a.VariantCount())
	}
}

func TestDemandScalesWithVariantAndCores(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, 8)
	d0 := a.Demand("app", 0)
	if d0.LLCMB != 40 || d0.MemBWGBs != 16 {
		t.Fatalf("precise demand = %+v", d0)
	}
	a.SetVariant(2) // traffic scale 0.5
	d2 := a.Demand("app", 0)
	if d2.MemBWGBs != 8 {
		t.Fatalf("approx bw = %v, want 8", d2.MemBWGBs)
	}
	if d2.LLCMB >= d0.LLCMB || d2.LLCMB <= d0.LLCMB*0.5 {
		t.Fatalf("approx llc = %v, want between 20 and 40 (sublinear)", d2.LLCMB)
	}
	a.SetCores(4)
	if got := a.Demand("app", 0).MemBWGBs; got != 4 {
		t.Fatalf("bw on 4 cores = %v, want 4", got)
	}
}

func TestFinishedAppExertsNoPressure(t *testing.T) {
	eng := sim.NewEngine()
	a := newTestInstance(t, eng, 8)
	a.Advance(sim.Time(100 * sim.Second))
	if !a.Done() {
		t.Fatal("not done after 100s")
	}
	d := a.Demand("app", eng.Now())
	if d.LLCMB != 0 || d.MemBWGBs != 0 {
		t.Fatalf("finished app demand = %+v", d)
	}
	// Switching a finished app is a no-op.
	a.SetVariant(2)
	if a.Variant() != 0 {
		t.Fatal("finished app switched variant")
	}
}

func TestPhaseOscillatesDemand(t *testing.T) {
	eng := sim.NewEngine()
	prof := testProfile()
	prof.PhaseAmp = 0.4
	prof.PhasePeriodSec = 10
	a, err := NewInstance(eng, sim.NewRNG(3), prof, testVariants(), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for s := 0.0; s < 10; s += 0.5 {
		d := a.Demand("app", sim.Time(s*float64(sim.Second)))
		if d.MemBWGBs < lo {
			lo = d.MemBWGBs
		}
		if d.MemBWGBs > hi {
			hi = d.MemBWGBs
		}
	}
	nominal := prof.BWPerCoreGBs * 8
	if hi < nominal*1.2 || lo > nominal*0.8 {
		t.Fatalf("phase variation too small: [%v, %v] around %v", lo, hi, nominal)
	}
}

func TestNonDeterministicVariantAddsNoise(t *testing.T) {
	prof := testProfile()
	variants := []approx.Effect{
		approx.Precise(),
		{TimeScale: 0.8, TrafficScale: 0.7, Inaccuracy: 3.0, NonDeterministic: true},
	}
	// With elision active for the whole run, final inaccuracy must exceed
	// the deterministic 3% for at least some seeds.
	exceeded := false
	for seed := uint64(0); seed < 10; seed++ {
		eng := sim.NewEngine()
		a, err := NewInstance(eng, sim.NewRNG(seed), prof, variants, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		a.SetVariant(1)
		a.Advance(sim.Time(100 * sim.Second))
		if !a.Done() {
			t.Fatal("not done")
		}
		if a.Inaccuracy() < 3.0 {
			t.Fatalf("noise reduced inaccuracy below deterministic part: %v", a.Inaccuracy())
		}
		if a.Inaccuracy() > 3.0 {
			exceeded = true
		}
	}
	if !exceeded {
		t.Fatal("nondeterministic noise never materialized")
	}
}

// Property: progress is monotone and bounded in [0,1]; inaccuracy is
// monotone, for arbitrary interleavings of advances and switches.
func TestProgressMonotoneProperty(t *testing.T) {
	f := func(seed uint64, steps []uint8) bool {
		eng := sim.NewEngine()
		a, err := NewInstance(eng, sim.NewRNG(seed), testProfile(), testVariants(), 4, nil)
		if err != nil {
			return false
		}
		now := sim.Time(0)
		prevP, prevI := 0.0, 0.0
		for _, s := range steps {
			now = now.Add(sim.Duration(s) * 10 * sim.Millisecond)
			switch s % 3 {
			case 0:
				eng.Schedule(now, func() {})
				a.Advance(now)
			case 1:
				a.SetVariant(int(s) % 4)
			case 2:
				a.SetCores(int(s)%7 + 1)
			}
			p, i := a.Progress(), a.Inaccuracy()
			if p < prevP-1e-12 || p > 1+1e-12 || i < prevI-1e-12 {
				return false
			}
			prevP, prevI = p, i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
