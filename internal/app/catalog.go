package app

import (
	"fmt"
	"sort"

	"github.com/approx-sched/pliant/internal/approx"
	"github.com/approx-sched/pliant/internal/interference"
)

// Site construction helpers keep the catalog readable.

func perf(name string, runtime, traffic, useful, qCoef, qExp float64) approx.Site {
	return approx.Site{
		Name: name, Technique: approx.LoopPerforation,
		RuntimeShare: runtime, TrafficShare: traffic,
		UsefulFrac: useful, QualityCoef: qCoef, QualityExp: qExp,
	}
}

func elide(name string, runtime, traffic, useful, qCoef, qExp float64) approx.Site {
	return approx.Site{
		Name: name, Technique: approx.SyncElision,
		RuntimeShare: runtime, TrafficShare: traffic,
		UsefulFrac: useful, QualityCoef: qCoef, QualityExp: qExp,
	}
}

func prec(name string, runtime, traffic, useful, qCoef, qExp float64) approx.Site {
	return approx.Site{
		Name: name, Technique: approx.PrecisionReduction,
		RuntimeShare: runtime, TrafficShare: traffic,
		UsefulFrac: useful, QualityCoef: qCoef, QualityExp: qExp,
	}
}

// Catalog returns the profiles of all 24 approximate applications, in the
// presentation order of the paper's Fig. 5: three PARSEC and three SPLASH-2
// workloads, ten MineBench data-mining applications, and eight BioPerf
// bioinformatics applications.
//
// Profile parameters are calibrated to the paper's characterizations rather
// than measured on hardware (see DESIGN.md §1): cache/bandwidth pressures
// track the per-app QoS-violation magnitudes of Fig. 1's even rows;
// runtime/traffic shares of the approximable sites track which applications
// gain speed (streamcluster) versus only shed traffic (water_spatial,
// canneal) when approximated; MaxVariants pins the selected-variant counts
// the paper reports for its highlighted applications (canneal 4, raytrace 2,
// Bayesian 8, SNP 5, PLSA 8).
func Catalog() []Profile {
	return []Profile{
		// ---------------------------------------------------------- PARSEC
		{
			Name: "fluidanimate", Suite: PARSEC,
			NominalExecSec: 30, ParallelExp: 0.92,
			LLCMB: 40, BWPerCoreGBs: 1.8,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: true, MaxVariants: 3,
			DynOverhead: 0.021, PhaseAmp: 0.20, PhasePeriodSec: 5,
			QualityMetric: "particle position RMS error",
			Sites: []approx.Site{
				perf("ComputeForces_loop", 0.45, 0.40, 0.55, 0.085, 1.4),
				elide("grid_mutex", 0.06, 0.10, 0.30, 0.012, 1.0),
			},
		},
		{
			Name: "canneal", Suite: PARSEC,
			NominalExecSec: 38, ParallelExp: 0.85,
			// Canneal's pointer-chasing netlist makes it an LLC hog with
			// modest bandwidth; approximation sheds little of that traffic
			// (paper: approximation alone does not fix canneal-memcached).
			LLCMB: 52, BWPerCoreGBs: 2.2,
			Sensitivity: interference.Sensitivity{LLC: 0.8, MemBW: 0.5},
			AcceptHints: true, MaxVariants: 4,
			DynOverhead: 0.045, PhaseAmp: 0.30, PhasePeriodSec: 8,
			QualityMetric: "final routing cost increase",
			Sites: []approx.Site{
				// Simulated-annealing move loop: many moves are rejected,
				// so a large fraction of iterations is skippable for free
				// (the paper's Sec. 3 canneal example).
				perf("annealer_move_loop", 0.62, 0.22, 0.42, 0.16, 1.25),
				elide("netlist_swap_lock", 0.07, 0.08, 0.55, 0.01, 1.0),
			},
		},
		{
			Name: "streamcluster", Suite: PARSEC,
			NominalExecSec: 42, ParallelExp: 0.90,
			// Streaming k-median clustering: the heaviest bandwidth
			// consumer in the set (paper Fig. 1: ~9× NGINX violations).
			LLCMB: 58, BWPerCoreGBs: 5.0,
			Sensitivity: interference.Sensitivity{LLC: 0.5, MemBW: 0.8},
			AcceptHints: true, MaxVariants: 5,
			DynOverhead: 0.052, PhaseAmp: 0.25, PhasePeriodSec: 6,
			QualityMetric: "clustering cost (BCB) increase",
			Sites: []approx.Site{
				perf("pgain_eval_loop", 0.55, 0.45, 0.50, 0.075, 1.35),
				perf("dist_refine_loop", 0.20, 0.25, 0.45, 0.05, 1.3),
				elide("open_center_lock", 0.06, 0.08, 0.35, 0.02, 1.0),
			},
		},
		// -------------------------------------------------------- SPLASH-2
		{
			Name: "water_nsquared", Suite: SPLASH2,
			NominalExecSec: 35, ParallelExp: 0.88,
			LLCMB: 46, BWPerCoreGBs: 3.0,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.6},
			AcceptHints: true, MaxVariants: 4,
			DynOverhead: 0.034, PhaseAmp: 0.15, PhasePeriodSec: 4,
			QualityMetric: "potential energy error",
			Sites: []approx.Site{
				// O(n²) pairwise interactions: perforation cuts time but
				// the remaining pairs still sweep the whole dataset, so
				// traffic relief is limited (paper: approximation has
				// little tail-latency impact for water_nsquared).
				perf("interf_pair_loop", 0.58, 0.18, 0.60, 0.095, 1.3),
				prec("forces_double_to_float", 0.10, 0.12, 0.40, 0.012, 1.0),
			},
		},
		{
			Name: "water_spatial", Suite: SPLASH2,
			NominalExecSec: 33, ParallelExp: 0.88,
			LLCMB: 50, BWPerCoreGBs: 3.5,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.6},
			AcceptHints: true, MaxVariants: 4,
			// The paper's worst instrumentation overhead (8.9%) and the one
			// app whose execution time degrades under Pliant: its variants
			// shed traffic but barely any execution time ("an almost
			// vertical line" in Fig. 1).
			DynOverhead: 0.089, PhaseAmp: 0.18, PhasePeriodSec: 5,
			QualityMetric: "potential energy error",
			Sites: []approx.Site{
				perf("box_neighbor_loop", 0.08, 0.42, 0.50, 0.12, 1.2),
				prec("coords_double_to_float", 0.04, 0.22, 0.45, 0.025, 1.15),
			},
		},
		{
			Name: "raytrace", Suite: SPLASH2,
			NominalExecSec: 24, ParallelExp: 0.95,
			// Phase-heavy renderer: pressure comes in bursts (paper: "only
			// introduces high compute and LLC interference in certain
			// execution phases").
			LLCMB: 38, BWPerCoreGBs: 1.5,
			Sensitivity: interference.Sensitivity{LLC: 0.5, MemBW: 0.4},
			AcceptHints: true, MaxVariants: 2,
			DynOverhead: 0.018, PhaseAmp: 0.45, PhasePeriodSec: 7,
			QualityMetric: "pixel RMS error",
			Sites: []approx.Site{
				// Dropping secondary rays barely dents image quality:
				// the paper's raytrace variants sit below 0.1% inaccuracy.
				perf("secondary_ray_loop", 0.60, 0.45, 0.015, 0.9, 1.0),
			},
		},
		// ------------------------------------------------------- MineBench
		{
			Name: "Bayesian", Suite: MineBench,
			NominalExecSec: 52, ParallelExp: 0.90,
			LLCMB: 48, BWPerCoreGBs: 3.0,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.6},
			AcceptHints: true, MaxVariants: 8,
			DynOverhead: 0.031, PhaseAmp: 0.20, PhasePeriodSec: 6,
			QualityMetric: "classification accuracy loss",
			// A very rich design space (paper: 8 variants on the pareto
			// curve) from four independently approximable phases.
			Sites: []approx.Site{
				perf("likelihood_scan", 0.35, 0.30, 0.55, 0.035, 1.3),
				perf("feature_update_loop", 0.25, 0.22, 0.50, 0.035, 1.3),
				perf("prior_smooth_loop", 0.12, 0.10, 0.45, 0.035, 1.25),
				prec("prob_double_to_float", 0.08, 0.15, 0.40, 0.02, 1.0),
			},
		},
		{
			Name: "k-means", Suite: MineBench,
			NominalExecSec: 28, ParallelExp: 0.93,
			LLCMB: 55, BWPerCoreGBs: 4.2,
			Sensitivity: interference.Sensitivity{LLC: 0.5, MemBW: 0.7},
			AcceptHints: true, MaxVariants: 6,
			DynOverhead: 0.026, PhaseAmp: 0.15, PhasePeriodSec: 4,
			QualityMetric: "centroid displacement",
			Sites: []approx.Site{
				perf("assign_points_loop", 0.55, 0.50, 0.50, 0.07, 1.35),
				perf("converge_iters", 0.25, 0.22, 0.55, 0.055, 1.3),
			},
		},
		{
			Name: "BIRCH", Suite: MineBench,
			NominalExecSec: 36, ParallelExp: 0.89,
			LLCMB: 42, BWPerCoreGBs: 2.8,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: false, MaxVariants: 4,
			DynOverhead: 0.039, PhaseAmp: 0.22, PhasePeriodSec: 7,
			QualityMetric: "cluster purity loss",
			Sites: []approx.Site{
				perf("cf_tree_insert_scan", 0.50, 0.40, 0.50, 0.08, 1.3),
				perf("rebuild_pass", 0.18, 0.15, 0.55, 0.045, 1.3),
			},
		},
		{
			Name: "SNP", Suite: MineBench,
			NominalExecSec: 48, ParallelExp: 0.87,
			LLCMB: 37, BWPerCoreGBs: 2.2,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: true, MaxVariants: 5,
			DynOverhead: 0.024, PhaseAmp: 0.12, PhasePeriodSec: 5,
			QualityMetric: "genotype call accuracy loss",
			// SNP's elision-heavy variants are "particularly effective at
			// reducing the amount of contention in the shared LLC"
			// (paper Sec. 6.1): large traffic shares.
			Sites: []approx.Site{
				elide("marker_table_lock", 0.12, 0.35, 0.40, 0.03, 1.0),
				perf("pairwise_ld_loop", 0.45, 0.38, 0.50, 0.08, 1.3),
				prec("freq_double_to_float", 0.06, 0.18, 0.35, 0.015, 1.0),
			},
		},
		{
			Name: "GeneNet", Suite: MineBench,
			NominalExecSec: 44, ParallelExp: 0.88,
			LLCMB: 36, BWPerCoreGBs: 2.0,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: false, MaxVariants: 5,
			DynOverhead: 0.041, PhaseAmp: 0.18, PhasePeriodSec: 6,
			QualityMetric: "network edge F-score loss",
			Sites: []approx.Site{
				perf("edge_score_loop", 0.48, 0.35, 0.50, 0.08, 1.3),
				perf("bootstrap_rounds", 0.22, 0.18, 0.50, 0.05, 1.3),
			},
		},
		{
			Name: "Fuzzy k-means", Suite: MineBench,
			NominalExecSec: 31, ParallelExp: 0.92,
			LLCMB: 60, BWPerCoreGBs: 4.5,
			Sensitivity: interference.Sensitivity{LLC: 0.5, MemBW: 0.7},
			AcceptHints: true, MaxVariants: 6,
			DynOverhead: 0.030, PhaseAmp: 0.15, PhasePeriodSec: 4,
			QualityMetric: "membership matrix RMS error",
			Sites: []approx.Site{
				perf("membership_update_loop", 0.52, 0.48, 0.50, 0.065, 1.35),
				perf("centroid_refine_iters", 0.24, 0.22, 0.55, 0.055, 1.3),
			},
		},
		{
			Name: "SEMPHY", Suite: MineBench,
			NominalExecSec: 47, ParallelExp: 0.86,
			LLCMB: 38, BWPerCoreGBs: 2.2,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: true, MaxVariants: 4,
			DynOverhead: 0.048, PhaseAmp: 0.20, PhasePeriodSec: 8,
			QualityMetric: "tree log-likelihood loss",
			Sites: []approx.Site{
				perf("em_iteration_loop", 0.50, 0.30, 0.55, 0.1, 1.3),
				prec("branch_double_to_float", 0.08, 0.14, 0.40, 0.02, 1.0),
			},
		},
		{
			Name: "SVM-RFE", Suite: MineBench,
			NominalExecSec: 39, ParallelExp: 0.90,
			LLCMB: 38, BWPerCoreGBs: 2.3,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: false, MaxVariants: 4,
			DynOverhead: 0.037, PhaseAmp: 0.15, PhasePeriodSec: 5,
			QualityMetric: "feature ranking correlation loss",
			Sites: []approx.Site{
				perf("kernel_eval_loop", 0.52, 0.35, 0.50, 0.08, 1.3),
				perf("rfe_elim_rounds", 0.20, 0.15, 0.55, 0.04, 1.3),
			},
		},
		{
			Name: "PLSA", Suite: MineBench,
			NominalExecSec: 55, ParallelExp: 0.89,
			// The heaviest memcached disruptor in Fig. 1 (~12×): large
			// working set streamed repeatedly during EM iterations.
			LLCMB: 66, BWPerCoreGBs: 4.0,
			Sensitivity: interference.Sensitivity{LLC: 0.5, MemBW: 0.7},
			AcceptHints: true, MaxVariants: 8,
			DynOverhead: 0.055, PhaseAmp: 0.18, PhasePeriodSec: 7,
			QualityMetric: "log-likelihood loss",
			Sites: []approx.Site{
				perf("em_e_step_loop", 0.25, 0.34, 0.52, 0.033, 1.3),
				perf("em_m_step_loop", 0.18, 0.24, 0.50, 0.033, 1.3),
				perf("topic_smooth_loop", 0.08, 0.10, 0.45, 0.033, 1.25),
				prec("posterior_double_to_float", 0.08, 0.16, 0.40, 0.02, 1.0),
			},
		},
		{
			Name: "ScalParC", Suite: MineBench,
			NominalExecSec: 26, ParallelExp: 0.91,
			LLCMB: 35, BWPerCoreGBs: 1.5,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.4},
			AcceptHints: true, MaxVariants: 3,
			DynOverhead: 0.029, PhaseAmp: 0.12, PhasePeriodSec: 4,
			QualityMetric: "decision-tree accuracy loss",
			Sites: []approx.Site{
				perf("split_point_scan", 0.48, 0.35, 0.50, 0.11, 1.3),
				elide("attr_list_lock", 0.06, 0.08, 0.35, 0.02, 1.0),
			},
		},
		// --------------------------------------------------------- BioPerf
		{
			Name: "Hmmer", Suite: BioPerf,
			NominalExecSec: 41, ParallelExp: 0.93,
			LLCMB: 36, BWPerCoreGBs: 1.9,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.4},
			AcceptHints: false, MaxVariants: 3,
			DynOverhead: 0.033, PhaseAmp: 0.15, PhasePeriodSec: 6,
			QualityMetric: "hit sensitivity loss",
			Sites: []approx.Site{
				perf("viterbi_band_loop", 0.50, 0.32, 0.50, 0.11, 1.3),
				prec("score_double_to_float", 0.08, 0.12, 0.35, 0.015, 1.0),
			},
		},
		{
			Name: "Blast", Suite: BioPerf,
			NominalExecSec: 29, ParallelExp: 0.94,
			LLCMB: 35, BWPerCoreGBs: 1.6,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.4},
			AcceptHints: false, MaxVariants: 3,
			DynOverhead: 0.022, PhaseAmp: 0.15, PhasePeriodSec: 5,
			QualityMetric: "alignment hit recall loss",
			Sites: []approx.Site{
				perf("extend_hits_loop", 0.46, 0.30, 0.48, 0.08, 1.3),
				perf("gapped_align_refine", 0.18, 0.12, 0.50, 0.045, 1.25),
			},
		},
		{
			Name: "Fasta", Suite: BioPerf,
			NominalExecSec: 25, ParallelExp: 0.93,
			LLCMB: 35, BWPerCoreGBs: 1.7,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.4},
			AcceptHints: false, MaxVariants: 3,
			DynOverhead: 0.020, PhaseAmp: 0.12, PhasePeriodSec: 4,
			QualityMetric: "alignment score loss",
			Sites: []approx.Site{
				perf("diagonal_scan_loop", 0.50, 0.34, 0.48, 0.11, 1.3),
				prec("score_int_narrowing", 0.06, 0.10, 0.35, 0.015, 1.0),
			},
		},
		{
			Name: "GRAPPA", Suite: BioPerf,
			NominalExecSec: 37, ParallelExp: 0.88,
			LLCMB: 40, BWPerCoreGBs: 2.4,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: false, MaxVariants: 3,
			DynOverhead: 0.043, PhaseAmp: 0.20, PhasePeriodSec: 6,
			QualityMetric: "breakpoint distance error",
			Sites: []approx.Site{
				perf("tsp_bound_loop", 0.52, 0.36, 0.52, 0.1, 1.3),
				elide("median_tree_lock", 0.07, 0.09, 0.40, 0.022, 1.0),
			},
		},
		{
			Name: "ClustaLW", Suite: BioPerf,
			NominalExecSec: 45, ParallelExp: 0.87,
			LLCMB: 44, BWPerCoreGBs: 2.6,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: false, MaxVariants: 4,
			DynOverhead: 0.050, PhaseAmp: 0.20, PhasePeriodSec: 7,
			QualityMetric: "alignment SP-score loss",
			Sites: []approx.Site{
				perf("pairwise_align_loop", 0.48, 0.36, 0.50, 0.08, 1.3),
				perf("progressive_refine", 0.20, 0.16, 0.52, 0.04, 1.3),
			},
		},
		{
			Name: "T-Coffee", Suite: BioPerf,
			NominalExecSec: 50, ParallelExp: 0.86,
			LLCMB: 35, BWPerCoreGBs: 1.9,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.4},
			AcceptHints: false, MaxVariants: 4,
			DynOverhead: 0.058, PhaseAmp: 0.18, PhasePeriodSec: 8,
			QualityMetric: "alignment consistency loss",
			Sites: []approx.Site{
				perf("library_extend_loop", 0.50, 0.30, 0.50, 0.08, 1.3),
				perf("triplet_consistency", 0.18, 0.14, 0.48, 0.045, 1.3),
			},
		},
		{
			Name: "Glimmer", Suite: BioPerf,
			NominalExecSec: 32, ParallelExp: 0.92,
			LLCMB: 35, BWPerCoreGBs: 1.8,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.4},
			AcceptHints: false, MaxVariants: 4,
			DynOverhead: 0.036, PhaseAmp: 0.15, PhasePeriodSec: 5,
			QualityMetric: "gene-call accuracy loss",
			Sites: []approx.Site{
				perf("icm_score_loop", 0.48, 0.32, 0.50, 0.11, 1.3),
				prec("prob_double_to_float", 0.07, 0.12, 0.35, 0.018, 1.0),
			},
		},
		{
			Name: "CE", Suite: BioPerf,
			NominalExecSec: 34, ParallelExp: 0.90,
			LLCMB: 46, BWPerCoreGBs: 2.8,
			Sensitivity: interference.Sensitivity{LLC: 0.6, MemBW: 0.5},
			AcceptHints: false, MaxVariants: 3,
			DynOverhead: 0.046, PhaseAmp: 0.22, PhasePeriodSec: 6,
			QualityMetric: "structure alignment RMSD increase",
			Sites: []approx.Site{
				perf("afp_extend_loop", 0.50, 0.36, 0.52, 0.09, 1.3),
				perf("path_refine_rounds", 0.16, 0.12, 0.50, 0.035, 1.25),
			},
		},
	}
}

// ByName returns the profile with the given name (case-sensitive, as printed
// in the paper's figures).
func ByName(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("app: unknown application %q", name)
}

// Names returns all catalog application names in presentation order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, p := range cat {
		out[i] = p.Name
	}
	return out
}

// BySuite returns the catalog applications of one suite, in catalog order.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range Catalog() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// MeanDynOverhead returns the average instrumentation overhead across the
// catalog (paper Sec. 6.2: 3.8%).
func MeanDynOverhead() float64 {
	cat := Catalog()
	sum := 0.0
	for _, p := range cat {
		sum += p.DynOverhead
	}
	return sum / float64(len(cat))
}

// SortedByPressure returns catalog profiles ordered by descending combined
// shared-resource pressure — a rough proxy for how disruptive each app is to
// a colocated service.
func SortedByPressure() []Profile {
	cat := Catalog()
	sort.SliceStable(cat, func(i, j int) bool {
		pi := cat[i].LLCMB + 8*cat[i].BWPerCoreGBs
		pj := cat[j].LLCMB + 8*cat[j].BWPerCoreGBs
		return pi > pj
	})
	return cat
}
