// Package approx models the source-level approximation techniques the paper
// explores (Sec. 3): loop perforation, synchronization elision, and
// lower-precision data types. Each application exposes a set of approximable
// sites; a combination of per-site decisions forms an approximate variant
// whose effect on execution time, memory traffic, and output quality is
// computed here. The design-space exploration (package dse) enumerates
// decisions and selects the pareto-optimal variants Pliant switches between
// at runtime.
package approx

import (
	"fmt"
	"math"
)

// Technique is one of the paper's three approximation strategies.
type Technique int

// The approximation techniques from Sec. 3 of the paper.
const (
	// LoopPerforation omits a fraction of a loop's iterations.
	LoopPerforation Technique = iota
	// SyncElision removes locks/barriers, trading determinism for less
	// memory traffic and shorter critical paths.
	SyncElision
	// PrecisionReduction narrows data types (double→float→int), reducing
	// memory traffic and, to a lesser degree, execution time.
	PrecisionReduction
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case LoopPerforation:
		return "perforation"
	case SyncElision:
		return "sync-elision"
	case PrecisionReduction:
		return "precision"
	default:
		return fmt.Sprintf("technique(%d)", int(t))
	}
}

// PerforationMode selects how a loop is perforated (Sec. 3: execute a chunk
// of MAX_ITER/p iterations, execute every p-th iteration, or skip every
// p-th iteration).
type PerforationMode int

// The three ways the paper describes to perforate a loop by a factor p.
const (
	// Chunk executes only the first MAX_ITER/p iterations.
	Chunk PerforationMode = iota
	// Stride executes every p-th iteration.
	Stride
	// SkipEveryPth executes all but every p-th iteration, reducing the
	// loop by (p-1)/p... i.e., skipping only a 1/p fraction.
	SkipEveryPth
)

// String names the mode.
func (m PerforationMode) String() string {
	switch m {
	case Chunk:
		return "chunk"
	case Stride:
		return "stride"
	case SkipEveryPth:
		return "skip-pth"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SkippedFraction returns the fraction of iterations omitted when perforating
// by factor p under mode m.
func (m PerforationMode) SkippedFraction(p int) float64 {
	if p <= 1 {
		return 0
	}
	switch m {
	case Chunk, Stride:
		return 1 - 1/float64(p)
	case SkipEveryPth:
		return 1 / float64(p)
	default:
		return 0
	}
}

// Site is one approximable location in an application: a perforable loop, an
// elidable synchronization construct, or a precision-reducible datum. The
// shares describe how much of the application's execution time and memory
// traffic the site accounts for; the quality parameters describe how output
// accuracy degrades as the site is approximated.
type Site struct {
	// Name identifies the function housing the site (the unit DynamoRIO
	// replaces).
	Name      string
	Technique Technique

	// RuntimeShare and TrafficShare are the fractions of total execution
	// time and total memory traffic attributable to this site (from ACCEPT
	// hints or gprof profiling, Sec. 3).
	RuntimeShare float64
	TrafficShare float64

	// UsefulFrac is the fraction of the site's iterations that contribute
	// to output quality. Sec. 3's canneal example: iterations that reject
	// the candidate move do no useful work, so skipping them is free.
	UsefulFrac float64

	// QualityCoef scales inaccuracy (in percent) per unit of useful work
	// skipped; QualityExp curves it (exponents >1 mean early skips are
	// cheap, later ones expensive).
	QualityCoef float64
	QualityExp  float64
}

// Validate reports structural problems with a site definition.
func (s Site) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("approx: site missing name")
	case s.RuntimeShare < 0 || s.RuntimeShare > 1:
		return fmt.Errorf("approx: site %s runtime share %v outside [0,1]", s.Name, s.RuntimeShare)
	case s.TrafficShare < 0 || s.TrafficShare > 1:
		return fmt.Errorf("approx: site %s traffic share %v outside [0,1]", s.Name, s.TrafficShare)
	case s.UsefulFrac < 0 || s.UsefulFrac > 1:
		return fmt.Errorf("approx: site %s useful fraction %v outside [0,1]", s.Name, s.UsefulFrac)
	case s.QualityCoef < 0:
		return fmt.Errorf("approx: site %s negative quality coefficient", s.Name)
	case s.QualityExp <= 0:
		return fmt.Errorf("approx: site %s quality exponent must be positive", s.Name)
	}
	return nil
}

// Decision is the chosen approximation setting for one site.
type Decision struct {
	Site int // index into the application's site list

	// Perforation settings (LoopPerforation sites).
	Factor int
	Mode   PerforationMode

	// Enabled applies to SyncElision and PrecisionReduction sites.
	Enabled bool
}

// Effect is the net impact of a variant on an application.
type Effect struct {
	// TimeScale multiplies execution time (1 = precise, lower = faster).
	TimeScale float64
	// TrafficScale multiplies memory traffic and cache pressure.
	TrafficScale float64
	// Inaccuracy is the output quality loss in percent.
	Inaccuracy float64
	// NonDeterministic marks variants whose quality loss has run-to-run
	// noise (sync elision), per the paper's canneal/memcached observation.
	NonDeterministic bool
}

// Precise is the identity effect.
func Precise() Effect {
	return Effect{TimeScale: 1, TrafficScale: 1, Inaccuracy: 0}
}

// minTimeScale bounds how much perforation can shrink execution: runtime
// outside approximable sites always remains.
const minTimeScale = 0.05

// Apply computes the effect of the decision on its site. Callers must pass
// the site the decision refers to.
func (d Decision) Apply(site Site) Effect {
	eff := Precise()
	switch site.Technique {
	case LoopPerforation:
		skipped := d.Mode.SkippedFraction(d.Factor)
		if skipped == 0 {
			return eff
		}
		eff.TimeScale = 1 - site.RuntimeShare*skipped
		eff.TrafficScale = 1 - site.TrafficShare*skipped
		// Chunk mode truncates converging algorithms and is more damaging
		// per skipped iteration than spreading skips (stride): the final
		// iterations it drops are the ones refining the answer.
		modePenalty := 1.0
		if d.Mode == Chunk {
			modePenalty = 1.3
		}
		useful := skipped * site.UsefulFrac
		eff.Inaccuracy = site.QualityCoef * modePenalty * pow(useful, site.QualityExp) * 100
	case SyncElision:
		if !d.Enabled {
			return eff
		}
		eff.TimeScale = 1 - site.RuntimeShare
		eff.TrafficScale = 1 - site.TrafficShare
		eff.Inaccuracy = site.QualityCoef * pow(site.UsefulFrac, site.QualityExp) * 100
		eff.NonDeterministic = true
	case PrecisionReduction:
		if !d.Enabled {
			return eff
		}
		// Narrower types halve the site's traffic; time benefits less
		// (dominated by the saved memory stalls).
		eff.TrafficScale = 1 - site.TrafficShare*0.5
		eff.TimeScale = 1 - site.RuntimeShare*0.35
		eff.Inaccuracy = site.QualityCoef * pow(site.UsefulFrac, site.QualityExp) * 100
	}
	return eff
}

// Combine folds together the effects of independent decisions on different
// sites. Time and traffic reductions compose multiplicatively (each removes a
// share of what remains); inaccuracies add, as losses from independent sites
// compound approximately linearly at the small magnitudes allowed (≤5%).
func Combine(effects ...Effect) Effect {
	out := Precise()
	for _, e := range effects {
		out.TimeScale *= e.TimeScale
		out.TrafficScale *= e.TrafficScale
		out.Inaccuracy += e.Inaccuracy
		out.NonDeterministic = out.NonDeterministic || e.NonDeterministic
	}
	if out.TimeScale < minTimeScale {
		out.TimeScale = minTimeScale
	}
	if out.TrafficScale < 0 {
		out.TrafficScale = 0
	}
	return out
}

// pow clamps negative bases (no useful work skipped) to zero loss before
// exponentiating.
func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	if exp == 1 {
		return base
	}
	return math.Pow(base, exp)
}
