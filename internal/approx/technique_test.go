package approx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTechniqueStrings(t *testing.T) {
	if LoopPerforation.String() != "perforation" ||
		SyncElision.String() != "sync-elision" ||
		PrecisionReduction.String() != "precision" {
		t.Fatal("technique names wrong")
	}
	if Chunk.String() != "chunk" || Stride.String() != "stride" || SkipEveryPth.String() != "skip-pth" {
		t.Fatal("mode names wrong")
	}
}

func TestSkippedFraction(t *testing.T) {
	// Sec. 3: chunk executes MAX_ITER/p, stride executes every p-th (both
	// skip 1-1/p); skip-every-pth drops a 1/p fraction.
	if got := Chunk.SkippedFraction(4); got != 0.75 {
		t.Fatalf("chunk p=4: %v, want 0.75", got)
	}
	if got := Stride.SkippedFraction(4); got != 0.75 {
		t.Fatalf("stride p=4: %v, want 0.75", got)
	}
	if got := SkipEveryPth.SkippedFraction(4); got != 0.25 {
		t.Fatalf("skip-pth p=4: %v, want 0.25", got)
	}
	// Factor 1 or below means no perforation.
	for _, m := range []PerforationMode{Chunk, Stride, SkipEveryPth} {
		if got := m.SkippedFraction(1); got != 0 {
			t.Fatalf("%v p=1: %v, want 0", m, got)
		}
		if got := m.SkippedFraction(0); got != 0 {
			t.Fatalf("%v p=0: %v, want 0", m, got)
		}
	}
}

func TestSiteValidate(t *testing.T) {
	good := Site{Name: "loop", Technique: LoopPerforation, RuntimeShare: 0.5,
		TrafficShare: 0.4, UsefulFrac: 0.5, QualityCoef: 0.1, QualityExp: 1.2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Site{
		{}, // no name
		{Name: "x", RuntimeShare: 1.5, QualityExp: 1},
		{Name: "x", TrafficShare: -0.1, QualityExp: 1},
		{Name: "x", UsefulFrac: 2, QualityExp: 1},
		{Name: "x", QualityCoef: -1, QualityExp: 1},
		{Name: "x", QualityExp: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad site %d validated", i)
		}
	}
}

func TestPreciseEffect(t *testing.T) {
	p := Precise()
	if p.TimeScale != 1 || p.TrafficScale != 1 || p.Inaccuracy != 0 || p.NonDeterministic {
		t.Fatalf("Precise() = %+v", p)
	}
}

func TestPerforationEffect(t *testing.T) {
	site := Site{Name: "loop", Technique: LoopPerforation, RuntimeShare: 0.6,
		TrafficShare: 0.4, UsefulFrac: 0.5, QualityCoef: 0.2, QualityExp: 1.0}
	d := Decision{Factor: 2, Mode: Stride} // skips half
	eff := d.Apply(site)
	if math.Abs(eff.TimeScale-0.7) > 1e-12 { // 1 - 0.6*0.5
		t.Fatalf("TimeScale = %v, want 0.7", eff.TimeScale)
	}
	if math.Abs(eff.TrafficScale-0.8) > 1e-12 { // 1 - 0.4*0.5
		t.Fatalf("TrafficScale = %v, want 0.8", eff.TrafficScale)
	}
	// loss = 0.2 * (0.5*0.5)^1 * 100 = 5%.
	if math.Abs(eff.Inaccuracy-5.0) > 1e-9 {
		t.Fatalf("Inaccuracy = %v, want 5.0", eff.Inaccuracy)
	}
	if eff.NonDeterministic {
		t.Fatal("perforation must be deterministic")
	}
}

func TestChunkMoreDamagingThanStride(t *testing.T) {
	site := Site{Name: "loop", Technique: LoopPerforation, RuntimeShare: 0.5,
		TrafficShare: 0.5, UsefulFrac: 0.5, QualityCoef: 0.2, QualityExp: 1.2}
	chunk := Decision{Factor: 4, Mode: Chunk}.Apply(site)
	stride := Decision{Factor: 4, Mode: Stride}.Apply(site)
	if chunk.TimeScale != stride.TimeScale {
		t.Fatal("chunk and stride should save the same time at equal p")
	}
	if chunk.Inaccuracy <= stride.Inaccuracy {
		t.Fatalf("chunk loss %v should exceed stride loss %v", chunk.Inaccuracy, stride.Inaccuracy)
	}
}

func TestInactivePerforationIsPrecise(t *testing.T) {
	site := Site{Name: "loop", Technique: LoopPerforation, RuntimeShare: 0.5,
		UsefulFrac: 0.5, QualityCoef: 0.2, QualityExp: 1}
	if eff := (Decision{Factor: 1, Mode: Stride}).Apply(site); eff != Precise() {
		t.Fatalf("factor-1 perforation = %+v", eff)
	}
}

func TestSyncElisionEffect(t *testing.T) {
	site := Site{Name: "lock", Technique: SyncElision, RuntimeShare: 0.1,
		TrafficShare: 0.3, UsefulFrac: 0.4, QualityCoef: 0.02, QualityExp: 1}
	off := Decision{}.Apply(site)
	if off != Precise() {
		t.Fatalf("disabled elision = %+v", off)
	}
	on := Decision{Enabled: true}.Apply(site)
	if math.Abs(on.TimeScale-0.9) > 1e-12 || math.Abs(on.TrafficScale-0.7) > 1e-12 {
		t.Fatalf("elision scales = %v/%v", on.TimeScale, on.TrafficScale)
	}
	if !on.NonDeterministic {
		t.Fatal("elision must be flagged nondeterministic")
	}
	if math.Abs(on.Inaccuracy-0.8) > 1e-9 { // 0.02*0.4*100
		t.Fatalf("elision loss = %v, want 0.8", on.Inaccuracy)
	}
}

func TestPrecisionReductionEffect(t *testing.T) {
	site := Site{Name: "dbl", Technique: PrecisionReduction, RuntimeShare: 0.2,
		TrafficShare: 0.4, UsefulFrac: 0.5, QualityCoef: 0.01, QualityExp: 1}
	on := Decision{Enabled: true}.Apply(site)
	if math.Abs(on.TrafficScale-0.8) > 1e-12 { // halves the site's 0.4 share
		t.Fatalf("TrafficScale = %v, want 0.8", on.TrafficScale)
	}
	if math.Abs(on.TimeScale-0.93) > 1e-12 { // 35% of the 0.2 share
		t.Fatalf("TimeScale = %v, want 0.93", on.TimeScale)
	}
	if on.NonDeterministic {
		t.Fatal("precision reduction is deterministic")
	}
}

func TestCombine(t *testing.T) {
	a := Effect{TimeScale: 0.8, TrafficScale: 0.9, Inaccuracy: 1.0}
	b := Effect{TimeScale: 0.5, TrafficScale: 0.6, Inaccuracy: 2.0, NonDeterministic: true}
	c := Combine(a, b)
	if math.Abs(c.TimeScale-0.4) > 1e-12 {
		t.Fatalf("TimeScale = %v, want 0.4", c.TimeScale)
	}
	if math.Abs(c.TrafficScale-0.54) > 1e-12 {
		t.Fatalf("TrafficScale = %v, want 0.54", c.TrafficScale)
	}
	if c.Inaccuracy != 3.0 {
		t.Fatalf("Inaccuracy = %v, want 3.0", c.Inaccuracy)
	}
	if !c.NonDeterministic {
		t.Fatal("nondeterminism should propagate")
	}
	if Combine() != Precise() {
		t.Fatal("empty Combine should be precise")
	}
}

func TestCombineFloorsTimeScale(t *testing.T) {
	tiny := Effect{TimeScale: 0.1, TrafficScale: 0.1}
	c := Combine(tiny, tiny, tiny)
	if c.TimeScale != 0.05 {
		t.Fatalf("TimeScale = %v, want floor 0.05", c.TimeScale)
	}
	if c.TrafficScale < 0 {
		t.Fatal("TrafficScale went negative")
	}
}

// Property: deeper perforation never reduces inaccuracy and never increases
// execution time (monotone trade-off).
func TestPerforationMonotoneProperty(t *testing.T) {
	f := func(rtRaw, tfRaw, ufRaw, qcRaw uint8) bool {
		site := Site{
			Name: "s", Technique: LoopPerforation,
			RuntimeShare: float64(rtRaw) / 255,
			TrafficShare: float64(tfRaw) / 255,
			UsefulFrac:   float64(ufRaw) / 255,
			QualityCoef:  float64(qcRaw) / 255,
			QualityExp:   1.3,
		}
		prevTime, prevInacc := 2.0, -1.0
		for _, p := range []int{2, 3, 4, 6, 8, 12} {
			eff := Decision{Factor: p, Mode: Stride}.Apply(site)
			if eff.TimeScale > prevTime+1e-12 || eff.Inaccuracy < prevInacc-1e-12 {
				return false
			}
			prevTime, prevInacc = eff.TimeScale, eff.Inaccuracy
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
