// Package autoscale manages cluster node lifecycle for energy: which nodes
// are awake, which are parked, and what frequency state each runs in. It is
// the control half of the energy subsystem — internal/energy measures watts;
// this package decides where they go. Two policy families reproduce the
// levers the datacenter-efficiency literature (Flex's usage/allocation gap,
// Buyya et al.'s consolidation + power states) pairs with Pliant's thesis:
// consolidation parks whole idle nodes behind the scheduler's queue, and the
// approx-for-watts policy spends the approximation slack Pliant's runtime
// creates — tail latency comfortably under QoS because jobs degrade
// gracefully — on lower frequency states instead of leaving it idle.
//
// Controllers are pure decision functions over a boundary snapshot; the
// online scheduler (internal/sched) owns the actual state machine, applies
// transition latencies and wake energy, and keeps everything deterministic.
package autoscale

import "fmt"

// State is a node's lifecycle position.
type State int

// The lifecycle states. Transitions: Active→Draining (park requested while
// jobs resident), Draining→Parked (last resident finished), Active→Parked
// (park requested while empty), Parked→Waking (wake requested; costs the
// model's wake energy), Waking→Active (after the wake delay). Fault
// injection (internal/fault) adds any→Down (crash) and Down→Active
// (recovery); controllers never enter or leave Down themselves — a crashed
// node is dead hardware, not a parked one, so Wake verdicts ignore it.
const (
	Active State = iota
	Draining
	Parked
	Waking
	Down
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Parked:
		return "parked"
	case Waking:
		return "waking"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Placeable reports whether a scheduler may put new jobs on a node in this
// state.
func (s State) Placeable() bool { return s == Active }

// NodeView is the controller's read-only view of one node at a scheduling
// boundary.
type NodeView struct {
	Index    int
	State    State
	Service  string
	Resident int // jobs currently on the node
	Slots    int // job capacity (MaxApps)
	Freq     int // frequency-state index into the energy model's ladder

	// P99OverQoS and Reports mirror the node's live runtime telemetry
	// (cluster.Telemetry): the recency-weighted tail ratio and how many
	// intervals informed it.
	P99OverQoS float64
	Reports    int

	// Stale marks telemetry served from a last-known-good snapshot because
	// the node's live feed dropped out (fault injection); the P99OverQoS and
	// Reports above are frozen at the dropout instant, not current.
	Stale bool
}

// View is the cluster snapshot a controller decides against.
type View struct {
	NowSec  float64
	Pending int // jobs waiting in the scheduler's queue
	Nominal int // the energy model's nominal frequency-state index
	Nodes   []NodeView
}

// FreeSlots sums the open capacity of placeable nodes.
func (v View) FreeSlots() int {
	free := 0
	for _, n := range v.Nodes {
		if n.State.Placeable() {
			free += n.Slots - n.Resident
		}
	}
	return free
}

// ActionKind selects a lifecycle actuation.
type ActionKind int

// The actions a controller may request.
const (
	// Park suspends a node. An empty node parks at the next boundary; a
	// node with residents drains first.
	Park ActionKind = iota
	// Wake resumes a parked node, paying the model's wake energy and delay.
	Wake
	// SetFreq moves a node to the given frequency state.
	SetFreq
)

// Action is one lifecycle actuation against a node.
type Action struct {
	Kind ActionKind
	Node int
	Freq int // SetFreq target state
}

// Controller decides lifecycle and frequency transitions at every scheduling
// boundary. Decisions must be pure functions of the view so runs stay
// deterministic.
type Controller interface {
	Name() string
	Decide(v View) []Action
}

// Consolidate is the classic autoscaler: keep just enough nodes awake to
// cover the queue plus a reserve, park the rest, and wake nodes when demand
// returns. Frequency states are left at whatever they are (nominal unless
// another controller moved them).
type Consolidate struct {
	// ReserveSlots is the free-capacity headroom kept awake beyond the
	// pending queue (default 2): the price of not paying wake latency on
	// every small burst. The zero value means "default", so an explicit
	// zero-slot reserve — park everything the queue does not need — is
	// requested with any negative value (NoReserve).
	ReserveSlots int

	// MinActive is the floor of placeable-or-waking nodes (default 1).
	// Like ReserveSlots, the zero value means "default": an explicit zero
	// floor — the whole cluster may park — is requested with any negative
	// value (NoReserve).
	MinActive int
}

// NoReserve is the sentinel for an explicit zero in Consolidate's sized
// knobs (ReserveSlots, MinActive), whose zero values mean "default" — so
// "none at all" needs a value the zero-value ambiguity cannot eat.
const NoReserve = -1

// Reserve resolves ReserveSlots: the default (2) for the zero value, zero
// for NoReserve (any negative), the literal count otherwise.
func (c Consolidate) Reserve() int {
	switch {
	case c.ReserveSlots < 0:
		return 0
	case c.ReserveSlots == 0:
		return 2
	default:
		return c.ReserveSlots
	}
}

// ActiveFloor resolves MinActive under the same contract: default (1) for
// the zero value, zero for NoReserve (any negative).
func (c Consolidate) ActiveFloor() int {
	switch {
	case c.MinActive < 0:
		return 0
	case c.MinActive == 0:
		return 1
	default:
		return c.MinActive
	}
}

// Name identifies the policy.
func (Consolidate) Name() string { return "consolidate" }

// Decide implements Controller.
func (c Consolidate) Decide(v View) []Action {
	reserve := c.Reserve()
	minActive := c.ActiveFloor()

	free := v.FreeSlots()
	awake := 0 // nodes that are or will shortly be placeable
	for _, n := range v.Nodes {
		if n.State == Active || n.State == Waking {
			awake++
		}
	}

	var acts []Action
	need := v.Pending + reserve
	if free < need {
		// Wake parked nodes, lowest index first, until capacity covers the
		// queue plus reserve. Waking nodes' slots count once they activate,
		// so include them in the projection.
		for _, n := range v.Nodes {
			if free >= need {
				break
			}
			if n.State == Waking {
				free += n.Slots - n.Resident
			}
		}
		for _, n := range v.Nodes {
			if free >= need {
				break
			}
			if n.State == Parked {
				acts = append(acts, Action{Kind: Wake, Node: n.Index})
				free += n.Slots
			}
		}
		return acts
	}

	// Surplus: park empty active nodes while the remaining free capacity
	// still covers the queue plus reserve and the active floor holds.
	// Highest index first, so the cluster shrinks from the back and the
	// front nodes stay warm — a deterministic, stable choice.
	for i := len(v.Nodes) - 1; i >= 0; i-- {
		n := v.Nodes[i]
		if n.State != Active || n.Resident != 0 {
			continue
		}
		if awake-1 < minActive || free-n.Slots < need {
			continue
		}
		acts = append(acts, Action{Kind: Park, Node: n.Index})
		free -= n.Slots
		awake--
	}
	return acts
}

// ApproxForWatts is the Pliant-style policy: consolidation plus frequency
// scaling funded by approximation slack. When a node's live telemetry shows
// its recent tail comfortably under QoS — slack the runtime created by
// degrading job quality instead of service latency — the node steps one
// frequency state down, trading that slack for watts; when the tail nears
// the target it snaps back to nominal. Idle nodes return to nominal so fresh
// placements never start handicapped.
type ApproxForWatts struct {
	Consolidate

	// LowWater is the p99/QoS ratio below which a busy node steps its
	// frequency down one state (default 0.75).
	LowWater float64

	// HighWater is the ratio above which a node snaps back to nominal
	// (default 0.95) — recovery is immediate, spending is gradual.
	HighWater float64

	// MinReports gates frequency moves on telemetry maturity (default 3
	// intervals), so one quiet interval can't trigger a downstep.
	MinReports int
}

// Name identifies the policy.
func (ApproxForWatts) Name() string { return "approx-for-watts" }

// Decide implements Controller.
func (p ApproxForWatts) Decide(v View) []Action {
	low := p.LowWater
	if low == 0 {
		low = 0.75
	}
	high := p.HighWater
	if high == 0 {
		high = 0.95
	}
	minReports := p.MinReports
	if minReports == 0 {
		minReports = 3
	}

	acts := p.Consolidate.Decide(v)
	parked := make(map[int]bool, len(acts))
	for _, a := range acts {
		if a.Kind == Park {
			parked[a.Node] = true
		}
	}
	for _, n := range v.Nodes {
		if n.State != Active || parked[n.Index] {
			continue
		}
		switch {
		case n.Resident == 0:
			if n.Freq != v.Nominal {
				acts = append(acts, Action{Kind: SetFreq, Node: n.Index, Freq: v.Nominal})
			}
		case n.Reports >= minReports && n.P99OverQoS > high && n.Freq < v.Nominal:
			acts = append(acts, Action{Kind: SetFreq, Node: n.Index, Freq: v.Nominal})
		case n.Reports >= minReports && n.P99OverQoS < low && n.Freq > 0:
			acts = append(acts, Action{Kind: SetFreq, Node: n.Index, Freq: n.Freq - 1})
		}
	}
	return acts
}
