package autoscale

import (
	"reflect"
	"testing"
)

// view builds a snapshot of n three-slot nodes, all active/empty/nominal
// (state index 2), then applies mutations.
func view(n int, pending int, mutate ...func(*View)) View {
	v := View{Pending: pending, Nominal: 2}
	for i := 0; i < n; i++ {
		v.Nodes = append(v.Nodes, NodeView{Index: i, State: Active, Slots: 3, Freq: 2})
	}
	for _, m := range mutate {
		m(&v)
	}
	return v
}

func kinds(acts []Action) map[ActionKind][]int {
	out := map[ActionKind][]int{}
	for _, a := range acts {
		out[a.Kind] = append(out[a.Kind], a.Node)
	}
	return out
}

func TestStateStringsAndPlaceable(t *testing.T) {
	for s, want := range map[State]string{Active: "active", Draining: "draining", Parked: "parked", Waking: "waking"} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if !Active.Placeable() || Draining.Placeable() || Parked.Placeable() || Waking.Placeable() {
		t.Error("placeability wrong")
	}
}

func TestConsolidateParksSurplusFromTheBack(t *testing.T) {
	// Four empty nodes, nothing pending: keep reserve (2 slots) + floor
	// (1 node), park the rest, highest index first.
	acts := Consolidate{}.Decide(view(4, 0))
	got := kinds(acts)
	if want := []int{3, 2, 1}; !reflect.DeepEqual(got[Park], want) {
		t.Errorf("parked %v, want %v", got[Park], want)
	}
	if len(got[Wake]) != 0 {
		t.Errorf("unexpected wakes: %v", got[Wake])
	}
}

func TestConsolidateRespectsResidentsAndFloor(t *testing.T) {
	// Node 1 is busy: only empty nodes park, and the active floor holds.
	v := view(3, 0, func(v *View) { v.Nodes[1].Resident = 2 })
	got := kinds(Consolidate{}.Decide(v))
	for _, idx := range got[Park] {
		if idx == 1 {
			t.Error("parked a node with residents")
		}
	}
	// MinActive floor: with a floor of 3 nothing parks.
	got = kinds(Consolidate{MinActive: 3}.Decide(view(3, 0)))
	if len(got[Park]) != 0 {
		t.Errorf("parked %v despite MinActive floor", got[Park])
	}
}

// TestConsolidateExplicitZeroReserve is the regression test for the
// zero-value ambiguity: ReserveSlots == 0 means "default to 2", so an
// explicit zero-slot reserve needs the NoReserve sentinel.
func TestConsolidateExplicitZeroReserve(t *testing.T) {
	if got := (Consolidate{}).Reserve(); got != 2 {
		t.Errorf("zero-value reserve resolves to %d, want the default 2", got)
	}
	if got := (Consolidate{ReserveSlots: NoReserve}).Reserve(); got != 0 {
		t.Errorf("NoReserve resolves to %d, want 0", got)
	}
	if got := (Consolidate{ReserveSlots: 5}).Reserve(); got != 5 {
		t.Errorf("explicit reserve resolves to %d, want 5", got)
	}

	// One parked node, three pending jobs, three free slots: with the
	// default reserve the queue plus headroom (3+2) exceeds capacity and the
	// parked node wakes; with an explicit zero reserve capacity exactly
	// covers the queue and nothing wakes — previously impossible to request.
	v := view(2, 3, func(v *View) { v.Nodes[1].State = Parked })
	if got := kinds(Consolidate{}.Decide(v)); len(got[Wake]) != 1 {
		t.Errorf("default reserve woke %v, want one wake", got[Wake])
	}
	if got := kinds(Consolidate{ReserveSlots: NoReserve}.Decide(v)); len(got[Wake]) != 0 {
		t.Errorf("zero reserve woke %v, want none", got[Wake])
	}

	// And on the surplus side: four empty nodes, nothing pending — a zero
	// reserve parks down to the MinActive floor alone.
	got := kinds(Consolidate{ReserveSlots: NoReserve}.Decide(view(4, 0)))
	if want := []int{3, 2, 1}; !reflect.DeepEqual(got[Park], want) {
		t.Errorf("zero reserve parked %v, want %v", got[Park], want)
	}
	// MinActive follows the same contract: NoReserve drops the floor too,
	// so a fully idle cluster may park every node.
	got = kinds(Consolidate{ReserveSlots: NoReserve, MinActive: NoReserve}.Decide(view(4, 0)))
	if want := []int{3, 2, 1, 0}; !reflect.DeepEqual(got[Park], want) {
		t.Errorf("zero reserve + zero floor parked %v, want %v", got[Park], want)
	}
	if got := (Consolidate{}).ActiveFloor(); got != 1 {
		t.Errorf("zero-value floor resolves to %d, want the default 1", got)
	}
	if got := (Consolidate{MinActive: NoReserve}).ActiveFloor(); got != 0 {
		t.Errorf("NoReserve floor resolves to %d, want 0", got)
	}
	// The sentinel flows through the embedding controller too.
	got = kinds(ApproxForWatts{Consolidate: Consolidate{ReserveSlots: NoReserve}}.Decide(v))
	if len(got[Wake]) != 0 {
		t.Errorf("approx-for-watts with zero reserve woke %v, want none", got[Wake])
	}
}

func TestConsolidateWakesUnderBacklog(t *testing.T) {
	// Two parked nodes, deep queue: free capacity (3) can't cover
	// pending+reserve (6+2), so both wake, lowest index first.
	v := view(3, 6, func(v *View) {
		v.Nodes[0].State = Parked
		v.Nodes[1].State = Parked
	})
	got := kinds(Consolidate{}.Decide(v))
	if want := []int{0, 1}; !reflect.DeepEqual(got[Wake], want) {
		t.Errorf("woke %v, want %v", got[Wake], want)
	}
	if len(got[Park]) != 0 {
		t.Errorf("parked %v while backlogged", got[Park])
	}
	// A node already waking counts toward projected capacity: its three
	// slots cover pending (1) + reserve (2), so no additional wake fires.
	v = view(3, 1, func(v *View) {
		v.Nodes[0].State = Parked
		v.Nodes[1].State = Waking
		v.Nodes[2].Resident = 3 // full
	})
	got = kinds(Consolidate{}.Decide(v))
	if len(got[Wake]) != 0 {
		t.Errorf("woke %v although a waking node covers the queue", got[Wake])
	}
}

func TestApproxForWattsSpendsSlackGradually(t *testing.T) {
	p := ApproxForWatts{}
	// Busy node with mature slack steps down exactly one state.
	v := view(1, 0, func(v *View) {
		v.Nodes[0].Resident = 2
		v.Nodes[0].Reports = 5
		v.Nodes[0].P99OverQoS = 0.5
	})
	got := kinds(p.Decide(v))
	if len(got[SetFreq]) != 1 {
		t.Fatalf("freq actions: %v", got)
	}
	var act Action
	for _, a := range p.Decide(v) {
		if a.Kind == SetFreq {
			act = a
		}
	}
	if act.Freq != 1 {
		t.Errorf("stepped to state %d, want one step down to 1", act.Freq)
	}

	// Immature telemetry does not move frequency.
	v.Nodes[0].Reports = 1
	if got := kinds(p.Decide(v)); len(got[SetFreq]) != 0 {
		t.Errorf("freq moved on %d reports", v.Nodes[0].Reports)
	}

	// Near the QoS boundary the node snaps back to nominal in one action.
	v.Nodes[0].Reports = 5
	v.Nodes[0].Freq = 0
	v.Nodes[0].P99OverQoS = 1.1
	for _, a := range p.Decide(v) {
		if a.Kind == SetFreq && a.Freq != 2 {
			t.Errorf("recovery stepped to %d, want nominal 2", a.Freq)
		}
	}
}

func TestApproxForWattsResetsIdleNodesToNominal(t *testing.T) {
	p := ApproxForWatts{}
	v := view(2, 5, func(v *View) { // backlog keeps both nodes awake
		v.Nodes[0].Freq = 0 // idle at a low state from a previous tenant
	})
	sawReset := false
	for _, a := range p.Decide(v) {
		if a.Kind == SetFreq && a.Node == 0 && a.Freq == 2 {
			sawReset = true
		}
	}
	if !sawReset {
		t.Error("idle node left in a low frequency state")
	}
}

func TestApproxForWattsSkipsNodesItJustParked(t *testing.T) {
	// An idle node about to park must not also receive a freq action.
	v := view(4, 0, func(v *View) { v.Nodes[3].Freq = 0 })
	got := kinds(ApproxForWatts{}.Decide(v))
	for _, idx := range got[SetFreq] {
		for _, parked := range got[Park] {
			if idx == parked {
				t.Errorf("node %d both parked and refreqed", idx)
			}
		}
	}
}

func TestControllerDecisionsDeterministic(t *testing.T) {
	v := view(6, 2, func(v *View) {
		v.Nodes[1].Resident = 1
		v.Nodes[1].Reports = 4
		v.Nodes[1].P99OverQoS = 0.4
		v.Nodes[4].State = Parked
	})
	p := ApproxForWatts{}
	a := p.Decide(v)
	for i := 0; i < 10; i++ {
		if b := p.Decide(v); !reflect.DeepEqual(a, b) {
			t.Fatalf("decision %d differs: %v vs %v", i, a, b)
		}
	}
}
