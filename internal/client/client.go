// Package client implements the open-loop workload generators that drive the
// interactive services, mirroring the paper's client machines: arrivals are
// generated independently of completions (so an overloaded server accumulates
// queueing rather than throttling the offered load), and end-to-end latency
// is observed on the client side where the paper's performance monitor lives.
package client

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// Generator drives one service instance with an arrival process.
type Generator struct {
	eng     *sim.Engine
	rng     *sim.RNG
	svc     *service.Instance
	arrival workload.ArrivalProcess

	running bool
	stopped bool
	sent    uint64
}

// New creates a generator. Call Start to begin offering load.
func New(eng *sim.Engine, rng *sim.RNG, svc *service.Instance, arrival workload.ArrivalProcess) (*Generator, error) {
	if eng == nil || rng == nil || svc == nil || arrival == nil {
		return nil, fmt.Errorf("client: nil dependency")
	}
	if arrival.Rate() <= 0 {
		return nil, fmt.Errorf("client: arrival rate must be positive")
	}
	return &Generator{eng: eng, rng: rng, svc: svc, arrival: arrival}, nil
}

// Start begins generating arrivals at the current simulation time.
func (g *Generator) Start() {
	if g.running {
		return
	}
	g.running = true
	g.stopped = false
	g.scheduleNext()
}

// Stop halts generation after any already-scheduled arrival.
func (g *Generator) Stop() {
	g.stopped = true
	g.running = false
}

// Sent reports how many requests have been offered so far.
func (g *Generator) Sent() uint64 { return g.sent }

// Rate returns the offered load in requests/second.
func (g *Generator) Rate() float64 { return g.arrival.Rate() }

// nextGap draws the next inter-arrival gap, letting time-varying processes
// (workload.TimedArrival) see the current virtual time.
func (g *Generator) nextGap() sim.Duration {
	if ta, ok := g.arrival.(workload.TimedArrival); ok {
		return ta.NextAt(g.rng, g.eng.Now())
	}
	return g.arrival.Next(g.rng)
}

// scheduleNext arms the next arrival through the typed-event path: the
// generator itself is the handler, so the open-loop tick allocates nothing.
// Arrival timestamps never decrease (each is scheduled from the previous
// arrival), so they take the engine's sift-free monotone lane.
func (g *Generator) scheduleNext() {
	g.eng.AfterMonotoneTyped(g.nextGap(), g, 0)
}

// OnEvent implements sim.EventHandler: one arrival tick.
func (g *Generator) OnEvent(sim.Time, uint64) {
	if g.stopped {
		return
	}
	g.sent++
	g.svc.Arrive()
	g.scheduleNext()
}

// SetRate replaces the arrival process with a Poisson process at the given
// QPS, effective from the next arrival. Used by load sweeps.
func (g *Generator) SetRate(qps float64) error {
	p, err := workload.NewPoisson(qps)
	if err != nil {
		return err
	}
	g.arrival = p
	return nil
}
