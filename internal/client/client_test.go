package client

import (
	"math"
	"testing"

	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

func testService(eng *sim.Engine, onLat func(sim.Duration)) *service.Instance {
	cfg := service.Config{
		Name:            "t",
		QoS:             sim.Millisecond,
		Demand:          workload.Constant(10e-6),
		WorkersPerCore:  1,
		ContentionShare: 1,
		MaxBacklog:      sim.Second,
	}
	svc, err := service.New(eng, sim.NewRNG(2), cfg, 4, onLat)
	if err != nil {
		panic(err)
	}
	return svc
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	svc := testService(eng, nil)
	if _, err := New(nil, rng, svc, workload.Uniform{QPS: 10}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(eng, nil, svc, workload.Uniform{QPS: 10}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := New(eng, rng, nil, workload.Uniform{QPS: 10}); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := New(eng, rng, svc, nil); err == nil {
		t.Fatal("nil arrival accepted")
	}
	if _, err := New(eng, rng, svc, workload.Uniform{QPS: 0}); err == nil {
		t.Fatal("zero-rate arrival accepted")
	}
}

func TestGeneratorOffersConfiguredLoad(t *testing.T) {
	eng := sim.NewEngine()
	served := 0
	svc := testService(eng, func(sim.Duration) { served++ })
	gen, err := New(eng, sim.NewRNG(3), svc, workload.Uniform{QPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	eng.Run(sim.Time(2 * sim.Second))
	// Uniform 1000 QPS for 2 seconds: 2000 arrivals (±1 boundary effect).
	if math.Abs(float64(gen.Sent())-2000) > 2 {
		t.Fatalf("sent = %d, want ~2000", gen.Sent())
	}
	if served < 1990 {
		t.Fatalf("served = %d, want ~2000", served)
	}
	if gen.Rate() != 1000 {
		t.Fatalf("Rate = %v", gen.Rate())
	}
}

func TestPoissonLoadApproximatesRate(t *testing.T) {
	eng := sim.NewEngine()
	svc := testService(eng, nil)
	arr, _ := workload.NewPoisson(5000)
	gen, _ := New(eng, sim.NewRNG(4), svc, arr)
	gen.Start()
	eng.Run(sim.Time(4 * sim.Second))
	want := 20000.0
	got := float64(gen.Sent())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("sent = %v, want ~%v", got, want)
	}
}

func TestStopHaltsArrivals(t *testing.T) {
	eng := sim.NewEngine()
	svc := testService(eng, nil)
	gen, _ := New(eng, sim.NewRNG(5), svc, workload.Uniform{QPS: 1000})
	gen.Start()
	eng.Schedule(sim.Time(sim.Second), func() { gen.Stop() })
	eng.Run(sim.Time(5 * sim.Second))
	if math.Abs(float64(gen.Sent())-1000) > 2 {
		t.Fatalf("sent = %d after stop at 1s, want ~1000", gen.Sent())
	}
}

func TestStartIsIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	svc := testService(eng, nil)
	gen, _ := New(eng, sim.NewRNG(6), svc, workload.Uniform{QPS: 100})
	gen.Start()
	gen.Start() // must not double the offered load
	eng.Run(sim.Time(sim.Second))
	if math.Abs(float64(gen.Sent())-100) > 2 {
		t.Fatalf("sent = %d, want ~100 (double-start doubled load?)", gen.Sent())
	}
}

func TestSetRate(t *testing.T) {
	eng := sim.NewEngine()
	svc := testService(eng, nil)
	gen, _ := New(eng, sim.NewRNG(7), svc, workload.Uniform{QPS: 100})
	gen.Start()
	eng.Schedule(sim.Time(sim.Second), func() {
		if err := gen.SetRate(10000); err != nil {
			t.Errorf("SetRate: %v", err)
		}
	})
	eng.Run(sim.Time(2 * sim.Second))
	// ~100 in first second, ~10000 in the second.
	got := float64(gen.Sent())
	if got < 8000 || got > 12000 {
		t.Fatalf("sent = %v, want ~10100", got)
	}
	if err := gen.SetRate(-1); err == nil {
		t.Fatal("SetRate(-1) accepted")
	}
}
