// Package cluster implements the scheduler integration the paper closes its
// evaluation with (Sec. 6.4): "This information can be incorporated in the
// cluster scheduler when deciding which applications to place on the same
// physical node." A cluster is a set of nodes, each hosting one interactive
// service; incoming approximate jobs are placed by a pluggable policy, and
// every node then runs its colocation under the Pliant runtime. Comparing a
// naive placement against one that uses the per-application pressure and
// per-service tolerance knowledge from the paper's Fig. 10 breakdown
// quantifies how much the runtime's telemetry is worth to the scheduler.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
	"github.com/approx-sched/pliant/internal/workload"
)

// Node is one server in the cluster, identified by the interactive service
// it hosts.
type Node struct {
	Name    string
	Service service.Class

	// MaxApps bounds how many approximate jobs the node accepts (the paper
	// evaluates up to 3 colocated approximate applications per host).
	MaxApps int
}

// Placement maps each job (by index) to a node (by index).
type Placement []int

// Policy decides where each incoming approximate job runs.
type Policy interface {
	Name() string
	// Place assigns every job to a node, respecting node capacities. Jobs
	// arrive in order; policies see the full batch, as cluster schedulers
	// see their queues.
	Place(nodes []Node, jobs []app.Profile) (Placement, error)
}

// Config describes one cluster scheduling study.
type Config struct {
	Seed      uint64
	Nodes     []Node
	Jobs      []string // catalog application names
	Policy    Policy
	TimeScale float64
	// LoadFraction is the offered load on every node's service.
	LoadFraction float64

	// EnergyModel attaches per-node power accounting, for parity with the
	// online scheduler (sched.Config.Energy): every busy node's episode
	// meters its joules and the Result carries the cluster total. Empty
	// nodes run no episode and so have no metered span — they report zero.
	// Nil keeps energy accounting off and results identical to prior
	// versions.
	EnergyModel *energy.Model
}

// NodeSeed derives the deterministic per-node seed the batch study and the
// online scheduler both use, so a node's random stream never depends on what
// runs on other nodes.
func NodeSeed(seed uint64, node int) uint64 {
	return seed ^ uint64(node+1)*0x9e3779b97f4a7c15
}

// NodeRun describes one node-colocation episode — the shared unit of
// execution between the batch study (Run) and the online scheduler
// (internal/sched): a set of approximate jobs on one node's service, run
// under the Pliant runtime for at most MaxDuration of virtual time.
type NodeRun struct {
	Seed         uint64
	Node         Node
	AppNames     []string
	AppWorkScale []float64 // remaining-work fraction per app (nil = full work)
	LoadFraction float64
	LoadShape    workload.Shape
	TimeScale    float64
	MaxDuration  sim.Duration
	OnReport     func(monitor.Report) // mid-run telemetry feed

	// EnergyModel attaches node power accounting to the episode: reports
	// carry watts/joules and the result totals energy. FreqGHz runs the node
	// in a lower frequency state (0 = nominal); see colocate.Config.
	EnergyModel *energy.Model
	FreqGHz     float64

	// Scratch is optional reusable episode state owned by the calling
	// worker; see colocate.Scratch.
	Scratch *colocate.Scratch
}

// RunNode executes one node episode.
func RunNode(r NodeRun) (colocate.Result, error) {
	return colocate.Run(colocate.Config{
		Seed:         r.Seed,
		Service:      r.Node.Service,
		AppNames:     r.AppNames,
		AppWorkScale: r.AppWorkScale,
		Runtime:      colocate.Pliant,
		LoadFraction: r.LoadFraction,
		LoadShape:    r.LoadShape,
		TimeScale:    r.TimeScale,
		MaxDuration:  r.MaxDuration,
		OnReport:     r.OnReport,
		EnergyModel:  r.EnergyModel,
		FreqGHz:      r.FreqGHz,
		Scratch:      r.Scratch,
	})
}

// Telemetry is the per-node runtime feedback a scheduler consumes: the
// paper's Sec. 6.4 "information [that] can be incorporated in the cluster
// scheduler", accumulated live from the monitor's decision-interval reports.
type Telemetry struct {
	// P99OverQoS is a recency-weighted mean of per-interval p99/QoS ratios;
	// 0 until the first report.
	P99OverQoS float64
	// ViolationFrac is the fraction of observed intervals in QoS violation.
	ViolationFrac float64
	// Reports counts observed intervals.
	Reports int

	// Watts is a recency-weighted mean of the node's power draw; 0 until the
	// first energy-bearing report (reports carry energy only when the episode
	// ran with an energy model attached).
	Watts float64
	// Joules accumulates the node's energy over observed intervals.
	Joules float64
	// PerfPerWatt is a recency-weighted mean of service throughput per watt
	// (requests/s/W ≡ requests/J). Like ViolationFrac it is policy-facing
	// surface: the built-in policies don't read it, but custom energy-aware
	// policies see it through NodeState.Telemetry.
	PerfPerWatt float64

	violations int
}

// QoSMet reports whether the recent tail has been within QoS. A node with no
// telemetry yet (idle, or first episode pending) trivially meets QoS.
func (t Telemetry) QoSMet() bool { return t.P99OverQoS <= 1 }

// telemetryAlpha is the recency weight of the p99 EWMA: high enough to track
// load swings within a scheduling window, low enough to smooth single-interval
// spikes.
const telemetryAlpha = 0.3

// Observe folds one monitor report into the telemetry. Pass it (or a wrapper)
// as the colocation's OnReport hook.
//
//pliant:hotpath
func (t *Telemetry) Observe(r monitor.Report) {
	ratio := float64(r.P99) / float64(r.QoS)
	if t.Reports == 0 {
		t.P99OverQoS = ratio
	} else {
		t.P99OverQoS = telemetryAlpha*ratio + (1-telemetryAlpha)*t.P99OverQoS
	}
	t.Reports++
	if r.Violation {
		t.violations++
	}
	t.ViolationFrac = float64(t.violations) / float64(t.Reports)

	// Energy telemetry rides the same reports when the episode carries a
	// power model; the first energy-bearing report seeds the EWMAs.
	if r.Watts > 0 {
		perf := 0.0
		if sec := r.Interval.Seconds(); sec > 0 {
			perf = float64(r.Seen) / sec / r.Watts
		}
		if t.Watts == 0 {
			t.Watts = r.Watts
			t.PerfPerWatt = perf
		} else {
			t.Watts = telemetryAlpha*r.Watts + (1-telemetryAlpha)*t.Watts
			t.PerfPerWatt = telemetryAlpha*perf + (1-telemetryAlpha)*t.PerfPerWatt
		}
		t.Joules += r.Joules
	}
}

// WindowStats aggregates the QoS outcome of one scheduling window over a set
// of busy nodes — the telemetry roll-up the online scheduler traces at every
// window boundary. It is shard-aware by construction: every field is
// order-insensitive (two counters and a running max), so per-shard stats
// folded node-locally and merged in a fixed shard order are byte-identical
// to a single engine folding all nodes in node order.
type WindowStats struct {
	// Busy and Met count busy nodes and those whose telemetry met QoS.
	Busy, Met int
	// WorstP99 is the worst node's recency-weighted p99/QoS this window.
	WorstP99 float64
}

// Fold accumulates one busy node's window telemetry.
func (w *WindowStats) Fold(t Telemetry) {
	w.Busy++
	if t.QoSMet() {
		w.Met++
	}
	if t.P99OverQoS > w.WorstP99 {
		w.WorstP99 = t.P99OverQoS
	}
}

// Merge folds another shard's stats into w. Call it over shards in a fixed
// order at the window barrier.
func (w *WindowStats) Merge(o WindowStats) {
	w.Busy += o.Busy
	w.Met += o.Met
	if o.WorstP99 > w.WorstP99 {
		w.WorstP99 = o.WorstP99
	}
}

// NodeResult is the outcome of one node's colocation run.
type NodeResult struct {
	Node       string
	Service    string
	Apps       []string
	TypicalP99 float64 // relative to QoS
	ViolFrac   float64
	Inaccuracy []float64

	// Joules and MeanWatts meter the node's episode when Config.EnergyModel
	// is set (zero otherwise, and for empty nodes, which run no episode).
	Joules    float64
	MeanWatts float64
}

// Result aggregates a cluster run.
type Result struct {
	Policy string
	Nodes  []NodeResult

	// QoSMetFraction is the fraction of nodes whose steady-state p99 met
	// QoS.
	QoSMetFraction float64
	// MeanInaccuracy averages quality loss across all placed jobs.
	MeanInaccuracy float64
	// WorstP99 is the worst node's steady-state p99/QoS.
	WorstP99 float64

	// Joules totals the busy nodes' metered energy (zero without
	// Config.EnergyModel), summed in node order for byte determinism.
	Joules float64
}

// Run places the jobs and executes every node's colocation concurrently.
func Run(cfg Config) (Result, error) {
	if len(cfg.Nodes) == 0 {
		return Result{}, fmt.Errorf("cluster: no nodes")
	}
	if cfg.Policy == nil {
		return Result{}, fmt.Errorf("cluster: no placement policy")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.LoadFraction == 0 {
		cfg.LoadFraction = 0.78
	}
	if cfg.EnergyModel != nil {
		if err := cfg.EnergyModel.Validate(); err != nil {
			return Result{}, err
		}
	}
	jobs := make([]app.Profile, len(cfg.Jobs))
	for i, name := range cfg.Jobs {
		p, err := app.ByName(name)
		if err != nil {
			return Result{}, err
		}
		jobs[i] = p
	}
	placement, err := cfg.Policy.Place(cfg.Nodes, jobs)
	if err != nil {
		return Result{}, err
	}
	if err := validatePlacement(cfg.Nodes, jobs, placement); err != nil {
		return Result{}, err
	}

	perNode := make([][]string, len(cfg.Nodes))
	for j, n := range placement {
		perNode[n] = append(perNode[n], jobs[j].Name)
	}

	out := Result{Policy: cfg.Policy.Name(), Nodes: make([]NodeResult, len(cfg.Nodes))}
	var wg sync.WaitGroup
	errs := make([]error, len(cfg.Nodes))
	for i, node := range cfg.Nodes {
		i, node := i, node
		wg.Add(1)
		//pliant:allow spawn — deterministic fan-out: per-node seeds derive from (cfg.Seed, i) and results land in disjoint slots by node index
		go func() {
			defer wg.Done()
			nr := NodeResult{Node: node.Name, Service: node.Service.String(), Apps: perNode[i]}
			if len(perNode[i]) == 0 {
				// An empty node trivially meets QoS; nothing to run.
				nr.TypicalP99 = 0
				out.Nodes[i] = nr
				return
			}
			res, err := RunNode(NodeRun{
				Seed:         NodeSeed(cfg.Seed, i),
				Node:         node,
				AppNames:     perNode[i],
				LoadFraction: cfg.LoadFraction,
				TimeScale:    cfg.TimeScale,
				EnergyModel:  cfg.EnergyModel,
			})
			if err != nil {
				errs[i] = err
				return
			}
			nr.TypicalP99 = res.TypicalOverQoS()
			nr.ViolFrac = res.ViolationFrac
			nr.Joules = res.Joules
			nr.MeanWatts = res.MeanWatts
			for _, a := range res.Apps {
				nr.Inaccuracy = append(nr.Inaccuracy, a.Inaccuracy)
			}
			out.Nodes[i] = nr
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	met := 0
	var inaccs []float64
	for _, nr := range out.Nodes {
		if nr.TypicalP99 <= 1 {
			met++
		}
		if nr.TypicalP99 > out.WorstP99 {
			out.WorstP99 = nr.TypicalP99
		}
		out.Joules += nr.Joules
		inaccs = append(inaccs, nr.Inaccuracy...)
	}
	out.QoSMetFraction = float64(met) / float64(len(out.Nodes))
	out.MeanInaccuracy = stats.Mean(inaccs)
	return out, nil
}

func validatePlacement(nodes []Node, jobs []app.Profile, p Placement) error {
	if len(p) != len(jobs) {
		return fmt.Errorf("cluster: placement covers %d of %d jobs", len(p), len(jobs))
	}
	counts := make([]int, len(nodes))
	for j, n := range p {
		if n < 0 || n >= len(nodes) {
			return fmt.Errorf("cluster: job %d placed on unknown node %d", j, n)
		}
		counts[n]++
	}
	for i, c := range counts {
		if max := nodes[i].MaxApps; max > 0 && c > max {
			return fmt.Errorf("cluster: node %s over capacity (%d > %d)", nodes[i].Name, c, max)
		}
	}
	return nil
}

// RoundRobin places jobs across nodes in arrival order, skipping full nodes —
// the service-blind baseline.
type RoundRobin struct{}

// Name identifies the policy.
func (RoundRobin) Name() string { return "round-robin" }

// Place implements Policy.
func (RoundRobin) Place(nodes []Node, jobs []app.Profile) (Placement, error) {
	p := make(Placement, len(jobs))
	counts := make([]int, len(nodes))
	next := 0
	for j := range jobs {
		placed := false
		for k := 0; k < len(nodes); k++ {
			idx := (next + k) % len(nodes)
			if nodes[idx].MaxApps == 0 || counts[idx] < nodes[idx].MaxApps {
				p[j] = idx
				counts[idx]++
				next = idx + 1
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("cluster: no capacity for job %d", j)
		}
	}
	return p, nil
}

// InterferenceAware places jobs using the knowledge Pliant's runtime gives
// the scheduler: each application's shared-resource pressure (cache
// footprint plus bandwidth appetite, net of what its most approximate
// variant can shed) and each service's measured tolerance. Jobs are placed
// heaviest-first onto the node with the most remaining tolerance — a greedy
// bin-packing of interference rather than of slots.
type InterferenceAware struct {
	// Tolerance maps a service class to how much residual co-runner
	// pressure it absorbs before needing core reclamation; derived from the
	// Fig. 10 breakdown (MongoDB most tolerant, memcached least). Missing
	// entries use DefaultTolerances.
	Tolerance map[service.Class]float64
}

// DefaultTolerances reflects the paper's Fig. 10 ordering: the budget is in
// the same units as pressureOf (MB-equivalents of shed-adjusted footprint).
func DefaultTolerances() map[service.Class]float64 {
	return map[service.Class]float64{
		service.MongoDB:   95,
		service.NGINX:     80,
		service.Memcached: 65,
	}
}

// Name identifies the policy.
func (InterferenceAware) Name() string { return "interference-aware" }

// PressureOf scores a job's residual pressure: the footprint its most
// approximate variant retains, plus bandwidth weight. Both the batch
// interference-aware policy and the online telemetry-aware scheduler rank
// jobs by it.
func PressureOf(p app.Profile) float64 {
	// Best-case traffic scale from the sites (product of full-depth
	// reductions), mirroring approx.Combine on maximal decisions without
	// running the full DSE.
	traffic := 1.0
	for _, s := range p.Sites {
		traffic *= 1 - s.TrafficShare*0.9
	}
	if traffic < 0.1 {
		traffic = 0.1
	}
	return p.LLCMB*traffic + 4*p.BWPerCoreGBs
}

// Place implements Policy.
func (ia InterferenceAware) Place(nodes []Node, jobs []app.Profile) (Placement, error) {
	tol := ia.Tolerance
	if tol == nil {
		tol = DefaultTolerances()
	}
	remaining := make([]float64, len(nodes))
	counts := make([]int, len(nodes))
	for i, n := range nodes {
		remaining[i] = tol[n.Service]
	}
	// Heaviest jobs first: they need the most tolerant nodes.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return PressureOf(jobs[order[a]]) > PressureOf(jobs[order[b]])
	})

	p := make(Placement, len(jobs))
	for _, j := range order {
		best, bestRem := -1, 0.0
		for i, n := range nodes {
			if n.MaxApps > 0 && counts[i] >= n.MaxApps {
				continue
			}
			if best == -1 || remaining[i] > bestRem {
				best, bestRem = i, remaining[i]
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("cluster: no capacity for job %d", j)
		}
		p[j] = best
		counts[best]++
		remaining[best] -= PressureOf(jobs[j])
	}
	return p, nil
}

// Compare runs the same job batch under several policies and returns results
// in policy order — the Sec. 6.4 study in one call.
func Compare(cfg Config, policies ...Policy) ([]Result, error) {
	out := make([]Result, 0, len(policies))
	for _, pol := range policies {
		c := cfg
		c.Policy = pol
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("cluster: policy %s: %w", pol.Name(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Render prints a comparison table.
func Render(results []Result) string {
	s := "cluster placement comparison\n"
	s += fmt.Sprintf("  %-20s %10s %10s %12s\n", "policy", "QoS met", "worst p99", "mean inacc")
	for _, r := range results {
		s += fmt.Sprintf("  %-20s %9.0f%% %9.2fx %11.2f%%\n",
			r.Policy, r.QoSMetFraction*100, r.WorstP99, r.MeanInaccuracy)
	}
	return s
}

// Seeded helper: deterministic shuffled job batches for studies.
func ShuffledJobs(seed uint64, n int) []string {
	names := app.Names()
	rng := sim.NewRNG(seed)
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	if n > len(names) {
		n = len(names)
	}
	return names[:n]
}
