package cluster

import (
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
)

func testNodes() []Node {
	return []Node{
		{Name: "n0", Service: service.NGINX, MaxApps: 3},
		{Name: "n1", Service: service.Memcached, MaxApps: 3},
		{Name: "n2", Service: service.MongoDB, MaxApps: 3},
	}
}

func jobProfiles(t *testing.T, names ...string) []app.Profile {
	t.Helper()
	out := make([]app.Profile, len(names))
	for i, n := range names {
		p, err := app.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestRoundRobinPlacement(t *testing.T) {
	jobs := jobProfiles(t, "canneal", "SNP", "raytrace", "Bayesian")
	p, err := RoundRobin{}.Place(testNodes(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := Placement{0, 1, 2, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("placement %v, want %v", p, want)
		}
	}
}

func TestRoundRobinRespectsCapacity(t *testing.T) {
	nodes := []Node{
		{Name: "tiny", Service: service.MongoDB, MaxApps: 1},
		{Name: "big", Service: service.MongoDB, MaxApps: 3},
	}
	jobs := jobProfiles(t, "canneal", "SNP", "raytrace")
	p, err := RoundRobin{}.Place(nodes, jobs)
	if err != nil {
		t.Fatal(err)
	}
	count0 := 0
	for _, n := range p {
		if n == 0 {
			count0++
		}
	}
	if count0 > 1 {
		t.Fatalf("tiny node got %d jobs", count0)
	}
	// Overfull batch errors.
	many := jobProfiles(t, "canneal", "SNP", "raytrace", "Bayesian", "PLSA")
	if _, err := (RoundRobin{}).Place(nodes, many); err == nil {
		t.Fatal("over-capacity batch accepted")
	}
}

func TestInterferenceAwareSendsHeavyToTolerant(t *testing.T) {
	// PLSA is the heaviest pressure source; MongoDB the most tolerant
	// service. The interference-aware policy must pair them.
	jobs := jobProfiles(t, "PLSA", "raytrace", "Blast")
	nodes := testNodes()
	p, err := InterferenceAware{}.Place(nodes, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[p[0]].Service != service.MongoDB {
		t.Fatalf("PLSA placed on %v, want mongodb", nodes[p[0]].Service)
	}
}

func TestInterferenceAwareCapacity(t *testing.T) {
	nodes := []Node{{Name: "only", Service: service.NGINX, MaxApps: 1}}
	jobs := jobProfiles(t, "canneal", "SNP")
	if _, err := (InterferenceAware{}).Place(nodes, jobs); err == nil {
		t.Fatal("over-capacity accepted")
	}
}

func TestPressureOrdering(t *testing.T) {
	plsa, _ := app.ByName("PLSA")
	ray, _ := app.ByName("raytrace")
	if PressureOf(plsa) <= PressureOf(ray) {
		t.Fatalf("PLSA pressure %.1f not above raytrace %.1f", PressureOf(plsa), PressureOf(ray))
	}
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Nodes: testNodes()}); err == nil {
		t.Fatal("missing policy accepted")
	}
	cfg := Config{
		Nodes:  testNodes(),
		Jobs:   []string{"no-such-app"},
		Policy: RoundRobin{},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestClusterRunEndToEnd(t *testing.T) {
	cfg := Config{
		Seed:      3,
		Nodes:     testNodes(),
		Jobs:      []string{"canneal", "SNP", "raytrace"},
		Policy:    InterferenceAware{},
		TimeScale: 16,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "interference-aware" {
		t.Fatalf("policy %q", res.Policy)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("nodes %d", len(res.Nodes))
	}
	if res.QoSMetFraction < 2.0/3.0 {
		t.Fatalf("QoS met on only %.0f%% of nodes", res.QoSMetFraction*100)
	}
	if res.MeanInaccuracy <= 0 || res.MeanInaccuracy > 6 {
		t.Fatalf("mean inaccuracy %.2f%%", res.MeanInaccuracy)
	}
}

func TestCompareRendersBothPolicies(t *testing.T) {
	cfg := Config{
		Seed:      7,
		Nodes:     testNodes(),
		Jobs:      []string{"PLSA", "canneal", "raytrace"},
		TimeScale: 16,
	}
	results, err := Compare(cfg, RoundRobin{}, InterferenceAware{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	out := Render(results)
	if !strings.Contains(out, "round-robin") || !strings.Contains(out, "interference-aware") {
		t.Fatalf("render missing policies:\n%s", out)
	}
	// The informed policy should not do worse on the worst node.
	if results[1].WorstP99 > results[0].WorstP99*1.25 {
		t.Fatalf("interference-aware worst p99 %.2f much worse than round-robin %.2f",
			results[1].WorstP99, results[0].WorstP99)
	}
}

// TestRenderTableShape pins Render's output contract on synthetic results:
// one header block, one row per result, rows in input (policy) order, with
// the three aggregate columns formatted.
func TestRenderTableShape(t *testing.T) {
	results := []Result{
		{Policy: "round-robin", QoSMetFraction: 2.0 / 3.0, WorstP99: 1.42, MeanInaccuracy: 2.5},
		{Policy: "interference-aware", QoSMetFraction: 1, WorstP99: 0.97, MeanInaccuracy: 3.1},
	}
	out := Render(results)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+len(results) {
		t.Fatalf("render has %d lines, want title + header + %d rows:\n%s", len(lines), len(results), out)
	}
	for _, col := range []string{"policy", "QoS met", "worst p99", "mean inacc"} {
		if !strings.Contains(lines[1], col) {
			t.Fatalf("header missing %q: %s", col, lines[1])
		}
	}
	// Row order follows input order.
	if !strings.Contains(lines[2], "round-robin") || !strings.Contains(lines[3], "interference-aware") {
		t.Fatalf("rows out of order:\n%s", out)
	}
	// Formatted aggregates.
	if !strings.Contains(lines[2], "67%") || !strings.Contains(lines[2], "1.42x") || !strings.Contains(lines[2], "2.50%") {
		t.Fatalf("round-robin row mis-formatted: %s", lines[2])
	}
	if !strings.Contains(lines[3], "100%") || !strings.Contains(lines[3], "0.97x") {
		t.Fatalf("interference-aware row mis-formatted: %s", lines[3])
	}
}

// TestCompareOrderAndIsolation checks Compare returns results in policy
// order and that each result carries its own policy's name.
func TestCompareOrderAndIsolation(t *testing.T) {
	cfg := Config{
		Seed:      5,
		Nodes:     testNodes(),
		Jobs:      []string{"canneal", "raytrace"},
		TimeScale: 16,
	}
	results, err := Compare(cfg, InterferenceAware{}, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"interference-aware", "round-robin"}
	for i, w := range want {
		if results[i].Policy != w {
			t.Fatalf("result %d is %q, want %q (policy order must be preserved)", i, results[i].Policy, w)
		}
	}
}

func TestNodeSeedIndependentPerNode(t *testing.T) {
	if NodeSeed(1, 0) == NodeSeed(1, 1) {
		t.Fatal("node seeds collide")
	}
	if NodeSeed(1, 0) != NodeSeed(1, 0) {
		t.Fatal("node seed not deterministic")
	}
}

func TestTelemetryObserve(t *testing.T) {
	var tel Telemetry
	if !tel.QoSMet() {
		t.Fatal("fresh telemetry must trivially meet QoS")
	}
	qos := sim.Duration(10 * sim.Millisecond)
	tel.Observe(monitor.Report{P99: qos / 2, QoS: qos})
	if tel.P99OverQoS != 0.5 || tel.Reports != 1 || tel.ViolationFrac != 0 {
		t.Fatalf("after first report: %+v", tel)
	}
	tel.Observe(monitor.Report{P99: 2 * qos, QoS: qos, Violation: true})
	// EWMA: 0.3·2 + 0.7·0.5 = 0.95.
	if tel.P99OverQoS < 0.94 || tel.P99OverQoS > 0.96 {
		t.Fatalf("ewma %v, want ≈0.95", tel.P99OverQoS)
	}
	if tel.ViolationFrac != 0.5 {
		t.Fatalf("violation frac %v", tel.ViolationFrac)
	}
	tel.Observe(monitor.Report{P99: 3 * qos, QoS: qos, Violation: true})
	if tel.QoSMet() {
		t.Fatalf("telemetry at %v×QoS still reports QoS met", tel.P99OverQoS)
	}
}

func TestShuffledJobsDeterministic(t *testing.T) {
	a := ShuffledJobs(1, 5)
	b := ShuffledJobs(1, 5)
	if len(a) != 5 {
		t.Fatalf("len %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := ShuffledJobs(2, 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffles")
	}
	if len(ShuffledJobs(1, 100)) != 24 {
		t.Fatal("overlong request not clamped to catalog size")
	}
}
