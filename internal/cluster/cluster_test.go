package cluster

import (
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/service"
)

func testNodes() []Node {
	return []Node{
		{Name: "n0", Service: service.NGINX, MaxApps: 3},
		{Name: "n1", Service: service.Memcached, MaxApps: 3},
		{Name: "n2", Service: service.MongoDB, MaxApps: 3},
	}
}

func jobProfiles(t *testing.T, names ...string) []app.Profile {
	t.Helper()
	out := make([]app.Profile, len(names))
	for i, n := range names {
		p, err := app.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestRoundRobinPlacement(t *testing.T) {
	jobs := jobProfiles(t, "canneal", "SNP", "raytrace", "Bayesian")
	p, err := RoundRobin{}.Place(testNodes(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := Placement{0, 1, 2, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("placement %v, want %v", p, want)
		}
	}
}

func TestRoundRobinRespectsCapacity(t *testing.T) {
	nodes := []Node{
		{Name: "tiny", Service: service.MongoDB, MaxApps: 1},
		{Name: "big", Service: service.MongoDB, MaxApps: 3},
	}
	jobs := jobProfiles(t, "canneal", "SNP", "raytrace")
	p, err := RoundRobin{}.Place(nodes, jobs)
	if err != nil {
		t.Fatal(err)
	}
	count0 := 0
	for _, n := range p {
		if n == 0 {
			count0++
		}
	}
	if count0 > 1 {
		t.Fatalf("tiny node got %d jobs", count0)
	}
	// Overfull batch errors.
	many := jobProfiles(t, "canneal", "SNP", "raytrace", "Bayesian", "PLSA")
	if _, err := (RoundRobin{}).Place(nodes, many); err == nil {
		t.Fatal("over-capacity batch accepted")
	}
}

func TestInterferenceAwareSendsHeavyToTolerant(t *testing.T) {
	// PLSA is the heaviest pressure source; MongoDB the most tolerant
	// service. The interference-aware policy must pair them.
	jobs := jobProfiles(t, "PLSA", "raytrace", "Blast")
	nodes := testNodes()
	p, err := InterferenceAware{}.Place(nodes, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[p[0]].Service != service.MongoDB {
		t.Fatalf("PLSA placed on %v, want mongodb", nodes[p[0]].Service)
	}
}

func TestInterferenceAwareCapacity(t *testing.T) {
	nodes := []Node{{Name: "only", Service: service.NGINX, MaxApps: 1}}
	jobs := jobProfiles(t, "canneal", "SNP")
	if _, err := (InterferenceAware{}).Place(nodes, jobs); err == nil {
		t.Fatal("over-capacity accepted")
	}
}

func TestPressureOrdering(t *testing.T) {
	plsa, _ := app.ByName("PLSA")
	ray, _ := app.ByName("raytrace")
	if pressureOf(plsa) <= pressureOf(ray) {
		t.Fatalf("PLSA pressure %.1f not above raytrace %.1f", pressureOf(plsa), pressureOf(ray))
	}
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Nodes: testNodes()}); err == nil {
		t.Fatal("missing policy accepted")
	}
	cfg := Config{
		Nodes:  testNodes(),
		Jobs:   []string{"no-such-app"},
		Policy: RoundRobin{},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestClusterRunEndToEnd(t *testing.T) {
	cfg := Config{
		Seed:      3,
		Nodes:     testNodes(),
		Jobs:      []string{"canneal", "SNP", "raytrace"},
		Policy:    InterferenceAware{},
		TimeScale: 16,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "interference-aware" {
		t.Fatalf("policy %q", res.Policy)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("nodes %d", len(res.Nodes))
	}
	if res.QoSMetFraction < 2.0/3.0 {
		t.Fatalf("QoS met on only %.0f%% of nodes", res.QoSMetFraction*100)
	}
	if res.MeanInaccuracy <= 0 || res.MeanInaccuracy > 6 {
		t.Fatalf("mean inaccuracy %.2f%%", res.MeanInaccuracy)
	}
}

func TestCompareRendersBothPolicies(t *testing.T) {
	cfg := Config{
		Seed:      7,
		Nodes:     testNodes(),
		Jobs:      []string{"PLSA", "canneal", "raytrace"},
		TimeScale: 16,
	}
	results, err := Compare(cfg, RoundRobin{}, InterferenceAware{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	out := Render(results)
	if !strings.Contains(out, "round-robin") || !strings.Contains(out, "interference-aware") {
		t.Fatalf("render missing policies:\n%s", out)
	}
	// The informed policy should not do worse on the worst node.
	if results[1].WorstP99 > results[0].WorstP99*1.25 {
		t.Fatalf("interference-aware worst p99 %.2f much worse than round-robin %.2f",
			results[1].WorstP99, results[0].WorstP99)
	}
}

func TestShuffledJobsDeterministic(t *testing.T) {
	a := ShuffledJobs(1, 5)
	b := ShuffledJobs(1, 5)
	if len(a) != 5 {
		t.Fatalf("len %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := ShuffledJobs(2, 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffles")
	}
	if len(ShuffledJobs(1, 100)) != 24 {
		t.Fatal("overlong request not clamped to catalog size")
	}
}
