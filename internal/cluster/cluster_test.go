package cluster

import (
	"math"
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
)

func testNodes() []Node {
	return []Node{
		{Name: "n0", Service: service.NGINX, MaxApps: 3},
		{Name: "n1", Service: service.Memcached, MaxApps: 3},
		{Name: "n2", Service: service.MongoDB, MaxApps: 3},
	}
}

func jobProfiles(t *testing.T, names ...string) []app.Profile {
	t.Helper()
	out := make([]app.Profile, len(names))
	for i, n := range names {
		p, err := app.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestRoundRobinPlacement(t *testing.T) {
	jobs := jobProfiles(t, "canneal", "SNP", "raytrace", "Bayesian")
	p, err := RoundRobin{}.Place(testNodes(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := Placement{0, 1, 2, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("placement %v, want %v", p, want)
		}
	}
}

func TestRoundRobinRespectsCapacity(t *testing.T) {
	nodes := []Node{
		{Name: "tiny", Service: service.MongoDB, MaxApps: 1},
		{Name: "big", Service: service.MongoDB, MaxApps: 3},
	}
	jobs := jobProfiles(t, "canneal", "SNP", "raytrace")
	p, err := RoundRobin{}.Place(nodes, jobs)
	if err != nil {
		t.Fatal(err)
	}
	count0 := 0
	for _, n := range p {
		if n == 0 {
			count0++
		}
	}
	if count0 > 1 {
		t.Fatalf("tiny node got %d jobs", count0)
	}
	// Overfull batch errors.
	many := jobProfiles(t, "canneal", "SNP", "raytrace", "Bayesian", "PLSA")
	if _, err := (RoundRobin{}).Place(nodes, many); err == nil {
		t.Fatal("over-capacity batch accepted")
	}
}

func TestInterferenceAwareSendsHeavyToTolerant(t *testing.T) {
	// PLSA is the heaviest pressure source; MongoDB the most tolerant
	// service. The interference-aware policy must pair them.
	jobs := jobProfiles(t, "PLSA", "raytrace", "Blast")
	nodes := testNodes()
	p, err := InterferenceAware{}.Place(nodes, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[p[0]].Service != service.MongoDB {
		t.Fatalf("PLSA placed on %v, want mongodb", nodes[p[0]].Service)
	}
}

func TestInterferenceAwareCapacity(t *testing.T) {
	nodes := []Node{{Name: "only", Service: service.NGINX, MaxApps: 1}}
	jobs := jobProfiles(t, "canneal", "SNP")
	if _, err := (InterferenceAware{}).Place(nodes, jobs); err == nil {
		t.Fatal("over-capacity accepted")
	}
}

func TestPressureOrdering(t *testing.T) {
	plsa, _ := app.ByName("PLSA")
	ray, _ := app.ByName("raytrace")
	if PressureOf(plsa) <= PressureOf(ray) {
		t.Fatalf("PLSA pressure %.1f not above raytrace %.1f", PressureOf(plsa), PressureOf(ray))
	}
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Nodes: testNodes()}); err == nil {
		t.Fatal("missing policy accepted")
	}
	cfg := Config{
		Nodes:  testNodes(),
		Jobs:   []string{"no-such-app"},
		Policy: RoundRobin{},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestClusterRunEndToEnd(t *testing.T) {
	cfg := Config{
		Seed:      3,
		Nodes:     testNodes(),
		Jobs:      []string{"canneal", "SNP", "raytrace"},
		Policy:    InterferenceAware{},
		TimeScale: 16,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "interference-aware" {
		t.Fatalf("policy %q", res.Policy)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("nodes %d", len(res.Nodes))
	}
	if res.QoSMetFraction < 2.0/3.0 {
		t.Fatalf("QoS met on only %.0f%% of nodes", res.QoSMetFraction*100)
	}
	if res.MeanInaccuracy <= 0 || res.MeanInaccuracy > 6 {
		t.Fatalf("mean inaccuracy %.2f%%", res.MeanInaccuracy)
	}
}

// TestClusterRunEnergyParity covers the batch layer's energy threading
// (ROADMAP "Batch cluster layer energy"): with an EnergyModel the batch
// study meters joules per busy node and totals them in the Result, without
// perturbing any scheduling outcome; without one, all energy fields stay
// zero.
func TestClusterRunEnergyParity(t *testing.T) {
	model := energy.ModelFor(platform.TablePlatform())
	cfg := Config{
		Seed:      3,
		Nodes:     testNodes(),
		Jobs:      []string{"canneal", "SNP", "raytrace", "Bayesian"},
		Policy:    RoundRobin{},
		TimeScale: 16,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EnergyModel = &model
	metered, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Joules != 0 {
		t.Errorf("energy-free run totaled %v J", plain.Joules)
	}
	if metered.Joules <= 0 {
		t.Fatal("metered run totaled no energy")
	}
	if metered.QoSMetFraction != plain.QoSMetFraction || metered.WorstP99 != plain.WorstP99 ||
		metered.MeanInaccuracy != plain.MeanInaccuracy {
		t.Errorf("energy metering perturbed scheduling:\nmetered: %+v\nplain:   %+v", metered, plain)
	}
	sum := 0.0
	for i, nr := range metered.Nodes {
		if len(nr.Apps) > 0 && (nr.Joules <= 0 || nr.MeanWatts <= 0) {
			t.Errorf("busy node %s metered %v J / %v W", nr.Node, nr.Joules, nr.MeanWatts)
		}
		if len(nr.Apps) == 0 && nr.Joules != 0 {
			t.Errorf("empty node %s metered %v J", nr.Node, nr.Joules)
		}
		if plain.Nodes[i].Joules != 0 {
			t.Errorf("energy-free node %s metered %v J", nr.Node, plain.Nodes[i].Joules)
		}
		sum += nr.Joules
	}
	if diff := math.Abs(sum - metered.Joules); diff > 1e-9 {
		t.Errorf("node joules sum to %v, total %v", sum, metered.Joules)
	}

	// A malformed model is rejected up front.
	broken := model
	broken.FreqGHz = nil
	cfg.EnergyModel = &broken
	if _, err := Run(cfg); err == nil {
		t.Error("invalid energy model accepted")
	}
}

func TestCompareRendersBothPolicies(t *testing.T) {
	cfg := Config{
		Seed:      7,
		Nodes:     testNodes(),
		Jobs:      []string{"PLSA", "canneal", "raytrace"},
		TimeScale: 16,
	}
	results, err := Compare(cfg, RoundRobin{}, InterferenceAware{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	out := Render(results)
	if !strings.Contains(out, "round-robin") || !strings.Contains(out, "interference-aware") {
		t.Fatalf("render missing policies:\n%s", out)
	}
	// The informed policy should not do worse on the worst node.
	if results[1].WorstP99 > results[0].WorstP99*1.25 {
		t.Fatalf("interference-aware worst p99 %.2f much worse than round-robin %.2f",
			results[1].WorstP99, results[0].WorstP99)
	}
}

// TestRenderTableShape pins Render's output contract on synthetic results:
// one header block, one row per result, rows in input (policy) order, with
// the three aggregate columns formatted.
func TestRenderTableShape(t *testing.T) {
	results := []Result{
		{Policy: "round-robin", QoSMetFraction: 2.0 / 3.0, WorstP99: 1.42, MeanInaccuracy: 2.5},
		{Policy: "interference-aware", QoSMetFraction: 1, WorstP99: 0.97, MeanInaccuracy: 3.1},
	}
	out := Render(results)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+len(results) {
		t.Fatalf("render has %d lines, want title + header + %d rows:\n%s", len(lines), len(results), out)
	}
	for _, col := range []string{"policy", "QoS met", "worst p99", "mean inacc"} {
		if !strings.Contains(lines[1], col) {
			t.Fatalf("header missing %q: %s", col, lines[1])
		}
	}
	// Row order follows input order.
	if !strings.Contains(lines[2], "round-robin") || !strings.Contains(lines[3], "interference-aware") {
		t.Fatalf("rows out of order:\n%s", out)
	}
	// Formatted aggregates.
	if !strings.Contains(lines[2], "67%") || !strings.Contains(lines[2], "1.42x") || !strings.Contains(lines[2], "2.50%") {
		t.Fatalf("round-robin row mis-formatted: %s", lines[2])
	}
	if !strings.Contains(lines[3], "100%") || !strings.Contains(lines[3], "0.97x") {
		t.Fatalf("interference-aware row mis-formatted: %s", lines[3])
	}
}

// TestCompareOrderAndIsolation checks Compare returns results in policy
// order and that each result carries its own policy's name.
func TestCompareOrderAndIsolation(t *testing.T) {
	cfg := Config{
		Seed:      5,
		Nodes:     testNodes(),
		Jobs:      []string{"canneal", "raytrace"},
		TimeScale: 16,
	}
	results, err := Compare(cfg, InterferenceAware{}, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"interference-aware", "round-robin"}
	for i, w := range want {
		if results[i].Policy != w {
			t.Fatalf("result %d is %q, want %q (policy order must be preserved)", i, results[i].Policy, w)
		}
	}
}

func TestNodeSeedIndependentPerNode(t *testing.T) {
	if NodeSeed(1, 0) == NodeSeed(1, 1) {
		t.Fatal("node seeds collide")
	}
	if NodeSeed(1, 0) != NodeSeed(1, 0) {
		t.Fatal("node seed not deterministic")
	}
}

func TestTelemetryObserve(t *testing.T) {
	var tel Telemetry
	if !tel.QoSMet() {
		t.Fatal("fresh telemetry must trivially meet QoS")
	}
	qos := sim.Duration(10 * sim.Millisecond)
	tel.Observe(monitor.Report{P99: qos / 2, QoS: qos})
	if tel.P99OverQoS != 0.5 || tel.Reports != 1 || tel.ViolationFrac != 0 {
		t.Fatalf("after first report: %+v", tel)
	}
	tel.Observe(monitor.Report{P99: 2 * qos, QoS: qos, Violation: true})
	// EWMA: 0.3·2 + 0.7·0.5 = 0.95.
	if tel.P99OverQoS < 0.94 || tel.P99OverQoS > 0.96 {
		t.Fatalf("ewma %v, want ≈0.95", tel.P99OverQoS)
	}
	if tel.ViolationFrac != 0.5 {
		t.Fatalf("violation frac %v", tel.ViolationFrac)
	}
	tel.Observe(monitor.Report{P99: 3 * qos, QoS: qos, Violation: true})
	if tel.QoSMet() {
		t.Fatalf("telemetry at %v×QoS still reports QoS met", tel.P99OverQoS)
	}
}

func TestShuffledJobsDeterministic(t *testing.T) {
	a := ShuffledJobs(1, 5)
	b := ShuffledJobs(1, 5)
	if len(a) != 5 {
		t.Fatalf("len %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := ShuffledJobs(2, 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffles")
	}
	if len(ShuffledJobs(1, 100)) != 24 {
		t.Fatal("overlong request not clamped to catalog size")
	}
}

// TestTelemetryEWMADecay pins the recency weighting: after a single spike,
// each quiet interval decays the EWMA by exactly (1-alpha), so the spike's
// influence halves roughly every two reports at alpha = 0.3.
func TestTelemetryEWMADecay(t *testing.T) {
	const alpha = 0.3
	qos := sim.Duration(10 * sim.Millisecond)
	var tel Telemetry
	tel.Observe(monitor.Report{P99: 4 * qos, QoS: qos, Violation: true}) // spike: ratio 4
	want := 4.0
	for i := 0; i < 6; i++ {
		tel.Observe(monitor.Report{P99: qos, QoS: qos}) // quiet: ratio 1
		want = alpha*1 + (1-alpha)*want
		if diff := tel.P99OverQoS - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("after %d quiet reports: EWMA %v, want %v", i+1, tel.P99OverQoS, want)
		}
	}
	// Six quiet intervals leave under 12% of the spike's excess.
	if excess := tel.P99OverQoS - 1; excess > 3*math.Pow(1-alpha, 6) {
		t.Fatalf("spike not decaying: excess %v", excess)
	}
}

// TestTelemetryEnergyObserve covers the energy EWMAs: watts seed on the
// first energy-bearing report, decay with the same alpha, joules accumulate,
// and reports without energy leave all three untouched.
func TestTelemetryEnergyObserve(t *testing.T) {
	qos := sim.Duration(10 * sim.Millisecond)
	var tel Telemetry
	tel.Observe(monitor.Report{P99: qos, QoS: qos}) // no energy attached
	if tel.Watts != 0 || tel.Joules != 0 || tel.PerfPerWatt != 0 {
		t.Fatalf("energy fields moved without energy-bearing report: %+v", tel)
	}
	r := monitor.Report{
		P99: qos, QoS: qos, Interval: sim.Second,
		Seen: 1000, Watts: 100, Joules: 100,
	}
	tel.Observe(r)
	if tel.Watts != 100 || tel.Joules != 100 {
		t.Fatalf("first energy report did not seed: %+v", tel)
	}
	if tel.PerfPerWatt != 10 { // 1000 req/s at 100 W
		t.Fatalf("PerfPerWatt = %v, want 10", tel.PerfPerWatt)
	}
	r.Watts, r.Joules, r.Seen = 200, 200, 1000
	tel.Observe(r)
	if want := 0.3*200 + 0.7*100.0; math.Abs(tel.Watts-want) > 1e-12 {
		t.Fatalf("Watts EWMA = %v, want %v", tel.Watts, want)
	}
	if tel.Joules != 300 {
		t.Fatalf("Joules = %v, want 300", tel.Joules)
	}
}

// TestTelemetryObserveAllocFree pins the acceptance criterion: folding an
// energy-bearing report into node telemetry allocates nothing.
func TestTelemetryObserveAllocFree(t *testing.T) {
	qos := sim.Duration(10 * sim.Millisecond)
	r := monitor.Report{
		P99: qos, QoS: qos, Interval: sim.Second,
		Seen: 1000, Watts: 100, Joules: 100,
	}
	var tel Telemetry
	avg := testing.AllocsPerRun(1000, func() { tel.Observe(r) })
	if avg != 0 {
		t.Errorf("Telemetry.Observe allocates %.2f allocs/op, want 0", avg)
	}
}
