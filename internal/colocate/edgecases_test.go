package colocate

import (
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
)

// Edge cases and failure injection for the scenario orchestration.

func TestAppFinishingWhileCoresYielded(t *testing.T) {
	// A short app that yields cores and finishes before returning them: the
	// cores stay with the service (there is nothing to return them to) and
	// the run terminates cleanly.
	cfg := fastCfg(service.Memcached, "k-means") // shortest heavy app (28s)
	cfg.Runtime = Pliant
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Apps[0].Done {
		t.Fatal("app did not finish")
	}
	// After the app finishes the scenario stops; the last recorded service
	// core count must never exceed usable cores.
	last := res.Trace.Series("svc.cores").Last().V
	if last > 16 {
		t.Fatalf("service cores %v exceed usable 16", last)
	}
}

func TestMinAppCoresFloorHonored(t *testing.T) {
	skipIfShort(t)
	cfg := fastCfg(service.Memcached, "PLSA")
	cfg.Runtime = Pliant
	cfg.MinAppCores = 6 // nearly the fair share: at most 2 cores reclaimable
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].MaxYielded > 2 {
		t.Fatalf("yielded %d cores despite floor of 6 (fair share 8)", res.Apps[0].MaxYielded)
	}
}

func TestStaticApproxRuntime(t *testing.T) {
	cfg := fastCfg(service.MongoDB, "SNP")
	cfg.Runtime = StaticApprox
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "static-approx" {
		t.Fatalf("runtime %q", res.Runtime)
	}
	// Static approximation runs the whole job at most-approximate: quality
	// loss equals the deepest variant's, and no cores move.
	if res.Apps[0].Inaccuracy < 3 {
		t.Fatalf("static-approx inaccuracy %.2f%%, want the deepest variant's", res.Apps[0].Inaccuracy)
	}
	if res.Apps[0].MaxYielded != 0 {
		t.Fatal("static-approx moved cores")
	}
}

func TestImpactAwareRuntime(t *testing.T) {
	skipIfShort(t)
	cfg := fastCfg(service.Memcached, "canneal", "Bayesian")
	cfg.Runtime = ImpactAware
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "impact-aware" {
		t.Fatalf("runtime %q", res.Runtime)
	}
	for _, a := range res.Apps {
		if !a.Done {
			t.Errorf("%s did not finish", a.Name)
		}
	}
	// Impact-aware steps variants one level at a time, so Bayesian (cheap
	// per step) should absorb more of the penalty than canneal.
	if res.TypicalOverQoS() > 1.2 {
		t.Errorf("impact-aware steady p99 %.2fx QoS", res.TypicalOverQoS())
	}
}

func TestSmallPlatformScenario(t *testing.T) {
	skipIfShort(t)
	cfg := fastCfg(service.NGINX, "canneal")
	cfg.Platform = platform.SmallPlatform()
	cfg.Runtime = Pliant
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Apps[0].Done {
		t.Fatal("app did not finish on the small platform")
	}
}

func TestThreeAppColocation(t *testing.T) {
	cfg := fastCfg(service.MongoDB, "canneal", "SNP", "raytrace")
	cfg.Runtime = Pliant
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 3 {
		t.Fatalf("%d app results", len(res.Apps))
	}
	total := 0
	for _, a := range res.Apps {
		if !a.Done {
			t.Errorf("%s unfinished", a.Name)
		}
		total += a.MaxYielded
	}
	// 16 usable cores split 4 ways: each app starts with 4, floor 1, so at
	// most 9 cores can ever be simultaneously yielded.
	if total > 9 {
		t.Fatalf("implausible total yields %d", total)
	}
}

func TestOverloadBeyondSaturation(t *testing.T) {
	// Load above 100% of saturation: Pliant cannot fully restore QoS (the
	// paper: beyond ~90% load violations persist regardless), but the run
	// must terminate and the trace stay well-formed.
	cfg := fastCfg(service.NGINX, "water_spatial")
	cfg.Runtime = Pliant
	cfg.LoadFraction = 1.2
	cfg.MaxDuration = 15 * sim.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals == 0 {
		t.Fatal("no intervals recorded")
	}
	if res.TypicalOverQoS() <= 1 {
		t.Fatalf("overload met QoS (%.2fx) — implausible beyond saturation", res.TypicalOverQoS())
	}
}

func TestInstrumentAppsFlag(t *testing.T) {
	// The precise baseline normally runs uninstrumented; InstrumentApps
	// forces the substrate overhead on, lengthening execution.
	base := fastCfg(service.MongoDB, "water_spatial") // highest overhead: 8.9%
	base.Runtime = Precise
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	inst := base
	inst.InstrumentApps = true
	instRes, err := Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if instRes.Apps[0].ExecTime <= plain.Apps[0].ExecTime {
		t.Fatalf("instrumented run (%v) not slower than plain (%v)",
			instRes.Apps[0].ExecTime, plain.Apps[0].ExecTime)
	}
}

func TestDecisionIntervalExtremes(t *testing.T) {
	// Very fine interval (100ms): more reports, still stable.
	cfg := fastCfg(service.Memcached, "Bayesian")
	cfg.Runtime = Pliant
	cfg.DecisionInterval = 100 * sim.Millisecond
	fine, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Intervals < 100 {
		t.Fatalf("fine interval recorded only %d intervals", fine.Intervals)
	}
	if fine.TypicalOverQoS() > 1.2 {
		t.Fatalf("fine interval steady p99 %.2fx", fine.TypicalOverQoS())
	}
}

func TestRelFairShareNormalization(t *testing.T) {
	// Single-app colocations: fair share is the 8-core reference, so both
	// normalizations coincide.
	cfg := fastCfg(service.MongoDB, "raytrace")
	cfg.Runtime = Precise
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	if diff := a.RelNominal - a.RelFairShare; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("single-app RelNominal %.4f != RelFairShare %.4f", a.RelNominal, a.RelFairShare)
	}
	// Two-app colocations: fair share is 5 cores, so the fair-share
	// normalization is smaller than the 8-core one.
	cfg2 := fastCfg(service.MongoDB, "raytrace", "Glimmer")
	cfg2.Runtime = Precise
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	a2 := res2.Apps[0]
	if a2.RelFairShare >= a2.RelNominal {
		t.Fatalf("2-app RelFairShare %.3f should be below RelNominal %.3f", a2.RelFairShare, a2.RelNominal)
	}
}

func TestLearnerRuntime(t *testing.T) {
	cfg := fastCfg(service.Memcached, "Bayesian")
	cfg.Runtime = Learner
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "learner" {
		t.Fatalf("runtime %q", res.Runtime)
	}
	if !res.Apps[0].Done {
		t.Fatal("app did not finish under the learner")
	}
	// The learner starts with no knowledge, so it violates more than the
	// profiled controller early on but must still converge to meeting QoS.
	if res.TypicalOverQoS() > 1.3 {
		t.Fatalf("learner steady p99 %.2fx QoS", res.TypicalOverQoS())
	}
}

func TestCustomAppProfile(t *testing.T) {
	custom, err := app.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	custom.Name = "user-job"
	custom.NominalExecSec = 20
	cfg := fastCfg(service.MongoDB, "user-job")
	cfg.CustomApps = []app.Profile{custom}
	cfg.Runtime = Pliant
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Name != "user-job" {
		t.Fatalf("app name %q", res.Apps[0].Name)
	}
	if !res.Apps[0].Done {
		t.Fatal("custom app did not finish")
	}
	// Custom profiles shadow the catalog.
	shadow := custom
	shadow.Name = "canneal"
	shadow.NominalExecSec = 5
	cfg2 := fastCfg(service.MongoDB, "canneal")
	cfg2.CustomApps = []app.Profile{shadow}
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Duration > 20*sim.Second {
		t.Fatalf("shadowed profile ignored: run took %v for a 5s app", res2.Duration)
	}
}
