package colocate

import (
	"testing"

	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
)

func energyScenario(seed uint64) (Config, energy.Model) {
	model := energy.ModelFor(platform.TablePlatform())
	return Config{
		Seed:         seed,
		Service:      service.Memcached,
		AppNames:     []string{"canneal"},
		Runtime:      Pliant,
		LoadFraction: 0.78,
		TimeScale:    16,
		EnergyModel:  &model,
	}, model
}

// TestEnergyAccountingIsObservationOnly pins the core invariant: attaching a
// power model at nominal frequency must not perturb the simulation — same
// seed, same requests, same tail; only the energy fields appear.
func TestEnergyAccountingIsObservationOnly(t *testing.T) {
	with, _ := energyScenario(7)
	without := with
	without.EnergyModel = nil

	rw, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Served != ro.Served || rw.Dropped != ro.Dropped || rw.OverallP99 != ro.OverallP99 {
		t.Fatalf("energy accounting perturbed the run: with=(%d,%d,%v) without=(%d,%d,%v)",
			rw.Served, rw.Dropped, rw.OverallP99, ro.Served, ro.Dropped, ro.OverallP99)
	}
	if rw.Joules <= 0 || rw.MeanWatts <= 0 || rw.MeanUtil <= 0 {
		t.Fatalf("energy totals missing: joules=%v watts=%v util=%v", rw.Joules, rw.MeanWatts, rw.MeanUtil)
	}
	if ro.Joules != 0 || ro.MeanWatts != 0 {
		t.Fatalf("nil model accrued energy: %+v", ro)
	}
	if rw.Trace.Series("watts").Len() == 0 {
		t.Fatal("watts series missing from trace")
	}
	if ro.Trace.Series("watts").Len() != 0 {
		t.Fatal("watts series present without a model")
	}
}

// TestEnergyBoundsAndReports checks the physical envelope — mean draw sits
// between the parked floor and peak — and that OnReport carries per-interval
// watts/joules consistent with the run totals.
func TestEnergyBoundsAndReports(t *testing.T) {
	cfg, model := energyScenario(3)
	var joules float64
	var reports int
	cfg.OnReport = func(r monitor.Report) {
		if r.Watts < model.ParkedW || r.Watts > model.PeakW {
			t.Errorf("interval watts %v outside [%v, %v]", r.Watts, model.ParkedW, model.PeakW)
		}
		if r.Util < 0 || r.Util > 1 {
			t.Errorf("interval util %v outside [0,1]", r.Util)
		}
		joules += r.Joules
		reports++
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reports == 0 {
		t.Fatal("no reports observed")
	}
	if res.MeanWatts < model.IdleW || res.MeanWatts > model.PeakW {
		t.Errorf("mean watts %v outside [idle %v, peak %v]", res.MeanWatts, model.IdleW, model.PeakW)
	}
	// Per-interval joules should account for nearly all of the run total
	// (the final partial interval is closed at the last observed draw).
	if joules > res.Joules || joules < 0.8*res.Joules {
		t.Errorf("interval joules %v vs run total %v", joules, res.Joules)
	}
}

// TestLowFrequencySavesEnergy drives the same colocation in the lowest
// frequency state: the node must draw measurably fewer joules per second
// while the tail gets worse (the service really is slower), which is exactly
// the slack the approx-for-watts policy spends.
func TestLowFrequencySavesEnergy(t *testing.T) {
	nominal, model := energyScenario(7)
	nominal.MaxDuration = 40 * 16 * sim.Second // bounded, identical for both runs

	slow := nominal
	slow.FreqGHz = model.FreqAt(0)

	rn, err := Run(nominal)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanWatts >= rn.MeanWatts {
		t.Errorf("low state draws %v W ≥ nominal %v W", rs.MeanWatts, rn.MeanWatts)
	}
	if rs.TypicalP99 <= rn.TypicalP99 {
		t.Errorf("low state p99 %v not above nominal %v — slowdown not applied", rs.TypicalP99, rn.TypicalP99)
	}
}

// TestEnergyConfigValidation rejects frequency without a model and bad
// frequencies.
func TestEnergyConfigValidation(t *testing.T) {
	cfg, _ := energyScenario(1)
	cfg.EnergyModel = nil
	cfg.FreqGHz = 1.8
	if _, err := Run(cfg); err == nil {
		t.Error("FreqGHz without EnergyModel validated")
	}
	cfg, _ = energyScenario(1)
	cfg.FreqGHz = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative FreqGHz validated")
	}
	cfg, model := energyScenario(1)
	cfg.FreqGHz = model.FreqAt(model.Nominal()) + 1
	if _, err := Run(cfg); err == nil {
		t.Error("above-nominal FreqGHz validated — would extrapolate the power curve")
	}
}
