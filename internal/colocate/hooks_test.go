package colocate

import (
	"testing"

	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// TestOnReportTelemetryHook checks the mid-run telemetry feed: one report per
// decision interval, matching the result's interval count, carrying the
// fields a scheduler consumes.
func TestOnReportTelemetryHook(t *testing.T) {
	var reports []monitor.Report
	res, err := Run(Config{
		Seed:        11,
		Service:     0,
		AppNames:    []string{"canneal"},
		Runtime:     Pliant,
		TimeScale:   16,
		MaxDuration: 8 * sim.Second,
		OnReport:    func(r monitor.Report) { reports = append(reports, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("telemetry hook never fired")
	}
	if len(reports) != res.Intervals {
		t.Fatalf("hook fired %d times for %d intervals", len(reports), res.Intervals)
	}
	for i, r := range reports {
		if r.QoS != res.QoS {
			t.Fatalf("report %d QoS %v, result QoS %v", i, r.QoS, res.QoS)
		}
		if i > 0 && r.At <= reports[i-1].At {
			t.Fatalf("reports not time-ordered at %d", i)
		}
	}
}

// TestAppWorkScaleResumesRemainingWork checks the episode-resumption
// contract: a run handed work scale f finishes in about f times the full
// run's span, and Progress is relative to the reduced work.
func TestAppWorkScaleResumesRemainingWork(t *testing.T) {
	skipIfShort(t)
	base := Config{
		Seed:      5,
		Service:   0,
		AppNames:  []string{"raytrace"},
		Runtime:   Precise,
		TimeScale: 16,
	}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Apps[0].Done {
		t.Fatal("full run did not finish")
	}

	half := base
	half.Seed = 5
	half.AppWorkScale = []float64{0.5}
	res, err := Run(half)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Apps[0].Done {
		t.Fatal("half-work run did not finish")
	}
	if res.Apps[0].Progress != 1 {
		t.Fatalf("finished app progress %v", res.Apps[0].Progress)
	}
	ratio := res.Apps[0].ExecTime.Seconds() / full.Apps[0].ExecTime.Seconds()
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("half-work run took %.2fx of the full run, want ≈0.5", ratio)
	}
}

// TestAppWorkScalePartialProgress checks that a bounded episode reports
// partial progress a scheduler can carry into the next episode.
func TestAppWorkScalePartialProgress(t *testing.T) {
	res, err := Run(Config{
		Seed:         9,
		Service:      0,
		AppNames:     []string{"canneal", "canneal"}, // duplicates are independent instances
		AppWorkScale: []float64{1, 0.8},
		Runtime:      Pliant,
		TimeScale:    16,
		MaxDuration:  6 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	for i, a := range res.Apps {
		if a.Done {
			continue
		}
		if a.Progress <= 0 || a.Progress >= 1 {
			t.Fatalf("app %d progress %v, want in (0,1)", i, a.Progress)
		}
	}
	// The reduced-work twin must be at least as far along as the full one.
	if !res.Apps[1].Done && !res.Apps[0].Done && res.Apps[1].Progress < res.Apps[0].Progress {
		t.Fatalf("0.8-work instance progress %.3f behind full instance %.3f",
			res.Apps[1].Progress, res.Apps[0].Progress)
	}
}

func TestAppWorkScaleValidation(t *testing.T) {
	bad := Config{
		AppNames:     []string{"canneal"},
		AppWorkScale: []float64{0.5, 0.5},
	}
	if _, err := Run(bad); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad.AppWorkScale = []float64{0}
	if _, err := Run(bad); err == nil {
		t.Fatal("zero work scale accepted")
	}
	bad.AppWorkScale = []float64{1.5}
	if _, err := Run(bad); err == nil {
		t.Fatal("work scale above 1 accepted")
	}
}

// TestLoadShapeVariesOfferedLoad drives the same scenario under a steady and
// a flash-crowd shape: the flash must push more requests through the system.
func TestLoadShapeVariesOfferedLoad(t *testing.T) {
	run := func(shape workload.Shape) Result {
		t.Helper()
		res, err := Run(Config{
			Seed:         21,
			Service:      0,
			AppNames:     []string{"canneal"},
			Runtime:      Pliant,
			LoadFraction: 0.6,
			TimeScale:    16,
			MaxDuration:  10 * sim.Second,
			LoadShape:    shape,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	steady := run(workload.Steady{})
	flash := run(workload.Flash{Peak: 1.8, StartSec: 2, DurationSec: 6})
	if flash.Served+flash.Dropped <= (steady.Served+steady.Dropped)*5/4 {
		t.Fatalf("flash crowd offered %d requests vs steady %d, want ≥25%% more",
			flash.Served+flash.Dropped, steady.Served+steady.Dropped)
	}
}
