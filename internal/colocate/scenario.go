// Package colocate assembles and runs colocation scenarios: one interactive
// service sharing a server with one or more approximate applications under a
// chosen runtime policy. It mirrors the paper's testbed orchestration
// (Sec. 5): tenants start from a fair core allocation on one socket, the
// service is driven by an open-loop client at a fraction of its measured
// saturation, the performance monitor reports tail latency every decision
// interval, and the runtime policy actuates approximation degrees (through
// the dynamic-instrumentation substrate) and core reallocations.
package colocate

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/client"
	"github.com/approx-sched/pliant/internal/core"
	"github.com/approx-sched/pliant/internal/dse"
	"github.com/approx-sched/pliant/internal/dyninst"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/interference"
	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
	"github.com/approx-sched/pliant/internal/workload"
)

// RuntimeKind selects the runtime policy managing the colocation.
type RuntimeKind int

// The built-in runtimes.
const (
	// Pliant is the paper's runtime (Fig. 3 + round-robin arbiter).
	Pliant RuntimeKind = iota
	// Precise is the baseline: fair static allocation, no approximation.
	Precise
	// StaticApprox pins every app to its most approximate variant.
	StaticApprox
	// ImpactAware is the Sec. 6.5 future-work arbiter.
	ImpactAware
	// Learner is the Sec. 6.5 online-learning extension: variant impacts
	// are unknown a priori and learned from monitor feedback.
	Learner
)

// String names the runtime.
func (r RuntimeKind) String() string {
	switch r {
	case Pliant:
		return "pliant"
	case Precise:
		return "precise"
	case StaticApprox:
		return "static-approx"
	case ImpactAware:
		return "impact-aware"
	case Learner:
		return "learner"
	default:
		return fmt.Sprintf("runtime(%d)", int(r))
	}
}

// Config describes one scenario.
type Config struct {
	// Seed drives all pseudo-randomness; equal seeds reproduce runs
	// bit-for-bit.
	Seed uint64

	// Platform is the server model (defaults to platform.TablePlatform).
	Platform platform.Spec

	// Service selects the interactive service preset.
	Service service.Class

	// LoadFraction is the offered load as a fraction of the service's
	// saturation throughput at its fair-share core count (paper: 0.75–0.80
	// unless sweeping).
	LoadFraction float64

	// LoadShape, when set, makes the offered load time-varying: the
	// instantaneous load is LoadFraction times the shape's multiplier at the
	// current scenario time. Nil means steady load, as in the paper's runs.
	LoadShape workload.Shape

	// AppNames are names of the colocated approximate applications,
	// resolved against CustomApps first and then the built-in catalog.
	// Names may repeat: each entry is an independent instance.
	AppNames []string

	// AppWorkScale, when non-nil, scales each application's total work
	// (NominalExecSec) by the matching factor; it must be the same length as
	// AppNames. An online scheduler resuming a half-finished job hands the
	// episode a factor of 0.5 so the instance carries exactly the remaining
	// work. Nil means every app runs its full nominal work.
	AppWorkScale []float64

	// CustomApps are user-provided application profiles (e.g. parsed from
	// ACCEPT-style hint files) that AppNames may refer to.
	CustomApps []app.Profile

	// Runtime picks the controller policy; Policy overrides it when set.
	Runtime RuntimeKind
	Policy  core.Policy

	// FixedVariants, when non-nil, disables the controller and pins each
	// app to the given variant index for the whole run (used by the Fig. 1
	// per-variant impact study). Missing apps run precise.
	FixedVariants map[string]int

	// DecisionInterval is the controller period (paper default: 1 s).
	DecisionInterval sim.Duration

	// SlackThreshold is the revert threshold (paper default: 10%).
	SlackThreshold float64

	// TimeScale multiplies the service's request timescale (demand, QoS,
	// backlog) so the fast test profile simulates proportionally fewer
	// requests at identical utilization; 1 = paper scale.
	TimeScale float64

	// MaxDuration bounds the run; 0 means run until every app finishes
	// (plus a small grace period), capped at a safety horizon.
	MaxDuration sim.Duration

	// MinAppCores is the per-app core floor for reclamation (default 1).
	MinAppCores int

	// InstrumentApps applies the dynamic-instrumentation overhead even when
	// the policy never switches variants. The precise baseline runs
	// uninstrumented, as in the paper.
	InstrumentApps bool

	// EnergyModel, when set, attaches a power model to the node: every
	// decision-interval report carries that interval's utilization, watts,
	// and joules (monitor.Report.Util/Watts/Joules), the trace gains a
	// "watts" series, and the result totals energy. Nil (the default) keeps
	// all energy accounting off and results byte-identical to prior versions.
	EnergyModel *energy.Model

	// FreqGHz runs the node in a fixed frequency state below nominal: both
	// the service and the apps slow by nominal/FreqGHz (through the same
	// slowdown path contention uses) while the power curve draws
	// proportionally less. 0 means the model's nominal frequency. Requires
	// EnergyModel.
	FreqGHz float64

	// OnReport, when set, observes every decision-interval monitor report —
	// the mid-run telemetry feed a cluster scheduler consumes (Sec. 6.4). It
	// fires after the runtime policy has actuated and must not mutate the
	// scenario.
	OnReport func(monitor.Report)

	// Scratch, when set, supplies reusable episode state (engine arenas,
	// histograms) owned by the caller's worker. Results are identical with or
	// without it; it only removes per-episode allocations. Must not be shared
	// by concurrent runs.
	Scratch *Scratch
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Platform.CoresPerSocket == 0 {
		c.Platform = platform.TablePlatform()
	}
	if c.LoadFraction == 0 {
		c.LoadFraction = 0.78
	}
	if c.DecisionInterval == 0 {
		c.DecisionInterval = sim.Second
	}
	if c.SlackThreshold == 0 {
		c.SlackThreshold = 0.10
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.MinAppCores == 0 {
		c.MinAppCores = 1
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	switch {
	case len(c.AppNames) == 0:
		return fmt.Errorf("colocate: no approximate applications")
	case c.LoadFraction <= 0 || c.LoadFraction > 1.5:
		return fmt.Errorf("colocate: load fraction %v outside (0, 1.5]", c.LoadFraction)
	case c.TimeScale <= 0:
		return fmt.Errorf("colocate: time scale must be positive")
	case c.DecisionInterval < 10*sim.Millisecond:
		return fmt.Errorf("colocate: decision interval %v too small", c.DecisionInterval)
	case c.AppWorkScale != nil && len(c.AppWorkScale) != len(c.AppNames):
		return fmt.Errorf("colocate: work scale covers %d of %d apps", len(c.AppWorkScale), len(c.AppNames))
	}
	for i, f := range c.AppWorkScale {
		if f <= 0 || f > 1 {
			return fmt.Errorf("colocate: work scale %v for app %d outside (0, 1]", f, i)
		}
	}
	if c.EnergyModel != nil {
		if err := c.EnergyModel.Validate(); err != nil {
			return err
		}
		if nominal := c.EnergyModel.FreqAt(c.EnergyModel.Nominal()); c.FreqGHz != 0 &&
			(c.FreqGHz < 0 || c.FreqGHz > nominal) {
			// Above-nominal frequencies would extrapolate the power curve and
			// speed the node beyond the calibrated timing model.
			return fmt.Errorf("colocate: frequency %v outside (0, nominal %v]", c.FreqGHz, nominal)
		}
	} else if c.FreqGHz != 0 {
		return fmt.Errorf("colocate: FreqGHz needs an EnergyModel")
	}
	return c.Platform.Validate()
}

// AppResult summarizes one application after the run.
type AppResult struct {
	Name     string
	Done     bool
	ExecTime sim.Duration
	// RelNominal normalizes execution time to the isolated precise run on
	// the 8-core reference share; RelFairShare normalizes to the isolated
	// precise run on the cores this scenario's fair split actually granted
	// (they coincide for single-app colocations). The paper's
	// execution-time metrics correspond to RelFairShare.
	RelNominal   float64
	RelFairShare float64
	// Progress is the fraction of this run's work completed, in [0,1] —
	// relative to the (possibly AppWorkScale-reduced) work the instance was
	// given, which is what a resuming scheduler needs.
	Progress    float64
	Inaccuracy  float64 // percent
	FinalCores  int
	MaxYielded  int
	VariantMax  int // most approximate variant index available
	Switches    uint64
	DynOverhead float64
}

// Result is the outcome of one scenario run.
type Result struct {
	Service         string
	Runtime         string
	QoS             sim.Duration
	OverallP99      sim.Duration // whole-run p99, adaptation transients included
	TypicalP99      sim.Duration // median of per-interval p99s (steady-state reading)
	MaxIntervalP99  sim.Duration
	MeanIntervalP99 sim.Duration
	ViolationFrac   float64 // fraction of decision intervals in violation
	Intervals       int
	Duration        sim.Duration
	Served          uint64
	Dropped         uint64
	Apps            []AppResult

	// Joules, MeanWatts, and MeanUtil summarize node energy when the
	// scenario carried an EnergyModel (all zero otherwise): total energy,
	// mean power draw over the run, and mean socket utilization across
	// decision intervals.
	Joules    float64
	MeanWatts float64
	MeanUtil  float64

	// Trace carries the per-interval series for the dynamic-behavior
	// figures: "p99" (in QoS multiples), "svc.cores", and per app
	// "variant.<name>" and "yielded.<name>".
	Trace *stats.Trace
}

// P99OverQoS returns the whole-run p99 as a multiple of QoS.
func (r Result) P99OverQoS() float64 {
	return float64(r.OverallP99) / float64(r.QoS)
}

// TypicalOverQoS returns the steady-state (median-interval) p99 as a
// multiple of QoS — the reading the paper's aggregate bars reflect, robust
// to the adaptation transients visible in its dynamic-behavior figures.
func (r Result) TypicalOverQoS() float64 {
	return float64(r.TypicalP99) / float64(r.QoS)
}

// MeetsQoS reports whether the steady-state p99 met the target.
func (r Result) MeetsQoS() bool { return r.TypicalP99 <= r.QoS }

// safetyHorizon bounds runs that would otherwise never terminate.
const safetyHorizon = 600 * sim.Second

// Run executes the scenario and returns its result.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s, err := build(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.run()
}

// resolveApp finds an application profile by name: user-provided profiles
// shadow the built-in catalog.
func resolveApp(cfg Config, name string) (app.Profile, error) {
	for _, p := range cfg.CustomApps {
		if p.Name == name {
			return p, nil
		}
	}
	return app.ByName(name)
}

// scenario holds the assembled simulation.
type scenario struct {
	cfg   Config
	eng   *sim.Engine
	rng   *sim.RNG
	alloc *platform.Allocation
	model *interference.Model

	svcTenant platform.TenantID
	svc       *service.Instance
	gen       *client.Generator
	mon       *monitor.Monitor
	policy    core.Policy

	apps      []*dyninst.Process
	appNames  []string
	initCores []int
	yielded   []int
	maxYield  []int
	histogram *stats.Histogram // whole-run latency
	trace     *stats.Trace

	intervals    int
	violations   int
	maxP99       sim.Duration
	sumP99       float64
	intervalP99s []float64
	runningApps  int

	// Energy accounting (active only when cfg.EnergyModel is set): the
	// frequency the node runs at, the execution-time multiplier it implies,
	// the per-run accumulator, and the last interval's power draw (used to
	// close the final partial interval).
	svcCfg    service.Config
	freqGHz   float64
	freqSlow  float64
	acc       energy.Accumulator
	lastWatts float64
	utilSum   float64
}

func build(cfg Config) (*scenario, error) {
	s := &scenario{
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed),
		trace: stats.NewTrace(),
	}
	if cfg.Scratch != nil {
		s.eng = cfg.Scratch.engine()
		s.histogram = cfg.Scratch.latencyHist()
		s.intervalP99s = cfg.Scratch.intervalBuf()
	} else {
		s.eng = sim.NewEngine()
		s.histogram = stats.NewLatencyHistogram()
	}

	var err error
	s.alloc, err = platform.NewAllocation(cfg.Platform)
	if err != nil {
		return nil, err
	}
	s.model, err = interference.New(cfg.Platform)
	if err != nil {
		return nil, err
	}

	// Fair initial allocation: the service and every app get equal shares.
	s.svcTenant = "svc"
	tenants := []platform.TenantID{s.svcTenant}
	for i, name := range cfg.AppNames {
		tenants = append(tenants, platform.TenantID(fmt.Sprintf("app%d:%s", i, name)))
	}
	if err := s.alloc.FairShare(tenants...); err != nil {
		return nil, err
	}
	fairSvcCores := s.alloc.Cores(s.svcTenant)

	// Frequency state: lower states slow service and apps alike through the
	// same multiplicative path contention uses, and the power curve draws
	// proportionally less.
	s.freqSlow = 1
	if cfg.EnergyModel != nil {
		m := cfg.EnergyModel
		s.freqGHz = cfg.FreqGHz
		if s.freqGHz == 0 {
			s.freqGHz = m.FreqAt(m.Nominal())
		}
		s.freqSlow = m.FreqAt(m.Nominal()) / s.freqGHz
	}

	// Interactive service and its open-loop client.
	svcCfg := service.Preset(cfg.Service).Scaled(cfg.TimeScale)
	s.svcCfg = svcCfg
	s.svc, err = service.New(s.eng, s.rng.Split(1), svcCfg, fairSvcCores, s.observeLatency)
	if err != nil {
		return nil, err
	}
	qps := svcCfg.SaturationQPS(fairSvcCores) * cfg.LoadFraction
	var arr workload.ArrivalProcess
	if cfg.LoadShape != nil {
		arr, err = workload.NewShapedPoisson(qps, cfg.LoadShape)
	} else {
		arr, err = workload.NewPoisson(qps)
	}
	if err != nil {
		return nil, err
	}
	s.gen, err = client.New(s.eng, s.rng.Split(2), s.svc, arr)
	if err != nil {
		return nil, err
	}

	// Approximate applications under the instrumentation substrate.
	for i, name := range cfg.AppNames {
		prof, err := resolveApp(cfg, name)
		if err != nil {
			return nil, err
		}
		variants, err := dse.VariantsFor(prof)
		if err != nil {
			return nil, err
		}
		if cfg.AppWorkScale != nil {
			// Resumed job: the instance carries only the remaining work. The
			// variant table is unaffected — effects are relative multipliers.
			prof.NominalExecSec *= cfg.AppWorkScale[i]
		}
		cores := s.alloc.Cores(tenants[i+1])
		inst, err := app.NewInstance(s.eng, s.rng.Split(uint64(10+i)), prof, variants, cores, s.appFinished)
		if err != nil {
			return nil, err
		}
		opts := dyninst.Options{OverheadOverride: -1}
		if !s.instrumented() {
			opts.OverheadOverride = 0
		}
		proc, err := dyninst.Launch(s.eng, inst, opts)
		if err != nil {
			return nil, err
		}
		s.apps = append(s.apps, proc)
		s.appNames = append(s.appNames, name)
		s.initCores = append(s.initCores, cores)
	}
	s.yielded = make([]int, len(s.apps))
	s.maxYield = make([]int, len(s.apps))
	s.runningApps = len(s.apps)

	// Runtime policy.
	s.policy = cfg.Policy
	if s.policy == nil {
		switch cfg.Runtime {
		case Pliant:
			s.policy = core.NewPliantPolicy(s.rng.Split(3))
		case Precise:
			s.policy = core.PrecisePolicy{}
		case StaticApprox:
			s.policy = core.StaticApproxPolicy{}
		case ImpactAware:
			s.policy = core.NewImpactAwarePolicy(s.rng.Split(3))
		case Learner:
			s.policy = core.NewLearnerPolicy(s.rng.Split(3))
		default:
			return nil, fmt.Errorf("colocate: unknown runtime %v", cfg.Runtime)
		}
	}
	if cfg.FixedVariants != nil {
		s.policy = nil // pinned-variant mode: no controller
	}

	// Monitor on the service's QoS.
	monCfg := monitor.DefaultConfig(svcCfg.QoS)
	monCfg.Interval = cfg.DecisionInterval
	if cfg.Scratch != nil {
		monCfg.Scratch = cfg.Scratch.monitorHist()
	}
	s.mon, err = monitor.New(s.eng, monCfg, s.onReport)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// instrumented reports whether apps run under the instrumentation overhead:
// any runtime that may switch variants needs the substrate attached. The
// precise baseline runs uninstrumented unless explicitly requested.
func (s *scenario) instrumented() bool {
	if s.cfg.InstrumentApps {
		return true
	}
	if s.cfg.FixedVariants != nil {
		return true
	}
	return !(s.cfg.Policy == nil && s.cfg.Runtime == Precise)
}

func (s *scenario) observeLatency(d sim.Duration) {
	s.histogram.Record(float64(d))
	s.mon.Observe(d)
}

func (s *scenario) appFinished() {
	s.runningApps--
	s.refreshContention()
	if s.runningApps == 0 {
		// All applications done: the colocation study is over.
		s.eng.Stop()
	}
}

// tenantOf returns the allocation tenant ID for app index i.
func (s *scenario) tenantOf(i int) platform.TenantID {
	return platform.TenantID(fmt.Sprintf("app%d:%s", i, s.appNames[i]))
}

// refreshContention recomputes the interference model from current demands
// and pushes slowdowns into the service and every app.
func (s *scenario) refreshContention() {
	now := s.eng.Now()
	demands := make([]interference.Demand, 0, len(s.apps)+1)
	demands = append(demands, s.svc.Demand(s.svcTenant))
	for i, proc := range s.apps {
		demands = append(demands, proc.App().Demand(s.tenantOf(i), now))
	}
	res := s.model.Evaluate(demands)
	s.svc.SetSlowdown(res.Slowdown(s.svcTenant) * s.freqSlow)
	for i, proc := range s.apps {
		proc.App().SetSlowdown(res.Slowdown(s.tenantOf(i)) * s.freqSlow)
	}
}

// advanceApps brings every app model up to the current time.
func (s *scenario) advanceApps() {
	now := s.eng.Now()
	for _, proc := range s.apps {
		proc.App().Advance(now)
	}
}

// onReport is the decision-interval callback: record series, then let the
// policy actuate.
func (s *scenario) onReport(r monitor.Report) {
	s.advanceApps()
	s.intervals++
	if r.Violation {
		s.violations++
	}
	if r.P99 > s.maxP99 {
		s.maxP99 = r.P99
	}
	s.sumP99 += float64(r.P99)
	s.intervalP99s = append(s.intervalP99s, float64(r.P99))

	t := r.At.Seconds()
	s.trace.Series("p99").Append(t, float64(r.P99)/float64(r.QoS))
	s.trace.Series("svc.cores").Append(t, float64(s.svc.Cores()))
	for i, proc := range s.apps {
		s.trace.Series("variant."+s.appNames[i]).Append(t, float64(proc.Variant()))
		s.trace.Series("yielded."+s.appNames[i]).Append(t, float64(s.yielded[i]))
	}

	if s.policy == nil {
		s.emitReport(r)
		return
	}
	snapshot := core.Snapshot{
		Report:         r,
		Apps:           s.appViews(),
		ServiceCores:   s.svc.Cores(),
		MinAppCores:    s.cfg.MinAppCores,
		SlackThreshold: s.cfg.SlackThreshold,
	}
	for _, act := range s.policy.Decide(snapshot) {
		s.apply(act)
	}
	s.refreshContention()
	s.emitReport(r)
}

// emitReport forwards the report to the external telemetry observer, if any,
// enriching it with the interval's energy figures when a model is attached.
func (s *scenario) emitReport(r monitor.Report) {
	if s.cfg.EnergyModel != nil {
		r = s.accountEnergy(r)
	}
	if s.cfg.OnReport != nil {
		s.cfg.OnReport(r)
	}
}

// accountEnergy folds one decision interval into the node's energy ledger:
// socket utilization from the apps' core occupancy plus the service's
// measured throughput against its frequency-adjusted capacity, watts from
// the power curve, joules integrated over virtual time. Pure arithmetic —
// the telemetry path stays allocation-free.
func (s *scenario) accountEnergy(r monitor.Report) monitor.Report {
	usable := s.cfg.Platform.UsableCores()
	if usable == 0 {
		return r
	}
	appCores := 0
	for _, proc := range s.apps {
		if !proc.App().Done() {
			appCores += proc.App().Cores()
		}
	}
	svcUtil := 0.0
	if sec := r.Interval.Seconds(); sec > 0 {
		capacity := s.svcCfg.SaturationQPS(s.svc.Cores()) / s.freqSlow
		if capacity > 0 {
			svcUtil = float64(r.Seen) / (capacity * sec)
			if svcUtil > 1 {
				svcUtil = 1
			}
		}
	}
	util := (float64(appCores) + svcUtil*float64(s.svc.Cores())) / float64(usable)
	watts := s.cfg.EnergyModel.Power(util, s.freqGHz)
	s.acc.Advance(r.At, watts)
	s.lastWatts = watts
	s.utilSum += util

	r.Util = util
	r.Watts = watts
	r.Joules = watts * r.Interval.Seconds()
	s.trace.Series("watts").Append(r.At.Seconds(), watts)
	return r
}

func (s *scenario) appViews() []core.AppView {
	views := make([]core.AppView, len(s.apps))
	for i, proc := range s.apps {
		a := proc.App()
		variants := a.Variants()
		quality := 0.0
		if n := a.MostApproximate(); n > 0 {
			quality = variants[n].Inaccuracy / float64(n)
		}
		views[i] = core.AppView{
			Name:            s.appNames[i],
			Variant:         a.Variant(),
			MostApproximate: a.MostApproximate(),
			Cores:           a.Cores(),
			YieldedCores:    s.yielded[i],
			Done:            a.Done(),
			QualityPerStep:  quality,
		}
	}
	return views
}

func (s *scenario) apply(act core.Action) {
	if act.App < 0 || act.App >= len(s.apps) {
		return
	}
	proc := s.apps[act.App]
	switch act.Kind {
	case core.SwitchVariant:
		// Actuate through the substrate: deliver the mapped signal.
		_ = proc.SwitchTo(act.To)
	case core.ReclaimCore:
		tenant := s.tenantOf(act.App)
		if s.alloc.Cores(tenant) <= s.cfg.MinAppCores {
			return
		}
		if err := s.alloc.Move(tenant, s.svcTenant, 1); err != nil {
			return
		}
		s.yielded[act.App]++
		if s.yielded[act.App] > s.maxYield[act.App] {
			s.maxYield[act.App] = s.yielded[act.App]
		}
		proc.App().SetCores(s.alloc.Cores(tenant))
		s.svc.SetCores(s.alloc.Cores(s.svcTenant))
	case core.ReturnCore:
		if s.yielded[act.App] == 0 {
			return
		}
		tenant := s.tenantOf(act.App)
		if err := s.alloc.Move(s.svcTenant, tenant, 1); err != nil {
			return
		}
		s.yielded[act.App]--
		proc.App().SetCores(s.alloc.Cores(tenant))
		s.svc.SetCores(s.alloc.Cores(s.svcTenant))
	}
}

// physicsPeriod is how often app progress and phase-dependent contention are
// re-evaluated between decisions.
const physicsPeriod = 200 * sim.Millisecond

func (s *scenario) run() (Result, error) {
	// Pin fixed variants after a trivial delay so the dyninst switch
	// latency is absorbed before measurement matters.
	if s.cfg.FixedVariants != nil {
		for i, proc := range s.apps {
			if v, ok := s.cfg.FixedVariants[s.appNames[i]]; ok {
				_ = proc.SwitchTo(v)
			}
		}
	}
	s.gen.Start()
	stopPhysics := s.eng.Ticker(physicsPeriod, func(sim.Time) {
		s.advanceApps()
		s.refreshContention()
	})
	defer stopPhysics()

	horizon := safetyHorizon
	if s.cfg.MaxDuration > 0 {
		horizon = s.cfg.MaxDuration
	}
	s.eng.Run(sim.Time(horizon))
	s.advanceApps()
	if s.cfg.Scratch != nil {
		s.cfg.Scratch.keepIntervalBuf(s.intervalP99s)
	}

	res := Result{
		Service:        service.Preset(s.cfg.Service).Name,
		Runtime:        s.runtimeName(),
		QoS:            service.Preset(s.cfg.Service).Scaled(s.cfg.TimeScale).QoS,
		OverallP99:     sim.Duration(s.histogram.P99()),
		MaxIntervalP99: s.maxP99,
		ViolationFrac:  0,
		Intervals:      s.intervals,
		Duration:       s.eng.Now().Sub(0),
		Served:         s.svc.Served(),
		Dropped:        s.svc.Dropped(),
		Trace:          s.trace,
	}
	if s.intervals > 0 {
		res.ViolationFrac = float64(s.violations) / float64(s.intervals)
		res.MeanIntervalP99 = sim.Duration(s.sumP99 / float64(s.intervals))
		med := stats.Quantiles(s.intervalP99s, 0.5)
		res.TypicalP99 = sim.Duration(med[0])
	}
	if s.cfg.EnergyModel != nil {
		// Close the final partial interval at the last observed draw.
		s.acc.Advance(s.eng.Now(), s.lastWatts)
		res.Joules = s.acc.Joules
		if sec := res.Duration.Seconds(); sec > 0 {
			res.MeanWatts = res.Joules / sec
		}
		if s.intervals > 0 {
			res.MeanUtil = s.utilSum / float64(s.intervals)
		}
	}
	for i, proc := range s.apps {
		a := proc.App()
		prof := a.Profile()
		res.Apps = append(res.Apps, AppResult{
			Name:         prof.Name,
			Done:         a.Done(),
			ExecTime:     a.ExecTime(),
			RelNominal:   a.RelativeExecTime(),
			RelFairShare: a.ExecTime().Seconds() / prof.ExecTimeOn(s.initCores[i]),
			Progress:     a.Progress(),
			Inaccuracy:   a.Inaccuracy(),
			FinalCores:   a.Cores(),
			MaxYielded:   s.maxYield[i],
			VariantMax:   a.MostApproximate(),
			Switches:     a.Switches(),
			DynOverhead:  prof.DynOverhead,
		})
	}
	return res, nil
}

func (s *scenario) runtimeName() string {
	if s.cfg.FixedVariants != nil {
		return "fixed-variant"
	}
	if s.policy != nil {
		return s.policy.Name()
	}
	return s.cfg.Runtime.String()
}
