package colocate

import (
	"testing"

	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
)

// fastCfg returns the scaled-down test profile: identical utilization
// arithmetic, ~16x fewer simulated requests.
func fastCfg(cls service.Class, apps ...string) Config {
	return Config{
		Seed:         1,
		Service:      cls,
		LoadFraction: 0.78,
		AppNames:     apps,
		TimeScale:    16,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := fastCfg(service.NGINX)
	if _, err := Run(bad); err == nil {
		t.Fatal("no apps accepted")
	}
	bad = fastCfg(service.NGINX, "canneal")
	bad.LoadFraction = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative load accepted")
	}
	bad = fastCfg(service.NGINX, "no-such-app")
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown app accepted")
	}
	bad = fastCfg(service.NGINX, "canneal")
	bad.DecisionInterval = sim.Millisecond
	if _, err := Run(bad); err == nil {
		t.Fatal("sub-10ms interval accepted")
	}
}

func TestPreciseBaselineViolatesQoS(t *testing.T) {
	skipIfShort(t)
	// The paper's headline precise-mode result: colocating an approximate
	// app with an interactive service under a fair static allocation
	// violates QoS badly (NGINX 2.1–9.8x).
	cfg := fastCfg(service.NGINX, "canneal")
	cfg.Runtime = Precise
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeetsQoS() {
		t.Fatalf("precise colocation met QoS: p99/QoS = %.2f", res.TypicalOverQoS())
	}
	if r := res.TypicalOverQoS(); r < 1.5 || r > 20 {
		t.Fatalf("precise violation ratio %.2f outside plausible range", r)
	}
	// Baseline apps run precise with zero inaccuracy.
	if res.Apps[0].Inaccuracy != 0 {
		t.Fatalf("precise run accrued inaccuracy %.2f", res.Apps[0].Inaccuracy)
	}
	if res.Runtime != "precise" {
		t.Fatalf("runtime = %q", res.Runtime)
	}
}

func TestPliantMeetsQoSWithBoundedInaccuracy(t *testing.T) {
	skipIfShort(t)
	// The paper's headline Pliant result: QoS preserved, inaccuracy within
	// the 5% budget (small overshoot allowed for nondeterministic elision,
	// as in canneal+memcached's 5.4%).
	for _, tc := range []struct {
		cls service.Class
		app string
	}{
		{service.NGINX, "canneal"},
		{service.Memcached, "Bayesian"},
		{service.MongoDB, "SNP"},
	} {
		cfg := fastCfg(tc.cls, tc.app)
		cfg.Runtime = Pliant
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Apps[0].Done {
			t.Errorf("%v+%s: app did not finish (progress stuck)", tc.cls, tc.app)
			continue
		}
		if r := res.TypicalOverQoS(); r > 1.1 {
			t.Errorf("%v+%s: pliant steady p99/QoS = %.2f, want ≈≤1", tc.cls, tc.app, r)
		}
		if res.ViolationFrac > 0.40 {
			t.Errorf("%v+%s: %d%% of intervals violating, want bounded bursts",
				tc.cls, tc.app, int(res.ViolationFrac*100))
		}
		if ia := res.Apps[0].Inaccuracy; ia > 6.0 {
			t.Errorf("%v+%s: inaccuracy %.2f%% far above the 5%% budget", tc.cls, tc.app, ia)
		}
	}
}

func TestPliantBeatsPrecise(t *testing.T) {
	skipIfShort(t)
	base := fastCfg(service.Memcached, "PLSA")
	base.Runtime = Precise
	precise, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	pl := fastCfg(service.Memcached, "PLSA")
	pl.Runtime = Pliant
	pliant, err := Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	if pliant.OverallP99 >= precise.OverallP99 {
		t.Fatalf("pliant p99 %v not better than precise %v", pliant.OverallP99, precise.OverallP99)
	}
	if pliant.ViolationFrac >= precise.ViolationFrac && precise.ViolationFrac > 0 {
		t.Fatalf("pliant violated more intervals (%.2f) than precise (%.2f)",
			pliant.ViolationFrac, precise.ViolationFrac)
	}
}

func TestDeterminism(t *testing.T) {
	skipIfShort(t)
	cfg := fastCfg(service.NGINX, "streamcluster")
	cfg.Runtime = Pliant
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallP99 != b.OverallP99 || a.Served != b.Served ||
		a.Apps[0].Inaccuracy != b.Apps[0].Inaccuracy ||
		a.Apps[0].ExecTime != b.Apps[0].ExecTime {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallP99 == c.OverallP99 && a.Served == c.Served {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestMultiAppColocation(t *testing.T) {
	skipIfShort(t)
	// Paper Sec. 6.3 / Fig. 6: canneal + Bayesian sharing a node with an
	// interactive service; round-robin keeps penalties balanced.
	cfg := fastCfg(service.NGINX, "canneal", "Bayesian")
	cfg.Runtime = Pliant
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("%d app results", len(res.Apps))
	}
	for _, a := range res.Apps {
		if !a.Done {
			t.Errorf("%s did not finish", a.Name)
		}
		if a.Inaccuracy > 6 {
			t.Errorf("%s inaccuracy %.2f%%", a.Name, a.Inaccuracy)
		}
	}
	if r := res.TypicalOverQoS(); r > 1.1 {
		t.Errorf("2-app pliant steady p99/QoS = %.2f", r)
	}
}

func TestFixedVariantPinsApp(t *testing.T) {
	cfg := fastCfg(service.MongoDB, "canneal")
	cfg.FixedVariants = map[string]int{"canneal": 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "fixed-variant" {
		t.Fatalf("runtime = %q", res.Runtime)
	}
	// The app ran pinned at variant 2: its inaccuracy must equal that
	// variant's quality loss (within nondeterministic noise).
	if res.Apps[0].Inaccuracy <= 0 {
		t.Fatal("pinned approximate variant accrued no inaccuracy")
	}
	// No cores may move in pinned mode.
	if res.Apps[0].MaxYielded != 0 {
		t.Fatal("fixed-variant mode moved cores")
	}
}

func TestTraceSeriesRecorded(t *testing.T) {
	skipIfShort(t)
	cfg := fastCfg(service.NGINX, "canneal")
	cfg.Runtime = Pliant
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"p99", "svc.cores", "variant.canneal", "yielded.canneal"} {
		if !res.Trace.Has(name) {
			t.Fatalf("missing trace series %q", name)
		}
		if res.Trace.Series(name).Len() == 0 {
			t.Fatalf("empty trace series %q", name)
		}
	}
	if res.Intervals == 0 || res.Trace.Series("p99").Len() != res.Intervals {
		t.Fatalf("intervals=%d, p99 points=%d", res.Intervals, res.Trace.Series("p99").Len())
	}
}

func TestMaxDurationBoundsRun(t *testing.T) {
	cfg := fastCfg(service.NGINX, "PLSA")
	cfg.Runtime = Pliant
	cfg.MaxDuration = 5 * sim.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration > 5*sim.Second {
		t.Fatalf("duration %v exceeded max", res.Duration)
	}
	if res.Apps[0].Done {
		t.Fatal("55s app finished in 5s")
	}
}

func TestConservationOfCores(t *testing.T) {
	skipIfShort(t)
	cfg := fastCfg(service.Memcached, "canneal", "k-means")
	cfg.Runtime = Pliant
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At every decision interval, service cores + app cores + yielded
	// bookkeeping must be consistent: svc.cores - fairShare equals the sum
	// of currently yielded cores.
	usable := 16 // TablePlatform: 22 - 6 irq
	fair := usable / 3
	svcSeries := res.Trace.Series("svc.cores")
	y1 := res.Trace.Series("yielded.canneal")
	y2 := res.Trace.Series("yielded.k-means")
	for i, p := range svcSeries.Points {
		got := p.V - float64(fair+usable%3) // svc gets fair share + remainder
		want := y1.Points[i].V + y2.Points[i].V
		if got != want {
			t.Fatalf("interval %d: svc extra cores %.0f != yielded sum %.0f", i, got, want)
		}
	}
}

func TestRuntimeKindStrings(t *testing.T) {
	if Pliant.String() != "pliant" || Precise.String() != "precise" ||
		StaticApprox.String() != "static-approx" || ImpactAware.String() != "impact-aware" {
		t.Fatal("runtime names wrong")
	}
}

// skipIfShort gates full-scale scenario tests so `go test -short ./...`
// finishes in seconds while the full run still exercises everything.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale scenario; skipped in -short")
	}
}
