package colocate

import (
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
)

// Scratch is reusable per-episode simulation state: the event engine (heap
// and slot arenas), the whole-run latency histogram, the monitor's interval
// histogram, and the per-interval p99 buffer. An online scheduler runs
// thousands of short colocation episodes; threading one Scratch per worker
// through Config.Scratch lets every episode after the first reuse these
// buffers instead of reallocating them.
//
// A Scratch is owned by one sequential stream of episodes — it is not safe
// for concurrent use. Reuse is invisible to results: every component resets
// to its initial state, so runs are bit-identical with and without a Scratch.
type Scratch struct {
	eng     *sim.Engine
	hist    *stats.Histogram
	monHist *stats.Histogram
	p99s    []float64
}

// engine returns the scratch engine reset to t=0, creating it on first use.
func (sc *Scratch) engine() *sim.Engine {
	if sc.eng == nil {
		sc.eng = sim.NewEngine()
	} else {
		sc.eng.Reset()
	}
	return sc.eng
}

// latencyHist returns the scratch whole-run histogram, cleared.
func (sc *Scratch) latencyHist() *stats.Histogram {
	if sc.hist == nil {
		sc.hist = stats.NewLatencyHistogram()
	} else {
		sc.hist.Reset()
	}
	return sc.hist
}

// monitorHist returns the scratch monitor histogram, cleared.
func (sc *Scratch) monitorHist() *stats.Histogram {
	if sc.monHist == nil {
		sc.monHist = stats.NewLatencyHistogram()
	} else {
		sc.monHist.Reset()
	}
	return sc.monHist
}

// intervalBuf returns the reusable per-interval p99 buffer, emptied.
func (sc *Scratch) intervalBuf() []float64 { return sc.p99s[:0] }

// keepIntervalBuf hands the (possibly grown) buffer back for the next
// episode.
func (sc *Scratch) keepIntervalBuf(buf []float64) { sc.p99s = buf }
