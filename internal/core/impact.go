package core

import "github.com/approx-sched/pliant/internal/sim"

// ImpactAwarePolicy is the extension the paper sketches in Sec. 6.5:
// instead of arbitrating among colocated approximate applications
// round-robin, it considers the relative impact of approximation on each,
// and adjusts quality/resources from the applications that are hurt the
// least. Concretely, when penalizing it picks the application with the
// lowest output-quality cost per variant step (stepping one level at a time
// rather than jumping), and when reverting it restores the application whose
// quality is suffering most.
type ImpactAwarePolicy struct {
	// SlackPatience mirrors PliantPolicy.SlackPatience: consecutive
	// high-slack intervals required before each revert step.
	SlackPatience int

	rng        *sim.RNG
	yieldStack []int
	slackRun   int
}

// NewImpactAwarePolicy returns the Sec. 6.5 impact-aware arbiter.
func NewImpactAwarePolicy(rng *sim.RNG) *ImpactAwarePolicy {
	return &ImpactAwarePolicy{rng: rng, SlackPatience: DefaultSlackPatience}
}

// Name identifies the policy.
func (p *ImpactAwarePolicy) Name() string { return "impact-aware" }

// Decide implements Policy.
func (p *ImpactAwarePolicy) Decide(s Snapshot) []Action {
	active := activeApps(s)
	if len(active) == 0 {
		return nil
	}
	if s.Report.Violation {
		p.slackRun = 0
		// Deepen approximation on the app whose quality suffers least per
		// step.
		if idx, ok := p.cheapest(s, active, func(a AppView) bool {
			return a.Variant < a.MostApproximate
		}); ok {
			return []Action{{Kind: SwitchVariant, App: idx, To: s.Apps[idx].Variant + 1}}
		}
		// Everyone saturated: reclaim a core from the app with the most
		// cores (it loses the smallest relative share).
		best, bestCores := -1, -1
		for _, i := range active {
			if s.Apps[i].Cores > s.MinAppCores && s.Apps[i].Cores > bestCores {
				best, bestCores = i, s.Apps[i].Cores
			}
		}
		if best >= 0 {
			p.yieldStack = append(p.yieldStack, best)
			return []Action{{Kind: ReclaimCore, App: best}}
		}
		return nil
	}
	if s.Report.Slack > s.SlackThreshold {
		p.slackRun++
		patience := p.SlackPatience
		if patience < 1 {
			patience = 1
		}
		if p.slackRun < patience {
			return nil
		}
		p.slackRun = 0
		for len(p.yieldStack) > 0 {
			idx := p.yieldStack[len(p.yieldStack)-1]
			p.yieldStack = p.yieldStack[:len(p.yieldStack)-1]
			if s.Apps[idx].Done || s.Apps[idx].YieldedCores == 0 {
				continue
			}
			return []Action{{Kind: ReturnCore, App: idx}}
		}
		// Restore quality where it hurts most per step.
		if idx, ok := p.dearest(s, active, func(a AppView) bool {
			return a.Variant > 0
		}); ok {
			return []Action{{Kind: SwitchVariant, App: idx, To: s.Apps[idx].Variant - 1}}
		}
		return nil
	}
	p.slackRun = 0
	return nil
}

// cheapest returns the eligible app with the lowest quality cost per step.
func (p *ImpactAwarePolicy) cheapest(s Snapshot, active []int, pred func(AppView) bool) (int, bool) {
	best, bestCost := -1, 0.0
	for _, i := range active {
		a := s.Apps[i]
		if !pred(a) {
			continue
		}
		if best == -1 || a.QualityPerStep < bestCost {
			best, bestCost = i, a.QualityPerStep
		}
	}
	return best, best >= 0
}

// dearest returns the eligible app with the highest quality cost per step.
func (p *ImpactAwarePolicy) dearest(s Snapshot, active []int, pred func(AppView) bool) (int, bool) {
	best, bestCost := -1, -1.0
	for _, i := range active {
		a := s.Apps[i]
		if !pred(a) {
			continue
		}
		if a.QualityPerStep > bestCost {
			best, bestCost = i, a.QualityPerStep
		}
	}
	return best, best >= 0
}
