package core

import (
	"math"

	"github.com/approx-sched/pliant/internal/sim"
)

// LearnerPolicy implements the runtime-learning extension the paper sketches
// in Sec. 6.5 for public-cloud settings where offline profiling is
// impossible: "the relative impact of approximate versions can be learned at
// runtime". The policy knows only each application's variant *count* (the
// signal map the dyninst substrate exposes) — not the variants' measured
// time/traffic effects — and learns online how much tail-latency relief each
// (app, variant) pair delivers, from the monitor reports that follow its own
// actuations.
//
// Mechanics: after switching app a to variant v, the next report's
// normalized p99 improvement is credited to Q[a][v] with an exponential
// moving average. On violation the policy picks the (app, step-up) arm with
// the best optimistic estimate (mean + exploration bonus, a UCB1-style
// rule); core reclamation remains the fallback once all apps are saturated.
// On sustained slack it steps back the arm with the worst learned relief, so
// quality is restored where approximation demonstrably buys the least.
type LearnerPolicy struct {
	// SlackPatience mirrors PliantPolicy.SlackPatience.
	SlackPatience int

	// ExplorationBonus scales the optimism term; 0 disables exploration.
	ExplorationBonus float64

	// Alpha is the EMA weight for new observations, in (0, 1].
	Alpha float64

	rng        *sim.RNG
	q          map[int]map[int]*armEstimate // app -> target variant -> estimate
	trials     int
	lastAction *Action // the actuation awaiting credit
	lastP99    float64 // p99/QoS before the pending actuation
	yieldStack []int
	slackRun   int
}

type armEstimate struct {
	mean   float64
	visits int
}

// NewLearnerPolicy returns the Sec. 6.5 online-learning policy.
func NewLearnerPolicy(rng *sim.RNG) *LearnerPolicy {
	return &LearnerPolicy{
		SlackPatience:    DefaultSlackPatience,
		ExplorationBonus: 0.5,
		Alpha:            0.4,
		rng:              rng,
		q:                make(map[int]map[int]*armEstimate),
	}
}

// Name identifies the policy.
func (p *LearnerPolicy) Name() string { return "learner" }

// Decide implements Policy.
func (p *LearnerPolicy) Decide(s Snapshot) []Action {
	p.credit(s)

	active := activeApps(s)
	if len(active) == 0 {
		return nil
	}
	if s.Report.Violation {
		p.slackRun = 0
		return p.escalate(s, active)
	}
	if s.Report.Slack > s.SlackThreshold {
		p.slackRun++
		patience := p.SlackPatience
		if patience < 1 {
			patience = 1
		}
		if p.slackRun < patience {
			return nil
		}
		p.slackRun = 0
		return p.relax(s, active)
	}
	p.slackRun = 0
	return nil
}

// credit attributes the change in normalized p99 since the last actuation to
// the arm that caused it.
func (p *LearnerPolicy) credit(s Snapshot) {
	cur := p99Norm(s)
	if p.lastAction != nil && p.lastAction.Kind == SwitchVariant {
		relief := p.lastP99 - cur // positive = the switch helped
		arm := p.arm(p.lastAction.App, p.lastAction.To)
		arm.mean = (1-p.Alpha)*arm.mean + p.Alpha*relief
		arm.visits++
		p.trials++
	}
	p.lastAction = nil
	p.lastP99 = cur
}

func p99Norm(s Snapshot) float64 {
	if s.Report.QoS <= 0 {
		return 0
	}
	return float64(s.Report.P99) / float64(s.Report.QoS)
}

func (p *LearnerPolicy) arm(app, variant int) *armEstimate {
	m, ok := p.q[app]
	if !ok {
		m = make(map[int]*armEstimate)
		p.q[app] = m
	}
	a, ok := m[variant]
	if !ok {
		a = &armEstimate{}
		//pliant:allow sharedstate — p.q is policy-instance state: each scenario constructs its own LearnerPolicy and drives it from its own event loop
		m[variant] = a
	}
	return a
}

// escalate picks the best learned (or most promising unexplored) step-up.
func (p *LearnerPolicy) escalate(s Snapshot, active []int) []Action {
	bestApp, bestScore := -1, math.Inf(-1)
	for _, i := range active {
		a := s.Apps[i]
		if a.Variant >= a.MostApproximate {
			continue
		}
		arm := p.arm(i, a.Variant+1)
		score := arm.mean + p.bonus(arm.visits)
		if score > bestScore {
			bestApp, bestScore = i, score
		}
	}
	if bestApp >= 0 {
		act := Action{Kind: SwitchVariant, App: bestApp, To: s.Apps[bestApp].Variant + 1}
		p.lastAction = &act
		return []Action{act}
	}
	// Everyone saturated: fall back to core reclamation, round-robin-free
	// (largest app first, as the impact-aware policy does).
	best, bestCores := -1, -1
	for _, i := range active {
		if s.Apps[i].Cores > s.MinAppCores && s.Apps[i].Cores > bestCores {
			best, bestCores = i, s.Apps[i].Cores
		}
	}
	if best >= 0 {
		p.yieldStack = append(p.yieldStack, best)
		return []Action{{Kind: ReclaimCore, App: best}}
	}
	return nil
}

// bonus is the UCB-style optimism term: unvisited arms look attractive.
func (p *LearnerPolicy) bonus(visits int) float64 {
	if p.ExplorationBonus == 0 {
		return 0
	}
	return p.ExplorationBonus * math.Sqrt(math.Log(float64(p.trials)+math.E)/float64(visits+1))
}

// relax returns cores first, then steps back the variant whose last step
// delivered the least learned relief.
func (p *LearnerPolicy) relax(s Snapshot, active []int) []Action {
	for len(p.yieldStack) > 0 {
		idx := p.yieldStack[len(p.yieldStack)-1]
		p.yieldStack = p.yieldStack[:len(p.yieldStack)-1]
		if s.Apps[idx].Done || s.Apps[idx].YieldedCores == 0 {
			continue
		}
		return []Action{{Kind: ReturnCore, App: idx}}
	}
	worstApp, worstScore := -1, math.Inf(1)
	for _, i := range active {
		a := s.Apps[i]
		if a.Variant == 0 {
			continue
		}
		arm := p.arm(i, a.Variant)
		if arm.mean < worstScore {
			worstApp, worstScore = i, arm.mean
		}
	}
	if worstApp >= 0 {
		act := Action{Kind: SwitchVariant, App: worstApp, To: s.Apps[worstApp].Variant - 1}
		p.lastAction = &act
		return []Action{act}
	}
	return nil
}

// Estimate exposes the learned relief for an (app, variant) arm —
// 0 and false if never observed. Useful for reporting and tests.
func (p *LearnerPolicy) Estimate(app, variant int) (float64, bool) {
	if m, ok := p.q[app]; ok {
		if a, ok := m[variant]; ok && a.visits > 0 {
			return a.mean, true
		}
	}
	return 0, false
}
