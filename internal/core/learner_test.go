package core

import (
	"testing"

	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/sim"
)

// snapWithP99 builds a snapshot with explicit p99/QoS for learner crediting.
func snapWithP99(p99OverQoS float64, apps ...AppView) Snapshot {
	qos := sim.Duration(1000)
	s := Snapshot{
		Report: monitor.Report{
			P99:       sim.Duration(p99OverQoS * 1000),
			QoS:       qos,
			Violation: p99OverQoS > 1,
			Slack:     1 - p99OverQoS,
		},
		Apps:           apps,
		ServiceCores:   8,
		MinAppCores:    1,
		SlackThreshold: 0.10,
	}
	return s
}

func learner() *LearnerPolicy {
	p := NewLearnerPolicy(sim.NewRNG(1))
	p.SlackPatience = 1
	return p
}

func TestLearnerEscalatesIncrementally(t *testing.T) {
	p := learner()
	acts := p.Decide(snapWithP99(3.0, appView(0, 4, 8, 0)))
	if len(acts) != 1 || acts[0].Kind != SwitchVariant || acts[0].To != 1 {
		t.Fatalf("acts = %v, want step 0→1 (learner has no prior to justify jumping)", acts)
	}
}

func TestLearnerCreditsRelief(t *testing.T) {
	p := learner()
	// Violation at 3.0x: learner steps app to v1.
	first := p.Decide(snapWithP99(3.0, appView(0, 4, 8, 0)))
	if len(first) != 1 {
		t.Fatal("no action")
	}
	// Next interval: p99 fell to 1.5x. The arm (app0, v1) must be credited
	// with relief 1.5.
	_ = p.Decide(snapWithP99(1.5, appView(1, 4, 8, 0)))
	relief, ok := p.Estimate(0, 1)
	if !ok {
		t.Fatal("arm never credited")
	}
	if relief <= 0 {
		t.Fatalf("relief = %v, want positive", relief)
	}
}

func TestLearnerPrefersProvenArm(t *testing.T) {
	p := learner()
	p.ExplorationBonus = 0 // pure exploitation for determinism
	a := appView(0, 4, 4, 0)
	b := appView(0, 4, 4, 0)

	// Teach: stepping app 0 helps a lot, stepping app 1 does nothing.
	_ = p.Decide(snapWithP99(3.0, a, b)) // some first action
	// Manually implant estimates (the public Estimate path is read-only, so
	// replay history instead): app0→v1 credited with big relief.
	p.arm(0, 1).mean = 2.0
	p.arm(0, 1).visits = 3
	p.arm(1, 1).mean = 0.01
	p.arm(1, 1).visits = 3

	acts := p.Decide(snapWithP99(2.5, a, b))
	if len(acts) != 1 || acts[0].App != 0 {
		t.Fatalf("acts = %v, want escalation on the proven app 0", acts)
	}
}

func TestLearnerReclaimsWhenSaturated(t *testing.T) {
	p := learner()
	acts := p.Decide(snapWithP99(3.0, appView(4, 4, 8, 0)))
	if len(acts) != 1 || acts[0].Kind != ReclaimCore {
		t.Fatalf("acts = %v, want core reclaim at saturation", acts)
	}
	// Slack: core returns first.
	acts = p.Decide(snapWithP99(0.3, appView(4, 4, 7, 1)))
	if len(acts) != 1 || acts[0].Kind != ReturnCore {
		t.Fatalf("acts = %v, want core return", acts)
	}
}

func TestLearnerRelaxesWorstArm(t *testing.T) {
	p := learner()
	p.ExplorationBonus = 0
	a := appView(2, 4, 4, 0) // current variant 2
	b := appView(2, 4, 4, 0)
	p.arm(0, 2).mean = 1.5 // app0's current variant delivers big relief
	p.arm(0, 2).visits = 2
	p.arm(1, 2).mean = 0.05 // app1's delivers almost nothing
	p.arm(1, 2).visits = 2
	acts := p.Decide(snapWithP99(0.2, a, b))
	if len(acts) != 1 || acts[0].Kind != SwitchVariant || acts[0].App != 1 || acts[0].To != 1 {
		t.Fatalf("acts = %v, want step-down on the useless arm (app 1)", acts)
	}
}

func TestLearnerExplorationPrefersUnvisited(t *testing.T) {
	p := learner()
	a := appView(0, 4, 4, 0)
	b := appView(0, 4, 4, 0)
	// App 0's first step is known mediocre; app 1 never tried. With the
	// default optimism, the unvisited arm wins.
	p.arm(0, 1).mean = 0.05
	p.arm(0, 1).visits = 5
	p.trials = 5
	acts := p.Decide(snapWithP99(2.0, a, b))
	if len(acts) != 1 || acts[0].App != 1 {
		t.Fatalf("acts = %v, want exploration of app 1", acts)
	}
}

func TestLearnerEstimateUnknown(t *testing.T) {
	p := learner()
	if _, ok := p.Estimate(0, 1); ok {
		t.Fatal("unvisited arm reported an estimate")
	}
}

func TestLearnerHoldsInBand(t *testing.T) {
	p := learner()
	if acts := p.Decide(snapWithP99(0.95, appView(2, 4, 8, 0))); len(acts) != 0 {
		t.Fatalf("acts = %v, want hold at slack 0.05", acts)
	}
}
