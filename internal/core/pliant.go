package core

import (
	"github.com/approx-sched/pliant/internal/sim"
)

// PliantPolicy is the paper's runtime algorithm (Fig. 3 and Sec. 4.3–4.4).
//
// On a QoS violation:
//   - If some application is running below its most approximate variant,
//     switch one application (round-robin; the first is chosen randomly)
//     directly to its most approximate variant — jumping rather than
//     stepping, "to avoid prolonged degraded performance".
//   - Once every application runs at its most approximate variant, reclaim
//     cores: one application and one core per interval, round-robin.
//
// When QoS is met with slack above the threshold (10%), revert the most
// recent action class incrementally: first return reclaimed cores (one per
// interval, most recently penalized application first), then step variants
// back toward precise one level at a time.
//
// With slack at or below the threshold, hold state.
type PliantPolicy struct {
	rng *sim.RNG

	// SlackPatience is how many consecutive high-slack intervals must pass
	// before each revert step. The paper reverts on a single high-slack
	// interval; on the simulated platform the core quantum is coarse
	// relative to the queueing cliff, so immediate reverts ping-pong
	// between violation and deep slack (exactly the failure mode Sec. 4.3
	// predicts for too-low slack thresholds). A patience of 1 reproduces
	// the paper's literal rule.
	SlackPatience int

	// cursor is the round-robin position for penalization.
	cursor     int
	seeded     bool
	yieldStack []int // app indices in core-reclaim order (for LIFO return)
	slackRun   int   // consecutive high-slack intervals observed
}

// DefaultSlackPatience is the number of consecutive high-slack intervals
// before a revert step.
const DefaultSlackPatience = 3

// NewPliantPolicy returns the paper's policy. The RNG seeds the initial
// round-robin position ("selected randomly", Sec. 4.4).
func NewPliantPolicy(rng *sim.RNG) *PliantPolicy {
	return &PliantPolicy{rng: rng, SlackPatience: DefaultSlackPatience}
}

// Name identifies the policy in traces and reports.
func (p *PliantPolicy) Name() string { return "pliant" }

// Decide implements Policy.
func (p *PliantPolicy) Decide(s Snapshot) []Action {
	active := activeApps(s)
	if len(active) == 0 {
		return nil
	}
	if !p.seeded {
		p.cursor = p.rng.Intn(len(s.Apps))
		p.seeded = true
	}

	if s.Report.Violation {
		p.slackRun = 0
		return p.onViolation(s, active)
	}
	if s.Report.Slack > s.SlackThreshold {
		p.slackRun++
		patience := p.SlackPatience
		if patience < 1 {
			patience = 1
		}
		if p.slackRun < patience {
			return nil
		}
		p.slackRun = 0
		return p.onSlack(s, active)
	}
	p.slackRun = 0
	return nil // QoS met without excess slack: hold.
}

func (p *PliantPolicy) onViolation(s Snapshot, active []int) []Action {
	// First pass: any app not yet at its most approximate variant is
	// jumped there, one app per interval, round-robin.
	if idx, ok := p.nextWhere(s, active, func(a AppView) bool {
		return a.Variant < a.MostApproximate
	}); ok {
		return []Action{{Kind: SwitchVariant, App: idx, To: s.Apps[idx].MostApproximate}}
	}
	// All at most approximate: reclaim one core from one app, round-robin,
	// respecting the per-app core floor.
	if idx, ok := p.nextWhere(s, active, func(a AppView) bool {
		return a.Cores > s.MinAppCores
	}); ok {
		p.yieldStack = append(p.yieldStack, idx)
		return []Action{{Kind: ReclaimCore, App: idx}}
	}
	return nil // nothing left to actuate
}

func (p *PliantPolicy) onSlack(s Snapshot, active []int) []Action {
	// Revert core reclamation first (the most recent action class), most
	// recently penalized app first.
	for len(p.yieldStack) > 0 {
		idx := p.yieldStack[len(p.yieldStack)-1]
		p.yieldStack = p.yieldStack[:len(p.yieldStack)-1]
		if s.Apps[idx].Done || s.Apps[idx].YieldedCores == 0 {
			continue // finished or already restored through other means
		}
		return []Action{{Kind: ReturnCore, App: idx}}
	}
	// Then step approximation back toward precise, one level on one app per
	// interval, round-robin so no app is favored.
	if idx, ok := p.nextWhere(s, active, func(a AppView) bool {
		return a.Variant > 0
	}); ok {
		return []Action{{Kind: SwitchVariant, App: idx, To: s.Apps[idx].Variant - 1}}
	}
	return nil // everything precise at fair shares: steady state
}

// nextWhere scans apps round-robin from the cursor and returns the first
// active app satisfying pred, advancing the cursor past it.
func (p *PliantPolicy) nextWhere(s Snapshot, active []int, pred func(AppView) bool) (int, bool) {
	n := len(s.Apps)
	for k := 0; k < n; k++ {
		idx := (p.cursor + k) % n
		if s.Apps[idx].Done {
			continue
		}
		if pred(s.Apps[idx]) {
			p.cursor = (idx + 1) % n
			return idx, true
		}
	}
	return 0, false
}

// PrecisePolicy is the paper's baseline: a fair static allocation with every
// application running precise; it never actuates.
type PrecisePolicy struct{}

// Name identifies the policy.
func (PrecisePolicy) Name() string { return "precise" }

// Decide never acts: the baseline runs open-loop.
func (PrecisePolicy) Decide(Snapshot) []Action { return nil }

// StaticApproxPolicy is an ablation: every application runs at its most
// approximate variant from the start, with no core reallocation. It isolates
// how much of Pliant's benefit comes from approximation alone versus
// feedback control.
type StaticApproxPolicy struct{}

// Name identifies the policy.
func (StaticApproxPolicy) Name() string { return "static-approx" }

// Decide pins every app to its most approximate variant and does nothing
// else.
func (StaticApproxPolicy) Decide(s Snapshot) []Action {
	var out []Action
	for i, a := range s.Apps {
		if !a.Done && a.Variant < a.MostApproximate {
			out = append(out, Action{Kind: SwitchVariant, App: i, To: a.MostApproximate})
		}
	}
	return out
}
