// Package core implements the Pliant runtime: the controller that consumes
// the performance monitor's per-interval reports and actuates approximation
// degrees and core allocations according to the paper's runtime algorithm
// (Fig. 3), including the round-robin arbiter for multi-application
// colocations (Sec. 4.4). Alternative policies — the precise baseline, a
// static most-approximate ablation, and the impact-aware arbiter the paper
// sketches as future work (Sec. 6.5) — implement the same Policy interface.
package core

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/monitor"
)

// AppView is the controller's read-only view of one colocated approximate
// application at decision time.
type AppView struct {
	Name            string
	Variant         int // 0 = precise
	MostApproximate int // index of the highest approximation degree
	Cores           int
	YieldedCores    int  // cores reclaimed from this app so far
	Done            bool // finished apps are not actuated

	// QualityPerStep estimates the output-quality cost of one variant step
	// for this app (used by the impact-aware policy).
	QualityPerStep float64
}

// Snapshot is everything a policy sees when deciding.
type Snapshot struct {
	Report       monitor.Report
	Apps         []AppView
	ServiceCores int

	// MinAppCores is the floor below which the controller will not shrink
	// an application.
	MinAppCores int

	// SlackThreshold is the revert threshold (paper: 10%).
	SlackThreshold float64
}

// ActionKind enumerates what a policy can ask the actuator to do.
type ActionKind int

// The actuator verbs of the paper's runtime: switch an app's approximation
// degree, reclaim a core from an app for the service, or return one.
const (
	// SwitchVariant sets app App to variant To.
	SwitchVariant ActionKind = iota
	// ReclaimCore moves one core from app App to the interactive service.
	ReclaimCore
	// ReturnCore moves one core from the interactive service back to App.
	ReturnCore
)

// Action is one actuation step.
type Action struct {
	Kind ActionKind
	App  int // index into Snapshot.Apps
	To   int // target variant for SwitchVariant
}

// String renders the action for traces.
func (a Action) String() string {
	switch a.Kind {
	case SwitchVariant:
		return fmt.Sprintf("switch(app=%d → v%d)", a.App, a.To)
	case ReclaimCore:
		return fmt.Sprintf("reclaim(app=%d)", a.App)
	case ReturnCore:
		return fmt.Sprintf("return(app=%d)", a.App)
	default:
		return fmt.Sprintf("action(%d)", int(a.Kind))
	}
}

// Policy decides the actions for one decision interval. Implementations are
// deterministic given their construction-time seed and the snapshot stream.
type Policy interface {
	Name() string
	Decide(s Snapshot) []Action
}

// activeApps returns indices of apps that are still running.
func activeApps(s Snapshot) []int {
	var out []int
	for i, a := range s.Apps {
		if !a.Done {
			out = append(out, i)
		}
	}
	return out
}
