package core

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/sim"
)

// snap builds a snapshot with the given violation/slack and app states.
func snap(violation bool, slack float64, apps ...AppView) Snapshot {
	return Snapshot{
		Report:         monitor.Report{Violation: violation, Slack: slack},
		Apps:           apps,
		ServiceCores:   8,
		MinAppCores:    1,
		SlackThreshold: 0.10,
	}
}

func appView(variant, most, cores, yielded int) AppView {
	return AppView{
		Name: "a", Variant: variant, MostApproximate: most,
		Cores: cores, YieldedCores: yielded,
	}
}

// pliant returns the policy with the paper's literal revert rule (a single
// high-slack interval triggers reversion) so the Fig. 3 transitions can be
// asserted step by step. The hysteresis default is tested separately.
func pliant() *PliantPolicy {
	p := NewPliantPolicy(sim.NewRNG(1))
	p.SlackPatience = 1
	return p
}

func TestViolationJumpsToMostApproximate(t *testing.T) {
	// Fig. 3: on violation, the app switches directly to MOST approximate,
	// not one step.
	p := pliant()
	acts := p.Decide(snap(true, -0.5, appView(0, 4, 8, 0)))
	if len(acts) != 1 {
		t.Fatalf("actions = %v", acts)
	}
	if acts[0].Kind != SwitchVariant || acts[0].To != 4 {
		t.Fatalf("action = %v, want jump to v4", acts[0])
	}
}

func TestViolationFromIntermediateVariantJumpsToMost(t *testing.T) {
	// Sec. 4.3: "if the approximate application is operating at an
	// approximation degree other than the highest and a QoS violation
	// occurs, it immediately reverts to its most approximate variant".
	p := pliant()
	acts := p.Decide(snap(true, -0.2, appView(2, 4, 8, 0)))
	if len(acts) != 1 || acts[0].Kind != SwitchVariant || acts[0].To != 4 {
		t.Fatalf("actions = %v, want jump 2→4", acts)
	}
}

func TestViolationAtMostApproxReclaimsCore(t *testing.T) {
	p := pliant()
	acts := p.Decide(snap(true, -0.3, appView(4, 4, 8, 0)))
	if len(acts) != 1 || acts[0].Kind != ReclaimCore {
		t.Fatalf("actions = %v, want core reclaim", acts)
	}
}

func TestReclaimRespectsCoreFloor(t *testing.T) {
	p := pliant()
	acts := p.Decide(snap(true, -0.3, appView(4, 4, 1, 7)))
	if len(acts) != 0 {
		t.Fatalf("actions = %v, want none at the core floor", acts)
	}
}

func TestSlackReturnsCoreBeforeVariant(t *testing.T) {
	p := pliant()
	// Build history: violation at most-approx reclaims a core.
	_ = p.Decide(snap(true, -0.3, appView(4, 4, 8, 0)))
	// Now slack: the first revert must be the core, not the variant.
	acts := p.Decide(snap(false, 0.4, appView(4, 4, 7, 1)))
	if len(acts) != 1 || acts[0].Kind != ReturnCore {
		t.Fatalf("actions = %v, want core return first", acts)
	}
	// With cores restored, the next revert steps the variant down one level
	// (incremental, not a jump).
	acts = p.Decide(snap(false, 0.4, appView(4, 4, 8, 0)))
	if len(acts) != 1 || acts[0].Kind != SwitchVariant || acts[0].To != 3 {
		t.Fatalf("actions = %v, want step 4→3", acts)
	}
}

func TestNoActionWithinSlackBand(t *testing.T) {
	// QoS met but slack ≤ 10%: hold state (Fig. 3 "remains in the same
	// state").
	p := pliant()
	for _, slack := range []float64{0.0, 0.05, 0.10} {
		if acts := p.Decide(snap(false, slack, appView(3, 4, 8, 0))); len(acts) != 0 {
			t.Fatalf("slack %v: actions = %v, want hold", slack, acts)
		}
	}
}

func TestSteadyStatePreciseNoAction(t *testing.T) {
	p := pliant()
	if acts := p.Decide(snap(false, 0.9, appView(0, 4, 8, 0))); len(acts) != 0 {
		t.Fatalf("precise + slack: actions = %v, want none", acts)
	}
}

func TestDoneAppsNotActuated(t *testing.T) {
	p := pliant()
	done := appView(0, 4, 8, 0)
	done.Done = true
	if acts := p.Decide(snap(true, -0.5, done)); len(acts) != 0 {
		t.Fatalf("actions on finished app: %v", acts)
	}
}

func TestMultiAppRoundRobinSwitchesOnePerInterval(t *testing.T) {
	// Sec. 4.4: switch one workload at a time; if QoS is not restored move
	// to the next.
	p := pliant()
	a := appView(0, 4, 4, 0)
	b := appView(0, 6, 4, 0)
	first := p.Decide(snap(true, -0.5, a, b))
	if len(first) != 1 || first[0].Kind != SwitchVariant {
		t.Fatalf("first = %v", first)
	}
	// Apply: the chosen app is now most-approximate.
	apps := []AppView{a, b}
	apps[first[0].App].Variant = first[0].To
	second := p.Decide(snap(true, -0.5, apps...))
	if len(second) != 1 || second[0].Kind != SwitchVariant {
		t.Fatalf("second = %v", second)
	}
	if second[0].App == first[0].App {
		t.Fatalf("round-robin penalized the same app twice: %v then %v", first, second)
	}
	apps[second[0].App].Variant = second[0].To
	// Both at most approximate: next violation reclaims a core.
	third := p.Decide(snap(true, -0.5, apps...))
	if len(third) != 1 || third[0].Kind != ReclaimCore {
		t.Fatalf("third = %v, want reclaim", third)
	}
}

func TestMultiAppCoreReclaimRotates(t *testing.T) {
	p := pliant()
	apps := []AppView{appView(4, 4, 4, 0), appView(6, 6, 4, 0)}
	first := p.Decide(snap(true, -0.5, apps...))
	if first[0].Kind != ReclaimCore {
		t.Fatalf("first = %v", first)
	}
	apps[first[0].App].Cores--
	apps[first[0].App].YieldedCores++
	second := p.Decide(snap(true, -0.5, apps...))
	if second[0].Kind != ReclaimCore {
		t.Fatalf("second = %v", second)
	}
	if second[0].App == first[0].App {
		t.Fatal("core reclaim did not rotate across apps")
	}
}

func TestReturnCoreLIFO(t *testing.T) {
	p := pliant()
	apps := []AppView{appView(4, 4, 4, 0), appView(6, 6, 4, 0)}
	first := p.Decide(snap(true, -0.5, apps...))
	apps[first[0].App].Cores--
	apps[first[0].App].YieldedCores++
	second := p.Decide(snap(true, -0.5, apps...))
	apps[second[0].App].Cores--
	apps[second[0].App].YieldedCores++
	// Slack: cores return most-recent-first.
	ret := p.Decide(snap(false, 0.5, apps...))
	if ret[0].Kind != ReturnCore || ret[0].App != second[0].App {
		t.Fatalf("return = %v, want LIFO (app %d)", ret, second[0].App)
	}
}

func TestStaleYieldStackSkipsFinishedApps(t *testing.T) {
	p := pliant()
	apps := []AppView{appView(4, 4, 4, 0), appView(6, 6, 4, 0)}
	first := p.Decide(snap(true, -0.5, apps...))
	apps[first[0].App].Cores--
	apps[first[0].App].YieldedCores++
	// The penalized app finishes; on slack the policy must not return a
	// core to it, falling through to variant reversion on the other app.
	apps[first[0].App].Done = true
	apps[first[0].App].YieldedCores = 0
	other := 1 - first[0].App
	apps[other].Variant = apps[other].MostApproximate
	acts := p.Decide(snap(false, 0.5, apps...))
	if len(acts) != 1 || acts[0].Kind != SwitchVariant || acts[0].App != other {
		t.Fatalf("acts = %v, want variant step on app %d", acts, other)
	}
}

func TestPrecisePolicyNeverActs(t *testing.T) {
	p := PrecisePolicy{}
	if p.Name() != "precise" {
		t.Fatal("name")
	}
	if acts := p.Decide(snap(true, -5, appView(0, 4, 8, 0))); len(acts) != 0 {
		t.Fatalf("precise acted: %v", acts)
	}
}

func TestStaticApproxPinsMostApproximate(t *testing.T) {
	p := StaticApproxPolicy{}
	acts := p.Decide(snap(false, 0.9, appView(0, 4, 8, 0), appView(2, 6, 8, 0)))
	if len(acts) != 2 {
		t.Fatalf("acts = %v", acts)
	}
	for _, a := range acts {
		if a.Kind != SwitchVariant {
			t.Fatalf("unexpected kind %v", a)
		}
	}
	if acts[0].To != 4 || acts[1].To != 6 {
		t.Fatalf("targets = %v", acts)
	}
	// Already pinned: no further action.
	if acts := p.Decide(snap(true, -1, appView(4, 4, 8, 0))); len(acts) != 0 {
		t.Fatalf("static approx acted at most approx: %v", acts)
	}
}

func TestImpactAwarePicksCheapestApp(t *testing.T) {
	p := NewImpactAwarePolicy(sim.NewRNG(1))
	cheap := appView(0, 4, 4, 0)
	cheap.QualityPerStep = 0.1
	dear := appView(0, 4, 4, 0)
	dear.QualityPerStep = 2.0
	acts := p.Decide(snap(true, -0.5, dear, cheap))
	if len(acts) != 1 || acts[0].App != 1 {
		t.Fatalf("acts = %v, want the cheap app (index 1)", acts)
	}
	// Impact-aware steps one level, not a jump.
	if acts[0].To != 1 {
		t.Fatalf("To = %d, want incremental step", acts[0].To)
	}
}

func TestImpactAwareRevertsDearestFirst(t *testing.T) {
	p := NewImpactAwarePolicy(sim.NewRNG(1))
	p.SlackPatience = 1
	cheap := appView(2, 4, 4, 0)
	cheap.QualityPerStep = 0.1
	dear := appView(2, 4, 4, 0)
	dear.QualityPerStep = 2.0
	acts := p.Decide(snap(false, 0.5, cheap, dear))
	if len(acts) != 1 || acts[0].App != 1 || acts[0].To != 1 {
		t.Fatalf("acts = %v, want step down on the dear app", acts)
	}
}

func TestImpactAwareReclaimsFromLargestApp(t *testing.T) {
	p := NewImpactAwarePolicy(sim.NewRNG(1))
	small := appView(4, 4, 2, 0)
	big := appView(4, 4, 6, 0)
	acts := p.Decide(snap(true, -0.5, small, big))
	if len(acts) != 1 || acts[0].Kind != ReclaimCore || acts[0].App != 1 {
		t.Fatalf("acts = %v, want reclaim from the larger app", acts)
	}
}

func TestSlackPatienceDelaysReverts(t *testing.T) {
	// With the default hysteresis, reverts require SlackPatience consecutive
	// high-slack intervals; any violation resets the count.
	p := NewPliantPolicy(sim.NewRNG(1))
	p.SlackPatience = 3
	a := appView(4, 4, 7, 1)
	// Two high-slack intervals: no action yet.
	for i := 0; i < 2; i++ {
		if acts := p.Decide(snap(false, 0.5, a)); len(acts) != 0 {
			t.Fatalf("interval %d: premature revert %v", i, acts)
		}
	}
	// A violation resets the streak...
	if acts := p.Decide(snap(true, -0.2, appView(3, 4, 7, 1))); len(acts) != 1 {
		t.Fatal("violation not actuated")
	}
	// ...so two more high-slack intervals still do not revert.
	for i := 0; i < 2; i++ {
		if acts := p.Decide(snap(false, 0.5, a)); len(acts) != 0 {
			t.Fatalf("post-reset interval %d: premature revert %v", i, acts)
		}
	}
	// The third consecutive one does.
	if acts := p.Decide(snap(false, 0.5, a)); len(acts) != 1 {
		t.Fatal("revert did not fire after patience elapsed")
	}
	// In-band slack (≤ threshold) also resets the streak.
	p2 := NewPliantPolicy(sim.NewRNG(1))
	p2.SlackPatience = 2
	_ = p2.Decide(snap(false, 0.5, a))
	_ = p2.Decide(snap(false, 0.05, a)) // hold: resets
	if acts := p2.Decide(snap(false, 0.5, a)); len(acts) != 0 {
		t.Fatalf("in-band slack did not reset patience: %v", acts)
	}
}

func TestActionStrings(t *testing.T) {
	cases := []struct {
		a    Action
		want string
	}{
		{Action{Kind: SwitchVariant, App: 1, To: 3}, "switch"},
		{Action{Kind: ReclaimCore, App: 0}, "reclaim"},
		{Action{Kind: ReturnCore, App: 2}, "return"},
	}
	for _, c := range cases {
		if !strings.Contains(c.a.String(), c.want) {
			t.Errorf("String(%v) = %q", c.a.Kind, c.a.String())
		}
	}
}

// Property: the Pliant policy emits at most one action per interval (the
// paper actuates incrementally), and every action is structurally valid for
// the snapshot it was derived from.
func TestPliantOneActionProperty(t *testing.T) {
	f := func(seed uint64, steps []uint8) bool {
		p := NewPliantPolicy(sim.NewRNG(seed))
		p.SlackPatience = 1
		apps := []AppView{appView(0, 4, 4, 0), appView(0, 6, 4, 0), appView(0, 2, 4, 0)}
		svc := 4
		for _, st := range steps {
			violation := st%2 == 0
			slack := float64(int(st)%40-10) / 40.0
			s := snap(violation, slack, apps...)
			s.ServiceCores = svc
			acts := p.Decide(s)
			if len(acts) > 1 {
				return false
			}
			for _, a := range acts {
				if a.App < 0 || a.App >= len(apps) || apps[a.App].Done {
					return false
				}
				switch a.Kind {
				case SwitchVariant:
					if a.To < 0 || a.To > apps[a.App].MostApproximate {
						return false
					}
					apps[a.App].Variant = a.To
				case ReclaimCore:
					if apps[a.App].Cores <= 1 {
						return false
					}
					apps[a.App].Cores--
					apps[a.App].YieldedCores++
					svc++
				case ReturnCore:
					if apps[a.App].YieldedCores <= 0 {
						return false
					}
					apps[a.App].Cores++
					apps[a.App].YieldedCores--
					svc--
				}
			}
			// Occasionally finish an app.
			if st%37 == 0 && len(steps) > 0 {
				apps[int(st)%3].Done = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
