package dse

import (
	"fmt"
	"sync"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/approx"
)

// ExploreApp runs the exploration for a catalog application with the paper's
// default options, honoring the profile's retained-variant cap.
func ExploreApp(prof app.Profile) (Result, error) {
	opts := DefaultOptions()
	opts.MaxVariants = prof.MaxVariants
	return Explore(prof, opts)
}

var (
	variantsMu    sync.Mutex
	variantsCache = map[string][]approx.Effect{}
)

// VariantsFor returns the runtime variant table for a catalog application,
// memoized: the paper performs this exploration once per application
// ("unless the application design changes").
func VariantsFor(prof app.Profile) ([]approx.Effect, error) {
	variantsMu.Lock()
	defer variantsMu.Unlock()
	if v, ok := variantsCache[prof.Name]; ok {
		return append([]approx.Effect(nil), v...), nil
	}
	res, err := ExploreApp(prof)
	if err != nil {
		return nil, err
	}
	if len(res.Selected) == 0 {
		return nil, fmt.Errorf("dse: %s has no viable approximate variants", prof.Name)
	}
	v := res.Variants()
	//pliant:allow sharedstate — guarded by variantsMu; the memo is deterministic per profile name, so any winner writes the same value
	variantsCache[prof.Name] = v
	return append([]approx.Effect(nil), v...), nil
}
