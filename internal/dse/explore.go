// Package dse implements the paper's offline design-space exploration
// (Sec. 3): it enumerates candidate approximate variants for an application —
// per-site loop perforations at several factors and modes, synchronization
// elisions, precision reductions, and their combinations — computes each
// candidate's effect on execution time, memory traffic, and output quality,
// discards candidates above the permitted inaccuracy threshold, and selects
// the variants close to the pareto-optimal (time, inaccuracy) frontier that
// the Pliant runtime later switches between.
package dse

import (
	"fmt"
	"sort"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/approx"
)

// Options tunes the exploration.
type Options struct {
	// MaxInaccuracy is the permitted output quality loss in percent
	// (paper: 5%).
	MaxInaccuracy float64

	// PerforationFactors are the loop-reduction factors explored per
	// perforable site.
	PerforationFactors []int

	// TimeGap is the minimum execution-time improvement (fraction of
	// precise) a pareto point must add over the previously selected one to
	// be kept; it thins near-duplicates off the frontier ("variants close
	// to the pareto-optimal curve").
	TimeGap float64

	// MaxCandidates caps the enumeration (the full space is combinatorial;
	// the paper calls it "in the order of 1000s" for typical apps).
	MaxCandidates int

	// MaxVariants caps how many frontier variants are retained (0 = no
	// cap). When the thinned frontier still exceeds the cap it is
	// downsampled evenly, always keeping the least and most approximate
	// endpoints — the paper's explorations retain a small, per-app number
	// of representative points.
	MaxVariants int
}

// DefaultOptions mirrors the paper: 5% inaccuracy budget, perforation
// factors 2..12, and a 3% frontier-thinning gap.
func DefaultOptions() Options {
	return Options{
		MaxInaccuracy:      5.0,
		PerforationFactors: []int{2, 3, 4, 6, 8, 12},
		TimeGap:            0.03,
		MaxCandidates:      20000,
	}
}

// Candidate is one explored variant: the decisions that define it and its
// computed effect.
type Candidate struct {
	Decisions []approx.Decision
	Effect    approx.Effect
}

// Result is the outcome of exploring one application.
type Result struct {
	App string

	// All holds every examined candidate (the blue dots in the paper's
	// Fig. 1 scatter plots).
	All []Candidate

	// Selected holds the pareto-frontier variants under the inaccuracy
	// budget (the red dots), ordered from least to most approximate.
	Selected []Candidate
}

// Variants returns the runtime effect table: precise first, then the
// selected variants from least to most approximate — the ordering
// app.NewInstance requires.
func (r Result) Variants() []approx.Effect {
	out := make([]approx.Effect, 0, len(r.Selected)+1)
	out = append(out, approx.Precise())
	for _, c := range r.Selected {
		out = append(out, c.Effect)
	}
	return out
}

// Explore enumerates and selects approximate variants for the profile.
func Explore(prof app.Profile, opts Options) (Result, error) {
	if err := prof.Validate(); err != nil {
		return Result{}, err
	}
	if err := validate(opts); err != nil {
		return Result{}, err
	}

	res := Result{App: prof.Name}

	// Per-site decision menus. Each menu starts with the "off" decision so
	// the cross product includes partial combinations.
	menus := make([][]approx.Decision, len(prof.Sites))
	for i, site := range prof.Sites {
		menus[i] = siteMenu(i, site, opts)
	}

	// Cross product over site menus, capped at MaxCandidates.
	total := 1
	for _, m := range menus {
		total *= len(m)
	}
	if total > opts.MaxCandidates {
		total = opts.MaxCandidates
	}
	idx := make([]int, len(menus))
	for n := 0; n < total; n++ {
		var decisions []approx.Decision
		effects := make([]approx.Effect, 0, len(menus))
		for s, m := range menus {
			d := m[idx[s]]
			if active(d, prof.Sites[s]) {
				decisions = append(decisions, d)
			}
			effects = append(effects, d.Apply(prof.Sites[s]))
		}
		if len(decisions) > 0 { // skip the all-off candidate (== precise)
			res.All = append(res.All, Candidate{Decisions: decisions, Effect: approx.Combine(effects...)})
		}
		// Advance the mixed-radix counter.
		for s := len(idx) - 1; s >= 0; s-- {
			idx[s]++
			if idx[s] < len(menus[s]) {
				break
			}
			idx[s] = 0
		}
	}

	res.Selected = selectPareto(res.All, opts)
	return res, nil
}

func validate(opts Options) error {
	switch {
	case opts.MaxInaccuracy <= 0:
		return fmt.Errorf("dse: inaccuracy budget must be positive")
	case len(opts.PerforationFactors) == 0:
		return fmt.Errorf("dse: no perforation factors to explore")
	case opts.TimeGap < 0:
		return fmt.Errorf("dse: negative time gap")
	case opts.MaxCandidates < 1:
		return fmt.Errorf("dse: candidate cap must be positive")
	}
	for _, f := range opts.PerforationFactors {
		if f < 2 {
			return fmt.Errorf("dse: perforation factor %d below 2", f)
		}
	}
	return nil
}

// siteMenu builds the decision menu for one site: "off" plus each applicable
// setting.
func siteMenu(siteIdx int, site approx.Site, opts Options) []approx.Decision {
	menu := []approx.Decision{{Site: siteIdx}} // off
	switch site.Technique {
	case approx.LoopPerforation:
		for _, f := range opts.PerforationFactors {
			for _, m := range []approx.PerforationMode{approx.Chunk, approx.Stride, approx.SkipEveryPth} {
				menu = append(menu, approx.Decision{Site: siteIdx, Factor: f, Mode: m})
			}
		}
	case approx.SyncElision, approx.PrecisionReduction:
		menu = append(menu, approx.Decision{Site: siteIdx, Enabled: true})
	}
	return menu
}

func active(d approx.Decision, site approx.Site) bool {
	switch site.Technique {
	case approx.LoopPerforation:
		return d.Factor >= 2
	default:
		return d.Enabled
	}
}

// selectPareto filters candidates to the inaccuracy budget, keeps the
// (time, inaccuracy) skyline, and thins points that improve execution time
// by less than TimeGap over the previous selection.
func selectPareto(all []Candidate, opts Options) []Candidate {
	eligible := make([]Candidate, 0, len(all))
	for _, c := range all {
		if c.Effect.Inaccuracy <= opts.MaxInaccuracy && c.Effect.TimeScale <= 1 {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	// Sort by inaccuracy ascending, ties by faster first.
	sort.Slice(eligible, func(i, j int) bool {
		a, b := eligible[i].Effect, eligible[j].Effect
		if a.Inaccuracy != b.Inaccuracy {
			return a.Inaccuracy < b.Inaccuracy
		}
		return a.TimeScale < b.TimeScale
	})
	// Skyline: keep candidates that strictly improve execution time.
	var skyline []Candidate
	best := 2.0
	for _, c := range eligible {
		if c.Effect.TimeScale < best {
			skyline = append(skyline, c)
			best = c.Effect.TimeScale
		}
	}
	// Thin: each kept point must improve time by at least TimeGap over the
	// previously kept one — except the first, which anchors the frontier.
	out := skyline[:1:1]
	for _, c := range skyline[1:] {
		if out[len(out)-1].Effect.TimeScale-c.Effect.TimeScale >= opts.TimeGap {
			out = append(out, c)
		}
	}
	return downsample(out, opts.MaxVariants)
}

// downsample keeps at most n points, spaced evenly and always retaining both
// endpoints (the least and most approximate variants).
func downsample(pts []Candidate, n int) []Candidate {
	if n <= 0 || len(pts) <= n {
		return pts
	}
	if n == 1 {
		return []Candidate{pts[len(pts)-1]}
	}
	out := make([]Candidate, 0, n)
	step := float64(len(pts)-1) / float64(n-1)
	last := -1
	for i := 0; i < n; i++ {
		idx := int(float64(i)*step + 0.5)
		if idx <= last {
			idx = last + 1
		}
		if idx >= len(pts) {
			idx = len(pts) - 1
		}
		out = append(out, pts[idx])
		last = idx
	}
	return out
}
