package dse

import (
	"testing"
	"testing/quick"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/approx"
)

func TestDefaultOptionsMirrorPaper(t *testing.T) {
	o := DefaultOptions()
	if o.MaxInaccuracy != 5.0 {
		t.Fatalf("inaccuracy budget = %v, want the paper's 5%%", o.MaxInaccuracy)
	}
	if len(o.PerforationFactors) == 0 {
		t.Fatal("no perforation factors")
	}
}

func TestOptionsValidation(t *testing.T) {
	prof := app.Catalog()[0]
	bad := []Options{
		{MaxInaccuracy: 0, PerforationFactors: []int{2}, MaxCandidates: 10},
		{MaxInaccuracy: 5, PerforationFactors: nil, MaxCandidates: 10},
		{MaxInaccuracy: 5, PerforationFactors: []int{1}, MaxCandidates: 10},
		{MaxInaccuracy: 5, PerforationFactors: []int{2}, MaxCandidates: 0},
		{MaxInaccuracy: 5, PerforationFactors: []int{2}, MaxCandidates: 10, TimeGap: -1},
	}
	for i, o := range bad {
		if _, err := Explore(prof, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	badProf := prof
	badProf.Sites = nil
	if _, err := Explore(badProf, DefaultOptions()); err == nil {
		t.Error("profile without sites accepted")
	}
}

func TestExploreProducesCandidatesAndSelection(t *testing.T) {
	for _, prof := range app.Catalog() {
		res, err := ExploreApp(prof)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if len(res.All) == 0 {
			t.Fatalf("%s: no candidates examined", prof.Name)
		}
		if len(res.Selected) == 0 {
			t.Fatalf("%s: no variants selected", prof.Name)
		}
		if res.App != prof.Name {
			t.Fatalf("result app %q != %q", res.App, prof.Name)
		}
	}
}

func TestSelectedVariantCountsMatchPaper(t *testing.T) {
	// Paper Sec. 3 / Fig. 4: canneal has 4 selected variants, raytrace 2,
	// Bayesian 8, SNP 5, PLSA 8.
	want := map[string]int{
		"canneal":  4,
		"raytrace": 2,
		"Bayesian": 8,
		"SNP":      5,
		"PLSA":     8,
	}
	for name, n := range want {
		prof, err := app.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExploreApp(prof)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) != n {
			t.Errorf("%s: %d selected variants, paper reports %d", name, len(res.Selected), n)
		}
	}
}

func TestAllAppsHaveTwoToEightVariants(t *testing.T) {
	// The paper's per-app selections range from 2 (raytrace) to 8
	// (Bayesian, PLSA).
	for _, prof := range app.Catalog() {
		res, err := ExploreApp(prof)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(res.Selected); n < 2 || n > 8 {
			t.Errorf("%s: %d selected variants, want 2..8", prof.Name, n)
		}
	}
}

func TestSelectionRespectsInaccuracyBudget(t *testing.T) {
	for _, prof := range app.Catalog() {
		res, err := ExploreApp(prof)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Selected {
			if c.Effect.Inaccuracy > 5.0 {
				t.Errorf("%s: selected variant with %.2f%% inaccuracy (budget 5%%)",
					prof.Name, c.Effect.Inaccuracy)
			}
			if c.Effect.TimeScale > 1 {
				t.Errorf("%s: selected variant slower than precise (%.2f)",
					prof.Name, c.Effect.TimeScale)
			}
		}
	}
}

func TestSelectionIsOrderedFrontier(t *testing.T) {
	// Selected variants must be ordered least→most approximate: inaccuracy
	// nondecreasing, execution time strictly decreasing (pareto frontier).
	for _, prof := range app.Catalog() {
		res, err := ExploreApp(prof)
		if err != nil {
			t.Fatal(err)
		}
		sel := res.Selected
		for i := 1; i < len(sel); i++ {
			if sel[i].Effect.Inaccuracy < sel[i-1].Effect.Inaccuracy {
				t.Errorf("%s: inaccuracy not nondecreasing at %d", prof.Name, i)
			}
			if sel[i].Effect.TimeScale >= sel[i-1].Effect.TimeScale {
				t.Errorf("%s: time scale not decreasing at %d", prof.Name, i)
			}
		}
	}
}

func TestSelectionDominatesNothingEligible(t *testing.T) {
	// No examined candidate within budget may strictly dominate a selected
	// variant (faster AND more accurate) — selected points sit on the
	// frontier.
	prof, _ := app.ByName("canneal")
	res, err := ExploreApp(prof)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	for _, sel := range res.Selected {
		for _, c := range res.All {
			if c.Effect.Inaccuracy > 5.0 {
				continue
			}
			if c.Effect.TimeScale < sel.Effect.TimeScale-eps &&
				c.Effect.Inaccuracy < sel.Effect.Inaccuracy-eps {
				t.Fatalf("candidate (t=%.3f, i=%.3f) dominates selected (t=%.3f, i=%.3f)",
					c.Effect.TimeScale, c.Effect.Inaccuracy,
					sel.Effect.TimeScale, sel.Effect.Inaccuracy)
			}
		}
	}
}

func TestVariantsTableShape(t *testing.T) {
	prof, _ := app.ByName("SNP")
	res, err := ExploreApp(prof)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Variants()
	if v[0] != approx.Precise() {
		t.Fatal("variant 0 must be precise")
	}
	if len(v) != len(res.Selected)+1 {
		t.Fatalf("variants table length %d, want %d", len(v), len(res.Selected)+1)
	}
}

func TestVariantsForMemoizes(t *testing.T) {
	prof, _ := app.ByName("k-means")
	a, err := VariantsFor(prof)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VariantsFor(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("memoized call differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("memoized variants differ")
		}
	}
	// Returned slices must be private copies.
	a[0].Inaccuracy = 99
	c, _ := VariantsFor(prof)
	if c[0].Inaccuracy == 99 {
		t.Fatal("VariantsFor exposes shared state")
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	mk := func(times ...float64) []Candidate {
		out := make([]Candidate, len(times))
		for i, v := range times {
			out[i].Effect.TimeScale = v
		}
		return out
	}
	pts := mk(0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3)
	got := downsample(pts, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Effect.TimeScale != 0.9 || got[2].Effect.TimeScale != 0.3 {
		t.Fatalf("endpoints not kept: %v", got)
	}
	if len(downsample(pts, 0)) != len(pts) {
		t.Fatal("n=0 should disable downsampling")
	}
	if got := downsample(pts, 1); len(got) != 1 || got[0].Effect.TimeScale != 0.3 {
		t.Fatal("n=1 should keep the most approximate point")
	}
	if got := downsample(pts, 100); len(got) != len(pts) {
		t.Fatal("n>len should be identity")
	}
}

// Property: downsample never duplicates or reorders points.
func TestDownsampleProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%30 + 1
		k := int(kRaw)%12 + 1
		pts := make([]Candidate, n)
		for i := range pts {
			pts[i].Effect.TimeScale = 1 - float64(i)*0.01
		}
		got := downsample(pts, k)
		if len(got) > k && k > 0 {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Effect.TimeScale >= got[i-1].Effect.TimeScale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanOverheadMatchesPaper(t *testing.T) {
	// Sec. 6.2: instrumentation overhead 3.8% on average, 8.9% worst case.
	mean := app.MeanDynOverhead()
	if mean < 0.035 || mean > 0.042 {
		t.Fatalf("mean overhead %.4f, want ≈0.038", mean)
	}
	worst := 0.0
	for _, p := range app.Catalog() {
		if p.DynOverhead > worst {
			worst = p.DynOverhead
		}
	}
	if worst != 0.089 {
		t.Fatalf("worst overhead %.4f, want 0.089 (water_spatial)", worst)
	}
}
