// Package dyninst is the dynamic-recompilation substrate Pliant actuates
// through, modeled on how the paper uses DynamoRIO (Sec. 4.2): the
// application binary aggregates every version of each approximable function
// (one per variant, plus precise); at launch the tool reads the program
// addresses of all versions; each approximate variant is mapped to a unique
// Linux real-time signal; and when the actuator sends a signal, the trapped
// handler performs a drwrap_replace()-style pointer swap that redirects the
// functions to the requested variant. Running under instrumentation costs a
// small per-app execution-time overhead (paper: 3.8% mean, 8.9% worst case),
// and coarse function-granularity switching keeps switch costs negligible
// next to instruction-level transformation.
package dyninst

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/sim"
)

// SigRTMin is the first Linux real-time signal number; variant k is mapped
// to signal SigRTMin+k, so signal SigRTMin requests precise execution.
const SigRTMin = 34

// SigRTMax bounds the real-time signal range on Linux.
const SigRTMax = 64

// DefaultSwitchLatency is the time from signal delivery to the function
// table swap taking effect: trapping the signal, looking up the recorded
// addresses, and re-pointing the wrapped functions.
const DefaultSwitchLatency = 200 * sim.Microsecond

// FunctionVersion is one compiled version of an approximable function inside
// the aggregated binary.
type FunctionVersion struct {
	Function string // the function housing the approximable site
	Variant  int    // 0 = precise
	Address  uint64 // program address recorded at start-up
}

// Process wraps a running approximate application under dynamic
// instrumentation.
type Process struct {
	eng *sim.Engine
	app *app.Instance

	table   []FunctionVersion
	active  map[string]uint64 // function -> active version address
	latency sim.Duration

	signals  uint64
	switches uint64
	pending  *sim.Event
}

// Options tunes a Launch.
type Options struct {
	// SwitchLatency overrides DefaultSwitchLatency when positive.
	SwitchLatency sim.Duration
	// OverheadOverride replaces the profile's instrumentation overhead when
	// non-negative; use a negative value to keep the profile's figure.
	OverheadOverride float64
}

// Launch places an application under the instrumentation substrate: it
// builds the function version table from the app's approximable sites,
// applies the instrumentation overhead, and returns the controllable
// process. The application starts in precise mode.
func Launch(eng *sim.Engine, a *app.Instance, opts Options) (*Process, error) {
	if eng == nil || a == nil {
		return nil, fmt.Errorf("dyninst: nil engine or app")
	}
	prof := a.Profile()
	nVariants := len(a.Variants())
	if SigRTMin+nVariants-1 > SigRTMax {
		return nil, fmt.Errorf("dyninst: %s has %d variants, exceeding the real-time signal range",
			prof.Name, nVariants)
	}
	p := &Process{
		eng:     eng,
		app:     a,
		active:  make(map[string]uint64, len(prof.Sites)),
		latency: DefaultSwitchLatency,
	}
	if opts.SwitchLatency > 0 {
		p.latency = opts.SwitchLatency
	}
	overhead := prof.DynOverhead
	if opts.OverheadOverride >= 0 {
		overhead = opts.OverheadOverride
	}

	// Read the program addresses of the precise and approximate versions of
	// every approximated function, as DynamoRIO does at program start. The
	// synthetic layout places variants at fixed strides, giving each
	// function/variant pair a stable, unique address.
	const textBase = 0x400000
	for si, site := range prof.Sites {
		for v := 0; v < nVariants; v++ {
			p.table = append(p.table, FunctionVersion{
				Function: site.Name,
				Variant:  v,
				Address:  textBase + uint64(si)*0x10000 + uint64(v)*0x100,
			})
		}
		p.active[site.Name] = textBase + uint64(si)*0x10000 // precise
	}

	a.SetInstrumented(overhead)
	return p, nil
}

// App returns the wrapped application instance.
func (p *Process) App() *app.Instance { return p.app }

// Table returns the recorded function version table.
func (p *Process) Table() []FunctionVersion {
	return append([]FunctionVersion(nil), p.table...)
}

// ActiveAddress returns the program address the given function currently
// dispatches to.
func (p *Process) ActiveAddress(function string) (uint64, error) {
	addr, ok := p.active[function]
	if !ok {
		return 0, fmt.Errorf("dyninst: unknown function %q", function)
	}
	return addr, nil
}

// SignalFor returns the signal mapped to a variant index.
func (p *Process) SignalFor(variant int) (int, error) {
	if variant < 0 || variant >= len(p.app.Variants()) {
		return 0, fmt.Errorf("dyninst: %s has no variant %d", p.app.Profile().Name, variant)
	}
	return SigRTMin + variant, nil
}

// VariantFor returns the variant index a signal requests.
func (p *Process) VariantFor(signal int) (int, error) {
	v := signal - SigRTMin
	if v < 0 || v >= len(p.app.Variants()) {
		return 0, fmt.Errorf("dyninst: signal %d not mapped for %s", signal, p.app.Profile().Name)
	}
	return v, nil
}

// Deliver sends a Linux signal to the process. The trapped handler performs
// the function-table swap after the switch latency; delivering a new signal
// before a pending swap lands supersedes it. Signals to finished
// applications are ignored, as the process has exited.
func (p *Process) Deliver(signal int) error {
	variant, err := p.VariantFor(signal)
	if err != nil {
		return err
	}
	p.signals++
	if p.app.Done() {
		return nil
	}
	if p.pending != nil {
		p.eng.Cancel(p.pending)
	}
	p.pending = p.eng.After(p.latency, func() {
		p.pending = nil
		p.swapTo(variant)
	})
	return nil
}

// SwitchTo requests the given variant, the convenience form the actuator
// uses: look up the mapped signal and deliver it.
func (p *Process) SwitchTo(variant int) error {
	sig, err := p.SignalFor(variant)
	if err != nil {
		return err
	}
	return p.Deliver(sig)
}

// swapTo performs the drwrap_replace-style pointer swap for every
// approximated function, then switches the application model.
func (p *Process) swapTo(variant int) {
	if p.app.Done() {
		return
	}
	for _, fv := range p.table {
		if fv.Variant == variant {
			p.active[fv.Function] = fv.Address
		}
	}
	if variant != p.app.Variant() {
		p.switches++
	}
	p.app.SetVariant(variant)
}

// Signals returns how many signals were delivered to the process.
func (p *Process) Signals() uint64 { return p.signals }

// Switches returns how many effective variant swaps occurred.
func (p *Process) Switches() uint64 { return p.switches }

// Variant returns the application's active variant index.
func (p *Process) Variant() int { return p.app.Variant() }
