package dyninst

import (
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/approx"
	"github.com/approx-sched/pliant/internal/dse"
	"github.com/approx-sched/pliant/internal/sim"
)

func launchCanneal(t *testing.T, eng *sim.Engine) *Process {
	t.Helper()
	prof, err := app.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	variants, err := dse.VariantsFor(prof)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := app.NewInstance(eng, sim.NewRNG(42), prof, variants, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Launch(eng, inst, Options{OverheadOverride: -1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLaunchValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := Launch(nil, nil, Options{}); err == nil {
		t.Fatal("nil deps accepted")
	}
	if _, err := Launch(eng, nil, Options{}); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestLaunchAppliesProfileOverhead(t *testing.T) {
	eng := sim.NewEngine()
	p := launchCanneal(t, eng)
	// canneal's catalog overhead is 4.5%: nominal 38s becomes ~39.71s.
	stop := eng.Ticker(sim.Second, func(now sim.Time) { p.App().Advance(now) })
	eng.Run(sim.Time(60 * sim.Second))
	stop()
	if !p.App().Done() {
		t.Fatal("app did not finish")
	}
	want := 38.0 * 1.045
	got := p.App().ExecTime().Seconds()
	if got < want-0.5 || got > want+0.5 {
		t.Fatalf("instrumented exec time %.2fs, want ~%.2fs", got, want)
	}
}

func TestFunctionTableShape(t *testing.T) {
	eng := sim.NewEngine()
	p := launchCanneal(t, eng)
	prof := p.App().Profile()
	nVariants := len(p.App().Variants())
	table := p.Table()
	if len(table) != len(prof.Sites)*nVariants {
		t.Fatalf("table has %d entries, want %d sites × %d variants",
			len(table), len(prof.Sites), nVariants)
	}
	// Addresses must be unique.
	seen := map[uint64]bool{}
	for _, fv := range table {
		if seen[fv.Address] {
			t.Fatalf("duplicate address %#x", fv.Address)
		}
		seen[fv.Address] = true
	}
	// Initially every function dispatches to its precise (variant-0) version.
	for _, site := range prof.Sites {
		addr, err := p.ActiveAddress(site.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, fv := range table {
			if fv.Function == site.Name && fv.Variant == 0 && fv.Address != addr {
				t.Fatalf("%s dispatches to %#x, want precise %#x", site.Name, addr, fv.Address)
			}
		}
	}
	if _, err := p.ActiveAddress("no_such_fn"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestSignalMappingRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	p := launchCanneal(t, eng)
	n := len(p.App().Variants())
	for v := 0; v < n; v++ {
		sig, err := p.SignalFor(v)
		if err != nil {
			t.Fatal(err)
		}
		if sig < SigRTMin || sig > SigRTMax {
			t.Fatalf("signal %d outside real-time range", sig)
		}
		back, err := p.VariantFor(sig)
		if err != nil || back != v {
			t.Fatalf("round trip %d -> %d (%v)", v, back, err)
		}
	}
	if _, err := p.SignalFor(n); err == nil {
		t.Fatal("out-of-range variant accepted")
	}
	if _, err := p.VariantFor(SigRTMin - 1); err == nil {
		t.Fatal("unmapped signal accepted")
	}
}

func TestDeliverSwitchesAfterLatency(t *testing.T) {
	eng := sim.NewEngine()
	p := launchCanneal(t, eng)
	sig, _ := p.SignalFor(2)
	eng.Schedule(sim.Time(sim.Second), func() {
		if err := p.Deliver(sig); err != nil {
			t.Errorf("Deliver: %v", err)
		}
	})
	// Just before the latency elapses the variant is unchanged.
	eng.Schedule(sim.Time(sim.Second)+sim.Time(DefaultSwitchLatency/2), func() {
		if p.Variant() != 0 {
			t.Error("variant switched before latency elapsed")
		}
	})
	eng.Schedule(sim.Time(sim.Second)+sim.Time(2*DefaultSwitchLatency), func() {
		if p.Variant() != 2 {
			t.Errorf("variant = %d after latency, want 2", p.Variant())
		}
	})
	eng.Run(sim.Time(2 * sim.Second))
	if p.Signals() != 1 || p.Switches() != 1 {
		t.Fatalf("signals=%d switches=%d", p.Signals(), p.Switches())
	}
}

func TestSwapUpdatesFunctionTable(t *testing.T) {
	eng := sim.NewEngine()
	p := launchCanneal(t, eng)
	eng.Schedule(0, func() { _ = p.SwitchTo(1) })
	eng.Run(sim.Time(sim.Second))
	prof := p.App().Profile()
	for _, site := range prof.Sites {
		addr, _ := p.ActiveAddress(site.Name)
		found := false
		for _, fv := range p.Table() {
			if fv.Function == site.Name && fv.Variant == 1 && fv.Address == addr {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not dispatching to variant 1 after swap", site.Name)
		}
	}
}

func TestRapidSignalsSupersede(t *testing.T) {
	eng := sim.NewEngine()
	p := launchCanneal(t, eng)
	eng.Schedule(0, func() {
		_ = p.SwitchTo(1)
		_ = p.SwitchTo(3) // supersedes before the first lands
	})
	eng.Run(sim.Time(sim.Second))
	if p.Variant() != 3 {
		t.Fatalf("variant = %d, want 3 (last signal wins)", p.Variant())
	}
	if p.Switches() != 1 {
		t.Fatalf("switches = %d, want 1 (first swap superseded)", p.Switches())
	}
}

func TestSignalsToFinishedProcessIgnored(t *testing.T) {
	eng := sim.NewEngine()
	p := launchCanneal(t, eng)
	p.App().Advance(sim.Time(300 * sim.Second)) // run to completion
	if !p.App().Done() {
		t.Fatal("app not done")
	}
	if err := p.SwitchTo(1); err != nil {
		t.Fatalf("signal to finished process errored: %v", err)
	}
	eng.Run(sim.Time(sim.Second))
	if p.Variant() != 0 {
		t.Fatal("finished process switched variant")
	}
}

func TestOverheadOverride(t *testing.T) {
	eng := sim.NewEngine()
	prof := app.Profile{
		Name: "x", NominalExecSec: 10, ParallelExp: 1, MaxVariants: 2,
		Sites: []approx.Site{{Name: "f", Technique: approx.LoopPerforation,
			RuntimeShare: 0.5, TrafficShare: 0.5, UsefulFrac: 0.5,
			QualityCoef: 0.05, QualityExp: 1}},
	}
	variants := []approx.Effect{approx.Precise(), {TimeScale: 0.8, TrafficScale: 0.8, Inaccuracy: 1}}
	inst, err := app.NewInstance(eng, sim.NewRNG(1), prof, variants, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Launch(eng, inst, Options{OverheadOverride: 0}); err != nil {
		t.Fatal(err)
	}
	stop := eng.Ticker(sim.Second, func(now sim.Time) { inst.Advance(now) })
	eng.Run(sim.Time(15 * sim.Second))
	stop()
	got := inst.ExecTime().Seconds()
	if got < 9.99 || got > 10.01 {
		t.Fatalf("zero-overhead exec time %.3fs, want 10s", got)
	}
}

func TestTooManyVariantsRejected(t *testing.T) {
	eng := sim.NewEngine()
	prof := app.Profile{
		Name: "huge", NominalExecSec: 10, ParallelExp: 1,
		Sites: []approx.Site{{Name: "f", Technique: approx.LoopPerforation,
			RuntimeShare: 0.5, TrafficShare: 0.5, UsefulFrac: 0.5,
			QualityCoef: 0.05, QualityExp: 1}},
	}
	variants := []approx.Effect{approx.Precise()}
	for i := 0; i < SigRTMax-SigRTMin+1; i++ {
		variants = append(variants, approx.Effect{
			TimeScale: 0.99 - float64(i)*0.001, TrafficScale: 1, Inaccuracy: float64(i),
		})
	}
	inst, err := app.NewInstance(eng, sim.NewRNG(1), prof, variants, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Launch(eng, inst, Options{}); err == nil {
		t.Fatal("variant count exceeding signal range accepted")
	}
}
