// Package energy models per-node power draw and accumulates energy over
// simulated virtual time — the measurement axis the paper implies but never
// quantifies. Pliant trades output quality for tail latency; adding a power
// model behind platform.Spec lets the cluster layers ask how many watts that
// approximation slack buys at equal QoS.
//
// The model is the standard datacenter abstraction (Fan/Weber/Barroso): a
// socket draws a large idle floor plus a dynamic component that grows with
// utilization, and the dynamic component scales roughly with the cube of
// frequency (f·V², with V tracking f). Servers are famously not
// energy-proportional — the idle floor is around half of peak — which is why
// parking whole nodes and lowering frequency states are the levers that
// matter, and why a scheduler that can concentrate work (because
// approximation absorbs the interference) saves real energy.
package energy

import (
	"fmt"
	"math"

	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sim"
)

// wattsPerCoreGHz calibrates peak socket power from core count and base
// frequency: the paper's Table 1 part (Xeon E5-2699 v4, 22 cores at 2.2 GHz)
// has a 145 W TDP, i.e. ~3.0 W per core·GHz.
const wattsPerCoreGHz = 3.0

// Non-proportionality constants: idle draw as a fraction of peak (Barroso &
// Hölzle report ~50% for classic servers; modern parts do a little better),
// parked (suspend-to-RAM) draw as a fraction of peak, and the fraction of
// idle power that scales with the frequency state (clock tree and uncore).
const (
	idleFrac      = 0.45
	parkedFrac    = 0.04
	idleFreqShare = 0.30
)

// Model is a per-node power curve derived from a platform.Spec. All powers
// are per colocation socket, matching the repo's single-socket discipline.
type Model struct {
	Name string

	// IdleW is the draw at zero utilization in the nominal frequency state;
	// PeakW the draw at full utilization in the nominal state; ParkedW the
	// draw of a parked (suspended) node.
	IdleW   float64
	PeakW   float64
	ParkedW float64

	// Alpha is the utilization exponent of the dynamic component. 1 is the
	// linear Fan/Weber/Barroso model; slightly sublinear exponents model
	// memory-bound mixes that saturate power before utilization.
	Alpha float64

	// FreqGHz is the ascending ladder of frequency states a node can run in.
	// The last entry is the nominal (base) frequency the rest of the repo's
	// timing model assumes; lower states run proportionally slower and are
	// what the approx-for-watts policy spends slack on.
	FreqGHz []float64

	// WakeJ is the fixed energy cost of unparking a node (resume, cache
	// rewarm); WakeDelay is the matching latency before the node can place
	// jobs again.
	WakeJ     float64
	WakeDelay sim.Duration
}

// ModelFor derives a power model from a server spec: peak power from core
// count and base frequency at the TDP calibration above, idle and parked
// floors from the non-proportionality fractions, and a three-state frequency
// ladder at 60%, 80%, and 100% of base frequency.
func ModelFor(spec platform.Spec) Model {
	peak := float64(spec.CoresPerSocket) * spec.BaseGHz * wattsPerCoreGHz
	return Model{
		Name:      spec.Name,
		IdleW:     idleFrac * peak,
		PeakW:     peak,
		ParkedW:   parkedFrac * peak,
		Alpha:     1,
		FreqGHz:   []float64{0.6 * spec.BaseGHz, 0.8 * spec.BaseGHz, spec.BaseGHz},
		WakeJ:     5 * peak, // ~5 s of peak draw: resume plus cache rewarm
		WakeDelay: 4 * sim.Second,
	}
}

// Validate reports model configuration errors.
func (m Model) Validate() error {
	switch {
	case m.PeakW <= 0:
		return fmt.Errorf("energy: %q needs positive peak power", m.Name)
	case m.IdleW < 0 || m.IdleW > m.PeakW:
		return fmt.Errorf("energy: %q idle power %v outside [0, peak]", m.Name, m.IdleW)
	case m.ParkedW < 0 || m.ParkedW > m.IdleW:
		return fmt.Errorf("energy: %q parked power %v outside [0, idle]", m.Name, m.ParkedW)
	case m.Alpha <= 0:
		return fmt.Errorf("energy: %q needs positive utilization exponent", m.Name)
	case len(m.FreqGHz) == 0:
		return fmt.Errorf("energy: %q needs at least one frequency state", m.Name)
	}
	for i, f := range m.FreqGHz {
		if f <= 0 {
			return fmt.Errorf("energy: %q frequency state %d must be positive", m.Name, i)
		}
		if i > 0 && f <= m.FreqGHz[i-1] {
			return fmt.Errorf("energy: %q frequency ladder must ascend", m.Name)
		}
	}
	return nil
}

// Nominal returns the index of the nominal (highest) frequency state.
func (m Model) Nominal() int { return len(m.FreqGHz) - 1 }

// FreqAt returns the frequency of state s, clamped into the ladder.
func (m Model) FreqAt(s int) float64 {
	if s < 0 {
		s = 0
	}
	if s >= len(m.FreqGHz) {
		s = len(m.FreqGHz) - 1
	}
	return m.FreqGHz[s]
}

// SlowdownAt returns the execution-time multiplier of state s relative to
// nominal: a node at 60% of base frequency serves requests 1/0.6 ≈ 1.67×
// slower, which consumers model as proportionally higher offered load.
func (m Model) SlowdownAt(s int) float64 {
	return m.FreqGHz[m.Nominal()] / m.FreqAt(s)
}

// Power returns the draw in watts at the given utilization (clamped to
// [0, 1]) and frequency in GHz. The frequency-dependent parts scale with
// (f/nominal)³; a share of the idle floor is frequency-invariant (fans,
// disks, NIC, DRAM refresh).
func (m Model) Power(util, freqGHz float64) float64 {
	if util < 0 {
		util = 0
	} else if util > 1 {
		util = 1
	}
	nominal := m.FreqGHz[len(m.FreqGHz)-1]
	phi := freqGHz / nominal
	phi3 := phi * phi * phi
	idle := m.IdleW * (1 - idleFreqShare + idleFreqShare*phi3)
	dyn := (m.PeakW - m.IdleW) * phi3
	if m.Alpha == 1 {
		return idle + dyn*util
	}
	return idle + dyn*math.Pow(util, m.Alpha)
}

// PowerAt is Power at frequency state s.
func (m Model) PowerAt(util float64, s int) float64 {
	return m.Power(util, m.FreqAt(s))
}

// Accumulator integrates power over virtual time into joules. It is plain
// arithmetic — no allocation, no wall clock — so it can sit directly on the
// per-interval telemetry path and stay byte-deterministic under fixed seeds.
type Accumulator struct {
	// Joules is the energy accumulated so far.
	Joules float64

	last sim.Time
}

// Reset rewinds the accumulator to instant at with zero energy.
func (a *Accumulator) Reset(at sim.Time) {
	a.Joules = 0
	a.last = at
}

// Advance accrues energy at the given constant draw from the last observed
// instant to now. Out-of-order instants are ignored rather than accruing
// negative energy.
//
//pliant:hotpath
func (a *Accumulator) Advance(now sim.Time, watts float64) {
	if now <= a.last {
		return
	}
	a.Joules += watts * now.Sub(a.last).Seconds()
	a.last = now
}

// AddJoules accrues a fixed energy cost (e.g. a wake transition) without
// advancing time.
func (a *Accumulator) AddJoules(j float64) { a.Joules += j }

// Last returns the last instant the accumulator advanced to.
func (a *Accumulator) Last() sim.Time { return a.last }
