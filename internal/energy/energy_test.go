package energy

import (
	"math"
	"testing"

	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sim"
)

func TestModelForTablePlatform(t *testing.T) {
	m := ModelFor(platform.TablePlatform())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 22 cores × 2.2 GHz × 3.0 W/(core·GHz) ≈ the part's 145 W TDP.
	if m.PeakW < 140 || m.PeakW > 150 {
		t.Errorf("PeakW = %.1f, want ≈145 (Table 1 TDP)", m.PeakW)
	}
	if m.IdleW <= m.ParkedW || m.IdleW >= m.PeakW {
		t.Errorf("power ordering violated: parked %.1f, idle %.1f, peak %.1f",
			m.ParkedW, m.IdleW, m.PeakW)
	}
	if got := m.FreqAt(m.Nominal()); got != 2.2 {
		t.Errorf("nominal frequency = %v, want base 2.2", got)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	base := ModelFor(platform.SmallPlatform())
	cases := []func(*Model){
		func(m *Model) { m.PeakW = 0 },
		func(m *Model) { m.IdleW = m.PeakW + 1 },
		func(m *Model) { m.ParkedW = m.IdleW + 1 },
		func(m *Model) { m.Alpha = 0 },
		func(m *Model) { m.FreqGHz = nil },
		func(m *Model) { m.FreqGHz = []float64{1.0, 0.5} }, // descending
		func(m *Model) { m.FreqGHz = []float64{-1} },
	}
	for i, mutate := range cases {
		m := base
		m.FreqGHz = append([]float64(nil), base.FreqGHz...)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: bad model validated", i)
		}
	}
}

func TestPowerCurveMonotone(t *testing.T) {
	m := ModelFor(platform.TablePlatform())
	nominal := m.FreqAt(m.Nominal())
	// Power grows with utilization at fixed frequency.
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.1 {
		p := m.Power(u, nominal)
		if p <= prev {
			t.Fatalf("power not increasing in utilization at u=%.1f: %v <= %v", u, p, prev)
		}
		prev = p
	}
	// Endpoints pin the idle floor and peak.
	if got := m.Power(0, nominal); math.Abs(got-m.IdleW) > 1e-9 {
		t.Errorf("Power(0, nominal) = %v, want IdleW %v", got, m.IdleW)
	}
	if got := m.Power(1, nominal); math.Abs(got-m.PeakW) > 1e-9 {
		t.Errorf("Power(1, nominal) = %v, want PeakW %v", got, m.PeakW)
	}
	// Lower frequency states draw strictly less at equal utilization.
	for s := 0; s < m.Nominal(); s++ {
		if lo, hi := m.PowerAt(0.7, s), m.PowerAt(0.7, s+1); lo >= hi {
			t.Errorf("state %d draws %.1f ≥ state %d's %.1f", s, lo, s+1, hi)
		}
	}
	// Utilization clamps rather than extrapolating.
	if got := m.Power(1.7, nominal); got != m.PeakW {
		t.Errorf("Power(1.7) = %v, want clamped PeakW %v", got, m.PeakW)
	}
	if got := m.Power(-0.3, nominal); got != m.IdleW {
		t.Errorf("Power(-0.3) = %v, want clamped IdleW %v", got, m.IdleW)
	}
}

func TestSlowdownAt(t *testing.T) {
	m := ModelFor(platform.TablePlatform())
	if got := m.SlowdownAt(m.Nominal()); got != 1 {
		t.Errorf("nominal slowdown = %v, want 1", got)
	}
	if got := m.SlowdownAt(0); math.Abs(got-1/0.6) > 1e-9 {
		t.Errorf("lowest-state slowdown = %v, want %v", got, 1/0.6)
	}
	// Out-of-range states clamp into the ladder.
	if got := m.SlowdownAt(99); got != 1 {
		t.Errorf("clamped-high slowdown = %v, want 1", got)
	}
}

func TestAccumulatorIntegratesPower(t *testing.T) {
	var a Accumulator
	a.Reset(0)
	a.Advance(sim.Time(2*sim.Second), 100) // 200 J
	a.Advance(sim.Time(5*sim.Second), 50)  // +150 J
	if math.Abs(a.Joules-350) > 1e-9 {
		t.Errorf("Joules = %v, want 350", a.Joules)
	}
	// Out-of-order and same-instant advances are ignored.
	a.Advance(sim.Time(4*sim.Second), 1e6)
	a.Advance(sim.Time(5*sim.Second), 1e6)
	if math.Abs(a.Joules-350) > 1e-9 {
		t.Errorf("Joules after stale advance = %v, want 350", a.Joules)
	}
	a.AddJoules(25)
	if math.Abs(a.Joules-375) > 1e-9 {
		t.Errorf("Joules after AddJoules = %v, want 375", a.Joules)
	}
	if a.Last() != sim.Time(5*sim.Second) {
		t.Errorf("Last = %v, want 5s", a.Last())
	}
	a.Reset(sim.Time(7 * sim.Second))
	if a.Joules != 0 || a.Last() != sim.Time(7*sim.Second) {
		t.Errorf("Reset left Joules=%v Last=%v", a.Joules, a.Last())
	}
}

// TestEnergyAccountingAllocFree pins the acceptance criterion: energy
// accumulation is pure arithmetic on the telemetry path — zero allocations.
func TestEnergyAccountingAllocFree(t *testing.T) {
	m := ModelFor(platform.TablePlatform())
	var a Accumulator
	a.Reset(0)
	now := sim.Time(0)
	avg := testing.AllocsPerRun(1000, func() {
		now += sim.Time(sim.Second)
		a.Advance(now, m.PowerAt(0.6, 1))
	})
	if avg != 0 {
		t.Errorf("energy accounting allocates %.2f allocs/op, want 0", avg)
	}
}
