package experiments

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
	"github.com/approx-sched/pliant/internal/workload"
)

var (
	simNewEngine             = sim.NewEngine
	simNewRNG                = sim.NewRNG
	statsNewLatencyHistogram = stats.NewLatencyHistogram
	workloadNewPoisson       = workload.NewPoisson
)

type simDuration = sim.Duration

const simSecond = sim.Second

func simTime(d sim.Duration) sim.Time { return sim.Time(d) }

// TestPrintCalibration prints the precise-mode violation spectrum across all
// 24 apps and 3 services. Dev aid; run with -run TestPrintCalibration -v.
func TestPrintCalibration(t *testing.T) {
	if os.Getenv("PLIANT_CALIBRATION") == "" {
		t.Skip("calibration print; set PLIANT_CALIBRATION=1 to run")
	}
	p := Fast()
	p.Apps = app.Names()
	type key struct{ svc, app string }
	rows := map[key]float64{}
	type task struct {
		cls service.Class
		app string
	}
	var tasks []task
	for _, cls := range service.Classes() {
		for _, a := range p.Apps {
			tasks = append(tasks, task{cls, a})
		}
	}
	vals := make([]float64, len(tasks))
	if err := p.forEach(len(tasks), func(i int) error {
		cfg := colocate.Config{
			Seed:    p.seedFor("calib/" + tasks[i].app + tasks[i].cls.String()),
			Service: tasks[i].cls, AppNames: []string{tasks[i].app},
			Runtime: colocate.Precise, TimeScale: p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		vals[i] = res.TypicalOverQoS()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tasks {
		rows[key{tk.cls.String(), tk.app}] = vals[i]
	}
	for _, svc := range []string{"nginx", "memcached", "mongodb"} {
		var xs []float64
		fmt.Printf("== %s ==\n", svc)
		for _, a := range app.Names() {
			v := rows[key{svc, a}]
			xs = append(xs, v)
			fmt.Printf("  %-17s %6.2fx\n", a, v)
		}
		sort.Float64s(xs)
		fmt.Printf("  range [%.2f, %.2f] median %.2f\n", xs[0], xs[len(xs)-1], xs[len(xs)/2])
	}
}

// TestPrintHeadroom prints each service's isolated p99 at 78% load relative
// to QoS. Dev aid.
func TestPrintHeadroom(t *testing.T) {
	if os.Getenv("PLIANT_CALIBRATION") == "" {
		t.Skip("calibration print; set PLIANT_CALIBRATION=1 to run")
	}
	for _, cls := range service.Classes() {
		eng := simNewEngine()
		rng := simNewRNG(99)
		cfg := service.Preset(cls).Scaled(16)
		hist := statsNewLatencyHistogram()
		svc, err := service.New(eng, rng.Split(1), cfg, 8, func(d simDuration) { hist.Record(float64(d)) })
		if err != nil {
			t.Fatal(err)
		}
		qps := cfg.SaturationQPS(8) * 0.78
		arr, _ := workloadNewPoisson(qps)
		var next func()
		next = func() { svc.Arrive(); eng.After(arr.Next(rng), next) }
		eng.After(arr.Next(rng), next)
		eng.Run(simTime(20 * simSecond))
		fmt.Printf("%-10s isolated p99@78%% = %.2f of QoS\n", cls, hist.P99()/float64(cfg.QoS))
	}
}
