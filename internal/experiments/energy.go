package experiments

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// EnergyRow is one scheduling bundle's aggregate under the energy study.
type EnergyRow struct {
	Bundle             string
	QoSMetFrac         float64
	KJoules            float64
	MeanWatts          float64
	MeanWaitSec        float64
	MeanInaccuracy     float64
	ParkedNodeWindows  int
	LowFreqNodeWindows int
	Wakes              int
}

// EnergyResult compares scheduling bundles — placement policy plus
// autoscaler — over a diurnal day with the Table 1 power model attached: the
// question the paper implies but never measures, how many watts does
// approximation buy at equal QoS?
type EnergyResult struct {
	HorizonSec float64
	Rows       []EnergyRow
}

// RowFor returns the named bundle's row (zero row if absent).
func (r *EnergyResult) RowFor(bundle string) EnergyRow {
	for _, row := range r.Rows {
		if row.Bundle == bundle {
			return row
		}
	}
	return EnergyRow{}
}

// Render formats the comparison table.
func (r *EnergyResult) Render() string {
	s := fmt.Sprintf("energy-aware scheduling, diurnal day over %.0fs of cluster time\n", r.HorizonSec)
	s += fmt.Sprintf("  %-18s %9s %9s %8s %10s %11s %7s %8s\n",
		"bundle", "QoS met", "energy", "mean W", "mean wait", "mean inacc", "parked", "lowfreq")
	for _, row := range r.Rows {
		s += fmt.Sprintf("  %-18s %8.0f%% %7.0fkJ %7.0fW %9.1fs %10.2f%% %6dw %7dw\n",
			row.Bundle, row.QoSMetFrac*100, row.KJoules, row.MeanWatts,
			row.MeanWaitSec, row.MeanInaccuracy, row.ParkedNodeWindows, row.LowFreqNodeWindows)
	}
	afw, ff := r.RowFor("approx-for-watts"), r.RowFor("first-fit")
	if ff.KJoules > 0 {
		s += fmt.Sprintf("  summary: approx-for-watts spends %.0f%% of first-fit's energy "+
			"(%.0fkJ vs %.0fkJ) at %.0f%% vs %.0f%% QoS-met windows\n",
			afw.KJoules/ff.KJoules*100, afw.KJoules, ff.KJoules,
			afw.QoSMetFrac*100, ff.QoSMetFrac*100)
	}
	return s
}

// energyBundle pairs a placement policy with an autoscaler.
type energyBundle struct {
	name string
	pol  sched.Policy
	as   autoscale.Controller
}

// EnergyDiurnal runs the energy study: a five-node cluster (spare capacity
// to park), one compressed diurnal day, and the Table 1 power model, under
// four bundles — first-fit (static baseline), spread-first (QoS-friendly,
// watts-hostile), consolidate (classic autoscaling), and approx-for-watts
// (telemetry-aware placement, consolidation, and slack-funded frequency
// scaling).
func EnergyDiurnal(p Profile) (*EnergyResult, error) {
	const horizon = 120 * sim.Second
	shape, err := workload.NewDiurnal(0.25, horizon.Seconds())
	if err != nil {
		return nil, err
	}
	model := energy.ModelFor(platform.TablePlatform())
	bundles := []energyBundle{
		{"first-fit", sched.FirstFit{}, nil},
		{"spread-first", sched.Spread{}, nil},
		{"consolidate", sched.BestFit{}, autoscale.Consolidate{}},
		{"approx-for-watts", sched.TelemetryAware{}, autoscale.ApproxForWatts{
			// A healthy reserve keeps an unloaded node available, so
			// consolidation never forces placements onto violating hosts;
			// the conservative low-water mark spends only clear slack.
			Consolidate: autoscale.Consolidate{ReserveSlots: 6},
			LowWater:    0.6,
		}},
	}
	out := &EnergyResult{HorizonSec: horizon.Seconds()}
	for _, b := range bundles {
		cfg := sched.Config{
			Seed: p.seedFor("energy"),
			Nodes: []cluster.Node{
				{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
				{Name: "web-1", Service: service.NGINX, MaxApps: 3},
				{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
				{Name: "cache-2", Service: service.Memcached, MaxApps: 3},
				{Name: "web-2", Service: service.NGINX, MaxApps: 3},
			},
			Policy:     b.pol,
			Horizon:    horizon,
			Epoch:      10 * sim.Second,
			JobsPerSec: 0.10,
			BaseLoad:   0.65,
			Shape:      shape,
			TimeScale:  p.TimeScale,
			Workers:    p.parallelism(),
			Energy:     &model,
			Autoscaler: b.as,
		}
		res, err := sched.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: energy bundle %s: %w", b.name, err)
		}
		out.Rows = append(out.Rows, EnergyRow{
			Bundle:             b.name,
			QoSMetFrac:         res.QoSMetFrac,
			KJoules:            res.Joules / 1000,
			MeanWatts:          res.MeanWatts,
			MeanWaitSec:        res.MeanWaitSec,
			MeanInaccuracy:     res.MeanInaccuracy,
			ParkedNodeWindows:  res.ParkedNodeWindows,
			LowFreqNodeWindows: res.LowFreqNodeWindows,
			Wakes:              res.Wakes,
		})
	}
	return out, nil
}
