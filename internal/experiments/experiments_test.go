package experiments

import (
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
)

// tiny returns an aggressively scaled-down profile for unit tests; benches
// and the cmd tools use Fast()/Full().
func tiny() Profile {
	p := Fast()
	p.Name = "tiny"
	p.Apps = []string{"canneal", "SNP", "Bayesian"}
	p.CombosPerArity = 2
	p.MaxRunSeconds = 10
	return p
}

func TestProfiles(t *testing.T) {
	if Fast().TimeScale <= Full().TimeScale {
		t.Fatal("fast profile must scale time up")
	}
	if len(Full().AppNames()) != 24 {
		t.Fatalf("full profile covers %d apps, want 24", len(Full().AppNames()))
	}
	if n := len(Fast().AppNames()); n == 0 || n > 24 {
		t.Fatalf("fast profile covers %d apps", n)
	}
	// Derived seeds are stable and label-dependent.
	p := Fast()
	if p.seedFor("a") != p.seedFor("a") {
		t.Fatal("seedFor not deterministic")
	}
	if p.seedFor("a") == p.seedFor("b") {
		t.Fatal("seedFor collides across labels")
	}
}

func TestForEachParallelAndErrors(t *testing.T) {
	p := tiny()
	p.Parallelism = 4
	seen := make([]bool, 50)
	if err := p.forEach(len(seen), func(i int) error {
		seen[i] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
	// Errors surface (first one wins) without deadlocking the pool.
	boom := errZ("boom")
	if err := p.forEach(10, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	}); err == nil {
		t.Fatal("error from worker not surfaced")
	}
	// Sequential path (n=1 workers).
	p.Parallelism = 1
	if err := p.forEach(3, func(int) error { return boom }); err != boom {
		t.Fatalf("sequential error = %v", err)
	}
}

type errZ string

func (e errZ) Error() string { return string(e) }

func TestTable1(t *testing.T) {
	res, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"E5-2699", "22", "55 MB", "2400", "10Gbps"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 render missing %q:\n%s", want, out)
		}
	}
}

func TestFig1DSE(t *testing.T) {
	res, err := Fig1DSE(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 3 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	for _, a := range res.Apps {
		if a.Examined == 0 || len(a.Selected) == 0 {
			t.Errorf("%s: examined=%d selected=%d", a.Name, a.Examined, len(a.Selected))
		}
	}
	if !strings.Contains(res.Render(), "canneal") {
		t.Error("render missing app name")
	}
}

func TestFig1Impact(t *testing.T) {
	skipIfShort(t)
	res, err := Fig1Impact(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 { // 3 apps × 3 services
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's headline for Fig. 1: precise execution almost always
	// leads to considerable QoS violations; approximation reduces the tail
	// in aggregate.
	if f := res.PreciseViolationFraction(); f < 0.8 {
		t.Errorf("precise violated QoS for only %.0f%% of pairs, want almost always", f*100)
	}
	if imp := res.MostApproxImprovement(); imp <= 1.0 {
		t.Errorf("most-approximate variants did not reduce tail latency (improvement %.2fx)", imp)
	}
	if !strings.Contains(res.Render(), "precise") {
		t.Error("render missing header")
	}
}

func TestFig4Dynamic(t *testing.T) {
	skipIfShort(t)
	p := tiny()
	res, err := Fig4Dynamic(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 { // 3 services × 4 highlighted apps
		t.Fatalf("cells = %d, want 12", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.P99OverQoS.Len() == 0 {
			t.Errorf("%s+%s: empty trace", c.Service, c.App)
		}
		if c.Inaccuracy > 7 {
			t.Errorf("%s+%s: inaccuracy %.1f%%", c.Service, c.App, c.Inaccuracy)
		}
	}
	// Variant richness must match the paper's captions.
	byApp := map[string]int{}
	for _, c := range res.Cells {
		byApp[c.App] = c.Variants
	}
	for app, want := range map[string]int{"canneal": 4, "raytrace": 2, "Bayesian": 8, "SNP": 5} {
		if byApp[app] != want {
			t.Errorf("%s: %d variants, paper reports %d", app, byApp[app], want)
		}
	}
	if m := res.MeanInaccuracy(); m <= 0 || m > 6 {
		t.Errorf("mean inaccuracy %.2f%% (paper: 2.7%%)", m)
	}
}

func TestFig5Aggregate(t *testing.T) {
	skipIfShort(t)
	res, err := Fig5Aggregate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		threshold := 1.0
		if row.Service == "mongodb" {
			threshold = 0.9 // marginal pairs sit at the criticality cliff
		}
		if row.PreciseP99OverQoS <= threshold {
			t.Errorf("%s+%s: precise did not violate (%.2fx)", row.Service, row.App, row.PreciseP99OverQoS)
		}
		if row.PliantP99OverQoS > 1.15 {
			t.Errorf("%s+%s: pliant steady p99 %.2fx QoS", row.Service, row.App, row.PliantP99OverQoS)
		}
		if row.Inaccuracy > 6 {
			t.Errorf("%s+%s: inaccuracy %.1f%%", row.Service, row.App, row.Inaccuracy)
		}
	}
	if m := res.MeanInaccuracy(); m <= 0 || m > 5 {
		t.Errorf("mean inaccuracy %.2f%% (paper: 2.1%%)", m)
	}
	lo, hi := res.ViolationRange("nginx")
	if lo <= 1 || hi <= lo {
		t.Errorf("nginx precise violation range [%.2f, %.2f] implausible", lo, hi)
	}
	if !strings.Contains(res.Render(), "summary:") {
		t.Error("render missing summary")
	}
}

func TestFig6MultiApp(t *testing.T) {
	skipIfShort(t)
	res, err := Fig6MultiApp(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Apps) != 2 {
			t.Fatalf("%s: %d app traces", c.Service, len(c.Apps))
		}
	}
	// Paper: no app sacrifices a disproportionate amount of accuracy.
	if gap := res.BalancedPenalty(); gap > 5 {
		t.Errorf("inaccuracy gap between colocated apps %.1f%%", gap)
	}
}

func TestFig7Violin(t *testing.T) {
	skipIfShort(t)
	res, err := Fig7Violin(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 { // 3 services × arities 1..3
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if !res.Sampled {
		t.Error("tiny profile should sample combinations")
	}
	for _, c := range res.Cells {
		if c.Runs == 0 {
			t.Errorf("%s arity %d: no runs", c.Service, c.Arity)
		}
		if c.Inaccuracy.Max > 7 {
			t.Errorf("%s arity %d: max inaccuracy %.1f%%", c.Service, c.Arity, c.Inaccuracy.Max)
		}
	}
	if !strings.Contains(res.Render(), "violin") {
		t.Error("render header missing")
	}
}

func TestFig8LoadSweep(t *testing.T) {
	skipIfShort(t)
	p := tiny()
	res, err := Fig8LoadSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 3 * len(p.AppNames()) * len(Fig8Loads)
	if len(res.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(res.Points), wantPoints)
	}
	// Light loads must meet QoS.
	for _, pt := range res.Points {
		if pt.Load <= 0.5 && pt.P99OverQoS > 1.1 {
			t.Errorf("%s+%s at %.0f%%: p99 %.2fx QoS", pt.Service, pt.App, pt.Load*100, pt.P99OverQoS)
		}
	}
	// Precise-only cliffs: the paper reports 48% (NGINX), 46% (memcached),
	// 77% (MongoDB). Shape requirement: both CPU-bound services cliff well
	// below MongoDB.
	ng, mc, mg := res.PreciseCliff["nginx"], res.PreciseCliff["memcached"], res.PreciseCliff["mongodb"]
	if ng >= mg || mc >= mg {
		t.Errorf("precise cliffs: nginx %.0f%% memcached %.0f%% mongodb %.0f%%; want mongodb most tolerant",
			ng*100, mc*100, mg*100)
	}
	if ng < 0.3 || ng > 0.7 {
		t.Errorf("nginx precise cliff %.0f%%, paper reports 48%%", ng*100)
	}
}

func TestFig9Interval(t *testing.T) {
	skipIfShort(t)
	res, err := Fig9Interval(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig9Apps)*len(Fig9Intervals) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper: decision intervals of 1s or less satisfy QoS; coarser
	// intervals leave prolonged violations.
	fine := res.MeanP99At(sim.Second)
	coarse := res.MeanP99At(8 * sim.Second)
	if fine > 1.1 {
		t.Errorf("1s interval mean p99 %.2fx QoS, want ≤~1", fine)
	}
	if coarse <= fine {
		t.Errorf("8s interval (%.2fx) not worse than 1s (%.2fx)", coarse, fine)
	}
}

func TestFig10Breakdown(t *testing.T) {
	skipIfShort(t)
	res, err := Fig10Breakdown(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"nginx", "memcached", "mongodb"} {
		fr := r10sum(res.Fraction[svc])
		if fr < 0.99 || fr > 1.01 {
			t.Errorf("%s fractions sum to %.2f", svc, fr)
		}
		if res.Runs[svc] == 0 {
			t.Errorf("%s: no runs", svc)
		}
	}
	// Shape: memcached needs cores more often than mongodb (paper: \"unlike
	// NGINX, memcached almost always requires at least one core\"; MongoDB
	// is the most amenable).
	if res.ApproxAloneFraction("memcached") > res.ApproxAloneFraction("mongodb") {
		t.Errorf("memcached approx-alone %.2f > mongodb %.2f",
			res.ApproxAloneFraction("memcached"), res.ApproxAloneFraction("mongodb"))
	}
}

func r10sum(fr [5]float64) float64 {
	s := 0.0
	for _, v := range fr {
		s += v
	}
	return s
}

func TestOverheadMatchesPaper(t *testing.T) {
	p := Fast()
	p.Apps = nil // all 24: the mean/max statistics are the point
	res, err := Overhead(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 24 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Sec. 6.2: 3.8% average, 8.9% worst case.
	if res.Mean < 0.03 || res.Mean > 0.05 {
		t.Errorf("mean overhead %.3f, want ≈0.038", res.Mean)
	}
	if res.Max < 0.08 || res.Max > 0.10 {
		t.Errorf("max overhead %.3f, want ≈0.089", res.Max)
	}
	for _, row := range res.Rows {
		diff := row.Measured - row.Configured
		if diff < -0.005 || diff > 0.005 {
			t.Errorf("%s: measured %.3f vs configured %.3f", row.App, row.Measured, row.Configured)
		}
	}
}

func TestSchedDiurnal(t *testing.T) {
	skipIfShort(t)
	res, err := SchedDiurnal(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want first-fit, best-fit, telemetry-aware", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Arrived == 0 || row.Completed == 0 {
			t.Fatalf("%s: arrived=%d completed=%d", row.Policy, row.Arrived, row.Completed)
		}
	}
	// The headline claim: consuming the runtime's telemetry beats first-fit
	// on QoS-met fraction at equal or better mean job wait.
	ta, ff := res.FracFor("telemetry-aware"), res.FracFor("first-fit")
	if ta <= ff {
		t.Errorf("telemetry-aware QoS-met %.2f not above first-fit %.2f", ta, ff)
	}
	if res.WaitFor("telemetry-aware") > res.WaitFor("first-fit") {
		t.Errorf("telemetry-aware wait %.1fs worse than first-fit %.1fs",
			res.WaitFor("telemetry-aware"), res.WaitFor("first-fit"))
	}
	out := res.Render()
	for _, want := range []string{"telemetry-aware", "best-fit", "summary:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestEnergyDiurnal is the energy subsystem's acceptance experiment: the
// approx-for-watts bundle must meet QoS in at least first-fit's fraction of
// busy node-windows at measurably lower energy, and the savings must come
// from the modeled mechanisms (parked nodes, lowered frequency states).
func TestEnergyDiurnal(t *testing.T) {
	skipIfShort(t)
	res, err := EnergyDiurnal(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want the four bundles", len(res.Rows))
	}
	afw, ff := res.RowFor("approx-for-watts"), res.RowFor("first-fit")
	if afw.QoSMetFrac < ff.QoSMetFrac {
		t.Errorf("approx-for-watts QoS-met %.3f below first-fit %.3f", afw.QoSMetFrac, ff.QoSMetFrac)
	}
	if afw.KJoules > 0.9*ff.KJoules {
		t.Errorf("approx-for-watts energy %.1fkJ not measurably below first-fit %.1fkJ",
			afw.KJoules, ff.KJoules)
	}
	if afw.ParkedNodeWindows == 0 || afw.LowFreqNodeWindows == 0 {
		t.Errorf("savings without the mechanism: parked=%d lowfreq=%d",
			afw.ParkedNodeWindows, afw.LowFreqNodeWindows)
	}
	if cons := res.RowFor("consolidate"); cons.ParkedNodeWindows == 0 || cons.KJoules >= ff.KJoules {
		t.Errorf("consolidate parked %d windows at %.1fkJ vs first-fit %.1fkJ",
			cons.ParkedNodeWindows, cons.KJoules, ff.KJoules)
	}
	// The static baselines burn the whole fleet's idle floor all day.
	if spread := res.RowFor("spread-first"); spread.ParkedNodeWindows != 0 {
		t.Errorf("spread-first parked %d windows", spread.ParkedNodeWindows)
	}
	out := res.Render()
	for _, want := range []string{"approx-for-watts", "consolidate", "spread-first", "summary:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestTraceReplay is the trace-ingestion acceptance experiment: both
// headline orderings must hold on replayed production-shaped arrivals —
// telemetry-aware placement beats first-fit on QoS-met windows, and the
// approx-for-watts bundle spends measurably less energy than first-fit
// without dropping materially below first-fit's QoS.
func TestTraceReplay(t *testing.T) {
	skipIfShort(t)
	res, err := TraceReplay(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want first-fit, telemetry-aware, approx-for-watts", len(res.Rows))
	}
	if res.TraceJobs == 0 || res.Source != "google" {
		t.Fatalf("trace metadata wrong: %d jobs from %q", res.TraceJobs, res.Source)
	}
	for _, row := range res.Rows {
		if row.Arrived != res.TraceJobs {
			t.Errorf("%s: arrived %d of %d trace jobs", row.Bundle, row.Arrived, res.TraceJobs)
		}
		if row.Completed == 0 || row.KJoules <= 0 {
			t.Errorf("%s: completed=%d energy=%.1fkJ", row.Bundle, row.Completed, row.KJoules)
		}
	}
	ta, ff := res.RowFor("telemetry-aware"), res.RowFor("first-fit")
	if ta.QoSMetFrac <= ff.QoSMetFrac {
		t.Errorf("telemetry-aware QoS-met %.3f not above first-fit %.3f on replayed arrivals",
			ta.QoSMetFrac, ff.QoSMetFrac)
	}
	afw := res.RowFor("approx-for-watts")
	if afw.KJoules >= ff.KJoules {
		t.Errorf("approx-for-watts energy %.1fkJ not below first-fit %.1fkJ", afw.KJoules, ff.KJoules)
	}
	// Approx-for-watts trades a few QoS points for watts at some seeds;
	// "not materially below first-fit" is the stable property.
	if afw.QoSMetFrac < 0.9*ff.QoSMetFrac {
		t.Errorf("approx-for-watts QoS-met %.3f fell materially below first-fit %.3f", afw.QoSMetFrac, ff.QoSMetFrac)
	}
	out := res.Render()
	for _, want := range []string{"google", "telemetry-aware", "approx-for-watts", "summary:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestObsExperiment pins the observability study: the traced day emits
// every record kind, every window snapshots its metrics, and — the property
// the layer exists for — the exports are byte-identical across shard counts.
func TestObsExperiment(t *testing.T) {
	skipIfShort(t)
	res, err := ObsTrace(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShardInvariant {
		t.Error("obs exports diverged between shard counts")
	}
	if res.Windows != 12 {
		t.Errorf("window records = %d, want 12 (120s horizon / 10s epoch)", res.Windows)
	}
	if res.Snapshots != int(res.Windows) {
		t.Errorf("snapshots = %d, want one per window (%d)", res.Snapshots, res.Windows)
	}
	if res.Episodes == 0 || res.Placements == 0 || res.Autoscale == 0 || res.Lifecycle == 0 {
		t.Errorf("record kinds missing: %+v", res)
	}
	if res.Total < res.Windows+res.Episodes+res.Placements {
		t.Errorf("total %d below component sum", res.Total)
	}
	if len(res.TraceSHA) != 64 {
		t.Errorf("trace sha %q not a sha256 hex digest", res.TraceSHA)
	}
	out := res.Render()
	for _, want := range []string{"observability", "records:", "snapshots", "byte-identical across shard counts: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	ids := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete entry %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if _, err := ByID("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	// Registry entries run end to end (via the cheapest one).
	e, _ := ByID("table1")
	r, err := e.Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

// skipIfShort gates full-scale scenario tests so `go test -short ./...`
// finishes in seconds while the full run still exercises everything.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale scenario; skipped in -short")
	}
}

// TestFaultStorm is the robustness acceptance experiment: through a
// correlated rack outage removing a quarter of capacity mid-peak,
// degrade-under-loss must hold QoS-met busy node-windows within 10 points of
// the no-fault run while first-fit-with-retries lands at least 25 points
// below it, and no bundle may lose or double-run a job — the retry ledger
// balances exactly.
func TestFaultStorm(t *testing.T) {
	skipIfShort(t)
	res, err := FaultStorm(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want first-fit, telemetry, degrade-under-loss", len(res.Rows))
	}
	if res.NoFaultQoS <= 0 {
		t.Fatalf("no-fault reference QoS = %.3f", res.NoFaultQoS)
	}
	dul, ff := res.RowFor("degrade-under-loss"), res.RowFor("first-fit")
	if gap := (res.NoFaultQoS - dul.FaultedQoS) * 100; gap > 10 {
		t.Errorf("degrade-under-loss %.1f QoS points below the no-fault run, want within 10", gap)
	}
	if gap := (res.NoFaultQoS - ff.FaultedQoS) * 100; gap < 25 {
		t.Errorf("first-fit only %.1f QoS points below the no-fault run, want >= 25", gap)
	}
	for _, row := range res.Rows {
		if row.Crashes == 0 {
			t.Errorf("%s: outage injected no crashes", row.Bundle)
		}
		if row.JobsLost != 0 {
			t.Errorf("%s: lost %d jobs", row.Bundle, row.JobsLost)
		}
		// The retry ledger: every arrival is placed, pending, or lost —
		// nothing vanishes, nothing double-runs — and every requeue shows up
		// as exactly one job retry.
		if row.Arrived != row.Placed+row.Pending+row.JobsLost {
			t.Errorf("%s: job ledger broken: %d arrived != %d placed + %d pending + %d lost",
				row.Bundle, row.Arrived, row.Placed, row.Pending, row.JobsLost)
		}
		if row.RetrySum != row.Requeued {
			t.Errorf("%s: retry ledger broken: requeued %d != retry sum %d",
				row.Bundle, row.Requeued, row.RetrySum)
		}
	}
	out := res.Render()
	for _, want := range []string{"degrade-under-loss", "first-fit", "telemetry", "summary:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestShadowServe is the serving-layer acceptance experiment: one arrival
// feed fanned to three candidate policies through the daemon's shadow-replay
// machinery must yield a verdict for every window, at least one shadow that
// actually disagrees with the baseline, and — the tentpole claim — a
// baseline result byte-identical to batch sched.Run on the same config.
func TestShadowServe(t *testing.T) {
	skipIfShort(t)
	res, err := ShadowServe(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want telemetry-aware, first-fit, spread-first", len(res.Rows))
	}
	if res.Windows == 0 {
		t.Fatal("no windows recorded")
	}
	if !res.ServeParity {
		t.Error("serve-replayed baseline diverged from batch sched.Run")
	}
	base := res.Rows[0]
	if base.DiffWindows != 0 || base.MaxDiff != 0 {
		t.Errorf("baseline diffs against itself: %d windows, max %d", base.DiffWindows, base.MaxDiff)
	}
	var disagreed bool
	for _, row := range res.Rows[1:] {
		if row.DiffWindows > 0 {
			disagreed = true
		}
		if row.DiffWindows > res.Windows {
			t.Errorf("%s: %d diff windows out of %d", row.Policy, row.DiffWindows, res.Windows)
		}
	}
	if !disagreed {
		t.Error("no shadow policy ever disagreed with the baseline")
	}
	out := res.Render()
	for _, want := range []string{"telemetry-aware", "first-fit", "spread-first", "baseline", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
