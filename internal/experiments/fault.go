package experiments

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/fault"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// FaultRow is one bundle's outcome through the rack outage, paired with its
// own no-fault baseline at the same seed so the delta isolates the outage.
type FaultRow struct {
	Bundle      string
	BaselineQoS float64 // QoS-met fraction, same seed, no faults
	FaultedQoS  float64 // QoS-met fraction through the outage
	DeltaPts    float64 // QoS points lost to the outage (baseline − faulted)
	Crashes     int
	Requeued    int
	JobsLost    int
	MeanWaitSec float64
	Completed   int
	Arrived     int
	Placed      int
	Pending     int
	RetrySum    int // Σ per-job retries; equals Requeued when no job is lost twice
}

// FaultResult compares scheduling bundles through a correlated rack outage
// that removes a quarter of the cluster mid-peak: the robustness question the
// paper's static testbed cannot ask — does approximation slack fund failure
// recovery the way it funds colocation?
type FaultResult struct {
	HorizonSec   float64
	OutageSec    float64
	OutageNodes  int
	ClusterNodes int
	// NoFaultQoS is THE no-fault reference: the QoS-met fraction of the
	// headline (degrade-under-loss) bundle run fault-free at the same seed —
	// what the cluster achieves when nothing breaks. The headline deltas
	// measure every faulted run against it.
	NoFaultQoS float64
	Rows       []FaultRow
}

// RowFor returns the named bundle's row (zero row if absent).
func (r *FaultResult) RowFor(bundle string) FaultRow {
	for _, row := range r.Rows {
		if row.Bundle == bundle {
			return row
		}
	}
	return FaultRow{}
}

// Render formats the comparison table.
func (r *FaultResult) Render() string {
	s := fmt.Sprintf("fault injection: %d-node rack outage (%d nodes, %.0fs) over a %.0fs diurnal day\n",
		r.OutageNodes, r.ClusterNodes, r.OutageSec, r.HorizonSec)
	s += fmt.Sprintf("  %-20s %9s %9s %7s %8s %9s %5s %10s %12s\n",
		"bundle", "QoS base", "QoS fault", "Δpts", "crashes", "requeued", "lost", "mean wait", "done/arrived")
	for _, row := range r.Rows {
		s += fmt.Sprintf("  %-20s %8.0f%% %8.0f%% %6.1f %8d %9d %5d %9.1fs %7d/%d\n",
			row.Bundle, row.BaselineQoS*100, row.FaultedQoS*100, row.DeltaPts,
			row.Crashes, row.Requeued, row.JobsLost, row.MeanWaitSec,
			row.Completed, row.Arrived)
	}
	dul, ff := r.RowFor("degrade-under-loss"), r.RowFor("first-fit")
	s += fmt.Sprintf("  summary: vs the no-fault run (%.0f%% QoS-met), degrade-under-loss "+
		"holds within %.1f points through the outage; first-fit-with-retries lands %.1f below\n",
		r.NoFaultQoS*100, (r.NoFaultQoS-dul.FaultedQoS)*100, (r.NoFaultQoS-ff.FaultedQoS)*100)
	return s
}

// faultBundle pairs a placement policy with an autoscaler for the study.
type faultBundle struct {
	name string
	pol  sched.Policy
	as   autoscale.Controller
}

// FaultStorm runs the robustness study: an eight-node cluster in two-node
// failure domains, one compressed diurnal day with the Table 1 power model,
// and a scripted rack outage that takes a domain — 25% of capacity — down
// through the peak. Three bundles face it: first-fit with retries (the
// strawman, which crams displaced jobs onto survivors), telemetry-aware
// placement (which paces re-admission by observed tails), and
// degrade-under-loss (telemetry placement plus the controller that funds the
// shortfall by waking reserves and snapping survivors to nominal frequency
// so approximation slack absorbs the densified colocation). Every bundle
// also runs fault-free at the same seed; the per-bundle QoS delta isolates
// what the outage cost.
func FaultStorm(p Profile) (*FaultResult, error) {
	const (
		horizon   = 120 * sim.Second
		outageAt  = 35.0
		outageSec = 50.0
	)
	shape, err := workload.NewDiurnal(0.25, horizon.Seconds())
	if err != nil {
		return nil, err
	}
	model := energy.ModelFor(platform.TablePlatform())
	plan := &fault.Plan{
		DomainSize: 2,
		Outages:    []fault.Outage{{AtSec: outageAt, Domain: 1, DurationSec: outageSec}},
	}
	bundles := []faultBundle{
		{"first-fit", sched.FirstFit{}, nil},
		{"telemetry", sched.TelemetryAware{}, nil},
		{"degrade-under-loss", sched.TelemetryAware{}, fault.DegradeUnderLoss{
			// Parking-only normal controller: consolidation keeps a parked
			// reserve on the shelf for the outage without the frequency games
			// that would muddy the QoS comparison against the other bundles.
			Normal: autoscale.Consolidate{ReserveSlots: 9},
		}},
	}
	out := &FaultResult{
		HorizonSec:   horizon.Seconds(),
		OutageSec:    outageSec,
		OutageNodes:  plan.DomainSize,
		ClusterNodes: 8,
	}
	for _, b := range bundles {
		cfg := sched.Config{
			Seed: p.seedFor("fault"),
			Nodes: []cluster.Node{
				{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
				{Name: "web-1", Service: service.NGINX, MaxApps: 3},
				{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
				{Name: "cache-2", Service: service.Memcached, MaxApps: 3},
				{Name: "web-2", Service: service.NGINX, MaxApps: 3},
				{Name: "db-2", Service: service.MongoDB, MaxApps: 3},
				{Name: "cache-3", Service: service.Memcached, MaxApps: 3},
				{Name: "web-3", Service: service.NGINX, MaxApps: 3},
			},
			Policy:     b.pol,
			Horizon:    horizon,
			Epoch:      10 * sim.Second,
			JobsPerSec: 0.25,
			BaseLoad:   0.65,
			Shape:      shape,
			TimeScale:  p.TimeScale,
			Workers:    p.parallelism(),
			Energy:     &model,
			Autoscaler: b.as,
		}
		base, err := sched.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fault bundle %s baseline: %w", b.name, err)
		}
		cfg.Faults = plan
		res, err := sched.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fault bundle %s: %w", b.name, err)
		}
		retrySum := 0
		for _, j := range res.Jobs {
			retrySum += j.Retries
		}
		if b.name == "degrade-under-loss" {
			out.NoFaultQoS = base.QoSMetFrac
		}
		out.Rows = append(out.Rows, FaultRow{
			Bundle:      b.name,
			BaselineQoS: base.QoSMetFrac,
			FaultedQoS:  res.QoSMetFrac,
			DeltaPts:    (base.QoSMetFrac - res.QoSMetFrac) * 100,
			Crashes:     res.Crashes,
			Requeued:    res.Requeued,
			JobsLost:    res.JobsLost,
			MeanWaitSec: res.MeanWaitSec,
			Completed:   res.Completed,
			Arrived:     res.Arrived,
			Placed:      res.Placed,
			Pending:     res.Pending,
			RetrySum:    retrySum,
		})
	}
	return out, nil
}
