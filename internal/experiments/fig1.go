package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/dse"
	"github.com/approx-sched/pliant/internal/service"
)

// Fig1DSEResult reproduces the odd rows of the paper's Fig. 1: for every
// application, the trade-off between execution time and inaccuracy across
// all examined variants, with the pareto-selected subset highlighted.
type Fig1DSEResult struct {
	Apps []Fig1DSEApp
}

// Fig1DSEApp is one scatter plot of Fig. 1.
type Fig1DSEApp struct {
	Name        string
	Suite       string
	Examined    int // blue dots
	AcceptHints bool
	Selected    []dse.Candidate // red dots, least→most approximate
}

// Fig1DSE runs the design-space exploration for every application in the
// profile's set (the paper explores all 24).
func Fig1DSE(p Profile) (Fig1DSEResult, error) {
	var out Fig1DSEResult
	for _, name := range p.AppNames() {
		prof, err := app.ByName(name)
		if err != nil {
			return out, err
		}
		res, err := dse.ExploreApp(prof)
		if err != nil {
			return out, err
		}
		out.Apps = append(out.Apps, Fig1DSEApp{
			Name:        prof.Name,
			Suite:       prof.Suite.String(),
			Examined:    len(res.All),
			AcceptHints: prof.AcceptHints,
			Selected:    res.Selected,
		})
	}
	return out, nil
}

// Render prints one row per application with its selected variants.
func (r Fig1DSEResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1 (odd rows): approximation design-space exploration\n")
	b.WriteString("  app               suite      hints   examined selected  (timeScale@inaccuracy%)\n")
	for _, a := range r.Apps {
		hints := "gprof"
		if a.AcceptHints {
			hints = "ACCEPT"
		}
		fmt.Fprintf(&b, "  %-17s %-10s %-7s %8d %8d  ", a.Name, a.Suite, hints, a.Examined, len(a.Selected))
		for i, c := range a.Selected {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "v%d:%.2f@%.2f%%", i+1, c.Effect.TimeScale, c.Effect.Inaccuracy)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig1ImpactResult reproduces the even rows of the paper's Fig. 1: the tail
// latency (relative to QoS) each selected variant — and precise execution —
// imposes on each of the three interactive services.
type Fig1ImpactResult struct {
	Rows []Fig1ImpactRow
}

// Fig1ImpactRow is one (application, service) bar group.
type Fig1ImpactRow struct {
	App     string
	Service string
	// P99OverQoS[0] is precise execution; entry i>0 is selected variant i
	// (ordered least→most approximate).
	P99OverQoS []float64
}

// Fig1Impact measures tail latency per pinned variant for every (app,
// service) pair in the profile.
func Fig1Impact(p Profile) (Fig1ImpactResult, error) {
	apps := p.AppNames()
	classes := service.Classes()

	type task struct {
		appName string
		cls     service.Class
	}
	var tasks []task
	for _, a := range apps {
		for _, c := range classes {
			tasks = append(tasks, task{a, c})
		}
	}
	rows := make([]Fig1ImpactRow, len(tasks))

	err := p.forEach(len(tasks), func(i int) error {
		t := tasks[i]
		prof, err := app.ByName(t.appName)
		if err != nil {
			return err
		}
		variants, err := dse.VariantsFor(prof)
		if err != nil {
			return err
		}
		row := Fig1ImpactRow{App: t.appName, Service: t.cls.String()}
		for v := 0; v < len(variants); v++ {
			cfg := colocate.Config{
				Seed:          p.seedFor(fmt.Sprintf("fig1/%s/%s/v%d", t.appName, t.cls, v)),
				Service:       t.cls,
				AppNames:      []string{t.appName},
				FixedVariants: map[string]int{t.appName: v},
				TimeScale:     p.TimeScale,
				MaxDuration:   p.maxDuration(),
			}
			res, err := colocate.Run(cfg)
			if err != nil {
				return err
			}
			row.P99OverQoS = append(row.P99OverQoS, res.TypicalOverQoS())
		}
		rows[i] = row
		return nil
	})
	return Fig1ImpactResult{Rows: rows}, err
}

// Render prints one row per (app, service) with precise and per-variant
// latency ratios.
func (r Fig1ImpactResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1 (even rows): tail latency vs QoS per selected variant\n")
	b.WriteString("  app               service     precise  v1..vK (p99/QoS)\n")
	rows := append([]Fig1ImpactRow(nil), r.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].App != rows[j].App {
			return rows[i].App < rows[j].App
		}
		return rows[i].Service < rows[j].Service
	})
	for _, row := range rows {
		if len(row.P99OverQoS) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-17s %-10s %s  ", row.App, row.Service, fmtRatio(row.P99OverQoS[0]))
		for _, v := range row.P99OverQoS[1:] {
			fmt.Fprintf(&b, "%s ", fmtRatio(v))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PreciseViolationFraction returns the fraction of (app, service) pairs
// whose precise execution violated QoS — the paper's Fig. 1 observation is
// that this "almost always" happens.
func (r Fig1ImpactResult) PreciseViolationFraction() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if len(row.P99OverQoS) > 0 && row.P99OverQoS[0] > 1 {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// MostApproxImprovement returns the mean ratio of precise to most-approximate
// tail latency across rows: how much approximation alone helps.
func (r Fig1ImpactResult) MostApproxImprovement() float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if len(row.P99OverQoS) < 2 {
			continue
		}
		most := row.P99OverQoS[len(row.P99OverQoS)-1]
		if most <= 0 {
			continue
		}
		sum += row.P99OverQoS[0] / most
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
