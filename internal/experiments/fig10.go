package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
)

// Fig10Bucket classifies one colocation run by the deepest intervention
// Pliant needed: approximation alone, or 1/2/3/4+ reclaimed cores.
type Fig10Bucket int

// The buckets of the paper's Fig. 10 breakdown.
const (
	ApproxAlone Fig10Bucket = iota
	OneCore
	TwoCores
	ThreeCores
	FourPlusCores
)

// String names the bucket as the paper's legend does.
func (b Fig10Bucket) String() string {
	switch b {
	case ApproxAlone:
		return "Approx"
	case OneCore:
		return "1 core"
	case TwoCores:
		return "2 cores"
	case ThreeCores:
		return "3 cores"
	default:
		return "4 cores+"
	}
}

// Fig10Result is the per-service breakdown of how often approximation alone
// sufficed versus how many cores had to be reclaimed, across 1-, 2-, and
// 3-app colocations.
type Fig10Result struct {
	// Fraction[svc][bucket] is the fraction of runs in the bucket.
	Fraction map[string][5]float64
	Runs     map[string]int
}

// Fig10Breakdown runs 1-, 2-, and 3-app mixes for each service and
// classifies the deepest concurrent core reclamation of each run.
func Fig10Breakdown(p Profile) (Fig10Result, error) {
	classes := service.Classes()
	names := p.AppNames()
	rng := sim.NewRNG(p.seedFor("fig10/combos"))

	// Build the mix list: all single apps plus sampled 2-/3-way mixes.
	var mixes [][]string
	for _, n := range names {
		mixes = append(mixes, []string{n})
	}
	for arity := 2; arity <= 3; arity++ {
		combos := enumerate(names, arity)
		limit := p.CombosPerArity
		if limit > 0 && len(combos) > limit {
			rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
			combos = combos[:limit]
		}
		mixes = append(mixes, combos...)
	}

	type task struct {
		cls service.Class
		mix []string
	}
	var tasks []task
	for _, cls := range classes {
		for _, m := range mixes {
			tasks = append(tasks, task{cls, m})
		}
	}
	buckets := make([]Fig10Bucket, len(tasks))
	err := p.forEach(len(tasks), func(i int) error {
		t := tasks[i]
		cfg := colocate.Config{
			Seed:      p.seedFor(fmt.Sprintf("fig10/%s/%s", t.cls, strings.Join(t.mix, "+"))),
			Service:   t.cls,
			AppNames:  t.mix,
			Runtime:   colocate.Pliant,
			TimeScale: p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		// Sustained total reclamation: per decision interval, sum the cores
		// currently yielded across apps, then take the median over the run.
		// The median (rather than the high-water mark) reflects what the
		// colocation *needed* to hold QoS, ignoring the brief overshoot of
		// the adaptation transients visible in Fig. 4.
		sustained := 0
		if n := res.Intervals; n > 0 {
			totals := make([]float64, 0, n)
			for idx := 0; idx < n; idx++ {
				total := 0.0
				for _, name := range t.mix {
					s := res.Trace.Series("yielded." + name)
					if idx < s.Len() {
						total += s.Points[idx].V
					}
				}
				totals = append(totals, total)
			}
			med := stats.Quantiles(totals, 0.5)[0]
			sustained = int(med + 0.5)
		}
		switch {
		case sustained == 0:
			buckets[i] = ApproxAlone
		case sustained == 1:
			buckets[i] = OneCore
		case sustained == 2:
			buckets[i] = TwoCores
		case sustained == 3:
			buckets[i] = ThreeCores
		default:
			buckets[i] = FourPlusCores
		}
		return nil
	})
	if err != nil {
		return Fig10Result{}, err
	}

	out := Fig10Result{Fraction: map[string][5]float64{}, Runs: map[string]int{}}
	for _, cls := range classes {
		name := cls.String()
		var counts [5]int
		total := 0
		for i, t := range tasks {
			if t.cls != cls {
				continue
			}
			counts[buckets[i]]++
			total++
		}
		var fr [5]float64
		for b := range fr {
			if total > 0 {
				fr[b] = float64(counts[b]) / float64(total)
			}
		}
		out.Fraction[name] = fr
		out.Runs[name] = total
	}
	return out, nil
}

// Render prints the stacked-bar fractions per service.
func (r Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10: breakdown of approximation-alone vs core reclamation\n")
	b.WriteString("  service     runs   Approx  1 core  2 cores 3 cores 4 cores+\n")
	for _, svc := range []string{"nginx", "memcached", "mongodb"} {
		fr := r.Fraction[svc]
		fmt.Fprintf(&b, "  %-10s %5d   %5.0f%%  %5.0f%%  %5.0f%%  %5.0f%%  %5.0f%%\n",
			svc, r.Runs[svc], fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100, fr[4]*100)
	}
	return b.String()
}

// ApproxAloneFraction returns the fraction of runs needing no reclaimed
// cores for one service (paper: NGINX 33%; memcached almost never; MongoDB
// the majority together with 1 core).
func (r Fig10Result) ApproxAloneFraction(svc string) float64 {
	return r.Fraction[svc][ApproxAlone]
}
