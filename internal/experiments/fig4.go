package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/stats"
)

// Fig4Apps are the four approximate applications the paper highlights in its
// dynamic-behavior study, chosen for their diverse resource requirements and
// variant richness (canneal 4, raytrace 2, Bayesian 8, SNP 5).
var Fig4Apps = []string{"canneal", "raytrace", "Bayesian", "SNP"}

// Fig4Cell is one panel of the paper's Fig. 4: an interactive service
// colocated with one approximate application under Pliant, traced over time.
type Fig4Cell struct {
	Service  string
	App      string
	Variants int // available approximate variants

	// P99OverQoS, Yielded, and Variant are per-decision-interval series.
	P99OverQoS *stats.Series
	Yielded    *stats.Series
	Variant    *stats.Series

	ViolationFrac float64
	ExecRelative  float64 // app execution time / nominal precise
	Inaccuracy    float64
	MaxYielded    int
}

// Fig4Result is the full 3×4 grid.
type Fig4Result struct {
	Cells []Fig4Cell
}

// Fig4Dynamic traces Pliant's dynamic behavior for each of the three
// services colocated with each highlighted application.
func Fig4Dynamic(p Profile) (Fig4Result, error) {
	classes := service.Classes()
	cells := make([]Fig4Cell, len(classes)*len(Fig4Apps))
	err := p.forEach(len(cells), func(i int) error {
		cls := classes[i/len(Fig4Apps)]
		appName := Fig4Apps[i%len(Fig4Apps)]
		cfg := colocate.Config{
			Seed:      p.seedFor(fmt.Sprintf("fig4/%s/%s", cls, appName)),
			Service:   cls,
			AppNames:  []string{appName},
			Runtime:   colocate.Pliant,
			TimeScale: p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		a := res.Apps[0]
		cells[i] = Fig4Cell{
			Service:       cls.String(),
			App:           appName,
			Variants:      a.VariantMax,
			P99OverQoS:    res.Trace.Series("p99"),
			Yielded:       res.Trace.Series("yielded." + appName),
			Variant:       res.Trace.Series("variant." + appName),
			ViolationFrac: res.ViolationFrac,
			ExecRelative:  a.RelNominal,
			Inaccuracy:    a.Inaccuracy,
			MaxYielded:    a.MaxYielded,
		}
		return nil
	})
	return Fig4Result{Cells: cells}, err
}

// Render prints each panel as a compact per-second trace.
func (r Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4: Pliant dynamic behavior (per decision interval)\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n  %s + %s (%d approx) — viol %.0f%%, exec %.2fx, inacc %.1f%%, max cores yielded %d\n",
			c.Service, c.App, c.Variants, c.ViolationFrac*100, c.ExecRelative, c.Inaccuracy, c.MaxYielded)
		b.WriteString("    t(s)  p99/QoS  variant  yielded\n")
		for i, pt := range c.P99OverQoS.Points {
			fmt.Fprintf(&b, "    %4.0f  %7.2f  %7.0f  %7.0f\n",
				pt.T, pt.V, c.Variant.Points[i].V, c.Yielded.Points[i].V)
		}
	}
	return b.String()
}

// MeanInaccuracy reports the average quality loss across the panels (paper
// Sec. 6.1: 2.7% for the Fig. 4 applications).
func (r Fig4Result) MeanInaccuracy() float64 {
	vals := make([]float64, 0, len(r.Cells))
	for _, c := range r.Cells {
		vals = append(vals, c.Inaccuracy)
	}
	return stats.Mean(vals)
}
