package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/stats"
)

// Fig5Row is one (service, app) bar group of the paper's Fig. 5: precise vs
// Pliant tail latency, the app's execution time relative to the precise
// colocated run, its quality loss, and the instrumentation overhead whisker.
type Fig5Row struct {
	Service string
	App     string

	PreciseP99OverQoS float64
	PliantP99OverQoS  float64

	// ExecRelPrecise is the Pliant run's app execution time divided by the
	// precise colocated run's (the paper's "Relative Execution Time"
	// markers; 1.0 means nominal performance preserved).
	ExecRelPrecise float64

	Inaccuracy  float64 // marker label, percent
	DynOverhead float64 // whisker, fraction
}

// Fig5Result is the full 3×24 comparison.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5Aggregate runs the precise baseline and Pliant for every (service,
// app) pair in the profile.
func Fig5Aggregate(p Profile) (Fig5Result, error) {
	apps := p.AppNames()
	classes := service.Classes()
	rows := make([]Fig5Row, len(apps)*len(classes))
	err := p.forEach(len(rows), func(i int) error {
		cls := classes[i/len(apps)]
		appName := apps[i%len(apps)]
		base := colocate.Config{
			Seed:      p.seedFor(fmt.Sprintf("fig5/%s/%s", cls, appName)),
			Service:   cls,
			AppNames:  []string{appName},
			TimeScale: p.TimeScale,
		}

		preciseCfg := base
		preciseCfg.Runtime = colocate.Precise
		precise, err := colocate.Run(preciseCfg)
		if err != nil {
			return err
		}
		pliantCfg := base
		pliantCfg.Runtime = colocate.Pliant
		pliant, err := colocate.Run(pliantCfg)
		if err != nil {
			return err
		}

		execRel := 0.0
		if precise.Apps[0].ExecTime > 0 {
			execRel = pliant.Apps[0].ExecTime.Seconds() / precise.Apps[0].ExecTime.Seconds()
		}
		rows[i] = Fig5Row{
			Service:           cls.String(),
			App:               appName,
			PreciseP99OverQoS: precise.TypicalOverQoS(),
			PliantP99OverQoS:  pliant.TypicalOverQoS(),
			ExecRelPrecise:    execRel,
			Inaccuracy:        pliant.Apps[0].Inaccuracy,
			DynOverhead:       pliant.Apps[0].DynOverhead,
		}
		return nil
	})
	return Fig5Result{Rows: rows}, err
}

// Render prints the comparison grouped by service, in catalog order.
func (r Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5: precise vs Pliant across services and applications\n")
	for _, svc := range []string{"nginx", "memcached", "mongodb"} {
		fmt.Fprintf(&b, "\n  %s (p99 relative to QoS)\n", svc)
		b.WriteString("    app               precise  pliant   execRel  inacc%  dynovh%\n")
		for _, row := range r.Rows {
			if row.Service != svc {
				continue
			}
			fmt.Fprintf(&b, "    %-17s %s  %s  %6.2fx  %5.1f  %6.1f\n",
				row.App, fmtRatio(row.PreciseP99OverQoS), fmtRatio(row.PliantP99OverQoS),
				row.ExecRelPrecise, row.Inaccuracy, row.DynOverhead*100)
		}
	}
	fmt.Fprintf(&b, "\n  summary: %s\n", r.Summary())
	return b.String()
}

// Summary condenses the paper's headline claims for Fig. 5.
func (r Fig5Result) Summary() string {
	var (
		preciseViol          = 0
		pliantMeets          = 0
		inaccs, execs, ratio []float64
	)
	for _, row := range r.Rows {
		if row.PreciseP99OverQoS > 1 {
			preciseViol++
		}
		if row.PliantP99OverQoS <= 1 {
			pliantMeets++
		}
		inaccs = append(inaccs, row.Inaccuracy)
		execs = append(execs, row.ExecRelPrecise)
		ratio = append(ratio, row.PreciseP99OverQoS)
	}
	return fmt.Sprintf(
		"precise violates %d/%d pairs (up to %.1fx QoS); pliant meets QoS on %d/%d; "+
			"inaccuracy mean %.1f%% max %.1f%%; exec time mean %.2fx of precise",
		preciseViol, len(r.Rows), stats.MaxOf(ratio),
		pliantMeets, len(r.Rows),
		stats.Mean(inaccs), stats.MaxOf(inaccs), stats.Mean(execs))
}

// ViolationRange returns the min and max precise-mode p99/QoS for one
// service (paper: NGINX 2.1–9.8×, memcached 1.46–3.8×, MongoDB 2.08–5.91×).
func (r Fig5Result) ViolationRange(svc string) (lo, hi float64) {
	lo, hi = 0, 0
	for _, row := range r.Rows {
		if row.Service != svc {
			continue
		}
		v := row.PreciseP99OverQoS
		if lo == 0 || v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MeanInaccuracy returns the average quality loss across all pairs (paper:
// 2.1%).
func (r Fig5Result) MeanInaccuracy() float64 {
	vals := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		vals = append(vals, row.Inaccuracy)
	}
	return stats.Mean(vals)
}
