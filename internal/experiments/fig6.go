package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/stats"
)

// Fig6Pair is the two-application colocation the paper traces: canneal and
// Bayesian sharing a server with each interactive service.
var Fig6Pair = []string{"canneal", "Bayesian"}

// Fig6AppTrace is one stacked sub-panel of Fig. 6 (one approximate app).
type Fig6AppTrace struct {
	App        string
	Variant    *stats.Series
	Yielded    *stats.Series
	Inaccuracy float64
	ExecRel    float64
	MaxYielded int
}

// Fig6Cell is one column of Fig. 6: a service with the two traced apps.
type Fig6Cell struct {
	Service       string
	P99OverQoS    *stats.Series
	ViolationFrac float64
	Apps          []Fig6AppTrace
}

// Fig6Result is the three-service study.
type Fig6Result struct {
	Cells []Fig6Cell
}

// Fig6MultiApp traces Pliant managing two approximate applications at once
// under each interactive service (paper Sec. 6.3).
func Fig6MultiApp(p Profile) (Fig6Result, error) {
	classes := service.Classes()
	cells := make([]Fig6Cell, len(classes))
	err := p.forEach(len(classes), func(i int) error {
		cls := classes[i]
		cfg := colocate.Config{
			Seed:      p.seedFor(fmt.Sprintf("fig6/%s", cls)),
			Service:   cls,
			AppNames:  append([]string(nil), Fig6Pair...),
			Runtime:   colocate.Pliant,
			TimeScale: p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		cell := Fig6Cell{
			Service:       cls.String(),
			P99OverQoS:    res.Trace.Series("p99"),
			ViolationFrac: res.ViolationFrac,
		}
		for _, a := range res.Apps {
			cell.Apps = append(cell.Apps, Fig6AppTrace{
				App:        a.Name,
				Variant:    res.Trace.Series("variant." + a.Name),
				Yielded:    res.Trace.Series("yielded." + a.Name),
				Inaccuracy: a.Inaccuracy,
				ExecRel:    a.RelFairShare,
				MaxYielded: a.MaxYielded,
			})
		}
		cells[i] = cell
		return nil
	})
	return Fig6Result{Cells: cells}, err
}

// Render prints each column with both apps' per-interval state.
func (r Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 6: Pliant managing two approximate applications (canneal + Bayesian)\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n  %s — viol %.0f%%\n", c.Service, c.ViolationFrac*100)
		for _, a := range c.Apps {
			fmt.Fprintf(&b, "    %-9s inacc %.1f%%, exec %.2fx, max yielded %d\n",
				a.App, a.Inaccuracy, a.ExecRel, a.MaxYielded)
		}
		b.WriteString("    t(s)  p99/QoS")
		for _, a := range c.Apps {
			fmt.Fprintf(&b, "  %s(v,y)", a.App[:4])
		}
		b.WriteString("\n")
		for i, pt := range c.P99OverQoS.Points {
			fmt.Fprintf(&b, "    %4.0f  %7.2f", pt.T, pt.V)
			for _, a := range c.Apps {
				v, y := 0.0, 0.0
				if i < a.Variant.Len() {
					v = a.Variant.Points[i].V
					y = a.Yielded.Points[i].V
				}
				fmt.Fprintf(&b, "   %3.0f,%2.0f", v, y)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// BalancedPenalty reports the largest cross-app inaccuracy gap per service —
// the paper's claim that "no case where a single application sacrifices a
// disproportionate amount of its accuracy".
func (r Fig6Result) BalancedPenalty() float64 {
	worst := 0.0
	for _, c := range r.Cells {
		if len(c.Apps) < 2 {
			continue
		}
		var vals []float64
		for _, a := range c.Apps {
			vals = append(vals, a.Inaccuracy)
		}
		gap := stats.MaxOf(vals) - stats.MinOf(vals)
		if gap > worst {
			worst = gap
		}
	}
	return worst
}
