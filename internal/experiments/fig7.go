package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
)

// Fig7Cell is one violin triple of the paper's Fig. 7: the distributions of
// interactive tail latency, approximate-app execution time, and inaccuracy
// across every colocation of a given arity under one service.
type Fig7Cell struct {
	Service string
	Arity   int // number of colocated approximate apps
	Runs    int

	Latency    stats.Violin // p99 normalized to QoS, one sample per run
	ExecTime   stats.Violin // relative execution time, one sample per app per run
	Inaccuracy stats.Violin // percent, one sample per app per run
}

// Fig7Result is the full 3-services × 3-arities study.
type Fig7Result struct {
	Cells   []Fig7Cell
	Sampled bool // true when combinations were sampled rather than enumerated
}

// Fig7Violin runs 1-, 2-, and 3-way colocations for each service. The paper
// enumerates all combinations of the 24 applications; the fast profile
// samples CombosPerArity random combinations per (service, arity) instead
// and records that it did.
func Fig7Violin(p Profile) (Fig7Result, error) {
	classes := service.Classes()
	names := p.AppNames()

	type task struct {
		cls  service.Class
		apps []string
	}
	var tasks []task
	rng := sim.NewRNG(p.seedFor("fig7/combos"))
	sampled := false
	for _, cls := range classes {
		for arity := 1; arity <= 3; arity++ {
			combos := enumerate(names, arity)
			if p.CombosPerArity > 0 && len(combos) > p.CombosPerArity {
				sampled = true
				rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
				combos = combos[:p.CombosPerArity]
			}
			for _, combo := range combos {
				tasks = append(tasks, task{cls, combo})
			}
		}
	}

	type sample struct {
		cls     service.Class
		arity   int
		latency float64
		execs   []float64
		inaccs  []float64
	}
	samples := make([]sample, len(tasks))
	err := p.forEach(len(tasks), func(i int) error {
		t := tasks[i]
		cfg := colocate.Config{
			Seed:      p.seedFor(fmt.Sprintf("fig7/%s/%s", t.cls, strings.Join(t.apps, "+"))),
			Service:   t.cls,
			AppNames:  t.apps,
			Runtime:   colocate.Pliant,
			TimeScale: p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		s := sample{cls: t.cls, arity: len(t.apps), latency: res.TypicalOverQoS()}
		for _, a := range res.Apps {
			s.execs = append(s.execs, a.RelFairShare)
			s.inaccs = append(s.inaccs, a.Inaccuracy)
		}
		samples[i] = s
		return nil
	})
	if err != nil {
		return Fig7Result{}, err
	}

	var out Fig7Result
	out.Sampled = sampled
	for _, cls := range classes {
		for arity := 1; arity <= 3; arity++ {
			var lats, execs, inaccs []float64
			runs := 0
			for _, s := range samples {
				if s.cls != cls || s.arity != arity {
					continue
				}
				runs++
				lats = append(lats, s.latency)
				execs = append(execs, s.execs...)
				inaccs = append(inaccs, s.inaccs...)
			}
			out.Cells = append(out.Cells, Fig7Cell{
				Service:    cls.String(),
				Arity:      arity,
				Runs:       runs,
				Latency:    stats.NewViolin(lats, 12),
				ExecTime:   stats.NewViolin(execs, 12),
				Inaccuracy: stats.NewViolin(inaccs, 12),
			})
		}
	}
	return out, nil
}

// enumerate returns all arity-sized combinations of names, in lexical order.
func enumerate(names []string, arity int) [][]string {
	var out [][]string
	var rec func(start int, cur []string)
	rec = func(start int, cur []string) {
		if len(cur) == arity {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := start; i < len(names); i++ {
			rec(i+1, append(cur, names[i]))
		}
	}
	rec(0, nil)
	return out
}

// Render prints each violin as a five-number summary.
func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 7: colocation-arity distributions (violin five-number summaries)\n")
	if r.Sampled {
		b.WriteString("  (combinations sampled; -full enumerates all, as the paper does)\n")
	}
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n  %s, %d approx app(s), %d runs\n", c.Service, c.Arity, c.Runs)
		p := func(label string, v stats.Violin) {
			fmt.Fprintf(&b, "    %-12s min %.2f  q1 %.2f  med %.2f  q3 %.2f  max %.2f\n",
				label, v.Min, v.Q1, v.Median, v.Q3, v.Max)
		}
		p("p99/QoS", c.Latency)
		p("exec time", c.ExecTime)
		p("inaccuracy%", c.Inaccuracy)
	}
	return b.String()
}

// InaccuracySpread returns the inaccuracy violin spread for a (service,
// arity) cell; the paper's observation is that spreads tighten ("become more
// centralized") as arity grows.
func (r Fig7Result) InaccuracySpread(svc string, arity int) float64 {
	for _, c := range r.Cells {
		if c.Service == svc && c.Arity == arity {
			return c.Inaccuracy.Spread()
		}
	}
	return 0
}
