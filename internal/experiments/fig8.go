package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
)

// Fig8Loads are the offered-load points of the paper's input-load
// sensitivity study: 40% to 100% of saturation in 10% steps.
var Fig8Loads = []float64{0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00}

// Fig8Point is one (service, app, load) measurement under Pliant.
type Fig8Point struct {
	Service    string
	App        string
	Load       float64
	P99OverQoS float64
	ExecRel    float64
	Inaccuracy float64
	MaxYielded int
}

// Fig8Result holds the sweep plus the precise-only QoS cliff per service.
type Fig8Result struct {
	Points []Fig8Point

	// PreciseCliff maps each service to the highest swept load at which
	// the *precise-only* colocation still met QoS (paper Sec. 6.4: 48% for
	// NGINX, 46% for memcached, 77% for MongoDB). The cliff is measured
	// against a representative heavy co-runner.
	PreciseCliff map[string]float64

	// CliffApp is the co-runner used for the precise-only cliff.
	CliffApp string
}

// fig8CliffLoads sweeps finer around the paper's reported cliffs.
var fig8CliffLoads = []float64{0.30, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.90}

// Fig8LoadSweep measures Pliant across input loads for every app in the
// profile, plus the precise-only cliff.
func Fig8LoadSweep(p Profile) (Fig8Result, error) {
	classes := service.Classes()
	apps := p.AppNames()

	type task struct {
		cls  service.Class
		app  string
		load float64
	}
	var tasks []task
	for _, cls := range classes {
		for _, a := range apps {
			for _, load := range Fig8Loads {
				tasks = append(tasks, task{cls, a, load})
			}
		}
	}
	points := make([]Fig8Point, len(tasks))
	err := p.forEach(len(tasks), func(i int) error {
		t := tasks[i]
		cfg := colocate.Config{
			Seed:         p.seedFor(fmt.Sprintf("fig8/%s/%s/%.2f", t.cls, t.app, t.load)),
			Service:      t.cls,
			AppNames:     []string{t.app},
			Runtime:      colocate.Pliant,
			LoadFraction: t.load,
			TimeScale:    p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		points[i] = Fig8Point{
			Service:    t.cls.String(),
			App:        t.app,
			Load:       t.load,
			P99OverQoS: res.TypicalOverQoS(),
			ExecRel:    res.Apps[0].RelNominal,
			Inaccuracy: res.Apps[0].Inaccuracy,
			MaxYielded: res.Apps[0].MaxYielded,
		}
		return nil
	})
	if err != nil {
		return Fig8Result{}, err
	}

	out := Fig8Result{Points: points, PreciseCliff: map[string]float64{}, CliffApp: "canneal"}
	type cliffTask struct {
		cls  service.Class
		load float64
	}
	var ctasks []cliffTask
	for _, cls := range classes {
		for _, load := range fig8CliffLoads {
			ctasks = append(ctasks, cliffTask{cls, load})
		}
	}
	meets := make([]bool, len(ctasks))
	err = p.forEach(len(ctasks), func(i int) error {
		t := ctasks[i]
		cfg := colocate.Config{
			Seed:         p.seedFor(fmt.Sprintf("fig8cliff/%s/%.2f", t.cls, t.load)),
			Service:      t.cls,
			AppNames:     []string{out.CliffApp},
			Runtime:      colocate.Precise,
			LoadFraction: t.load,
			TimeScale:    p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		meets[i] = res.MeetsQoS()
		return nil
	})
	if err != nil {
		return Fig8Result{}, err
	}
	for i, t := range ctasks {
		if meets[i] {
			name := t.cls.String()
			if t.load > out.PreciseCliff[name] {
				out.PreciseCliff[name] = t.load
			}
		}
	}
	return out, nil
}

// Render prints the sweep grouped by service and app.
func (r Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8: input-load sensitivity under Pliant\n")
	for _, svc := range []string{"nginx", "memcached", "mongodb"} {
		fmt.Fprintf(&b, "\n  %s (precise-only meets QoS up to %.0f%% load with %s)\n",
			svc, r.PreciseCliff[svc]*100, r.CliffApp)
		b.WriteString("    app               load  p99/QoS  execRel  inacc%  yielded\n")
		for _, pt := range r.Points {
			if pt.Service != svc {
				continue
			}
			fmt.Fprintf(&b, "    %-17s %4.0f%%  %s  %6.2fx  %5.1f  %7d\n",
				pt.App, pt.Load*100, fmtRatio(pt.P99OverQoS), pt.ExecRel, pt.Inaccuracy, pt.MaxYielded)
		}
	}
	return b.String()
}

// MeetsUpTo returns the highest load at which Pliant kept the (service, app)
// pair within QoS across the sweep.
func (r Fig8Result) MeetsUpTo(svc, app string) float64 {
	best := 0.0
	for _, pt := range r.Points {
		if pt.Service == svc && pt.App == app && pt.P99OverQoS <= 1.0 && pt.Load > best {
			best = pt.Load
		}
	}
	return best
}
