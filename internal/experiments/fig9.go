package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
)

// Fig9Intervals are the decision intervals swept by the paper's sensitivity
// study (0.2 s to 8 s).
var Fig9Intervals = []sim.Duration{
	200 * sim.Millisecond,
	sim.Second,
	2 * sim.Second,
	3 * sim.Second,
	4 * sim.Second,
	5 * sim.Second,
	6 * sim.Second,
	7 * sim.Second,
	8 * sim.Second,
}

// Fig9Apps are the applications the paper shows for the decision-interval
// study (the PARSEC and SPLASH-2 workloads, colocated with memcached).
var Fig9Apps = []string{
	"fluidanimate", "canneal", "raytrace", "water_nsquared", "water_spatial", "streamcluster",
}

// Fig9Point is one (app, interval) measurement with memcached.
type Fig9Point struct {
	App        string
	Interval   sim.Duration
	P99OverQoS float64
	ExecRel    float64
	Inaccuracy float64
	Switches   uint64
}

// Fig9Result is the decision-interval sensitivity study.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9Interval sweeps Pliant's decision interval for memcached colocations.
func Fig9Interval(p Profile) (Fig9Result, error) {
	type task struct {
		app      string
		interval sim.Duration
	}
	var tasks []task
	for _, a := range Fig9Apps {
		for _, iv := range Fig9Intervals {
			tasks = append(tasks, task{a, iv})
		}
	}
	points := make([]Fig9Point, len(tasks))
	err := p.forEach(len(tasks), func(i int) error {
		t := tasks[i]
		cfg := colocate.Config{
			Seed:             p.seedFor(fmt.Sprintf("fig9/%s/%v", t.app, t.interval)),
			Service:          service.Memcached,
			AppNames:         []string{t.app},
			Runtime:          colocate.Pliant,
			DecisionInterval: t.interval,
			TimeScale:        p.TimeScale,
		}
		res, err := colocate.Run(cfg)
		if err != nil {
			return err
		}
		points[i] = Fig9Point{
			App:        t.app,
			Interval:   t.interval,
			P99OverQoS: res.TypicalOverQoS(),
			ExecRel:    res.Apps[0].RelNominal,
			Inaccuracy: res.Apps[0].Inaccuracy,
			Switches:   res.Apps[0].Switches,
		}
		return nil
	})
	return Fig9Result{Points: points}, err
}

// Render prints per-app rows across intervals.
func (r Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9: decision-interval sensitivity (memcached)\n")
	b.WriteString("  app               interval  p99/QoS  execRel  inacc%  switches\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "  %-17s %8v  %s  %6.2fx  %5.1f  %8d\n",
			pt.App, pt.Interval, fmtRatio(pt.P99OverQoS), pt.ExecRel, pt.Inaccuracy, pt.Switches)
	}
	return b.String()
}

// MeanP99At averages p99/QoS across apps at one interval — the paper's
// finding is that intervals above one second leave prolonged violations
// while one second or less satisfies QoS.
func (r Fig9Result) MeanP99At(interval sim.Duration) float64 {
	sum, n := 0.0, 0
	for _, pt := range r.Points {
		if pt.Interval == interval {
			sum += pt.P99OverQoS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
