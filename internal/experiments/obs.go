package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// ObsResult summarizes the observability study: what one energy-managed
// diurnal day emits through the tracer and metrics registry, and the
// determinism property the layer is built around — the exported bytes are
// identical at every shard count.
type ObsResult struct {
	HorizonSec float64

	// Record counts by kind over the day.
	Windows    uint64
	Episodes   uint64
	Placements uint64
	Autoscale  uint64
	Lifecycle  uint64
	Total      uint64

	// Snapshots is how many per-window metric rows the registry captured.
	Snapshots int

	// TraceSHA fingerprints the Chrome trace bytes (stable across runs and
	// shard counts for a fixed seed).
	TraceSHA string

	// ShardInvariant reports whether trace, Prometheus, and CSV exports were
	// byte-identical between a single-engine and a sharded run.
	ShardInvariant bool
}

// Render formats the observability summary.
func (r *ObsResult) Render() string {
	s := fmt.Sprintf("observability: decision trace of an energy-managed diurnal day (%.0fs)\n", r.HorizonSec)
	s += fmt.Sprintf("  records: %d total — %d episodes, %d placements, %d autoscale, %d lifecycle, %d windows\n",
		r.Total, r.Episodes, r.Placements, r.Autoscale, r.Lifecycle, r.Windows)
	s += fmt.Sprintf("  metrics: %d per-window snapshots\n", r.Snapshots)
	s += fmt.Sprintf("  chrome trace sha256: %s…\n", r.TraceSHA[:16])
	s += fmt.Sprintf("  exports byte-identical across shard counts: %v\n", r.ShardInvariant)
	return s
}

// obsDayConfig is the study's cluster day: six energy-managed nodes under
// consolidation autoscaling and sinusoidal load.
func obsDayConfig(p Profile, shards int, o *obs.Observer) sched.Config {
	const horizon = 120 * sim.Second
	shape, _ := workload.NewDiurnal(0.25, horizon.Seconds())
	model := energy.ModelFor(platform.TablePlatform())
	return sched.Config{
		Seed: p.seedFor("obs"),
		Nodes: []cluster.Node{
			{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
			{Name: "cache-2", Service: service.Memcached, MaxApps: 3},
			{Name: "web-1", Service: service.NGINX, MaxApps: 3},
			{Name: "web-2", Service: service.NGINX, MaxApps: 3},
			{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
			{Name: "db-2", Service: service.MongoDB, MaxApps: 3},
		},
		Policy:     sched.TelemetryAware{},
		Horizon:    horizon,
		Epoch:      10 * sim.Second,
		JobsPerSec: 0.18,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  p.TimeScale,
		Workers:    p.parallelism(),
		Shards:     shards,
		Energy:     &model,
		Autoscaler: autoscale.Consolidate{},
		Obs:        o,
	}
}

// obsExports runs the study at the given shard count and returns the three
// export byte streams plus the observer.
func obsExports(p Profile, shards int) (*obs.Observer, []byte, []byte, []byte, error) {
	o := obs.New(obs.Options{})
	cfg := obsDayConfig(p, shards, o)
	if _, err := sched.Run(cfg); err != nil {
		return nil, nil, nil, nil, err
	}
	meta := obs.TraceMeta{Policy: cfg.Policy.Name()}
	for _, n := range cfg.Nodes {
		meta.NodeNames = append(meta.NodeNames, n.Name)
	}
	var trace, prom, csv bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, o.Tracer, meta); err != nil {
		return nil, nil, nil, nil, err
	}
	if err := obs.WriteMetricsProm(&prom, o.Metrics); err != nil {
		return nil, nil, nil, nil, err
	}
	if err := obs.WriteMetricsCSV(&csv, o.Metrics); err != nil {
		return nil, nil, nil, nil, err
	}
	return o, trace.Bytes(), prom.Bytes(), csv.Bytes(), nil
}

// ObsTrace runs the observability study: one energy-managed diurnal day
// traced and metered, on a single engine and again across two shards, and
// checks the exports match byte for byte.
func ObsTrace(p Profile) (*ObsResult, error) {
	o1, trace1, prom1, csv1, err := obsExports(p, 1)
	if err != nil {
		return nil, err
	}
	_, trace2, prom2, csv2, err := obsExports(p, 2)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(trace1)
	return &ObsResult{
		HorizonSec: 120,
		Windows:    o1.Tracer.CountOf(obs.KindWindow),
		Episodes:   o1.Tracer.CountOf(obs.KindEpisode),
		Placements: o1.Tracer.CountOf(obs.KindPlacement),
		Autoscale:  o1.Tracer.CountOf(obs.KindAutoscale),
		Lifecycle:  o1.Tracer.CountOf(obs.KindLifecycle),
		Total:      o1.Tracer.Total(),
		Snapshots:  o1.Metrics.Snapshots(),
		TraceSHA:   hex.EncodeToString(sum[:]),
		ShardInvariant: bytes.Equal(trace1, trace2) &&
			bytes.Equal(prom1, prom2) && bytes.Equal(csv1, csv2),
	}, nil
}
