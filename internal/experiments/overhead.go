package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/dse"
	"github.com/approx-sched/pliant/internal/dyninst"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
)

// OverheadRow is one application's instrumentation overhead: the configured
// figure and the measured execution-time inflation from running the app
// under the substrate, precise and uncontended.
type OverheadRow struct {
	App        string
	Configured float64 // fraction, from the profile
	Measured   float64 // fraction, from paired simulated runs
}

// OverheadResult reproduces the Sec. 6.2 statistics: per-app DynamoRIO-style
// overhead, 3.8% on average and up to 8.9%.
type OverheadResult struct {
	Rows []OverheadRow
	Mean float64
	Max  float64
}

// Overhead measures the instrumentation overhead for every catalog app by
// running each to completion with and without the substrate attached.
func Overhead(p Profile) (OverheadResult, error) {
	names := p.AppNames()
	rows := make([]OverheadRow, len(names))
	err := p.forEach(len(names), func(i int) error {
		prof, err := app.ByName(names[i])
		if err != nil {
			return err
		}
		run := func(instrument bool) (sim.Duration, error) {
			eng := sim.NewEngine()
			rng := sim.NewRNG(p.seedFor("overhead/" + prof.Name))
			variants, err := dse.VariantsFor(prof)
			if err != nil {
				return 0, err
			}
			inst, err := app.NewInstance(eng, rng, prof, variants, app.ReferenceCores, nil)
			if err != nil {
				return 0, err
			}
			if instrument {
				if _, err := dyninst.Launch(eng, inst, dyninst.Options{OverheadOverride: -1}); err != nil {
					return 0, err
				}
			}
			stop := eng.Ticker(100*sim.Millisecond, func(now sim.Time) { inst.Advance(now) })
			eng.Run(sim.Time(sim.Duration(prof.NominalExecSec*3) * sim.Second))
			stop()
			if !inst.Done() {
				return 0, fmt.Errorf("overhead: %s did not finish", prof.Name)
			}
			return inst.ExecTime(), nil
		}
		plain, err := run(false)
		if err != nil {
			return err
		}
		instrumented, err := run(true)
		if err != nil {
			return err
		}
		rows[i] = OverheadRow{
			App:        prof.Name,
			Configured: prof.DynOverhead,
			Measured:   instrumented.Seconds()/plain.Seconds() - 1,
		}
		return nil
	})
	if err != nil {
		return OverheadResult{}, err
	}
	var measured []float64
	for _, r := range rows {
		measured = append(measured, r.Measured)
	}
	return OverheadResult{
		Rows: rows,
		Mean: stats.Mean(measured),
		Max:  stats.MaxOf(measured),
	}, nil
}

// Render prints the per-app overhead table with summary.
func (r OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("Sec. 6.2: dynamic instrumentation overhead per application\n")
	b.WriteString("  app               configured  measured\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-17s %9.1f%%  %7.1f%%\n", row.App, row.Configured*100, row.Measured*100)
	}
	fmt.Fprintf(&b, "  mean %.1f%%, max %.1f%% (paper: 3.8%% mean, 8.9%% max)\n", r.Mean*100, r.Max*100)
	return b.String()
}
