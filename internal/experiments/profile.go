// Package experiments regenerates every table and figure of the paper's
// evaluation: the design-space exploration and per-variant impact study
// (Fig. 1), the dynamic-behavior traces (Figs. 4 and 6), the aggregate
// precise-vs-Pliant comparison (Fig. 5), the multi-colocation violin study
// (Fig. 7), the load and decision-interval sensitivity sweeps (Figs. 8 and
// 9), the approximation-vs-reclamation breakdown (Fig. 10), the platform
// specification (Table 1), and the instrumentation overhead statistics
// (Sec. 6.2). Each experiment returns a structured result that renders the
// same rows/series the paper reports.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/sim"
)

// Profile selects the execution scale of the experiments.
type Profile struct {
	// Name labels the profile in reports.
	Name string

	// TimeScale multiplies the services' request timescale; >1 simulates
	// proportionally fewer requests at identical utilization (see
	// DESIGN.md §6).
	TimeScale float64

	// Seed is the root seed; every scenario derives its own.
	Seed uint64

	// Apps restricts the application set where an experiment would
	// otherwise cover all 24 (nil = all).
	Apps []string

	// CombosPerArity is how many random 2- and 3-app combinations Fig. 7
	// samples per service (0 = enumerate all, as the paper does).
	CombosPerArity int

	// MaxRunSeconds bounds individual scenario runs in the impact study
	// and sweeps where app completion is not required.
	MaxRunSeconds int

	// Parallelism is the number of scenarios run concurrently (each on its
	// own engine); 0 means GOMAXPROCS.
	Parallelism int
}

// Fast returns the scaled profile used by tests and testing.B benchmarks:
// identical load arithmetic, ~16× fewer simulated requests, highlighted-app
// subset for per-variant studies, sampled combinations for Fig. 7.
func Fast() Profile {
	return Profile{
		Name:      "fast",
		TimeScale: 16,
		Seed:      42,
		Apps: []string{
			"canneal", "raytrace", "Bayesian", "SNP", "water_spatial", "streamcluster",
		},
		CombosPerArity: 8,
		MaxRunSeconds:  12,
	}
}

// Full returns the paper-scale profile: real request rates, all 24
// applications, exhaustive Fig. 7 combinations. Hours of CPU; used by
// cmd/pliant-bench -full.
func Full() Profile {
	return Profile{
		Name:           "full",
		TimeScale:      1,
		Seed:           42,
		Apps:           nil,
		CombosPerArity: 0,
		MaxRunSeconds:  0,
	}
}

// AppNames resolves the profile's application set.
func (p Profile) AppNames() []string {
	if len(p.Apps) == 0 {
		return app.Names()
	}
	return append([]string(nil), p.Apps...)
}

// maxDuration converts MaxRunSeconds to a scenario bound (0 = unbounded).
func (p Profile) maxDuration() sim.Duration {
	if p.MaxRunSeconds <= 0 {
		return 0
	}
	return sim.Duration(p.MaxRunSeconds) * sim.Second
}

// parallelism resolves the worker count.
func (p Profile) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for i in [0, n) on the profile's worker pool and
// collects the first error. Scenario runs are independent simulations, so
// this parallelism cannot perturb determinism.
func (p Profile) forEach(n int, fn func(i int) error) error {
	workers := p.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstEr
}

// seedFor derives a stable per-task seed from the profile seed and a label,
// so adding tasks never perturbs the seeds of existing ones.
func (p Profile) seedFor(label string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h ^ p.Seed
}

// Renderer is implemented by every experiment result: Render returns the
// rows/series the paper's corresponding table or figure reports.
type Renderer interface {
	Render() string
}

func fmtRatio(v float64) string { return fmt.Sprintf("%5.2fx", v) }
