package experiments

import (
	"fmt"
	"sort"
)

// Entry describes one registered experiment.
type Entry struct {
	ID    string // short key, e.g. "fig5"
	Title string
	Run   func(Profile) (Renderer, error)
}

// Registry returns every experiment in presentation order, each mapped to
// its paper table or figure.
func Registry() []Entry {
	return []Entry{
		{"table1", "Table 1: platform specification", wrap(Table1)},
		{"fig1dse", "Fig. 1 (odd rows): design-space exploration", wrap(Fig1DSE)},
		{"fig1impact", "Fig. 1 (even rows): per-variant tail-latency impact", wrap(Fig1Impact)},
		{"fig4", "Fig. 4: dynamic behavior", wrap(Fig4Dynamic)},
		{"fig5", "Fig. 5: aggregate precise vs Pliant", wrap(Fig5Aggregate)},
		{"fig6", "Fig. 6: multi-application colocations", wrap(Fig6MultiApp)},
		{"fig7", "Fig. 7: colocation-arity violins", wrap(Fig7Violin)},
		{"fig8", "Fig. 8: input-load sensitivity", wrap(Fig8LoadSweep)},
		{"fig9", "Fig. 9: decision-interval sensitivity", wrap(Fig9Interval)},
		{"fig10", "Fig. 10: approximation vs core-reclamation breakdown", wrap(Fig10Breakdown)},
		{"overhead", "Sec. 6.2: instrumentation overhead", wrap(Overhead)},
		{"sched", "Sec. 6.4 extension: online scheduling under a diurnal day", wrap(SchedDiurnal)},
		{"energy", "Energy extension: autoscaling and approximation-for-watts over a diurnal day", wrap(EnergyDiurnal)},
		{"trace", "Trace extension: policies replayed on production-shaped cluster-trace arrivals", wrap(TraceReplay)},
		{"obs", "Observability extension: deterministic decision trace and metrics over a diurnal day", wrap(ObsTrace)},
		{"fault", "Fault extension: first-fit vs telemetry vs degrade-under-loss through a rack outage", wrap(FaultStorm)},
		{"shadow", "Serving extension: shadow replay fanning one feed to three policies, parity-pinned against batch", wrap(ShadowServe)},
	}
}

// wrap adapts a concrete experiment function to the registry signature.
func wrap[T Renderer](fn func(Profile) (T, error)) func(Profile) (Renderer, error) {
	return func(p Profile) (Renderer, error) {
		return fn(p)
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}
