package experiments

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// SchedRow is one policy's aggregate under the diurnal-day study.
type SchedRow struct {
	Policy          string
	QoSMetFrac      float64
	MeanWaitSec     float64
	MeanUtilization float64
	MeanInaccuracy  float64
	Completed       int
	Arrived         int
}

// SchedResult compares online placement policies over a diurnal day — the
// paper's Sec. 6.4 scheduler integration made online: jobs stream in, load
// swings sinusoidally over the horizon, and the telemetry-aware policy
// consumes each node's live Pliant feedback.
type SchedResult struct {
	HorizonSec float64
	Rows       []SchedRow
}

// FracFor returns the QoS-met fraction of the named policy (0 if absent).
func (r *SchedResult) FracFor(policy string) float64 {
	for _, row := range r.Rows {
		if row.Policy == policy {
			return row.QoSMetFrac
		}
	}
	return 0
}

// WaitFor returns the mean job wait of the named policy (0 if absent).
func (r *SchedResult) WaitFor(policy string) float64 {
	for _, row := range r.Rows {
		if row.Policy == policy {
			return row.MeanWaitSec
		}
	}
	return 0
}

// Render formats the comparison table.
func (r *SchedResult) Render() string {
	s := fmt.Sprintf("online scheduling, diurnal day over %.0fs of cluster time\n", r.HorizonSec)
	s += fmt.Sprintf("  %-18s %9s %10s %8s %11s %13s\n",
		"policy", "QoS met", "mean wait", "util", "mean inacc", "done/arrived")
	for _, row := range r.Rows {
		s += fmt.Sprintf("  %-18s %8.0f%% %9.1fs %7.0f%% %10.2f%% %9d/%d\n",
			row.Policy, row.QoSMetFrac*100, row.MeanWaitSec,
			row.MeanUtilization*100, row.MeanInaccuracy, row.Completed, row.Arrived)
	}
	ta, ff := r.FracFor("telemetry-aware"), r.FracFor("first-fit")
	if ff > 0 {
		s += fmt.Sprintf("  summary: telemetry-aware meets QoS in %.0f%% of busy node-windows vs "+
			"first-fit's %.0f%% (%.2fx)\n", ta*100, ff*100, ta/ff)
	}
	return s
}

// SchedDiurnal runs the online-scheduling study: a three-service cluster, a
// Poisson job stream, and one "day" of sinusoidal load compressed into the
// horizon, under first-fit, best-fit, and telemetry-aware placement.
func SchedDiurnal(p Profile) (*SchedResult, error) {
	const horizon = 120 * sim.Second
	shape, err := workload.NewDiurnal(0.25, horizon.Seconds())
	if err != nil {
		return nil, err
	}
	cfg := sched.Config{
		Seed: p.seedFor("sched"),
		Nodes: []cluster.Node{
			{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
			{Name: "web-1", Service: service.NGINX, MaxApps: 3},
			{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
		},
		Horizon:    horizon,
		Epoch:      10 * sim.Second,
		JobsPerSec: 0.10,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  p.TimeScale,
		Workers:    p.parallelism(),
	}
	results, err := sched.Compare(cfg,
		sched.FirstFit{}, sched.BestFit{}, sched.TelemetryAware{})
	if err != nil {
		return nil, err
	}
	out := &SchedResult{HorizonSec: horizon.Seconds()}
	for _, res := range results {
		out.Rows = append(out.Rows, SchedRow{
			Policy:          res.Policy,
			QoSMetFrac:      res.QoSMetFrac,
			MeanWaitSec:     res.MeanWaitSec,
			MeanUtilization: res.MeanUtilization,
			MeanInaccuracy:  res.MeanInaccuracy,
			Completed:       res.Completed,
			Arrived:         res.Arrived,
		})
	}
	return out, nil
}
