package experiments

import (
	"bytes"
	"fmt"

	"github.com/approx-sched/pliant/internal/export"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/serve"
)

// ShadowResult summarizes the serving-layer study: one arrival feed fanned
// out to several candidate policies in lockstep (the daemon's shadow-replay
// session, driven without HTTP), per-window disagreement between the
// candidates and the baseline, and the layer's central property — a session
// replayed through the serving machinery exports byte-identical results to
// batch sched.Run on the same config.
type ShadowResult struct {
	HorizonSec float64
	Windows    int

	// Rows hold one candidate policy each (index 0 is the baseline).
	Rows []ShadowRow

	// ServeParity reports whether the baseline's serve-replayed result JSON
	// matched the batch sched.Run export byte for byte.
	ServeParity bool
}

// ShadowRow is one policy's end-of-run standing plus its disagreement with
// the baseline across the windows.
type ShadowRow struct {
	Policy      string
	QoSMetFrac  float64
	Completed   int
	Pending     int
	DiffWindows int // windows where this policy hosted ≥1 job elsewhere
	MaxDiff     int // peak same-window placement disagreements
}

// Render formats the shadow-replay summary.
func (r *ShadowResult) Render() string {
	s := fmt.Sprintf("shadow replay: %d candidate policies over one %.0fs feed (%d windows)\n",
		len(r.Rows), r.HorizonSec, r.Windows)
	s += fmt.Sprintf("  %-18s %9s %10s %9s %13s %9s\n",
		"policy", "QoS met", "completed", "pending", "diff windows", "max diff")
	for i, row := range r.Rows {
		diffs := fmt.Sprintf("%13d %9d", row.DiffWindows, row.MaxDiff)
		if i == 0 {
			diffs = fmt.Sprintf("%13s %9s", "baseline", "—")
		}
		s += fmt.Sprintf("  %-18s %8.0f%% %10d %9d %s\n",
			row.Policy, row.QoSMetFrac*100, row.Completed, row.Pending, diffs)
	}
	s += fmt.Sprintf("  serve replay byte-identical to batch run: %v\n", r.ServeParity)
	return s
}

// ShadowServe runs the serving-layer study: a three-policy shadow session
// over a diurnal day, then the baseline policy again under batch sched.Run
// to pin daemon/batch export parity.
func ShadowServe(p Profile) (*ShadowResult, error) {
	sp := serve.Spec{
		Seed:       p.seedFor("shadow"),
		Policies:   []string{"telemetry", "first-fit", "spread"},
		HorizonSec: 120,
		EpochSec:   12,
		TimeScale:  p.TimeScale,
		Workers:    p.parallelism(),
	}
	out, err := serve.ShadowReplay(sp)
	if err != nil {
		return nil, err
	}

	res := &ShadowResult{HorizonSec: 120, Windows: len(out.Verdicts)}
	for i, name := range out.Policies {
		row := ShadowRow{
			Policy:     name,
			QoSMetFrac: out.Results[i].QoSMetFrac,
			Completed:  out.Results[i].Completed,
			Pending:    out.Results[i].Pending,
		}
		for _, v := range out.Verdicts {
			d := v.Policies[i].DiffPlacements
			if d > 0 {
				row.DiffWindows++
			}
			if d > row.MaxDiff {
				row.MaxDiff = d
			}
		}
		res.Rows = append(res.Rows, row)
	}

	// Parity: the baseline policy once more as a plain batch run.
	resolved, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	cfg := resolved.Cfg
	cfg.Policy = resolved.Policies[0]
	batch, err := sched.Run(cfg)
	if err != nil {
		return nil, err
	}
	var servedJSON, batchJSON bytes.Buffer
	if err := export.WriteSchedResultJSON(&servedJSON, out.Results[0]); err != nil {
		return nil, err
	}
	if err := export.WriteSchedResultJSON(&batchJSON, batch); err != nil {
		return nil, err
	}
	res.ServeParity = bytes.Equal(servedJSON.Bytes(), batchJSON.Bytes())
	return res, nil
}
