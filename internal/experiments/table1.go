package experiments

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/platform"
)

// Table1Result reproduces the paper's Table 1: the experimental platform
// specification.
type Table1Result struct {
	Spec platform.Spec
}

// Table1 returns the platform specification table.
func Table1(Profile) (Table1Result, error) {
	return Table1Result{Spec: platform.TablePlatform()}, nil
}

// Render prints the specification in the paper's row order.
func (r Table1Result) Render() string {
	s := r.Spec
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Platform Specification\n")
	rows := [][2]string{
		{"Model", s.Name},
		{"Sockets", fmt.Sprintf("%d", s.Sockets)},
		{"Cores/Socket", fmt.Sprintf("%d", s.CoresPerSocket)},
		{"Threads/Core", fmt.Sprintf("%d", s.ThreadsPerCore)},
		{"Base/Max Turbo Frequency", fmt.Sprintf("%.1fGHz / %.1fGHz", s.BaseGHz, s.TurboGHz)},
		{"L1 Inst/Data Cache", fmt.Sprintf("%d / %d KB", s.L1KB, s.L1KB)},
		{"L2 Cache", fmt.Sprintf("%dKB", s.L2KB)},
		{"L3 (Last-Level) Cache", fmt.Sprintf("%.0f MB, %d ways", s.LLCMB, s.LLCWays)},
		{"Memory", fmt.Sprintf("%dGB total, %dMHz DDR4", s.MemoryGB, s.MemoryMHz)},
		{"Disk", fmt.Sprintf("%.0fTB, %dRPM HDD", s.DiskTB, s.DiskRPM)},
		{"Network Bandwidth", fmt.Sprintf("%.0fGbps", s.NetworkGbps)},
		{"IRQ-dedicated cores", fmt.Sprintf("%d (Sec. 5)", s.IRQCores)},
		{"Usable cores per socket", fmt.Sprintf("%d", s.UsableCores())},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-26s %s\n", row[0], row[1])
	}
	return b.String()
}
