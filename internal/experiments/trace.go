package experiments

import (
	"bytes"
	"fmt"
	"math"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/trace"
	"github.com/approx-sched/pliant/internal/workload"
)

// TraceRow is one scheduling bundle's aggregate under the trace-replay study.
type TraceRow struct {
	Bundle          string
	QoSMetFrac      float64
	MeanWaitSec     float64
	MeanUtilization float64
	MeanInaccuracy  float64
	KJoules         float64
	Completed       int
	Arrived         int
}

// TraceResult compares scheduling bundles on replayed production-shaped
// arrivals: a multi-hour Google-format trace (heavy-tailed gaps, a diurnal
// swing, a flash burst) compressed into one simulated day, with the node
// services riding the trace's own rate curve — the scenario axis synthetic
// Poisson and sinusoidal streams cannot produce, and the arrival regime the
// paper's production claims live in.
type TraceResult struct {
	HorizonSec float64
	Source     string
	TraceJobs  int
	Rows       []TraceRow
}

// RowFor returns the named bundle's row (zero row if absent).
func (r *TraceResult) RowFor(bundle string) TraceRow {
	for _, row := range r.Rows {
		if row.Bundle == bundle {
			return row
		}
	}
	return TraceRow{}
}

// Render formats the comparison table.
func (r *TraceResult) Render() string {
	s := fmt.Sprintf("trace replay: %d %s-format jobs over %.0fs of cluster time, services riding the trace's rate curve\n",
		r.TraceJobs, r.Source, r.HorizonSec)
	s += fmt.Sprintf("  %-18s %9s %10s %8s %11s %9s %13s\n",
		"bundle", "QoS met", "mean wait", "util", "mean inacc", "energy", "done/arrived")
	for _, row := range r.Rows {
		s += fmt.Sprintf("  %-18s %8.0f%% %9.1fs %7.0f%% %10.2f%% %7.0fkJ %9d/%d\n",
			row.Bundle, row.QoSMetFrac*100, row.MeanWaitSec, row.MeanUtilization*100,
			row.MeanInaccuracy, row.KJoules, row.Completed, row.Arrived)
	}
	ta, ff := r.RowFor("telemetry-aware"), r.RowFor("first-fit")
	afw := r.RowFor("approx-for-watts")
	if ff.QoSMetFrac > 0 {
		s += fmt.Sprintf("  summary: on replayed arrivals telemetry-aware meets QoS in %.0f%% of busy node-windows vs "+
			"first-fit's %.0f%%; approx-for-watts holds %.0f%% at %.0f%% of first-fit's energy\n",
			ta.QoSMetFrac*100, ff.QoSMetFrac*100,
			afw.QoSMetFrac*100, safeRatio(afw.KJoules, ff.KJoules)*100)
	}
	return s
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// traceBundle pairs a placement policy with an autoscaler.
type traceBundle struct {
	name string
	pol  sched.Policy
	as   autoscale.Controller
}

// TraceReplay runs the trace-replay study: a six-hour Google-format trace is
// synthesized schema-exactly, parsed through the production ingestion path,
// normalized into the compressed day (down-sampled to the cluster's scale),
// and replayed as the job stream — while every node's service load follows
// the trace's binned rate curve (Trace.RateShape as a workload.Replay). The
// same replay runs under first-fit, telemetry-aware, and the
// approx-for-watts bundle, all with the Table 1 power model attached so
// energy is comparable.
func TraceReplay(p Profile) (*TraceResult, error) {
	const horizon = 120 * sim.Second
	raw := trace.Synthesize(trace.SynthConfig{
		Format:  trace.Google,
		Jobs:    240,
		SpanSec: 6 * 3600,
		Seed:    p.seedFor("trace"),
	})
	parsed, err := trace.Parse(bytes.NewReader(raw), trace.Google)
	if err != nil {
		return nil, err
	}
	// Land the last arrival at 90% of the horizon (late jobs deserve a
	// window to run) and down-sample to about 1.6 jobs per cluster slot.
	tr, err := parsed.Normalize(trace.Options{TargetSpanSec: 0.9 * horizon.Seconds(), MaxJobs: 24})
	if err != nil {
		return nil, err
	}
	times, mult, err := tr.RateShape(8)
	if err != nil {
		return nil, err
	}
	// Square-root damping: the service load follows the trace's rate curve
	// (bursts stay bursts, lulls stay lulls) but a 4× arrival spike becomes
	// a 2× load spike — stressed yet survivable, the regime where placement
	// quality differentiates instead of every policy drowning identically.
	for i, m := range mult {
		mult[i] = math.Sqrt(m)
	}
	shape, err := workload.NewReplay(times, mult)
	if err != nil {
		return nil, err
	}
	model := energy.ModelFor(platform.TablePlatform())
	bundles := []traceBundle{
		{"first-fit", sched.FirstFit{}, nil},
		{"telemetry-aware", sched.TelemetryAware{}, nil},
		{"approx-for-watts", sched.TelemetryAware{}, autoscale.ApproxForWatts{
			Consolidate: autoscale.Consolidate{ReserveSlots: 6},
			LowWater:    0.6,
		}},
	}
	out := &TraceResult{
		HorizonSec: horizon.Seconds(),
		Source:     tr.Source,
		TraceJobs:  len(tr.Jobs),
	}
	for _, b := range bundles {
		cfg := sched.Config{
			Seed: p.seedFor("trace"),
			Nodes: []cluster.Node{
				{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
				{Name: "web-1", Service: service.NGINX, MaxApps: 3},
				{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
				{Name: "cache-2", Service: service.Memcached, MaxApps: 3},
				{Name: "web-2", Service: service.NGINX, MaxApps: 3},
			},
			Policy:     b.pol,
			Horizon:    horizon,
			Epoch:      10 * sim.Second,
			Trace:      tr,
			BaseLoad:   0.65,
			Shape:      shape,
			TimeScale:  p.TimeScale,
			Workers:    p.parallelism(),
			Energy:     &model,
			Autoscaler: b.as,
		}
		res, err := sched.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: trace bundle %s: %w", b.name, err)
		}
		out.Rows = append(out.Rows, TraceRow{
			Bundle:          b.name,
			QoSMetFrac:      res.QoSMetFrac,
			MeanWaitSec:     res.MeanWaitSec,
			MeanUtilization: res.MeanUtilization,
			MeanInaccuracy:  res.MeanInaccuracy,
			KJoules:         res.Joules / 1000,
			Completed:       res.Completed,
			Arrived:         res.Arrived,
		})
	}
	return out, nil
}
