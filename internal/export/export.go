// Package export serializes scenario results and traces for downstream
// analysis: JSON for programmatic consumers and CSV for plotting the paper's
// figures (every dynamic-behavior panel is a time-indexed CSV away from a
// gnuplot/matplotlib rendering).
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/stats"
)

// resultJSON is the stable wire form of a scenario result.
type resultJSON struct {
	Service         string  `json:"service"`
	Runtime         string  `json:"runtime"`
	QoSNanos        int64   `json:"qos_ns"`
	OverallP99Nanos int64   `json:"overall_p99_ns"`
	TypicalP99Nanos int64   `json:"typical_p99_ns"`
	P99OverQoS      float64 `json:"p99_over_qos"`
	TypicalOverQoS  float64 `json:"typical_over_qos"`
	ViolationFrac   float64 `json:"violation_frac"`
	Intervals       int     `json:"intervals"`
	DurationNanos   int64   `json:"duration_ns"`
	Served          uint64  `json:"served"`
	Dropped         uint64  `json:"dropped"`

	// Energy columns appear only when the scenario carried an energy model,
	// so energy-free documents stay byte-identical across versions.
	Joules    float64 `json:"joules,omitempty"`
	MeanWatts float64 `json:"mean_watts,omitempty"`
	MeanUtil  float64 `json:"mean_util,omitempty"`

	Apps []appResultJSON `json:"apps"`
}

type appResultJSON struct {
	Name          string  `json:"name"`
	Done          bool    `json:"done"`
	ExecTimeNanos int64   `json:"exec_time_ns"`
	RelNominal    float64 `json:"rel_nominal"`
	RelFairShare  float64 `json:"rel_fair_share"`
	Inaccuracy    float64 `json:"inaccuracy_pct"`
	FinalCores    int     `json:"final_cores"`
	MaxYielded    int     `json:"max_yielded"`
	Switches      uint64  `json:"switches"`
	DynOverhead   float64 `json:"dyn_overhead"`
}

// WriteResultJSON writes a scenario result as a single JSON document.
func WriteResultJSON(w io.Writer, res colocate.Result) error {
	out := resultJSON{
		Service:         res.Service,
		Runtime:         res.Runtime,
		QoSNanos:        int64(res.QoS),
		OverallP99Nanos: int64(res.OverallP99),
		TypicalP99Nanos: int64(res.TypicalP99),
		P99OverQoS:      res.P99OverQoS(),
		TypicalOverQoS:  res.TypicalOverQoS(),
		ViolationFrac:   res.ViolationFrac,
		Intervals:       res.Intervals,
		DurationNanos:   int64(res.Duration),
		Served:          res.Served,
		Dropped:         res.Dropped,
		Joules:          res.Joules,
		MeanWatts:       res.MeanWatts,
		MeanUtil:        res.MeanUtil,
	}
	for _, a := range res.Apps {
		out.Apps = append(out.Apps, appResultJSON{
			Name:          a.Name,
			Done:          a.Done,
			ExecTimeNanos: int64(a.ExecTime),
			RelNominal:    a.RelNominal,
			RelFairShare:  a.RelFairShare,
			Inaccuracy:    a.Inaccuracy,
			FinalCores:    a.FinalCores,
			MaxYielded:    a.MaxYielded,
			Switches:      a.Switches,
			DynOverhead:   a.DynOverhead,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTraceCSV writes the run's per-interval series as one CSV table:
// a time column followed by one column per series, in a stable order
// ("p99", "svc.cores", then remaining series alphabetically). Series are
// sampled at the union of their timestamps with step-function semantics.
func WriteTraceCSV(w io.Writer, res colocate.Result) error {
	return writeTrace(w, res.Trace, []string{"p99", "svc.cores"})
}

// writeTrace renders any trace as a time-indexed CSV table, putting the
// given headline series first and the rest alphabetically.
func writeTrace(w io.Writer, tr *stats.Trace, head []string) error {
	if tr == nil {
		return fmt.Errorf("export: nil trace")
	}
	names := tr.Names()
	if len(names) == 0 {
		return fmt.Errorf("export: empty trace")
	}
	ordered := orderSeries(names, head)

	// Union of timestamps (they coincide at decision intervals, but be
	// robust to series of different lengths, e.g. after early app exits).
	tset := map[float64]bool{}
	for _, n := range ordered {
		for _, pt := range tr.Series(n).Points {
			tset[pt.T] = true
		}
	}
	times := make([]float64, 0, len(tset))
	for t := range tset {
		times = append(times, t)
	}
	sort.Float64s(times)

	cw := csv.NewWriter(w)
	header := append([]string{"t_seconds"}, ordered...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = strconv.FormatFloat(t, 'f', -1, 64)
		for i, n := range ordered {
			row[i+1] = strconv.FormatFloat(tr.Series(n).At(t), 'f', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// orderSeries puts the headline series first and the rest alphabetically.
func orderSeries(names, head []string) []string {
	seen := map[string]bool{}
	for _, h := range head {
		seen[h] = true
	}
	var rest []string
	for _, n := range names {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	var out []string
	for _, h := range head {
		for _, n := range names {
			if n == h {
				out = append(out, h)
				break
			}
		}
	}
	return append(out, rest...)
}
