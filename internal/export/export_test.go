package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/stats"
)

func sampleResult(t *testing.T) colocate.Result {
	t.Helper()
	res, err := colocate.Run(colocate.Config{
		Seed:         1,
		Service:      service.Memcached,
		AppNames:     []string{"canneal"},
		Runtime:      colocate.Pliant,
		LoadFraction: 0.78,
		TimeScale:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteResultJSON(t *testing.T) {
	res := sampleResult(t)
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back["service"] != "memcached" || back["runtime"] != "pliant" {
		t.Fatalf("identity fields: %v %v", back["service"], back["runtime"])
	}
	apps, ok := back["apps"].([]any)
	if !ok || len(apps) != 1 {
		t.Fatalf("apps: %v", back["apps"])
	}
	app0 := apps[0].(map[string]any)
	if app0["name"] != "canneal" {
		t.Fatalf("app name: %v", app0["name"])
	}
	if _, ok := app0["inaccuracy_pct"].(float64); !ok {
		t.Fatal("inaccuracy missing")
	}
	// Ratios must be consistent with the nanosecond fields.
	qos := back["qos_ns"].(float64)
	typ := back["typical_p99_ns"].(float64)
	ratio := back["typical_over_qos"].(float64)
	if qos <= 0 || typ <= 0 {
		t.Fatal("non-positive latency fields")
	}
	if diff := typ/qos - ratio; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ratio inconsistency: %v vs %v", typ/qos, ratio)
	}
}

func TestWriteTraceCSV(t *testing.T) {
	res := sampleResult(t)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != res.Intervals+1 {
		t.Fatalf("rows = %d, want %d intervals + header", len(rows), res.Intervals)
	}
	header := rows[0]
	if header[0] != "t_seconds" || header[1] != "p99" || header[2] != "svc.cores" {
		t.Fatalf("header = %v", header)
	}
	found := false
	for _, h := range header {
		if h == "variant.canneal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-app series missing from header %v", header)
	}
	// Times strictly increasing; all cells numeric.
	prev := -1.0
	for _, row := range rows[1:] {
		tv, err := strconv.ParseFloat(row[0], 64)
		if err != nil || tv <= prev {
			t.Fatalf("bad time column: %v (%v)", row[0], err)
		}
		prev = tv
		for _, cell := range row[1:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("non-numeric cell %q", cell)
			}
		}
	}
}

func TestWriteTraceCSVEmpty(t *testing.T) {
	var res colocate.Result
	res.Trace = stats.NewTrace()
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, res); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestJSONStableKeys(t *testing.T) {
	res := sampleResult(t)
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"\"qos_ns\"", "\"typical_p99_ns\"", "\"violation_frac\"",
		"\"rel_fair_share\"", "\"max_yielded\"",
	} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing key %s", key)
		}
	}
}
