package export

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/stats"
)

// The golden column sets. Downstream analysis scripts key on these names; a
// diff here is an intentional wire-format change and must be called out in
// the PR that makes it.
var (
	goldenScenarioJSONKeys = []string{
		"service", "runtime", "qos_ns", "overall_p99_ns", "typical_p99_ns",
		"p99_over_qos", "typical_over_qos", "violation_frac", "intervals",
		"duration_ns", "served", "dropped", "joules", "mean_watts",
		"mean_util", "apps",
	}
	goldenSchedJSONKeys = []string{
		"policy", "horizon_sec", "epoch_sec", "arrived", "placed",
		"completed", "pending", "mean_wait_sec", "max_wait_sec",
		"qos_met_frac", "mean_utilization", "mean_inaccuracy_pct",
		"episodes", "joules", "mean_watts", "parked_node_windows",
		"low_freq_node_windows", "wakes", "node_joules", "crashes",
		"recoveries", "requeued", "jobs_lost", "down_node_windows",
		"stale_node_windows", "straggler_node_windows", "jobs",
	}
	goldenScenarioCSVHeader = "t_seconds,p99,svc.cores,watts"
	goldenSchedCSVHeader    = "t_seconds,queue.depth,utilization," +
		"nodes.active,nodes.down,nodes.parked,p99.worst,qosmet,running,watts.cluster"
)

// topLevelKeys walks a JSON document and returns its top-level object keys
// in marshaling order.
func topLevelKeys(t *testing.T, doc []byte) []string {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(doc))
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('{') {
		t.Fatalf("document does not open an object: %v %v", tok, err)
	}
	var keys []string
	depth := 0
	for dec.More() || depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch v := tok.(type) {
		case json.Delim:
			switch v {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		case string:
			if depth == 0 {
				keys = append(keys, v)
				// Skip the value (may be nested).
				var raw json.RawMessage
				if err := dec.Decode(&raw); err != nil {
					t.Fatalf("skipping value of %q: %v", v, err)
				}
			}
		}
	}
	return keys
}

// fullScenarioResult populates every field so omitempty columns appear.
func fullScenarioResult() colocate.Result {
	tr := stats.NewTrace()
	tr.Series("p99").Append(1, 0.9)
	tr.Series("svc.cores").Append(1, 8)
	tr.Series("watts").Append(1, 120)
	return colocate.Result{
		Service: "memcached", Runtime: "pliant", QoS: 1, OverallP99: 2,
		TypicalP99: 2, MaxIntervalP99: 3, MeanIntervalP99: 2,
		ViolationFrac: 0.1, Intervals: 10, Duration: 100, Served: 5,
		Dropped: 1, Joules: 1234, MeanWatts: 120, MeanUtil: 0.5,
		Apps:  []colocate.AppResult{{Name: "canneal", Inaccuracy: 1}},
		Trace: tr,
	}
}

// fullSchedResult populates every field so omitempty columns appear.
func fullSchedResult() sched.Result {
	tr := stats.NewTrace()
	for _, s := range []string{
		"queue.depth", "utilization", "running", "qosmet", "p99.worst",
		"watts.cluster", "nodes.active", "nodes.parked", "nodes.down",
	} {
		tr.Series(s).Append(10, 1)
	}
	return sched.Result{
		Policy: "first-fit", HorizonSec: 120, EpochSec: 10, Arrived: 3,
		Placed: 3, Completed: 2, Pending: 0, MeanWaitSec: 1, MaxWaitSec: 2,
		QoSMetFrac: 0.9, MeanUtilization: 0.5, MeanInaccuracy: 2,
		Episodes: 12, Joules: 50000, MeanWatts: 400, ParkedNodeWindows: 4,
		LowFreqNodeWindows: 2, Wakes: 1,
		NodeJoules: []sched.NodeEnergy{{Node: "n0", Joules: 50000}},
		Crashes:    2, Recoveries: 1, Requeued: 3, JobsLost: 1,
		DownNodeWindows: 5, StaleNodeWindows: 2, StragglerNodeWindows: 1,
		Jobs:  []sched.JobOutcome{{ID: 0, App: "canneal", Node: "n0", Retries: 1, Lost: false}},
		Trace: tr,
	}
}

func TestScenarioJSONColumnsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, fullScenarioResult()); err != nil {
		t.Fatal(err)
	}
	if got := topLevelKeys(t, buf.Bytes()); !reflect.DeepEqual(got, goldenScenarioJSONKeys) {
		t.Errorf("scenario JSON columns drifted:\n got %v\nwant %v", got, goldenScenarioJSONKeys)
	}
}

func TestSchedJSONColumnsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSchedResultJSON(&buf, fullSchedResult()); err != nil {
		t.Fatal(err)
	}
	if got := topLevelKeys(t, buf.Bytes()); !reflect.DeepEqual(got, goldenSchedJSONKeys) {
		t.Errorf("sched JSON columns drifted:\n got %v\nwant %v", got, goldenSchedJSONKeys)
	}
}

func TestTraceCSVHeadersGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, fullScenarioResult()); err != nil {
		t.Fatal(err)
	}
	if got := strings.SplitN(buf.String(), "\n", 2)[0]; got != goldenScenarioCSVHeader {
		t.Errorf("scenario CSV header drifted:\n got %s\nwant %s", got, goldenScenarioCSVHeader)
	}

	buf.Reset()
	if err := WriteSchedTraceCSV(&buf, fullSchedResult()); err != nil {
		t.Fatal(err)
	}
	if got := strings.SplitN(buf.String(), "\n", 2)[0]; got != goldenSchedCSVHeader {
		t.Errorf("sched CSV header drifted:\n got %s\nwant %s", got, goldenSchedCSVHeader)
	}
}

// TestObsProfilesNeverExported pins the observability compatibility
// contract: ShardProfiles are wall-clock (non-deterministic) data, so a
// result from an obs-on run must export byte-identical JSON and CSV to the
// same result without them — the wire format carries no obs fields, and
// obs-on runs reproduce obs-off golden hashes.
func TestObsProfilesNeverExported(t *testing.T) {
	plain := fullSchedResult()
	var jsPlain, csvPlain bytes.Buffer
	if err := WriteSchedResultJSON(&jsPlain, plain); err != nil {
		t.Fatal(err)
	}
	if err := WriteSchedTraceCSV(&csvPlain, plain); err != nil {
		t.Fatal(err)
	}

	observed := fullSchedResult()
	observed.ShardProfiles = []obs.ShardProfile{
		{Shard: 0, Windows: 12, Episodes: 7, EpisodeNs: 123456789, BarrierWaitNs: 4242},
		{Shard: 1, Windows: 12, Episodes: 5, EpisodeNs: 98765432, BarrierWaitNs: 31337},
	}
	var jsObs, csvObs bytes.Buffer
	if err := WriteSchedResultJSON(&jsObs, observed); err != nil {
		t.Fatal(err)
	}
	if err := WriteSchedTraceCSV(&csvObs, observed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsPlain.Bytes(), jsObs.Bytes()) {
		t.Error("ShardProfiles leaked into the sched JSON document")
	}
	if !bytes.Equal(csvPlain.Bytes(), csvObs.Bytes()) {
		t.Error("ShardProfiles leaked into the sched trace CSV")
	}
	if strings.Contains(jsObs.String(), "shard") {
		t.Error("sched JSON mentions shards")
	}
}

// TestEnergyFreeDocumentsUnchanged pins the compatibility contract: without
// an energy model, no energy key may appear — older consumers see the exact
// pre-energy wire format.
func TestEnergyFreeDocumentsUnchanged(t *testing.T) {
	sc := fullScenarioResult()
	sc.Joules, sc.MeanWatts, sc.MeanUtil = 0, 0, 0
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, sc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"joules", "mean_watts", "mean_util"} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("energy-free scenario JSON contains %q", key)
		}
	}

	sr := fullSchedResult()
	sr.Joules, sr.MeanWatts, sr.NodeJoules = 0, 0, nil
	sr.ParkedNodeWindows, sr.LowFreqNodeWindows, sr.Wakes = 0, 0, 0
	buf.Reset()
	if err := WriteSchedResultJSON(&buf, sr); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"joules", "mean_watts", "parked", "wakes"} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("energy-free sched JSON contains %q", key)
		}
	}
}

// TestFaultFreeDocumentsUnchanged pins the same contract for fault
// injection: without a fault plan, no fault key may appear — pre-fault
// consumers see the exact pre-fault wire format.
func TestFaultFreeDocumentsUnchanged(t *testing.T) {
	sr := fullSchedResult()
	sr.Crashes, sr.Recoveries, sr.Requeued, sr.JobsLost = 0, 0, 0, 0
	sr.DownNodeWindows, sr.StaleNodeWindows, sr.StragglerNodeWindows = 0, 0, 0
	sr.Jobs = []sched.JobOutcome{{ID: 0, App: "canneal", Node: "n0"}}
	var buf bytes.Buffer
	if err := WriteSchedResultJSON(&buf, sr); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"crashes", "recoveries", "requeued", "jobs_lost", "down_node_windows",
		"stale_node_windows", "straggler_node_windows", "retries", "lost",
	} {
		if strings.Contains(buf.String(), `"`+key+`"`) {
			t.Errorf("fault-free sched JSON contains %q", key)
		}
	}
}
