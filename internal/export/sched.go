package export

import (
	"encoding/json"
	"io"

	"github.com/approx-sched/pliant/internal/sched"
)

// schedResultJSON is the stable wire form of an online scheduling result.
// Determinism tests byte-compare this document across runs, so every field
// is a plain value with a fixed marshaling order.
type schedResultJSON struct {
	Policy          string  `json:"policy"`
	HorizonSec      float64 `json:"horizon_sec"`
	EpochSec        float64 `json:"epoch_sec"`
	Arrived         int     `json:"arrived"`
	Placed          int     `json:"placed"`
	Completed       int     `json:"completed"`
	Pending         int     `json:"pending"`
	MeanWaitSec     float64 `json:"mean_wait_sec"`
	MaxWaitSec      float64 `json:"max_wait_sec"`
	QoSMetFrac      float64 `json:"qos_met_frac"`
	MeanUtilization float64 `json:"mean_utilization"`
	MeanInaccuracy  float64 `json:"mean_inaccuracy_pct"`
	Episodes        int     `json:"episodes"`

	// Energy columns appear only when the run carried an energy model, so
	// energy-free documents stay byte-identical across versions.
	Joules             float64          `json:"joules,omitempty"`
	MeanWatts          float64          `json:"mean_watts,omitempty"`
	ParkedNodeWindows  int              `json:"parked_node_windows,omitempty"`
	LowFreqNodeWindows int              `json:"low_freq_node_windows,omitempty"`
	Wakes              int              `json:"wakes,omitempty"`
	NodeJoules         []nodeJoulesJSON `json:"node_joules,omitempty"`

	// Fault columns appear only when the run injected faults, so fault-free
	// documents stay byte-identical across versions.
	Crashes              int `json:"crashes,omitempty"`
	Recoveries           int `json:"recoveries,omitempty"`
	Requeued             int `json:"requeued,omitempty"`
	JobsLost             int `json:"jobs_lost,omitempty"`
	DownNodeWindows      int `json:"down_node_windows,omitempty"`
	StaleNodeWindows     int `json:"stale_node_windows,omitempty"`
	StragglerNodeWindows int `json:"straggler_node_windows,omitempty"`

	// Truncated marks a partial document flushed by an interrupted run or a
	// drained daemon session; complete runs omit it, keeping their documents
	// byte-identical across versions.
	Truncated bool `json:"truncated,omitempty"`

	Jobs []schedJobJSON `json:"jobs"`
}

type nodeJoulesJSON struct {
	Node   string  `json:"node"`
	Joules float64 `json:"joules"`
}

type schedJobJSON struct {
	ID         int     `json:"id"`
	App        string  `json:"app"`
	Node       string  `json:"node,omitempty"`
	ArrivalSec float64 `json:"arrival_sec"`
	StartSec   float64 `json:"start_sec"`
	FinishSec  float64 `json:"finish_sec"`
	WaitSec    float64 `json:"wait_sec"`
	Done       bool    `json:"done"`
	Inaccuracy float64 `json:"inaccuracy_pct"`
	Retries    int     `json:"retries,omitempty"`
	Lost       bool    `json:"lost,omitempty"`
}

// WriteSchedResultJSON writes an online scheduling result as a single JSON
// document.
func WriteSchedResultJSON(w io.Writer, res sched.Result) error {
	out := schedResultJSON{
		Policy:          res.Policy,
		HorizonSec:      res.HorizonSec,
		EpochSec:        res.EpochSec,
		Arrived:         res.Arrived,
		Placed:          res.Placed,
		Completed:       res.Completed,
		Pending:         res.Pending,
		MeanWaitSec:     res.MeanWaitSec,
		MaxWaitSec:      res.MaxWaitSec,
		QoSMetFrac:      res.QoSMetFrac,
		MeanUtilization: res.MeanUtilization,
		MeanInaccuracy:  res.MeanInaccuracy,
		Episodes:        res.Episodes,

		Joules:             res.Joules,
		MeanWatts:          res.MeanWatts,
		ParkedNodeWindows:  res.ParkedNodeWindows,
		LowFreqNodeWindows: res.LowFreqNodeWindows,
		Wakes:              res.Wakes,

		Crashes:              res.Crashes,
		Recoveries:           res.Recoveries,
		Requeued:             res.Requeued,
		JobsLost:             res.JobsLost,
		DownNodeWindows:      res.DownNodeWindows,
		StaleNodeWindows:     res.StaleNodeWindows,
		StragglerNodeWindows: res.StragglerNodeWindows,

		Truncated: res.Truncated,
	}
	for _, ne := range res.NodeJoules {
		out.NodeJoules = append(out.NodeJoules, nodeJoulesJSON{Node: ne.Node, Joules: ne.Joules})
	}
	for _, j := range res.Jobs {
		out.Jobs = append(out.Jobs, schedJobJSON{
			ID:         j.ID,
			App:        j.App,
			Node:       j.Node,
			ArrivalSec: j.ArrivalSec,
			StartSec:   j.StartSec,
			FinishSec:  j.FinishSec,
			WaitSec:    j.WaitSec,
			Done:       j.Done,
			Inaccuracy: j.Inaccuracy,
			Retries:    j.Retries,
			Lost:       j.Lost,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSchedTraceCSV writes the cluster-horizon series (queue depth,
// utilization, running jobs, QoS-met fraction, worst p99) as a time-indexed
// CSV table. A truncated run's table ends with a "# truncated" comment line,
// so partial artifacts announce themselves without changing complete ones.
func WriteSchedTraceCSV(w io.Writer, res sched.Result) error {
	if err := writeTrace(w, res.Trace, []string{"queue.depth", "utilization"}); err != nil {
		return err
	}
	if res.Truncated {
		_, err := io.WriteString(w, "# truncated\n")
		return err
	}
	return nil
}
