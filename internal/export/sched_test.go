package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
)

func schedConfig() sched.Config {
	return sched.Config{
		Seed: 23,
		Nodes: []cluster.Node{
			{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
			{Name: "web-1", Service: service.NGINX, MaxApps: 3},
			{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
		},
		Policy:     sched.TelemetryAware{},
		Horizon:    60 * sim.Second,
		Epoch:      10 * sim.Second,
		JobsPerSec: 0.15,
		BaseLoad:   0.65,
		TimeScale:  32,
	}
}

// TestSchedExportDeterminism is the subsystem's reproducibility acceptance:
// equal configs (same seed) must serialize to byte-identical JSON and CSV.
func TestSchedExportDeterminism(t *testing.T) {
	render := func() (string, string) {
		t.Helper()
		res, err := sched.Run(schedConfig())
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := WriteSchedResultJSON(&j, res); err != nil {
			t.Fatal(err)
		}
		if err := WriteSchedTraceCSV(&c, res); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Fatal("equal configs produced different JSON exports")
	}
	if c1 != c2 {
		t.Fatal("equal configs produced different CSV exports")
	}
}

func TestSchedResultJSONShape(t *testing.T) {
	res, err := sched.Run(schedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"policy", "horizon_sec", "epoch_sec", "arrived", "placed", "completed",
		"pending", "mean_wait_sec", "qos_met_frac", "mean_utilization",
		"mean_inaccuracy_pct", "episodes", "jobs",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("JSON missing %q:\n%s", key, buf.String())
		}
	}
	if doc["policy"] != "telemetry-aware" {
		t.Fatalf("policy %v", doc["policy"])
	}
	jobs := doc["jobs"].([]any)
	if len(jobs) != int(doc["arrived"].(float64)) {
		t.Fatalf("jobs %d, arrived %v", len(jobs), doc["arrived"])
	}
	first := jobs[0].(map[string]any)
	for _, key := range []string{"id", "app", "arrival_sec", "start_sec", "wait_sec", "done"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("job record missing %q", key)
		}
	}
}

func TestSchedTraceCSVShape(t *testing.T) {
	res, err := sched.Run(schedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedTraceCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("no data rows")
	}
	header := rows[0]
	if header[0] != "t_seconds" || header[1] != "queue.depth" || header[2] != "utilization" {
		t.Fatalf("header order %v", header)
	}
	for _, want := range []string{"qosmet", "running"} {
		found := false
		for _, h := range header {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("header missing %q: %v", want, header)
		}
	}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			t.Fatalf("row %d has %d columns, header %d", i, len(row), len(header))
		}
	}
}
