package fault

import "github.com/approx-sched/pliant/internal/autoscale"

// DegradeUnderLoss is the graceful-degradation controller — the paper
// tie-in of the fault subsystem. In normal operation it defers to Normal
// (an energy-saving controller, approx-for-watts by default). When nodes
// are down and the surviving placeable capacity no longer covers demand
// (pending jobs plus residents), it funds the shortfall with the Pliant
// knob instead of shedding jobs: every parked reserve node wakes, and every
// surviving active node snaps to nominal frequency, so the densified
// colocation lands on nodes whose approximation slack — jobs degrading
// quality instead of service latency — absorbs the extra pressure. When the
// failed capacity recovers (no node Down, or capacity again covers demand),
// control snaps back to Normal and the energy optimization resumes.
type DegradeUnderLoss struct {
	// Normal handles the no-loss regime; nil defaults to
	// autoscale.ApproxForWatts{}.
	Normal autoscale.Controller
}

// Name identifies the policy.
func (DegradeUnderLoss) Name() string { return "degrade-under-loss" }

// normal resolves the no-loss controller.
func (d DegradeUnderLoss) normal() autoscale.Controller {
	if d.Normal != nil {
		return d.Normal
	}
	return autoscale.ApproxForWatts{}
}

// Decide implements autoscale.Controller.
func (d DegradeUnderLoss) Decide(v autoscale.View) []autoscale.Action {
	down, demand, alive := 0, v.Pending, 0
	for _, n := range v.Nodes {
		demand += n.Resident
		switch n.State {
		case autoscale.Down:
			down++
		case autoscale.Active, autoscale.Waking:
			alive += n.Slots
		}
	}
	if down == 0 || alive >= demand {
		return d.normal().Decide(v)
	}

	// Loss mode: capacity first, watts later. Wake everything parked and run
	// every survivor at nominal — approximation, not job shedding, pays for
	// the lost rack.
	var acts []autoscale.Action
	for _, n := range v.Nodes {
		switch {
		case n.State == autoscale.Parked:
			acts = append(acts, autoscale.Action{Kind: autoscale.Wake, Node: n.Index})
		case n.State == autoscale.Active && n.Freq != v.Nominal:
			acts = append(acts, autoscale.Action{Kind: autoscale.SetFreq, Node: n.Index, Freq: v.Nominal})
		}
	}
	return acts
}
