// Package fault injects failures into the online scheduler, deterministically
// and in virtual time — the robustness axis of the reproduction. Real
// datacenter traces (the Google ClusterData streams internal/trace ingests)
// are full of EVICT/FAIL/KILL events; this package turns those rates, or a
// synthetic MTTF/MTTR model, into a compiled schedule of typed fault events
// the scheduler applies on its serial coordinator sections, so fault-injected
// runs stay byte-identical across shard counts.
//
// A Plan describes the fault processes: per-node crash/recover renewal
// processes (exponential MTTF/MTTR), scripted correlated outages that take a
// whole failure domain (a rack) down at once, telemetry-dropout windows
// during which the scheduler sees a node's last-known-good snapshot instead
// of live feedback, and straggler windows that degrade a node's effective
// frequency. Compile expands the plan into a sorted event list before the
// run starts; the scheduler consumes the list at window boundaries.
//
// Recovery semantics live in internal/sched: crashed nodes drop their
// unfinished jobs back into the pending queue with a per-job retry budget and
// exponential backoff in virtual time, and retried jobs are spread away from
// the domain that failed them (anti-affinity). The DegradeUnderLoss
// controller (degrade.go) closes the paper tie-in: when alive capacity drops
// below demand, it funds the shortfall with the Pliant knob — waking every
// reserve node and snapping survivors to nominal frequency so their
// approximation slack absorbs the densified colocation — instead of shedding
// jobs, and hands control back to its normal controller on recovery.
package fault

import (
	"fmt"
	"math"
	"sort"

	"github.com/approx-sched/pliant/internal/sim"
)

// EventKind discriminates compiled fault events.
type EventKind uint8

// The fault event kinds, in application order at equal instants: a recovery
// precedes a crash at the same instant on the same node, so a zero-length
// outage is a no-op rather than a permanent kill.
const (
	// Recover returns a Down node to Active (no-op on a live node).
	Recover EventKind = iota
	// Crash takes a node Down, requeueing its unfinished jobs (no-op on a
	// node already Down).
	Crash
	// TelemetryStale freezes the scheduler's view of the node's telemetry at
	// its current snapshot for DurSec.
	TelemetryStale
	// Straggle degrades the node's effective frequency by the plan's
	// StragglerFactor for DurSec.
	Straggle
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Recover:
		return "recover"
	case Crash:
		return "crash"
	case TelemetryStale:
		return "stale"
	case Straggle:
		return "straggle"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one compiled fault instant.
type Event struct {
	AtSec float64
	Kind  EventKind
	Node  int
	// DurSec is the condition's length for TelemetryStale and Straggle
	// events (crash/recover pairs are separate events).
	DurSec float64
}

// Outage is one scripted correlated failure: every node of the domain
// crashes at AtSec and recovers at AtSec+DurationSec.
type Outage struct {
	AtSec       float64
	Domain      int
	DurationSec float64
}

// Plan describes the fault processes of one run. The zero value injects
// nothing; every process is opt-in.
type Plan struct {
	// MTTFSec is the per-node mean time to failure: each node crashes as an
	// exponential renewal process with this mean (0 disables random crashes).
	MTTFSec float64
	// MTTRSec is the mean repair time of random crashes, exponential with a
	// 1s floor (default 30 s when MTTFSec is set).
	MTTRSec float64

	// DomainSize groups consecutive nodes into correlated failure domains
	// (racks): nodes [k·size, (k+1)·size) form domain k. 0 or 1 makes every
	// node its own domain.
	DomainSize int
	// Outages are scripted correlated failures, applied on top of the random
	// processes.
	Outages []Outage

	// StaleMTBFSec spaces per-node telemetry dropouts (exponential mean
	// between onsets; 0 disables); each dropout lasts StaleDurSec (default
	// one dropout span of 30 s).
	StaleMTBFSec float64
	StaleDurSec  float64

	// StragglerMTBFSec spaces per-node straggler windows (0 disables); each
	// lasts StragglerDurSec (default 30 s) and scales the node's effective
	// frequency by StragglerFactor (default 0.5, must be in (0, 1)).
	// Stragglers act through the frequency path, so they require the run to
	// carry an energy model.
	StragglerMTBFSec float64
	StragglerDurSec  float64
	StragglerFactor  float64

	// RetryBudget is how many times a job lost to a crash is requeued before
	// it is dropped as lost (default 3; negative means zero retries).
	RetryBudget int
	// RetryBackoffSec is the base of the exponential backoff a requeued job
	// waits before it is offered again: backoff · 2^(retry-1) virtual
	// seconds after the crash (default 5 s).
	RetryBackoffSec float64

	// Seed decorrelates the fault streams from the run's other randomness;
	// it is mixed with the run seed, so the zero value is fine.
	Seed uint64
}

// withDefaults resolves the defaulted knobs.
func (p Plan) withDefaults() Plan {
	if p.MTTFSec > 0 && p.MTTRSec == 0 {
		p.MTTRSec = 30
	}
	if p.StaleMTBFSec > 0 && p.StaleDurSec == 0 {
		p.StaleDurSec = 30
	}
	if p.StragglerMTBFSec > 0 {
		if p.StragglerDurSec == 0 {
			p.StragglerDurSec = 30
		}
		if p.StragglerFactor == 0 {
			p.StragglerFactor = 0.5
		}
	}
	if p.RetryBudget == 0 {
		p.RetryBudget = 3
	} else if p.RetryBudget < 0 {
		p.RetryBudget = 0
	}
	if p.RetryBackoffSec == 0 {
		p.RetryBackoffSec = 5
	}
	return p
}

// Retries resolves the per-job retry budget.
func (p Plan) Retries() int { return p.withDefaults().RetryBudget }

// BackoffSec returns the virtual-time backoff before a job's retry-th
// re-offer (retry ≥ 1): exponential in the retry count.
func (p Plan) BackoffSec(retry int) float64 {
	base := p.withDefaults().RetryBackoffSec
	return base * math.Pow(2, float64(retry-1))
}

// Factor returns the resolved straggler frequency factor (meaningful only
// when straggler injection is enabled).
func (p Plan) Factor() float64 { return p.withDefaults().StragglerFactor }

// DomainOf maps a node index to its failure domain.
func (p Plan) DomainOf(node int) int {
	if p.DomainSize <= 1 {
		return node
	}
	return node / p.DomainSize
}

// Domains returns how many failure domains cover n nodes.
func (p Plan) Domains(n int) int {
	if p.DomainSize <= 1 {
		return n
	}
	return (n + p.DomainSize - 1) / p.DomainSize
}

// DomainNodes returns the node index range [lo, hi) of a domain, clipped to
// the cluster size.
func (p Plan) DomainNodes(domain, nodes int) (lo, hi int) {
	size := p.DomainSize
	if size <= 1 {
		size = 1
	}
	lo = domain * size
	hi = lo + size
	if hi > nodes {
		hi = nodes
	}
	if lo > nodes {
		lo = nodes
	}
	return lo, hi
}

// Validate reports plan errors. hasEnergy states whether the run carries an
// energy model — stragglers act through the frequency path and need one.
func (p Plan) Validate(nodes int, hasEnergy bool) error {
	d := p.withDefaults()
	switch {
	case d.MTTFSec < 0 || math.IsNaN(d.MTTFSec):
		return fmt.Errorf("fault: MTTF %v must be non-negative", d.MTTFSec)
	case d.MTTRSec < 0 || math.IsNaN(d.MTTRSec):
		return fmt.Errorf("fault: MTTR %v must be non-negative", d.MTTRSec)
	case d.DomainSize < 0:
		return fmt.Errorf("fault: domain size %d must be non-negative", d.DomainSize)
	case d.StaleMTBFSec < 0 || d.StaleDurSec < 0:
		return fmt.Errorf("fault: staleness knobs must be non-negative")
	case d.StragglerMTBFSec < 0 || d.StragglerDurSec < 0:
		return fmt.Errorf("fault: straggler knobs must be non-negative")
	case d.StragglerMTBFSec > 0 && (d.StragglerFactor <= 0 || d.StragglerFactor >= 1):
		return fmt.Errorf("fault: straggler factor %v outside (0, 1)", d.StragglerFactor)
	case d.StragglerMTBFSec > 0 && !hasEnergy:
		return fmt.Errorf("fault: straggler injection needs an energy model (it acts through the frequency path)")
	case d.RetryBackoffSec < 0 || math.IsNaN(d.RetryBackoffSec):
		return fmt.Errorf("fault: retry backoff %v must be non-negative", d.RetryBackoffSec)
	}
	for i, o := range p.Outages {
		switch {
		case o.AtSec <= 0 || math.IsNaN(o.AtSec):
			return fmt.Errorf("fault: outage %d at %v must be after t=0", i, o.AtSec)
		case o.DurationSec <= 0 || math.IsNaN(o.DurationSec):
			return fmt.Errorf("fault: outage %d duration %v must be positive", i, o.DurationSec)
		case o.Domain < 0 || o.Domain >= p.Domains(nodes):
			return fmt.Errorf("fault: outage %d targets domain %d of %d", i, o.Domain, p.Domains(nodes))
		}
	}
	return nil
}

// Compile expands the plan into the run's sorted event schedule. Events are
// a pure function of (runSeed, plan, nodes, horizonSec): per-node RNG
// streams are split off the mixed seed, so the schedule never depends on
// worker or shard counts, and equal configs reproduce it byte-for-byte.
func (p Plan) Compile(runSeed uint64, nodes int, horizonSec float64) []Event {
	d := p.withDefaults()
	var events []Event
	root := sim.NewRNG(sim.Mix64(runSeed ^ sim.Mix64(d.Seed+0x6661756c74)))

	for n := 0; n < nodes; n++ {
		if d.MTTFSec > 0 {
			rng := root.Split(uint64(n)*4 + 1)
			t := rng.Exp(d.MTTFSec)
			for t < horizonSec {
				events = append(events, Event{AtSec: t, Kind: Crash, Node: n})
				repair := rng.Exp(d.MTTRSec)
				if repair < 1 {
					repair = 1
				}
				t += repair
				if t >= horizonSec {
					break
				}
				events = append(events, Event{AtSec: t, Kind: Recover, Node: n})
				t += rng.Exp(d.MTTFSec)
			}
		}
		if d.StaleMTBFSec > 0 {
			rng := root.Split(uint64(n)*4 + 2)
			t := rng.Exp(d.StaleMTBFSec)
			for t < horizonSec {
				events = append(events, Event{AtSec: t, Kind: TelemetryStale, Node: n, DurSec: d.StaleDurSec})
				t += d.StaleDurSec + rng.Exp(d.StaleMTBFSec)
			}
		}
		if d.StragglerMTBFSec > 0 {
			rng := root.Split(uint64(n)*4 + 3)
			t := rng.Exp(d.StragglerMTBFSec)
			for t < horizonSec {
				events = append(events, Event{AtSec: t, Kind: Straggle, Node: n, DurSec: d.StragglerDurSec})
				t += d.StragglerDurSec + rng.Exp(d.StragglerMTBFSec)
			}
		}
	}
	for _, o := range d.Outages {
		lo, hi := d.DomainNodes(o.Domain, nodes)
		for n := lo; n < hi; n++ {
			if o.AtSec >= horizonSec {
				continue
			}
			events = append(events, Event{AtSec: o.AtSec, Kind: Crash, Node: n})
			if end := o.AtSec + o.DurationSec; end < horizonSec {
				events = append(events, Event{AtSec: end, Kind: Recover, Node: n})
			}
		}
	}

	// Total order on (instant, node, kind): the scheduler applies events in
	// slice order, so the order itself must be a pure function of the plan.
	// Recover sorts before Crash (kind order), making same-instant
	// recover/crash pairs behave as documented on the kinds.
	sort.Slice(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if ea.AtSec != eb.AtSec {
			return ea.AtSec < eb.AtSec
		}
		if ea.Node != eb.Node {
			return ea.Node < eb.Node
		}
		return ea.Kind < eb.Kind
	})
	return events
}
