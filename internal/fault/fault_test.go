package fault

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/trace"
)

func TestPlanDefaults(t *testing.T) {
	var p Plan
	if got := p.Retries(); got != 3 {
		t.Errorf("zero-plan retry budget = %d, want 3", got)
	}
	if got := (Plan{RetryBudget: -1}).Retries(); got != 0 {
		t.Errorf("negative retry budget resolved to %d, want 0", got)
	}
	if got := (Plan{RetryBudget: 5}).Retries(); got != 5 {
		t.Errorf("explicit retry budget resolved to %d, want 5", got)
	}
	// Exponential backoff doubles per retry off the 5s default base.
	for retry, want := range map[int]float64{1: 5, 2: 10, 3: 20} {
		if got := p.BackoffSec(retry); got != want {
			t.Errorf("backoff(%d) = %v, want %v", retry, got, want)
		}
	}
	if got := (Plan{RetryBackoffSec: 2}).BackoffSec(3); got != 8 {
		t.Errorf("backoff(3) at base 2 = %v, want 8", got)
	}
	if got := (Plan{StragglerMTBFSec: 10}).Factor(); got != 0.5 {
		t.Errorf("default straggler factor = %v, want 0.5", got)
	}
	if got := (Plan{MTTFSec: 100}).withDefaults().MTTRSec; got != 30 {
		t.Errorf("default MTTR = %v, want 30", got)
	}
}

func TestDomains(t *testing.T) {
	p := Plan{DomainSize: 3}
	if got := p.DomainOf(0); got != 0 {
		t.Errorf("DomainOf(0) = %d", got)
	}
	if got := p.DomainOf(5); got != 1 {
		t.Errorf("DomainOf(5) = %d, want 1", got)
	}
	if got := p.Domains(8); got != 3 {
		t.Errorf("Domains(8) = %d, want 3 (last one ragged)", got)
	}
	if lo, hi := p.DomainNodes(2, 8); lo != 6 || hi != 8 {
		t.Errorf("DomainNodes(2, 8) = [%d, %d), want ragged [6, 8)", lo, hi)
	}
	if lo, hi := p.DomainNodes(5, 8); lo != 8 || hi != 8 {
		t.Errorf("DomainNodes(5, 8) = [%d, %d), want empty", lo, hi)
	}
	// Size 0 or 1: every node is its own domain.
	solo := Plan{}
	if got := solo.DomainOf(4); got != 4 {
		t.Errorf("size-0 DomainOf(4) = %d", got)
	}
	if got := solo.Domains(4); got != 4 {
		t.Errorf("size-0 Domains(4) = %d", got)
	}
	if lo, hi := solo.DomainNodes(2, 4); lo != 2 || hi != 3 {
		t.Errorf("size-0 DomainNodes(2, 4) = [%d, %d)", lo, hi)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name      string
		plan      Plan
		hasEnergy bool
		wantErr   string
	}{
		{"zero plan", Plan{}, false, ""},
		{"full plan", Plan{MTTFSec: 100, MTTRSec: 10, DomainSize: 2,
			Outages:      []Outage{{AtSec: 10, Domain: 1, DurationSec: 5}},
			StaleMTBFSec: 50, StragglerMTBFSec: 50}, true, ""},
		{"negative mttf", Plan{MTTFSec: -1}, false, "MTTF"},
		{"nan mttr", Plan{MTTFSec: 1, MTTRSec: math.NaN()}, false, "MTTR"},
		{"negative domain", Plan{DomainSize: -2}, false, "domain size"},
		{"negative stale", Plan{StaleMTBFSec: -1}, false, "staleness"},
		{"bad straggler factor", Plan{StragglerMTBFSec: 10, StragglerFactor: 1.5}, true, "factor"},
		{"straggler sans energy", Plan{StragglerMTBFSec: 10}, false, "energy model"},
		{"negative backoff", Plan{RetryBackoffSec: -1}, false, "backoff"},
		{"outage at zero", Plan{Outages: []Outage{{AtSec: 0, DurationSec: 5}}}, false, "after t=0"},
		{"outage no duration", Plan{Outages: []Outage{{AtSec: 5}}}, false, "duration"},
		{"outage unknown domain", Plan{DomainSize: 2,
			Outages: []Outage{{AtSec: 5, Domain: 9, DurationSec: 5}}}, false, "domain 9"},
	}
	for _, c := range cases {
		err := c.plan.Validate(4, c.hasEnergy)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
}

// TestCompileDeterministicAndOrdered pins the schedule contract: equal
// (plan, seed, nodes, horizon) reproduce identical events; the slice is
// totally ordered by (instant, node, kind); and the stream stays inside the
// horizon.
func TestCompileDeterministicAndOrdered(t *testing.T) {
	p := Plan{
		MTTFSec:          40,
		MTTRSec:          5,
		DomainSize:       2,
		Outages:          []Outage{{AtSec: 30, Domain: 1, DurationSec: 20}},
		StaleMTBFSec:     60,
		StaleDurSec:      10,
		StragglerMTBFSec: 70,
		StragglerDurSec:  8,
	}
	ev := p.Compile(42, 6, 120)
	if len(ev) == 0 {
		t.Fatal("plan compiled to nothing")
	}
	if again := p.Compile(42, 6, 120); !reflect.DeepEqual(ev, again) {
		t.Fatal("recompilation diverged")
	}
	if other := p.Compile(43, 6, 120); reflect.DeepEqual(ev, other) {
		t.Fatal("run seed does not reach the fault streams")
	}
	if !sort.SliceIsSorted(ev, func(a, b int) bool {
		if ev[a].AtSec != ev[b].AtSec {
			return ev[a].AtSec < ev[b].AtSec
		}
		if ev[a].Node != ev[b].Node {
			return ev[a].Node < ev[b].Node
		}
		return ev[a].Kind < ev[b].Kind
	}) {
		t.Error("events not ordered by (instant, node, kind)")
	}
	kinds := map[EventKind]int{}
	for _, e := range ev {
		kinds[e.Kind]++
		if e.AtSec < 0 || e.AtSec >= 120 && e.Kind != Recover {
			t.Errorf("event %+v outside the horizon", e)
		}
		if e.Node < 0 || e.Node >= 6 {
			t.Errorf("event %+v targets an unknown node", e)
		}
	}
	for _, k := range []EventKind{Recover, Crash, TelemetryStale, Straggle} {
		if kinds[k] == 0 {
			t.Errorf("no %v events compiled", k)
		}
	}
	// The scripted outage expands over both nodes of domain 1.
	for _, n := range []int{2, 3} {
		crash, recover := false, false
		for _, e := range ev {
			if e.Node == n && e.AtSec == 30 && e.Kind == Crash {
				crash = true
			}
			if e.Node == n && e.AtSec == 50 && e.Kind == Recover {
				recover = true
			}
		}
		if !crash || !recover {
			t.Errorf("node %d missing its outage pair (crash=%v recover=%v)", n, crash, recover)
		}
	}
}

// TestCompileRecoverSortsBeforeCrash pins the same-instant tie-break that
// makes a zero-length outage a no-op instead of a permanent kill.
func TestCompileRecoverSortsBeforeCrash(t *testing.T) {
	p := Plan{Outages: []Outage{
		{AtSec: 10, Domain: 0, DurationSec: 10}, // recovers at 20...
		{AtSec: 20, Domain: 0, DurationSec: 10}, // ...as the next one crashes
	}}
	ev := p.Compile(1, 1, 100)
	for i := 1; i < len(ev); i++ {
		if ev[i].AtSec == ev[i-1].AtSec && ev[i].Node == ev[i-1].Node &&
			ev[i-1].Kind == Crash && ev[i].Kind == Recover {
			t.Fatalf("crash sorted before same-instant recover: %+v then %+v", ev[i-1], ev[i])
		}
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		Recover: "recover", Crash: "crash", TelemetryStale: "stale",
		Straggle: "straggle", EventKind(9): "event(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// degradeView builds a cluster snapshot for the controller tests: node 0
// active at low frequency, node 1 parked, node 2 down.
func degradeView(pending int) autoscale.View {
	return autoscale.View{
		NowSec:  10,
		Pending: pending,
		Nominal: 2,
		Nodes: []autoscale.NodeView{
			{Index: 0, State: autoscale.Active, Resident: 2, Slots: 3, Freq: 0},
			{Index: 1, State: autoscale.Parked, Slots: 3, Freq: 2},
			{Index: 2, State: autoscale.Down, Slots: 3, Freq: 2},
		},
	}
}

// recorderController captures whether the normal controller was consulted.
type recorderController struct{ called *bool }

func (recorderController) Name() string { return "recorder" }

func (c recorderController) Decide(autoscale.View) []autoscale.Action {
	*c.called = true
	return nil
}

func TestDegradeUnderLossDecide(t *testing.T) {
	var consulted bool
	d := DegradeUnderLoss{Normal: recorderController{&consulted}}

	// Covered demand (2 residents + 1 pending ≤ 3 alive slots): defer to the
	// normal controller even with a node down.
	if acts := d.Decide(degradeView(1)); acts != nil || !consulted {
		t.Errorf("covered demand: acts=%v consulted=%v, want nil/true", acts, consulted)
	}

	// Shortfall (2 residents + 4 pending > 3 alive slots): wake the reserve
	// and snap the slow survivor to nominal; the normal controller stays out.
	consulted = false
	acts := d.Decide(degradeView(4))
	if consulted {
		t.Error("loss mode still consulted the normal controller")
	}
	want := []autoscale.Action{
		{Kind: autoscale.SetFreq, Node: 0, Freq: 2},
		{Kind: autoscale.Wake, Node: 1},
	}
	sort.Slice(acts, func(a, b int) bool { return acts[a].Node < acts[b].Node })
	if !reflect.DeepEqual(acts, want) {
		t.Errorf("loss-mode actions = %+v, want %+v", acts, want)
	}

	// No node down: normal regime regardless of backlog.
	consulted = false
	v := degradeView(100)
	v.Nodes[2].State = autoscale.Active
	if d.Decide(v); !consulted {
		t.Error("no-loss view bypassed the normal controller")
	}

	if got := d.Name(); got != "degrade-under-loss" {
		t.Errorf("Name() = %q", got)
	}
	// Nil Normal defaults to approx-for-watts rather than crashing.
	if (DegradeUnderLoss{}).normal() == nil {
		t.Error("nil Normal resolved to nil")
	}
}

func TestFromTrace(t *testing.T) {
	raw := trace.Synthesize(trace.SynthConfig{
		Format: trace.Google, Jobs: 100, SpanSec: 600, Seed: 7, FailureFrac: 0.3,
	})
	tr, err := trace.Parse(bytes.NewReader(raw), trace.Google)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromTrace(tr, 120)
	if err != nil {
		t.Fatal(err)
	}
	wantMTTF := 120 / tr.FailureFrac()
	if p.MTTFSec != wantMTTF {
		t.Errorf("MTTF = %v, want horizon/failure-frac = %v", p.MTTFSec, wantMTTF)
	}
	if p.MTTRSec != 5 {
		t.Errorf("MTTR = %v, want horizon/24 = 5", p.MTTRSec)
	}
	if err := p.Validate(4, false); err != nil {
		t.Errorf("derived plan does not validate: %v", err)
	}

	// Short horizons floor the repair time at one second.
	if p, err := FromTrace(tr, 12); err != nil || p.MTTRSec != 1 {
		t.Errorf("short-horizon MTTR = %v (err %v), want floored 1", p.MTTRSec, err)
	}

	if _, err := FromTrace(nil, 120); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := FromTrace(tr, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	clean := trace.Synthesize(trace.SynthConfig{Format: trace.Google, Jobs: 50, SpanSec: 600, Seed: 7})
	ctr, err := trace.Parse(bytes.NewReader(clean), trace.Google)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTrace(ctr, 120); err == nil {
		t.Error("failure-free trace yielded a plan; -trace-faults would silently inject nothing")
	}
}
