package fault

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/trace"
)

// FromTrace derives a fault plan from a production trace's terminal-cause
// census: the per-job odds of a failure-shaped terminal (EVICT/FAIL/KILL/
// LOST) become each node's expected crash count over the replayed horizon.
// A trace whose jobs fail 20% of the time yields MTTF = horizon/0.2 — every
// node fails 0.2 times in expectation over the day, so the cluster as a
// whole sees the trace's failure pressure. MTTR defaults to 1/24 of the
// horizon (an "hour" of the compressed day), floored at one scheduling-
// window-scale second. The retry knobs keep their plan defaults.
//
// An error is returned when no job terminated inside the trace window or
// none failed — there is no rate to replay, and silently injecting nothing
// would let a -trace-faults run masquerade as fault-tested.
func FromTrace(tr *trace.Trace, horizonSec float64) (Plan, error) {
	if tr == nil || horizonSec <= 0 {
		return Plan{}, fmt.Errorf("fault: trace-derived plan needs a trace and a positive horizon")
	}
	frac := tr.FailureFrac()
	if frac <= 0 {
		return Plan{}, fmt.Errorf("fault: trace %q carries no failure-shaped terminals (%d terminated, %d failed)",
			tr.Source, tr.Causes.Terminated(), tr.Causes.Failures())
	}
	mttr := horizonSec / 24
	if mttr < 1 {
		mttr = 1
	}
	return Plan{
		MTTFSec: horizonSec / frac,
		MTTRSec: mttr,
	}, nil
}
