// Package interference models contention in the resources the colocated
// tenants share: the last-level cache and memory bandwidth (plus a mild
// scheduling term when a tenant is starved of cores). It converts each
// tenant's current resource demand into a per-tenant slowdown factor that the
// service and application models apply to their work.
//
// The model is deliberately simple and monotone — the paper's runtime treats
// the machine as a black box and only observes end-to-end latency, so what
// matters for reproducing its behaviour is that (a) colocated pressure
// inflates interactive service time enough to violate QoS at high load
// (paper: 2–10×), (b) approximation reduces pressure roughly in proportion to
// the traffic it eliminates, and (c) core reclamation shifts capacity without
// changing pressure per remaining core.
package interference

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/platform"
)

// Demand is one tenant's instantaneous pressure on shared resources.
type Demand struct {
	Tenant platform.TenantID

	// LLCMB is the tenant's working-set demand on the shared LLC, in MB.
	// When the sum across tenants exceeds capacity, everyone's effective
	// occupancy shrinks proportionally and miss rates rise.
	LLCMB float64

	// MemBWGBs is the tenant's memory-bandwidth demand in GB/s at its
	// current core allocation and approximation variant.
	MemBWGBs float64

	// Sensitivity scales how strongly this tenant's execution suffers per
	// unit of cache/bandwidth shortfall. Interactive services with strict
	// microsecond budgets (memcached) have high sensitivity; I/O-bound
	// services (MongoDB) have low sensitivity.
	Sensitivity Sensitivity
}

// Sensitivity captures how a tenant's execution time responds to shortfalls
// in each shared resource. A value of 1.0 means a 100% shortfall doubles the
// tenant's service demand.
type Sensitivity struct {
	LLC   float64
	MemBW float64
}

// DefaultKnee is the occupancy fraction at which contention effects begin.
// Real caches suffer conflict and capacity misses well before the summed
// working sets reach nominal capacity, and memory controllers queue before
// peak bandwidth; 0.75 reproduces the gradual onset the paper's precise-mode
// violation spectrum (2–10×) implies.
const DefaultKnee = 0.75

// Model computes per-tenant slowdowns from the demands of all colocated
// tenants on a server.
type Model struct {
	spec platform.Spec
	knee float64
}

// New returns a contention model for the given server with the default
// contention knee.
func New(spec platform.Spec) (*Model, error) {
	return NewWithKnee(spec, DefaultKnee)
}

// NewWithKnee returns a contention model whose contention onset begins at
// the given fraction of nominal capacity (knee=1 means contention begins
// exactly at capacity — the idealized proportional-sharing model).
func NewWithKnee(spec platform.Spec, knee float64) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if knee <= 0 || knee > 1 {
		return nil, fmt.Errorf("interference: knee %v outside (0,1]", knee)
	}
	return &Model{spec: spec, knee: knee}, nil
}

// Spec returns the server spec the model was built for.
func (m *Model) Spec() platform.Spec { return m.spec }

// Pressure summarizes the shared-resource state for one evaluation.
type Pressure struct {
	// LLCDemandMB is the summed cache demand across tenants.
	LLCDemandMB float64
	// LLCOvercommit is max(0, demand/capacity - 1): how far the combined
	// working sets exceed the cache.
	LLCOvercommit float64
	// BWDemandGBs is the summed bandwidth demand.
	BWDemandGBs float64
	// BWOvercommit is max(0, demand/peak - 1).
	BWOvercommit float64
}

// Result is the outcome of evaluating the model against a set of demands.
type Result struct {
	Pressure  Pressure
	slowdowns map[platform.TenantID]float64
}

// Slowdown returns the multiplicative execution-time inflation for tenant
// (1.0 = no interference). Unknown tenants return 1.0.
func (r Result) Slowdown(t platform.TenantID) float64 {
	if s, ok := r.slowdowns[t]; ok {
		return s
	}
	return 1.0
}

// Evaluate computes the current slowdown for every tenant in demands.
//
// Cache: tenants compete for LLC capacity. Each tenant's occupancy is its
// demand scaled down proportionally when the sum exceeds capacity; its
// shortfall fraction (1 - occupancy/demand) drives extra misses, hence
// inflation via the tenant's LLC sensitivity.
//
// Bandwidth: when the summed demand exceeds the achievable peak, memory
// accesses queue; every tenant sees the same relative shortfall, weighted by
// its bandwidth sensitivity.
func (m *Model) Evaluate(demands []Demand) Result {
	var p Pressure
	for _, d := range demands {
		p.LLCDemandMB += nonneg(d.LLCMB)
		p.BWDemandGBs += nonneg(d.MemBWGBs)
	}
	if p.LLCDemandMB > m.spec.LLCMB {
		p.LLCOvercommit = p.LLCDemandMB/m.spec.LLCMB - 1
	}
	if p.BWDemandGBs > m.spec.MemBWGBs {
		p.BWOvercommit = p.BWDemandGBs/m.spec.MemBWGBs - 1
	}

	res := Result{
		Pressure:  p,
		slowdowns: make(map[platform.TenantID]float64, len(demands)),
	}

	// Fraction of each tenant's demand it effectively receives: full until
	// combined demand reaches the contention knee, then shrinking
	// proportionally.
	llcShare := 1.0
	if effCap := m.knee * m.spec.LLCMB; p.LLCDemandMB > effCap {
		llcShare = effCap / p.LLCDemandMB
	}
	bwShare := 1.0
	if effCap := m.knee * m.spec.MemBWGBs; p.BWDemandGBs > effCap {
		bwShare = effCap / p.BWDemandGBs
	}

	for _, d := range demands {
		llcShort := 0.0
		if d.LLCMB > 0 {
			llcShort = 1 - llcShare
		}
		bwShort := 0.0
		if d.MemBWGBs > 0 {
			bwShort = 1 - bwShare
		}
		slow := 1 + d.Sensitivity.LLC*llcShort + d.Sensitivity.MemBW*bwShort
		if slow < 1 {
			slow = 1
		}
		res.slowdowns[d.Tenant] = slow
	}
	return res
}

func nonneg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// String formats the pressure state for traces.
func (p Pressure) String() string {
	return fmt.Sprintf("llc=%.1fMB(+%.0f%%) bw=%.1fGB/s(+%.0f%%)",
		p.LLCDemandMB, p.LLCOvercommit*100, p.BWDemandGBs, p.BWOvercommit*100)
}
