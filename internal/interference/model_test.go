package interference

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/approx-sched/pliant/internal/platform"
)

// model returns an idealized proportional-sharing model (knee=1), under
// which shortfall arithmetic is exact and easy to assert.
func model(t *testing.T) *Model {
	t.Helper()
	m, err := NewWithKnee(platform.TablePlatform(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsInvalidSpec(t *testing.T) {
	bad := platform.TablePlatform()
	bad.LLCMB = 0
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted invalid spec")
	}
}

func TestNewRejectsBadKnee(t *testing.T) {
	for _, knee := range []float64{0, -0.5, 1.5} {
		if _, err := NewWithKnee(platform.TablePlatform(), knee); err == nil {
			t.Errorf("knee %v accepted", knee)
		}
	}
}

func TestKneeStartsContentionEarly(t *testing.T) {
	m, err := New(platform.TablePlatform()) // default knee 0.75
	if err != nil {
		t.Fatal(err)
	}
	cap := m.Spec().LLCMB
	// Demand at 90% of capacity: under proportional sharing there is no
	// shortfall, but past the knee there is.
	res := m.Evaluate([]Demand{
		{Tenant: "a", LLCMB: cap * 0.9, Sensitivity: Sensitivity{LLC: 1}},
	})
	if got := res.Slowdown("a"); got <= 1.0 {
		t.Fatalf("slowdown at 90%% occupancy = %v, want > 1 with knee", got)
	}
	// Demand below the knee: no contention.
	res = m.Evaluate([]Demand{
		{Tenant: "a", LLCMB: cap * 0.7, Sensitivity: Sensitivity{LLC: 1}},
	})
	if got := res.Slowdown("a"); got != 1.0 {
		t.Fatalf("slowdown at 70%% occupancy = %v, want 1.0", got)
	}
}

func TestNoContentionNoSlowdown(t *testing.T) {
	m := model(t)
	res := m.Evaluate([]Demand{
		{Tenant: "svc", LLCMB: 10, MemBWGBs: 5, Sensitivity: Sensitivity{LLC: 2, MemBW: 2}},
		{Tenant: "app", LLCMB: 10, MemBWGBs: 5, Sensitivity: Sensitivity{LLC: 1, MemBW: 1}},
	})
	if got := res.Slowdown("svc"); got != 1.0 {
		t.Fatalf("uncontended svc slowdown = %v, want 1.0", got)
	}
	if got := res.Slowdown("app"); got != 1.0 {
		t.Fatalf("uncontended app slowdown = %v, want 1.0", got)
	}
	if res.Pressure.LLCOvercommit != 0 || res.Pressure.BWOvercommit != 0 {
		t.Fatalf("unexpected overcommit: %+v", res.Pressure)
	}
}

func TestLLCOvercommitSlowsSensitiveTenant(t *testing.T) {
	m := model(t)
	// Combined demand 110MB on a 55MB LLC: each tenant gets half its demand.
	res := m.Evaluate([]Demand{
		{Tenant: "svc", LLCMB: 55, Sensitivity: Sensitivity{LLC: 2}},
		{Tenant: "app", LLCMB: 55, Sensitivity: Sensitivity{LLC: 0.5}},
	})
	// Shortfall is 0.5 each; svc inflates by 1+2*0.5=2, app by 1.25.
	if got := res.Slowdown("svc"); got != 2.0 {
		t.Fatalf("svc slowdown = %v, want 2.0", got)
	}
	if got := res.Slowdown("app"); got != 1.25 {
		t.Fatalf("app slowdown = %v, want 1.25", got)
	}
}

func TestBWOvercommit(t *testing.T) {
	m := model(t)
	peak := m.Spec().MemBWGBs
	res := m.Evaluate([]Demand{
		{Tenant: "svc", MemBWGBs: peak, Sensitivity: Sensitivity{MemBW: 1}},
		{Tenant: "app", MemBWGBs: peak, Sensitivity: Sensitivity{MemBW: 1}},
	})
	// Each gets half its demand: shortfall 0.5, slowdown 1.5.
	if got := res.Slowdown("svc"); got != 1.5 {
		t.Fatalf("svc slowdown = %v, want 1.5", got)
	}
	if res.Pressure.BWOvercommit != 1.0 {
		t.Fatalf("BWOvercommit = %v, want 1.0", res.Pressure.BWOvercommit)
	}
}

func TestZeroDemandTenantUnaffected(t *testing.T) {
	m := model(t)
	res := m.Evaluate([]Demand{
		{Tenant: "idle", LLCMB: 0, MemBWGBs: 0, Sensitivity: Sensitivity{LLC: 5, MemBW: 5}},
		{Tenant: "hog1", LLCMB: 60, MemBWGBs: 80, Sensitivity: Sensitivity{LLC: 1, MemBW: 1}},
		{Tenant: "hog2", LLCMB: 60, MemBWGBs: 80, Sensitivity: Sensitivity{LLC: 1, MemBW: 1}},
	})
	// A tenant that touches neither resource can't be slowed by them.
	if got := res.Slowdown("idle"); got != 1.0 {
		t.Fatalf("idle slowdown = %v, want 1.0", got)
	}
	if res.Slowdown("hog1") <= 1.0 {
		t.Fatal("contending tenant not slowed")
	}
}

func TestUnknownTenantDefaultsToOne(t *testing.T) {
	m := model(t)
	res := m.Evaluate(nil)
	if res.Slowdown("ghost") != 1.0 {
		t.Fatal("unknown tenant should have slowdown 1.0")
	}
}

func TestNegativeDemandClamped(t *testing.T) {
	m := model(t)
	res := m.Evaluate([]Demand{
		{Tenant: "weird", LLCMB: -10, MemBWGBs: -10, Sensitivity: Sensitivity{LLC: 1, MemBW: 1}},
	})
	if res.Pressure.LLCDemandMB != 0 || res.Pressure.BWDemandGBs != 0 {
		t.Fatalf("negative demand leaked into pressure: %+v", res.Pressure)
	}
	if res.Slowdown("weird") != 1.0 {
		t.Fatal("negative demand produced slowdown")
	}
}

func TestReducingDemandReducesSlowdown(t *testing.T) {
	// The core premise of Pliant: approximation reduces traffic, which must
	// monotonically reduce the victim's slowdown.
	m := model(t)
	sens := Sensitivity{LLC: 1.5, MemBW: 1.2}
	victim := Demand{Tenant: "svc", LLCMB: 20, MemBWGBs: 10, Sensitivity: sens}
	prev := 1e18
	for bw := 120.0; bw >= 0; bw -= 20 {
		res := m.Evaluate([]Demand{victim, {Tenant: "app", LLCMB: 80, MemBWGBs: bw, Sensitivity: Sensitivity{LLC: 0.5, MemBW: 0.5}}})
		s := res.Slowdown("svc")
		if s > prev {
			t.Fatalf("slowdown not monotone in co-runner bandwidth: %v after %v", s, prev)
		}
		prev = s
	}
}

// Property: slowdowns are always >= 1 and finite, for arbitrary demands.
func TestSlowdownBoundsProperty(t *testing.T) {
	m := model(t)
	f := func(llc1, bw1, llc2, bw2 uint16, sLLC, sBW uint8) bool {
		res := m.Evaluate([]Demand{
			{Tenant: "a", LLCMB: float64(llc1), MemBWGBs: float64(bw1),
				Sensitivity: Sensitivity{LLC: float64(sLLC) / 16, MemBW: float64(sBW) / 16}},
			{Tenant: "b", LLCMB: float64(llc2), MemBWGBs: float64(bw2),
				Sensitivity: Sensitivity{LLC: 1, MemBW: 1}},
		})
		for _, id := range []platform.TenantID{"a", "b"} {
			s := res.Slowdown(id)
			if s < 1 || s != s /* NaN */ {
				return false
			}
			// Shortfall fractions are < 1, so slowdown < 1 + sLLC + sBW.
			if id == "b" && s >= 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPressureString(t *testing.T) {
	m := model(t)
	res := m.Evaluate([]Demand{{Tenant: "x", LLCMB: 100, MemBWGBs: 100}})
	if !strings.Contains(res.Pressure.String(), "llc=") {
		t.Fatalf("Pressure.String() = %q", res.Pressure.String())
	}
}
