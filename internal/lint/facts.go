package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the dataflow half of the analyzer: a two-phase fact engine.
//
// Phase 1 computes, per package and in parallel, a FuncFact for every
// function declaration and function literal: its static call edges, the
// interface methods it invokes, the goroutines it launches, the function
// values it references, and whether it carries a //pliant:hotpath
// annotation. Facts are pure per-package data — no rule logic — so they are
// computed once and shared by every rule that needs them.
//
// Phase 2 propagates one cross-package property over the fact cache: the
// shard-parallel set, the functions that can execute on a goroutine sharing
// a live run with other goroutines. Roots are the call targets of `go`
// statements, excluding the run-exclusive spawn sites (the serving layer's
// session pump and SSE writers, and the experiment runner's workers), where
// each goroutine owns its entire object graph and races with nothing. From
// the roots the set closes over:
//
//   - static call edges (module-internal only);
//   - `go` statements and function literals inside parallel functions
//     (a literal born in a parallel context runs in it);
//   - referenced function values (a parallel function holding tel.Observe
//     as a callback will invoke it in-context);
//   - interface dispatch, by method name: when a parallel function invokes
//     a method through an interface value, every module method with that
//     name joins the set (this is how sim.Engine.Run's h.OnEvent dispatch
//     reaches the shard episode handlers);
//   - higher-order calls: when a function's func-typed parameter is invoked
//     from a parallel context, the function values passed as arguments at
//     its call sites join the set (this is how the episode closure handed
//     to runPool is classified without runPool itself being parallel —
//     its sequential workers<=1 fallback stays serial).
//
// The closure is an over-approximation by construction: it can classify a
// serial caller of a dual-use function as parallel, never the reverse.
// Rules that consume it therefore only flag operations that are unsafe
// *if* the function runs in parallel, and every flag can carry a reasoned
// //pliant:allow.

// runExclusiveSpawnFiles are the sanctioned `go` statements whose goroutines
// exclusively own everything they touch: one session pump per serve session
// (the pump owns its Runner), one SSE writer per subscriber, one experiment
// per worker. They are excluded from the shard-parallel roots; the remaining
// spawn sites — the episode worker pool, the shard runtime, and the cluster
// node fan-out — all share one live run across goroutines.
var runExclusiveSpawnFiles = map[string]bool{
	"internal/serve/session.go":       true,
	"internal/serve/sse.go":           true,
	"internal/experiments/profile.go": true,
}

// hotpathDirective is the annotation marking a function as a proven
// zero-allocation path; the hotpathalloc rule gates its body and the CLI
// reports the annotated set.
const hotpathDirective = "pliant:hotpath"

// FuncFact is the per-function unit of the fact cache.
type FuncFact struct {
	// Key identifies the function across packages:
	// "pkgpath.Func", "pkgpath.Type.Method", or "parentKey$N" for the N-th
	// function literal inside parent (lexical order).
	Key  string
	File string // module-relative
	Line int

	// Hotpath marks a //pliant:hotpath annotation on the declaration.
	Hotpath bool
	// IsMethod marks declarations with a receiver.
	IsMethod bool

	// Calls lists statically resolved module-internal callees.
	Calls []string
	// IfaceCalls lists method names invoked through interface values.
	IfaceCalls []string
	// Spawns lists call targets of `go` statements in this function.
	Spawns []string
	// Refs lists module-internal functions referenced as values (callbacks,
	// method values, literals handed to unresolved callees) rather than
	// called directly.
	Refs []string
	// Lits lists the keys of function literals declared in this function.
	Lits []string
	// InvokesParamsOf lists keys of declarations whose func-typed
	// parameters this function invokes (its own key, or — for a literal
	// calling a captured parameter — the enclosing declaration's).
	InvokesParamsOf []string

	body   ast.Node
	file   *ast.File
	pkg    *Package
	parent *FuncFact // enclosing function for literals, nil for decls

	recvObj   types.Object
	paramObjs map[types.Object]bool
}

// PackageFacts is phase 1's output for one package.
type PackageFacts struct {
	Path  string
	Funcs map[string]*FuncFact

	// argEdges are (callee key, function-valued argument key) pairs seen at
	// call sites in this package; the FactSet merges them globally.
	argEdges [][2]string
}

// FactSet is the cross-package fact cache plus the propagated
// shard-parallel classification.
type FactSet struct {
	byPkg map[string]*PackageFacts
	funcs map[string]*FuncFact

	// methodIndex maps a method name to every module method bearing it —
	// the interface-dispatch approximation.
	methodIndex map[string][]string

	// argEdges maps a declaration key to the function-valued argument keys
	// passed at its call sites anywhere in the loaded set.
	argEdges map[string][]string

	parallel map[string]bool
	roots    []string

	// crossSpawn marks keys whose body executes on a different goroutine
	// than their lexical parent: `go` statement targets, and function
	// values handed to higher-order invokers (which may run them from any
	// worker). A literal that is parallel but NOT in this set merely
	// inherited the classification from its enclosing function — it runs
	// synchronously on the parent's goroutine, so its captures are
	// frame-private.
	crossSpawn map[string]bool
}

// ComputeFacts runs phase 1 over pkgs in parallel and phase 2's
// propagation, returning the complete fact set.
func ComputeFacts(pkgs []*Package) *FactSet {
	fs := &FactSet{
		byPkg:       make(map[string]*PackageFacts, len(pkgs)),
		funcs:       make(map[string]*FuncFact),
		methodIndex: make(map[string][]string),
		argEdges:    make(map[string][]string),
		parallel:    make(map[string]bool),
		crossSpawn:  make(map[string]bool),
	}
	results := make([]*PackageFacts, len(pkgs))
	var wg sync.WaitGroup
	for i, p := range pkgs {
		wg.Add(1)
		//pliant:allow spawn — analyzer fan-out: per-package facts land in disjoint slots and merge after the wait
		go func(i int, p *Package) {
			defer wg.Done()
			results[i] = computePackageFacts(p)
		}(i, p)
	}
	wg.Wait()
	for _, pf := range results {
		fs.byPkg[pf.Path] = pf
	}
	fs.index()
	fs.propagate()
	return fs
}

// Pkg returns the facts for one package path, or nil.
func (fs *FactSet) Pkg(path string) *PackageFacts { return fs.byPkg[path] }

// IsParallel reports whether key is in the shard-parallel set.
func (fs *FactSet) IsParallel(key string) bool { return fs.parallel[key] }

// CrossesSpawn reports whether key's body runs on a different goroutine
// than its lexical parent (it is a `go` target or a higher-order argument).
func (fs *FactSet) CrossesSpawn(key string) bool { return fs.crossSpawn[key] }

// Hotpaths returns the sorted keys of every //pliant:hotpath-annotated
// function in the loaded set.
func (fs *FactSet) Hotpaths() []string {
	out := []string{} // never nil: -json renders an empty set as [], not null
	for k, ff := range fs.funcs {
		if ff.Hotpath {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ParallelFuncs returns the sorted shard-parallel set restricted to
// functions the loaded set declares (external keys from unresolved edges
// are dropped).
func (fs *FactSet) ParallelFuncs() []string {
	var out []string
	for k := range fs.funcs {
		if fs.parallel[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// index merges per-package facts into the global tables and collects the
// shard-parallel roots, in sorted package order for determinism.
func (fs *FactSet) index() {
	paths := make([]string, 0, len(fs.byPkg))
	for path := range fs.byPkg {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pf := fs.byPkg[path]
		for _, e := range pf.argEdges {
			fs.argEdges[e[0]] = append(fs.argEdges[e[0]], e[1])
		}
		keys := make([]string, 0, len(pf.Funcs))
		for k := range pf.Funcs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ff := pf.Funcs[k]
			fs.funcs[k] = ff
			if ff.IsMethod {
				name := k[strings.LastIndex(k, ".")+1:]
				fs.methodIndex[name] = append(fs.methodIndex[name], k)
			}
			for _, s := range ff.Spawns {
				fs.crossSpawn[s] = true
			}
			if !runExclusiveSpawnFiles[ff.File] {
				fs.roots = append(fs.roots, ff.Spawns...)
			}
		}
	}
}

// propagate closes the shard-parallel set over the edge kinds described in
// the file comment, iterating the higher-order argument edges to a
// fixpoint.
func (fs *FactSet) propagate() {
	fs.mark(fs.roots...)
	for changed := true; changed; {
		changed = false
		for k, ff := range fs.funcs {
			if !fs.parallel[k] {
				continue
			}
			for _, decl := range ff.InvokesParamsOf {
				for _, arg := range fs.argEdges[decl] {
					// The invoker may run the argument from any of its
					// worker goroutines, so the argument crosses a spawn
					// boundary even without a lexical `go` statement.
					fs.crossSpawn[arg] = true
					if !fs.parallel[arg] {
						fs.mark(arg)
						changed = true
					}
				}
			}
		}
	}
}

// mark adds keys and their first-order closure to the parallel set.
func (fs *FactSet) mark(keys ...string) {
	queue := append([]string(nil), keys...)
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if fs.parallel[k] {
			continue
		}
		fs.parallel[k] = true
		ff := fs.funcs[k]
		if ff == nil {
			continue // external or unresolved: no body to expand
		}
		queue = append(queue, ff.Calls...)
		queue = append(queue, ff.Spawns...)
		queue = append(queue, ff.Refs...)
		queue = append(queue, ff.Lits...)
		for _, m := range ff.IfaceCalls {
			queue = append(queue, fs.methodIndex[m]...)
		}
	}
}

// DebugDump renders the fact cache deterministically: packages and function
// keys sorted, one line per function with its classification and edges.
func (fs *FactSet) DebugDump(w io.Writer) {
	paths := make([]string, 0, len(fs.byPkg))
	for path := range fs.byPkg {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pf := fs.byPkg[path]
		fmt.Fprintf(w, "package %s\n", path)
		keys := make([]string, 0, len(pf.Funcs))
		for k := range pf.Funcs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ff := pf.Funcs[k]
			var marks []string
			if ff.Hotpath {
				marks = append(marks, "hotpath")
			}
			if fs.parallel[k] {
				marks = append(marks, "parallel")
			}
			fmt.Fprintf(w, "  %s", k)
			if len(marks) > 0 {
				fmt.Fprintf(w, " [%s]", strings.Join(marks, ","))
			}
			fmt.Fprintln(w)
			dumpEdges(w, "calls", ff.Calls)
			dumpEdges(w, "iface", ff.IfaceCalls)
			dumpEdges(w, "spawns", ff.Spawns)
			dumpEdges(w, "refs", ff.Refs)
		}
	}
}

func dumpEdges(w io.Writer, label string, edges []string) {
	if len(edges) == 0 {
		return
	}
	sorted := append([]string(nil), edges...)
	sort.Strings(sorted)
	fmt.Fprintf(w, "    %s: %s\n", label, strings.Join(sorted, " "))
}

// ---------------------------------------------------------------------------
// Phase 1: per-package fact computation.

// factsCollector accumulates one package's facts. Its scratch lives in
// depth-1 fields of the collector itself — ComputeFacts runs one collector
// per package goroutine, and the shard ownership discipline this analyzer
// enforces (sharedstate) applies to its own fan-out: each goroutine
// mutates only its collector and publishes a PackageFacts once, into a
// disjoint slot, at the end.
type factsCollector struct {
	p        *Package
	funcs    map[string]*FuncFact
	argEdges [][2]string
}

func computePackageFacts(p *Package) *PackageFacts {
	c := &factsCollector{p: p, funcs: make(map[string]*FuncFact)}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff := c.newDeclFact(f, fd)
			c.walk(ff, fd.Body)
		}
	}
	return &PackageFacts{Path: p.Path, Funcs: c.funcs, argEdges: c.argEdges}
}

// declKey derives the cross-package key of a declared function.
func (c *factsCollector) declKey(fd *ast.FuncDecl) string {
	if fn, ok := c.p.Info.Defs[fd.Name].(*types.Func); ok {
		if k := typeFuncKey(fn); k != "" {
			return k
		}
	}
	// Syntactic fallback for partially checked files.
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return c.p.Path + "." + recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return c.p.Path + "." + fd.Name.Name
}

// typeFuncKey renders a *types.Func as "pkgpath.Func" or
// "pkgpath.Type.Method"; "" for functions without a package (builtins).
func typeFuncKey(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return "?"
}

func (c *factsCollector) newDeclFact(f *ast.File, fd *ast.FuncDecl) *FuncFact {
	file, line, _ := c.p.RelFile(fd.Pos())
	ff := &FuncFact{
		Key:       c.declKey(fd),
		File:      file,
		Line:      line,
		Hotpath:   hasHotpathDirective(fd.Doc),
		IsMethod:  fd.Recv != nil,
		body:      fd.Body,
		file:      f,
		pkg:       c.p,
		paramObjs: make(map[types.Object]bool),
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		ff.recvObj = c.p.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	collectParamObjs(c.p, fd.Type, ff.paramObjs)
	c.funcs[ff.Key] = ff
	return ff
}

func (c *factsCollector) newLitFact(parent *FuncFact, lit *ast.FuncLit) *FuncFact {
	file, line, _ := c.p.RelFile(lit.Pos())
	ff := &FuncFact{
		Key:       parent.Key + "$" + strconv.Itoa(len(parent.Lits)+1),
		File:      file,
		Line:      line,
		body:      lit.Body,
		file:      parent.file,
		pkg:       c.p,
		parent:    parent,
		paramObjs: make(map[types.Object]bool),
	}
	collectParamObjs(c.p, lit.Type, ff.paramObjs)
	parent.Lits = append(parent.Lits, ff.Key)
	c.funcs[ff.Key] = ff
	return ff
}

func collectParamObjs(p *Package, ft *ast.FuncType, into map[types.Object]bool) {
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj, ok := p.Info.Defs[name]; ok {
					into[obj] = true
				}
			}
		}
	}
	add(ft.Params)
	add(ft.Results)
}

// hasHotpathDirective reports whether the doc group carries
// //pliant:hotpath. Directive comments are read raw (CommentGroup.Text
// strips them).
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, cmt := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cmt.Text, "//"))
		if strings.HasPrefix(text, hotpathDirective) {
			return true
		}
	}
	return false
}

// unparen strips parentheses. (ast.Unparen postdates this module's language
// version.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// walk collects ff's edges from body. Function literals get their own facts
// and are walked separately — their edges belong to them, not to ff.
func (c *factsCollector) walk(ff *FuncFact, body ast.Node) {
	goCalls := make(map[*ast.CallExpr]bool)
	funExprs := make(map[ast.Expr]bool)
	litFacts := make(map[*ast.FuncLit]*FuncFact)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lf, ok := litFacts[n]
			if !ok {
				lf = c.newLitFact(ff, n)
			}
			c.walk(lf, n.Body)
			return false
		case *ast.GoStmt:
			goCalls[n.Call] = true
			return true
		case *ast.CallExpr:
			c.call(ff, n, goCalls[n], funExprs, litFacts)
			return true
		case *ast.SelectorExpr:
			if !funExprs[n] && !funExprs[ast.Expr(n.Sel)] {
				if key := c.funcValueKey(n.Sel); key != "" {
					ff.Refs = append(ff.Refs, key)
				}
			}
			funExprs[ast.Expr(n.Sel)] = true
			return true
		case *ast.Ident:
			if !funExprs[n] {
				if key := c.funcValueKey(n); key != "" {
					ff.Refs = append(ff.Refs, key)
				}
			}
			return true
		}
		return true
	})
}

// call records one call expression's edges on ff.
func (c *factsCollector) call(ff *FuncFact, call *ast.CallExpr, isGo bool, funExprs map[ast.Expr]bool, litFacts map[*ast.FuncLit]*FuncFact) {
	record := func(key string) {
		if key == "" {
			return
		}
		if isGo {
			ff.Spawns = append(ff.Spawns, key)
		} else {
			ff.Calls = append(ff.Calls, key)
		}
	}

	fun := unparen(call.Fun)
	funExprs[fun] = true
	calleeKey := ""
	switch fn := fun.(type) {
	case *ast.FuncLit:
		lf := c.newLitFact(ff, fn)
		litFacts[fn] = lf
		record(lf.Key)
	case *ast.Ident:
		switch obj := c.p.Info.Uses[fn].(type) {
		case *types.Func:
			calleeKey = moduleKey(c.p, obj)
			record(calleeKey)
		case *types.Var:
			// Invoking a variable of function type: if it is a parameter of
			// this function or an enclosing one, argument edges at the
			// declaring function's call sites feed this invocation.
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				for f := ff; f != nil; f = f.parent {
					if f.paramObjs[obj] {
						ff.InvokesParamsOf = append(ff.InvokesParamsOf, f.Key)
						break
					}
				}
			}
		}
	case *ast.SelectorExpr:
		funExprs[ast.Expr(fn.Sel)] = true
		if sel, ok := c.p.Info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				ff.IfaceCalls = append(ff.IfaceCalls, fn.Sel.Name)
			} else if fn2, ok := sel.Obj().(*types.Func); ok {
				calleeKey = moduleKey(c.p, fn2)
				record(calleeKey)
			}
		} else if fn2, ok := c.p.Info.Uses[fn.Sel].(*types.Func); ok {
			calleeKey = moduleKey(c.p, fn2)
			record(calleeKey)
		}
	}

	// Function-valued arguments become propagation edges at the callee (or
	// plain refs of this function when the callee is unresolved).
	for _, arg := range call.Args {
		switch a := unparen(arg).(type) {
		case *ast.FuncLit:
			lf := c.newLitFact(ff, a)
			litFacts[a] = lf
			if calleeKey != "" {
				c.argEdges = append(c.argEdges, [2]string{calleeKey, lf.Key})
			} else {
				ff.Refs = append(ff.Refs, lf.Key)
			}
		case *ast.Ident:
			if key := c.funcValueKey(a); key != "" && calleeKey != "" {
				c.argEdges = append(c.argEdges, [2]string{calleeKey, key})
			}
		case *ast.SelectorExpr:
			if key := c.funcValueKey(a.Sel); key != "" && calleeKey != "" {
				c.argEdges = append(c.argEdges, [2]string{calleeKey, key})
			}
		}
	}
}

// funcValueKey resolves an identifier used as a value to a module-internal
// function key, or "".
func (c *factsCollector) funcValueKey(id *ast.Ident) string {
	if fn, ok := c.p.Info.Uses[id].(*types.Func); ok {
		return moduleKey(c.p, fn)
	}
	return ""
}

// moduleKey returns fn's key when it belongs to this module, else "".
func moduleKey(p *Package, fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	mod := p.loader.Module
	if pkg.Path() != mod && !strings.HasPrefix(pkg.Path(), mod+"/") {
		return ""
	}
	return typeFuncKey(fn)
}
