package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ruleFloatOrder flags non-associative float64 accumulation wherever the
// summation order is not deterministic. Floating-point addition does not
// associate: (a+b)+c and a+(b+c) differ in the last bits, so a float sum's
// bytes are a function of its iteration order. Two shapes leak order:
//
//   - `sum += x` (or `sum = sum + x`) inside a `range` over a map, in the
//     ordered packages whose bytes are the contract — map iteration order
//     is randomized per process, so the sum differs run to run;
//   - float accumulation into shared state from a shard-parallel function
//     (see facts.go): even when synchronized, goroutine interleaving picks
//     the summation order, so the fold differs shard-count to shard-count.
//
// The sanctioned fixes stay legal by construction: collect-then-sort sums
// range over a sorted key slice (not a map), and per-shard accumulation
// into shard-owned state merged in fixed shard order at the barrier writes
// only depth-1 receiver fields (within a shard the engine's FIFO tiebreak
// fixes the order, and the barrier merge fixes the cross-shard order).
type ruleFloatOrder struct{}

func (ruleFloatOrder) Name() string { return "floatorder" }

func (ruleFloatOrder) Doc() string {
	return "no float64 accumulation in map-iteration order (ordered " +
		"packages) or into shared state from shard-parallel functions; " +
		"summation order changes bytes — collect and sort, or fold per " +
		"shard and merge in fixed order"
}

func (ruleFloatOrder) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal")
}

func (ruleFloatOrder) Check(p *Package) []Diagnostic { return nil }

func (ruleFloatOrder) CheckFacts(p *Package, fs *FactSet) []Diagnostic {
	var out []Diagnostic
	// Map-order leakage matters where bytes are the contract.
	if hasAnySegment(p.Path, orderedSegments) {
		out = append(out, p.mapRangeFloatSums()...)
	}
	// Interleaving-order leakage matters wherever shard-parallel code runs.
	pf := fs.Pkg(p.Path)
	if pf == nil {
		return out
	}
	keys := make([]string, 0, len(pf.Funcs))
	for k := range pf.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fs.IsParallel(k) {
			continue
		}
		ff := pf.Funcs[k]
		out = append(out, p.parallelFloatSums(ff, effectiveFrame(fs, ff))...)
	}
	return out
}

// mapRangeFloatSums flags float accumulation statements lexically inside a
// range over a map.
func (p *Package) mapRangeFloatSums() []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !p.isMapType(rs.X) {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				if lhs, ok := p.floatAccumTarget(as); ok {
					out = append(out, p.diag("floatorder", as.Pos(),
						"float accumulation into %q in map-iteration order; "+
							"float addition is non-associative and map order is randomized — collect keys, sort, then sum",
						types.ExprString(lhs)))
				}
				return true
			})
			return true
		})
	}
	return out
}

// parallelFloatSums flags float accumulation into shared-classified targets
// inside one shard-parallel function (nested literals are checked under
// their own keys); targets are classified against the frame whose
// goroutine runs the body (see effectiveFrame).
func (p *Package) parallelFloatSums(ff, frame *FuncFact) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(ff.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			return lit.Body == ff.body
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := p.floatAccumTarget(as)
		if !ok {
			return true
		}
		if _, shared := p.classifyWrite(frame, lhs); !shared {
			return true
		}
		out = append(out, p.diag("floatorder", as.Pos(),
			"float accumulation into shared %q from a shard-parallel function; "+
				"goroutine interleaving picks the summation order — fold per shard, merge in fixed shard order",
			types.ExprString(lhs)))
		return true
	})
	return out
}

// floatAccumTarget reports whether as is a float accumulation — `x += e`,
// `x -= e`, or `x = x ± e` — returning the accumulator expression.
func (p *Package) floatAccumTarget(as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs := as.Lhs[0]
	if !p.isFloatExpr(lhs) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		bin, ok := unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return nil, false
		}
		want := types.ExprString(lhs)
		if types.ExprString(unparen(bin.X)) == want || types.ExprString(unparen(bin.Y)) == want {
			return lhs, true
		}
	}
	return nil, false
}

func (p *Package) isFloatExpr(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
