package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleHotpathAlloc is the source-level half of the zero-allocation gate.
// Functions annotated //pliant:hotpath are the proven 0-alloc paths — the
// sim typed-event dispatch, the stats histogram Record, cluster.Telemetry.
// Observe, the energy accumulator, the service request path — each pinned
// at runtime by a testing.AllocsPerRun test. The runtime pins catch a
// regression after it lands; this rule flags the allocation-forcing
// constructs themselves, at the line that introduces them:
//
//   - make/new and slice/map composite literals (always allocate when they
//     escape, and a hot path should not be constructing containers at all);
//   - composite literals with their address taken (&T{} escapes);
//   - append, unless in the explicit reuse form append(x[:0], ...) — any
//     other append may grow its backing array;
//   - string concatenation and string<->[]byte conversions;
//   - fmt.* calls (interface boxing allocates even when the verb doesn't);
//   - function literals (closures allocate their capture records).
//
// A construct the compiler provably keeps on the stack can carry a
// reasoned //pliant:allow hotpathalloc; the AllocsPerRun pin remains the
// ground truth either way.
type ruleHotpathAlloc struct{}

func (ruleHotpathAlloc) Name() string { return "hotpathalloc" }

func (ruleHotpathAlloc) Doc() string {
	return "functions annotated //pliant:hotpath must avoid allocation-" +
		"forcing constructs: make/new, escaping composite literals, " +
		"growing append, string concat, fmt calls, and closures"
}

func (ruleHotpathAlloc) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal")
}

func (ruleHotpathAlloc) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd.Doc) {
				continue
			}
			out = append(out, p.checkHotpathBody(f, fd)...)
		}
	}
	return out
}

func (p *Package) checkHotpathBody(f *ast.File, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	name := fd.Name.Name
	flag := func(pos token.Pos, format string, args ...any) {
		args = append([]any{name}, args...)
		out = append(out, p.diag("hotpathalloc", pos, "hotpath %s "+format, args...))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			flag(n.Pos(), "contains a function literal; closures allocate their capture record")
			return false
		case *ast.CallExpr:
			p.checkHotpathCall(f, n, flag)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					flag(n.Pos(), "takes the address of a composite literal; &T{} escapes to the heap")
					return false // the literal itself is already covered
				}
			}
			return true
		case *ast.CompositeLit:
			if p.isSliceOrMapLit(n) {
				flag(n.Pos(), "builds a %s literal; container literals allocate", litKind(p, n))
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && p.isStringExpr(n.X) {
				flag(n.Pos(), "concatenates strings; string + allocates the result")
			}
			return true
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && p.isStringExpr(n.Lhs[0]) {
				flag(n.Pos(), "accumulates a string with +=; string append allocates")
			}
			return true
		}
		return true
	})
	return out
}

// checkHotpathCall flags allocating call forms: builtins, fmt, conversions.
func (p *Package) checkHotpathCall(f *ast.File, call *ast.CallExpr, flag func(token.Pos, string, ...any)) {
	fun := unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		switch fn.Name {
		case "make":
			flag(call.Pos(), "calls make; hot paths must reuse preallocated buffers")
		case "new":
			flag(call.Pos(), "calls new; hot paths must reuse preallocated state")
		case "append":
			if !isReuseAppend(call) {
				flag(call.Pos(), "appends outside the append(x[:0], ...) reuse form; append may grow its backing array")
			}
		}
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok && p.PkgQualifier(f, x) == "fmt" {
			flag(call.Pos(), "calls fmt.%s; fmt boxes its operands into interfaces", fn.Sel.Name)
		}
	}
	// string <-> byte/rune slice conversions copy their operand.
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := p.TypeOf(fun), p.TypeOf(call.Args[0])
		if to != nil && from != nil && !types.Identical(to, from) &&
			(isStringType(to) && isByteSliceType(from) || isByteSliceType(to) && isStringType(from)) {
			flag(call.Pos(), "converts between string and byte slice; the conversion copies")
		}
	}
}

// isReuseAppend recognizes append(x[:0], ...): appending into an existing
// backing array from length zero, the sanctioned reuse idiom.
func isReuseAppend(call *ast.CallExpr) bool {
	if len(call.Args) < 1 {
		return false
	}
	se, ok := unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || se.Low != nil {
		return false
	}
	high, ok := se.High.(*ast.BasicLit)
	return ok && high.Value == "0"
}

func (p *Package) isSliceOrMapLit(cl *ast.CompositeLit) bool {
	t := p.TypeOf(cl)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func litKind(p *Package, cl *ast.CompositeLit) string {
	t := p.TypeOf(cl)
	if t == nil {
		return "container"
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "container"
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSliceType(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
