// Package lint is the repo's determinism and hot-path invariant analyzer.
//
// Every headline result in this repo rests on one contract: scheduler runs
// are byte-identical across shard counts, with obs on or off, under fault
// injection, and daemon-vs-batch. The golden tests enforce that contract
// after the fact; this package enforces it as a machine-checked source
// property, so one stray time.Now, unseeded math/rand call, or map-order
// leak fails the build instead of a bisect session.
//
// The engine is stdlib-only — go/parser for syntax, go/types for name
// resolution, and go/importer's source importer (with graceful fallbacks)
// for stdlib type information — so the module stays dependency-free and the
// linter runs anywhere the toolchain does. Rules scope themselves by import
// path (see Rule.Applies); diagnostics render as "file:line: [rule]
// message" with paths relative to the module root.
//
// Analysis runs in two phases. Phase 1 computes per-package facts — the
// function-level call graph, goroutine spawn sites, //pliant:hotpath
// annotations — in parallel across packages (see facts.go). Phase 2
// propagates cross-package facts (the shard-parallel function set) over the
// fact cache, then applies the rules: syntactic rules see one package at a
// time, dataflow rules (FactRule) additionally see the propagated FactSet.
// Packages are checked concurrently and findings land in per-package slots,
// so one total sort at the end makes output order independent of both walk
// and scheduling order.
//
// A finding can be suppressed in place with a reasoned comment:
//
//	t0 = time.Now() //pliant:allow wallclock — profiler measures real runtime
//
// The comment suppresses diagnostics of the named rule on its own line and
// on the line directly below (so it can stand alone above a statement). A
// suppression without a reason is itself a diagnostic: unexplained escape
// hatches are how invariants rot.
package lint

import (
	"fmt"
	"sort"
	"sync"
)

// Diagnostic is one rule finding at a source position. File is relative to
// the module root (slash-separated), so diagnostics are stable across
// machines and usable as golden values in tests.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// Rule is one invariant analyzer. Check receives a loaded, type-checked
// package and returns raw findings; the runner handles scoping, suppression,
// and ordering.
type Rule interface {
	// Name is the short identifier used in diagnostics and in
	// //pliant:allow comments.
	Name() string
	// Doc is a one-paragraph description of the invariant, for -catalog.
	Doc() string
	// Applies reports whether the rule is in scope for a package import
	// path. Out-of-scope packages are not checked at all.
	Applies(pkgPath string) bool
	// Check analyzes one package and returns its findings.
	Check(p *Package) []Diagnostic
}

// FactRule is a dataflow rule: it consumes the propagated cross-package
// FactSet in addition to the package under check. Its plain Check method is
// never called by the runner (implementations return nil from it).
type FactRule interface {
	Rule
	CheckFacts(p *Package, fs *FactSet) []Diagnostic
}

// DefaultRules returns the full analyzer suite in catalog order: the four
// syntactic rules first, then the four dataflow rules.
func DefaultRules() []Rule {
	return []Rule{
		ruleWallclock{},
		ruleUnseededRand{},
		ruleMapOrder{},
		ruleSpawn{},
		ruleSeedflow{},
		ruleSharedState{},
		ruleFloatOrder{},
		ruleHotpathAlloc{},
	}
}

// Run computes facts over pkgs and applies rules: see RunWithFacts.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	return RunWithFacts(pkgs, rules, ComputeFacts(pkgs))
}

// RunWithFacts applies rules to every package against a precomputed fact
// set, drops findings suppressed by //pliant:allow comments, adds
// diagnostics for malformed suppression comments, and returns the remainder
// sorted by file, line, column, rule. Packages are checked concurrently;
// the total sort makes the output independent of scheduling order.
func RunWithFacts(pkgs []*Package, rules []Rule, fs *FactSet) []Diagnostic {
	perPkg := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	for i, p := range pkgs {
		wg.Add(1)
		//pliant:allow spawn — analyzer fan-out: per-package findings land in disjoint slots and merge after the wait
		go func(i int, p *Package) {
			defer wg.Done()
			perPkg[i] = checkPackage(p, rules, fs)
		}(i, p)
	}
	wg.Wait()

	var out []Diagnostic
	for _, diags := range perPkg {
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}

// checkPackage runs every in-scope rule over one package and filters its
// findings through the package's //pliant:allow comments.
func checkPackage(p *Package, rules []Rule, fs *FactSet) []Diagnostic {
	var out []Diagnostic
	allows := collectAllows(p)
	for _, a := range allows {
		if a.Malformed != "" {
			out = append(out, Diagnostic{
				File: a.File, Line: a.Line, Col: a.Col,
				Rule:    "allow",
				Message: a.Malformed,
			})
		}
	}
	for _, r := range rules {
		if !r.Applies(p.Path) {
			continue
		}
		var diags []Diagnostic
		if fr, ok := r.(FactRule); ok {
			diags = fr.CheckFacts(p, fs)
		} else {
			diags = r.Check(p)
		}
		for _, d := range diags {
			if suppressed(allows, d) {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}
