// Package lint is the repo's determinism and hot-path invariant analyzer.
//
// Every headline result in this repo rests on one contract: scheduler runs
// are byte-identical across shard counts, with obs on or off, under fault
// injection, and daemon-vs-batch. The golden tests enforce that contract
// after the fact; this package enforces it as a machine-checked source
// property, so one stray time.Now, unseeded math/rand call, or map-order
// leak fails the build instead of a bisect session.
//
// The engine is stdlib-only — go/parser for syntax, go/types for name
// resolution, and go/importer's source importer (with graceful fallbacks)
// for stdlib type information — so the module stays dependency-free and the
// linter runs anywhere the toolchain does. Rules scope themselves by import
// path (see Rule.Applies); diagnostics render as "file:line: [rule]
// message" with paths relative to the module root.
//
// A finding can be suppressed in place with a reasoned comment:
//
//	t0 = time.Now() //pliant:allow wallclock — profiler measures real runtime
//
// The comment suppresses diagnostics of the named rule on its own line and
// on the line directly below (so it can stand alone above a statement). A
// suppression without a reason is itself a diagnostic: unexplained escape
// hatches are how invariants rot.
package lint

import (
	"fmt"
	"sort"
)

// Diagnostic is one rule finding at a source position. File is relative to
// the module root (slash-separated), so diagnostics are stable across
// machines and usable as golden values in tests.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// Rule is one invariant analyzer. Check receives a loaded, type-checked
// package and returns raw findings; the runner handles scoping, suppression,
// and ordering.
type Rule interface {
	// Name is the short identifier used in diagnostics and in
	// //pliant:allow comments.
	Name() string
	// Doc is a one-paragraph description of the invariant, for -rules.
	Doc() string
	// Applies reports whether the rule is in scope for a package import
	// path. Out-of-scope packages are not checked at all.
	Applies(pkgPath string) bool
	// Check analyzes one package and returns its findings.
	Check(p *Package) []Diagnostic
}

// DefaultRules returns the full analyzer suite in catalog order.
func DefaultRules() []Rule {
	return []Rule{
		ruleWallclock{},
		ruleUnseededRand{},
		ruleMapOrder{},
		ruleSpawn{},
	}
}

// Run applies rules to every package, drops findings suppressed by
// //pliant:allow comments, adds diagnostics for malformed suppression
// comments, and returns the remainder sorted by file, line, column, rule.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		allows := collectAllows(p)
		for _, a := range allows {
			if a.Malformed != "" {
				out = append(out, Diagnostic{
					File: a.File, Line: a.Line, Col: a.Col,
					Rule:    "allow",
					Message: a.Malformed,
				})
			}
		}
		for _, r := range rules {
			if !r.Applies(p.Path) {
				continue
			}
			for _, d := range r.Check(p) {
				if suppressed(allows, d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
