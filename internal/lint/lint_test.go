package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/approx-sched/pliant/internal/lint"
)

// sharedLoader caches one loader (and its type-checked stdlib) across the
// test file; tests in this package run sequentially.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

func getLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		var root string
		root, loaderErr = lint.FindModuleRoot(".")
		if loaderErr != nil {
			return
		}
		loader, loaderErr = lint.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

func loadDirs(t *testing.T, dirs ...string) []*lint.Package {
	t.Helper()
	l := getLoader(t)
	pkgs, err := l.LoadAll(dirs)
	if err != nil {
		t.Fatalf("load %v: %v", dirs, err)
	}
	return pkgs
}

func lintDirs(t *testing.T, dirs ...string) []lint.Diagnostic {
	t.Helper()
	return lint.Run(loadDirs(t, dirs...), lint.DefaultRules())
}

// want is one expectation parsed from a fixture comment of the form
//
//	// want `regexp`
//
// anchored to its file and line; the regexp matches the rendered
// "[rule] message" part of a diagnostic on that line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// parseWants scans every fixture file in dir (repo-relative) for want
// comments. Returned file paths are module-root-relative, matching
// Diagnostic.File.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		rel := "internal/lint/" + filepath.ToSlash(path)
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", rel, n, err)
			}
			wants = append(wants, want{file: rel, line: n, re: re})
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// checkFixture lints one fixture package and cross-checks its diagnostics
// against the want comments, both directions: every want must be hit by a
// diagnostic on its line, and every diagnostic must be claimed by a want.
func checkFixture(t *testing.T, dir string) {
	t.Helper()
	diags := lintDirs(t, dir)
	wants := parseWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		hit := false
		for i, d := range diags {
			if d.File == w.file && d.Line == w.line &&
				w.re.MatchString(fmt.Sprintf("[%s] %s", d.Rule, d.Message)) {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestWallclockFixture(t *testing.T)    { checkFixture(t, "testdata/wallclock/sim") }
func TestUnseededRandFixture(t *testing.T) { checkFixture(t, "testdata/unseededrand/dice") }
func TestMapOrderFixture(t *testing.T)     { checkFixture(t, "testdata/maporder/sched") }
func TestSpawnFixture(t *testing.T)        { checkFixture(t, "testdata/spawn/pump") }
func TestAllowFixture(t *testing.T)        { checkFixture(t, "testdata/allow/sim") }
func TestSeedflowFixture(t *testing.T)     { checkFixture(t, "testdata/seedflow/gen") }
func TestSharedStateFixture(t *testing.T)  { checkFixture(t, "testdata/sharedstate/shard") }
func TestFloatOrderFixture(t *testing.T)   { checkFixture(t, "testdata/floatorder/obs") }
func TestHotpathAllocFixture(t *testing.T) { checkFixture(t, "testdata/hotpathalloc/hot") }

// fixtureDirs lists every leaf fixture package under testdata.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir("testdata", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestFixturePackagesAreDirty pins the CLI contract that pliant-lint exits
// nonzero on every fixture package: each must produce at least one
// unsuppressed diagnostic.
func TestFixturePackagesAreDirty(t *testing.T) {
	for _, dir := range fixtureDirs(t) {
		if n := len(lintDirs(t, dir)); n == 0 {
			t.Errorf("%s: fixture package is lint-clean; pliant-lint would exit 0 on it", dir)
		}
	}
}

// TestWallclockDiagnosticPosition pins the exact file:line of the planted
// time.Now in the wallclock fixture, so diagnostic positions cannot
// silently drift (the fixture and this constant must move together).
func TestWallclockDiagnosticPosition(t *testing.T) {
	const (
		wantFile = "internal/lint/testdata/wallclock/sim/clock.go"
		wantLine = 13 // the `t0 := time.Now()` plant in Stamp
	)
	for _, d := range lintDirs(t, "testdata/wallclock/sim") {
		if d.File == wantFile && d.Line == wantLine && d.Rule == "wallclock" &&
			strings.Contains(d.Message, "time.Now") {
			return
		}
	}
	t.Fatalf("no wallclock diagnostic for the planted time.Now at %s:%d", wantFile, wantLine)
}

// positionPin pins the exact file:line of one planted violation per
// dataflow rule, matching the wallclock convention: the fixture and the pin
// must move together, so diagnostic positions cannot silently drift.
type positionPin struct {
	rule     string
	file     string
	line     int
	contains string
}

func TestDataflowDiagnosticPositions(t *testing.T) {
	pins := []positionPin{
		{"seedflow", "internal/lint/testdata/seedflow/gen/gen.go", 47, "rand.New"},
		{"sharedstate", "internal/lint/testdata/sharedstate/shard/shard.go", 60, "package-level"},
		{"floatorder", "internal/lint/testdata/floatorder/obs/obs.go", 15, "map-iteration"},
		{"hotpathalloc", "internal/lint/testdata/hotpathalloc/hot/hot.go", 41, "fmt"},
	}
	dirs := []string{
		"testdata/seedflow/gen", "testdata/sharedstate/shard",
		"testdata/floatorder/obs", "testdata/hotpathalloc/hot",
	}
	diags := lintDirs(t, dirs...)
	for _, pin := range pins {
		found := false
		for _, d := range diags {
			if d.File == pin.file && d.Line == pin.line && d.Rule == pin.rule &&
				strings.Contains(d.Message, pin.contains) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic for the planted violation at %s:%d", pin.rule, pin.file, pin.line)
		}
	}
}

// TestFindingsSortedAndOrderIndependent pins the output ordering contract:
// packages parse and check in parallel, so the runner's total (file, line,
// col, rule, message) sort is the only thing standing between pliant-lint
// and nondeterministic CI logs. Linting the same packages in reversed
// argument order must produce byte-identical findings, and the findings
// must actually be sorted.
func TestFindingsSortedAndOrderIndependent(t *testing.T) {
	dirs := []string{
		"testdata/seedflow/gen", "testdata/sharedstate/shard",
		"testdata/floatorder/obs", "testdata/hotpathalloc/hot",
	}
	fwd := lintDirs(t, dirs...)
	rev := make([]string, len(dirs))
	for i, d := range dirs {
		rev[len(dirs)-1-i] = d
	}
	bwd := lintDirs(t, rev...)
	if !reflect.DeepEqual(fwd, bwd) {
		t.Fatalf("findings depend on package argument order:\nforward:  %v\nbackward: %v", fwd, bwd)
	}
	for i := 1; i < len(fwd); i++ {
		a, b := fwd[i-1], fwd[i]
		if a.File > b.File ||
			(a.File == b.File && a.Line > b.Line) ||
			(a.File == b.File && a.Line == b.Line && a.Col > b.Col) ||
			(a.File == b.File && a.Line == b.Line && a.Col == b.Col && a.Rule > b.Rule) {
			t.Fatalf("findings not sorted by (file, line, col, rule): %v before %v", a, b)
		}
	}
	if len(fwd) == 0 {
		t.Fatal("fixture set produced no findings; the ordering pin is vacuous")
	}
}

// TestDefaultRuleCatalog pins the suite's composition and order: four
// syntactic rules, then the four dataflow rules.
func TestDefaultRuleCatalog(t *testing.T) {
	want := []string{
		"wallclock", "unseededrand", "maporder", "spawn",
		"seedflow", "sharedstate", "floatorder", "hotpathalloc",
	}
	rules := lint.DefaultRules()
	if len(rules) != len(want) {
		t.Fatalf("DefaultRules has %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.Name() != want[i] {
			t.Errorf("DefaultRules[%d] = %s, want %s", i, r.Name(), want[i])
		}
	}
}

// TestHotpathAnnotationSet asserts the committed tree carries the hot-path
// contract: at least five //pliant:hotpath annotations, each backed by an
// AllocsPerRun runtime pin elsewhere in the test suite. Deleting the
// annotations would silently disable the hotpathalloc gate; this test (and
// a CI step over pliant-lint -json) makes that loud.
func TestHotpathAnnotationSet(t *testing.T) {
	l := getLoader(t)
	dirs, err := l.Walk(l.Root)
	if err != nil {
		t.Fatal(err)
	}
	fs := lint.ComputeFacts(loadDirs(t, dirs...))
	hot := fs.Hotpaths()
	if len(hot) < 5 {
		t.Fatalf("repo has %d //pliant:hotpath annotations (%v), want at least 5", len(hot), hot)
	}
}

// TestDiagnosticFormat pins the rendered diagnostic shape the CLI and CI
// logs rely on.
func TestDiagnosticFormat(t *testing.T) {
	d := lint.Diagnostic{File: "internal/sim/engine.go", Line: 7, Col: 3,
		Rule: "wallclock", Message: "boom"}
	if got, want := d.String(), "internal/sim/engine.go:7: [wallclock] boom"; got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
}

// TestRuleScoping pins which import paths each rule patrols: internal-only,
// and for wallclock/maporder only the deterministic package set — the
// CLIs' own wall clocks (pliant-bench timings) must stay legal.
func TestRuleScoping(t *testing.T) {
	const mod = "github.com/approx-sched/pliant"
	byName := make(map[string]lint.Rule)
	for _, r := range lint.DefaultRules() {
		byName[r.Name()] = r
	}
	cases := []struct {
		rule string
		path string
		want bool
	}{
		{"wallclock", mod + "/internal/sim", true},
		{"wallclock", mod + "/internal/serve", true},
		{"wallclock", mod + "/internal/stats", false},
		{"wallclock", mod + "/cmd/pliant-bench", false},
		{"wallclock", mod + "/examples/cluster", false},
		{"unseededrand", mod + "/internal/stats", true},
		{"unseededrand", mod + "/cmd/pliant-run", false},
		{"maporder", mod + "/internal/export", true},
		{"maporder", mod + "/internal/obs", true},
		{"maporder", mod + "/internal/app", false},
		{"spawn", mod + "/internal/cluster", true},
		{"spawn", mod + "/cmd/pliant-served", false},
		{"seedflow", mod + "/internal/fault", true},
		{"seedflow", mod + "/cmd/pliant-run", false},
		{"sharedstate", mod + "/internal/sched", true},
		{"sharedstate", mod + "/examples/cluster", false},
		{"floatorder", mod + "/internal/stats", true},
		{"floatorder", mod + "/cmd/pliant-bench", false},
		{"hotpathalloc", mod + "/internal/sim", true},
		{"hotpathalloc", mod + "/cmd/pliant-sched", false},
	}
	for _, c := range cases {
		r, ok := byName[c.rule]
		if !ok {
			t.Fatalf("rule %s missing from DefaultRules", c.rule)
		}
		if got := r.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.rule, c.path, got, c.want)
		}
	}
}

// TestLintSelfCheck runs the full suite over the real repo and asserts the
// committed tree is lint-clean: the linter gates every future PR, and a
// new violation (or a suppression losing its reason) fails here before it
// reaches CI's dedicated lint job.
func TestLintSelfCheck(t *testing.T) {
	l := getLoader(t)
	dirs, err := l.Walk(l.Root)
	if err != nil {
		t.Fatal(err)
	}
	diags := lintDirs(t, dirs...)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("committed tree has %d lint finding(s); fix them or add a reasoned //pliant:allow", len(diags))
	}
}
