package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/approx-sched/pliant/internal/lint"
)

// sharedLoader caches one loader (and its type-checked stdlib) across the
// test file; tests in this package run sequentially.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

func getLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		var root string
		root, loaderErr = lint.FindModuleRoot(".")
		if loaderErr != nil {
			return
		}
		loader, loaderErr = lint.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

func lintDirs(t *testing.T, dirs ...string) []lint.Diagnostic {
	t.Helper()
	l := getLoader(t)
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := l.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	return lint.Run(pkgs, lint.DefaultRules())
}

// want is one expectation parsed from a fixture comment of the form
//
//	// want `regexp`
//
// anchored to its file and line; the regexp matches the rendered
// "[rule] message" part of a diagnostic on that line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// parseWants scans every fixture file in dir (repo-relative) for want
// comments. Returned file paths are module-root-relative, matching
// Diagnostic.File.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		rel := "internal/lint/" + filepath.ToSlash(path)
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", rel, n, err)
			}
			wants = append(wants, want{file: rel, line: n, re: re})
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// checkFixture lints one fixture package and cross-checks its diagnostics
// against the want comments, both directions: every want must be hit by a
// diagnostic on its line, and every diagnostic must be claimed by a want.
func checkFixture(t *testing.T, dir string) {
	t.Helper()
	diags := lintDirs(t, dir)
	wants := parseWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		hit := false
		for i, d := range diags {
			if d.File == w.file && d.Line == w.line &&
				w.re.MatchString(fmt.Sprintf("[%s] %s", d.Rule, d.Message)) {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestWallclockFixture(t *testing.T)    { checkFixture(t, "testdata/wallclock/sim") }
func TestUnseededRandFixture(t *testing.T) { checkFixture(t, "testdata/unseededrand/dice") }
func TestMapOrderFixture(t *testing.T)     { checkFixture(t, "testdata/maporder/sched") }
func TestSpawnFixture(t *testing.T)        { checkFixture(t, "testdata/spawn/pump") }
func TestAllowFixture(t *testing.T)        { checkFixture(t, "testdata/allow/sim") }

// fixtureDirs lists every leaf fixture package under testdata.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir("testdata", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestFixturePackagesAreDirty pins the CLI contract that pliant-lint exits
// nonzero on every fixture package: each must produce at least one
// unsuppressed diagnostic.
func TestFixturePackagesAreDirty(t *testing.T) {
	for _, dir := range fixtureDirs(t) {
		if n := len(lintDirs(t, dir)); n == 0 {
			t.Errorf("%s: fixture package is lint-clean; pliant-lint would exit 0 on it", dir)
		}
	}
}

// TestWallclockDiagnosticPosition pins the exact file:line of the planted
// time.Now in the wallclock fixture, so diagnostic positions cannot
// silently drift (the fixture and this constant must move together).
func TestWallclockDiagnosticPosition(t *testing.T) {
	const (
		wantFile = "internal/lint/testdata/wallclock/sim/clock.go"
		wantLine = 13 // the `t0 := time.Now()` plant in Stamp
	)
	for _, d := range lintDirs(t, "testdata/wallclock/sim") {
		if d.File == wantFile && d.Line == wantLine && d.Rule == "wallclock" &&
			strings.Contains(d.Message, "time.Now") {
			return
		}
	}
	t.Fatalf("no wallclock diagnostic for the planted time.Now at %s:%d", wantFile, wantLine)
}

// TestDiagnosticFormat pins the rendered diagnostic shape the CLI and CI
// logs rely on.
func TestDiagnosticFormat(t *testing.T) {
	d := lint.Diagnostic{File: "internal/sim/engine.go", Line: 7, Col: 3,
		Rule: "wallclock", Message: "boom"}
	if got, want := d.String(), "internal/sim/engine.go:7: [wallclock] boom"; got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
}

// TestRuleScoping pins which import paths each rule patrols: internal-only,
// and for wallclock/maporder only the deterministic package set — the
// CLIs' own wall clocks (pliant-bench timings) must stay legal.
func TestRuleScoping(t *testing.T) {
	const mod = "github.com/approx-sched/pliant"
	byName := make(map[string]lint.Rule)
	for _, r := range lint.DefaultRules() {
		byName[r.Name()] = r
	}
	cases := []struct {
		rule string
		path string
		want bool
	}{
		{"wallclock", mod + "/internal/sim", true},
		{"wallclock", mod + "/internal/serve", true},
		{"wallclock", mod + "/internal/stats", false},
		{"wallclock", mod + "/cmd/pliant-bench", false},
		{"wallclock", mod + "/examples/cluster", false},
		{"unseededrand", mod + "/internal/stats", true},
		{"unseededrand", mod + "/cmd/pliant-run", false},
		{"maporder", mod + "/internal/export", true},
		{"maporder", mod + "/internal/obs", true},
		{"maporder", mod + "/internal/app", false},
		{"spawn", mod + "/internal/cluster", true},
		{"spawn", mod + "/cmd/pliant-served", false},
	}
	for _, c := range cases {
		r, ok := byName[c.rule]
		if !ok {
			t.Fatalf("rule %s missing from DefaultRules", c.rule)
		}
		if got := r.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.rule, c.path, got, c.want)
		}
	}
}

// TestLintSelfCheck runs the full suite over the real repo and asserts the
// committed tree is lint-clean: the linter gates every future PR, and a
// new violation (or a suppression losing its reason) fails here before it
// reaches CI's dedicated lint job.
func TestLintSelfCheck(t *testing.T) {
	l := getLoader(t)
	dirs, err := l.Walk(l.Root)
	if err != nil {
		t.Fatal(err)
	}
	diags := lintDirs(t, dirs...)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("committed tree has %d lint finding(s); fix them or add a reasoned //pliant:allow", len(diags))
	}
}
