package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package: the unit a Rule checks.
// Type-checking is best-effort — TypeErrs collects whatever go/types could
// not resolve and rules degrade gracefully — because a linter that refuses
// to run on imperfect input protects nothing.
type Package struct {
	Path  string // import path, e.g. github.com/approx-sched/pliant/internal/sim
	Dir   string // absolute directory
	Name  string // package name from source
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by filename
	Info  *types.Info
	Pkg   *types.Package // may be incomplete if imports failed
	// TypeErrs records type-check problems. They are advisory: rules that
	// need type information fall back to syntactic resolution where safe.
	TypeErrs []error

	loader *Loader
}

// Loader parses and type-checks packages of one module. Stdlib imports
// resolve through go/importer's source importer (reads GOROOT/src, present
// with every toolchain), falling back to the compiler importer and finally
// to an empty stub package — so environment quirks degrade type fidelity
// instead of failing the lint run. Intra-module imports resolve recursively
// through the loader itself, giving rules real types for the repo's own
// declarations.
type Loader struct {
	Root   string // absolute module root (directory containing go.mod)
	Module string // module path from go.mod

	fset    *token.FileSet
	pkgs    map[string]*Package // by import path
	stdSrc  types.Importer
	stdBin  types.Importer
	stubs   map[string]*types.Package
	loading map[string]bool // cycle guard

	// parsed holds files pre-parsed by LoadAll's concurrent parse phase,
	// keyed by absolute path; loadPath consumes it before falling back to
	// parsing inline. Filled only between LoadAll's two phases, read only
	// from the sequential type-check phase.
	parsed    map[string]*ast.File
	parseErrs map[string]error
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// NewLoader creates a loader rooted at the module directory root, reading
// the module path from its go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:      abs,
		Module:    mod,
		fset:      fset,
		pkgs:      make(map[string]*Package),
		stdSrc:    importer.ForCompiler(fset, "source", nil),
		stdBin:    importer.Default(),
		stubs:     make(map[string]*types.Package),
		loading:   make(map[string]bool),
		parsed:    make(map[string]*ast.File),
		parseErrs: make(map[string]error),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Walk returns every package directory under base (inclusive) that contains
// at least one non-test Go file, in lexical order — the "./..." expansion.
// Like the go tool, it skips testdata, vendor, hidden, and underscore
// directories; explicit Load calls can still target those.
func (l *Loader) Walk(base string) ([]string, error) {
	abs, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs {
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isLintedFile(e.Name()) {
			return true
		}
	}
	return false
}

// isLintedFile reports whether name is a non-test Go source file. Test
// files are exempt from the invariants: tests may legitimately use wall
// clocks for deadlines and the go tool never links them into the binaries
// whose determinism the rules protect.
func isLintedFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// LoadAll loads every directory in dirs: all source files parse concurrently
// first (token.FileSet is synchronized, and parsing dominates load time),
// then packages type-check sequentially in the given order so import
// resolution and diagnostics stay deterministic. The resulting package order
// matches dirs; finding order is nondeterministic only until Run's total
// sort.
func (l *Loader) LoadAll(dirs []string) ([]*Package, error) {
	var paths []string
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		ents, err := os.ReadDir(abs)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && isLintedFile(e.Name()) {
				paths = append(paths, filepath.Join(abs, e.Name()))
			}
		}
	}

	files := make([]*ast.File, len(paths))
	errs := make([]error, len(paths))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(paths) {
		workers = len(paths)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//pliant:allow spawn — parse fan-out: workers fill disjoint slots of files/errs and exit before the merge
		go func() {
			defer wg.Done()
			for i := range next {
				files[i], errs[i] = parser.ParseFile(l.fset, paths[i], nil, parser.ParseComments)
			}
		}()
	}
	for i := range paths {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, path := range paths {
		l.parsed[path] = files[i]
		l.parseErrs[path] = errs[i]
	}

	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.Load(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load parses and type-checks the package in dir. Results are cached by
// import path, so loading a package that imports an already-loaded one is
// cheap and all packages share one FileSet.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path, abs)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isLintedFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)

	p := &Package{Path: path, Dir: dir, Fset: l.fset, loader: l}
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, pre := l.parsed[full]
		err := l.parseErrs[full]
		if !pre {
			f, err = parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		}
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if p.Name == "" {
			p.Name = f.Name.Name
		}
		if f.Name.Name != p.Name {
			// Mixed package clauses in one directory: the go tool would
			// refuse; we lint the majority package and note the rest.
			p.TypeErrs = append(p.TypeErrs,
				fmt.Errorf("%s: package %s conflicts with %s", name, f.Name.Name, p.Name))
			continue
		}
		p.Files = append(p.Files, f)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	l.loading[path] = true
	p.Pkg, _ = conf.Check(path, l.fset, p.Files, p.Info) // errors collected above
	delete(l.loading, path)

	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts the Loader to types.Importer: module-internal paths
// load recursively from source, everything else tries the stdlib source
// importer, then the compiler importer, then an empty stub.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		if l.loading[path] {
			return l.stub(path), nil // import cycle: let go/types report it
		}
		rel := strings.TrimPrefix(path, l.Module)
		rel = strings.TrimPrefix(rel, "/")
		p, err := l.loadPath(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return l.stub(path), nil
		}
		return p.Pkg, nil
	}
	if p, err := l.stdSrc.Import(path); err == nil && p != nil {
		return p, nil
	}
	if p, err := l.stdBin.Import(path); err == nil && p != nil {
		return p, nil
	}
	return l.stub(path), nil
}

// stub returns an empty, complete package so type-checking can proceed;
// every reference into it becomes a recorded type error rather than a halt.
func (l *Loader) stub(path string) *types.Package {
	if p, ok := l.stubs[path]; ok {
		return p
	}
	name := path[strings.LastIndex(path, "/")+1:]
	if strings.HasPrefix(name, "v") && len(name) > 1 && name[1] >= '0' && name[1] <= '9' {
		// math/rand/v2 and friends: the package name is the parent element.
		trimmed := path[:strings.LastIndex(path, "/")]
		name = trimmed[strings.LastIndex(trimmed, "/")+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	l.stubs[path] = p
	return p
}

// RelFile returns pos's file path relative to the module root,
// slash-separated, with the position's line and column.
func (p *Package) RelFile(pos token.Pos) (file string, line, col int) {
	ps := p.Fset.Position(pos)
	rel, err := filepath.Rel(p.loader.Root, ps.Filename)
	if err != nil {
		rel = ps.Filename
	}
	return filepath.ToSlash(rel), ps.Line, ps.Column
}

// diag builds a Diagnostic for rule at pos.
func (p *Package) diag(rule string, pos token.Pos, format string, args ...any) Diagnostic {
	file, line, col := p.RelFile(pos)
	return Diagnostic{
		File: file, Line: line, Col: col,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}

// PkgQualifier resolves ident as a package qualifier: if ident names an
// imported package in scope at its use, it returns that package's import
// path. Resolution is primarily through go/types (so locals shadowing a
// package name are never misread); if type information is missing for the
// identifier — a partially checked file — it falls back to the file's
// import table, which can only overmatch in the shadowing case type info
// would have caught.
func (p *Package) PkgQualifier(f *ast.File, ident *ast.Ident) string {
	if obj, ok := p.Info.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a variable, type, or function: not a package qualifier
	}
	// No type info at all for this identifier: syntactic fallback.
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == ident.Name {
			return path
		}
	}
	return ""
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// pathSegments splits an import path into its elements.
func pathSegments(path string) []string {
	return strings.Split(path, "/")
}

// hasSegment reports whether any element of path equals seg.
func hasSegment(path, seg string) bool {
	for _, s := range pathSegments(path) {
		if s == seg {
			return true
		}
	}
	return false
}

// hasAnySegment reports whether any element of path is in segs.
func hasAnySegment(path string, segs []string) bool {
	for _, s := range pathSegments(path) {
		for _, want := range segs {
			if s == want {
				return true
			}
		}
	}
	return false
}
