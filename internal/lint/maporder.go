package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// orderedSegments extends the virtual-time set with the packages whose
// bytes ARE the contract: the exporters and the obs emitters. A map-range
// feeding either is the classic "works on my machine, differs per process"
// reproducibility bug.
var orderedSegments = append([]string{"export", "obs"}, virtualTimeSegments...)

// emitPrefixes match callee names that move data toward an output: if one
// runs inside a map-range, map iteration order becomes output byte order.
var emitPrefixes = []string{"emit", "export", "write", "print", "fprint", "encode", "flush"}

// ruleMapOrder flags `range` over a map in deterministic packages when the
// loop body leaks iteration order into something ordered: appending to a
// slice, writing a slice element, accumulating a string, or calling an
// emit/export/write function. Map iteration order is deliberately
// randomized per process, so any of these turns a pinned golden into a
// coin flip.
//
// Two shapes stay legal because they are order-independent or are the
// sanctioned fix itself: writes keyed back into a map
// (m2[k] = append(m2[k], v) builds per-key state, not a sequence), and the
// canonical collect-then-sort idiom — a loop whose entire body appends only
// the key to a slice, in a function that also sorts.
type ruleMapOrder struct{}

func (ruleMapOrder) Name() string { return "maporder" }

func (ruleMapOrder) Doc() string {
	return "no range over a map that feeds ordered output (append, slice " +
		"write, string accumulation, emit/export calls) in deterministic " +
		"packages; collect keys and sort first"
}

func (ruleMapOrder) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal") &&
		hasAnySegment(pkgPath, orderedSegments)
}

func (ruleMapOrder) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !p.isMapType(rs.X) {
				return true
			}
			effect := p.orderEffect(rs)
			if effect == "" {
				return true
			}
			if isKeyCollection(rs) && sortsInEnclosingFunc(p, f, stack) {
				return true
			}
			out = append(out, p.diag("maporder", rs.Pos(),
				"range over map feeds ordered output (%s in the loop body); "+
					"map iteration order is randomized per process — collect keys, sort, then iterate",
				effect))
			return true
		})
	}
	return out
}

func (p *Package) isMapType(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderEffect scans the loop body for the first order-sensitive effect and
// names it for the diagnostic; "" means the body is order-clean.
func (p *Package) orderEffect(rs *ast.RangeStmt) string {
	var effect string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && p.isSliceIndex(ix) {
					effect = "slice element write"
					return false
				}
				if n.Tok == token.ADD_ASSIGN && p.isStringExpr(lhs) {
					effect = "string accumulation"
					return false
				}
				if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) && !p.isMapIndexExpr(lhs) {
					effect = "append"
					return false
				}
			}
		case *ast.CallExpr:
			if name := calleeName(n); name != "" {
				lower := strings.ToLower(name)
				for _, pre := range emitPrefixes {
					if strings.HasPrefix(lower, pre) {
						effect = "call to " + name
						return false
					}
				}
			}
		}
		return true
	})
	return effect
}

func (p *Package) isSliceIndex(ix *ast.IndexExpr) bool {
	t := p.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func (p *Package) isMapIndexExpr(e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := p.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, ok = t.Underlying().(*types.Map)
	return ok
}

func (p *Package) isStringExpr(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isKeyCollection reports whether the loop body is exactly the canonical
// key harvest: one statement appending only the range key to a slice.
func isKeyCollection(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || !isAppendCall(as.Rhs[0]) {
		return false
	}
	call := as.Rhs[0].(*ast.CallExpr)
	if len(call.Args) != 2 || call.Ellipsis != token.NoPos && call.Ellipsis.IsValid() {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// sortsInEnclosingFunc reports whether the function enclosing the node at
// the top of stack also calls into sort/slices (or anything named *sort*),
// which sanctions the collect-then-sort idiom.
func sortsInEnclosingFunc(p *Package, f *ast.File, stack []ast.Node) bool {
	var fn ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn = stack[i]
		}
		if fn != nil {
			break
		}
	}
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok {
				switch p.PkgQualifier(f, x) {
				case "sort", "slices":
					found = true
					return false
				}
			}
		}
		if name := calleeName(call); strings.Contains(strings.ToLower(name), "sort") {
			found = true
			return false
		}
		return true
	})
	return found
}
