package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// randConstructors are the generator entry points whose argument IS the
// seed (directly, or through a Source built in place). rand.NewZipf and
// friends take an already-seeded *Rand, so they are not gated here.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// ruleSeedflow proves seed provenance: every rand.New/rand.NewSource (and
// sim.NewRNG) argument must derive from a Seed-named value — a config
// field, a parameter, or a seed-derivation call such as sim.Mix64 over one.
// The tracking is an intra-procedural taint walk: seeds enter functions as
// "seed"-named fields and parameters (the repo's naming convention is the
// taint source), flow through arithmetic, conversions, and local
// assignments, and must reach the constructor argument. A literal or
// wall-clock-derived seed has no such derivation and is flagged — the class
// of bug PR 9's global-rand ban cannot see, because rand.New(rand.
// NewSource(42)) is a perfectly seeded generator with a perfectly
// irreproducible provenance story.
//
// Intra-procedural suffices because the repo's seed discipline is already
// funnel-shaped: cross-function seed flow happens through named helpers
// (episodeSeed, NodeSeed, seedFor, Mix64) whose names carry the taint, so a
// function-local walk sees either a seed-named value or a seed-named call
// at every constructor site.
type ruleSeedflow struct{}

func (ruleSeedflow) Name() string { return "seedflow" }

func (ruleSeedflow) Doc() string {
	return "every rand.New/rand.NewSource/sim.NewRNG argument must derive " +
		"from a Seed-named config field, parameter, or seed-derivation call " +
		"(sim.Mix64 of one); literal and clock-derived seeds break replay"
}

func (ruleSeedflow) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal")
}

func (ruleSeedflow) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isRand := p.randConstructor(f, call)
			if !isRand {
				return true
			}
			var enclosing ast.Node
			for i := len(stack) - 1; i >= 0 && enclosing == nil; i-- {
				switch stack[i].(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					enclosing = stack[i]
				}
			}
			for _, arg := range call.Args {
				if !p.seedTainted(f, enclosing, arg, 6) {
					out = append(out, p.diag("seedflow", call.Pos(),
						"%s seeded from %q, which has no seed provenance; "+
							"derive the value from a Seed-named config field or parameter (via sim.Mix64)",
						name, types.ExprString(arg)))
				}
			}
			return true
		})
	}
	return out
}

// randConstructor reports whether call constructs a seeded generator, and
// names it for the diagnostic: math/rand's New* family (v1 and v2) and
// sim.NewRNG, whether package-qualified or called from inside sim itself.
func (p *Package) randConstructor(f *ast.File, call *ast.CallExpr) (string, bool) {
	switch fn := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		x, ok := fn.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		switch path := p.PkgQualifier(f, x); path {
		case "math/rand", "math/rand/v2":
			if randConstructors[fn.Sel.Name] {
				return x.Name + "." + fn.Sel.Name, true
			}
		default:
			if fn.Sel.Name == "NewRNG" && hasSegment(path, "sim") &&
				strings.HasPrefix(path, p.loader.Module+"/") {
				return x.Name + ".NewRNG", true
			}
		}
	case *ast.Ident:
		if fn.Name == "NewRNG" && hasSegment(p.Path, "sim") {
			return "NewRNG", true
		}
	}
	return "", false
}

// seedTainted reports whether e derives from a seed. Taint sources are
// values and callees whose names contain "seed" (the config fields,
// parameters, and derivation helpers of the repo's seed discipline); taint
// flows through arithmetic, conversions, indexing, nested rand-constructor
// calls, Mix64/Split-style mixers (any argument tainted suffices), and
// local assignments inside the enclosing function. depth bounds the
// assignment-chasing recursion.
func (p *Package) seedTainted(f *ast.File, enclosing ast.Node, e ast.Expr, depth int) bool {
	if depth <= 0 {
		return false
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if nameHasSeed(e.Name) {
			return true
		}
		return p.localSeedTainted(f, enclosing, e, depth)
	case *ast.SelectorExpr:
		return nameHasSeed(e.Sel.Name) || p.seedTainted(f, enclosing, e.X, depth-1)
	case *ast.BinaryExpr:
		return p.seedTainted(f, enclosing, e.X, depth-1) ||
			p.seedTainted(f, enclosing, e.Y, depth-1)
	case *ast.UnaryExpr:
		return p.seedTainted(f, enclosing, e.X, depth-1)
	case *ast.StarExpr:
		return p.seedTainted(f, enclosing, e.X, depth-1)
	case *ast.IndexExpr:
		return p.seedTainted(f, enclosing, e.X, depth-1)
	case *ast.CallExpr:
		fun := unparen(e.Fun)
		// A conversion propagates the taint of its operand.
		if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && p.seedTainted(f, enclosing, e.Args[0], depth-1)
		}
		// Seed-derivation helpers taint by name; mixers and nested rand
		// constructors taint when any argument does.
		if name := calleeName(e); name != "" {
			if nameHasSeed(name) {
				return true
			}
			if name == "Mix64" || name == "Split" || randConstructors[name] {
				for _, arg := range e.Args {
					if p.seedTainted(f, enclosing, arg, depth-1) {
						return true
					}
				}
			}
		}
	}
	return false
}

func nameHasSeed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// localSeedTainted chases a local identifier to its assignments inside the
// enclosing function: the variable is tainted if any value assigned to it
// is.
func (p *Package) localSeedTainted(f *ast.File, enclosing ast.Node, id *ast.Ident, depth int) bool {
	if enclosing == nil {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	tainted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				lobj := p.Info.Defs[lid]
				if lobj == nil {
					lobj = p.Info.Uses[lid]
				}
				if lobj == obj && p.seedTainted(f, enclosing, n.Rhs[i], depth-1) {
					tainted = true
					return false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i >= len(n.Values) {
					continue
				}
				if p.Info.Defs[name] == obj && p.seedTainted(f, enclosing, n.Values[i], depth-1) {
					tainted = true
					return false
				}
			}
		}
		return true
	})
	return tainted
}
