package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// mutatorNames match method calls that mutate their receiver; calling one
// on a package-level variable from shard-parallel code is a write in
// disguise (sync.Map.Store, counter Add, cache Put, ...). Read-side methods
// (Load, Get, Len) stay legal.
var mutatorNames = map[string]bool{
	"Store": true, "LoadOrStore": true, "LoadAndDelete": true, "Delete": true,
	"Swap": true, "CompareAndSwap": true, "Add": true, "Set": true,
	"Put": true, "Push": true, "Pop": true, "Inc": true, "Dec": true,
	"Write": true, "Record": true, "Observe": true, "Emit": true,
	"Append": true, "Reset": true, "Remove": true,
}

// ruleSharedState enforces the shard ownership discipline on the
// shard-parallel function set (see facts.go for how the set is derived from
// the sanctioned `go` statements). Inside a parallel function, a write is
// legal when it lands in memory the executing goroutine owns:
//
//   - locals, and locals aliasing an indexed slot (n := s.nodes[i]);
//   - depth-1 fields of the receiver or of pointer parameters — the
//     node-local state a shard method was handed to mutate (sh.ws, e.count,
//     including map fields at depth 1);
//   - anything reached through a slice index — the disjoint-slot discipline
//     (s.results[i], e.slots[idx].when, captured out.Nodes[i]): slots are
//     partitioned across goroutines, so indexed writes never collide.
//
// Everything else is shared until proven otherwise and is flagged:
// package-level variables (including mutator method calls on them), state
// reached through deeper receiver/parameter field chains with no slot index
// (sh.g.merged = x crosses into the coordinator), locals aliasing such
// chains, writes to captured variables with no slot index, and map writes
// beyond depth-1 (maps have no disjoint-slot story). The set is an
// over-approximation, so every finding is either a real race, a
// determinism hazard, or a site worth a reasoned //pliant:allow.
type ruleSharedState struct{}

func (ruleSharedState) Name() string { return "sharedstate" }

func (ruleSharedState) Doc() string {
	return "shard-parallel functions may write only goroutine-owned state: " +
		"locals, depth-1 receiver/parameter fields, and slice-indexed slots; " +
		"package-level vars, coordinator field chains, and shared map writes are flagged"
}

func (ruleSharedState) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal")
}

func (ruleSharedState) Check(p *Package) []Diagnostic { return nil }

func (ruleSharedState) CheckFacts(p *Package, fs *FactSet) []Diagnostic {
	pf := fs.Pkg(p.Path)
	if pf == nil {
		return nil
	}
	keys := make([]string, 0, len(pf.Funcs))
	for k := range pf.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Diagnostic
	for _, k := range keys {
		if !fs.IsParallel(k) {
			continue
		}
		ff := pf.Funcs[k]
		out = append(out, p.checkParallelWrites(ff, effectiveFrame(fs, ff))...)
	}
	return out
}

// effectiveFrame resolves which function's goroutine executes ff's body. A
// literal that is parallel only by lexical containment — an ast.Inspect
// callback, a sort.Slice less function, anything invoked synchronously —
// runs on its parent's goroutine, so writes to captured state are
// frame-private, not cross-goroutine. Classification therefore walks up the
// literal-nesting chain until it reaches a frame that actually crosses a
// spawn boundary (a `go` target or a higher-order argument) or the
// outermost declaration, and judges ownership as if that frame wrote.
func effectiveFrame(fs *FactSet, ff *FuncFact) *FuncFact {
	frame := ff
	for frame.parent != nil && !fs.CrossesSpawn(frame.Key) {
		frame = frame.parent
	}
	return frame
}

// checkParallelWrites scans one parallel function's own statements (nested
// literals have their own facts and are scanned under their own keys),
// classifying each write against the frame whose goroutine runs the body.
func (p *Package) checkParallelWrites(ff, frame *FuncFact) []Diagnostic {
	var out []Diagnostic
	shortName := ff.Key
	if i := lastSlash(shortName); i >= 0 {
		shortName = shortName[i+1:]
	}
	ast.Inspect(ff.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n.Body == ff.body // only descend into our own body
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if d, bad := p.classifyWrite(frame, lhs); bad {
					d.Message = "shard-parallel " + shortName + " " + d.Message
					out = append(out, d)
				}
			}
		case *ast.IncDecStmt:
			if d, bad := p.classifyWrite(frame, n.X); bad {
				d.Message = "shard-parallel " + shortName + " " + d.Message
				out = append(out, d)
			}
		case *ast.CallExpr:
			if d, bad := p.classifyMutatorCall(frame, n); bad {
				d.Message = "shard-parallel " + shortName + " " + d.Message
				out = append(out, d)
			}
		}
		return true
	})
	return out
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// writeTarget is a decomposed assignment destination: the chain's root
// identifier plus what the chain passes through on the way down.
type writeTarget struct {
	root     *ast.Ident
	hops     int // selector depth from the root
	sliceIdx bool
	mapIdx   bool
}

// decompose unwinds an lvalue to its root identifier.
func (p *Package) decompose(e ast.Expr) (writeTarget, bool) {
	var w writeTarget
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			w.hops++
			e = x.X
		case *ast.IndexExpr:
			if p.isMapType(x.X) {
				w.mapIdx = true
			} else {
				w.sliceIdx = true
			}
			e = x.X
		case *ast.Ident:
			w.root = x
			return w, true
		default:
			return w, false
		}
	}
}

// classifyWrite applies the ownership rules to one assignment destination.
func (p *Package) classifyWrite(ff *FuncFact, lhs ast.Expr) (Diagnostic, bool) {
	w, ok := p.decompose(lhs)
	if !ok || w.root.Name == "_" {
		return Diagnostic{}, false
	}
	obj := p.objectOf(w.root)
	if obj == nil {
		return Diagnostic{}, false
	}
	target := types.ExprString(lhs)

	if p.isPackageLevel(obj) {
		return p.diag("sharedstate", lhs.Pos(),
			"writes package-level state %q; globals are shared across every goroutine of a run", target), true
	}

	isRecv, isParam, isCaptured := ownerOf(ff, obj)
	switch {
	case isRecv || isParam:
		if w.hops <= 1 {
			return Diagnostic{}, false // node-local: the state this function was handed
		}
		if w.sliceIdx {
			return Diagnostic{}, false // disjoint-slot discipline
		}
		if w.mapIdx {
			return p.diag("sharedstate", lhs.Pos(),
				"writes shared map %q; maps have no disjoint-slot discipline — fold per shard and merge at the barrier", target), true
		}
		return p.diag("sharedstate", lhs.Pos(),
			"writes %q through a depth-%d field chain with no owned slot index; state beyond depth-1 fields is coordinator-owned", target, w.hops), true
	case isCaptured:
		if w.sliceIdx {
			return Diagnostic{}, false
		}
		if w.mapIdx {
			return p.diag("sharedstate", lhs.Pos(),
				"writes captured map %q from a spawned goroutine; map writes race — use disjoint slice slots", target), true
		}
		return p.diag("sharedstate", lhs.Pos(),
			"writes captured %q from a spawned goroutine with no disjoint slot index", target), true
	}

	// A local of this function (or of an enclosing one, for literals).
	if declaredWithin(obj, ff) {
		if w.hops == 0 && !w.mapIdx {
			return Diagnostic{}, false // plain local (re)assignment
		}
		switch p.localAlias(ff, obj) {
		case aliasShared:
			if w.sliceIdx {
				return Diagnostic{}, false
			}
			return p.diag("sharedstate", lhs.Pos(),
				"writes %q through a local aliasing shared state with no owned slot index", target), true
		default:
			return Diagnostic{}, false // owned, slot alias, or range var
		}
	}

	// Captured local of an enclosing function.
	if w.sliceIdx {
		return Diagnostic{}, false
	}
	if w.mapIdx {
		return p.diag("sharedstate", lhs.Pos(),
			"writes captured map %q from a spawned goroutine; map writes race — use disjoint slice slots", target), true
	}
	return p.diag("sharedstate", lhs.Pos(),
		"writes captured %q from a spawned goroutine with no disjoint slot index", target), true
}

// classifyMutatorCall flags mutator method calls on package-level state.
func (p *Package) classifyMutatorCall(ff *FuncFact, call *ast.CallExpr) (Diagnostic, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !mutatorNames[sel.Sel.Name] {
		return Diagnostic{}, false
	}
	w, ok := p.decompose(sel.X)
	if !ok {
		return Diagnostic{}, false
	}
	obj := p.objectOf(w.root)
	if obj == nil || !p.isPackageLevel(obj) {
		return Diagnostic{}, false
	}
	return p.diag("sharedstate", call.Pos(),
		"calls %s.%s, mutating package-level state; globals are shared across every goroutine of a run",
		w.root.Name, sel.Sel.Name), true
}

func (p *Package) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// isPackageLevel reports whether obj is a package-scope variable.
func (p *Package) isPackageLevel(obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// ownerOf classifies obj against ff's receiver and parameters, walking the
// literal-nesting chain: captured means it belongs to an enclosing function.
func ownerOf(ff *FuncFact, obj types.Object) (isRecv, isParam, isCaptured bool) {
	for f := ff; f != nil; f = f.parent {
		if f.recvObj != nil && f.recvObj == obj {
			return f == ff, false, f != ff
		}
		if f.paramObjs[obj] {
			return false, f == ff, f != ff
		}
	}
	return false, false, false
}

// declaredWithin reports whether obj's declaration lies inside ff's own
// body (as opposed to an enclosing function's).
func declaredWithin(obj types.Object, ff *FuncFact) bool {
	return obj.Pos() >= ff.body.Pos() && obj.Pos() <= ff.body.End()
}

type aliasClass int

const (
	aliasOwned  aliasClass = iota // fresh value: composite literal, make, call result
	aliasSlot                     // aliases an indexed slot (n := s.nodes[i])
	aliasShared                   // aliases a shared chain (s := sh.g.s)
)

// localAlias classifies what a local variable aliases by inspecting its
// assignments inside ff. Range variables and indexed-slot aliases are
// owned-slot views; selector chains off the receiver, parameters, captured
// state, or globals are shared aliases.
func (p *Package) localAlias(ff *FuncFact, obj types.Object) aliasClass {
	class := aliasOwned
	ast.Inspect(ff.body, func(n ast.Node) bool {
		if class == aliasShared {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && p.objectOf(id) == obj {
					class = aliasSlot
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || p.objectOf(id) != obj || i >= len(n.Rhs) {
					continue
				}
				class = p.aliasOf(ff, n.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if p.objectOf(name) == obj && i < len(n.Values) {
					class = p.aliasOf(ff, n.Values[i])
				}
			}
		}
		return true
	})
	return class
}

// aliasOf classifies one RHS expression.
func (p *Package) aliasOf(ff *FuncFact, rhs ast.Expr) aliasClass {
	rhs = unparen(rhs)
	if u, ok := rhs.(*ast.UnaryExpr); ok {
		rhs = u.X // &expr aliases expr
	}
	w, ok := p.decompose(rhs)
	if !ok {
		return aliasOwned // call result, literal, arithmetic: a fresh value
	}
	if w.sliceIdx {
		return aliasSlot
	}
	if w.hops == 0 {
		return aliasOwned // plain local-to-local copy
	}
	obj := p.objectOf(w.root)
	if obj == nil {
		return aliasOwned
	}
	if p.isPackageLevel(obj) {
		return aliasShared
	}
	if isRecv, isParam, isCaptured := ownerOf(ff, obj); isRecv || isParam || isCaptured {
		return aliasShared
	}
	if !declaredWithin(obj, ff) {
		return aliasShared // chain rooted in a captured local
	}
	return aliasOwned
}
