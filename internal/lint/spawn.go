package lint

import (
	"go/ast"
	"strings"
)

// spawnAllowedFiles are the module-relative files sanctioned to start
// goroutines. Each one sits behind a determinism discipline: the episode
// worker pool and shard runtime merge at the window barrier in fixed order,
// the serving layer's session pump and SSE writers touch only the serial
// coordinator surface, and the experiment runner fans out independent
// simulations. A `go` statement anywhere else is concurrency without a
// merge discipline — the precise spot where nondeterminism enters.
var spawnAllowedFiles = map[string]bool{
	"internal/sched/pool.go":          true,
	"internal/sched/shard.go":         true,
	"internal/serve/session.go":       true,
	"internal/serve/sse.go":           true,
	"internal/experiments/profile.go": true,
}

// ruleSpawn confines `go` statements to the allowlisted concurrency files.
type ruleSpawn struct{}

func (ruleSpawn) Name() string { return "spawn" }

func (ruleSpawn) Doc() string {
	return "go statements only in the sanctioned concurrency files (worker " +
		"pool, shard runtime, session pump, SSE, experiment runner); new " +
		"goroutines need a merge discipline, not just a waitgroup"
}

func (ruleSpawn) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal")
}

func (ruleSpawn) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		file, _, _ := p.RelFile(f.Pos())
		if spawnAllowedFiles[file] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			out = append(out, p.diag("spawn", gs.Pos(),
				"go statement outside the sanctioned concurrency files (%s); "+
					"route the work through the worker pool or shard runtime, or "+
					"annotate a deterministic fan-out with //pliant:allow",
				strings.Join(sortedAllowFiles(), ", ")))
			return true
		})
	}
	return out
}

func sortedAllowFiles() []string {
	// Small fixed set: keep the diagnostic stable without importing sort
	// state into every message.
	return []string{
		"internal/experiments/profile.go",
		"internal/sched/pool.go",
		"internal/sched/shard.go",
		"internal/serve/session.go",
		"internal/serve/sse.go",
	}
}
