package lint

import (
	"strings"
)

// allow is one parsed //pliant:allow comment. A well-formed comment names
// the suppressed rule(s) and gives a reason:
//
//	//pliant:allow wallclock — profiler measures real episode runtime
//
// Malformed is non-empty when the comment is missing its rule name or
// reason; the runner reports that as a diagnostic, because an escape hatch
// nobody can audit is worse than none.
type allow struct {
	File      string
	Line, Col int
	Rules     []string
	Malformed string
}

const allowPrefix = "pliant:allow"

// collectAllows parses every //pliant:allow comment in the package. The
// raw comment text is inspected (not ast.CommentGroup.Text, which strips
// directive-style comments).
func collectAllows(p *Package) []allow {
	var out []allow
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				a := parseAllow(rest)
				a.File, a.Line, a.Col = p.RelFile(c.Pos())
				out = append(out, a)
			}
		}
	}
	return out
}

// parseAllow parses the text after "pliant:allow": rule names (comma
// separated), a dash separator, and a free-form reason.
func parseAllow(rest string) allow {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return allow{Malformed: "pliant:allow needs a rule name and a reason (\"//pliant:allow <rule> — <reason>\")"}
	}
	nameEnd := strings.IndexFunc(rest, func(r rune) bool {
		return r == ' ' || r == '\t'
	})
	var names, reason string
	if nameEnd < 0 {
		names, reason = rest, ""
	} else {
		names, reason = rest[:nameEnd], rest[nameEnd:]
	}
	reason = strings.TrimLeftFunc(reason, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '—' || r == '–' || r == '-' || r == ':'
	})
	a := allow{Rules: strings.Split(names, ",")}
	for i, n := range a.Rules {
		a.Rules[i] = strings.TrimSpace(n)
	}
	if strings.TrimSpace(reason) == "" {
		a.Malformed = "pliant:allow " + names + " has no reason; unexplained suppressions are not auditable"
	}
	return a
}

// suppressed reports whether d is covered by an allow comment: same file,
// matching rule, on the diagnostic's line (end-of-line form) or the line
// above it (standalone form).
func suppressed(allows []allow, d Diagnostic) bool {
	for _, a := range allows {
		if a.Malformed != "" || a.File != d.File {
			continue
		}
		if d.Line != a.Line && d.Line != a.Line+1 {
			continue
		}
		for _, r := range a.Rules {
			if r == d.Rule {
				return true
			}
		}
	}
	return false
}
