// Package allowfix is a lint fixture for the suppression mechanics: a
// reasoned //pliant:allow covers its own line or the line below; an
// unreasoned one suppresses nothing and is itself a finding; anything
// without a comment is still caught (so this package stays lint-dirty).
package allowfix

import "time"

// Spans exercises both placements of a well-formed allow comment.
func Spans() time.Duration {
	t0 := time.Now() //pliant:allow wallclock — fixture: end-of-line suppression
	//pliant:allow wallclock — fixture: standalone suppression covers the next line
	time.Sleep(time.Millisecond)
	return time.Since(t0) // want `\[wallclock\] time\.Since reads the host clock`
}

// Unreasoned shows the malformed form: no reason, no suppression, and the
// comment itself is reported.
func Unreasoned() {
	/*pliant:allow wallclock*/ // want `\[allow\] pliant:allow wallclock has no reason`
	_ = time.Now()             // want `\[wallclock\] time\.Now reads the host clock`
}
