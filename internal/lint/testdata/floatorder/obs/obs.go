// Package obs is a floatorder rule fixture: float sums in map-iteration
// order and in goroutine-interleaving order are flagged; the collect-then-
// sort and per-slot idioms stay legal.
package obs

import (
	"sort"
	"sync"
)

// SumMap accumulates in map-iteration order: the bytes change per process.
func SumMap(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `\[floatorder\].*map-iteration`
	}
	return sum
}

// SumMapExpr spells the accumulation as sum = sum + x: same hazard.
func SumMapExpr(m map[string]float64) float64 {
	sum := 0.0
	for k := range m {
		sum = sum + m[k] // want `\[floatorder\].*map-iteration`
	}
	return sum
}

// SumSorted is the sanctioned fix — collect keys, sort, then sum: no
// finding.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// CountMap shows integer accumulation over a map range stays legal here:
// integer addition associates, so order cannot change the result.
func CountMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

type merger struct {
	grand float64
	parts []float64
}

// fanIn spawns one goroutine per part: per-slot writes are legal, the
// shared grand total accumulates in interleaving order (flagged by both the
// float-order and ownership analyses).
func (mg *merger) fanIn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `\[spawn\]`
			defer wg.Done()
			mg.parts[i] = float64(i) // disjoint slot: legal
			mg.grand += float64(i)   // want `\[(floatorder|sharedstate)\]`
		}(i)
	}
	wg.Wait()
}

// FoldSorted merges per-part sums in fixed index order after the barrier:
// the sanctioned fix for fanIn's grand total. No finding.
func (mg *merger) FoldSorted() float64 {
	var sum float64
	for _, p := range mg.parts {
		sum += p
	}
	return sum
}
