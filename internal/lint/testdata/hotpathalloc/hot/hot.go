// Package hot is a hotpathalloc rule fixture: allocation-forcing constructs
// inside //pliant:hotpath-annotated functions are flagged; the same
// constructs in unannotated functions, and the sanctioned reuse idioms, are
// not.
package hot

import "fmt"

type ring struct {
	buf []int
	n   int
}

// Sum is a clean hot path: range over a preallocated buffer, integer
// arithmetic, no construction. No findings.
//
//pliant:hotpath
func (r *ring) Sum() int {
	t := 0
	for _, v := range r.buf {
		t += v
	}
	return t
}

//pliant:hotpath
func (r *ring) Push(v int) {
	r.buf = append(r.buf, v) // want `\[hotpathalloc\].*append`
}

// Refill reuses the existing backing array: the sanctioned append form.
// No findings.
//
//pliant:hotpath
func (r *ring) Refill(v int) {
	r.buf = append(r.buf[:0], v)
}

//pliant:hotpath
func Describe(v int) string {
	return fmt.Sprintf("v=%d", v) // want `\[hotpathalloc\].*fmt`
}

//pliant:hotpath
func Pair(a, b int) *[2]int {
	return &[2]int{a, b} // want `\[hotpathalloc\].*address of a composite`
}

//pliant:hotpath
func Join(a, b string) string {
	return a + b // want `\[hotpathalloc\].*concatenates`
}

//pliant:hotpath
func Grow(n int) []int {
	return make([]int, n) // want `\[hotpathalloc\].*make`
}

//pliant:hotpath
func Lits() int {
	xs := []int{1, 2} // want `\[hotpathalloc\].*slice literal`
	return xs[0] + xs[1]
}

//pliant:hotpath
func Wrap(f func()) func() {
	return func() { f() } // want `\[hotpathalloc\].*function literal`
}

//pliant:hotpath
func Bytes(s string) []byte {
	return []byte(s) // want `\[hotpathalloc\].*copies`
}

// NotHot carries no annotation: the same constructs are legal outside
// declared hot paths.
func NotHot(v int) string {
	xs := make([]int, v)
	xs = append(xs, v)
	return fmt.Sprint(len(xs))
}
