// Package schedfix is a lint fixture: map-iteration order leaking into
// ordered output in a deterministic package ("sched" path segment), next
// to the order-independent shapes that must stay legal.
package schedfix

import (
	"fmt"
	"sort"
	"strings"
)

// Collect leaks: appending map entries in iteration order makes the slice
// order a per-process coin flip.
func Collect(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `\[maporder\] range over map feeds ordered output \(append`
		out = append(out, v)
	}
	return out
}

// Emit leaks straight into output bytes.
func Emit(w *strings.Builder, m map[string]int) {
	for k, v := range m { // want `\[maporder\] range over map feeds ordered output \(call to Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Fill leaks through slice element writes at a rolling cursor.
func Fill(m map[string]int, dst []int) {
	i := 0
	for _, v := range m { // want `\[maporder\] range over map feeds ordered output \(slice element write`
		dst[i] = v
		i++
	}
}

// Join leaks through string accumulation.
func Join(m map[string]bool) string {
	s := ""
	for k := range m { // want `\[maporder\] range over map feeds ordered output \(string accumulation`
		s += k
	}
	return s
}

// Invert is legal: writes keyed back into a map build per-key state, not a
// sequence — no order leaks.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Sorted is the sanctioned fix itself: harvest keys, sort, then iterate.
// The harvest loop must not be flagged.
func Sorted(m map[string]int) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
