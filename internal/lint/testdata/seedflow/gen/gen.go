// Package gen is a seedflow rule fixture: rand constructors whose seed
// arguments do and do not derive from the config seed.
package gen

import (
	"math/rand"
	"time"

	"github.com/approx-sched/pliant/internal/sim"
)

// Config mirrors the repo's convention: the run seed is a Seed-named field.
type Config struct {
	Seed  int64
	Nodes int
}

// Good seeds straight from the config field: no finding.
func Good(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

// GoodMix derives a stream seed through sim.Mix64: legal provenance.
func GoodMix(cfg Config, i int) *rand.Rand {
	return rand.New(rand.NewSource(int64(sim.Mix64(uint64(cfg.Seed) ^ uint64(i)))))
}

// GoodParam receives the seed as a parameter: the name carries the taint.
func GoodParam(seed int64) rand.Source {
	return rand.NewSource(seed)
}

// GoodDerived routes the seed through local arithmetic before use.
func GoodDerived(cfg Config) rand.Source {
	s := cfg.Seed*2 + 1
	return rand.NewSource(s)
}

// GoodRNG builds the repo's own generator from mixed seed material.
func GoodRNG(cfg Config, node int) *sim.RNG {
	return sim.NewRNG(sim.Mix64(uint64(cfg.Seed)) + uint64(node))
}

// BadLiteral hardcodes the seed: a perfectly seeded generator with no
// provenance story, irreproducible from the run config.
func BadLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `\[seedflow\] rand\.New(Source)? seeded`
}

// BadClock seeds from the wall clock: differs every run.
func BadClock() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `\[seedflow\] rand\.NewSource seeded`
}

// BadVar launders a non-seed value through a local.
func BadVar(xs []int) rand.Source {
	n := int64(len(xs))
	return rand.NewSource(n) // want `\[seedflow\] rand\.NewSource seeded`
}

// BadRNG hands the repo generator a constant stream id with no seed mixed
// in.
func BadRNG() *sim.RNG {
	return sim.NewRNG(7) // want `\[seedflow\] sim\.NewRNG seeded`
}
