// Package shard is a sharedstate rule fixture: a miniature shard runtime
// exercising the ownership classification — node-local and slot-indexed
// writes stay legal, package-level, coordinator-chain, shared-alias, and
// captured writes are flagged.
package shard

type node struct {
	served int
	busy   int
}

type coord struct {
	totalServed int
	nodes       []node
	cache       map[string]int
}

type counter struct{ n int }

// Add mutates the counter; calling it on the package-level instance from
// shard context is a write in disguise.
func (c *counter) Add(d int) { c.n += d }

var totalEpisodes int
var registry = map[string]int{}
var hits counter

type worker struct {
	c       *coord
	id      int
	local   int
	scratch map[string]int
	req     chan int
}

// start launches one goroutine per worker: these spawns are the fixture's
// shard-parallel roots.
func start(c *coord, n int) []*worker {
	ws := make([]*worker, n)
	for i := range ws {
		ws[i] = &worker{c: c, id: i, scratch: map[string]int{}, req: make(chan int)}
		go ws[i].loop() // want `\[spawn\]`
	}
	return ws
}

func (w *worker) loop() {
	for i := range w.req {
		w.run(i)
	}
}

func (w *worker) run(i int) {
	w.local++                // own depth-1 field: node-local, legal
	w.scratch["episode"] = i // own depth-1 map: node-local, legal
	n := &w.c.nodes[i]       // slot alias: disjoint per-episode slot
	n.served++               // legal through the slot alias
	w.c.nodes[i].busy = 0    // slice-indexed: disjoint-slot discipline, legal

	totalEpisodes++     // want `\[sharedstate\].*package-level`
	registry["run"] = i // want `\[sharedstate\].*package-level`
	hits.Add(1)         // want `\[sharedstate\].*mutating package-level`

	w.c.totalServed++ // want `\[sharedstate\].*depth-2 field chain`

	c := w.c
	c.totalServed = c.totalServed + 1 // want `\[sharedstate\].*aliasing shared`

	w.c.cache["total"] = i // want `\[sharedstate\].*shared map`
}

// fanout spawns literals that capture enclosing state: slice-indexed slots
// stay legal, a plain captured counter does not.
func fanout(c *coord, vals []int) {
	done := make(chan struct{})
	count := 0
	for i := range vals {
		go func(i int) { // want `\[spawn\]`
			vals[i] = c.nodes[i].served // disjoint slot in a captured slice: legal
			count++                     // want `\[sharedstate\].*captured`
			done <- struct{}{}
		}(i)
	}
	for range vals {
		<-done
	}
	_ = count
}
