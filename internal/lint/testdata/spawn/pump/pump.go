// Package pumpfix is a lint fixture: goroutines outside the sanctioned
// concurrency files.
package pumpfix

import "sync"

// Fan spawns unsanctioned goroutines: concurrency without a merge
// discipline is where nondeterminism enters.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `\[spawn\] go statement outside the sanctioned concurrency files`
			defer wg.Done()
		}()
	}
	go drain(&wg) // want `\[spawn\] go statement outside the sanctioned concurrency files`
	wg.Wait()
}

func drain(wg *sync.WaitGroup) { wg.Wait() }
