// Package dicefix is a lint fixture: global math/rand draws (banned under
// internal/) next to the sanctioned seeded-source flow (legal).
package dicefix

import "math/rand"

// Roll draws from the process-global source: unseeded, shared, invisible
// to any run config.
func Roll() int {
	rand.Seed(42)             // want `\[unseededrand\] rand\.Seed draws from the process-global source`
	n := rand.Intn(6)         // want `\[unseededrand\] rand\.Intn draws from the process-global source`
	if rand.Float64() > 0.5 { // want `\[unseededrand\] rand\.Float64 draws from the process-global source`
		n++
	}
	return n
}

// Seeded is the sanctioned flow: an explicit source built from a seed the
// caller owns. Constructors and method calls must not be flagged.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// fake has rand-shaped methods for the shadowing decoy below.
type fake struct{}

func (fake) Intn(n int) int { return n - 1 }

// Decoy shadows the package name with a local; go/types resolution must
// see a variable, not the math/rand qualifier.
func Decoy() int {
	rand := fake{}
	return rand.Intn(3)
}
