// Package simfix is a lint fixture: wall-clock reads in a virtual-time
// package ("sim" path segment). Every flagged line carries a want comment;
// the duration arithmetic at the bottom must stay clean.
package simfix

import "time"

// Epoch is legal: representing durations is fine, observing time is not.
const Epoch = 250 * time.Millisecond

// Stamp reads the host clock three ways; the linter must pin each line.
func Stamp() time.Duration {
	t0 := time.Now()      // want `\[wallclock\] time\.Now reads the host clock`
	time.Sleep(Epoch)     // want `\[wallclock\] time\.Sleep reads the host clock`
	return time.Since(t0) // want `\[wallclock\] time\.Since reads the host clock`
}

// Park arms wall-clock timers, which are just deferred clock reads.
func Park() {
	<-time.After(Epoch)       // want `\[wallclock\] time\.After reads the host clock`
	t := time.NewTimer(Epoch) // want `\[wallclock\] time\.NewTimer reads the host clock`
	t.Stop()
}

// clock is a decoy: a selector named Now on a non-time value must not trip
// the rule, because resolution goes through go/types, not string matching.
type clock struct{}

func (clock) Now() int { return 0 }

// Decoy exercises the decoy selector and shadows the time package name.
func Decoy() int {
	time := clock{}
	return time.Now()
}
