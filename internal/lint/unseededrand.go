package lint

import (
	"go/ast"
)

// randGlobalFuncs are the package-level math/rand (and math/rand/v2)
// functions that draw from the shared, implicitly seeded source. Calls on
// an explicit *rand.Rand value are fine — the rule distinguishes the two by
// resolving the qualifier, so a variable named rand is never misflagged and
// a renamed import never escapes. Constructors (New, NewSource, NewZipf,
// NewPCG, NewChaCha8) stay legal: they are how seeded sources get built.
var randGlobalFuncs = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// ruleUnseededRand bans the global math/rand functions everywhere under
// internal/. The global source is process-wide state: seeded once (or, in
// v2, unseedably), shared across goroutines, and invisible to the run
// config — three separate ways for two "identical" runs to diverge. All
// randomness must flow from an explicit seeded source (*rand.Rand,
// sim.Mix64) that the config owns.
type ruleUnseededRand struct{}

func (ruleUnseededRand) Name() string { return "unseededrand" }

func (ruleUnseededRand) Doc() string {
	return "no global math/rand functions in internal/; all randomness must " +
		"flow from an explicit seeded source (*rand.Rand, sim.Mix64)"
}

func (ruleUnseededRand) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal")
}

func (ruleUnseededRand) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !randGlobalFuncs[sel.Sel.Name] {
				return true
			}
			q := p.PkgQualifier(f, x)
			if q != "math/rand" && q != "math/rand/v2" {
				return true
			}
			out = append(out, p.diag("unseededrand", sel.Pos(),
				"rand.%s draws from the process-global source; thread a seeded "+
					"*rand.Rand (or sim.Mix64) from the run config instead",
				sel.Sel.Name))
			return true
		})
	}
	return out
}
