package lint

import (
	"go/ast"
)

// virtualTimeSegments are the package-path elements naming the virtual-time
// world: packages whose behavior must be a pure function of (config, seed).
// A wall clock read anywhere in them leaks host timing into simulation
// state, which is exactly the class of bug the shard barrier, obs-off
// goldens, and daemon-vs-batch parity tests exist to catch after the fact.
var virtualTimeSegments = []string{
	"sim", "sched", "cluster", "colocate", "fault",
	"energy", "trace", "workload", "serve",
}

// wallclockFuncs are the time package entry points that read or park on the
// host clock. time.Duration arithmetic and constants stay legal — the rule
// bans observing real time, not representing durations.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// ruleWallclock bans wall-clock reads in virtual-time packages. The
// sanctioned exceptions — the shard/episode profiler, which measures real
// runtime for obs reporting and never feeds simulation state, and the
// serving layer's opt-in pace ticker — carry //pliant:allow comments.
type ruleWallclock struct{}

func (ruleWallclock) Name() string { return "wallclock" }

func (ruleWallclock) Doc() string {
	return "no time.Now/Since/Sleep (or timers) in virtual-time packages; " +
		"simulated behavior must be a pure function of config and seed"
}

func (ruleWallclock) Applies(pkgPath string) bool {
	return hasSegment(pkgPath, "internal") &&
		hasAnySegment(pkgPath, virtualTimeSegments)
}

func (ruleWallclock) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			if p.PkgQualifier(f, x) != "time" {
				return true
			}
			out = append(out, p.diag("wallclock", sel.Pos(),
				"time.%s reads the host clock in a virtual-time package; "+
					"derive timing from sim.Time (or annotate a profiler site with //pliant:allow)",
				sel.Sel.Name))
			return true
		})
	}
	return out
}
