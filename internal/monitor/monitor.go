// Package monitor implements Pliant's lightweight performance monitor
// (Sec. 4.1): a client-side tracing runtime that samples the end-to-end
// latency of the interactive service, computes per-interval tail statistics,
// and reports QoS violations and latency slack to the controller. Sampling is
// adaptive — the sampling stride adjusts so the monitor records roughly a
// target number of samples per interval regardless of offered load, and it
// densifies when the tail approaches the QoS boundary, where decision quality
// matters most.
package monitor

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
)

// Report is the monitor's per-interval output to the controller.
type Report struct {
	At       sim.Time     // interval end
	Interval sim.Duration // interval length
	Samples  uint64       // latency observations recorded this interval
	Seen     uint64       // requests completed this interval (sampled or not)
	Mean     sim.Duration
	P99      sim.Duration
	QoS      sim.Duration

	// Violation is true when the interval's p99 exceeded the QoS target.
	Violation bool

	// Slack is (QoS - p99)/QoS: positive headroom below the target,
	// negative when violating. The controller's revert condition is
	// Slack > 10% (paper Sec. 4.3).
	Slack float64

	// Util, Watts, and Joules are node energy telemetry for this interval:
	// utilization of the colocation socket, mean power draw, and energy
	// dissipated. The monitor itself leaves them zero — the episode runner
	// (internal/colocate) fills them when an energy model is attached, so
	// joules ride the same OnReport hook schedulers already consume latency
	// through.
	Util   float64
	Watts  float64
	Joules float64
}

// Config tunes a Monitor.
type Config struct {
	// QoS is the tail-latency target of the monitored service.
	QoS sim.Duration

	// Interval is the decision interval at which reports fire (paper
	// default: 1 s).
	Interval sim.Duration

	// TargetSamples is the number of latency observations the adaptive
	// sampler aims to record per interval.
	TargetSamples uint64

	// DenseFactor multiplies TargetSamples when the previous interval's
	// p99 was within ±25% of QoS — near the boundary the monitor samples
	// more densely.
	DenseFactor uint64

	// Scratch, when non-nil, is a caller-owned latency histogram the monitor
	// uses (and clears) instead of allocating its own — episode runners
	// recycle it across windows. Must not be shared with a live monitor.
	Scratch *stats.Histogram
}

// DefaultConfig returns the paper's monitoring configuration: 1-second
// decision interval, ~2000 samples per interval, 4× densification near the
// QoS boundary.
func DefaultConfig(qos sim.Duration) Config {
	return Config{
		QoS:           qos,
		Interval:      sim.Second,
		TargetSamples: 2000,
		DenseFactor:   4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.QoS <= 0:
		return fmt.Errorf("monitor: QoS must be positive")
	case c.Interval <= 0:
		return fmt.Errorf("monitor: interval must be positive")
	case c.TargetSamples == 0:
		return fmt.Errorf("monitor: target samples must be positive")
	case c.DenseFactor == 0:
		return fmt.Errorf("monitor: dense factor must be positive")
	}
	return nil
}

// Monitor consumes end-to-end latencies and emits per-interval reports.
type Monitor struct {
	cfg Config
	eng *sim.Engine

	hist   *stats.Histogram
	stride uint64 // record every stride-th completion
	left   uint64 // completions until the next sample (countdown from stride)
	seen   uint64 // completions this interval
	taken  uint64 // samples this interval

	onReport func(Report)
	stopTick func()
	reports  uint64
}

// New creates a monitor and starts its interval ticker. The onReport
// callback fires at the end of every interval.
func New(eng *sim.Engine, cfg Config, onReport func(Report)) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		return nil, fmt.Errorf("monitor: nil engine")
	}
	if onReport == nil {
		onReport = func(Report) {}
	}
	hist := cfg.Scratch
	if hist == nil {
		hist = stats.NewLatencyHistogram()
	} else {
		hist.Reset()
	}
	m := &Monitor{
		cfg:      cfg,
		eng:      eng,
		hist:     hist,
		stride:   1,
		left:     1,
		onReport: onReport,
	}
	m.stopTick = eng.Ticker(cfg.Interval, m.tick)
	return m, nil
}

// Observe records the completion of one request with its end-to-end latency.
// It must be cheap: it is called for every completed request, so the stride
// is a countdown rather than a modulo.
func (m *Monitor) Observe(latency sim.Duration) {
	m.seen++
	m.left--
	if m.left > 0 {
		return
	}
	m.left = m.stride
	m.taken++
	m.hist.Record(float64(latency))
}

// Stride returns the current sampling stride (1 = every request).
func (m *Monitor) Stride() uint64 { return m.stride }

// Reports returns how many interval reports have fired.
func (m *Monitor) Reports() uint64 { return m.reports }

// Stop halts the interval ticker.
func (m *Monitor) Stop() { m.stopTick() }

func (m *Monitor) tick(now sim.Time) {
	p99 := sim.Duration(m.hist.P99())
	mean := sim.Duration(m.hist.Mean())
	r := Report{
		At:       now,
		Interval: m.cfg.Interval,
		Samples:  m.taken,
		Seen:     m.seen,
		Mean:     mean,
		P99:      p99,
		QoS:      m.cfg.QoS,
	}
	if m.taken > 0 {
		r.Violation = p99 > m.cfg.QoS
		r.Slack = float64(m.cfg.QoS-p99) / float64(m.cfg.QoS)
	} else {
		// No traffic completed: treat as full slack, not a violation.
		r.Slack = 1
	}
	m.reports++

	m.retarget(p99)
	m.hist.Reset()
	m.seen = 0
	m.taken = 0

	m.onReport(r)
}

// retarget adapts the sampling stride for the next interval from this
// interval's completion volume, densifying near the QoS boundary.
func (m *Monitor) retarget(p99 sim.Duration) {
	target := m.cfg.TargetSamples
	if m.nearBoundary(p99) {
		target *= m.cfg.DenseFactor
	}
	if m.seen == 0 || m.seen <= target {
		m.stride = 1
	} else {
		m.stride = m.seen / target
		if m.stride < 1 {
			m.stride = 1
		}
	}
	// A fresh interval starts counting from the new stride, exactly as the
	// historical seen%stride==0 rule did after seen reset to zero.
	m.left = m.stride
}

// nearBoundary reports whether the p99 is within ±25% of the QoS target.
func (m *Monitor) nearBoundary(p99 sim.Duration) bool {
	if p99 == 0 {
		return false
	}
	lo := m.cfg.QoS - m.cfg.QoS/4
	hi := m.cfg.QoS + m.cfg.QoS/4
	return p99 >= lo && p99 <= hi
}
