package monitor

import (
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(200 * sim.Microsecond)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"zero qos":      func(c *Config) { c.QoS = 0 },
		"zero interval": func(c *Config) { c.Interval = 0 },
		"zero target":   func(c *Config) { c.TargetSamples = 0 },
		"zero dense":    func(c *Config) { c.DenseFactor = 0 },
	}
	for name, mutate := range cases {
		c := DefaultConfig(sim.Millisecond)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, DefaultConfig(sim.Millisecond), nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	eng := sim.NewEngine()
	bad := DefaultConfig(sim.Millisecond)
	bad.QoS = 0
	if _, err := New(eng, bad, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestReportsFireEveryInterval(t *testing.T) {
	eng := sim.NewEngine()
	var reports []Report
	m, err := New(eng, DefaultConfig(sim.Millisecond), func(r Report) { reports = append(reports, r) })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.Time(3500 * sim.Millisecond))
	if len(reports) != 3 {
		t.Fatalf("%d reports in 3.5s with 1s interval, want 3", len(reports))
	}
	for i, r := range reports {
		if r.At != sim.Time(i+1)*sim.Time(sim.Second) {
			t.Fatalf("report %d at %v", i, r.At)
		}
	}
	if m.Reports() != 3 {
		t.Fatalf("Reports() = %d", m.Reports())
	}
}

func TestViolationAndSlack(t *testing.T) {
	eng := sim.NewEngine()
	qos := sim.Millisecond
	var last Report
	_, err := New(eng, DefaultConfig(qos), func(r Report) { last = r })
	if err != nil {
		t.Fatal(err)
	}

	var m *Monitor
	m, _ = New(eng, DefaultConfig(qos), func(r Report) { last = r })
	// Feed latencies all at 500µs: p99 ≈ 500µs, slack ≈ 0.5.
	eng.Schedule(sim.Time(100*sim.Millisecond), func() {
		for i := 0; i < 1000; i++ {
			m.Observe(500 * sim.Microsecond)
		}
	})
	eng.Run(sim.Time(sim.Second))
	if last.Violation {
		t.Fatal("500µs vs 1ms QoS flagged as violation")
	}
	if last.Slack < 0.45 || last.Slack > 0.55 {
		t.Fatalf("slack = %v, want ~0.5", last.Slack)
	}

	// Now feed latencies above QoS: violation with negative slack.
	eng.Schedule(eng.Now().Add(100*sim.Millisecond), func() {
		for i := 0; i < 1000; i++ {
			m.Observe(3 * sim.Millisecond)
		}
	})
	eng.Run(sim.Time(2 * sim.Second))
	if !last.Violation {
		t.Fatal("3ms vs 1ms QoS not flagged")
	}
	if last.Slack >= 0 {
		t.Fatalf("slack = %v, want negative", last.Slack)
	}
}

func TestEmptyIntervalIsNotViolation(t *testing.T) {
	eng := sim.NewEngine()
	var last Report
	_, err := New(eng, DefaultConfig(sim.Millisecond), func(r Report) { last = r })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.Time(sim.Second))
	if last.Violation {
		t.Fatal("idle interval flagged as violation")
	}
	if last.Slack != 1 {
		t.Fatalf("idle slack = %v, want 1", last.Slack)
	}
	if last.Samples != 0 {
		t.Fatalf("idle samples = %d", last.Samples)
	}
}

func TestAdaptiveStrideConvergesToTarget(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(100 * sim.Millisecond) // QoS far away: no densification
	cfg.TargetSamples = 100
	var reports []Report
	m, err := New(eng, cfg, func(r Report) { reports = append(reports, r) })
	if err != nil {
		t.Fatal(err)
	}
	// 10k completions per interval at 1µs latency for 4 intervals.
	stop := eng.Ticker(100*sim.Microsecond, func(sim.Time) { m.Observe(sim.Microsecond) })
	eng.Run(sim.Time(4 * sim.Second))
	stop()
	if len(reports) != 4 {
		t.Fatalf("%d reports", len(reports))
	}
	// First interval samples everything (stride 1); later intervals must
	// approach the target.
	first, last := reports[0], reports[len(reports)-1]
	if first.Samples < 9000 {
		t.Fatalf("first interval samples = %d, want ~10000 (stride 1)", first.Samples)
	}
	if last.Samples > 3*cfg.TargetSamples {
		t.Fatalf("adapted samples = %d, want near target %d", last.Samples, cfg.TargetSamples)
	}
	if m.Stride() <= 1 {
		t.Fatalf("stride = %d, want > 1 under heavy load", m.Stride())
	}
}

func TestDensificationNearBoundary(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(sim.Millisecond)
	cfg.TargetSamples = 50
	cfg.DenseFactor = 8
	m, err := New(eng, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy load with p99 right at QoS: stride should use the densified
	// target (400) rather than 50.
	stop := eng.Ticker(100*sim.Microsecond, func(sim.Time) { m.Observe(sim.Millisecond) })
	eng.Run(sim.Time(3 * sim.Second))
	stop()
	// 10k/interval over target 400 → stride ~25; without densification it
	// would be ~200.
	if m.Stride() > 50 {
		t.Fatalf("stride = %d near boundary, want densified (~25)", m.Stride())
	}
	if m.Stride() <= 1 {
		t.Fatalf("stride = %d, want adapted above 1", m.Stride())
	}
}

func TestStopHaltsReports(t *testing.T) {
	eng := sim.NewEngine()
	count := 0
	m, err := New(eng, DefaultConfig(sim.Millisecond), func(Report) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(sim.Time(2500*sim.Millisecond), func() { m.Stop() })
	eng.Run(sim.Time(10 * sim.Second))
	if count != 2 {
		t.Fatalf("reports after stop = %d, want 2", count)
	}
}

func TestSeenCountsUnsampled(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(100 * sim.Millisecond)
	cfg.TargetSamples = 10
	var reports []Report
	m, _ := New(eng, cfg, func(r Report) { reports = append(reports, r) })
	stop := eng.Ticker(sim.Millisecond, func(sim.Time) { m.Observe(sim.Microsecond) })
	eng.Run(sim.Time(3 * sim.Second))
	stop()
	last := reports[len(reports)-1]
	if last.Seen < 900 {
		t.Fatalf("seen = %d, want ~1000", last.Seen)
	}
	if last.Samples > last.Seen {
		t.Fatal("sampled more than seen")
	}
}
