package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// TraceMeta names the lanes of a Chrome trace export. NodeNames index by
// Record.Node; Policy labels the scheduler lane.
type TraceMeta struct {
	NodeNames []string
	Policy    string
}

// Lifecycle-state and autoscale-action names for rendering. The numeric
// values mirror internal/autoscale's State and ActionKind constants (pinned
// by a test on the sched side); obs stays import-free of the scheduler
// stack so any subsystem can adopt the tracer.
var (
	lifecycleNames = []string{"active", "draining", "parked", "waking", "down"}
	actionNames    = []string{"park", "wake", "setfreq"}
	faultNames     = []string{"recover", "crash", "stale", "straggle"}
)

func nameOf(table []string, i int64) string {
	if i >= 0 && int(i) < len(table) {
		return table[i]
	}
	return "unknown"
}

// WriteChromeTrace renders the tracer's retained records as Chrome
// trace-event JSON (the Perfetto/chrome://tracing format): one timeline lane
// per node carrying its colocation episodes and the decisions that targeted
// it, plus a scheduler lane for window markers and deferrals. Timestamps are
// virtual microseconds, so a simulated day reads as a day. Records emit in
// ring order with fixed float formatting — equal runs produce identical
// bytes, and because the scheduler emits every record from its serial
// coordinator sections, equal seeds produce identical bytes at any shard
// count.
func WriteChromeTrace(w io.Writer, t *Tracer, meta TraceMeta) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	schedLane := len(meta.NodeNames)
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}

	// Lane metadata: the process, one named thread per node, the scheduler.
	emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"pliant cluster"}}`)
	for i, n := range meta.NodeNames {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, i, "node "+n))
		emit(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":1,"tid":%d,"args":{"sort_index":%d}}`, i, i+1))
	}
	schedName := "scheduler"
	if meta.Policy != "" {
		schedName = "scheduler (" + meta.Policy + ")"
	}
	emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, schedLane, schedName))
	emit(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":1,"tid":%d,"args":{"sort_index":0}}`, schedLane))

	ts := func(ns int64) string {
		return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
	}
	var err error
	t.Records(func(r Record) {
		if err != nil {
			return
		}
		switch r.Kind {
		case KindEpisode:
			qos := "miss"
			if r.B != 0 {
				qos = "met"
			}
			emit(fmt.Sprintf(`{"name":"episode","cat":"episode","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,`+
				`"args":{"window":%d,"qos":%q,"joules_u":%d}}`,
				ts(r.At), ts(r.A), r.Node, r.Window, qos, r.C))
		case KindPlacement:
			if r.Node >= 0 {
				emit(fmt.Sprintf(`{"name":"place job %d","cat":"placement","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,`+
					`"args":{"window":%d,"job":%d,"rejected_candidates":%d,"deferrals":%d}}`,
					r.A, ts(r.At), r.Node, r.Window, r.A, max64(r.B-1, 0), r.C))
			} else {
				emit(fmt.Sprintf(`{"name":"defer job %d","cat":"placement","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,`+
					`"args":{"window":%d,"job":%d,"free_candidates":%d,"deferrals":%d}}`,
					r.A, ts(r.At), schedLane, r.Window, r.A, r.B, r.C))
			}
		case KindAutoscale:
			emit(fmt.Sprintf(`{"name":%q,"cat":"autoscale","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,`+
				`"args":{"window":%d,"freq":%d}}`,
				nameOf(actionNames, r.A), ts(r.At), r.Node, r.Window, r.B))
		case KindLifecycle:
			emit(fmt.Sprintf(`{"name":%q,"cat":"lifecycle","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,`+
				`"args":{"window":%d}}`,
				nameOf(lifecycleNames, r.A)+"->"+nameOf(lifecycleNames, r.B), ts(r.At), r.Node, r.Window))
		case KindWindow:
			emit(fmt.Sprintf(`{"name":"window %d","cat":"window","ph":"i","s":"p","ts":%s,"pid":1,"tid":%d,`+
				`"args":{"pending":%d,"running":%d,"busy_nodes":%d}}`,
				r.Window, ts(r.At), schedLane, r.A, r.B, r.C))
		case KindReplayDrop:
			emit(fmt.Sprintf(`{"name":"trace ingest","cat":"replay","ph":"i","s":"p","ts":%s,"pid":1,"tid":%d,`+
				`"args":{"dropped_rows":%d,"defaulted_durations":%d,"jobs":%d}}`,
				ts(r.At), schedLane, r.A, r.B, r.C))
		case KindFault:
			emit(fmt.Sprintf(`{"name":%q,"cat":"fault","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,`+
				`"args":{"window":%d,"payload":%d}}`,
				nameOf(faultNames, r.A), ts(r.At), r.Node, r.Window, r.B))
		}
	})
	if err != nil {
		return err
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
