package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one fixed key/value pair on an instrument. Label sets are bound
// at registration, never at observation, so the record path touches no maps
// and no strings.
type Label struct {
	Key, Value string
}

// instKind discriminates registry instruments.
type instKind uint8

const (
	instCounter instKind = iota
	instGauge
	instHistogram
)

// instrument is the registry's shared bookkeeping for one metric.
type instrument struct {
	kind   instKind
	name   string
	help   string
	labels []Label
}

// id renders the Prometheus-style identity "name{k="v",...}" used for
// de-duplication, CSV headers, and the text exposition.
func (m *instrument) id() string {
	if len(m.labels) == 0 {
		return m.name
	}
	var sb strings.Builder
	sb.WriteString(m.name)
	sb.WriteByte('{')
	for i, l := range m.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing value.
type Counter struct {
	instrument
	v float64
}

// Inc adds 1.
//
//pliant:hotpath
func (c *Counter) Inc() { c.v++ }

// Add adds d (must be non-negative to keep Prometheus semantics).
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a value that goes up and down.
type Gauge struct {
	instrument
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bound cumulative histogram. Bounds are set at
// registration; Observe is a branch-free-allocation bucket walk (bounds are
// few on the instruments the scheduler registers).
type Histogram struct {
	instrument
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []uint64  // len(bounds)+1, last = overflow
	sum    float64
	n      uint64
}

// Observe records one value. Alloc-free.
//
//pliant:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Registry holds a run's instruments in registration order — the order every
// writer emits, so output bytes are deterministic — plus the window-boundary
// snapshots the CSV export renders.
type Registry struct {
	order []*instrument
	byID  map[string]interface{}

	counters   map[*instrument]*Counter
	gauges     map[*instrument]*Gauge
	histograms map[*instrument]*Histogram

	// Window-boundary snapshots: snapTimes[i] is the boundary instant in
	// seconds; snapRows[i] holds one value per scalar column (counters and
	// gauges in order, then each histogram's count and sum).
	snapTimes []float64
	snapRows  [][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:       make(map[string]interface{}),
		counters:   make(map[*instrument]*Counter),
		gauges:     make(map[*instrument]*Gauge),
		histograms: make(map[*instrument]*Histogram),
	}
}

// Counter registers (or returns the existing) counter with the given
// identity.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{instrument: instrument{kind: instCounter, name: name, help: help, labels: labels}}
	if got, ok := r.byID[c.id()]; ok {
		return got.(*Counter)
	}
	r.byID[c.id()] = c
	r.order = append(r.order, &c.instrument)
	r.counters[&c.instrument] = c
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{instrument: instrument{kind: instGauge, name: name, help: help, labels: labels}}
	if got, ok := r.byID[g.id()]; ok {
		return got.(*Gauge)
	}
	r.byID[g.id()] = g
	r.order = append(r.order, &g.instrument)
	r.gauges[&g.instrument] = g
	return g
}

// Histogram registers (or returns the existing) histogram with the given
// ascending upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := &Histogram{
		instrument: instrument{kind: instHistogram, name: name, help: help, labels: labels},
		bounds:     append([]float64(nil), bounds...),
	}
	if got, ok := r.byID[h.id()]; ok {
		return got.(*Histogram)
	}
	sort.Float64s(h.bounds)
	h.counts = make([]uint64, len(h.bounds)+1)
	r.byID[h.id()] = h
	r.order = append(r.order, &h.instrument)
	r.histograms[&h.instrument] = h
	return h
}

// Snapshot records the current value of every instrument at boundary instant
// tSec — one row of the CSV export. Not a hot path (once per scheduling
// window); it allocates the row.
func (r *Registry) Snapshot(tSec float64) {
	row := make([]float64, 0, r.columns())
	for _, m := range r.order {
		switch m.kind {
		case instCounter:
			row = append(row, r.counters[m].v)
		case instGauge:
			row = append(row, r.gauges[m].v)
		case instHistogram:
			h := r.histograms[m]
			row = append(row, float64(h.n), h.sum)
		}
	}
	r.snapTimes = append(r.snapTimes, tSec)
	r.snapRows = append(r.snapRows, row)
}

// Snapshots returns how many boundary snapshots were taken.
func (r *Registry) Snapshots() int { return len(r.snapTimes) }

// columns counts the scalar columns a snapshot row carries.
func (r *Registry) columns() int {
	n := 0
	for _, m := range r.order {
		if m.kind == instHistogram {
			n += 2
		} else {
			n++
		}
	}
	return n
}
