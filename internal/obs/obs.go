// Package obs is the observability layer of the online scheduler: a
// deterministic, alloc-free-on-the-hot-path subsystem that makes every
// placement, frequency-downscale, park/wake, and admission decision auditable
// back to the telemetry window that triggered it. Pliant's core claim — that
// approximation reclaims QoS headroom without violating SLAs — is only
// checkable if those decisions stop vanishing into aggregate Result fields.
//
// The package carries three channels, with sharply different determinism
// contracts:
//
//   - The virtual-time event tracer (Tracer): ring-buffered typed records
//     emitted from the scheduler's serial coordinator sections, timestamped
//     in simulated time. Because every record is emitted from code that runs
//     in global node order regardless of the shard count, the trace bytes
//     are identical for shards=1/2/4 — golden tests pin them. Exportable as
//     Chrome trace-event JSON (WriteChromeTrace), loadable in Perfetto as a
//     timeline of the simulated day with one lane per node.
//
//   - The metrics registry (Registry): counters, gauges, and histograms with
//     fixed label sets, snapshotted at scheduling-window boundaries and
//     written as Prometheus text format (WriteMetricsProm) and CSV
//     (WriteMetricsCSV). Values derive from virtual-time quantities only, so
//     these bytes are deterministic too.
//
//   - The wall-clock profiler (Profiler): per-shard episode runtime and
//     barrier-wait accounting in real nanoseconds. Wall time is inherently
//     non-deterministic, so this channel never feeds the tracer, the
//     registry, or any simulation decision; it surfaces through
//     Result.ShardProfiles and pliant-bench -json only.
//
// A nil *Observer keeps everything off: the scheduler's hot path sees one
// pointer test and runs byte-identical to an obs-free build.
package obs

// Options sizes an Observer.
type Options struct {
	// TraceCapacity bounds the tracer ring (records kept; the newest win on
	// overflow). 0 means DefaultTraceCapacity.
	TraceCapacity int
}

// DefaultTraceCapacity holds a full diurnal day of a mid-size cluster's
// decision records with comfortable headroom.
const DefaultTraceCapacity = 1 << 16

// Observer bundles the three observability channels one scheduling run
// feeds. All fields are non-nil after New; consumers that want only one
// channel still pay nothing for the others (emission is guarded per call
// site, and unused channels just stay empty).
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
	Profile *Profiler
}

// New returns an Observer with all three channels ready.
func New(opts Options) *Observer {
	capacity := opts.TraceCapacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Observer{
		Tracer:  NewTracer(capacity),
		Metrics: NewRegistry(),
		Profile: &Profiler{},
	}
}
