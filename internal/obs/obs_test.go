package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRingOrderAndOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Record{At: int64(i), Kind: KindWindow, Node: -1, A: int64(i)})
	}
	if tr.Total() != 10 || tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("total=%d len=%d dropped=%d", tr.Total(), tr.Len(), tr.Dropped())
	}
	var got []int64
	tr.Records(func(r Record) { got = append(got, r.A) })
	want := []int64{6, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v", got, want)
		}
	}
	if tr.CountOf(KindWindow) != 10 {
		t.Fatalf("CountOf(window) = %d", tr.CountOf(KindWindow))
	}
}

// TestTracerRecordsSince covers the incremental drain behind the serving
// layer's SSE feed: a cursor that trails inside the retained window resumes
// exactly where it left off; one that trails past an overwrite skips the
// lost records but keeps emission order; a fresh cursor re-reads nothing.
func TestTracerRecordsSince(t *testing.T) {
	tr := NewTracer(4)
	emit := func(from, to int) {
		for i := from; i < to; i++ {
			tr.Emit(Record{At: int64(i), Kind: KindWindow, Node: -1, A: int64(i)})
		}
	}
	drain := func(cursor uint64) (got []int64, next uint64) {
		next = tr.RecordsSince(cursor, func(r Record) { got = append(got, r.A) })
		return got, next
	}

	emit(0, 3) // not yet wrapped
	got, cursor := drain(0)
	if want := []int64{0, 1, 2}; !int64sEqual(got, want) || cursor != 3 {
		t.Fatalf("unwrapped drain = %v cursor %d, want %v cursor 3", got, cursor, want)
	}
	if got, next := drain(cursor); got != nil || next != cursor {
		t.Fatalf("caught-up drain = %v cursor %d, want none", got, next)
	}

	emit(3, 6) // total 6 > cap 4: wrapped, records 0..1 overwritten
	got, cursor = drain(cursor)
	if want := []int64{3, 4, 5}; !int64sEqual(got, want) || cursor != 6 {
		t.Fatalf("incremental drain = %v cursor %d, want %v cursor 6", got, cursor, want)
	}

	emit(6, 16) // lap the ring: a cursor at 6 lost 6..11
	got, cursor = drain(cursor)
	if want := []int64{12, 13, 14, 15}; !int64sEqual(got, want) || cursor != 16 {
		t.Fatalf("lagging drain = %v cursor %d, want %v cursor 16", got, cursor, want)
	}
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTracerEmitAllocFree pins the record path at zero allocations — the
// tracer rides the scheduler's per-decision path, so a single allocation per
// record would dominate obs-on runs.
func TestTracerEmitAllocFree(t *testing.T) {
	tr := NewTracer(1 << 10)
	r := Record{At: 5, Kind: KindPlacement, Node: 2, Window: 1, A: 7, B: 3, C: 0}
	allocs := testing.AllocsPerRun(2000, func() {
		tr.Emit(r)
	})
	if allocs != 0 {
		t.Fatalf("Tracer.Emit allocates %v/op, want 0", allocs)
	}
}

// TestRegistryObserveAllocFree pins counter increments and histogram
// observations — the metrics record path — at zero allocations.
func TestRegistryObserveAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pliant_test_total", "test counter")
	g := reg.Gauge("pliant_test_depth", "test gauge")
	h := reg.Histogram("pliant_test_ratio", "test histogram", []float64{0.5, 1, 2})
	allocs := testing.AllocsPerRun(2000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("metrics record path allocates %v/op, want 0", allocs)
	}
}

func TestRegistryDedupeAndHistogram(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", Label{"policy", "first-fit"})
	b := reg.Counter("x_total", "x", Label{"policy", "first-fit"})
	if a != b {
		t.Fatal("same identity registered twice")
	}
	a.Inc()
	b.Inc() // same underlying counter: totals fold together
	if c := reg.Counter("x_total", "x", Label{"policy", "best-fit"}); c == a {
		t.Fatal("distinct label sets collapsed")
	}

	h := reg.Histogram("r", "ratios", []float64{1, 2})
	for _, v := range []float64{0.5, 1.0, 1.5, 3.0} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 6.0 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	var buf bytes.Buffer
	if err := WriteMetricsProm(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`x_total{policy="first-fit"} 2`,
		`r_bucket{le="1"} 2`,
		`r_bucket{le="2"} 3`,
		`r_bucket{le="+Inf"} 4`,
		"r_sum 6",
		"r_count 4",
		"# TYPE r histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsCSVSnapshots(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "jobs", Label{"policy", "a,b"}) // comma forces quoting
	h := reg.Histogram("wait", "waits", []float64{1})
	c.Inc()
	h.Observe(0.5)
	reg.Snapshot(10)
	c.Inc()
	reg.Snapshot(20)

	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, reg); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2 snapshots", len(rows))
	}
	wantHeader := []string{"t_seconds", `jobs_total{policy="a,b"}`, "wait_count", "wait_sum"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Fatalf("header %v, want %v", rows[0], wantHeader)
		}
	}
	if rows[1][1] != "1" || rows[2][1] != "2" {
		t.Errorf("counter snapshots %v / %v", rows[1], rows[2])
	}
	if rows[1][2] != "1" || rows[1][3] != "0.5" {
		t.Errorf("histogram snapshot %v", rows[1])
	}
}

// TestChromeTraceDeterministicAndLoadable checks the Chrome trace export is
// valid JSON with the expected event shapes, and byte-identical across
// writes.
func TestChromeTraceDeterministicAndLoadable(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit(Record{At: 0, Kind: KindReplayDrop, Node: -1, A: 3, B: 1, C: 16})
	tr.Emit(Record{At: 1e9, Kind: KindEpisode, Node: 0, Window: 0, A: 5e8, B: 1, C: 1200})
	tr.Emit(Record{At: 2e9, Kind: KindPlacement, Node: 1, Window: 0, A: 4, B: 3, C: 0})
	tr.Emit(Record{At: 2e9, Kind: KindPlacement, Node: -1, Window: 0, A: 5, B: 2, C: 1})
	tr.Emit(Record{At: 2e9, Kind: KindAutoscale, Node: 1, Window: 0, A: 2, B: 1})
	tr.Emit(Record{At: 2e9, Kind: KindLifecycle, Node: 1, Window: 0, A: 0, B: 1})
	tr.Emit(Record{At: 2e9, Kind: KindWindow, Node: -1, Window: 1, A: 1, B: 4, C: 2})

	meta := TraceMeta{NodeNames: []string{"cache-1", "web-1"}, Policy: "telemetry-aware"}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, tr, meta); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, tr, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Chrome trace bytes differ across writes")
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	byName := map[string]bool{}
	for _, e := range doc.TraceEvents {
		byName[e.Name] = true
		if e.Name == "episode" {
			if e.Ph != "X" || e.Ts != 1e6 || e.Dur != 5e5 {
				t.Errorf("episode event = %+v", e)
			}
		}
		if e.Name == "defer job 5" && e.Tid != 2 {
			t.Errorf("deferral not on the scheduler lane: %+v", e)
		}
	}
	for _, want := range []string{
		"episode", "place job 4", "defer job 5", "setfreq",
		"active->draining", "window 1", "trace ingest", "thread_name",
	} {
		if !byName[want] {
			t.Errorf("trace missing %q event", want)
		}
	}
}

func TestProfilerAccounting(t *testing.T) {
	var p Profiler
	p.Ensure(2)
	p.Ensure(2)
	p.AddEpisode(0, 3, 100)
	p.AddEpisode(1, 1, 40)
	p.AddBarrierWait(1, 60)
	p.AddBarrierWait(0, -5) // clamped
	sh := p.Shards()
	if len(sh) != 2 {
		t.Fatalf("shards = %d", len(sh))
	}
	if sh[0].Episodes != 3 || sh[0].EpisodeNs != 100 || sh[0].BarrierWaitNs != 0 {
		t.Errorf("shard 0 = %+v", sh[0])
	}
	if got := sh[1].BarrierWaitFrac(); got != 0.6 {
		t.Errorf("BarrierWaitFrac = %v, want 0.6", got)
	}
}

func TestNewObserverDefaults(t *testing.T) {
	o := New(Options{})
	if o.Tracer == nil || o.Metrics == nil || o.Profile == nil {
		t.Fatal("New left a channel nil")
	}
	if cap(o.Tracer.ring) != DefaultTraceCapacity {
		t.Fatalf("default capacity = %d", cap(o.Tracer.ring))
	}
}
