package obs

// Profiler is the wall-clock channel: where the virtual-time tracer answers
// "what did the scheduler decide", the profiler answers "where did the real
// CPU time go" — per-shard episode runtime and merge-barrier waits, the
// numbers that make a sharded run's (non-)speedup diagnosable. Wall time is
// non-deterministic by nature, so nothing here feeds the tracer, the metrics
// registry, or any simulation decision: golden bytes stay pinned while the
// profile varies run to run.
//
// Writers are partitioned: shard goroutines call AddEpisode on their own
// slot concurrently; the coordinator calls AddBarrierWait serially at the
// barrier. No locks, no allocation after Ensure.
type Profiler struct {
	shards []ShardProfile
}

// ShardProfile is one shard's wall-clock account. On the single-engine path
// there is exactly one (shard 0), covering the worker pool.
type ShardProfile struct {
	// Shard is the shard index.
	Shard int
	// Windows counts scheduling windows the shard advanced through.
	Windows int
	// Episodes counts node-window episodes the shard executed.
	Episodes int
	// EpisodeNs is wall nanoseconds spent running (and folding) episodes.
	EpisodeNs int64
	// BarrierWaitNs is wall nanoseconds the shard sat idle at the window
	// merge barrier waiting for the slowest shard — the direct measure of
	// shard imbalance, and the cost pipelining would reclaim.
	BarrierWaitNs int64
}

// BarrierWaitFrac is the shard's idle share of its total wall time — 0 for a
// perfectly balanced shard, approaching 1 for one that only ever waits.
func (p ShardProfile) BarrierWaitFrac() float64 {
	total := p.EpisodeNs + p.BarrierWaitNs
	if total <= 0 {
		return 0
	}
	return float64(p.BarrierWaitNs) / float64(total)
}

// Ensure sizes the profiler for n shards (idempotent).
func (p *Profiler) Ensure(n int) {
	for len(p.shards) < n {
		p.shards = append(p.shards, ShardProfile{Shard: len(p.shards)})
	}
}

// AddEpisode charges wall nanoseconds of episode work (episodes ran within
// it) to a shard. Safe to call concurrently from distinct shards.
func (p *Profiler) AddEpisode(shard, episodes int, ns int64) {
	s := &p.shards[shard]
	s.Windows++
	s.Episodes += episodes
	s.EpisodeNs += ns
}

// AddBarrierWait charges wall nanoseconds of barrier idling to a shard.
// Coordinator-only (serial).
func (p *Profiler) AddBarrierWait(shard int, ns int64) {
	if ns > 0 {
		p.shards[shard].BarrierWaitNs += ns
	}
}

// Shards returns a copy of the per-shard accounts.
func (p *Profiler) Shards() []ShardProfile {
	return append([]ShardProfile(nil), p.shards...)
}
