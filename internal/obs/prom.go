package obs

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ftoa renders a float the same way everywhere in the package: shortest
// round-trip form, so outputs are deterministic and diff-friendly.
func ftoa(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetricsProm writes the registry's final values in the Prometheus text
// exposition format (# HELP / # TYPE comments, histogram le-buckets with
// _sum and _count). Instruments appear in registration order and floats in
// shortest round-trip form, so equal runs produce identical bytes.
func WriteMetricsProm(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.order {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
		switch m.kind {
		case instCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n", m.name)
			fmt.Fprintf(bw, "%s %s\n", m.id(), ftoa(r.counters[m].v))
		case instGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", m.name)
			fmt.Fprintf(bw, "%s %s\n", m.id(), ftoa(r.gauges[m].v))
		case instHistogram:
			h := r.histograms[m]
			fmt.Fprintf(bw, "# TYPE %s histogram\n", m.name)
			cum := uint64(0)
			for i, ub := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(bw, "%s %d\n", bucketID(m, ftoa(ub)), cum)
			}
			cum += h.counts[len(h.bounds)]
			fmt.Fprintf(bw, "%s %d\n", bucketID(m, "+Inf"), cum)
			fmt.Fprintf(bw, "%s %s\n", suffixedID(m, "_sum"), ftoa(h.sum))
			fmt.Fprintf(bw, "%s %d\n", suffixedID(m, "_count"), h.n)
		}
	}
	return bw.Flush()
}

// bucketID renders name_bucket{labels...,le="ub"}.
func bucketID(m *instrument, ub string) string {
	s := m.name + "_bucket{"
	for _, l := range m.labels {
		s += fmt.Sprintf("%s=%q,", l.Key, l.Value)
	}
	return s + fmt.Sprintf("le=%q}", ub)
}

// suffixedID renders name<suffix>{labels...} for _sum/_count series.
func suffixedID(m *instrument, suffix string) string {
	base := instrument{name: m.name + suffix, labels: m.labels}
	return base.id()
}

// WriteMetricsCSV writes the window-boundary snapshots as a time-indexed CSV
// table: a t_seconds column, then one column per counter/gauge (by
// Prometheus identity) and two per histogram (identity_count, identity_sum),
// in registration order. One row per Snapshot call. Label-bearing identities
// contain commas and quotes, so cells go through a real CSV encoder.
func WriteMetricsCSV(w io.Writer, r *Registry) error {
	cw := csv.NewWriter(w)
	header := []string{"t_seconds"}
	for _, m := range r.order {
		if m.kind == instHistogram {
			header = append(header, m.id()+"_count", m.id()+"_sum")
		} else {
			header = append(header, m.id())
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, t := range r.snapTimes {
		row[0] = strconv.FormatFloat(t, 'f', -1, 64)
		for j, v := range r.snapRows[i] {
			row[j+1] = strconv.FormatFloat(v, 'f', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
