package obs

// Kind discriminates tracer records.
type Kind uint8

// The traced decision kinds. Payload fields A/B/C are kind-specific; see
// each constant's comment. All quantities are virtual-time or count-valued —
// never wall-clock — so traces are byte-deterministic.
const (
	// KindWindow marks a scheduling-window boundary. Node is unused (-1).
	// A = pending-queue depth, B = running jobs, C = busy nodes this window.
	KindWindow Kind = iota + 1

	// KindEpisode is one node-window colocation episode. At is the window
	// start; Node the node. A = episode span in virtual ns, B = 1 if the
	// episode's telemetry met QoS, C = episode joules in microjoules
	// (truncated; 0 without an energy model).
	KindEpisode

	// KindPlacement is one policy decision over one pending job. Node is the
	// chosen node, or -1 for a deferral. A = job ID, B = candidate nodes the
	// policy saw with free slots (so B-1 is the rejected-candidate count on
	// a placement), C = the job's deferral count at decision time.
	KindPlacement

	// KindAutoscale is one applied autoscaler verdict. Node is the target.
	// A = the action kind (autoscale.ActionKind numeric value), B = the
	// target frequency state for SetFreq actions (else 0).
	KindAutoscale

	// KindLifecycle is one node lifecycle transition. Node is the node.
	// A = the state left, B = the state entered (autoscale.State values).
	KindLifecycle

	// KindReplayDrop summarizes trace-ingestion losses for a replayed run,
	// emitted once at run start. Node is unused (-1). A = rows dropped at
	// parse time, B = rows whose duration was defaulted, C = jobs replayed.
	KindReplayDrop

	// KindFault is one applied fault-injection event. Node is the subject.
	// A = the event kind (fault.EventKind numeric value), B = kind-specific:
	// jobs requeued for a crash, condition length in virtual ms for a
	// telemetry dropout or straggler window, 0 for a recovery.
	KindFault
)

// String names the kind for renderers.
func (k Kind) String() string {
	switch k {
	case KindWindow:
		return "window"
	case KindEpisode:
		return "episode"
	case KindPlacement:
		return "placement"
	case KindAutoscale:
		return "autoscale"
	case KindLifecycle:
		return "lifecycle"
	case KindReplayDrop:
		return "replay-drop"
	case KindFault:
		return "fault"
	default:
		return "unknown"
	}
}

// kindCount sizes per-kind counters (largest kind value + 1).
const kindCount = int(KindFault) + 1

// Record is one fixed-size tracer entry. The struct stays flat (no pointers,
// no strings) so a ring of them never allocates on the record path and the
// whole buffer stays cache-friendly.
type Record struct {
	// At is the record's virtual-time instant in nanoseconds. For span
	// records (KindEpisode) it is the span's start.
	At int64

	Kind Kind

	// Node is the subject node index, or -1 when the record is not
	// node-scoped.
	Node int32

	// Window is the scheduling-window index the record belongs to.
	Window int32

	// A, B, C are the kind-specific payload; see the Kind constants.
	A, B, C int64
}

// Tracer is a bounded ring of Records. Emit is alloc-free and O(1); on
// overflow the oldest records are overwritten (the newest tail of a run is
// the interesting part of a truncated trace) and Dropped counts the loss —
// deterministically, because emission order is deterministic.
type Tracer struct {
	ring   []Record
	n      uint64 // total records ever emitted
	byKind [kindCount]uint64
}

// NewTracer returns a tracer keeping at most capacity records.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Record, 0, capacity)}
}

// Emit appends one record, overwriting the oldest if the ring is full.
//
//pliant:hotpath
func (t *Tracer) Emit(r Record) {
	if int(r.Kind) < kindCount {
		t.byKind[r.Kind]++
	}
	if len(t.ring) < cap(t.ring) {
		//pliant:allow hotpathalloc — cap-guarded: the ring is preallocated at construction and this append never grows it
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.n%uint64(cap(t.ring))] = r
	}
	t.n++
}

// Len returns how many records the ring currently holds.
func (t *Tracer) Len() int { return len(t.ring) }

// Total returns how many records were ever emitted.
func (t *Tracer) Total() uint64 { return t.n }

// Dropped returns how many records the ring overwrote.
func (t *Tracer) Dropped() uint64 { return t.n - uint64(len(t.ring)) }

// CountOf returns how many records of the given kind were emitted (including
// any later overwritten).
func (t *Tracer) CountOf(k Kind) uint64 {
	if int(k) >= kindCount {
		return 0
	}
	return t.byKind[k]
}

// RecordsSince calls fn over the still-retained records emitted at or after
// the cursor (a prior Total value), in emission order, and returns the new
// cursor. Incremental consumers — the serving layer's SSE drain — call it
// once per window boundary: records overwritten between drains are simply
// gone (Dropped counts them), so a lagging consumer loses the oldest
// records, never the ordering of the ones it gets.
func (t *Tracer) RecordsSince(cursor uint64, fn func(Record)) uint64 {
	if cursor >= t.n {
		return t.n
	}
	oldest := t.n - uint64(len(t.ring))
	if cursor < oldest {
		cursor = oldest
	}
	if len(t.ring) > 0 {
		base := t.n % uint64(cap(t.ring)) // write cursor == slot of the oldest retained record when wrapped
		for i := cursor; i < t.n; i++ {
			if t.n <= uint64(len(t.ring)) {
				fn(t.ring[i])
			} else {
				fn(t.ring[(base+(i-oldest))%uint64(len(t.ring))])
			}
		}
	}
	return t.n
}

// Records calls fn over the retained records in emission order.
func (t *Tracer) Records(fn func(Record)) {
	if t.n <= uint64(len(t.ring)) {
		for _, r := range t.ring {
			fn(r)
		}
		return
	}
	// Wrapped: the oldest retained record sits at the write cursor.
	start := int(t.n % uint64(cap(t.ring)))
	for i := 0; i < len(t.ring); i++ {
		fn(t.ring[(start+i)%len(t.ring)])
	}
}
