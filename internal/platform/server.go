// Package platform models the shared server hardware that interactive
// services and approximate applications are colocated on: physical cores,
// the shared last-level cache, memory bandwidth, and the NIC. It reproduces
// the experimental platform of the paper's Table 1 (dual-socket Xeon E5-2699
// v4) and the paper's allocation discipline: a single socket hosts the
// colocation, a few cores are dedicated to network interrupt handling, and
// the remaining cores are divided among tenants via core pinning.
package platform

import (
	"fmt"
	"sort"
	"strings"
)

// Spec describes a server model. All capacities refer to one socket, since
// the paper pins the entire colocation to a single socket to avoid NUMA
// effects.
type Spec struct {
	Name string

	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	BaseGHz        float64
	TurboGHz       float64
	L1KB           int
	L2KB           int
	LLCMB          float64 // shared last-level cache per socket
	LLCWays        int
	MemoryGB       int
	MemoryMHz      int
	MemBWGBs       float64 // achievable memory bandwidth per socket
	DiskTB         float64
	DiskRPM        int
	NetworkGbps    float64
	IRQCores       int // cores dedicated to soft-irq handling (paper: 6)
}

// TablePlatform returns the paper's Table 1 platform: Intel Xeon E5-2699 v4,
// 2 sockets × 22 cores × 2 threads, 55MB 20-way LLC, 128GB DDR4-2400, 1TB
// 7200RPM disk, 10Gbps network. Memory bandwidth is the nominal 4-channel
// DDR4-2400 figure (~76.8 GB/s/socket), derated to a realistic ~65 GB/s
// achievable.
func TablePlatform() Spec {
	return Spec{
		Name:           "Intel Xeon E5-2699 v4",
		Sockets:        2,
		CoresPerSocket: 22,
		ThreadsPerCore: 2,
		BaseGHz:        2.2,
		TurboGHz:       3.6,
		L1KB:           32,
		L2KB:           256,
		LLCMB:          55,
		LLCWays:        20,
		MemoryGB:       128,
		MemoryMHz:      2400,
		MemBWGBs:       65,
		DiskTB:         1,
		DiskRPM:        7200,
		NetworkGbps:    10,
		IRQCores:       6,
	}
}

// SmallPlatform returns a scaled-down server used by the fast test/bench
// profile: same architecture ratios, fewer cores, so scenarios simulate
// proportionally fewer requests. Load arithmetic is unchanged because all
// loads are expressed as fractions of measured saturation.
func SmallPlatform() Spec {
	s := TablePlatform()
	s.Name = "scaled " + s.Name
	s.CoresPerSocket = 12
	s.LLCMB = 30
	s.MemBWGBs = 36
	s.IRQCores = 2
	return s
}

// UsableCores returns the number of cores available to tenants on the
// colocation socket (one socket minus irq cores).
func (s Spec) UsableCores() int {
	n := s.CoresPerSocket - s.IRQCores
	if n < 0 {
		return 0
	}
	return n
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Sockets < 1:
		return fmt.Errorf("platform: %q needs at least one socket", s.Name)
	case s.CoresPerSocket < 1:
		return fmt.Errorf("platform: %q needs at least one core per socket", s.Name)
	case s.IRQCores < 0 || s.IRQCores >= s.CoresPerSocket:
		return fmt.Errorf("platform: %q irq cores %d out of range", s.Name, s.IRQCores)
	case s.LLCMB <= 0:
		return fmt.Errorf("platform: %q needs positive LLC capacity", s.Name)
	case s.MemBWGBs <= 0:
		return fmt.Errorf("platform: %q needs positive memory bandwidth", s.Name)
	}
	return nil
}

// TenantID identifies a colocated workload on a server.
type TenantID string

// Allocation tracks which cores each tenant owns on the colocation socket.
// Core identity matters only for accounting; scheduling treats a tenant's
// cores as fungible workers, exactly as cpuset pinning does at the modeled
// granularity.
type Allocation struct {
	spec   Spec
	counts map[TenantID]int
	order  []TenantID
	used   int // running sum of counts, so Free is O(1)
}

// NewAllocation returns an empty allocation over spec's usable cores.
func NewAllocation(spec Spec) (*Allocation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Allocation{spec: spec, counts: make(map[TenantID]int)}, nil
}

// Spec returns the server spec backing this allocation.
func (a *Allocation) Spec() Spec { return a.spec }

// Free returns the number of unassigned cores. The used total is maintained
// incrementally, so this is O(1) — it sits on the controller's
// reclaim/return path.
func (a *Allocation) Free() int {
	return a.spec.UsableCores() - a.used
}

// Cores returns the number of cores tenant currently owns.
func (a *Allocation) Cores(t TenantID) int { return a.counts[t] }

// Tenants returns tenant IDs in registration order.
func (a *Allocation) Tenants() []TenantID {
	return append([]TenantID(nil), a.order...)
}

// Grant gives n additional cores to tenant, registering it if new.
func (a *Allocation) Grant(t TenantID, n int) error {
	if n < 0 {
		return fmt.Errorf("platform: negative grant %d to %s", n, t)
	}
	if n > a.Free() {
		return fmt.Errorf("platform: granting %d cores to %s exceeds %d free", n, t, a.Free())
	}
	if _, ok := a.counts[t]; !ok {
		a.order = append(a.order, t)
	}
	a.counts[t] += n
	a.used += n
	return nil
}

// Revoke takes n cores away from tenant. It fails rather than leave a tenant
// with negative cores; revoking a tenant's last core is allowed (the paper
// reclaims cores one at a time but never models suspending the app entirely —
// callers enforce their own floor).
func (a *Allocation) Revoke(t TenantID, n int) error {
	if n < 0 {
		return fmt.Errorf("platform: negative revoke %d from %s", n, t)
	}
	if a.counts[t] < n {
		return fmt.Errorf("platform: revoking %d cores from %s which has %d", n, t, a.counts[t])
	}
	a.counts[t] -= n
	a.used -= n
	return nil
}

// Move transfers n cores from one tenant to another atomically.
func (a *Allocation) Move(from, to TenantID, n int) error {
	if err := a.Revoke(from, n); err != nil {
		return err
	}
	if err := a.Grant(to, n); err != nil {
		// Roll back; Grant can only fail on bookkeeping bugs since Revoke
		// freed exactly n cores.
		a.counts[from] += n
		a.used += n
		return err
	}
	return nil
}

// FairShare splits the usable cores evenly across the given tenants (the
// paper's starting state: "a fair allocation of cores"). Remainder cores go
// to the earliest tenants. Existing assignments are replaced.
func (a *Allocation) FairShare(tenants ...TenantID) error {
	if len(tenants) == 0 {
		return fmt.Errorf("platform: FairShare needs at least one tenant")
	}
	seen := make(map[TenantID]bool, len(tenants))
	for _, t := range tenants {
		if seen[t] {
			return fmt.Errorf("platform: duplicate tenant %s", t)
		}
		seen[t] = true
	}
	a.counts = make(map[TenantID]int, len(tenants))
	a.order = append([]TenantID(nil), tenants...)
	a.used = 0
	total := a.spec.UsableCores()
	base := total / len(tenants)
	rem := total % len(tenants)
	for i, t := range tenants {
		c := base
		if i < rem {
			c++
		}
		a.counts[t] = c
		a.used += c
	}
	return nil
}

// Snapshot returns a stable-ordered copy of the per-tenant core counts.
func (a *Allocation) Snapshot() map[TenantID]int {
	out := make(map[TenantID]int, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}

// String renders the allocation compactly for traces and logs.
func (a *Allocation) String() string {
	ids := append([]TenantID(nil), a.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteString("cores{")
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", id, a.counts[id])
	}
	fmt.Fprintf(&b, " free=%d}", a.Free())
	return b.String()
}
