package platform

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTablePlatformMatchesPaper(t *testing.T) {
	s := TablePlatform()
	// Table 1 of the paper.
	if s.Sockets != 2 {
		t.Errorf("Sockets = %d, want 2", s.Sockets)
	}
	if s.CoresPerSocket != 22 {
		t.Errorf("CoresPerSocket = %d, want 22", s.CoresPerSocket)
	}
	if s.ThreadsPerCore != 2 {
		t.Errorf("ThreadsPerCore = %d, want 2", s.ThreadsPerCore)
	}
	if s.BaseGHz != 2.2 || s.TurboGHz != 3.6 {
		t.Errorf("frequency = %v/%v, want 2.2/3.6", s.BaseGHz, s.TurboGHz)
	}
	if s.LLCMB != 55 || s.LLCWays != 20 {
		t.Errorf("LLC = %vMB/%d-way, want 55MB/20-way", s.LLCMB, s.LLCWays)
	}
	if s.MemoryGB != 128 || s.MemoryMHz != 2400 {
		t.Errorf("memory = %dGB@%d, want 128GB@2400", s.MemoryGB, s.MemoryMHz)
	}
	if s.NetworkGbps != 10 {
		t.Errorf("network = %v, want 10Gbps", s.NetworkGbps)
	}
	if s.IRQCores != 6 {
		t.Errorf("IRQCores = %d, want 6 (paper Sec. 5)", s.IRQCores)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Table 1 platform invalid: %v", err)
	}
	if s.UsableCores() != 16 {
		t.Errorf("UsableCores = %d, want 22-6=16", s.UsableCores())
	}
}

func TestSmallPlatformValid(t *testing.T) {
	s := SmallPlatform()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.UsableCores() <= 0 {
		t.Fatal("small platform has no usable cores")
	}
	if s.UsableCores() >= TablePlatform().UsableCores() {
		t.Fatal("small platform should be smaller than the paper platform")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := TablePlatform()
	cases := map[string]func(*Spec){
		"no sockets":   func(s *Spec) { s.Sockets = 0 },
		"no cores":     func(s *Spec) { s.CoresPerSocket = 0 },
		"irq negative": func(s *Spec) { s.IRQCores = -1 },
		"irq all":      func(s *Spec) { s.IRQCores = s.CoresPerSocket },
		"no llc":       func(s *Spec) { s.LLCMB = 0 },
		"no bw":        func(s *Spec) { s.MemBWGBs = 0 },
	}
	for name, mutate := range cases {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", name)
		}
	}
}

func TestAllocationGrantRevoke(t *testing.T) {
	a, err := NewAllocation(TablePlatform())
	if err != nil {
		t.Fatal(err)
	}
	total := a.Spec().UsableCores()
	if a.Free() != total {
		t.Fatalf("Free = %d, want %d", a.Free(), total)
	}
	if err := a.Grant("svc", 8); err != nil {
		t.Fatal(err)
	}
	if err := a.Grant("app", 8); err != nil {
		t.Fatal(err)
	}
	if a.Cores("svc") != 8 || a.Cores("app") != 8 {
		t.Fatalf("cores: svc=%d app=%d", a.Cores("svc"), a.Cores("app"))
	}
	if a.Free() != total-16 {
		t.Fatalf("Free = %d", a.Free())
	}
	if err := a.Grant("x", a.Free()+1); err == nil {
		t.Fatal("overcommitting grant succeeded")
	}
	if err := a.Revoke("app", 3); err != nil {
		t.Fatal(err)
	}
	if a.Cores("app") != 5 {
		t.Fatalf("app cores = %d, want 5", a.Cores("app"))
	}
	if err := a.Revoke("app", 6); err == nil {
		t.Fatal("over-revoke succeeded")
	}
	if err := a.Revoke("app", -1); err == nil {
		t.Fatal("negative revoke succeeded")
	}
	if err := a.Grant("app", -1); err == nil {
		t.Fatal("negative grant succeeded")
	}
}

func TestAllocationMove(t *testing.T) {
	a, _ := NewAllocation(TablePlatform())
	if err := a.FairShare("svc", "app"); err != nil {
		t.Fatal(err)
	}
	before := a.Cores("svc") + a.Cores("app")
	if err := a.Move("app", "svc", 1); err != nil {
		t.Fatal(err)
	}
	if a.Cores("svc")+a.Cores("app") != before {
		t.Fatal("Move changed total core count")
	}
	if err := a.Move("app", "svc", 1000); err == nil {
		t.Fatal("impossible Move succeeded")
	}
}

func TestFairShare(t *testing.T) {
	a, _ := NewAllocation(TablePlatform())
	if err := a.FairShare("svc", "a1", "a2"); err != nil {
		t.Fatal(err)
	}
	total := a.Spec().UsableCores()
	sum := 0
	counts := []int{a.Cores("svc"), a.Cores("a1"), a.Cores("a2")}
	for _, c := range counts {
		sum += c
	}
	if sum != total {
		t.Fatalf("fair share sums to %d, want %d", sum, total)
	}
	// No tenant differs from another by more than one core.
	for _, c := range counts {
		if c < total/3 || c > total/3+1 {
			t.Fatalf("unfair share: %v", counts)
		}
	}
	if a.Free() != 0 {
		t.Fatalf("Free = %d after fair share", a.Free())
	}
	if err := a.FairShare(); err == nil {
		t.Fatal("FairShare with no tenants succeeded")
	}
	if err := a.FairShare("x", "x"); err == nil {
		t.Fatal("FairShare with duplicate tenants succeeded")
	}
}

func TestTenantsOrderAndSnapshot(t *testing.T) {
	a, _ := NewAllocation(TablePlatform())
	_ = a.Grant("b", 1)
	_ = a.Grant("a", 2)
	ts := a.Tenants()
	if len(ts) != 2 || ts[0] != "b" || ts[1] != "a" {
		t.Fatalf("Tenants = %v, want registration order [b a]", ts)
	}
	snap := a.Snapshot()
	snap["b"] = 99
	if a.Cores("b") != 1 {
		t.Fatal("Snapshot aliases internal state")
	}
	if !strings.Contains(a.String(), "free=") {
		t.Fatalf("String() = %q", a.String())
	}
}

// Property: any sequence of grants/revokes keeps 0 <= used <= usable and
// per-tenant counts non-negative.
func TestAllocationInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a, _ := NewAllocation(SmallPlatform())
		tenants := []TenantID{"s", "x", "y"}
		for _, op := range ops {
			t := tenants[int(op)%len(tenants)]
			n := int(op/16)%4 + 1
			if op%2 == 0 {
				_ = a.Grant(t, n) // errors allowed; invariants must hold regardless
			} else {
				_ = a.Revoke(t, n)
			}
			used := 0
			for _, id := range tenants {
				c := a.Cores(id)
				if c < 0 {
					return false
				}
				used += c
			}
			if used > a.Spec().UsableCores() || a.Free() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
