package sched

import (
	"fmt"
	"testing"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/fault"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// energyCluster is the five-node cluster of the energy study: enough spare
// capacity that consolidation has nodes to park.
func energyCluster() []cluster.Node {
	return []cluster.Node{
		{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
		{Name: "web-1", Service: service.NGINX, MaxApps: 3},
		{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
		{Name: "cache-2", Service: service.Memcached, MaxApps: 3},
		{Name: "web-2", Service: service.NGINX, MaxApps: 3},
	}
}

// energyConfig is one compressed diurnal day over the five-node cluster with
// the Table 1 power model attached.
func energyConfig(seed uint64, pol Policy, as autoscale.Controller) Config {
	model := energy.ModelFor(platform.TablePlatform())
	shape, _ := workload.NewDiurnal(0.25, 120)
	return Config{
		Seed:       seed,
		Nodes:      energyCluster(),
		Policy:     pol,
		Horizon:    120 * sim.Second,
		Epoch:      10 * sim.Second,
		JobsPerSec: 0.10,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
		Energy:     &model,
		Autoscaler: as,
	}
}

// approxForWatts is the study's Pliant-native bundle: telemetry-aware
// placement, consolidation with a healthy reserve, and slack-funded
// frequency scaling.
func approxForWatts() autoscale.Controller {
	return autoscale.ApproxForWatts{
		Consolidate: autoscale.Consolidate{ReserveSlots: 6},
		LowWater:    0.6,
	}
}

// TestEnergyAccountingObservationOnly pins the invariant the golden suite
// depends on: attaching a power model (without an autoscaler) is pure
// observation — scheduling outcomes are identical to an energy-free run.
func TestEnergyAccountingObservationOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs; skipped in -short")
	}
	with := energyConfig(42, FirstFit{}, nil)
	without := with
	without.Energy = nil

	rw, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if rw.QoSMetFrac != ro.QoSMetFrac || rw.Arrived != ro.Arrived ||
		rw.Completed != ro.Completed || rw.MeanWaitSec != ro.MeanWaitSec {
		t.Fatalf("energy accounting perturbed scheduling:\nwith:    %+v\nwithout: %+v",
			rw, ro)
	}
	if rw.Joules <= 0 || rw.MeanWatts <= 0 {
		t.Fatalf("no energy accrued: joules=%v watts=%v", rw.Joules, rw.MeanWatts)
	}
	if ro.Joules != 0 || ro.NodeJoules != nil {
		t.Fatalf("energy-free run accrued energy: %+v", ro)
	}
	if len(rw.NodeJoules) != len(with.Nodes) {
		t.Fatalf("per-node ledger covers %d of %d nodes", len(rw.NodeJoules), len(with.Nodes))
	}
	sum := 0.0
	for _, ne := range rw.NodeJoules {
		if ne.Joules <= 0 {
			t.Errorf("node %s accrued no energy", ne.Node)
		}
		sum += ne.Joules
	}
	if diff := sum - rw.Joules; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("node ledger sums to %v, total %v", sum, rw.Joules)
	}
	for _, series := range []string{"watts.cluster", "nodes.active", "nodes.parked"} {
		if rw.Trace.Series(series).Len() == 0 {
			t.Errorf("series %q missing with energy on", series)
		}
		if ro.Trace.Series(series).Len() != 0 {
			t.Errorf("series %q present with energy off", series)
		}
	}
}

// TestEnergyRunsDeterministic pins byte determinism of the energy figures:
// two identical runs agree to the last bit, worker count included.
func TestEnergyRunsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs; skipped in -short")
	}
	cfg := energyConfig(7, TelemetryAware{}, approxForWatts())
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := cfg
	serial.Workers = 1
	c, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	key := func(r Result) string {
		s := fmt.Sprintf("%.17g|%.17g|%d|%d|%d", r.Joules, r.MeanWatts,
			r.ParkedNodeWindows, r.LowFreqNodeWindows, r.Wakes)
		for _, ne := range r.NodeJoules {
			s += fmt.Sprintf("|%s=%.17g", ne.Node, ne.Joules)
		}
		return s
	}
	if key(a) != key(b) {
		t.Fatalf("reruns disagree:\n%s\n%s", key(a), key(b))
	}
	if key(a) != key(c) {
		t.Fatalf("worker count perturbs energy:\n%s\n%s", key(a), key(c))
	}
}

// TestConsolidationParksIdleNodes starves the cluster of jobs: the
// consolidating autoscaler must park surplus nodes and spend measurably
// fewer joules than the static baseline, then reflect it in the ledger.
func TestConsolidationParksIdleNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs; skipped in -short")
	}
	static := energyConfig(3, FirstFit{}, nil)
	static.JobsPerSec = 0.01 // nearly idle day
	parked := energyConfig(3, FirstFit{}, autoscale.Consolidate{})
	parked.JobsPerSec = 0.01

	rs, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(parked)
	if err != nil {
		t.Fatal(err)
	}
	if rp.ParkedNodeWindows == 0 {
		t.Fatal("idle cluster parked nothing")
	}
	if rp.Joules >= 0.8*rs.Joules {
		t.Errorf("parking saved too little: %v J vs static %v J", rp.Joules, rs.Joules)
	}
	if rs.ParkedNodeWindows != 0 {
		t.Errorf("static run parked %d node-windows", rs.ParkedNodeWindows)
	}
}

// TestAutoscalerWakesUnderBacklog floods a consolidated cluster: parked
// nodes must wake (paying wake energy) and the queue must drain.
func TestAutoscalerWakesUnderBacklog(t *testing.T) {
	if testing.Short() {
		t.Skip("full run; skipped in -short")
	}
	cfg := energyConfig(5, FirstFit{}, autoscale.Consolidate{})
	// Quiet first half (nodes park), flash-crowd of jobs in the second.
	cfg.Arrivals = burstArrivals{quietSec: 60, gapSec: 2}
	cfg.JobsPerSec = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wakes == 0 {
		t.Fatal("backlog woke no nodes")
	}
	if res.Placed == 0 {
		t.Fatal("no jobs placed after wake")
	}
}

// burstArrivals is deterministic: nothing for quietSec, then a job every
// gapSec.
type burstArrivals struct {
	quietSec float64
	gapSec   float64
}

func (b burstArrivals) Next(*sim.RNG) sim.Duration {
	return sim.Duration(b.gapSec * float64(sim.Second))
}

func (b burstArrivals) Rate() float64 { return 1 / b.gapSec }

func (b burstArrivals) NextAt(_ *sim.RNG, now sim.Time) sim.Duration {
	if now.Seconds() < b.quietSec {
		return sim.Duration((b.quietSec - now.Seconds() + b.gapSec) * float64(sim.Second))
	}
	return sim.Duration(b.gapSec * float64(sim.Second))
}

// TestApproxForWattsHeadline is the subsystem's acceptance criterion: over a
// diurnal day, the approx-for-watts bundle meets QoS in at least the
// fraction of busy node-windows first-fit does, at measurably lower energy —
// the watts that approximation slack buys.
func TestApproxForWattsHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs; skipped in -short")
	}
	ff, err := Run(energyConfig(42, FirstFit{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	afw, err := Run(energyConfig(42, TelemetryAware{}, approxForWatts()))
	if err != nil {
		t.Fatal(err)
	}
	if afw.QoSMetFrac < ff.QoSMetFrac {
		t.Errorf("approx-for-watts QoS-met %.3f below first-fit %.3f", afw.QoSMetFrac, ff.QoSMetFrac)
	}
	if afw.Joules > 0.9*ff.Joules {
		t.Errorf("approx-for-watts energy %.0f J not measurably below first-fit %.0f J", afw.Joules, ff.Joules)
	}
	if afw.ParkedNodeWindows == 0 || afw.LowFreqNodeWindows == 0 {
		t.Errorf("savings without the mechanism: parked=%d lowfreq=%d",
			afw.ParkedNodeWindows, afw.LowFreqNodeWindows)
	}
}

// scriptedLifecycle parks a node at one boundary and wakes it at another —
// a pure function of the view's clock, so runs stay deterministic.
type scriptedLifecycle struct {
	node           int
	parkAt, wakeAt float64
}

func (scriptedLifecycle) Name() string { return "scripted" }

func (c scriptedLifecycle) Decide(v autoscale.View) []autoscale.Action {
	switch v.NowSec {
	case c.parkAt:
		return []autoscale.Action{{Kind: autoscale.Park, Node: c.node}}
	case c.wakeAt:
		return []autoscale.Action{{Kind: autoscale.Wake, Node: c.node}}
	}
	return nil
}

// wakingConfig is the two-node scenario of the waking-window tests: node 1
// is parked at t=10 and woken at t=30 under a model whose WakeDelay spans
// 2.5 scheduling windows (wakeAt = 55s, placeable from the t=60 boundary).
func wakingConfig(m *energy.Model) Config {
	return Config{
		Seed: 11,
		Nodes: []cluster.Node{
			{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
			{Name: "web-1", Service: service.NGINX, MaxApps: 3},
		},
		Policy:     FirstFit{},
		Horizon:    90 * sim.Second,
		Epoch:      10 * sim.Second,
		BaseLoad:   0.65,
		TimeScale:  32,
		Energy:     m,
		Autoscaler: scriptedLifecycle{node: 1, parkAt: 10, wakeAt: 30},
	}
}

// TestWakingNodeChargedWakeEnergyOnce pins the energy side of a wake that
// spans multiple window boundaries: the node pays the model's wake energy
// exactly once (at the Wake action, not per waking window), draws the idle
// floor for every window it spends waking, and the parked/waking windows
// land in the ledger analytically.
func TestWakingNodeChargedWakeEnergyOnce(t *testing.T) {
	m := energy.ModelFor(platform.TablePlatform())
	m.WakeDelay = 25 * sim.Second // 2.5 epochs: waking across 3 window accounts
	cfg := wakingConfig(&m)
	// No job ever arrives: node 1's whole ledger is analytic.
	cfg.Arrivals = burstArrivals{quietSec: 1e6, gapSec: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wakes != 1 {
		t.Fatalf("wakes = %d, want exactly 1", res.Wakes)
	}
	// Node 1 parks for windows [10,20) and [20,30) only.
	if res.ParkedNodeWindows != 2 {
		t.Errorf("parked node-windows = %d, want 2", res.ParkedNodeWindows)
	}
	// Ledger: 4 active-idle windows (one before the park, three after the
	// wake completes), 2 parked windows, 3 waking windows at the idle
	// floor, and one wake charge.
	util := 0.65 * m.SlowdownAt(m.Nominal())
	if util > 1 {
		util = 1
	}
	solo := m.PowerAt(util, m.Nominal())
	want := 4*solo*10 + m.ParkedW*20 + m.IdleW*30 + m.WakeJ
	got := res.NodeJoules[1].Joules
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("waking node ledger = %v J, want %v J (Δ=%v)", got, want, diff)
	}

	// Re-run with free wakes: the ledgers must differ by exactly the wake
	// energy, proving it was charged once and nowhere else.
	free := m
	free.WakeJ = 0
	cfgFree := wakingConfig(&free)
	cfgFree.Arrivals = burstArrivals{quietSec: 1e6, gapSec: 1}
	resFree, err := Run(cfgFree)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - resFree.NodeJoules[1].Joules - m.WakeJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("wake energy charged %v J more than a free-wake run, want exactly %v J",
			got-resFree.NodeJoules[1].Joules, m.WakeJ)
	}
}

// TestCrashedWakingNodeSettlesLedgerOnce pins the energy side of a crash
// landing mid-wake, alongside TestWakingNodeChargedWakeEnergyOnce: node 1 is
// parked at t=10, woken at t=30 (WakeDelay 25s → placeable at t=55), and an
// outage kills it at t=40, squarely inside the waking span, until t=65. The
// ledger must settle exactly once: idle-floor watts up to the crash instant,
// nothing while down, an idle tail from the recovery instant, and the wake
// energy charged at the original Wake action only — recovery boots the node
// inside its MTTR without a second WakeJ, and the pending wake completion at
// t=55 must not resurrect the dead node.
func TestCrashedWakingNodeSettlesLedgerOnce(t *testing.T) {
	m := energy.ModelFor(platform.TablePlatform())
	m.WakeDelay = 25 * sim.Second
	cfg := wakingConfig(&m)
	// No job ever arrives: node 1's whole ledger is analytic.
	cfg.Arrivals = burstArrivals{quietSec: 1e6, gapSec: 1}
	cfg.Faults = &fault.Plan{Outages: []fault.Outage{{AtSec: 40, Domain: 1, DurationSec: 25}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wakes != 1 || res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("wakes=%d crashes=%d recoveries=%d, want 1/1/1",
			res.Wakes, res.Crashes, res.Recoveries)
	}
	// Down across windows [40,50), [50,60), [60,70) — the boundary census at
	// t=70 runs after the recovery at t=65 lands, so only three windows count.
	if res.DownNodeWindows != 3 {
		t.Errorf("down node-windows = %d, want 3", res.DownNodeWindows)
	}
	if res.ParkedNodeWindows != 2 {
		t.Errorf("parked node-windows = %d, want 2", res.ParkedNodeWindows)
	}
	// Ledger: active-idle [0,10) and [70,90), parked [10,30), waking at the
	// idle floor from t=30 to the crash at t=40, dark while down, and the
	// idle tail [65,70) after the recovery instant, plus one wake charge.
	util := 0.65 * m.SlowdownAt(m.Nominal())
	if util > 1 {
		util = 1
	}
	solo := m.PowerAt(util, m.Nominal())
	want := 3*solo*10 + m.ParkedW*20 + m.IdleW*(10+5) + m.WakeJ
	got := res.NodeJoules[1].Joules
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("crashed waking node ledger = %v J, want %v J (Δ=%v)", got, want, diff)
	}

	// Free-wake comparison: through the whole crash/recover cycle the ledgers
	// must differ by exactly one wake energy — recovery charged no second one.
	free := m
	free.WakeJ = 0
	cfgFree := wakingConfig(&free)
	cfgFree.Arrivals = burstArrivals{quietSec: 1e6, gapSec: 1}
	cfgFree.Faults = cfg.Faults
	resFree, err := Run(cfgFree)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - resFree.NodeJoules[1].Joules - m.WakeJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("crash/recover cycle charged %v J of wake energy, want exactly %v J once",
			got-resFree.NodeJoules[1].Joules, m.WakeJ)
	}
}

// TestCrashedDrainingNodeDrawsNoParkedWatts pins the other lifecycle corner:
// a crash landing on a Draining node requeues the residents it was draining
// and must not let the dead node fall through to Parked — a down node draws
// nothing, not the parked floor. The proof is a paired run with the parked
// draw doubled: since node 0 never parks and node 1 dies mid-drain, not one
// parked watt may appear anywhere, so the totals must match bit for bit.
func TestCrashedDrainingNodeDrawsNoParkedWatts(t *testing.T) {
	m := energy.ModelFor(platform.TablePlatform())
	run := func(model *energy.Model) Result {
		t.Helper()
		cfg := wakingConfig(model)
		// Steady 1 job/s flood keeps residents on node 1 when the park order
		// arrives at t=20, so the node is Draining — not Parked — when the
		// outage kills it at t=30.
		cfg.Arrivals = burstArrivals{quietSec: 0, gapSec: 1}
		cfg.Autoscaler = scriptedLifecycle{node: 1, parkAt: 20, wakeAt: 1e9}
		cfg.Faults = &fault.Plan{Outages: []fault.Outage{{AtSec: 30, Domain: 1, DurationSec: 30}}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(&m)
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", res.Crashes, res.Recoveries)
	}
	// Requeued residents prove the node was still draining when it died: a
	// node that had finished draining would have parked empty.
	if res.Requeued+res.JobsLost == 0 {
		t.Fatal("crash requeued nothing; the node had already drained and the scenario lost its teeth")
	}
	if res.Wakes != 0 {
		t.Errorf("wakes = %d, want 0 (recovery must not charge a wake)", res.Wakes)
	}
	if res.ParkedNodeWindows != 0 {
		t.Errorf("parked node-windows = %d, want 0", res.ParkedNodeWindows)
	}
	expensive := m
	expensive.ParkedW *= 2
	res2 := run(&expensive)
	if res.Joules != res2.Joules {
		t.Errorf("doubling ParkedW moved the total: %v J vs %v J — a dead node drew parked watts",
			res.Joules, res2.Joules)
	}
}

// TestWakingNodeAcceptsNoPlacementsUntilAwake pins the placement side: while
// WakeDelay spans windows t=30..55, a job flood starting at t=32 may only
// land on the waking node from the t=60 boundary on, even with the other
// node saturated.
func TestWakingNodeAcceptsNoPlacementsUntilAwake(t *testing.T) {
	m := energy.ModelFor(platform.TablePlatform())
	m.WakeDelay = 25 * sim.Second
	cfg := wakingConfig(&m)
	cfg.Arrivals = burstArrivals{quietSec: 32, gapSec: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wakes != 1 {
		t.Fatalf("wakes = %d, want 1", res.Wakes)
	}
	onWoken := 0
	for _, j := range res.Jobs {
		if j.Node != "web-1" {
			continue
		}
		onWoken++
		if j.StartSec < 60 {
			t.Errorf("job %d started on the waking node at t=%.0fs, before wake completed at t=60",
				j.ID, j.StartSec)
		}
	}
	if onWoken == 0 {
		t.Fatal("flood never reached the woken node; the scenario lost its teeth")
	}
}

// TestAutoscalerValidation covers the config errors of the energy surface.
func TestAutoscalerValidation(t *testing.T) {
	cfg := fastConfig(FirstFit{})
	cfg.Autoscaler = autoscale.Consolidate{}
	if _, err := Run(cfg); err == nil {
		t.Error("autoscaler without energy model validated")
	}
	model := energy.ModelFor(platform.TablePlatform())
	model.FreqGHz = nil
	cfg = fastConfig(FirstFit{})
	cfg.Energy = &model
	if _, err := Run(cfg); err == nil {
		t.Error("invalid energy model validated")
	}
}

// TestParkedNodesRejectPlacements pins the lifecycle/placement contract:
// non-active nodes are offered to policies with zero free slots.
func TestParkedNodesRejectPlacements(t *testing.T) {
	model := energy.ModelFor(platform.TablePlatform())
	s := &run{cfg: Config{Energy: &model, Shape: workload.Steady{}, Epoch: 10 * sim.Second}}
	for _, n := range energyCluster() {
		s.nodes = append(s.nodes, &nodeRT{node: n, state: autoscale.Active, freq: model.Nominal()})
	}
	s.nodes[1].state = autoscale.Parked
	s.nodes[2].state = autoscale.Draining
	s.nodes[3].state = autoscale.Waking
	states := s.nodeStates(0)
	for i, st := range states {
		placeable := s.nodes[i].state.Placeable()
		if placeable && st.Free == 0 {
			t.Errorf("active node %d offered no slots", i)
		}
		if !placeable && st.Free != 0 {
			t.Errorf("%s node %d offered %d slots", s.nodes[i].state, i, st.Free)
		}
		if st.Lifecycle != s.nodes[i].state {
			t.Errorf("node %d lifecycle %v, want %v", i, st.Lifecycle, s.nodes[i].state)
		}
	}
}
