// Fault-injection wiring: how the compiled fault schedule (internal/fault)
// threads through the run loop without breaking shard invariance.
//
// The determinism argument mirrors the obs layer's: every fault event is
// consumed and applied on the coordinator's serial sections, never from shard
// or worker goroutines. faultPrep runs before the window's episodes and
// precomputes the per-node crash instants; shard goroutines only READ that
// scratch (to truncate a crashed node's episode), so the concurrent window
// advance stays write-disjoint. applyFaults then mutates cluster state —
// requeues, state flips, staleness windows — serially after the merge
// barrier, in compiled event order, exactly where the single-engine path
// applies them. Fault-injected runs are therefore byte-identical for any
// shard count, which TestGoldenFaultStorm pins.
package sched

import (
	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/fault"
	"github.com/approx-sched/pliant/internal/sim"
)

// faultRT is the run's fault-injection state.
type faultRT struct {
	plan   fault.Plan
	events []fault.Event
	cursor int // next unconsumed compiled event

	// Per-window scratch, coordinator-written in faultPrep before the
	// episode fan-out and read-only until applyFaults:
	//   win         — the events due in the elapsed window, in order
	//   crashAt     — node's first effective crash instant (-1 none)
	//   recoveredAt — node's last applied recovery instant (-1 none),
	//                 written by applyFaults for the energy accounting
	//   preState    — lifecycle state held at the window start
	//   preFreq     — frequency state held at the window start
	win         []fault.Event
	crashAt     []float64
	recoveredAt []float64
	preState    []autoscale.State
	preFreq     []int

	maskFree []int // anti-affinity Free-slot save/restore scratch

	crashes          int
	recoveries       int
	requeued         int
	lost             int
	downWindows      int
	staleWindows     int
	stragglerWindows int
}

// newFaultRT compiles the plan against the defaulted config. Call after
// Validate: the plan is assumed well-formed.
func newFaultRT(cfg Config) *faultRT {
	n := len(cfg.Nodes)
	f := &faultRT{
		plan:        *cfg.Faults,
		events:      cfg.Faults.Compile(cfg.Seed, n, cfg.Horizon.Seconds()),
		crashAt:     make([]float64, n),
		recoveredAt: make([]float64, n),
		preState:    make([]autoscale.State, n),
		preFreq:     make([]int, n),
	}
	return f
}

// faultPrep opens a window's fault bookkeeping at the boundary ending it:
// consume the events due by now, capture window-start state, and mark each
// node's first effective crash instant so episode runs (possibly on shard
// goroutines) can truncate at it. Serial-section only.
func (s *run) faultPrep(now sim.Time) {
	f := s.faults
	if f == nil {
		return
	}
	nowSec := now.Seconds()
	f.win = f.win[:0]
	for f.cursor < len(f.events) && f.events[f.cursor].AtSec <= nowSec {
		f.win = append(f.win, f.events[f.cursor])
		f.cursor++
	}
	for i, n := range s.nodes {
		f.crashAt[i] = -1
		f.recoveredAt[i] = -1
		f.preState[i] = n.state
		f.preFreq[i] = n.freq
	}
	// The first crash on a live node truncates its episode; later same-window
	// crash/recover churn only moves the state machine (the node has no
	// residents after the first crash requeues them).
	for _, ev := range f.win {
		if ev.Kind == fault.Crash && f.crashAt[ev.Node] < 0 &&
			s.nodes[ev.Node].state != autoscale.Down {
			f.crashAt[ev.Node] = ev.AtSec
		}
	}
}

// applyFaults replays the window's fault events against the merged cluster
// state, in compiled order, then takes the boundary fault census. Runs on
// the coordinator after the shard barrier (or the worker-pool fold), before
// the energy accounting reads the recovery instants.
func (s *run) applyFaults(now sim.Time) {
	f := s.faults
	if f == nil {
		return
	}
	for _, ev := range f.win {
		n := s.nodes[ev.Node]
		switch ev.Kind {
		case fault.Crash:
			if n.state == autoscale.Down {
				continue
			}
			s.crashNode(now, ev)
		case fault.Recover:
			if n.state != autoscale.Down {
				continue
			}
			n.state = autoscale.Active
			if s.cfg.Energy != nil {
				// Recovered hardware boots at nominal; the repair time (MTTR)
				// covers the boot, so no second wake charge.
				n.freq = s.cfg.Energy.Nominal()
			}
			f.recoveredAt[ev.Node] = ev.AtSec
			f.recoveries++
			s.obsFault(now, ev, 0)
			s.obsLifecycle(now, ev.Node, autoscale.Down, autoscale.Active)
		case fault.TelemetryStale:
			// Freeze the scheduler's view at the last snapshot the node
			// reported before the dropout.
			n.lastGood = n.tel
			n.staleUntil = ev.AtSec + ev.DurSec
			s.obsFault(now, ev, int64(ev.DurSec*1e3))
		case fault.Straggle:
			n.straggleUntil = ev.AtSec + ev.DurSec
			s.obsFault(now, ev, int64(ev.DurSec*1e3))
		}
	}

	// Boundary census: node-windows spent down, telemetry-stale, or
	// straggling — the robustness counters of the Result.
	nowSec := now.Seconds()
	down := 0
	for _, n := range s.nodes {
		switch {
		case n.state == autoscale.Down:
			down++
			f.downWindows++
		case n.straggleUntil > nowSec:
			f.stragglerWindows++
		}
		if n.staleUntil > nowSec && n.state != autoscale.Down {
			f.staleWindows++
		}
	}
	s.trace.Series("nodes.down").Append(nowSec, float64(down))
	s.obsFaultWindow(down)
}

// crashNode takes a live node down at the event instant: unfinished
// residents requeue with backoff (or drop as lost past their retry budget),
// the node's telemetry dies with it, and the lifecycle lands on Down.
func (s *run) crashNode(now sim.Time, ev fault.Event) {
	f := s.faults
	n := s.nodes[ev.Node]
	budget := f.plan.Retries()
	requeued := 0
	for _, job := range n.resident {
		job.Node = -1
		if job.Retries >= budget {
			job.Lost = true
			f.lost++
			s.obsJobLost()
			continue
		}
		job.Retries++
		job.retryAtSec = ev.AtSec + f.plan.BackoffSec(job.Retries)
		job.lastDomain = f.plan.DomainOf(ev.Node)
		s.pending = append(s.pending, job)
		f.requeued++
		requeued++
	}
	for i := range n.resident {
		n.resident[i] = nil
	}
	n.resident = n.resident[:0]
	n.tel = cluster.Telemetry{}
	from := n.state
	n.state = autoscale.Down
	f.crashes++
	s.obsFault(now, ev, int64(requeued))
	s.obsLifecycle(now, ev.Node, from, autoscale.Down)
}

// viewTelemetry is the scheduler-facing telemetry of node i at a boundary:
// the live feed, or the last-known-good snapshot while the feed is stale.
func (s *run) viewTelemetry(i int, nowSec float64) (cluster.Telemetry, bool) {
	n := s.nodes[i]
	if s.faults != nil && n.staleUntil > nowSec {
		return n.lastGood, true
	}
	return n.tel, false
}
