// Observability wiring: every emission into the obs subsystem happens here,
// and every emission happens from the run's serial coordinator sections
// (arrivals, boundary folds, lifecycle, autoscaling, placement) — never from
// shard or worker goroutines. That single rule is the determinism argument:
// the records and metric increments of a run are a pure function of its
// virtual-time execution, which shard counts don't change, so obs outputs
// are byte-identical for shards=1/2/4. The wall-clock profiler is the one
// exception and lives on its own channel (see shard.go and
// obs.Profiler's contract).
package sched

import (
	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/fault"
	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/sim"
)

// schedMetrics holds the run's registered instruments so the record path is
// a pointer chase, never a registry lookup.
type schedMetrics struct {
	jobsArrived   *obs.Counter
	jobsPlaced    *obs.Counter
	jobsDeferred  *obs.Counter
	windows       *obs.Counter
	episodes      *obs.Counter
	episodesQoS   *obs.Counter
	parks         *obs.Counter
	wakes         *obs.Counter
	freqSteps     *obs.Counter
	joules        *obs.Counter
	dropsReplayed *obs.Counter
	crashes       *obs.Counter
	recoveries    *obs.Counter
	jobsRequeued  *obs.Counter
	jobsLost      *obs.Counter

	queueDepth  *obs.Gauge
	running     *obs.Gauge
	utilization *obs.Gauge
	nodesActive *obs.Gauge
	nodesParked *obs.Gauge
	nodesDown   *obs.Gauge

	jobWait    *obs.Histogram
	p99OverQoS *obs.Histogram
}

// initObs registers the run's instruments and emits the run-start records.
// Attach a fresh Observer per run: counters are cumulative, so a reused
// registry folds runs together.
func (s *run) initObs() {
	o := s.cfg.Obs
	if o == nil {
		return
	}
	if o.Profile != nil {
		shards := s.cfg.Shards
		if shards < 1 {
			shards = 1
		}
		o.Profile.Ensure(shards)
	}
	if o.Metrics != nil {
		r := o.Metrics
		pol := obs.Label{Key: "policy", Value: s.cfg.Policy.Name()}
		m := &s.metrics
		m.jobsArrived = r.Counter("pliant_jobs_arrived_total", "Jobs admitted to the pending queue.")
		m.jobsPlaced = r.Counter("pliant_jobs_placed_total", "Jobs placed on a node.", pol)
		m.jobsDeferred = r.Counter("pliant_jobs_deferred_total", "Placement deferrals (admission control).", pol)
		m.windows = r.Counter("pliant_windows_total", "Scheduling windows simulated.")
		m.episodes = r.Counter("pliant_episodes_total", "Node-window colocation episodes simulated.")
		m.episodesQoS = r.Counter("pliant_episode_qos_met_total", "Episodes whose telemetry met QoS.")
		m.parks = r.Counter("pliant_autoscale_parks_total", "Autoscaler park verdicts applied.")
		m.wakes = r.Counter("pliant_autoscale_wakes_total", "Autoscaler wake verdicts applied.")
		m.freqSteps = r.Counter("pliant_autoscale_freq_steps_total", "Autoscaler frequency-state moves applied.")
		m.queueDepth = r.Gauge("pliant_queue_depth", "Pending jobs at the window boundary.")
		m.running = r.Gauge("pliant_jobs_running", "Resident jobs at the window boundary.")
		m.utilization = r.Gauge("pliant_slot_utilization", "Occupied fraction of job slots.")
		m.jobWait = r.Histogram("pliant_job_wait_seconds", "Queue wait of placed jobs.",
			[]float64{1, 5, 10, 20, 40, 80, 160, 320})
		m.p99OverQoS = r.Histogram("pliant_episode_p99_over_qos", "Per-episode recency-weighted p99/QoS ratio.",
			[]float64{0.25, 0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 2, 3})
		if s.cfg.Energy != nil {
			m.joules = r.Counter("pliant_joules_total", "Cluster energy accumulated over the horizon.")
			m.nodesActive = r.Gauge("pliant_nodes_active", "Nodes active or draining at the window boundary.")
			m.nodesParked = r.Gauge("pliant_nodes_parked", "Nodes parked at the window boundary.")
		}
		if s.cfg.Trace != nil {
			m.dropsReplayed = r.Counter("pliant_trace_rows_dropped_total", "Trace rows dropped at ingestion.")
			m.dropsReplayed.Add(float64(s.cfg.Trace.Dropped))
		}
		if s.cfg.Faults != nil {
			m.crashes = r.Counter("pliant_faults_crashes_total", "Node crash events applied.")
			m.recoveries = r.Counter("pliant_faults_recoveries_total", "Node recovery events applied.")
			m.jobsRequeued = r.Counter("pliant_jobs_requeued_total", "Jobs thrown back to pending by a crash.")
			m.jobsLost = r.Counter("pliant_jobs_lost_total", "Jobs dropped past their retry budget.")
			m.nodesDown = r.Gauge("pliant_nodes_down", "Nodes down at the window boundary.")
		}
	}
	if o.Tracer != nil && s.cfg.Trace != nil {
		o.Tracer.Emit(obs.Record{
			At: 0, Kind: obs.KindReplayDrop, Node: -1, Window: 0,
			A: int64(s.cfg.Trace.Dropped), B: int64(s.cfg.Trace.Defaulted), C: int64(len(s.cfg.Trace.Jobs)),
		})
	}
}

// obsTracer returns the tracer, or nil when tracing is off.
func (s *run) obsTracer() *obs.Tracer {
	if s.cfg.Obs == nil {
		return nil
	}
	return s.cfg.Obs.Tracer
}

// obsJobArrived counts one admission.
func (s *run) obsJobArrived() {
	if s.metrics.jobsArrived != nil {
		s.metrics.jobsArrived.Inc()
	}
}

// obsEpisodes emits the elapsed window's episode records in global node
// order, reading the coordinator-owned results slice after the barrier.
func (s *run) obsEpisodes(now sim.Time, busyIdx []int) {
	o := s.cfg.Obs
	if o == nil {
		return
	}
	winStart := int64(now) - int64(s.cfg.Epoch)
	for _, i := range busyIdx {
		ep := &s.results[i]
		met := int64(0)
		if ep.tel.QoSMet() {
			met = 1
		}
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Record{
				At: winStart, Kind: obs.KindEpisode, Node: int32(i), Window: int32(s.window),
				A: int64(ep.span), B: met, C: int64(ep.joules * 1e6),
			})
		}
		if m := &s.metrics; m.episodes != nil {
			m.episodes.Inc()
			if met == 1 {
				m.episodesQoS.Inc()
			}
			m.p99OverQoS.Observe(ep.tel.P99OverQoS)
		}
	}
}

// obsLifecycle records one node's lifecycle transition.
func (s *run) obsLifecycle(now sim.Time, node int, from, to autoscale.State) {
	if t := s.obsTracer(); t != nil {
		t.Emit(obs.Record{
			At: int64(now), Kind: obs.KindLifecycle, Node: int32(node), Window: int32(s.window),
			A: int64(from), B: int64(to),
		})
	}
}

// obsAutoscale records one applied autoscaler verdict.
func (s *run) obsAutoscale(now sim.Time, act autoscale.Action) {
	if t := s.obsTracer(); t != nil {
		t.Emit(obs.Record{
			At: int64(now), Kind: obs.KindAutoscale, Node: int32(act.Node), Window: int32(s.window),
			A: int64(act.Kind), B: int64(act.Freq),
		})
	}
	if m := &s.metrics; m.parks != nil {
		switch act.Kind {
		case autoscale.Park:
			m.parks.Inc()
		case autoscale.Wake:
			m.wakes.Inc()
		case autoscale.SetFreq:
			m.freqSteps.Inc()
		}
	}
}

// obsPlacement records one policy decision. candidates is how many offered
// nodes had free slots; choice is the node index or -1 for a deferral.
func (s *run) obsPlacement(now sim.Time, job *Job, choice, candidates int) {
	if t := s.obsTracer(); t != nil {
		t.Emit(obs.Record{
			At: int64(now), Kind: obs.KindPlacement, Node: int32(choice), Window: int32(s.window),
			A: int64(job.ID), B: int64(candidates), C: int64(job.Deferrals),
		})
	}
	if m := &s.metrics; m.jobsPlaced != nil {
		if choice >= 0 {
			m.jobsPlaced.Inc()
			m.jobWait.Observe(now.Seconds() - job.ArrivalSec)
		} else {
			m.jobsDeferred.Inc()
		}
	}
}

// obsWindow closes the boundary: the window marker record, the boundary
// gauges, and one metrics snapshot — the CSV row this window contributes.
func (s *run) obsWindow(now sim.Time, busy int) {
	o := s.cfg.Obs
	if o == nil {
		return
	}
	running := 0
	for _, n := range s.nodes {
		running += len(n.resident)
	}
	if o.Tracer != nil {
		o.Tracer.Emit(obs.Record{
			At: int64(now), Kind: obs.KindWindow, Node: -1, Window: int32(s.window),
			A: int64(len(s.pending)), B: int64(running), C: int64(busy),
		})
	}
	if m := &s.metrics; m.windows != nil {
		m.windows.Inc()
		m.queueDepth.Set(float64(len(s.pending)))
		m.running.Set(float64(running))
		m.utilization.Set(float64(running) / float64(s.slots))
		o.Metrics.Snapshot(now.Seconds())
	}
}

// obsEnergyWindow folds the elapsed window's energy ledger into the metrics
// channel (joules counter, lifecycle-census gauges).
func (s *run) obsEnergyWindow(windowJ float64, active, parked int) {
	if m := &s.metrics; m.joules != nil {
		m.joules.Add(windowJ)
		m.nodesActive.Set(float64(active))
		m.nodesParked.Set(float64(parked))
	}
}

// obsFault records one applied fault event. payload is kind-specific: jobs
// requeued for a crash, condition length in virtual ms for a dropout or
// straggler window.
func (s *run) obsFault(now sim.Time, ev fault.Event, payload int64) {
	if t := s.obsTracer(); t != nil {
		t.Emit(obs.Record{
			At: int64(now), Kind: obs.KindFault, Node: int32(ev.Node), Window: int32(s.window),
			A: int64(ev.Kind), B: payload,
		})
	}
	if m := &s.metrics; m.crashes != nil {
		switch ev.Kind {
		case fault.Crash:
			m.crashes.Inc()
			m.jobsRequeued.Add(float64(payload))
		case fault.Recover:
			m.recoveries.Inc()
		}
	}
}

// obsFaultWindow sets the boundary's down-node census gauge.
func (s *run) obsFaultWindow(down int) {
	if m := &s.metrics; m.nodesDown != nil {
		m.nodesDown.Set(float64(down))
	}
}

// obsJobLost counts one job dropped past its retry budget.
func (s *run) obsJobLost() {
	if s.metrics.jobsLost != nil {
		s.metrics.jobsLost.Inc()
	}
}

// obsWakeEnergy charges a wake transition's energy to the joules counter —
// it lands on the node ledger outside the window accounting, so the counter
// would otherwise undercount Result.Joules by WakeJ per wake.
func (s *run) obsWakeEnergy(j float64) {
	if s.metrics.joules != nil {
		s.metrics.joules.Add(j)
	}
}
