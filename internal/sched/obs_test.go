package sched

import (
	"reflect"
	"testing"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/platform"
)

// TestAutoscaleConstantsPinned pins the numeric values of the lifecycle
// states and action kinds. internal/obs renders them by value (its Chrome
// exporter's name tables index by these numbers so obs never imports the
// scheduler stack); reordering the constants would silently mislabel every
// trace, so the mirror is enforced here.
func TestAutoscaleConstantsPinned(t *testing.T) {
	states := map[autoscale.State]int{
		autoscale.Active:   0, // obs renders "active"
		autoscale.Draining: 1, // "draining"
		autoscale.Parked:   2, // "parked"
		autoscale.Waking:   3, // "waking"
	}
	for s, want := range states {
		if int(s) != want {
			t.Errorf("autoscale.State %v = %d, obs name tables expect %d", s, int(s), want)
		}
	}
	actions := map[autoscale.ActionKind]int{
		autoscale.Park:    0, // "park"
		autoscale.Wake:    1, // "wake"
		autoscale.SetFreq: 2, // "setfreq"
	}
	for a, want := range actions {
		if int(a) != want {
			t.Errorf("autoscale.ActionKind %v = %d, obs name tables expect %d", a, int(a), want)
		}
	}
}

// obsConfig is a small energy-managed run exercising every emission point:
// placements, deferral-capable admission, autoscaler verdicts, lifecycle
// transitions, and energy metrics.
func obsConfig(shards int, o *obs.Observer) Config {
	cfg := fastConfig(TelemetryAware{})
	model := energy.ModelFor(platform.TablePlatform())
	cfg.Energy = &model
	cfg.Autoscaler = autoscale.Consolidate{}
	cfg.Shards = shards
	cfg.Obs = o
	return cfg
}

// TestObsEmissionConsistency cross-checks tracer record counts and metric
// totals against the run's own Result: every aggregate the observer reports
// must agree with what the scheduler counted.
func TestObsEmissionConsistency(t *testing.T) {
	o := obs.New(obs.Options{})
	cfg := obsConfig(1, o)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := o.Tracer
	wantWindows := uint64(cfg.Horizon / cfg.Epoch)
	if got := tr.CountOf(obs.KindWindow); got != wantWindows {
		t.Errorf("window records = %d, want %d", got, wantWindows)
	}
	if got := tr.CountOf(obs.KindEpisode); got != uint64(res.Episodes) {
		t.Errorf("episode records = %d, Result.Episodes %d", got, res.Episodes)
	}
	// One placement record per decision: every placed job decided once, plus
	// one record per deferral event.
	deferrals := 0
	for _, j := range res.Jobs {
		deferrals += jobDeferrals(t, tr, j.ID)
	}
	if got := int(tr.CountOf(obs.KindPlacement)); got < res.Placed {
		t.Errorf("placement records = %d, below placed jobs %d", got, res.Placed)
	}
	if tr.Total() == 0 || tr.Dropped() != 0 {
		t.Fatalf("total=%d dropped=%d", tr.Total(), tr.Dropped())
	}

	// Metrics must agree with the Result aggregates.
	pol := obs.Label{Key: "policy", Value: res.Policy}
	if got := o.Metrics.Counter("pliant_jobs_arrived_total", "").Value(); got != float64(res.Arrived) {
		t.Errorf("jobs_arrived_total = %v, Result.Arrived %d", got, res.Arrived)
	}
	if got := o.Metrics.Counter("pliant_jobs_placed_total", "", pol).Value(); got != float64(res.Placed) {
		t.Errorf("jobs_placed_total = %v, Result.Placed %d", got, res.Placed)
	}
	if got := o.Metrics.Counter("pliant_episodes_total", "").Value(); got != float64(res.Episodes) {
		t.Errorf("episodes_total = %v, Result.Episodes %d", got, res.Episodes)
	}
	if got := o.Metrics.Counter("pliant_joules_total", "").Value(); !closeTo(got, res.Joules, 1e-6) {
		t.Errorf("joules_total = %v, Result.Joules %v", got, res.Joules)
	}
	if got := o.Metrics.Snapshots(); got != int(wantWindows) {
		t.Errorf("snapshots = %d, want one per window (%d)", got, wantWindows)
	}

	// The wall-clock profile covers the single-engine worker pool as shard 0.
	if len(res.ShardProfiles) != 1 {
		t.Fatalf("profiles = %d, want 1", len(res.ShardProfiles))
	}
	if p := res.ShardProfiles[0]; p.Episodes != res.Episodes || p.EpisodeNs <= 0 {
		t.Errorf("profile = %+v, want %d episodes and positive wall time", p, res.Episodes)
	}
}

// jobDeferrals counts the deferral records of one job in the retained ring.
func jobDeferrals(t *testing.T, tr *obs.Tracer, id int) int {
	t.Helper()
	n := 0
	tr.Records(func(r obs.Record) {
		if r.Kind == obs.KindPlacement && r.A == int64(id) && r.Node < 0 {
			n++
		}
	})
	return n
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

// TestObsDoesNotPerturbRun is the layer's core contract at the struct level
// (the repo goldens pin it at the byte level): a run with an observer
// attached produces a Result identical to the same run without, profiles
// aside.
func TestObsDoesNotPerturbRun(t *testing.T) {
	for _, shards := range []int{1, 2} {
		plain, err := Run(obsConfig(shards, nil))
		if err != nil {
			t.Fatal(err)
		}
		observed, err := Run(obsConfig(shards, obs.New(obs.Options{})))
		if err != nil {
			t.Fatal(err)
		}
		if len(observed.ShardProfiles) != shards {
			t.Errorf("shards=%d: %d profiles", shards, len(observed.ShardProfiles))
		}
		observed.ShardProfiles = nil
		if !reflect.DeepEqual(plain, observed) {
			t.Errorf("shards=%d: observed run's Result diverged from plain run", shards)
		}
	}
}

// TestObsShardProfileAccounting checks the sharded wall-clock channel: every
// shard accounts its windows, the episode totals add up, and barrier waits
// stay non-negative.
func TestObsShardProfileAccounting(t *testing.T) {
	o := obs.New(obs.Options{})
	res, err := Run(obsConfig(2, o))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardProfiles) != 2 {
		t.Fatalf("profiles = %d", len(res.ShardProfiles))
	}
	episodes := 0
	for i, p := range res.ShardProfiles {
		if p.Shard != i {
			t.Errorf("profile %d has shard index %d", i, p.Shard)
		}
		if p.Windows == 0 || p.EpisodeNs < 0 || p.BarrierWaitNs < 0 {
			t.Errorf("profile %d implausible: %+v", i, p)
		}
		if f := p.BarrierWaitFrac(); f < 0 || f > 1 {
			t.Errorf("profile %d barrier frac %v outside [0,1]", i, f)
		}
		episodes += p.Episodes
	}
	if episodes != res.Episodes {
		t.Errorf("profiled episodes %d != Result.Episodes %d", episodes, res.Episodes)
	}
}

// TestObsTraceReplayRecord checks replayed runs announce their ingestion
// losses: the first record is the replay-drop summary.
func TestObsTraceReplayRecord(t *testing.T) {
	tr := testTrace(t, 24, 50)
	o := obs.New(obs.Options{})
	cfg := fastConfig(FirstFit{})
	cfg.JobsPerSec = 0
	cfg.Trace = tr
	cfg.Obs = o
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := o.Tracer.CountOf(obs.KindReplayDrop); got != 1 {
		t.Fatalf("replay-drop records = %d, want 1", got)
	}
	first := obs.Record{}
	seen := false
	o.Tracer.Records(func(r obs.Record) {
		if !seen {
			first, seen = r, true
		}
	})
	if first.Kind != obs.KindReplayDrop {
		t.Errorf("first record kind = %v, want replay-drop", first.Kind)
	}
	if first.C != int64(len(tr.Jobs)) {
		t.Errorf("replay-drop jobs = %d, trace has %d", first.C, len(tr.Jobs))
	}
}
