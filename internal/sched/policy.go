package sched

import (
	"math"

	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/service"
)

// Policy decides, at every scheduling window, where the next pending job
// runs. Unlike the batch cluster.Policy it never sees the whole job stream:
// it is offered one job at a time against the cluster's live state and may
// defer (return -1) to keep the job queued — admission control when every
// node is saturated. Implementations must only pick nodes with Free > 0.
type Policy interface {
	Name() string
	Place(job Job, nodes []NodeState) int
}

// FirstFit places each job on the first node with a free slot — the
// telemetry-blind baseline every bin-packing comparison starts from.
type FirstFit struct{}

// Name identifies the policy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Policy.
func (FirstFit) Place(_ Job, nodes []NodeState) int {
	for _, st := range nodes {
		if st.Free > 0 {
			return st.Index
		}
	}
	return -1
}

// BestFit packs each job onto the occupied node with the fewest free slots
// that still fits — classic best-fit bin packing on slots, concentrating
// jobs to keep whole nodes unfragmented. Still telemetry-blind.
type BestFit struct{}

// Name identifies the policy.
func (BestFit) Name() string { return "best-fit" }

// Place implements Policy.
func (BestFit) Place(_ Job, nodes []NodeState) int {
	best, bestFree := -1, math.MaxInt
	for _, st := range nodes {
		if st.Free > 0 && st.Free < bestFree {
			best, bestFree = st.Index, st.Free
		}
	}
	return best
}

// Spread places each job on the free node with the most open slots —
// spread-first: it minimizes per-node interference by keeping arity low, at
// the cost of keeping every node awake. The energy study's QoS-friendly,
// watts-hostile endpoint.
type Spread struct{}

// Name identifies the policy.
func (Spread) Name() string { return "spread-first" }

// Place implements Policy.
func (Spread) Place(_ Job, nodes []NodeState) int {
	best, bestFree := -1, 0
	for _, st := range nodes {
		if st.Free > bestFree {
			best, bestFree = st.Index, st.Free
		}
	}
	return best
}

// TelemetryAware consumes the Pliant runtime's live feedback — each node's
// recent p99/QoS and violation fraction, each resident job's residual
// pressure — plus the per-service tolerance budgets of the batch policy, and
// packs interference instead of slots: among nodes whose recent tail is
// within the admission threshold, a job goes to the one with the most
// tolerance headroom left after accounting for the upcoming window's load
// (headroom ranks candidates; observed telemetry, not predicted pressure,
// gates admission). When every free node's recent tail breaches the
// threshold the job is deferred, up to MaxDefer windows, after which it
// takes the least-bad free slot rather than starving.
type TelemetryAware struct {
	// Tolerance maps service classes to co-runner pressure budgets; nil uses
	// cluster.DefaultTolerances.
	Tolerance map[service.Class]float64

	// AdmitP99 is the recent p99/QoS ratio above which a node stops
	// admitting jobs (default 1.2 — marginal violations are left to the
	// node's own Pliant runtime to absorb; only clear breaches repel).
	AdmitP99 float64

	// MaxDefer is how many windows a job may be deferred before it is
	// force-placed on the least-bad free node (default 1).
	MaxDefer int
}

// Name identifies the policy.
func (TelemetryAware) Name() string { return "telemetry-aware" }

// Place implements Policy.
func (p TelemetryAware) Place(job Job, nodes []NodeState) int {
	tol := p.Tolerance
	if tol == nil {
		tol = cluster.DefaultTolerances()
	}
	admit := p.AdmitP99
	if admit == 0 {
		admit = 1.2
	}
	maxDefer := p.MaxDefer
	if maxDefer == 0 {
		maxDefer = 1
	}

	// Rank free nodes by tolerance headroom: the service's budget, derated
	// by the upcoming window's load (a service near its peak absorbs less
	// co-runner pressure), minus resident pressure and what this job adds.
	// Live telemetry gates admission: nodes whose recent tail breaches the
	// threshold are only used once every healthy option is exhausted.
	headOf := func(st NodeState) float64 {
		return tol[st.Node.Service]/math.Max(st.LoadMult, 0.1) - st.Pressure - job.Pressure
	}
	best, bestHead := -1, math.Inf(-1)
	fallback, fbHead := -1, math.Inf(-1)
	for _, st := range nodes {
		if st.Free == 0 {
			continue
		}
		head := headOf(st)
		if head > fbHead {
			fallback, fbHead = st.Index, head
		}
		if st.Telemetry.Reports > 0 && st.Telemetry.P99OverQoS > admit {
			continue // recently violating: let it recover
		}
		if head > bestHead {
			best, bestHead = st.Index, head
		}
	}
	if best >= 0 {
		return best
	}
	// Every free node is violating: defer (admission control), then fall
	// back to the least-bad node rather than starving the job.
	if job.Deferrals >= maxDefer {
		return fallback // possibly still -1 when every slot is taken
	}
	return -1
}
