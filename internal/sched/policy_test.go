package sched

import (
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/service"
)

// states builds a synthetic cluster view: free slots per node, with
// optionally poisoned telemetry.
func states(free ...int) []NodeState {
	classes := []service.Class{service.Memcached, service.NGINX, service.MongoDB}
	out := make([]NodeState, len(free))
	for i, f := range free {
		out[i] = NodeState{
			Index:    i,
			Node:     cluster.Node{Name: "n", Service: classes[i%len(classes)], MaxApps: 3},
			Free:     f,
			LoadMult: 1,
		}
	}
	return out
}

func testJob(t *testing.T, name string) Job {
	t.Helper()
	prof, err := app.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return Job{App: prof, Pressure: cluster.PressureOf(prof)}
}

func TestFirstFitPicksFirstFree(t *testing.T) {
	j := testJob(t, "canneal")
	if got := (FirstFit{}).Place(j, states(0, 2, 3)); got != 1 {
		t.Fatalf("first-fit picked %d, want 1", got)
	}
	if got := (FirstFit{}).Place(j, states(1, 2, 3)); got != 0 {
		t.Fatalf("first-fit picked %d, want 0", got)
	}
	if got := (FirstFit{}).Place(j, states(0, 0, 0)); got != -1 {
		t.Fatalf("first-fit placed on a full cluster (%d)", got)
	}
}

func TestBestFitPicksTightest(t *testing.T) {
	j := testJob(t, "canneal")
	if got := (BestFit{}).Place(j, states(3, 1, 2)); got != 1 {
		t.Fatalf("best-fit picked %d, want tightest node 1", got)
	}
	// Ties resolve to the lowest index.
	if got := (BestFit{}).Place(j, states(2, 2, 3)); got != 0 {
		t.Fatalf("best-fit tie picked %d, want 0", got)
	}
	if got := (BestFit{}).Place(j, states(0, 0, 0)); got != -1 {
		t.Fatalf("best-fit placed on a full cluster (%d)", got)
	}
}

func TestTelemetryAwarePrefersHeadroom(t *testing.T) {
	j := testJob(t, "PLSA") // heaviest pressure source
	st := states(3, 3, 3)
	// Empty nodes, no telemetry: the heaviest job goes to the most tolerant
	// service (MongoDB), mirroring the batch interference-aware policy.
	if got := (TelemetryAware{}).Place(j, st); got != 2 {
		t.Fatalf("heavy job placed on %d, want mongodb node 2", got)
	}
	// Load the mongodb node with resident pressure: the job must move on.
	st[2].Pressure = 80
	if got := (TelemetryAware{}).Place(j, st); got == 2 {
		t.Fatal("job placed on pressured node")
	}
}

func TestTelemetryAwareAvoidsViolatingNodes(t *testing.T) {
	j := testJob(t, "canneal")
	st := states(3, 3, 3)
	// MongoDB (the default headroom winner for canneal too) is violating.
	st[2].Telemetry = violatingTelemetry(2.0)
	got := (TelemetryAware{}).Place(j, st)
	if got == 2 {
		t.Fatal("job placed on a violating node while healthy nodes exist")
	}
	if got < 0 {
		t.Fatal("job deferred while healthy nodes exist")
	}
}

func TestTelemetryAwareDefersThenFallsBack(t *testing.T) {
	j := testJob(t, "canneal")
	st := states(3, 3, 3)
	for i := range st {
		st[i].Telemetry = violatingTelemetry(1.8)
	}
	// All nodes violating: defer while under MaxDefer…
	if got := (TelemetryAware{MaxDefer: 2}).Place(j, st); got != -1 {
		t.Fatalf("job not deferred on a saturated cluster (%d)", got)
	}
	// …then force-place on the least-bad node rather than starve.
	j.Deferrals = 2
	if got := (TelemetryAware{MaxDefer: 2}).Place(j, st); got == -1 {
		t.Fatal("job starved past MaxDefer")
	}
	// With every slot taken there is nothing to fall back to.
	full := states(0, 0, 0)
	if got := (TelemetryAware{MaxDefer: 2}).Place(j, full); got != -1 {
		t.Fatalf("job placed on a slotless cluster (%d)", got)
	}
}

func TestTelemetryAwareLoadDerating(t *testing.T) {
	j := testJob(t, "canneal")
	// Two identical nginx nodes, one at its diurnal peak: the job must take
	// the off-peak node.
	st := []NodeState{
		{Index: 0, Node: cluster.Node{Service: service.NGINX, MaxApps: 3}, Free: 3, LoadMult: 1.3},
		{Index: 1, Node: cluster.Node{Service: service.NGINX, MaxApps: 3}, Free: 3, LoadMult: 0.8},
	}
	if got := (TelemetryAware{}).Place(j, st); got != 1 {
		t.Fatalf("job placed on peak-load node (%d), want off-peak node 1", got)
	}
}

// violatingTelemetry fabricates node feedback whose recent p99 sits at the
// given multiple of QoS.
func violatingTelemetry(p99OverQoS float64) cluster.Telemetry {
	return cluster.Telemetry{P99OverQoS: p99OverQoS, ViolationFrac: 1, Reports: 5}
}

func TestSpreadPicksEmptiestNode(t *testing.T) {
	j := testJob(t, "canneal")
	if got := (Spread{}).Place(j, states(1, 3, 2)); got != 1 {
		t.Fatalf("spread picked %d, want the emptiest node 1", got)
	}
	if got := (Spread{}).Place(j, states(0, 0, 0)); got != -1 {
		t.Fatalf("spread placed %d on a full cluster, want -1", got)
	}
	// Ties break to the lowest index, keeping runs deterministic.
	if got := (Spread{}).Place(j, states(2, 2, 2)); got != 0 {
		t.Fatalf("spread tie-break picked %d, want 0", got)
	}
}
