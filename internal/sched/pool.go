package sched

import "sync"

// runPool executes fn(0..n-1) on at most `workers` goroutines. Tasks are
// independent node-episode simulations, each on its own engine, writing into
// disjoint result slots — so the pool adds wall-clock parallelism without
// perturbing determinism. With one worker (or one task) it degenerates to a
// sequential loop.
func runPool(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
