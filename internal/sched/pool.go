package sched

import "sync"

// runPool executes fn(w, 0..n-1) on at most `workers` goroutines, where w is
// the stable index of the worker running the task — the handle for
// per-worker scratch state (each worker runs its tasks sequentially, so
// scratch indexed by w is never shared). Tasks are independent node-episode
// simulations, each on its own engine, writing into disjoint result slots —
// so the pool adds wall-clock parallelism without perturbing determinism.
// With one worker (or one task) it degenerates to a sequential loop.
func runPool(workers, n int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
