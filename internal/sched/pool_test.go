package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		seen := make([]int32, 57)
		runPool(workers, len(seen), func(_, i int) { atomic.AddInt32(&seen[i], 1) })
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
	}
	// Zero tasks is a no-op.
	runPool(4, 0, func(int, int) { t.Fatal("ran a task for n=0") })
}

// TestPoolActuallyParallel proves the pool overlaps tasks: two tasks that
// each block until both have started can only finish if two workers run them
// concurrently. No timing assertions — a sequential pool deadlocks, caught
// by the test timeout, while a parallel one passes instantly.
func TestPoolActuallyParallel(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(2)
	done := make(chan struct{})
	go func() {
		runPool(2, 2, func(int, int) {
			wg.Done()
			wg.Wait() // blocks until the *other* task has also started
		})
		close(done)
	}()
	<-done
}

func TestPoolSequentialWhenOneWorker(t *testing.T) {
	// With one worker tasks must run in index order.
	var order []int
	runPool(1, 5, func(_, i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order %v", order)
		}
	}
}
