// Step-driven run loop: the serving form of the scheduler. Run executes a
// whole study in one call; a Runner exposes the same run one scheduling
// window at a time, so a long-lived process (the pliant-served daemon, a
// signal-handling CLI) can pump the clock, inject externally submitted jobs
// between windows, and snapshot live state — without forking the execution
// path. Run itself is implemented on top of the Runner, and stepping is
// byte-identical to the monolithic loop: the engine processes the same
// events in the same (timestamp, sequence) order whether it runs to the
// horizon in one call or in per-window chunks, which the golden tests pin.
package sched

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
	"github.com/approx-sched/pliant/internal/workload"
)

// Runner is one online scheduling run advanced window by window. Create with
// NewRunner, advance with StepWindow, and fold into a Result with Finalize
// (or Close to abandon). A Runner is not safe for concurrent use; callers
// that share one across goroutines (the serve session manager) must
// serialize access themselves.
type Runner struct {
	s        *run
	stopTick func()
	windows  int // total scheduling windows over the horizon
	stepped  int // windows advanced so far
	closed   bool
}

// NewRunner validates the config and builds the run in its pre-horizon
// state: nodes initialized, arrival stream scheduled, boundary ticker armed,
// clock at zero. The caller must Close (Finalize closes too) to release the
// shard goroutines.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &run{
		cfg:   cfg,
		eng:   sim.NewEngine(),
		rng:   sim.NewRNG(cfg.Seed),
		trace: stats.NewTrace(),
	}
	s.names = cfg.JobNames
	if len(s.names) == 0 {
		s.names = cluster.ShuffledJobs(cfg.Seed, len(app.Names()))
	}
	nominalFreq := 0
	if cfg.Energy != nil {
		nominalFreq = cfg.Energy.Nominal()
	}
	for _, n := range cfg.Nodes {
		s.nodes = append(s.nodes, &nodeRT{node: n, state: autoscale.Active, freq: nominalFreq})
		s.slots += n.MaxApps
	}
	if cfg.Faults != nil {
		s.faults = newFaultRT(cfg)
	}
	if cfg.Shards > 1 {
		// Sharded multi-engine runs own one scratch per shard; the worker
		// pool (and its per-worker scratch) is bypassed entirely.
		s.shards = newShardGroup(s, cfg.Shards)
	} else {
		s.scratch = make([]*colocate.Scratch, cfg.Workers)
		for w := range s.scratch {
			s.scratch[w] = &colocate.Scratch{}
		}
	}
	s.initObs()

	arrivals := cfg.Arrivals
	if cfg.Trace != nil {
		// Trace replay: arrivals at the recorded instants (a fresh stream
		// per run — the cursor is consumed), app names mapped from the
		// trace's resource shapes so s.names[i] is exactly the i-th arrival.
		ts, err := workload.NewTraceStream(cfg.Trace.ArrivalTimes())
		if err != nil {
			closeShards(s)
			return nil, err
		}
		names, err := JobsFromTrace(cfg.Trace, cfg.JobNames)
		if err != nil {
			closeShards(s)
			return nil, err
		}
		arrivals = ts
		s.names = names
	}
	if arrivals == nil {
		p, err := workload.NewPoisson(cfg.JobsPerSec)
		if err != nil {
			closeShards(s)
			return nil, err
		}
		arrivals = p
	}
	arrRNG := s.rng.Split(1)
	var scheduleArrival func()
	scheduleArrival = func() {
		// Time-varying job streams (e.g. a flash crowd of arrivals) need the
		// current instant, exactly as the request-level client does.
		var gap sim.Duration
		if ta, ok := arrivals.(workload.TimedArrival); ok {
			gap = ta.NextAt(arrRNG, s.eng.Now())
		} else {
			gap = arrivals.Next(arrRNG)
		}
		s.eng.After(gap, func() {
			s.arrive()
			scheduleArrival()
		})
	}
	scheduleArrival()

	r := &Runner{
		s:       s,
		windows: int(cfg.Horizon / cfg.Epoch),
	}
	r.stopTick = s.eng.Ticker(cfg.Epoch, s.boundary)
	return r, nil
}

// closeShards releases a half-built run's shard goroutines.
func closeShards(s *run) {
	if s.shards != nil {
		s.shards.close()
	}
}

// StepWindow advances the run through exactly one scheduling window —
// episodes, merges, lifecycle, autoscaling, placement — and reports whether
// more windows remain before the horizon. Stepping the full horizon is
// byte-identical to Run on the same config.
func (r *Runner) StepWindow() (more bool, err error) {
	if r.closed {
		return false, fmt.Errorf("sched: runner closed")
	}
	if r.s.err != nil {
		return false, r.s.err
	}
	if r.stepped >= r.windows {
		return false, nil
	}
	r.stepped++
	r.s.eng.Run(sim.Time(int64(r.s.cfg.Epoch) * int64(r.stepped)))
	if r.s.err != nil {
		return false, r.s.err
	}
	return r.stepped < r.windows, nil
}

// Inject admits externally submitted jobs into the pending queue at the
// current instant, in argument order. Call between StepWindow calls (the
// serving daemon injects accepted submissions at window boundaries); the
// jobs are offered to the policy at the next boundary. The batch is
// all-or-nothing: an unknown catalog name rejects every job in it, so an
// accepted submission always reaches the arrival ledger.
func (r *Runner) Inject(names ...string) error {
	if r.closed {
		return fmt.Errorf("sched: runner closed")
	}
	profs := make([]app.Profile, len(names))
	for i, name := range names {
		p, err := app.ByName(name)
		if err != nil {
			return err
		}
		profs[i] = p
	}
	s := r.s
	for _, prof := range profs {
		j := &Job{
			ID:         len(s.jobs),
			App:        prof,
			Pressure:   cluster.PressureOf(prof),
			ArrivalSec: s.eng.Now().Seconds(),
			StartSec:   -1,
			FinishSec:  -1,
			Node:       -1,
			remaining:  1,
			lastDomain: -1,
		}
		s.jobs = append(s.jobs, j)
		s.pending = append(s.pending, j)
		s.obsJobArrived()
	}
	return nil
}

// Windows returns the total number of scheduling windows over the horizon.
func (r *Runner) Windows() int { return r.windows }

// Window returns how many windows have been stepped.
func (r *Runner) Window() int { return r.stepped }

// NowSec returns the run's virtual clock in seconds.
func (r *Runner) NowSec() float64 { return r.s.eng.Now().Seconds() }

// Config returns the run's defaulted configuration.
func (r *Runner) Config() Config { return r.s.cfg }

// Snapshot is the live view of a stepping run, cheap enough to take at every
// window boundary: the serving layer's status endpoint, SSE window events,
// and shadow-replay verdict diffs all read from it.
type Snapshot struct {
	// Window / Windows locate the clock: windows completed over total.
	Window  int
	Windows int
	NowSec  float64

	// Job census, all live values: Arrived counts every admission (stream
	// and injected), Placed jobs that ever started, Completed finished jobs,
	// Pending the queue depth, Running resident jobs, Lost retry-budget
	// drops.
	Arrived   int
	Placed    int
	Completed int
	Pending   int
	Running   int
	Lost      int

	// QoSMetFrac and Joules accumulate exactly as in the final Result (1 and
	// 0 respectively before any busy window / without an energy model).
	QoSMetFrac float64
	Joules     float64

	// JobNodes maps job ID to its current node index (-1 while queued), the
	// raw material of shadow-replay placement diffs.
	JobNodes []int
}

// Snapshot captures the run's live state.
func (r *Runner) Snapshot() Snapshot {
	s := r.s
	snap := Snapshot{
		Window:  r.stepped,
		Windows: r.windows,
		NowSec:  s.eng.Now().Seconds(),
		Arrived: len(s.jobs),
		Pending: len(s.pending),
	}
	snap.JobNodes = make([]int, len(s.jobs))
	for i, j := range s.jobs {
		snap.JobNodes[i] = j.Node
		if j.Node >= 0 {
			snap.Placed++
		}
		if j.Done {
			snap.Completed++
		}
		if j.Lost {
			snap.Lost++
		}
	}
	busy, met := 0, 0
	for _, n := range s.nodes {
		snap.Running += len(n.resident)
		busy += n.busy
		met += n.met
		if s.cfg.Energy != nil {
			snap.Joules += n.joules
		}
	}
	snap.QoSMetFrac = 1
	if busy > 0 {
		snap.QoSMetFrac = float64(met) / float64(busy)
	}
	return snap
}

// Finalize folds the run into its Result and closes the runner. A run
// finalized before its horizon (a drained daemon session, an interrupted
// CLI) is marked Truncated, which the JSON/CSV exports surface, so partial
// artifacts are never mistaken for complete days.
func (r *Runner) Finalize() (Result, error) {
	if r.s.err != nil {
		r.Close()
		return Result{}, r.s.err
	}
	res := r.s.finalize()
	if r.stepped < r.windows {
		res.Truncated = true
	}
	r.Close()
	return res, nil
}

// Close releases the runner's resources (shard goroutines, the boundary
// ticker). Idempotent; Finalize calls it.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.stopTick()
	closeShards(r.s)
}
