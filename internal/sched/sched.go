// Package sched implements an online, event-driven cluster scheduler in
// virtual time — the production form of the paper's Sec. 6.4 scheduler
// integration. Where internal/cluster places one static batch, sched models
// the stream a datacenter scheduler actually faces: approximate jobs arrive
// over a horizon via an arrival process, wait in a pending queue, and are
// placed (or deferred) by an online policy at every scheduling window, while
// each node's interactive service sees time-varying load (diurnal swings,
// flash crowds) and continuously feeds the scheduler its Pliant runtime
// telemetry — recent p99/QoS, violation fraction, and per-app pressure.
//
// Time is two-level: the cluster horizon advances in scheduling windows
// (epochs); within each window, every occupied node runs a real colocation
// episode (internal/colocate, via cluster.RunNode) for the window's span,
// resuming each job's remaining work and emitting mid-run telemetry. Node
// episodes are independent simulations, so a bounded worker pool runs them
// in parallel across cores; results are folded back in node order, keeping
// runs bit-for-bit deterministic under a fixed seed. At 100+-node scale,
// Config.Shards partitions the cluster into per-worker engine groups that
// advance each window on their own clocks and merge deterministically at
// window boundaries (see shard.go) — byte-identical for any shard count.
package sched

import (
	"fmt"
	"runtime"
	"time"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/fault"
	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
	"github.com/approx-sched/pliant/internal/trace"
	"github.com/approx-sched/pliant/internal/workload"
)

// Job is one approximate application moving through the scheduler.
type Job struct {
	ID  int
	App app.Profile

	// Pressure is the job's residual shared-resource pressure
	// (cluster.PressureOf), precomputed for policies.
	Pressure float64

	ArrivalSec float64
	// StartSec is when the job first began executing; -1 while queued.
	StartSec float64
	// FinishSec is when the job completed; -1 while unfinished.
	FinishSec float64
	// Node is the index of the node the job runs on; -1 while queued.
	Node int
	// Deferrals counts scheduling windows in which the policy declined to
	// place the job.
	Deferrals int
	// Done reports completion; Inaccuracy is the work-weighted output
	// quality loss in percent, final once Done.
	Done       bool
	Inaccuracy float64

	// Retries counts how many times a node crash threw the job back into
	// the pending queue; Lost marks a job dropped after exhausting its retry
	// budget (fault injection only).
	Retries int
	Lost    bool

	// remaining is the fraction of the job's nominal work still to run.
	remaining float64

	// retryAtSec is the virtual instant before which a requeued job is not
	// re-offered (crash-retry backoff); lastDomain is the failure domain
	// that crashed it, for anti-affinity spread (-1 when never crashed).
	retryAtSec float64
	lastDomain int
}

// WaitSec returns the time the job spent queued before starting, or its age
// at the horizon if it never started (horizonSec is only used then).
func (j Job) WaitSec(horizonSec float64) float64 {
	if j.StartSec >= 0 {
		return j.StartSec - j.ArrivalSec
	}
	return horizonSec - j.ArrivalSec
}

// NodeState is the live view of one node a policy decides against.
type NodeState struct {
	Index int
	Node  cluster.Node

	// Free is the number of unoccupied job slots.
	Free int
	// Resident lists the names of the jobs currently on the node.
	Resident []string
	// Pressure is the summed residual pressure of the resident jobs.
	Pressure float64
	// Telemetry is the node's Pliant runtime feedback from the most recent
	// window it was busy (zero value until then).
	Telemetry cluster.Telemetry
	// LoadMult is the service-load shape multiplier for the upcoming window.
	LoadMult float64
	// Lifecycle is the node's autoscaling state (always Active without an
	// autoscaler); non-active nodes are offered with Free = 0.
	Lifecycle autoscale.State
	// FreqState is the node's frequency-state index into the energy model's
	// ladder (0 until an energy model is attached).
	FreqState int
	// TelemetryStale marks Telemetry as a last-known-good snapshot: the
	// node's live feed dropped out (fault injection) and the values are
	// frozen at the dropout instant.
	TelemetryStale bool
}

// Config describes one online scheduling run.
type Config struct {
	// Seed drives all pseudo-randomness; equal configs reproduce results
	// byte-for-byte.
	Seed uint64

	// Nodes are the cluster's servers; every node needs MaxApps ≥ 1.
	Nodes []cluster.Node

	// Policy decides placement at every scheduling window.
	Policy Policy

	// Horizon is the cluster-time span of the run (default 240 s), rounded
	// down to a whole number of epochs.
	Horizon sim.Duration

	// Epoch is the scheduling window: placement decisions fire at its
	// boundaries and node episodes span it (default 12 s; must be at least
	// 1 s so episodes cover decision intervals).
	Epoch sim.Duration

	// JobsPerSec is the mean job arrival rate. Zero sizes a default so that
	// about two jobs per cluster slot arrive over the horizon.
	JobsPerSec float64

	// Arrivals overrides the Poisson job stream with a custom process.
	Arrivals workload.ArrivalProcess

	// Trace replays a production cluster trace (internal/trace) as the job
	// stream: each trace job arrives at its recorded instant (within the
	// horizon) and maps onto a catalog application by resource shape
	// (JobsFromTrace), so policies are judged on bursty, heavy-tailed
	// production arrivals rather than synthetic processes. Mutually
	// exclusive with Arrivals; overrides JobsPerSec. With a trace, JobNames
	// narrows the candidate catalog the mapping draws from instead of being
	// cycled directly. Works unchanged with Shards, Energy, and Autoscaler.
	Trace *trace.Trace

	// JobNames is the cycled sequence of catalog applications jobs draw
	// from; nil uses a seed-shuffled pass over the full catalog.
	JobNames []string

	// BaseLoad is the base offered load on every node's service (default
	// 0.70); the instantaneous load is BaseLoad times the Shape multiplier.
	BaseLoad float64

	// Shape is the cluster-horizon load shape (default steady).
	Shape workload.Shape

	// TimeScale multiplies the services' request timescale, as everywhere
	// in the repo; 1 = paper scale, 16 = fast profile.
	TimeScale float64

	// Workers bounds how many node episodes simulate concurrently on the
	// single-engine path (default GOMAXPROCS). Ignored when Shards > 1:
	// sharded runs take their parallelism from the shard count.
	Workers int

	// Shards partitions the cluster into per-worker engine groups: nodes
	// are assigned round-robin to S shards, each advancing every scheduling
	// window on its own engine clock and scratch concurrently, with a
	// deterministic merge barrier at window boundaries (pending jobs,
	// autoscaler verdicts, telemetry roll-ups, and the energy ledger fold
	// in a fixed order — see DESIGN.md). Results are byte-identical for
	// every value. 0 or 1 selects the single-engine path, where node
	// episodes parallelize across Workers instead; values above the node
	// count are clamped.
	Shards int

	// Energy attaches a per-node power model (internal/energy): episodes
	// report joules through their telemetry, idle/parked/waking draw is
	// accounted between episodes, and the Result carries cluster energy
	// totals plus per-boundary power series. Nil keeps all energy
	// accounting off and results byte-identical to prior versions.
	Energy *energy.Model

	// Autoscaler manages node lifecycle (park/wake with the model's wake
	// energy and delay) and frequency states at every scheduling boundary.
	// Requires Energy; nil keeps every node active at nominal frequency.
	Autoscaler autoscale.Controller

	// Faults attaches a fault-injection plan (internal/fault): node
	// crash/recover processes, scripted correlated outages, telemetry
	// dropout, and straggler windows, compiled into a deterministic event
	// schedule before the run starts and applied on the coordinator's serial
	// sections — so fault-injected runs stay byte-identical across shard
	// counts. Crashed nodes requeue their unfinished jobs with the plan's
	// retry budget and backoff; stragglers require Energy (they act through
	// the frequency path). Nil keeps all fault machinery off and results
	// byte-identical to prior versions.
	Faults *fault.Plan

	// Obs attaches the observability layer (internal/obs): a virtual-time
	// decision tracer, a metrics registry snapshotted at every window
	// boundary, and a wall-clock shard profiler. Every record and metric is
	// emitted from the run's serial coordinator sections, so obs outputs are
	// byte-identical at any shard count; enabling obs never perturbs the
	// simulation, so results are byte-identical to obs-off runs. Attach a
	// fresh Observer per run — registries are cumulative. Nil keeps
	// observability off with zero overhead on the hot path.
	Obs *obs.Observer
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Horizon == 0 {
		c.Horizon = 240 * sim.Second
	}
	if c.Epoch == 0 {
		c.Epoch = 12 * sim.Second
	}
	if c.Epoch > 0 {
		c.Horizon = c.Horizon / c.Epoch * c.Epoch
	}
	if c.BaseLoad == 0 {
		c.BaseLoad = 0.70
	}
	if c.Shape == nil {
		c.Shape = workload.Steady{}
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 1 // negative means serial, as runPool has always treated it
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if n := len(c.Nodes); n > 0 && c.Shards > n {
		c.Shards = n
	}
	if c.JobsPerSec == 0 && c.Arrivals == nil && c.Trace == nil {
		slots := 0
		for _, n := range c.Nodes {
			slots += n.MaxApps
		}
		c.JobsPerSec = 2 * float64(slots) / c.Horizon.Seconds()
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	switch {
	case len(c.Nodes) == 0:
		return fmt.Errorf("sched: no nodes")
	case c.Policy == nil:
		return fmt.Errorf("sched: no placement policy")
	case c.Epoch < sim.Second:
		return fmt.Errorf("sched: epoch %v below 1s", c.Epoch)
	case c.Horizon < c.Epoch:
		return fmt.Errorf("sched: horizon %v shorter than one epoch %v", c.Horizon, c.Epoch)
	case c.BaseLoad <= 0 || c.BaseLoad > 1.5:
		return fmt.Errorf("sched: base load %v outside (0, 1.5]", c.BaseLoad)
	case c.TimeScale <= 0:
		return fmt.Errorf("sched: time scale must be positive")
	case c.Trace == nil && c.Arrivals == nil && c.JobsPerSec <= 0:
		return fmt.Errorf("sched: job arrival rate must be positive")
	case c.Trace != nil && c.Arrivals != nil:
		return fmt.Errorf("sched: Trace and Arrivals are mutually exclusive job streams")
	case c.Trace != nil && len(c.Trace.Jobs) == 0:
		return fmt.Errorf("sched: trace replay with an empty trace")
	case c.Autoscaler != nil && c.Energy == nil:
		return fmt.Errorf("sched: autoscaler %s needs an energy model", c.Autoscaler.Name())
	}
	if c.Energy != nil {
		if err := c.Energy.Validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(len(c.Nodes), c.Energy != nil); err != nil {
			return err
		}
	}
	for i, n := range c.Nodes {
		if n.MaxApps < 1 {
			return fmt.Errorf("sched: node %d (%s) needs MaxApps ≥ 1", i, n.Name)
		}
	}
	for _, name := range c.JobNames {
		if _, err := app.ByName(name); err != nil {
			return err
		}
	}
	return nil
}

// JobOutcome is the per-job record in a Result.
type JobOutcome struct {
	ID         int
	App        string
	Node       string // "" if never placed
	ArrivalSec float64
	StartSec   float64 // -1 if never placed
	FinishSec  float64 // -1 if unfinished
	WaitSec    float64
	Done       bool
	Inaccuracy float64 // percent, final only when Done

	// Retries counts crash-driven requeues; Lost marks a job dropped after
	// exhausting its retry budget. Zero/false without fault injection.
	Retries int
	Lost    bool
}

// Result aggregates one online scheduling run.
type Result struct {
	Policy     string
	HorizonSec float64
	EpochSec   float64

	// Arrived / Placed / Completed / Pending count jobs that entered the
	// system, ever started, finished, and never started, respectively.
	Arrived   int
	Placed    int
	Completed int
	Pending   int

	// MeanWaitSec and MaxWaitSec cover placed jobs (queued-forever jobs are
	// reported via Pending, not folded into the mean).
	MeanWaitSec float64
	MaxWaitSec  float64

	// QoSMetFrac is the fraction of busy node-windows whose telemetry met
	// QoS — the service-side cost of each placement policy.
	QoSMetFrac float64

	// MeanUtilization is the mean fraction of occupied job slots across
	// scheduling windows.
	MeanUtilization float64

	// MeanInaccuracy averages quality loss over completed jobs.
	MeanInaccuracy float64

	// Episodes counts node-window colocation episodes simulated.
	Episodes int

	// Energy totals, all zero unless Config.Energy was set: cluster energy
	// over the horizon, its mean draw, how many node-windows nodes spent
	// parked or running busy below nominal frequency, and how many wake
	// transitions fired (each costing the model's wake energy).
	Joules             float64
	MeanWatts          float64
	ParkedNodeWindows  int
	LowFreqNodeWindows int
	Wakes              int

	// NodeJoules breaks the energy down per node, in node order.
	NodeJoules []NodeEnergy

	// Fault counters, all zero unless Config.Faults was set: crash and
	// recovery events applied, crash-driven job requeues, jobs dropped past
	// their retry budget, and boundary node-window censuses of nodes down,
	// telemetry-stale, and straggling. The retry ledger balances by
	// construction: Arrived = Placed + Pending + JobsLost, and Requeued sums
	// every job's Retries.
	Crashes              int
	Recoveries           int
	Requeued             int
	JobsLost             int
	DownNodeWindows      int
	StaleNodeWindows     int
	StragglerNodeWindows int

	Jobs []JobOutcome

	// Trace records the cluster-horizon series: "queue.depth",
	// "utilization", "running" at each window start; "qosmet" and
	// "p99.worst" at each window end; with an energy model also
	// "watts.cluster", "nodes.active", and "nodes.parked" per window.
	Trace *stats.Trace

	// ShardProfiles is the wall-clock account of each shard (slot 0 covers
	// the worker pool on the single-engine path), populated only when
	// Config.Obs carried a profiler. Wall time is non-deterministic, so the
	// profiles are deliberately excluded from the JSON/CSV exports and every
	// golden-pinned artifact.
	ShardProfiles []obs.ShardProfile

	// Truncated marks a run finalized before its horizon — an interrupted
	// CLI flushing partial output, or a drained daemon session. Complete
	// runs leave it false, so the exports of a full day are unchanged.
	Truncated bool
}

// NodeEnergy is one node's share of the cluster energy ledger.
type NodeEnergy struct {
	Node   string
	Joules float64
}

// nodeRT is the scheduler's runtime state for one node.
type nodeRT struct {
	node     cluster.Node
	resident []*Job
	tel      cluster.Telemetry
	busy     int // windows with residents
	met      int // busy windows meeting QoS

	// Energy/lifecycle state (meaningful only with Config.Energy): the
	// autoscaling state, the frequency-state index, when a waking node
	// becomes placeable, and the node's energy ledger.
	state  autoscale.State
	freq   int
	wakeAt sim.Time
	joules float64

	// Fault state (meaningful only with Config.Faults): the scheduler's
	// last-known-good telemetry snapshot served while the live feed is stale
	// (until staleUntil), and the end of the node's straggler window.
	lastGood      cluster.Telemetry
	staleUntil    float64
	straggleUntil float64
}

// run carries one executing schedule.
type run struct {
	cfg   Config
	eng   *sim.Engine
	rng   *sim.RNG
	names []string

	nodes   []*nodeRT
	slots   int
	jobs    []*Job
	pending []*Job

	window   int // index of the next window to simulate
	episodes int
	utilSum  float64
	utilN    int
	trace    *stats.Trace
	err      error

	// results[i] is node i's episode outcome for the window being merged,
	// reused across windows (only busy slots are written and read).
	results []episode

	// shards is the sharded multi-engine runtime (nil on the single-engine
	// path, cfg.Shards <= 1).
	shards *shardGroup

	// faults is the fault-injection runtime (nil without Config.Faults).
	faults *faultRT

	// Energy counters (active only with cfg.Energy).
	parkedWindows  int
	lowFreqWindows int
	wakes          int

	// metrics holds the run's registered obs instruments (all nil with
	// cfg.Obs == nil or no registry — see obs.go).
	metrics schedMetrics

	// scratch[w] is worker w's reusable episode state: engine arenas and
	// histograms recycled across the thousands of node-window episodes a run
	// simulates. Workers never share a scratch, and reuse does not perturb
	// results (see colocate.Scratch).
	scratch []*colocate.Scratch
}

// Run executes one online scheduling study. It is the batch form of the
// step-driven Runner: construct, pump every window, finalize. Stepping is
// byte-identical to the previous monolithic engine run (golden-pinned), so
// the serving daemon and this batch path cannot drift apart.
func Run(cfg Config) (Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	defer r.Close()
	for {
		more, err := r.StepWindow()
		if err != nil {
			return Result{}, err
		}
		if !more {
			break
		}
	}
	return r.Finalize()
}

// arrive admits one job into the pending queue.
func (s *run) arrive() {
	name := s.names[len(s.jobs)%len(s.names)]
	prof, err := app.ByName(name)
	if err != nil {
		s.fail(err)
		return
	}
	j := &Job{
		ID:         len(s.jobs),
		App:        prof,
		Pressure:   cluster.PressureOf(prof),
		ArrivalSec: s.eng.Now().Seconds(),
		StartSec:   -1,
		FinishSec:  -1,
		Node:       -1,
		remaining:  1,
		lastDomain: -1,
	}
	s.jobs = append(s.jobs, j)
	s.pending = append(s.pending, j)
	s.obsJobArrived()
}

// boundary fires at the end of every scheduling window: it simulates the
// window that just elapsed, folds in completions, telemetry, and energy,
// steps the node lifecycle machine, lets the autoscaler actuate, then lets
// the policy drain the pending queue into the freed capacity for the next
// window.
func (s *run) boundary(now sim.Time) {
	if s.err != nil {
		return
	}
	epBefore := s.episodes
	s.faultPrep(now)
	s.simulateWindow(now)
	if s.err != nil {
		return
	}
	if now < sim.Time(s.cfg.Horizon) {
		s.stepLifecycle(now)
		s.autoscale(now)
		if s.err != nil {
			return
		}
		s.place(now)
		s.recordOccupancy(now)
	}
	s.obsWindow(now, s.episodes-epBefore)
	s.window++
}

// stepLifecycle applies the time-driven transitions at a boundary: drained
// nodes park, waking nodes whose delay elapsed become placeable.
func (s *run) stepLifecycle(now sim.Time) {
	for i, n := range s.nodes {
		switch n.state {
		case autoscale.Draining:
			if len(n.resident) == 0 {
				n.state = autoscale.Parked
				s.obsLifecycle(now, i, autoscale.Draining, autoscale.Parked)
			}
		case autoscale.Waking:
			if now >= n.wakeAt {
				n.state = autoscale.Active
				s.obsLifecycle(now, i, autoscale.Waking, autoscale.Active)
			}
		}
	}
}

// autoscale consults the lifecycle controller and applies its actions.
func (s *run) autoscale(now sim.Time) {
	if s.cfg.Autoscaler == nil {
		return
	}
	view := autoscale.View{
		NowSec:  now.Seconds(),
		Pending: len(s.pending),
		Nominal: s.cfg.Energy.Nominal(),
	}
	for i, n := range s.nodes {
		tel, stale := s.viewTelemetry(i, now.Seconds())
		view.Nodes = append(view.Nodes, autoscale.NodeView{
			Index:      i,
			State:      n.state,
			Service:    n.node.Service.String(),
			Resident:   len(n.resident),
			Slots:      n.node.MaxApps,
			Freq:       n.freq,
			P99OverQoS: tel.P99OverQoS,
			Reports:    tel.Reports,
			Stale:      stale,
		})
	}
	for _, act := range s.cfg.Autoscaler.Decide(view) {
		if act.Node < 0 || act.Node >= len(s.nodes) {
			s.fail(fmt.Errorf("sched: autoscaler %s acted on unknown node %d", s.cfg.Autoscaler.Name(), act.Node))
			return
		}
		n := s.nodes[act.Node]
		switch act.Kind {
		case autoscale.Park:
			if n.state != autoscale.Active {
				continue
			}
			if len(n.resident) > 0 {
				n.state = autoscale.Draining
			} else {
				n.state = autoscale.Parked
			}
			s.obsAutoscale(now, act)
			s.obsLifecycle(now, act.Node, autoscale.Active, n.state)
		case autoscale.Wake:
			if n.state != autoscale.Parked {
				continue
			}
			n.state = autoscale.Waking
			n.wakeAt = now.Add(s.cfg.Energy.WakeDelay)
			n.freq = s.cfg.Energy.Nominal() // fresh nodes resume at nominal
			n.joules += s.cfg.Energy.WakeJ
			s.wakes++
			s.obsWakeEnergy(s.cfg.Energy.WakeJ)
			s.obsAutoscale(now, act)
			s.obsLifecycle(now, act.Node, autoscale.Parked, autoscale.Waking)
		case autoscale.SetFreq:
			if act.Freq < 0 || act.Freq >= len(s.cfg.Energy.FreqGHz) {
				s.fail(fmt.Errorf("sched: autoscaler %s set node %s to unknown frequency state %d",
					s.cfg.Autoscaler.Name(), n.node.Name, act.Freq))
				return
			}
			n.freq = act.Freq
			s.obsAutoscale(now, act)
		}
	}
}

// episodeSeed derives the deterministic seed of one node-window episode. The
// per-node seed and the window counter combine by carry-propagating addition
// and pass through the splitmix64 finalizer (sim.Mix64), replacing a bare
// XOR of multiplied counters. The XOR form had structured collisions across
// (node, window) pairs — NodeSeed(s, a) ^ w·C and NodeSeed(s, b) ^ v·C meet
// whenever the products differ by the same bits as the node terms, which
// carryless XOR makes easy to hit — silently correlating episode RNG
// streams. With addition, a within-run collision needs Δnode·φ ≡ Δwindow·C
// (mod 2⁶⁴) for bounded deltas — lattice-sparse rather than bit-structured —
// and the final mix decorrelates the streams of any near-colliding inputs.
func episodeSeed(seed uint64, node, window int) uint64 {
	return sim.Mix64(cluster.NodeSeed(seed, node) + uint64(window+1)*0xbf58476d1ce4e5b9)
}

// episode is the outcome of one node's window simulation.
type episode struct {
	apps   []colocate.AppResult
	tel    cluster.Telemetry
	joules float64      // episode energy (with an energy model)
	span   sim.Duration // simulated span; < epoch when all apps finished
	err    error
}

// runEpisode executes node i's colocation for the window starting at
// winStart on the given scratch. It reads node and resident state but
// mutates nothing — safe to call from any worker or shard goroutine as long
// as the node's fold has not happened yet.
func (s *run) runEpisode(i int, winStart float64, scratch *colocate.Scratch) episode {
	n := s.nodes[i]
	names := make([]string, len(n.resident))
	scales := make([]float64, len(n.resident))
	for j, job := range n.resident {
		names[j] = job.App.Name
		scales[j] = job.remaining
	}
	var tel cluster.Telemetry
	nr := cluster.NodeRun{
		Seed:         episodeSeed(s.cfg.Seed, i, s.window),
		Node:         n.node,
		AppNames:     names,
		AppWorkScale: scales,
		LoadFraction: s.cfg.BaseLoad,
		LoadShape:    workload.Shifted{Inner: s.cfg.Shape, BySec: winStart},
		TimeScale:    s.cfg.TimeScale,
		MaxDuration:  s.cfg.Epoch,
		OnReport:     tel.Observe,
		Scratch:      scratch,
	}
	if s.cfg.Energy != nil {
		nr.EnergyModel = s.cfg.Energy
		nr.FreqGHz = s.cfg.Energy.FreqAt(n.freq)
	}
	if f := s.faults; f != nil {
		if at := f.crashAt[i]; at >= 0 {
			// The node dies mid-window: truncate its episode at the crash
			// instant (floored at a millisecond for a boundary-adjacent crash).
			d := at - winStart
			if d < 1e-3 {
				d = 1e-3
			}
			nr.MaxDuration = sim.Duration(d * float64(sim.Second))
		}
		if n.straggleUntil > winStart {
			// Straggler: degraded effective frequency. Only reachable with an
			// energy model (Plan.Validate enforces), so FreqGHz is set.
			nr.FreqGHz *= f.plan.Factor()
		}
	}
	res, err := cluster.RunNode(nr)
	return episode{apps: res.Apps, tel: tel, joules: res.Joules, span: res.Duration, err: err}
}

// foldEpisode applies node i's episode outcome: job completions and progress,
// the node's fresh telemetry, and its busy/met counters, folding the window
// roll-up into ws. It touches only node-i state (plus its resident jobs), so
// the owning shard may fold concurrently with other shards.
func (s *run) foldEpisode(i int, ep *episode, winStart float64, ws *cluster.WindowStats) {
	n := s.nodes[i]
	crashed := s.faults != nil && s.faults.crashAt[i] >= 0
	keep := n.resident[:0]
	for j, job := range n.resident {
		ar := ep.apps[j]
		if ar.Done {
			// Episode inaccuracy is relative to the episode's (remaining)
			// work; weight it back to whole-job terms.
			job.Inaccuracy += ar.Inaccuracy * job.remaining
			job.Done = true
			job.FinishSec = winStart + ar.ExecTime.Seconds()
			job.remaining = 0
		} else {
			if !crashed {
				job.Inaccuracy += ar.Inaccuracy * job.remaining
				job.remaining *= 1 - ar.Progress
			}
			// On a crashed node the unfinished jobs' work since the window
			// start is lost with the node — progress and inaccuracy roll back;
			// applyFaults requeues (or drops) them right after this fold.
			keep = append(keep, job)
		}
	}
	for j := len(keep); j < len(n.resident); j++ {
		n.resident[j] = nil
	}
	n.resident = keep
	n.tel = ep.tel
	n.busy++
	if ep.tel.QoSMet() {
		n.met++
	}
	ws.Fold(ep.tel)
}

// simulateWindow runs every occupied node's colocation for the window ending
// at now — in parallel on the worker pool (single-engine path) or across the
// per-shard engines (sharded path) — and merges the outcomes back into the
// shared cluster state in a deterministic order.
func (s *run) simulateWindow(now sim.Time) {
	winStart := now.Seconds() - s.cfg.Epoch.Seconds()
	var busyIdx []int
	for i, n := range s.nodes {
		if len(n.resident) > 0 {
			busyIdx = append(busyIdx, i)
		}
	}
	if s.results == nil {
		s.results = make([]episode, len(s.nodes))
	}

	var ws cluster.WindowStats
	if s.shards != nil {
		// Sharded path: every shard advances its engine clock through the
		// window concurrently, running and folding its own nodes' episodes;
		// shard roll-ups merge in fixed shard order at the barrier.
		ws = s.shards.advance(now, busyIdx)
		for _, i := range busyIdx {
			if err := s.results[i].err; err != nil {
				s.fail(fmt.Errorf("sched: node %s window %d: %w", s.nodes[i].node.Name, s.window, err))
				return
			}
		}
	} else {
		// Single-engine path: episodes fan out over the worker pool, folds
		// apply serially in node order. The pool's wall time charges to
		// profile slot 0, mirroring what a shard accounts for itself.
		var prof *obs.Profiler
		if s.cfg.Obs != nil {
			prof = s.cfg.Obs.Profile
		}
		var t0 time.Time
		if prof != nil {
			t0 = time.Now() //pliant:allow wallclock — profiler measures real pool runtime for obs; never feeds sim state
		}
		runPool(s.cfg.Workers, len(busyIdx), func(worker, k int) {
			i := busyIdx[k]
			s.results[i] = s.runEpisode(i, winStart, s.scratch[worker])
		})
		for _, i := range busyIdx {
			ep := &s.results[i]
			if ep.err != nil {
				s.fail(fmt.Errorf("sched: node %s window %d: %w", s.nodes[i].node.Name, s.window, ep.err))
				return
			}
			s.foldEpisode(i, ep, winStart, &ws)
		}
		if prof != nil {
			//pliant:allow wallclock — closes the profiler span opened above; obs-only measurement
			prof.AddEpisode(0, len(busyIdx), time.Since(t0).Nanoseconds())
		}
	}
	s.obsEpisodes(now, busyIdx)
	s.episodes += ws.Busy

	// Fault events due in the elapsed window mutate cluster state here, on
	// the coordinator, after the merge barrier — the same serial section on
	// both execution paths, so fault-injected runs stay shard-invariant.
	s.applyFaults(now)

	// A node with no residents — idle all window, or just emptied by the
	// completions above — is its service running alone: it meets QoS by
	// construction, so it sheds any violation telemetry rather than
	// repelling the policy at this very boundary's placement pass.
	for _, n := range s.nodes {
		if len(n.resident) == 0 {
			n.tel = cluster.Telemetry{}
		}
	}

	s.accountWindow(now, s.results, busyIdx)

	if ws.Busy > 0 {
		s.trace.Series("qosmet").Append(now.Seconds(), float64(ws.Met)/float64(ws.Busy))
		s.trace.Series("p99.worst").Append(now.Seconds(), ws.WorstP99)
	}
}

// accountWindow folds the elapsed window into the cluster energy ledger:
// busy nodes contribute their episode's measured joules (plus idle draw for
// any early-finish remainder), idle active nodes the draw of their service
// riding alone, parked nodes the suspend floor, waking nodes the idle floor
// while they resume. Per-node sums accrue in node order, so totals stay
// byte-deterministic regardless of worker count.
func (s *run) accountWindow(now sim.Time, results []episode, busyIdx []int) {
	if s.cfg.Energy == nil {
		return
	}
	m := s.cfg.Energy
	ran := make([]bool, len(s.nodes))
	for _, i := range busyIdx {
		ran[i] = true
	}
	epochSec := s.cfg.Epoch.Seconds()
	nowSec := now.Seconds()
	winStart := nowSec - epochSec
	mid := nowSec - epochSec/2
	effLoad := s.cfg.BaseLoad * workload.ClampMultiplier(s.cfg.Shape.Multiplier(mid))

	windowJ := 0.0
	active, parked := 0, 0
	for i, n := range s.nodes {
		// With fault injection the ledger charges against the state the node
		// HELD over the window (applyFaults already flipped it), splitting at
		// the crash instant: the live draw until the crash, nothing while
		// down, and the idle floor from recovery to the boundary. Recovery
		// never re-charges WakeJ — the repair time covers the boot. With
		// faults off every instant is -1 and the pre-window state is the
		// current one, so the arms reduce to the original ledger exactly.
		st, freq := n.state, n.freq
		crashAtSec, recAtSec := -1.0, -1.0
		if f := s.faults; f != nil {
			st, freq = f.preState[i], f.preFreq[i]
			crashAtSec, recAtSec = f.crashAt[i], f.recoveredAt[i]
		}
		recTail := 0.0
		if recAtSec >= 0 {
			recTail = m.IdleW * (nowSec - recAtSec)
		}
		var j float64
		switch {
		case ran[i]:
			ep := results[i]
			j = ep.joules
			if crashAtSec >= 0 {
				// The episode truncated at the crash; no solo remainder.
				j += recTail
			} else if rem := epochSec - ep.span.Seconds(); rem > 1e-9 {
				// Episode ended early (all jobs finished): the service rides
				// alone for the remainder.
				j += m.PowerAt(s.soloUtil(effLoad, freq), freq) * rem
			}
			if freq < m.Nominal() {
				s.lowFreqWindows++
			}
		case st == autoscale.Down:
			// Down since before the window: dark until recovery, if any.
			j = recTail
		case st == autoscale.Parked:
			if crashAtSec >= 0 {
				j = m.ParkedW*(crashAtSec-winStart) + recTail
			} else {
				j = m.ParkedW * epochSec
				s.parkedWindows++
			}
		case st == autoscale.Waking:
			if crashAtSec >= 0 {
				j = m.IdleW*(crashAtSec-winStart) + recTail
			} else {
				j = m.IdleW * epochSec
			}
		default:
			// Active (or draining) with no residents: the service alone.
			solo := m.PowerAt(s.soloUtil(effLoad, freq), freq)
			if crashAtSec >= 0 {
				j = solo*(crashAtSec-winStart) + recTail
			} else {
				j = solo * epochSec
			}
		}
		n.joules += j
		windowJ += j
		switch n.state {
		case autoscale.Active, autoscale.Draining:
			active++
		case autoscale.Parked:
			parked++
		}
	}
	s.trace.Series("watts.cluster").Append(nowSec, windowJ/epochSec)
	s.trace.Series("nodes.active").Append(nowSec, float64(active))
	s.trace.Series("nodes.parked").Append(nowSec, float64(parked))
	s.obsEnergyWindow(windowJ, active, parked)
}

// soloUtil estimates the socket utilization of a node whose interactive
// service runs with no colocated jobs: the offered load fraction, inflated
// by the frequency slowdown and clamped at saturation.
func (s *run) soloUtil(effLoad float64, freq int) float64 {
	u := effLoad * s.cfg.Energy.SlowdownAt(freq)
	if u > 1 {
		return 1
	}
	return u
}

// nodeStates snapshots the policy's view of the cluster for the window
// starting at now.
func (s *run) nodeStates(now sim.Time) []NodeState {
	mid := now.Seconds() + s.cfg.Epoch.Seconds()/2
	states := make([]NodeState, len(s.nodes))
	for i, n := range s.nodes {
		st := NodeState{
			Index:     i,
			Node:      n.node,
			Free:      n.node.MaxApps - len(n.resident),
			LoadMult:  workload.ClampMultiplier(s.cfg.Shape.Multiplier(mid)),
			Lifecycle: n.state,
			FreqState: n.freq,
		}
		if !n.state.Placeable() {
			// Draining, parked, and waking nodes accept no new jobs.
			st.Free = 0
		}
		for _, job := range n.resident {
			st.Resident = append(st.Resident, job.App.Name)
			st.Pressure += job.Pressure
		}
		st.Telemetry, st.TelemetryStale = s.viewTelemetry(i, now.Seconds())
		states[i] = st
	}
	return states
}

// place drains the pending queue in arrival order through the policy. The
// cluster snapshot is built once and updated incrementally as jobs land —
// only the chosen node's state changes between offers.
func (s *run) place(now sim.Time) {
	if len(s.pending) == 0 {
		return
	}
	states := s.nodeStates(now)
	obsOn := s.cfg.Obs != nil
	f := s.faults
	nowSec := now.Seconds()
	var still []*Job
	for _, job := range s.pending {
		if f != nil && job.retryAtSec > nowSec {
			// Crash-retry backoff: the job is not offered yet, and the policy
			// never saw it, so this is not a deferral.
			still = append(still, job)
			continue
		}
		var choice int
		if f != nil && job.lastDomain >= 0 && f.plan.DomainSize > 1 {
			// Anti-affinity: offer the retried job with its failed domain's
			// free slots masked out, spreading retries away from the blast
			// radius. A preference, not a constraint — if the rest of the
			// cluster is full, the failed domain beats the queue.
			lo, hi := f.plan.DomainNodes(job.lastDomain, len(s.nodes))
			f.maskFree = f.maskFree[:0]
			for k := lo; k < hi; k++ {
				f.maskFree = append(f.maskFree, states[k].Free)
				states[k].Free = 0
			}
			choice = s.cfg.Policy.Place(*job, states)
			for k := lo; k < hi; k++ {
				states[k].Free = f.maskFree[k-lo]
			}
			if choice < 0 {
				choice = s.cfg.Policy.Place(*job, states)
			}
		} else {
			choice = s.cfg.Policy.Place(*job, states)
		}
		if choice < 0 {
			if obsOn {
				s.obsPlacement(now, job, -1, freeCandidates(states))
			}
			job.Deferrals++
			still = append(still, job)
			continue
		}
		if choice >= len(s.nodes) {
			s.fail(fmt.Errorf("sched: policy %s placed job %d on unknown node %d", s.cfg.Policy.Name(), job.ID, choice))
			return
		}
		n := s.nodes[choice]
		if len(n.resident) >= n.node.MaxApps {
			s.fail(fmt.Errorf("sched: policy %s overfilled node %s with job %d", s.cfg.Policy.Name(), n.node.Name, job.ID))
			return
		}
		if obsOn {
			s.obsPlacement(now, job, choice, freeCandidates(states))
		}
		job.Node = choice
		if job.StartSec < 0 {
			// A requeued job keeps its first start: the wait statistics
			// measure time-to-first-placement, not crash churn.
			job.StartSec = nowSec
		}
		n.resident = append(n.resident, job)
		states[choice].Free--
		states[choice].Resident = append(states[choice].Resident, job.App.Name)
		states[choice].Pressure += job.Pressure
	}
	s.pending = still
}

// freeCandidates counts the nodes a policy offer presented with free slots —
// the denominator of the tracer's rejected-candidate accounting. Only
// computed with obs attached.
func freeCandidates(states []NodeState) int {
	c := 0
	for i := range states {
		if states[i].Free > 0 {
			c++
		}
	}
	return c
}

// recordOccupancy appends the window-start series the schedule-horizon
// figures plot.
func (s *run) recordOccupancy(now sim.Time) {
	running := 0
	for _, n := range s.nodes {
		running += len(n.resident)
	}
	util := float64(running) / float64(s.slots)
	t := now.Seconds()
	s.trace.Series("queue.depth").Append(t, float64(len(s.pending)))
	s.trace.Series("running").Append(t, float64(running))
	s.trace.Series("utilization").Append(t, util)
	s.utilSum += util
	s.utilN++
}

// fail records the first error and halts the event loop.
func (s *run) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.eng.Stop()
}

// finalize folds the run into a Result.
func (s *run) finalize() Result {
	out := Result{
		Policy:     s.cfg.Policy.Name(),
		HorizonSec: s.cfg.Horizon.Seconds(),
		EpochSec:   s.cfg.Epoch.Seconds(),
		Arrived:    len(s.jobs),
		Episodes:   s.episodes,
		Trace:      s.trace,
	}
	busy, met := 0, 0
	for _, n := range s.nodes {
		busy += n.busy
		met += n.met
	}
	out.QoSMetFrac = 1
	if busy > 0 {
		out.QoSMetFrac = float64(met) / float64(busy)
	}
	if s.utilN > 0 {
		out.MeanUtilization = s.utilSum / float64(s.utilN)
	}
	if s.cfg.Energy != nil {
		for _, n := range s.nodes {
			out.Joules += n.joules
			out.NodeJoules = append(out.NodeJoules, NodeEnergy{Node: n.node.Name, Joules: n.joules})
		}
		if out.HorizonSec > 0 {
			out.MeanWatts = out.Joules / out.HorizonSec
		}
		out.ParkedNodeWindows = s.parkedWindows
		out.LowFreqNodeWindows = s.lowFreqWindows
		out.Wakes = s.wakes
	}
	if f := s.faults; f != nil {
		out.Crashes = f.crashes
		out.Recoveries = f.recoveries
		out.Requeued = f.requeued
		out.DownNodeWindows = f.downWindows
		out.StaleNodeWindows = f.staleWindows
		out.StragglerNodeWindows = f.stragglerWindows
	}
	if o := s.cfg.Obs; o != nil && o.Profile != nil {
		out.ShardProfiles = o.Profile.Shards()
	}

	waitSum := 0.0
	var inaccs []float64
	for _, j := range s.jobs {
		o := JobOutcome{
			ID:         j.ID,
			App:        j.App.Name,
			ArrivalSec: j.ArrivalSec,
			StartSec:   j.StartSec,
			FinishSec:  j.FinishSec,
			Done:       j.Done,
			Inaccuracy: j.Inaccuracy,
			WaitSec:    j.WaitSec(out.HorizonSec),
			Retries:    j.Retries,
			Lost:       j.Lost,
		}
		if j.Node >= 0 {
			o.Node = s.nodes[j.Node].node.Name
			out.Placed++
			waitSum += o.WaitSec
			if o.WaitSec > out.MaxWaitSec {
				out.MaxWaitSec = o.WaitSec
			}
		} else if j.Lost {
			// Dropped past its retry budget: neither placed nor pending. The
			// Arrived == Placed + Pending + JobsLost ledger balances by
			// construction because this is a per-job census.
			out.JobsLost++
		} else {
			out.Pending++
		}
		if j.Done {
			out.Completed++
			inaccs = append(inaccs, j.Inaccuracy)
		}
		out.Jobs = append(out.Jobs, o)
	}
	if out.Placed > 0 {
		out.MeanWaitSec = waitSum / float64(out.Placed)
	}
	out.MeanInaccuracy = stats.Mean(inaccs)
	return out
}

// Compare runs the same arrival stream under several policies and returns
// results in policy order.
func Compare(cfg Config, policies ...Policy) ([]Result, error) {
	out := make([]Result, 0, len(policies))
	for _, pol := range policies {
		c := cfg
		c.Policy = pol
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("sched: policy %s: %w", pol.Name(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Render prints a policy comparison table.
func Render(results []Result) string {
	s := "online scheduling comparison\n"
	s += fmt.Sprintf("  %-18s %9s %10s %10s %8s %11s %11s\n",
		"policy", "QoS met", "mean wait", "max wait", "util", "mean inacc", "done/arrived")
	for _, r := range results {
		s += fmt.Sprintf("  %-18s %8.0f%% %9.1fs %9.1fs %7.0f%% %10.2f%% %7d/%d\n",
			r.Policy, r.QoSMetFrac*100, r.MeanWaitSec, r.MaxWaitSec,
			r.MeanUtilization*100, r.MeanInaccuracy, r.Completed, r.Arrived)
	}
	withEnergy := false
	for _, r := range results {
		if r.Joules > 0 {
			withEnergy = true
			break
		}
	}
	if withEnergy {
		s += "cluster energy\n"
		s += fmt.Sprintf("  %-18s %9s %8s %8s %8s %6s\n",
			"policy", "energy", "mean W", "parked", "lowfreq", "wakes")
		for _, r := range results {
			if r.Joules == 0 {
				continue
			}
			s += fmt.Sprintf("  %-18s %7.0fkJ %7.0fW %7dw %7dw %6d\n",
				r.Policy, r.Joules/1000, r.MeanWatts,
				r.ParkedNodeWindows, r.LowFreqNodeWindows, r.Wakes)
		}
	}
	return s
}
