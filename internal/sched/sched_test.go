package sched

import (
	"reflect"
	"strings"
	"testing"

	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

func testCluster() []cluster.Node {
	return []cluster.Node{
		{Name: "cache-1", Service: service.Memcached, MaxApps: 3},
		{Name: "web-1", Service: service.NGINX, MaxApps: 3},
		{Name: "db-1", Service: service.MongoDB, MaxApps: 3},
	}
}

// fastConfig is a small, quick run for functional tests.
func fastConfig(pol Policy) Config {
	return Config{
		Seed:       7,
		Nodes:      testCluster(),
		Policy:     pol,
		Horizon:    60 * sim.Second,
		Epoch:      10 * sim.Second,
		JobsPerSec: 0.15,
		BaseLoad:   0.65,
		TimeScale:  32,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Nodes: testCluster()}); err == nil {
		t.Fatal("missing policy accepted")
	}
	bad := fastConfig(FirstFit{})
	bad.Epoch = 100 * sim.Millisecond
	if _, err := Run(bad); err == nil {
		t.Fatal("sub-second epoch accepted")
	}
	bad = fastConfig(FirstFit{})
	bad.Horizon = 5 * sim.Second
	if _, err := Run(bad); err == nil {
		t.Fatal("horizon below one epoch accepted")
	}
	bad = fastConfig(FirstFit{})
	bad.Nodes = []cluster.Node{{Name: "x", Service: service.NGINX}}
	if _, err := Run(bad); err == nil {
		t.Fatal("MaxApps=0 node accepted")
	}
	bad = fastConfig(FirstFit{})
	bad.JobNames = []string{"no-such-app"}
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown job name accepted")
	}
	bad = fastConfig(FirstFit{})
	bad.BaseLoad = 2
	if _, err := Run(bad); err == nil {
		t.Fatal("overload base accepted")
	}
}

func TestHorizonRoundsToWholeEpochs(t *testing.T) {
	cfg := fastConfig(FirstFit{})
	cfg.Horizon = 65 * sim.Second // not a multiple of the 10s epoch
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HorizonSec != 60 {
		t.Fatalf("horizon %v, want rounded to 60", res.HorizonSec)
	}
}

func TestJobLifecycle(t *testing.T) {
	res, err := Run(fastConfig(FirstFit{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 {
		t.Fatal("no jobs arrived")
	}
	if res.Placed == 0 {
		t.Fatal("no jobs placed")
	}
	if res.Arrived != res.Placed+res.Pending {
		t.Fatalf("arrived %d != placed %d + pending %d", res.Arrived, res.Placed, res.Pending)
	}
	epoch := res.EpochSec
	for _, j := range res.Jobs {
		if j.StartSec >= 0 {
			if j.StartSec < j.ArrivalSec {
				t.Fatalf("job %d started at %v before arriving at %v", j.ID, j.StartSec, j.ArrivalSec)
			}
			// Placement happens at window boundaries.
			if rem := j.StartSec / epoch; rem != float64(int(rem)) {
				t.Fatalf("job %d started off-boundary at %v", j.ID, j.StartSec)
			}
			if j.Node == "" {
				t.Fatalf("started job %d has no node", j.ID)
			}
			if j.WaitSec != j.StartSec-j.ArrivalSec {
				t.Fatalf("job %d wait %v, want %v", j.ID, j.WaitSec, j.StartSec-j.ArrivalSec)
			}
		}
		if j.Done {
			if j.FinishSec < j.StartSec {
				t.Fatalf("job %d finished at %v before starting at %v", j.ID, j.FinishSec, j.StartSec)
			}
			if j.Inaccuracy < 0 || j.Inaccuracy > 10 {
				t.Fatalf("job %d inaccuracy %v%%", j.ID, j.Inaccuracy)
			}
		}
	}
	// Trace series recorded.
	for _, name := range []string{"queue.depth", "running", "utilization", "qosmet"} {
		if !res.Trace.Has(name) {
			t.Fatalf("trace missing series %q", name)
		}
	}
	if res.Episodes == 0 {
		t.Fatal("no episodes simulated")
	}
}

// TestDeterminism is the reproducibility contract: equal configs give
// structurally identical results, including every job outcome and every
// trace point.
func TestDeterminism(t *testing.T) {
	a, err := Run(fastConfig(TelemetryAware{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig(TelemetryAware{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs produced different results")
	}
	c := fastConfig(TelemetryAware{})
	c.Seed++
	d, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Jobs, d.Jobs) {
		t.Fatal("different seeds produced identical job streams")
	}
}

// TestWorkerPoolInvariance proves parallel node simulation cannot perturb
// results: one worker and many workers produce deeply equal outcomes.
func TestWorkerPoolInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison; skipped in -short")
	}
	seq := fastConfig(TelemetryAware{})
	seq.Workers = 1
	par := fastConfig(TelemetryAware{})
	par.Workers = 8
	a, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("worker count changed results")
	}
}

func TestNegativeWorkersRunsSerially(t *testing.T) {
	// Workers < 0 has always meant the serial path; it must not panic on the
	// per-worker scratch allocation.
	cfg := fastConfig(FirstFit{})
	cfg.Horizon = 20 * sim.Second
	cfg.Workers = -1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalOverrideAndJobNames(t *testing.T) {
	cfg := fastConfig(FirstFit{})
	cfg.Arrivals = workload.Uniform{QPS: 0.2}
	cfg.JobNames = []string{"canneal", "raytrace"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform arrivals at 0.2/s over a 60s horizon give exactly 12 jobs
	// (t=5,10,…,60 — the horizon instant included).
	if res.Arrived != 12 {
		t.Fatalf("arrived %d, want 12 under uniform arrivals", res.Arrived)
	}
	for i, j := range res.Jobs {
		want := cfg.JobNames[i%2]
		if j.App != want {
			t.Fatalf("job %d is %s, want cycled %s", i, j.App, want)
		}
	}
}

// TestTimeVaryingJobArrivals checks the scheduler honors TimedArrival job
// streams: a flash crowd of *job arrivals* must admit more jobs than the
// same base rate held steady.
func TestTimeVaryingJobArrivals(t *testing.T) {
	base := fastConfig(FirstFit{})
	steady, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	flashShape, err := workload.NewFlash(1, 6, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(FirstFit{})
	cfg.Arrivals, err = workload.NewShapedPoisson(cfg.JobsPerSec, flashShape)
	if err != nil {
		t.Fatal(err)
	}
	flash, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if flash.Arrived <= steady.Arrived {
		t.Fatalf("flash-crowd job stream arrived %d jobs vs steady %d; time-varying arrivals ignored",
			flash.Arrived, steady.Arrived)
	}
}

// TestTelemetryBeatsFirstFit is the headline claim of the subsystem (and the
// paper's Sec. 6.4 argument made online): under a diurnal day, consuming the
// runtime's telemetry must yield a higher QoS-met fraction than first-fit at
// equal or better mean job wait.
func TestTelemetryBeatsFirstFit(t *testing.T) {
	if testing.Short() {
		t.Skip("policy comparison; skipped in -short")
	}
	shape, err := workload.NewDiurnal(0.25, 120)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed:       42,
		Nodes:      testCluster(),
		Horizon:    120 * sim.Second,
		Epoch:      10 * sim.Second,
		JobsPerSec: 0.10,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  16,
	}
	results, err := Compare(cfg, FirstFit{}, TelemetryAware{})
	if err != nil {
		t.Fatal(err)
	}
	ff, ta := results[0], results[1]
	if ta.QoSMetFrac <= ff.QoSMetFrac {
		t.Fatalf("telemetry-aware QoS-met %.2f not above first-fit %.2f", ta.QoSMetFrac, ff.QoSMetFrac)
	}
	if ta.MeanWaitSec > ff.MeanWaitSec {
		t.Fatalf("telemetry-aware wait %.1fs worse than first-fit %.1fs", ta.MeanWaitSec, ff.MeanWaitSec)
	}
}

func TestCompareAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy run; skipped in -short")
	}
	cfg := fastConfig(nil)
	results, err := Compare(cfg, FirstFit{}, BestFit{}, TelemetryAware{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"first-fit", "best-fit", "telemetry-aware"}
	for i, w := range want {
		if results[i].Policy != w {
			t.Fatalf("result %d is %q, want %q", i, results[i].Policy, w)
		}
	}
	out := Render(results)
	for _, w := range append(want, "QoS met", "mean wait", "done/arrived") {
		if !strings.Contains(out, w) {
			t.Fatalf("render missing %q:\n%s", w, out)
		}
	}
}
