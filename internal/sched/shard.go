// Sharded multi-engine runtime: the scaling path for 100+-node clusters.
//
// The single-engine scheduler advances one cluster-horizon clock and fans
// node episodes out to a per-window worker pool; everything between episodes
// — completion folds, telemetry roll-ups — is serial. Sharded runs instead
// partition the nodes round-robin into S shards, each owning a sim.Engine
// clock (allocated as a sim.EngineGroup) and a colocate.Scratch, driven by a
// persistent goroutine. Every scheduling window, all shard clocks advance
// from the window start to its boundary concurrently: a shard schedules one
// typed event per owned busy node at the window-start instant and runs its
// engine to the boundary, so episodes within a shard execute in ascending
// node order off the engine's FIFO tiebreak, and each fold touches only
// shard-owned node and job state.
//
// At the window boundary the coordinator imposes a deterministic barrier:
// per-shard telemetry roll-ups merge in fixed shard order (order-insensitive
// by construction, see cluster.WindowStats), and the energy ledger,
// lifecycle machine, autoscaler verdicts, and pending-job placement all run
// serially over the merged snapshot in global node order — the same order
// the single-engine path uses. Sharding therefore changes where episode work
// executes, never what is computed: results are byte-identical for any shard
// count, which the golden tests pin.
package sched

import (
	"sync"
	"time"

	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/sim"
)

// shardGroup coordinates the per-shard engine runtimes of one run.
type shardGroup struct {
	s      *run
	shards []*shardRT
	wg     sync.WaitGroup

	// prof is the run's wall-clock profiler (nil with obs off). Shards
	// charge their own episode time concurrently; barrier waits are charged
	// by the coordinator after the merge. Wall-clock numbers never feed
	// back into simulation state.
	prof *obs.Profiler
}

// shardRT is one shard: a partition of the cluster's nodes advancing on its
// own engine clock, on its own goroutine.
type shardRT struct {
	g       *shardGroup
	id      int
	eng     *sim.Engine
	scratch *colocate.Scratch

	// Per-window request and outputs. winStart and busy are set by the
	// coordinator before the window broadcast; ws accumulates the shard's
	// fold roll-up and is read by the coordinator after the barrier.
	winStart float64
	busy     []int
	ws       cluster.WindowStats

	// busyNs is the shard's wall time running this window's episodes,
	// written by the shard goroutine and read by the coordinator after the
	// barrier (ordered by the WaitGroup). Only maintained when profiling.
	busyNs int64

	req chan sim.Time // window-boundary instants; closed on shutdown
}

// newShardGroup partitions the run's nodes into shards (node i belongs to
// shard i mod shards) and starts one goroutine per shard.
func newShardGroup(s *run, shards int) *shardGroup {
	g := &shardGroup{s: s}
	if s.cfg.Obs != nil {
		g.prof = s.cfg.Obs.Profile
	}
	engines := sim.NewEngineGroup(shards)
	for i := 0; i < shards; i++ {
		sh := &shardRT{
			g:       g,
			id:      i,
			eng:     engines.Engine(i),
			scratch: &colocate.Scratch{},
			req:     make(chan sim.Time),
		}
		g.shards = append(g.shards, sh)
		go sh.loop()
	}
	return g
}

// close shuts the shard goroutines down. The group must not be advanced
// afterwards.
func (g *shardGroup) close() {
	for _, sh := range g.shards {
		close(sh.req)
	}
}

// advance runs the window ending at now on every shard concurrently and
// merges the per-shard roll-ups in fixed shard order. busyIdx lists the
// occupied nodes in ascending global order; episode outcomes land in the
// run's results slice (disjoint per-node slots), and per-node folds happen
// inside the owning shard. Callers must scan results for episode errors
// after the merge.
func (g *shardGroup) advance(now sim.Time, busyIdx []int) cluster.WindowStats {
	winStart := now.Seconds() - g.s.cfg.Epoch.Seconds()
	for _, sh := range g.shards {
		sh.winStart = winStart
		sh.busy = sh.busy[:0]
	}
	for _, i := range busyIdx {
		sh := g.shards[i%len(g.shards)]
		sh.busy = append(sh.busy, i)
	}
	var t0 time.Time
	if g.prof != nil {
		t0 = time.Now() //pliant:allow wallclock — profiler measures the real barrier span for obs; never feeds sim state
	}
	g.wg.Add(len(g.shards))
	for _, sh := range g.shards {
		sh.req <- now
	}
	g.wg.Wait()
	if g.prof != nil {
		// The barrier spans the slowest shard; every other shard's idle
		// share of that span is its barrier wait — the imbalance measure.
		//pliant:allow wallclock — closes the profiler span opened above; obs-only measurement
		span := time.Since(t0).Nanoseconds()
		for _, sh := range g.shards {
			g.prof.AddBarrierWait(sh.id, span-sh.busyNs)
		}
	}

	var ws cluster.WindowStats
	for _, sh := range g.shards {
		ws.Merge(sh.ws)
	}
	return ws
}

// loop is the shard goroutine: one window advance per request.
func (sh *shardRT) loop() {
	for now := range sh.req {
		sh.window(now)
		sh.g.wg.Done()
	}
}

// window advances the shard's engine clock through one scheduling window:
// every owned busy node's episode is scheduled at the window-start instant
// and the engine runs to the boundary, leaving the shard clock aligned with
// the cluster horizon. Today this is equivalent to a plain ascending loop
// over sh.busy (every event carries the same timestamp, and the typed-event
// path allocates nothing in steady state); the engine is kept as the
// shard's dispatcher because the ROADMAP's multi-window pipelining
// follow-on runs shard clocks ahead of the barrier, which needs real
// per-shard time.
func (sh *shardRT) window(now sim.Time) {
	prof := sh.g.prof
	var t0 time.Time
	if prof != nil {
		t0 = time.Now() //pliant:allow wallclock — profiler measures real shard-window runtime for obs; never feeds sim state
	}
	sh.ws = cluster.WindowStats{}
	start := now.Add(-sh.g.s.cfg.Epoch)
	for _, i := range sh.busy {
		sh.eng.ScheduleTyped(start, sh, uint64(i))
	}
	sh.eng.Run(now)
	if prof != nil {
		//pliant:allow wallclock — closes the profiler span opened above; obs-only measurement
		sh.busyNs = time.Since(t0).Nanoseconds()
		prof.AddEpisode(sh.id, len(sh.busy), sh.busyNs)
	}
}

// OnEvent implements sim.EventHandler: one owned node's episode, run and
// folded shard-locally. Episode errors are left in the results slot for the
// coordinator's in-node-order scan.
func (sh *shardRT) OnEvent(_ sim.Time, arg uint64) {
	i := int(arg)
	s := sh.g.s
	s.results[i] = s.runEpisode(i, sh.winStart, sh.scratch)
	if ep := &s.results[i]; ep.err == nil {
		s.foldEpisode(i, ep, sh.winStart, &sh.ws)
	}
}
