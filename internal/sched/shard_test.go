package sched

import (
	"reflect"
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
)

// TestShardInvariance is the sharded runtime's core contract: any shard
// count produces results deeply equal to the single-engine path — every job
// outcome, every trace point.
func TestShardInvariance(t *testing.T) {
	base := fastConfig(TelemetryAware{})
	single, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8 /* clamped to the 3 nodes */} {
		cfg := base
		cfg.Shards = shards
		sharded, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(single, sharded) {
			t.Fatalf("shards=%d diverged from the single-engine path", shards)
		}
	}
}

// TestShardInvarianceWithEnergy covers the merge barrier's full surface:
// lifecycle transitions, autoscaler verdicts, frequency states, and the
// per-node energy ledger must all be bit-identical across shard counts.
func TestShardInvarianceWithEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("three full energy runs; skipped in -short")
	}
	base := energyConfig(7, TelemetryAware{}, approxForWatts())
	single, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 5} {
		cfg := base
		cfg.Shards = shards
		sharded, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(single, sharded) {
			t.Fatalf("shards=%d perturbed the energy-managed run", shards)
		}
	}
}

// TestShardConfigEdges pins the defaulting rules: negative counts run
// single-engine, counts above the node count clamp, and a two-shard run on a
// one-node cluster degenerates cleanly.
func TestShardConfigEdges(t *testing.T) {
	cfg := fastConfig(FirstFit{})
	cfg.Horizon = 20 * sim.Second
	cfg.Shards = -3
	if _, err := Run(cfg); err != nil {
		t.Fatalf("negative shards: %v", err)
	}
	cfg = fastConfig(FirstFit{})
	cfg.Horizon = 20 * sim.Second
	cfg.Nodes = cfg.Nodes[:1]
	cfg.Shards = 4
	if _, err := Run(cfg); err != nil {
		t.Fatalf("shards above node count: %v", err)
	}
	if got := (Config{Shards: 9, Nodes: testCluster()}).withDefaults().Shards; got != 3 {
		t.Fatalf("shards clamped to %d, want 3", got)
	}
	if got := (Config{Nodes: testCluster()}).withDefaults().Shards; got != 1 {
		t.Fatalf("default shards %d, want 1", got)
	}
}

// TestShardErrorReporting keeps error behavior aligned with the single-engine
// path: a policy that overfills a node fails the run identically whether or
// not episodes were sharded.
func TestShardErrorReporting(t *testing.T) {
	bad := fastConfig(overfillPolicy{})
	_, errSingle := Run(bad)
	bad.Shards = 3
	_, errSharded := Run(bad)
	if errSingle == nil || errSharded == nil {
		t.Fatalf("overfilling policy accepted: single=%v sharded=%v", errSingle, errSharded)
	}
	if errSingle.Error() != errSharded.Error() {
		t.Fatalf("error diverged:\nsingle:  %v\nsharded: %v", errSingle, errSharded)
	}
}

// overfillPolicy always picks node 0, ignoring capacity.
type overfillPolicy struct{}

func (overfillPolicy) Name() string               { return "overfill" }
func (overfillPolicy) Place(Job, []NodeState) int { return 0 }
