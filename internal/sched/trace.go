package sched

import (
	"fmt"
	"sort"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/trace"
)

// JobsFromTrace maps a trace's job stream onto catalog applications for the
// pending queue: trace jobs ranked by resource demand (CPU, then memory,
// then duration) map onto the candidate apps ranked by residual pressure
// (cluster.PressureOf), so a heavy trace row becomes a heavy catalog job and
// the trace's demand mix survives the translation. The i-th returned name is
// the app of the i-th arrival. Candidates default to the full catalog; the
// mapping is a pure function of the trace and the candidate set.
func JobsFromTrace(tr *trace.Trace, candidates []string) ([]string, error) {
	if tr == nil || len(tr.Jobs) == 0 {
		return nil, fmt.Errorf("sched: cannot map an empty trace onto catalog jobs")
	}
	names := candidates
	if len(names) == 0 {
		names = app.Names()
	}
	profs := make([]app.Profile, len(names))
	for i, n := range names {
		p, err := app.ByName(n)
		if err != nil {
			return nil, err
		}
		profs[i] = p
	}
	// Candidates light→heavy by pressure, name-tiebroken for determinism.
	byPressure := append([]app.Profile(nil), profs...)
	sort.SliceStable(byPressure, func(a, b int) bool {
		pa, pb := cluster.PressureOf(byPressure[a]), cluster.PressureOf(byPressure[b])
		if pa != pb {
			return pa < pb
		}
		return byPressure[a].Name < byPressure[b].Name
	})
	// Trace jobs ranked by demand: sort an index permutation, then invert it
	// so rank[i] is job i's position in the demand order.
	order := make([]int, len(tr.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := tr.Jobs[order[a]], tr.Jobs[order[b]]
		if ja.CPU != jb.CPU {
			return ja.CPU < jb.CPU
		}
		if ja.Mem != jb.Mem {
			return ja.Mem < jb.Mem
		}
		return ja.DurationSec < jb.DurationSec
	})
	rank := make([]int, len(order))
	for pos, i := range order {
		rank[i] = pos
	}
	out := make([]string, len(tr.Jobs))
	for i := range tr.Jobs {
		k := rank[i] * len(byPressure) / len(tr.Jobs)
		out[i] = byPressure[k].Name
	}
	return out, nil
}
