package sched

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/trace"
	"github.com/approx-sched/pliant/internal/workload"
)

// testTrace synthesizes and normalizes a small Google-format trace fitting
// the fast test horizon.
func testTrace(t *testing.T, jobs int, spanSec float64) *trace.Trace {
	t.Helper()
	raw := trace.Synthesize(trace.SynthConfig{Format: trace.Google, Jobs: 4 * jobs, Seed: 23})
	tr, err := trace.Parse(bytes.NewReader(raw), trace.Google)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := tr.Normalize(trace.Options{TargetSpanSec: spanSec, MaxJobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

func TestJobsFromTrace(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{
		{ID: "light", CPU: 0.1, Mem: 0.1},
		{ID: "heavy", CPU: 0.9, Mem: 0.9},
		{ID: "mid", CPU: 0.5, Mem: 0.5},
	}}
	names, err := JobsFromTrace(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("mapped %d names", len(names))
	}
	// Demand order maps onto pressure order: the heaviest trace job gets an
	// app at least as heavy as the lightest's.
	pressure := func(name string) float64 {
		p, err := app.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return cluster.PressureOf(p)
	}
	if pressure(names[1]) < pressure(names[0]) || pressure(names[1]) < pressure(names[2]) {
		t.Errorf("heavy trace job mapped to %s (%.1f) below %s (%.1f)/%s (%.1f)",
			names[1], pressure(names[1]), names[0], pressure(names[0]), names[2], pressure(names[2]))
	}
	// The mapping is a pure function: same inputs, same names.
	again, _ := JobsFromTrace(tr, nil)
	if !reflect.DeepEqual(names, again) {
		t.Error("mapping not deterministic")
	}
	// Candidate narrowing: every mapped name stays inside the candidate set.
	narrow, err := JobsFromTrace(tr, []string{"canneal", "SNP"})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range narrow {
		if n != "canneal" && n != "SNP" {
			t.Errorf("mapped name %s outside candidates", n)
		}
	}
	if _, err := JobsFromTrace(&trace.Trace{}, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := JobsFromTrace(tr, []string{"no-such-app"}); err == nil {
		t.Error("unknown candidate accepted")
	}
}

// TestSchedTraceReplay runs the scheduler on a replayed trace: every trace
// job whose instant falls inside the horizon arrives exactly once, the run
// is deterministic, and the sharded path reproduces the single-engine bytes.
func TestSchedTraceReplay(t *testing.T) {
	tr := testTrace(t, 12, 50)
	cfg := fastConfig(TelemetryAware{})
	cfg.JobsPerSec = 0
	cfg.Trace = tr

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	within := 0
	for _, j := range tr.Jobs {
		if j.ArrivalSec < cfg.Horizon.Seconds() {
			within++
		}
	}
	if res.Arrived != within {
		t.Errorf("arrived %d jobs, trace has %d inside the horizon", res.Arrived, within)
	}
	if res.Completed == 0 {
		t.Error("no trace job completed")
	}
	// Arrival instants match the trace (modulo nanosecond rounding and the
	// 1ns duplicate collapse).
	for i, j := range res.Jobs {
		if d := j.ArrivalSec - tr.Jobs[i].ArrivalSec; d < -1e-6 || d > 1e-6 {
			t.Fatalf("job %d arrived at %vs, trace says %vs", i, j.ArrivalSec, tr.Jobs[i].ArrivalSec)
		}
	}

	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("trace replay not deterministic across runs")
	}

	sharded := cfg
	sharded.Shards = 2
	sres, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Jobs, sres.Jobs) || res.QoSMetFrac != sres.QoSMetFrac {
		t.Error("sharded trace replay diverges from single-engine")
	}
}

func TestTraceConfigValidation(t *testing.T) {
	tr := testTrace(t, 6, 50)
	cfg := fastConfig(FirstFit{})
	cfg.Trace = tr
	cfg.Arrivals = workload.Uniform{QPS: 1}
	if _, err := Run(cfg); err == nil {
		t.Error("Trace alongside Arrivals accepted")
	}
	cfg = fastConfig(FirstFit{})
	cfg.Trace = &trace.Trace{}
	if _, err := Run(cfg); err == nil {
		t.Error("empty trace accepted")
	}
	// A trace needs no JobsPerSec: the stream sizes itself.
	cfg = fastConfig(FirstFit{})
	cfg.JobsPerSec = 0
	cfg.Trace = tr
	if _, err := Run(cfg); err != nil {
		t.Errorf("trace-only config rejected: %v", err)
	}
}

// TestAzureTraceReplay runs the scheduler on an Azure-format trace: both
// supported schemas reach the pending queue through the same trace.Job path.
func TestAzureTraceReplay(t *testing.T) {
	raw := trace.Synthesize(trace.SynthConfig{Format: trace.Azure, Jobs: 40, Seed: 31})
	parsed, err := trace.Parse(bytes.NewReader(raw), trace.Azure)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := parsed.Normalize(trace.Options{TargetSpanSec: 50, MaxJobs: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(FirstFit{})
	cfg.JobsPerSec = 0
	cfg.Trace = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 10 || res.Completed == 0 {
		t.Errorf("azure replay: arrived=%d completed=%d", res.Arrived, res.Completed)
	}
}

// TestTraceReplayWithEnergyAndAutoscaler exercises the full stack the issue
// names: trace arrivals driving a sharded, energy-modeled, autoscaled run.
func TestTraceReplayWithEnergyAndAutoscaler(t *testing.T) {
	tr := testTrace(t, 10, 100)
	cfg := energyConfig(11, TelemetryAware{}, approxForWatts())
	cfg.JobsPerSec = 0
	cfg.Trace = tr
	cfg.Shards = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Joules <= 0 {
		t.Errorf("arrived=%d joules=%v — energy-managed replay did not run", res.Arrived, res.Joules)
	}
}
