package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeSubmit measures sustained submissions/s through the HTTP
// ingest path into a running session: POST /v1/sessions/{id}/jobs, one job
// per request, against a paced submission-only session. The pace keeps the
// pump parked on its ticker between windows (the interactive regime the
// ingest queue exists for), the horizon is effectively unbounded for the
// benchmark's duration, and the queue is deep enough that a 429 means the
// pump momentarily fell behind — the benchmark retries those, so ns/op
// prices the accepted path.
func BenchmarkServeSubmit(b *testing.B) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sess, err := srv.CreateSession(Spec{
		Name:       "bench",
		SubmitOnly: true,
		Policies:   []string{"first-fit"},
		HorizonSec: 1e7,
		EpochSec:   12,
		TimeScale:  16,
		QueueCap:   4096,
		PaceMS:     20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		b.StopTimer()
		sess.Stop()
		sess.Wait()
	}()

	url := ts.URL + "/v1/sessions/" + sess.ID + "/jobs"
	body := `{"jobs":["canneal"]}`
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			resp, err := client.Post(url, "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			status := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests {
				b.Fatalf("submit %d: status %d", i, status)
			}
		}
	}
	b.StopTimer()
	st := sess.Status()
	if st.Accepted < b.N {
		b.Fatalf("accepted %d < %d submitted", st.Accepted, b.N)
	}
	b.ReportMetric(float64(st.Accepted)/b.Elapsed().Seconds(), "submits/s")
}
