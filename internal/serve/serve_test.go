package serve

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/export"
	"github.com/approx-sched/pliant/internal/sched"
)

// paritySpec is the daemon/batch determinism fixture: the committed
// synthesized Google trace replayed under two candidate policies.
func paritySpec(shards int) Spec {
	csv, err := os.ReadFile("../trace/testdata/google_tasks.csv")
	if err != nil {
		panic(err)
	}
	return Spec{
		Name:       "parity",
		Seed:       7,
		Nodes:      []string{"memcached", "nginx", "mongodb"},
		Policies:   []string{"telemetry", "first-fit"},
		HorizonSec: 120,
		EpochSec:   12,
		Shape:      "diurnal",
		TimeScale:  16,
		Shards:     shards,
		Trace: &TraceSpec{
			Format:  "google",
			CSV:     string(csv),
			MaxJobs: 16,
		},
	}
}

// batchExports runs the same resolved config under batch sched.Run for one
// policy and returns the JSON and CSV export hashes.
func batchExports(t *testing.T, sp Spec, policy int) (jsonHash, csvHash string) {
	t.Helper()
	res, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Cfg
	cfg.Policy = res.Policies[policy]
	out, err := sched.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var j, c bytes.Buffer
	if err := export.WriteSchedResultJSON(&j, out); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteSchedTraceCSV(&c, out); err != nil {
		t.Fatal(err)
	}
	return sha(j.Bytes()), sha(c.Bytes())
}

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// get fetches a daemon URL and returns status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDaemonBatchParity pins the tentpole determinism claim: a shadow
// session replayed through the daemon produces byte-identical JSON/CSV
// exports to batch sched.Run on the same config, for every candidate
// policy, at shards 1 and 4 — and the shard counts agree with each other.
func TestDaemonBatchParity(t *testing.T) {
	type hashes struct{ j, c string }
	byShards := map[int]map[string]hashes{}
	for _, shards := range []int{1, 4} {
		sp := paritySpec(shards)
		srv := NewServer(Options{})
		ts := httptest.NewServer(srv)
		defer ts.Close()

		body, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st SessionStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: status %d (%+v)", resp.StatusCode, st)
		}

		sess, ok := srv.Session(st.ID)
		if !ok {
			t.Fatalf("session %q not registered", st.ID)
		}
		sess.Wait()

		byShards[shards] = map[string]hashes{}
		for i, policy := range []string{"telemetry", "first-fit"} {
			code, j := get(t, ts.URL+"/v1/sessions/"+st.ID+"/result?policy="+policy)
			if code != http.StatusOK {
				t.Fatalf("result %s: status %d: %s", policy, code, j)
			}
			code, c := get(t, ts.URL+"/v1/sessions/"+st.ID+"/result.csv?policy="+policy)
			if code != http.StatusOK {
				t.Fatalf("result.csv %s: status %d: %s", policy, code, c)
			}
			daemon := hashes{sha(j), sha(c)}
			wantJ, wantC := batchExports(t, sp, i)
			if daemon.j != wantJ || daemon.c != wantC {
				t.Errorf("shards=%d policy=%s: daemon exports diverge from batch sched.Run\n  json %s vs %s\n  csv  %s vs %s",
					shards, policy, daemon.j, wantJ, daemon.c, wantC)
			}
			byShards[shards][policy] = daemon
		}

		// The shadow verdicts cover every window with both policies.
		code, vbody := get(t, ts.URL+"/v1/sessions/"+st.ID+"/verdicts")
		if code != http.StatusOK {
			t.Fatalf("verdicts: status %d", code)
		}
		var verdicts []WindowVerdict
		if err := json.Unmarshal(vbody, &verdicts); err != nil {
			t.Fatal(err)
		}
		if len(verdicts) != 10 {
			t.Errorf("shards=%d: got %d verdicts, want 10", shards, len(verdicts))
		}
		for _, v := range verdicts {
			if len(v.Policies) != 2 {
				t.Fatalf("window %d: %d policy verdicts, want 2", v.Window, len(v.Policies))
			}
		}
	}
	for policy, one := range byShards[1] {
		if four := byShards[4][policy]; one != four {
			t.Errorf("policy %s: shards=1 and shards=4 daemon exports differ: %+v vs %+v", policy, one, four)
		}
	}
}

// TestSubmitBackpressure pins the ingest contract: a saturated queue answers
// 429 + Retry-After, and accepted jobs are neither dropped nor reordered —
// at drain the ledger balances (accepted == injected == arrived, and
// arrived == placed + pending + lost).
func TestSubmitBackpressure(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sp := Spec{
		Name:       "bp",
		SubmitOnly: true,
		HorizonSec: 600,
		EpochSec:   12,
		TimeScale:  16,
		QueueCap:   4,
		PaceMS:     250, // slow pump: the queue can actually fill
	}
	body, _ := json.Marshal(sp)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st SessionStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	names := app.Names()
	var acceptedOrder []string
	accepted, rejected := 0, 0
	for i := 0; i < 60 && rejected == 0; i++ {
		name := names[i%len(names)]
		payload, _ := json.Marshal(map[string][]string{"jobs": {name}})
		resp, err := http.Post(ts.URL+"/v1/sessions/"+st.ID+"/jobs", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
			acceptedOrder = append(acceptedOrder, name)
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
	}
	if rejected == 0 {
		t.Fatal("queue of 4 never saturated across 60 submissions")
	}
	if accepted < sp.QueueCap {
		t.Fatalf("only %d accepted before first 429; want at least the queue capacity %d", accepted, sp.QueueCap)
	}

	// Drain: DELETE finalizes with everything accepted injected.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var final SessionStatus
	json.NewDecoder(resp.Body).Decode(&final)
	resp.Body.Close()
	if final.State != string(StateStopped) && final.State != string(StateDone) {
		t.Fatalf("after DELETE: state %s (%s)", final.State, final.Error)
	}
	if final.Accepted != accepted || final.Injected != accepted {
		t.Errorf("ledger: accepted=%d injected=%d, want both %d", final.Accepted, final.Injected, accepted)
	}

	code, rbody := get(t, ts.URL+"/v1/sessions/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, rbody)
	}
	var res struct {
		Arrived   int  `json:"arrived"`
		Placed    int  `json:"placed"`
		Pending   int  `json:"pending"`
		JobsLost  int  `json:"jobs_lost"`
		Truncated bool `json:"truncated"`
		Jobs      []struct {
			App string `json:"app"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(rbody, &res); err != nil {
		t.Fatal(err)
	}
	if res.Arrived != accepted {
		t.Errorf("arrived %d, want the %d accepted submissions (submit-only session)", res.Arrived, accepted)
	}
	if res.Arrived != res.Placed+res.Pending+res.JobsLost {
		t.Errorf("ledger: arrived %d != placed %d + pending %d + lost %d", res.Arrived, res.Placed, res.Pending, res.JobsLost)
	}
	if !res.Truncated {
		t.Error("stopped-early session's export not marked truncated")
	}
	// No reordering: job IDs are assigned in injection order, which must be
	// acceptance order.
	for i, j := range res.Jobs {
		if j.App != acceptedOrder[i] {
			t.Fatalf("job %d: app %q, want %q (accepted order)", i, j.App, acceptedOrder[i])
		}
	}
}

// TestEventsOrdering pins the SSE contract: one subscriber sees strictly
// increasing event ids, window events in window order, and a terminal done
// frame when the session finalizes.
func TestEventsOrdering(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sp := Spec{
		Name:       "sse",
		HorizonSec: 120,
		EpochSec:   12,
		Policies:   []string{"first-fit"},
		TimeScale:  16,
		PaceMS:     30, // slow enough for the subscriber to attach early
	}
	body, _ := json.Marshal(sp)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st SessionStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/sessions/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var lastID, lastWindow int64 = 0, -1
	windows, placements, dones := 0, 0, 0
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var event string
	deadline := time.Now().Add(30 * time.Second)
	for scanner.Scan() {
		if time.Now().After(deadline) {
			t.Fatal("stream did not terminate")
		}
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			var id int64
			fmt.Sscanf(line, "id: %d", &id)
			if id <= lastID {
				t.Fatalf("event id %d after %d: not strictly increasing", id, lastID)
			}
			lastID = id
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "window":
				var v WindowVerdict
				if err := json.Unmarshal([]byte(data), &v); err != nil {
					t.Fatal(err)
				}
				if int64(v.Window) <= lastWindow {
					t.Fatalf("window %d after %d: out of order", v.Window, lastWindow)
				}
				lastWindow = int64(v.Window)
				windows++
			case "placement":
				placements++
			case "done":
				dones++
			}
		}
	}
	if dones != 1 {
		t.Errorf("got %d done frames, want exactly 1", dones)
	}
	if windows == 0 {
		t.Error("no window frames observed")
	}
	if placements == 0 {
		t.Error("no placement frames observed")
	}
}

// TestSubmitValidation pins the 400/409 edges of the submission API.
func TestSubmitValidation(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sp := Spec{SubmitOnly: true, HorizonSec: 60, EpochSec: 12, TimeScale: 16, PaceMS: 100}
	body, _ := json.Marshal(sp)
	resp, _ := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	var st SessionStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	// Unknown app name: rejected whole with 400, nothing accepted.
	payload, _ := json.Marshal(map[string][]string{"jobs": {"no-such-app"}})
	resp, _ = http.Post(ts.URL+"/v1/sessions/"+st.ID+"/jobs", "application/json", bytes.NewReader(payload))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown app: status %d, want 400", resp.StatusCode)
	}

	// Stop the session; further submissions answer 409.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+st.ID, nil)
	resp, _ = http.DefaultClient.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	payload, _ = json.Marshal(map[string][]string{"jobs": {app.Names()[0]}})
	resp, _ = http.Post(ts.URL+"/v1/sessions/"+st.ID+"/jobs", "application/json", bytes.NewReader(payload))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("submit after stop: status %d, want 409", resp.StatusCode)
	}

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || !bytes.Contains(metrics, []byte("pliant_serve_sessions_created_total")) {
		t.Errorf("metrics: %d\n%s", code, metrics)
	}
}

// TestShadowReplayLibrary drives the non-HTTP shadow helper and checks the
// verdict diffs are populated.
func TestShadowReplayLibrary(t *testing.T) {
	out, err := ShadowReplay(Spec{
		Policies:   []string{"telemetry", "spread"},
		HorizonSec: 96,
		EpochSec:   12,
		TimeScale:  16,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || len(out.Policies) != 2 {
		t.Fatalf("got %d results / %d policies, want 2/2", len(out.Results), len(out.Policies))
	}
	if len(out.Verdicts) != 8 {
		t.Fatalf("got %d verdicts, want 8", len(out.Verdicts))
	}
	for _, res := range out.Results {
		if res.Truncated {
			t.Errorf("policy %s: full-horizon shadow replay marked truncated", res.Policy)
		}
	}
}
