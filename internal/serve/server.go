package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/export"
	"github.com/approx-sched/pliant/internal/obs"
)

// Options tunes a Server.
type Options struct {
	// MaxSessions bounds concurrently live (unfinalized) sessions; session
	// creation past the bound answers 429. 0 means DefaultMaxSessions.
	MaxSessions int

	// Version is the string /version reports (build info; optional).
	Version string
}

// DefaultMaxSessions bounds live sessions when Options doesn't.
const DefaultMaxSessions = 16

// serverMetrics is the daemon-level instrument set behind GET /metrics,
// written with obs.WriteMetricsProm. The obs.Registry is not thread-safe, so
// every touch goes through the mutex here — session pumps and HTTP handlers
// both report through these methods.
type serverMetrics struct {
	mu  sync.Mutex
	reg *obs.Registry

	sessionsCreated  *obs.Counter
	sessionsFinished *obs.Counter
	sessionsActive   *obs.Gauge
	jobsAccepted     *obs.Counter
	jobsRejected     *obs.Counter
	windows          *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:              reg,
		sessionsCreated:  reg.Counter("pliant_serve_sessions_created_total", "Sessions created over the daemon's lifetime."),
		sessionsFinished: reg.Counter("pliant_serve_sessions_finished_total", "Sessions finalized (done, stopped, or failed)."),
		sessionsActive:   reg.Gauge("pliant_serve_sessions_active", "Sessions currently running."),
		jobsAccepted:     reg.Counter("pliant_serve_jobs_accepted_total", "Job submissions accepted into ingest queues."),
		jobsRejected:     reg.Counter("pliant_serve_jobs_rejected_total", "Job submissions bounced with 429 under backpressure."),
		windows:          reg.Counter("pliant_serve_windows_total", "Scheduling windows advanced across all sessions."),
	}
}

func (m *serverMetrics) onSessionCreated() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsCreated.Inc()
	m.sessionsActive.Set(m.sessionsCreated.Value() - m.sessionsFinished.Value())
}

func (m *serverMetrics) onSessionFinished() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsFinished.Inc()
	m.sessionsActive.Set(m.sessionsCreated.Value() - m.sessionsFinished.Value())
}

func (m *serverMetrics) onAccepted(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsAccepted.Add(float64(n))
}

func (m *serverMetrics) onRejected(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsRejected.Add(float64(n))
}

func (m *serverMetrics) onWindow() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.windows.Inc()
}

func (m *serverMetrics) writeProm(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return obs.WriteMetricsProm(w, m.reg)
}

// Server is the shadow-scheduler daemon: a session manager plus the HTTP API
// over it. It implements http.Handler; cmd/pliant-served mounts it directly.
//
// Routes (all JSON unless noted):
//
//	POST   /v1/sessions                  create a session from a Spec body
//	GET    /v1/sessions                  list session statuses
//	GET    /v1/sessions/{id}             one session's status
//	DELETE /v1/sessions/{id}             stop (finalize truncated) a session
//	POST   /v1/sessions/{id}/jobs        submit {"jobs":[names]} (429 when full)
//	GET    /v1/sessions/{id}/events      Server-Sent Events stream
//	GET    /v1/sessions/{id}/verdicts    per-window shadow verdicts
//	GET    /v1/sessions/{id}/result      finalized result JSON (?policy=)
//	GET    /v1/sessions/{id}/result.csv  finalized trace CSV (?policy=)
//	GET    /v1/sessions/{id}/metrics     per-session Prometheus metrics (?policy=)
//	GET    /metrics                      daemon Prometheus metrics
//	GET    /healthz                      liveness ("ok")
//	GET    /version                      build identity
//
// Paths are parsed manually (no 1.22 mux patterns) to keep the module on its
// declared go 1.21.
type Server struct {
	opts    Options
	metrics *serverMetrics

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string
	nextID   int
	draining bool
}

// NewServer returns an empty session manager.
func NewServer(opts Options) *Server {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	return &Server{
		opts:     opts,
		metrics:  newServerMetrics(),
		sessions: make(map[string]*Session),
	}
}

// CreateSession resolves a spec and starts its session — the library form of
// POST /v1/sessions (tests and examples drive it directly).
func (s *Server) CreateSession(sp Spec) (*Session, error) {
	res, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: draining, not accepting sessions")
	}
	live := 0
	for _, sess := range s.sessions {
		if !sess.Done() {
			live++
		}
	}
	if live >= s.opts.MaxSessions {
		s.mu.Unlock()
		return nil, errTooManySessions
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.mu.Unlock()

	sess, err := NewSession(id, res, s.metrics)
	if err != nil {
		return nil, err
	}
	s.metrics.onSessionCreated()
	s.mu.Lock()
	s.sessions[id] = sess
	s.order = append(s.order, id)
	s.mu.Unlock()
	return sess, nil
}

var errTooManySessions = fmt.Errorf("serve: session limit reached")

// Session returns a session by ID.
func (s *Server) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// Sessions returns every session in creation order.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id])
	}
	return out
}

// Drain is the graceful-shutdown path: stop accepting new sessions, ask
// every running session to finalize (open windows finish first, queued
// submissions are injected, exports become available), and wait for all
// pumps to exit. Safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	sessions := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		sessions = append(sessions, s.sessions[id])
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.Stop()
	}
	for _, sess := range sessions {
		sess.Wait()
	}
}

// ServeHTTP routes the API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case path == "/version":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, s.opts.Version)
	case path == "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.writeProm(w); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
	case path == "/v1/sessions":
		switch r.Method {
		case http.MethodPost:
			s.handleCreate(w, r)
		case http.MethodGet:
			s.handleList(w)
		default:
			httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	case strings.HasPrefix(path, "/v1/sessions/"):
		s.handleSession(w, r, strings.TrimPrefix(path, "/v1/sessions/"))
	default:
		httpError(w, http.StatusNotFound, "no such route")
	}
}

// handleSession dispatches /v1/sessions/{id}[/{sub}].
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request, rest string) {
	id, sub := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, sub = rest[:i], rest[i+1:]
	}
	sess, ok := s.Session(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, sess.Status())
	case sub == "" && r.Method == http.MethodDelete:
		sess.Stop()
		sess.Wait()
		writeJSON(w, http.StatusOK, sess.Status())
	case sub == "jobs" && r.Method == http.MethodPost:
		s.handleSubmit(w, r, sess)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, sess)
	case sub == "verdicts" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, sess.Verdicts())
	case sub == "result" && r.Method == http.MethodGet:
		res, err := sess.ResultFor(r.URL.Query().Get("policy"))
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := export.WriteSchedResultJSON(w, res); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
	case sub == "result.csv" && r.Method == http.MethodGet:
		res, err := sess.ResultFor(r.URL.Query().Get("policy"))
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := export.WriteSchedTraceCSV(w, res); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
	case sub == "metrics" && r.Method == http.MethodGet:
		ob, err := sess.Observer(r.URL.Query().Get("policy"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		// The registry is written by the pump between windows; a live read
		// can tear across a boundary, so scrape-grade reads happen after the
		// session finalizes (the pump is gone then). Documented best-effort.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteMetricsProm(w, ob.Metrics); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
	default:
		httpError(w, http.StatusNotFound, fmt.Sprintf("no route %q", sub))
	}
}

// handleCreate builds a session from the Spec body.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	sess, err := s.CreateSession(sp)
	if err != nil {
		status := http.StatusBadRequest
		if err == errTooManySessions {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, sess.Status())
}

// handleList renders every session's status in creation order.
func (s *Server) handleList(w http.ResponseWriter) {
	statuses := []SessionStatus{}
	for _, sess := range s.Sessions() {
		statuses = append(statuses, sess.Status())
	}
	writeJSON(w, http.StatusOK, statuses)
}

// submitBody is the POST .../jobs payload.
type submitBody struct {
	Jobs []string `json:"jobs"`
}

// handleSubmit validates the batch against the catalog (400), then offers it
// to the ingest queue: 202 accepted, 429 + Retry-After when the queue is
// full, 409 when the session stopped accepting.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, sess *Session) {
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if len(body.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "submit at least one job name")
		return
	}
	for _, name := range body.Jobs {
		if _, err := app.ByName(name); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	ok, err := sess.Submit(body.Jobs)
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	if !ok {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest queue full")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]interface{}{
		"accepted": len(body.Jobs),
		"session":  sess.ID,
	})
}

// handleEvents streams the session's SSE feed until the session ends or the
// client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, sess *Session) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, done := sess.Events()
	if done {
		// Session already finalized: emit a terminal frame and finish.
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: done\ndata: {\"session\":%q}\n\n", sess.ID)
		return
	}
	defer sess.EventsUnsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	ctx := r.Context()
	for {
		select {
		case frame, open := <-ch:
			if !open {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// ListenAndServe runs the daemon on addr until the returned http.Server is
// shut down. Exposed for cmd/pliant-served; tests use httptest with the
// Server as handler.
func (s *Server) ListenAndServe(addr string) (*http.Server, error) {
	hs := &http.Server{Addr: addr, Handler: s, ReadHeaderTimeout: 10 * time.Second}
	return hs, hs.ListenAndServe()
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
