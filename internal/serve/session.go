package serve

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/sched"
)

// SessionState is a session's lifecycle position.
type SessionState string

const (
	// StateRunning: the pump goroutine is advancing windows.
	StateRunning SessionState = "running"
	// StateDone: the run reached its horizon and finalized.
	StateDone SessionState = "done"
	// StateStopped: the session was stopped (DELETE, daemon drain) before
	// its horizon; results are finalized and marked truncated.
	StateStopped SessionState = "stopped"
	// StateFailed: a runner errored; Error carries the message.
	StateFailed SessionState = "failed"
)

// Session is one named run advanced faster-than-real-time on its own
// goroutine: K lockstep sched.Runner engines (one per candidate policy — a
// single engine is a plain session, several a shadow replay), a bounded
// ingest queue feeding all K, an SSE hub, and per-window verdicts. All
// engine access happens on the pump goroutine; handlers touch only the
// mutex-guarded view the pump publishes after each window.
type Session struct {
	ID   string
	Name string

	res      Resolved
	runners  []*sched.Runner
	obsv     []*obs.Observer
	cursor   uint64 // baseline tracer drain cursor for SSE placement events
	metrics  *serverMetrics
	ingest   chan []string
	stopCh   chan struct{}
	stopOnce sync.Once
	doneCh   chan struct{}
	events   *hub
	eventSeq uint64

	mu       sync.Mutex
	state    SessionState
	failMsg  string
	accepted int
	rejected int
	injected int
	snaps    []sched.Snapshot
	verdicts []WindowVerdict
	results  []sched.Result
}

// NewSession resolves nothing — it takes an already-Resolved spec — builds
// one runner per policy, and starts the pump. The caller owns naming.
func NewSession(id string, res Resolved, metrics *serverMetrics) (*Session, error) {
	s := &Session{
		ID:      id,
		Name:    res.Name,
		res:     res,
		metrics: metrics,
		ingest:  make(chan []string, res.QueueCap),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
		events:  newHub(),
		state:   StateRunning,
	}
	if s.Name == "" {
		s.Name = id
	}
	for _, p := range res.Policies {
		cfg := res.Cfg
		cfg.Policy = p
		cfg.Obs = obs.New(obs.Options{})
		r, err := sched.NewRunner(cfg)
		if err != nil {
			for _, prev := range s.runners {
				prev.Close()
			}
			return nil, err
		}
		s.runners = append(s.runners, r)
		s.obsv = append(s.obsv, cfg.Obs)
	}
	s.snaps = make([]sched.Snapshot, len(s.runners))
	for i, r := range s.runners {
		s.snaps[i] = r.Snapshot()
	}
	go s.pump()
	return s, nil
}

// Policies names the session's candidate policies in engine order (index 0
// is the baseline every diff is taken against).
func (s *Session) Policies() []string {
	names := make([]string, len(s.res.Policies))
	for i, p := range s.res.Policies {
		names[i] = p.Name()
	}
	return names
}

// Submit offers one batch of (pre-validated) job names to the ingest queue.
// The batch is atomic: it is accepted whole or rejected whole, and accepted
// batches are injected into every engine in acceptance order — the queue is
// the ordering guarantee behind the 429 contract. ok=false means the queue
// is full (answer 429 + Retry-After); err means the session no longer
// accepts (answer 409).
func (s *Session) Submit(names []string) (ok bool, err error) {
	if len(names) == 0 {
		return false, fmt.Errorf("serve: empty submission")
	}
	batch := append([]string(nil), names...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateRunning {
		return false, fmt.Errorf("serve: session %s is %s", s.ID, s.state)
	}
	// The send happens under the state lock: once the pump flips the state
	// away from running it drains the queue to empty exactly once, so a
	// batch accepted here is always injected before finalize — accepted
	// submissions are never dropped.
	select {
	case s.ingest <- batch:
		s.accepted += len(batch)
		if s.metrics != nil {
			s.metrics.onAccepted(len(batch))
		}
		return true, nil
	default:
		s.rejected += len(batch)
		if s.metrics != nil {
			s.metrics.onRejected(len(batch))
		}
		return false, nil
	}
}

// Stop asks the pump to finalize early (open window finishes first). It
// returns immediately; Wait observes completion.
func (s *Session) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
}

// Wait blocks until the pump has finalized the session.
func (s *Session) Wait() { <-s.doneCh }

// Done reports (without blocking) whether the session has finalized.
func (s *Session) Done() bool {
	select {
	case <-s.doneCh:
		return true
	default:
		return false
	}
}

// pump is the session goroutine: inject queued submissions, step every
// engine one window in lockstep, publish the window's snapshots/verdict/SSE
// frames, repeat to the horizon (or a stop), then drain and finalize.
func (s *Session) pump() {
	defer close(s.doneCh)
	var tick *time.Ticker
	if s.res.PaceMS > 0 {
		//pliant:allow wallclock — pace_ms is opt-in real-time pacing for wall-clock consumers; windows advance identically with or without it
		tick = time.NewTicker(time.Duration(s.res.PaceMS) * time.Millisecond)
		defer tick.Stop()
	}
	stopped := false
	for {
		select {
		case <-s.stopCh:
			stopped = true
		default:
		}
		if stopped {
			break
		}
		if err := s.injectQueued(); err != nil {
			s.finish(err, false)
			return
		}
		more, err := s.stepAll()
		if err != nil {
			s.finish(err, false)
			return
		}
		s.publishWindow()
		if !more {
			break
		}
		if tick != nil {
			select {
			case <-tick.C:
			case <-s.stopCh:
				stopped = true
			}
		} else {
			// Flat-out sessions yield between windows so already-runnable
			// handler goroutines get CPU on small GOMAXPROCS. (Goroutines
			// parked in the netpoller still ride the runtime's sysmon
			// cadence — interactive sessions should set a pace.)
			runtime.Gosched()
		}
	}
	s.finish(nil, stopped)
}

// injectQueued drains the ingest queue without blocking and injects each
// batch into every engine, preserving acceptance order.
func (s *Session) injectQueued() error {
	for {
		select {
		case batch := <-s.ingest:
			for _, r := range s.runners {
				if err := r.Inject(batch...); err != nil {
					return err
				}
			}
			s.mu.Lock()
			s.injected += len(batch)
			s.mu.Unlock()
		default:
			return nil
		}
	}
}

// stepAll advances every engine exactly one window. The engines share
// horizon and epoch, so they agree on more.
func (s *Session) stepAll() (more bool, err error) {
	for _, r := range s.runners {
		m, err := r.StepWindow()
		if err != nil {
			return false, err
		}
		more = m
	}
	if s.metrics != nil {
		s.metrics.onWindow()
	}
	return more, nil
}

// finish flips the session out of running (after which Submit rejects),
// drains the last accepted batches into the engines, finalizes every
// engine, and closes the event stream. Runs on the pump goroutine only.
func (s *Session) finish(err error, stopped bool) {
	s.mu.Lock()
	switch {
	case err != nil:
		s.state = StateFailed
		s.failMsg = err.Error()
	case stopped:
		s.state = StateStopped
	default:
		s.state = StateDone
	}
	s.mu.Unlock()
	if err == nil {
		// Everything accepted before the state flip lands in the arrival
		// ledger (as pending jobs at the final instant), so at drain
		// accepted submissions are exactly the injected ones.
		if ierr := s.injectQueued(); ierr != nil && err == nil {
			err = ierr
			s.mu.Lock()
			s.state = StateFailed
			s.failMsg = ierr.Error()
			s.mu.Unlock()
		}
	}
	results := make([]sched.Result, len(s.runners))
	snaps := make([]sched.Snapshot, len(s.runners))
	for i, r := range s.runners {
		snaps[i] = r.Snapshot()
		res, ferr := r.Finalize()
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			s.mu.Lock()
			s.state = StateFailed
			s.failMsg = ferr.Error()
			s.mu.Unlock()
			continue
		}
		results[i] = res
	}
	s.mu.Lock()
	s.snaps = snaps
	if s.state != StateFailed {
		s.results = results
	}
	state := s.state
	s.mu.Unlock()
	s.publishEvent("done", map[string]interface{}{"session": s.ID, "state": string(state)})
	s.events.close()
	if s.metrics != nil {
		s.metrics.onSessionFinished()
	}
}

// PolicyVerdict is one policy's standing at a window boundary.
type PolicyVerdict struct {
	Policy     string  `json:"policy"`
	QoSMetFrac float64 `json:"qos_met_frac"`
	Joules     float64 `json:"joules,omitempty"`
	Placed     int     `json:"placed"`
	Pending    int     `json:"pending"`
	Completed  int     `json:"completed"`
	Running    int     `json:"running"`

	// DiffPlacements counts jobs this policy currently hosts on a different
	// node than the baseline (engine 0) — the shadow replay's "where do they
	// disagree" signal. Always 0 for the baseline itself.
	DiffPlacements int `json:"diff_placements,omitempty"`
}

// WindowVerdict is the per-window side-by-side of a shadow session (a
// single-policy session gets one entry and no diffs).
type WindowVerdict struct {
	Window   int             `json:"window"`
	NowSec   float64         `json:"now_sec"`
	Policies []PolicyVerdict `json:"policies"`
}

// publishWindow snapshots every engine after a stepped window, stores the
// verdict, and emits the window's SSE frames (baseline placement decisions
// drained from the tracer, then the window verdict).
func (s *Session) publishWindow() {
	snaps := make([]sched.Snapshot, len(s.runners))
	for i, r := range s.runners {
		snaps[i] = r.Snapshot()
	}
	v := WindowVerdict{Window: snaps[0].Window, NowSec: snaps[0].NowSec}
	for i, snap := range snaps {
		pv := PolicyVerdict{
			Policy:     s.res.Policies[i].Name(),
			QoSMetFrac: snap.QoSMetFrac,
			Joules:     snap.Joules,
			Placed:     snap.Placed,
			Pending:    snap.Pending,
			Completed:  snap.Completed,
			Running:    snap.Running,
		}
		if i > 0 {
			base := snaps[0].JobNodes
			for id, node := range snap.JobNodes {
				if id < len(base) && node != base[id] {
					pv.DiffPlacements++
				}
			}
		}
		v.Policies = append(v.Policies, pv)
	}
	s.mu.Lock()
	s.snaps = snaps
	s.verdicts = append(s.verdicts, v)
	s.mu.Unlock()

	// Baseline placement decisions since the last drain, in emission order.
	s.cursor = s.obsv[0].Tracer.RecordsSince(s.cursor, func(r obs.Record) {
		if r.Kind != obs.KindPlacement {
			return
		}
		node := ""
		if r.Node >= 0 && int(r.Node) < len(s.res.Cfg.Nodes) {
			node = s.res.Cfg.Nodes[r.Node].Name
		}
		s.publishEvent("placement", map[string]interface{}{
			"window":     r.Window,
			"at_sec":     float64(r.At) / 1e9,
			"job":        r.A,
			"node":       node,
			"candidates": r.B,
		})
	})
	s.publishEvent("window", v)
}

// publishEvent renders one SSE frame (id + event + data) and hands it to the
// hub. Pump goroutine only, so ids and frames are strictly ordered.
func (s *Session) publishEvent(kind string, payload interface{}) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	s.eventSeq++
	frame := fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", s.eventSeq, kind, data)
	s.events.publish([]byte(frame))
}

// SessionStatus is the GET view of a session.
type SessionStatus struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	State    string   `json:"state"`
	Error    string   `json:"error,omitempty"`
	Policies []string `json:"policies"`

	Window  int     `json:"window"`
	Windows int     `json:"windows"`
	NowSec  float64 `json:"now_sec"`

	// Accepted / Rejected / Injected are the ingest ledger: names accepted
	// into the queue, names bounced with 429, and names already injected
	// into the engines. At drain, accepted == injected.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Injected int `json:"injected"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	Snapshots []PolicyVerdict `json:"snapshots"`
}

// Status captures the mutex-guarded view the pump last published.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStatus{
		ID:         s.ID,
		Name:       s.Name,
		State:      string(s.state),
		Error:      s.failMsg,
		Policies:   s.Policies(),
		Accepted:   s.accepted,
		Rejected:   s.rejected,
		Injected:   s.injected,
		QueueDepth: len(s.ingest),
		QueueCap:   s.res.QueueCap,
	}
	for i, snap := range s.snaps {
		st.Window, st.Windows, st.NowSec = snap.Window, snap.Windows, snap.NowSec
		st.Snapshots = append(st.Snapshots, PolicyVerdict{
			Policy:     s.res.Policies[i].Name(),
			QoSMetFrac: snap.QoSMetFrac,
			Joules:     snap.Joules,
			Placed:     snap.Placed,
			Pending:    snap.Pending,
			Completed:  snap.Completed,
			Running:    snap.Running,
		})
	}
	return st
}

// Verdicts returns the per-window shadow verdicts published so far.
func (s *Session) Verdicts() []WindowVerdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]WindowVerdict(nil), s.verdicts...)
}

// Results returns the finalized per-policy results (engine order), or
// ok=false while the session is still running or after a failure.
func (s *Session) Results() (results []sched.Result, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.results == nil {
		return nil, false
	}
	return s.results, true
}

// canonicalPolicy maps the spec's policy aliases onto the engine display
// names, so the query side accepts either form ("telemetry" and
// "telemetry-aware" are the same engine).
func canonicalPolicy(name string) string {
	switch name {
	case "telemetry":
		return "telemetry-aware"
	case "spread":
		return "spread-first"
	default:
		return name
	}
}

// ResultFor returns the finalized result for one policy by name ("" means
// the baseline); spec aliases and engine names both match.
func (s *Session) ResultFor(policy string) (sched.Result, error) {
	results, ok := s.Results()
	if !ok {
		s.mu.Lock()
		state := s.state
		s.mu.Unlock()
		return sched.Result{}, fmt.Errorf("serve: session %s has no results (state %s)", s.ID, state)
	}
	if policy == "" {
		return results[0], nil
	}
	for _, res := range results {
		if res.Policy == canonicalPolicy(policy) {
			return res, nil
		}
	}
	return sched.Result{}, fmt.Errorf("serve: session %s has no policy %q", s.ID, policy)
}

// Observer returns the observer attached to one engine by policy name (""
// means the baseline): the live tracer/metrics behind the SSE stream and the
// per-session metrics endpoints. The registry snapshots grow only at window
// boundaries on the pump goroutine; render it after Done (or accept a
// boundary-torn read, which the per-session metrics endpoint documents).
func (s *Session) Observer(policy string) (*obs.Observer, error) {
	if policy == "" {
		return s.obsv[0], nil
	}
	for i, p := range s.res.Policies {
		if p.Name() == canonicalPolicy(policy) {
			return s.obsv[i], nil
		}
	}
	return nil, fmt.Errorf("serve: session %s has no policy %q", s.ID, policy)
}

// Events subscribes to the session's SSE stream.
func (s *Session) Events() (ch chan []byte, closed bool) { return s.events.subscribe() }

// EventsUnsubscribe detaches a subscriber.
func (s *Session) EventsUnsubscribe(ch chan []byte) { s.events.unsubscribe(ch) }
