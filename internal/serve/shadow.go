package serve

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/sched"
)

// ShadowOutcome is the offline form of a shadow replay: the finalized
// per-policy results, the per-window verdict diffs, and the policy names in
// engine order (index 0 is the baseline).
type ShadowOutcome struct {
	Policies []string
	Results  []sched.Result
	Verdicts []WindowVerdict
}

// ShadowReplay fans one arrival feed out to the spec's candidate policies in
// lockstep and blocks until the horizon — the session machinery without the
// HTTP layer, for experiments, examples, and tests. Determinism carries
// over: each policy's Result is byte-identical to batch sched.Run on the
// same config.
func ShadowReplay(sp Spec) (*ShadowOutcome, error) {
	res, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	sess, err := NewSession("shadow", res, nil)
	if err != nil {
		return nil, err
	}
	sess.Wait()
	results, ok := sess.Results()
	if !ok {
		return nil, fmt.Errorf("serve: shadow replay failed: %s", sess.Status().Error)
	}
	return &ShadowOutcome{
		Policies: sess.Policies(),
		Results:  results,
		Verdicts: sess.Verdicts(),
	}, nil
}
