// Package serve is the shadow-scheduler daemon: the long-running serving
// layer over the online scheduler (DESIGN.md §16). A Server holds named
// sessions, each one or more step-driven sched.Runner instances advanced
// faster-than-real-time on a session goroutine; an HTTP API (cmd/pliant-served,
// stdlib net/http only) creates sessions from a JSON Spec, submits jobs into
// bounded ingest queues with 429 backpressure, streams decisions and window
// telemetry over Server-Sent Events, and serves Prometheus metrics. A session
// with K candidate policies is a shadow replay: one arrival feed fanned out
// to K engines in lockstep with per-window verdict diffs. Determinism
// survives serving: a session replayed through the daemon produces
// byte-identical JSON/CSV exports to the same config under batch sched.Run
// (golden-pinned at shards 1 and 4).
package serve

import (
	"fmt"
	"strings"

	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/fault"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/trace"
	"github.com/approx-sched/pliant/internal/workload"
)

// Spec is the JSON form of one session's configuration — the same surface the
// pliant-sched flags expose, field for field (the CLI builds a Spec from its
// flags and resolves it through the same code), so a daemon session and a
// batch run cannot drift semantically. Zero values take the CLI's defaults.
type Spec struct {
	// Name labels the session (default: the server assigns "s<N>").
	Name string `json:"name,omitempty"`

	// Seed drives all randomness (default 1, as -seed).
	Seed uint64 `json:"seed,omitempty"`

	// Nodes lists the cluster's services, one node per entry: nginx,
	// memcached, mongodb (default memcached,nginx,mongodb, as -nodes).
	// MaxApps is the per-node slot count (default 3, as -maxapps).
	Nodes   []string `json:"nodes,omitempty"`
	MaxApps int      `json:"max_apps,omitempty"`

	// Policies are the candidate placement policies: first-fit, best-fit,
	// spread, telemetry, or all (expanded). One policy is a plain session;
	// two or more make it a shadow replay with per-window verdict diffs.
	// Default: telemetry.
	Policies []string `json:"policies,omitempty"`

	// HorizonSec / EpochSec bound the run (defaults 240 / 12, as
	// -horizon/-epoch).
	HorizonSec float64 `json:"horizon_sec,omitempty"`
	EpochSec   float64 `json:"epoch_sec,omitempty"`

	// Rate is the Poisson job arrival rate per second (0 = sized to
	// capacity, as -rate). SubmitOnly silences the synthetic stream
	// entirely: jobs enter only through the submission API.
	Rate       float64 `json:"rate,omitempty"`
	SubmitOnly bool    `json:"submit_only,omitempty"`

	// Load / Shape / Amp / PeriodSec / Peak set the service-load shape
	// (defaults 0.65 / diurnal / 0.25 / one day across the horizon / 1.6,
	// as -load/-shape/-amp/-period/-peak).
	Load      float64 `json:"load,omitempty"`
	Shape     string  `json:"shape,omitempty"`
	Amp       float64 `json:"amp,omitempty"`
	PeriodSec float64 `json:"period_sec,omitempty"`
	Peak      float64 `json:"peak,omitempty"`

	// TimeScale, Workers, Shards as the flags of the same names.
	TimeScale float64 `json:"timescale,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Shards    int     `json:"shards,omitempty"`

	// Jobs cycles the catalog apps jobs draw from (default: seed-shuffled
	// catalog; with a trace, the candidate set), as -jobs.
	Jobs []string `json:"jobs,omitempty"`

	// Energy attaches the Table 1 power model; Autoscale selects the node
	// lifecycle controller (none, consolidate, approx-for-watts,
	// degrade-under-loss) and implies Energy, as -energy/-autoscale.
	Energy    bool   `json:"energy,omitempty"`
	Autoscale string `json:"autoscale,omitempty"`

	// Fault knobs, as -mttf/-mttr/-fault-domain/-outage/-retries/
	// -trace-faults.
	MTTFSec     float64      `json:"mttf_sec,omitempty"`
	MTTRSec     float64      `json:"mttr_sec,omitempty"`
	FaultDomain int          `json:"fault_domain,omitempty"`
	Outages     []OutageSpec `json:"outages,omitempty"`
	Retries     int          `json:"retries,omitempty"`
	TraceFaults bool         `json:"trace_faults,omitempty"`

	// Trace replays an uploaded production trace as the arrival feed.
	Trace *TraceSpec `json:"trace,omitempty"`

	// QueueCap bounds the session's ingest queue (default 64); a full queue
	// answers 429 + Retry-After instead of buffering unboundedly.
	QueueCap int `json:"queue_cap,omitempty"`

	// PaceMS throttles the session to one scheduling window per this many
	// wall-clock milliseconds. 0 advances flat-out (faster-than-real-time is
	// the point); a positive pace keeps a session alive long enough for
	// interactive submission and SSE tailing. Virtual-time results are
	// byte-identical at any pace — only when jobs are injected relative to
	// the virtual clock can differ, never how a given injection unfolds.
	PaceMS int `json:"pace_ms,omitempty"`
}

// OutageSpec is one scripted rack outage — the at:domain:duration triple of
// the -outage flag as JSON.
type OutageSpec struct {
	AtSec       float64 `json:"at_sec"`
	Domain      int     `json:"domain"`
	DurationSec float64 `json:"duration_sec"`
}

// TraceSpec carries a production trace in the session body: either the CSV
// text inline (an upload) or a synthesizer config (fixtures, demos), plus
// the normalization knobs of the -trace-* flags.
type TraceSpec struct {
	// Format is the schema: google or azure (default google).
	Format string `json:"format,omitempty"`

	// CSV is the raw trace text. Mutually exclusive with Synthesize.
	CSV string `json:"csv,omitempty"`

	// Synthesize generates a schema-exact fixture instead of an upload.
	Synthesize *SynthSpec `json:"synthesize,omitempty"`

	// RateScale compresses the time axis (0 = rescale so the last arrival
	// lands at 90% of the horizon, as -trace-scale); MaxJobs down-samples
	// (0 = twice the cluster's slots, as -trace-jobs).
	RateScale float64 `json:"rate_scale,omitempty"`
	MaxJobs   int     `json:"max_jobs,omitempty"`
}

// SynthSpec tunes the fixture generator (trace.SynthConfig as JSON).
type SynthSpec struct {
	Jobs        int     `json:"jobs,omitempty"`
	SpanSec     float64 `json:"span_sec,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	Orphans     float64 `json:"orphans,omitempty"`
	FailureFrac float64 `json:"failure_frac,omitempty"`
}

// Resolved is a Spec lowered onto the scheduler's native config: everything
// a session (or the CLI) needs to run. Cfg.Policy is left nil — the caller
// sets it per candidate policy.
type Resolved struct {
	Name     string
	Cfg      sched.Config
	Policies []sched.Policy

	// Trace is the parsed, normalized trace when the spec carried one
	// (already attached to Cfg.Trace); surfaced so callers can print its
	// ingest summary.
	Trace *trace.Trace

	// QueueCap is the session ingest bound (defaulted); PaceMS the
	// wall-clock window pace (0 = flat-out).
	QueueCap int
	PaceMS   int
}

// Resolve lowers the spec exactly as the pliant-sched flags would.
func (sp Spec) Resolve() (Resolved, error) {
	nodeNames := sp.Nodes
	if len(nodeNames) == 0 {
		nodeNames = []string{"memcached", "nginx", "mongodb"}
	}
	maxApps := sp.MaxApps
	if maxApps == 0 {
		maxApps = 3
	}
	nodes, err := NodesFor(nodeNames, maxApps)
	if err != nil {
		return Resolved{}, err
	}

	horizon := sp.HorizonSec
	if horizon == 0 {
		horizon = 240
	}
	epoch := sp.EpochSec
	if epoch == 0 {
		epoch = 12
	}

	var tr *trace.Trace
	if sp.Trace != nil {
		if sp.SubmitOnly {
			return Resolved{}, fmt.Errorf("serve: submit_only and trace are mutually exclusive")
		}
		slots := 0
		for _, n := range nodes {
			slots += n.MaxApps
		}
		tr, err = sp.Trace.load(horizon, slots)
		if err != nil {
			return Resolved{}, err
		}
	}

	shapeKind := sp.Shape
	if shapeKind == "" {
		shapeKind = "diurnal"
	}
	amp := sp.Amp
	if amp == 0 {
		amp = 0.25
	}
	peak := sp.Peak
	if peak == 0 {
		peak = 1.6
	}
	ls, err := ShapeFor(shapeKind, amp, sp.PeriodSec, peak, horizon, tr)
	if err != nil {
		return Resolved{}, err
	}

	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	load := sp.Load
	if load == 0 {
		load = 0.65
	}
	scale := sp.TimeScale
	if scale == 0 {
		scale = 1
	}
	cfg := sched.Config{
		Seed:       seed,
		Nodes:      nodes,
		Horizon:    sim.Duration(horizon * float64(sim.Second)),
		Epoch:      sim.Duration(epoch * float64(sim.Second)),
		JobsPerSec: sp.Rate,
		BaseLoad:   load,
		Shape:      ls,
		TimeScale:  scale,
		Workers:    sp.Workers,
		Shards:     sp.Shards,
		JobNames:   sp.Jobs,
	}
	if tr != nil {
		cfg.Trace = tr
		cfg.JobsPerSec = 0
	}
	if sp.SubmitOnly {
		// Submission-only sessions silence the synthetic stream: the one
		// scheduled arrival lands far past any horizon, and every job enters
		// through Runner.Inject.
		cfg.Arrivals = silentArrivals{}
	}

	auto := sp.Autoscale
	if auto == "" {
		auto = "none"
	}
	if sp.Energy || auto != "none" {
		model := energy.ModelFor(platform.TablePlatform())
		cfg.Energy = &model
	}
	switch auto {
	case "none":
	case "consolidate":
		cfg.Autoscaler = autoscale.Consolidate{}
	case "approx-for-watts":
		cfg.Autoscaler = autoscale.ApproxForWatts{}
	case "degrade-under-loss":
		cfg.Autoscaler = fault.DegradeUnderLoss{}
	default:
		return Resolved{}, fmt.Errorf("unknown autoscaler %q (none, consolidate, approx-for-watts, degrade-under-loss)", auto)
	}

	var outages []fault.Outage
	for _, o := range sp.Outages {
		outages = append(outages, fault.Outage{AtSec: o.AtSec, Domain: o.Domain, DurationSec: o.DurationSec})
	}
	plan, err := FaultPlanFor(sp.TraceFaults, tr, horizon, sp.MTTFSec, sp.MTTRSec, sp.FaultDomain, outages, sp.Retries)
	if err != nil {
		return Resolved{}, err
	}
	cfg.Faults = plan

	polNames := sp.Policies
	if len(polNames) == 0 {
		polNames = []string{"telemetry"}
	}
	policies, err := PoliciesFor(polNames)
	if err != nil {
		return Resolved{}, err
	}

	qcap := sp.QueueCap
	if qcap == 0 {
		qcap = DefaultQueueCap
	}
	if qcap < 1 {
		return Resolved{}, fmt.Errorf("serve: queue_cap must be positive (got %d)", qcap)
	}

	if sp.PaceMS < 0 {
		return Resolved{}, fmt.Errorf("serve: pace_ms must be non-negative (got %d)", sp.PaceMS)
	}
	return Resolved{
		Name:     sp.Name,
		Cfg:      cfg,
		Policies: policies,
		Trace:    tr,
		QueueCap: qcap,
		PaceMS:   sp.PaceMS,
	}, nil
}

// DefaultQueueCap bounds a session's ingest queue when the spec doesn't.
const DefaultQueueCap = 64

// silentArrivals is the never-firing job stream of submission-only sessions.
type silentArrivals struct{}

func (silentArrivals) Next(*sim.RNG) sim.Duration { return sim.Duration(1) << 62 }
func (silentArrivals) Rate() float64              { return 0 }

// NodesFor expands service names into named cluster nodes exactly as the
// -nodes flag does: cache-N / web-N / db-N per service class.
func NodesFor(names []string, maxApps int) ([]cluster.Node, error) {
	counts := map[string]int{}
	var nodes []cluster.Node
	for _, name := range names {
		var cls service.Class
		var prefix string
		switch name {
		case "nginx":
			cls, prefix = service.NGINX, "web"
		case "memcached":
			cls, prefix = service.Memcached, "cache"
		case "mongodb":
			cls, prefix = service.MongoDB, "db"
		default:
			return nil, fmt.Errorf("unknown service %q (nginx, memcached, mongodb)", name)
		}
		counts[prefix]++
		nodes = append(nodes, cluster.Node{
			Name:    fmt.Sprintf("%s-%d", prefix, counts[prefix]),
			Service: cls,
			MaxApps: maxApps,
		})
	}
	return nodes, nil
}

// ShapeFor builds the load shape exactly as the -shape flag does.
func ShapeFor(kind string, amp, periodSec, peak, horizonSec float64, tr *trace.Trace) (workload.Shape, error) {
	switch kind {
	case "steady":
		return workload.Steady{}, nil
	case "diurnal":
		if periodSec == 0 {
			periodSec = horizonSec // one "day" compressed into the horizon
		}
		return workload.NewDiurnal(amp, periodSec)
	case "flash":
		return workload.NewFlash(1, peak, horizonSec/3, horizonSec/6)
	case "trace":
		// The services ride the replayed trace's own rate curve.
		if tr == nil {
			return nil, fmt.Errorf("shape trace needs a trace")
		}
		times, mult, err := tr.RateShape(12)
		if err != nil {
			return nil, err
		}
		return workload.NewReplay(times, mult)
	default:
		return nil, fmt.Errorf("unknown shape %q (steady, diurnal, flash, trace)", kind)
	}
}

// PoliciesFor resolves policy names exactly as the -policy flag does, with
// "all" expanding to the full set. Duplicates are rejected: a shadow
// session's verdicts are keyed by policy name.
func PoliciesFor(names []string) ([]sched.Policy, error) {
	var out []sched.Policy
	seen := map[string]bool{}
	add := func(p sched.Policy) error {
		if seen[p.Name()] {
			return fmt.Errorf("duplicate policy %q", p.Name())
		}
		seen[p.Name()] = true
		out = append(out, p)
		return nil
	}
	for _, name := range names {
		switch name {
		case "first-fit":
			if err := add(sched.FirstFit{}); err != nil {
				return nil, err
			}
		case "best-fit":
			if err := add(sched.BestFit{}); err != nil {
				return nil, err
			}
		case "spread":
			if err := add(sched.Spread{}); err != nil {
				return nil, err
			}
		case "telemetry":
			if err := add(sched.TelemetryAware{}); err != nil {
				return nil, err
			}
		case "all":
			for _, p := range []sched.Policy{sched.FirstFit{}, sched.BestFit{}, sched.Spread{}, sched.TelemetryAware{}} {
				if err := add(p); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("unknown policy %q (first-fit, best-fit, spread, telemetry, all)", name)
		}
	}
	return out, nil
}

// FaultPlanFor assembles a fault plan exactly as the fault flags do: nil when
// no knob was touched, a trace-derived MTTF/MTTR base for trace faults, with
// the explicit knobs layered on top either way.
func FaultPlanFor(fromTrace bool, tr *trace.Trace, horizonSec, mttf, mttr float64,
	domain int, outages []fault.Outage, retries int) (*fault.Plan, error) {
	var plan fault.Plan
	armed := false
	if mttf < 0 || mttr < 0 {
		return nil, fmt.Errorf("mttf/mttr must be non-negative virtual seconds (0 = off/default)")
	}
	if fromTrace {
		if tr == nil {
			return nil, fmt.Errorf("trace faults need a trace")
		}
		derived, err := fault.FromTrace(tr, horizonSec)
		if err != nil {
			return nil, err
		}
		plan = derived
		armed = true
	}
	if mttf > 0 {
		plan.MTTFSec = mttf
		armed = true
	}
	if mttr > 0 {
		plan.MTTRSec = mttr
	}
	if domain > 0 {
		plan.DomainSize = domain
	}
	if retries != 0 {
		plan.RetryBudget = retries
	}
	if len(outages) > 0 {
		plan.Outages = outages
		armed = true
	}
	if !armed {
		return nil, nil
	}
	return &plan, nil
}

// load parses and normalizes the trace spec for replay over the horizon,
// mirroring the CLI's loadTrace.
func (ts *TraceSpec) load(horizonSec float64, slots int) (*trace.Trace, error) {
	format := ts.Format
	if format == "" {
		format = "google"
	}
	f, err := trace.FormatByName(format)
	if err != nil {
		return nil, err
	}
	text := ts.CSV
	if ts.Synthesize != nil {
		if text != "" {
			return nil, fmt.Errorf("serve: trace csv and synthesize are mutually exclusive")
		}
		text = string(trace.Synthesize(trace.SynthConfig{
			Format:      f,
			Jobs:        ts.Synthesize.Jobs,
			SpanSec:     ts.Synthesize.SpanSec,
			Seed:        ts.Synthesize.Seed,
			Orphans:     ts.Synthesize.Orphans,
			FailureFrac: ts.Synthesize.FailureFrac,
		}))
	}
	if text == "" {
		return nil, fmt.Errorf("serve: trace needs csv text or a synthesize config")
	}
	tr, err := trace.Parse(strings.NewReader(text), f)
	if err != nil {
		return nil, err
	}
	opts := trace.Options{RateScale: ts.RateScale}
	if ts.RateScale == 0 {
		opts.TargetSpanSec = 0.9 * horizonSec
	}
	if ts.MaxJobs > 0 {
		opts.MaxJobs = ts.MaxJobs
	} else {
		opts.MaxJobs = 2 * slots
	}
	return tr.Normalize(opts)
}
