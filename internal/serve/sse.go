package serve

import "sync"

// hub fans a session's event stream out to Server-Sent-Events subscribers.
// Only the session's pump goroutine publishes, so every subscriber sees
// events in emission order; each subscriber owns a bounded buffered channel,
// and one that falls further behind than the buffer is disconnected (its
// channel closed) rather than allowed to stall the pump — the HTTP handler
// reports the drop to the client, which can reconnect.
type hub struct {
	mu     sync.Mutex
	subs   map[chan []byte]bool
	closed bool
}

// subBuffer bounds each subscriber's in-flight frames. A session emits a few
// frames per window; 256 rides out multi-window handler stalls.
const subBuffer = 256

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]bool)}
}

// subscribe registers a new subscriber. The returned channel closes when the
// hub closes (session over) or the subscriber is dropped for lagging; done
// reports true for the latter.
func (h *hub) subscribe() (ch chan []byte, closed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, true
	}
	ch = make(chan []byte, subBuffer)
	h.subs[ch] = true
	return ch, false
}

// unsubscribe detaches a subscriber (client went away).
func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs[ch] {
		delete(h.subs, ch)
		close(ch)
	}
}

// publish delivers one pre-rendered SSE frame to every subscriber, dropping
// subscribers whose buffers are full.
func (h *hub) publish(frame []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- frame:
		default:
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// close ends the stream: every subscriber channel closes after its buffered
// frames drain.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
