package service

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/interference"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// Class names the three interactive services evaluated in the paper.
type Class int

// The paper's three latency-critical services.
const (
	NGINX Class = iota
	Memcached
	MongoDB
)

// Classes lists all service classes in presentation order.
func Classes() []Class { return []Class{NGINX, Memcached, MongoDB} }

// String returns the lowercase service name used in the paper's figures.
func (c Class) String() string {
	switch c {
	case NGINX:
		return "nginx"
	case Memcached:
		return "memcached"
	case MongoDB:
		return "mongodb"
	default:
		return fmt.Sprintf("service(%d)", int(c))
	}
}

// Preset returns the calibrated model for a service class.
//
// Calibration targets (paper Secs. 5–6, at a fair 8-core share of the Table 1
// socket, ~75–80% of saturation):
//
//   - NGINX: front-end webserver, 1KB static files. QoS 10 ms (SLA-style,
//     far above its uncontended p99); under precise colocation its queue
//     runs away and p99 lands at 2.1–9.8× QoS, bounded by the listen
//     backlog.
//   - memcached: in-memory KV store, 30B/200B items. QoS 200 µs, only
//     ~1.5–2× its isolated p99 — so even mild interference violates it
//     (paper: memcached almost always needs a reclaimed core).
//   - MongoDB: persistent NoSQL store, 178 GB dataset on spinning disk.
//     Requests mostly occupy workers in disk waits that contention cannot
//     inflate, so sensitivity is low; QoS 100 ms.
func Preset(c Class) Config {
	switch c {
	case NGINX:
		return Config{
			Name: "nginx",
			QoS:  10 * sim.Millisecond,
			// Median 8 µs with a heavy lognormal tail: mean ≈ 11 µs, so an
			// 8-core share saturates near 727K QPS (paper Fig. 8 sweeps
			// 300–700K).
			Demand:          workload.LogNormal{Median: 8e-6, Sigma: 0.8},
			WorkersPerCore:  1,
			ContentionShare: 1.0,
			Sensitivity:     interference.Sensitivity{LLC: 1.6, MemBW: 1.1},
			// Connection state, TLS buffers, and the hot content set give
			// the front-end webserver a sizable cache footprint of its own.
			LLCMB:        20,
			BWPerCoreGBs: 1.2,
			// Listen backlog: bounds runaway sojourn near 10× QoS once
			// contention inflation is applied on top.
			MaxBacklog: 50 * sim.Millisecond,
		}
	case Memcached:
		return Config{
			Name: "memcached",
			QoS:  200 * sim.Microsecond,
			// Median 10 µs with a heavy tail (σ=1): mean ≈ 16.5 µs, so 8
			// cores saturate near 485K QPS (paper Fig. 8 sweeps 300–600K).
			// The heavy tail leaves the isolated p99 within ~15%% of the
			// 200 µs QoS — the strict budget that makes memcached the most
			// interference-sensitive of the three services (Sec. 6.1).
			Demand:          workload.LogNormal{Median: 10e-6, Sigma: 1.15},
			WorkersPerCore:  1,
			ContentionShare: 1.0,
			Sensitivity:     interference.Sensitivity{LLC: 0.55, MemBW: 0.45},
			// 5M × 230B dataset: the hot slice alone overflows any LLC
			// share, so its cache demand is large.
			LLCMB:        24,
			BWPerCoreGBs: 1.6,
			// Small effective backlog (pipelined connections): bounds
			// sojourn near 3.5× QoS in sustained overload, with transient
			// spikes beyond (paper Fig. 4 annotations).
			MaxBacklog: 700 * sim.Microsecond,
		}
	case MongoDB:
		return Config{
			Name: "mongodb",
			QoS:  100 * sim.Millisecond,
			// 45% in-memory hits (median 2 ms), 55% disk-bound requests
			// (median 30 ms, p99 ≈ 76 ms): worker-occupancy mean ≈ 19 ms,
			// saturating near 420 QPS on 8 worker-cores (paper Fig. 8
			// sweeps 100–400 QPS).
			Demand: workload.Bimodal{
				Light:  workload.LogNormal{Median: 2e-3, Sigma: 0.5},
				Heavy:  workload.LogNormal{Median: 33e-3, Sigma: 0.4},
				PHeavy: 0.55,
			},
			WorkersPerCore: 1,
			// Only the CPU execution share of a request inflates under
			// cache/bandwidth pressure; disk waits do not.
			ContentionShare: 0.35,
			Sensitivity:     interference.Sensitivity{LLC: 2.0, MemBW: 1.4},
			LLCMB:           18,
			BWPerCoreGBs:    0.8,
			MaxBacklog:      400 * sim.Millisecond,
		}
	default:
		panic(fmt.Sprintf("service: unknown class %d", int(c)))
	}
}

// QoSOf returns the paper's QoS target for a class (Fig. 5 caption: 10 ms,
// 200 µs, 100 ms).
func QoSOf(c Class) sim.Duration { return Preset(c).QoS }
