// Package service models latency-critical interactive services as M/G/k
// queueing systems whose per-request service demand is inflated by
// shared-resource contention. It provides calibrated presets for the three
// services the paper evaluates — NGINX, memcached, and MongoDB — and exposes
// exactly the control surface Pliant uses on real systems: the number of
// cores allocated to the service, and end-to-end latency observed at the
// client.
package service

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/interference"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// Config describes an interactive service model.
type Config struct {
	Name string

	// QoS is the 99th-percentile latency target (paper Sec. 5: the p99
	// before the knee of the latency-throughput curve in isolation).
	QoS sim.Duration

	// Demand samples per-request worker occupancy in seconds at nominal
	// (uncontended) execution.
	Demand workload.Sampler

	// WorkersPerCore is how many request-serving workers each allocated
	// core multiplexes. CPU-bound services (NGINX, memcached) pin one
	// worker per core; I/O-bound services (MongoDB) overlap many blocked
	// threads per core.
	WorkersPerCore int

	// ContentionShare is the fraction of request demand that is CPU/memory
	// execution subject to interference slowdown; the remainder (e.g.,
	// disk time) is unaffected by cache and bandwidth pressure.
	ContentionShare float64

	// Sensitivity converts shared-resource shortfall into execution-time
	// inflation for the contention-exposed part of each request.
	Sensitivity interference.Sensitivity

	// LLCMB is the service's working-set pressure on the shared LLC and
	// BWPerCoreGBs its memory-bandwidth demand per busy core.
	LLCMB        float64
	BWPerCoreGBs float64

	// MaxBacklog bounds the pending-request queue in time units: the queue
	// holds at most the requests a full-speed server would clear in this
	// span. It mirrors the listen backlogs and connection limits of real
	// servers, which bound runaway sojourn times under overload; past it,
	// requests are dropped and accounted as worst-case latency samples.
	MaxBacklog sim.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("service: missing name")
	case c.QoS <= 0:
		return fmt.Errorf("service %s: QoS must be positive", c.Name)
	case c.Demand == nil:
		return fmt.Errorf("service %s: missing demand sampler", c.Name)
	case c.WorkersPerCore <= 0:
		return fmt.Errorf("service %s: workers per core must be positive", c.Name)
	case c.ContentionShare < 0 || c.ContentionShare > 1:
		return fmt.Errorf("service %s: contention share %v outside [0,1]", c.Name, c.ContentionShare)
	case c.MaxBacklog <= 0:
		return fmt.Errorf("service %s: max backlog must be positive", c.Name)
	}
	return nil
}

// Scaled returns a copy of the config with request timescales multiplied by
// f (demand and QoS together). Queueing behaviour relative to QoS is
// invariant under this scaling — utilization, tail ratios, and divergence
// rates are dimensionless — so the fast test profile uses f>1 to simulate
// proportionally fewer requests.
func (c Config) Scaled(f float64) Config {
	out := c
	out.QoS = c.QoS.Scale(f)
	out.MaxBacklog = c.MaxBacklog.Scale(f)
	out.Demand = scaledSampler{inner: c.Demand, f: f}
	return out
}

type scaledSampler struct {
	inner workload.Sampler
	f     float64
}

func (s scaledSampler) Sample(rng *sim.RNG) float64 { return s.inner.Sample(rng) * s.f }
func (s scaledSampler) Mean() float64               { return s.inner.Mean() * s.f }

// SaturationQPS returns the analytic saturation throughput at the given core
// count: workers divided by mean demand.
func (c Config) SaturationQPS(cores int) float64 {
	w := float64(cores * c.WorkersPerCore)
	return w / c.Demand.Mean()
}

// Instance is a running service inside a simulation.
type Instance struct {
	cfg Config
	eng *sim.Engine
	rng *sim.RNG

	cores    int
	slowdown float64

	busy  int
	queue []pendingRequest

	onLatency func(sim.Duration)

	served  uint64
	dropped uint64
}

type pendingRequest struct {
	arrived sim.Time
	demand  float64 // seconds, nominal
}

// New creates a service instance bound to an engine. The latency callback
// fires once per completed (or dropped) request with its end-to-end latency;
// it stands in for the client-side measurement point of the paper's monitor.
func New(eng *sim.Engine, rng *sim.RNG, cfg Config, cores int, onLatency func(sim.Duration)) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("service %s: needs at least one core", cfg.Name)
	}
	if onLatency == nil {
		onLatency = func(sim.Duration) {}
	}
	return &Instance{
		cfg:       cfg,
		eng:       eng,
		rng:       rng,
		cores:     cores,
		slowdown:  1.0,
		onLatency: onLatency,
	}, nil
}

// Config returns the service configuration.
func (s *Instance) Config() Config { return s.cfg }

// Cores returns the current core allocation.
func (s *Instance) Cores() int { return s.cores }

// Served returns the number of completed requests.
func (s *Instance) Served() uint64 { return s.served }

// Dropped returns the number of requests rejected at the queue cap.
func (s *Instance) Dropped() uint64 { return s.dropped }

// QueueLen returns the number of requests waiting (not in service).
func (s *Instance) QueueLen() int { return len(s.queue) }

// workers returns the current number of request-serving workers.
func (s *Instance) workers() int { return s.cores * s.cfg.WorkersPerCore }

// SetCores changes the core allocation. Extra cores immediately begin
// draining the queue; removed cores take effect as in-flight requests finish
// (a running request is never aborted, matching cpuset repinning semantics).
func (s *Instance) SetCores(n int) {
	if n < 1 {
		n = 1
	}
	s.cores = n
	s.drainQueue()
}

// SetSlowdown updates the contention inflation applied to the CPU-exposed
// share of subsequently started requests.
func (s *Instance) SetSlowdown(f float64) {
	if f < 1 {
		f = 1
	}
	s.slowdown = f
}

// Slowdown returns the current contention inflation factor.
func (s *Instance) Slowdown() float64 { return s.slowdown }

// queueCap returns the backlog bound in requests: the number of requests the
// current worker pool clears in MaxBacklog at nominal speed.
func (s *Instance) queueCap() int {
	cap := int(s.cfg.MaxBacklog.Seconds() / s.cfg.Demand.Mean() * float64(s.workers()))
	if cap < 4 {
		cap = 4
	}
	return cap
}

// Arrive submits one request to the service at the current simulation time.
func (s *Instance) Arrive() {
	req := pendingRequest{arrived: s.eng.Now(), demand: s.cfg.Demand.Sample(s.rng)}
	if s.busy < s.workers() {
		s.start(req)
		return
	}
	if len(s.queue) >= s.queueCap() {
		// Queue overflow: the request is turned away. Count it as a
		// worst-case latency observation — an estimate of the sojourn it
		// would have seen — so the p99 reflects the overload instead of
		// silently dropping the slowest tail.
		s.dropped++
		est := s.estimatedSojourn()
		s.onLatency(est)
		return
	}
	s.queue = append(s.queue, req)
}

// estimatedSojourn approximates the latency a request joining the full queue
// would experience: queue length times mean inflated demand over workers.
func (s *Instance) estimatedSojourn() sim.Duration {
	meanDemand := s.cfg.Demand.Mean() * s.effectiveInflation()
	perWorker := float64(len(s.queue)+s.busy) * meanDemand / float64(s.workers())
	return sim.DurationOf(perWorker)
}

func (s *Instance) effectiveInflation() float64 {
	return 1 - s.cfg.ContentionShare + s.cfg.ContentionShare*s.slowdown
}

func (s *Instance) start(req pendingRequest) {
	s.busy++
	serviceTime := sim.DurationOf(req.demand * s.effectiveInflation())
	if serviceTime <= 0 {
		serviceTime = 1
	}
	s.eng.After(serviceTime, func() { s.complete(req) })
}

func (s *Instance) complete(req pendingRequest) {
	s.busy--
	s.served++
	s.onLatency(s.eng.Now().Sub(req.arrived))
	s.drainQueue()
}

func (s *Instance) drainQueue() {
	for s.busy < s.workers() && len(s.queue) > 0 {
		req := s.queue[0]
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			s.queue = nil // release backing array after bursts
		}
		s.start(req)
	}
}

// Demand reports the service's current pressure on shared resources for the
// interference model: full working-set LLC pressure, and bandwidth
// proportional to allocated cores at the service's typical utilization.
// Allocated (not instantaneously busy) cores are used so the demand is a
// stable per-interval quantity, the granularity at which the contention
// model is evaluated.
func (s *Instance) Demand(tenant platform.TenantID) interference.Demand {
	return interference.Demand{
		Tenant:      tenant,
		LLCMB:       s.cfg.LLCMB,
		MemBWGBs:    s.cfg.BWPerCoreGBs * float64(s.cores),
		Sensitivity: s.cfg.Sensitivity,
	}
}
